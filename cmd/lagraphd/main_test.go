package main

import (
	"context"
	"testing"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/gen"
	"lagraph/internal/lagraph"
	"lagraph/internal/leakcheck"
	"lagraph/internal/store"
)

// TestSnapshotLoopStops drives the daemon's background snapshotter the
// way main does — a cancelable context and a periodic interval — and
// pins both halves of its contract: ticks flush dirty graphs into the
// durable store, and context cancellation terminates the goroutine
// (leakcheck fails the test if it parks forever).
func TestSnapshotLoopStops(t *testing.T) {
	leakcheck.Check(t)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	pers := store.NewPersister(st, cat)

	n := 1 << 4
	e := gen.PowerLaw(n, 4*n, 1.8, gen.Config{Seed: 7, Undirected: true, NoSelfLoops: true})
	g, err := lagraph.NewGraph(e.Matrix(), lagraph.Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Add("g", g); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		snapshotLoop(ctx, pers, 5*time.Millisecond)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for len(pers.Dirty()) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("snapshot loop never flushed the dirty graph")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot loop did not stop on context cancellation")
	}
}
