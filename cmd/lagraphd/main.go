// lagraphd is the graph-query daemon: it holds a catalog of named graphs
// resident in memory with warmed property caches and serves JSON queries
// over HTTP (see internal/svc for the endpoint contract).
//
// Usage:
//
//	lagraphd -addr :8487 -workers 8 -queue 32 -timeout 30s
//
// Endpoints:
//
//	POST   /graphs               load/generate a named graph
//	GET    /graphs               list registered graphs
//	GET    /graphs/{name}        cached properties of one graph
//	DELETE /graphs/{name}        drop a graph
//	POST   /graphs/{name}/query  run an algorithm (bfs, sssp, pagerank, ...)
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text format
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/obs"
	"lagraph/internal/svc"
)

func main() {
	addr := flag.String("addr", ":8487", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queries queued for a worker slot (0 = 4×workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested deadlines")
	allowPath := flag.Bool("allow-path-load", false, "permit POST /graphs to read files from this host's filesystem")
	flag.Parse()

	// Kernel-level op records from every query flow into one process-wide
	// Counters sink, rendered by /metrics.
	counters := &obs.Counters{}
	obs.Set(counters)

	srv := svc.New(catalog.New(), counters, svc.Config{
		Workers:        *workers,
		Queue:          *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		AllowPathLoad:  *allowPath,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("lagraphd: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight queries finish
		// up to their own deadlines (bounded by max-timeout + slack).
		log.Printf("lagraphd: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("lagraphd: shutdown: %v", err)
			os.Exit(1)
		}
		log.Printf("lagraphd: drained, bye")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
	}
}
