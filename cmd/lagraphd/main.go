// lagraphd is the graph-query daemon: it holds a catalog of named graphs
// resident in memory with warmed property caches and serves JSON queries
// over HTTP (see internal/svc for the endpoint contract).
//
// Usage:
//
//	lagraphd -addr :8487 -workers 8 -queue 32 -timeout 30s
//	lagraphd -addr :8487 -data /var/lib/lagraphd -snapshot-interval 30s
//	lagraphd -addr :8487 -data /var/lib/a -node-id a \
//	    -peers a=http://h1:8487,b=http://h2:8487,c=http://h3:8487 \
//	    -replicas 1 -route redirect
//
// With -data the daemon is durable: graphs are periodically snapshotted
// to checksummed frame files (see internal/store), reloaded on boot, and
// flushed on graceful shutdown. Edge-batch mutations (POST .../edges) are
// additionally journaled to a hash-chained write-ahead log under
// <data>/wal before they are acknowledged, so boot recovery is snapshot +
// WAL-suffix replay and a kill -9 at any moment loses nothing that was
// acknowledged — the fsync of the journal record is the durability point
// (disable with -wal-sync=false to trade that for throughput).
//
// With -node-id and -peers the daemon is one member of a static-topology
// cluster (requires -data): a consistent-hash ring places every graph on
// a primary plus -replicas replicas, primaries ship snapshot frames and
// live WAL records to replicas, and requests for graphs this node does
// not own are routed to the owner — 307 redirects by default, or
// transparently with -route proxy (mutations always redirect so the
// primary fsync remains the durability point). The listener comes up
// BEFORE boot recovery so /readyz can answer: it stays 503 (and
// mutations answer 503 not_ready) until snapshot+WAL replay completes
// and, in cluster mode, until the initial replica catch-up converged.
//
// Endpoints (canonical spellings under /v1; the legacy unversioned paths
// still answer, with a Deprecation header):
//
//	POST   /v1/graphs                  load/generate a named graph
//	GET    /v1/graphs                  list registered graphs (limit/cursor pagination)
//	GET    /v1/graphs/{name}           cached properties of one graph
//	DELETE /v1/graphs/{name}           drop a graph (and its durable snapshot)
//	POST   /v1/graphs/{name}/query     run an algorithm (bfs, sssp, pagerank, ...)
//	POST   /v1/graphs/{name}/edges     ingest an edge-mutation batch (journaled)
//	POST   /v1/graphs/{name}/snapshot  persist one graph now (requires -data)
//	POST   /v1/admin/flush             persist every dirty graph (requires -data)
//	GET    /v1/cluster/topology        current membership document (cluster mode)
//	POST   /v1/cluster/topology        install a higher-epoch document (rebalance)
//	GET    /v1/cluster/status          per-graph replication positions
//	GET    /healthz                    liveness
//	GET    /readyz                     readiness (503 until recovery + catch-up)
//	GET    /metrics                    Prometheus text format
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/cluster"
	"lagraph/internal/obs"
	"lagraph/internal/store"
	"lagraph/internal/svc"
	"lagraph/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8487", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queries queued for a worker slot (0 = 4×workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested deadlines")
	allowPath := flag.Bool("allow-path-load", false, "permit POST /graphs to read files from this host's filesystem")
	dataDir := flag.String("data", "", "directory for durable graph snapshots (empty = volatile)")
	snapEvery := flag.Duration("snapshot-interval", 30*time.Second, "how often to snapshot dirty graphs (0 disables the background snapshotter; requires -data)")
	walSync := flag.Bool("wal-sync", true, "fsync the edge journal on every accepted batch (requires -data; false trades durability for throughput)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "journal segment rotation size in bytes (0 = 64 MiB; requires -data)")
	nodeID := flag.String("node-id", "", "this node's cluster member ID (enables cluster mode; requires -data and -peers)")
	peers := flag.String("peers", "", "cluster membership as id=url,id=url,... (must include -node-id)")
	replicas := flag.Int("replicas", 1, "replica copies per graph beyond the primary (cluster mode)")
	route := flag.String("route", "redirect", "how non-owners answer reads for graphs they don't hold: redirect (307) or proxy")
	clusterEpoch := flag.Uint64("cluster-epoch", 1, "epoch of the boot topology document (bump after a -peers change so restarted nodes agree)")
	clusterPoll := flag.Duration("cluster-poll", 500*time.Millisecond, "replication sync-loop interval (cluster mode)")
	flag.Parse()

	if *route != "redirect" && *route != "proxy" {
		fmt.Fprintf(os.Stderr, "lagraphd: -route must be redirect or proxy, got %q\n", *route)
		os.Exit(2)
	}
	var topology *cluster.Topology
	if *nodeID != "" || *peers != "" {
		if *nodeID == "" || *peers == "" {
			fmt.Fprintln(os.Stderr, "lagraphd: cluster mode needs both -node-id and -peers")
			os.Exit(2)
		}
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "lagraphd: cluster mode needs -data (replication streams the WAL)")
			os.Exit(2)
		}
		t, err := parsePeers(*peers, *replicas, *clusterEpoch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(2)
		}
		topology = t
	}

	// Kernel-level op records from every query flow into one process-wide
	// Counters sink, rendered by /metrics.
	counters := &obs.Counters{}
	obs.Set(counters)

	cat := catalog.New()
	var pers *store.Persister
	var jl *wal.Log
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
		pers = store.NewPersister(st, cat)
		// The edge journal lives beside the snapshots. Opening it first
		// also runs its own recovery (chain verification, torn-tail
		// truncation), so LoadAll below can replay the suffix.
		jl, err = wal.Open(filepath.Join(*dataDir, "wal"), wal.Options{
			SegmentBytes: *walSegBytes,
			NoSync:       !*walSync,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
		defer jl.Close()
		pers.AttachWAL(jl)
		if rec := jl.Recovery(); rec.TornBytes > 0 {
			log.Printf("lagraphd: wal: dropped %d bytes of torn tail from %s (crash mid-append; tolerated)",
				rec.TornBytes, rec.TornFile)
		}
	}

	var node *cluster.Node
	if topology != nil {
		var err error
		node, err = cluster.New(cluster.Config{
			Self:      *nodeID,
			Topology:  *topology,
			Catalog:   cat,
			Persister: pers,
			Poll:      *clusterPoll,
			Logf:      log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
	}

	srv := svc.New(cat, counters, svc.Config{
		Workers:        *workers,
		Queue:          *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		AllowPathLoad:  *allowPath,
		Persister:      pers,
		Cluster:        node,
		Route:          *route,
		GateReady:      true,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The listener comes up before recovery so orchestrators see /healthz
	// immediately and /readyz honestly: 503 while graphs are rebuilt
	// (mutations are gated the same way; see svc.routeMutation).
	errc := make(chan error, 1)
	//grblint:ignore goroutine-lifecycle: ListenAndServe returns when Shutdown closes the listener; errc is buffered so the send never blocks
	go func() {
		log.Printf("lagraphd: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	if pers != nil {
		// Boot-time recovery: replay every live snapshot, then the journal
		// records beyond each snapshot's pinned offset. Corrupt files are
		// quarantined to *.corrupt and logged — a damaged snapshot must
		// never keep the daemon from serving the healthy ones.
		events, err := pers.LoadAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
		for _, ev := range events {
			if ev.Err != nil {
				if ev.Quarantined {
					log.Printf("lagraphd: recovery: quarantined %s (%s): %v", ev.File, ev.Name, ev.Err)
				} else {
					log.Printf("lagraphd: recovery: skipped %s (%s), snapshot kept for a later boot: %v", ev.File, ev.Name, ev.Err)
				}
				continue
			}
			log.Printf("lagraphd: recovered %q (gen %d, %d vertices, %d edges) from %s",
				ev.Name, ev.Meta.Generation, ev.Meta.NRows, ev.Meta.NVals, ev.File)
		}
		if rs := pers.ReplayStats(); rs.Applied+rs.SkippedFloor+rs.SkippedUnknown > 0 {
			log.Printf("lagraphd: wal: replayed %d edge batches (%d below snapshot floors, %d for unknown graphs)",
				rs.Applied, rs.SkippedFloor, rs.SkippedUnknown)
		}
		log.Printf("lagraphd: durable store at %s (%d graphs, wal next LSN %d)",
			*dataDir, len(cat.Names()), jl.NextLSN())
	}
	srv.MarkBootReady()

	// The sync loop starts only after local recovery: peer status answers
	// must reflect the recovered journal positions, not an empty catalog.
	if node != nil {
		node.Start(ctx)
		defer node.Close()
		log.Printf("lagraphd: cluster member %q (epoch %d, %d nodes, %d replicas, route=%s)",
			*nodeID, topology.Epoch, len(topology.Nodes), topology.Replicas, *route)
	}

	// Background snapshotter: every interval, persist graphs whose
	// generation moved since their last durable write. Runs off the query
	// path — snapshots share each entry's read lock with queries.
	if pers != nil && *snapEvery > 0 {
		go snapshotLoop(ctx, pers, *snapEvery)
	}

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop replicating first (so the flush below is
		// not racing stream applies), then stop accepting, let in-flight
		// queries finish up to their own deadlines (bounded by max-timeout
		// + slack), then flush dirty graphs so a clean stop loses nothing.
		log.Printf("lagraphd: signal received, draining")
		if node != nil {
			node.Close()
		}
		sctx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("lagraphd: shutdown: %v", err)
			os.Exit(1)
		}
		if pers != nil {
			res, err := pers.FlushDirty()
			if err != nil {
				log.Printf("lagraphd: final flush: %v", err)
				os.Exit(1)
			}
			log.Printf("lagraphd: final flush: %d snapshotted, %d already clean",
				len(res.Snapshotted), res.Clean)
		}
		log.Printf("lagraphd: drained, bye")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
	}
}

// parsePeers turns "id=url,id=url,..." into a topology document. Every
// node in the cluster must be started with an identical -peers string
// (placement is a pure function of the document), so the format is kept
// order-insensitive and strict: duplicates and malformed entries are
// boot errors, not warnings.
func parsePeers(spec string, replicas int, epoch uint64) (*cluster.Topology, error) {
	t := &cluster.Topology{Epoch: epoch, Replicas: replicas}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		t.Nodes = append(t.Nodes, cluster.NodeInfo{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// snapshotLoop persists graphs whose generation moved since their last
// durable write, every interval, until ctx ends. Runs off the query path:
// snapshots share each entry's read lock with queries. A named function
// (not a literal in main) so the shutdown test can drive and leak-check
// it directly.
func snapshotLoop(ctx context.Context, pers *store.Persister, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			res, err := pers.FlushDirty()
			if err != nil {
				log.Printf("lagraphd: background snapshot: %v", err)
			}
			for _, sr := range res.Snapshotted {
				log.Printf("lagraphd: snapshotted %q gen %d (%d bytes, %.1fms)",
					sr.Name, sr.Generation, sr.Bytes, sr.ElapsedMS)
			}
		}
	}
}
