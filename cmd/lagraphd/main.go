// lagraphd is the graph-query daemon: it holds a catalog of named graphs
// resident in memory with warmed property caches and serves JSON queries
// over HTTP (see internal/svc for the endpoint contract).
//
// Usage:
//
//	lagraphd -addr :8487 -workers 8 -queue 32 -timeout 30s
//	lagraphd -addr :8487 -data /var/lib/lagraphd -snapshot-interval 30s
//
// With -data the daemon is durable: graphs are periodically snapshotted
// to checksummed frame files (see internal/store), reloaded on boot, and
// flushed on graceful shutdown. Edge-batch mutations (POST .../edges) are
// additionally journaled to a hash-chained write-ahead log under
// <data>/wal before they are acknowledged, so boot recovery is snapshot +
// WAL-suffix replay and a kill -9 at any moment loses nothing that was
// acknowledged — the fsync of the journal record is the durability point
// (disable with -wal-sync=false to trade that for throughput).
//
// Endpoints (canonical spellings under /v1; the legacy unversioned paths
// still answer, with a Deprecation header):
//
//	POST   /v1/graphs                  load/generate a named graph
//	GET    /v1/graphs                  list registered graphs (limit/cursor pagination)
//	GET    /v1/graphs/{name}           cached properties of one graph
//	DELETE /v1/graphs/{name}           drop a graph (and its durable snapshot)
//	POST   /v1/graphs/{name}/query     run an algorithm (bfs, sssp, pagerank, ...)
//	POST   /v1/graphs/{name}/edges     ingest an edge-mutation batch (journaled)
//	POST   /v1/graphs/{name}/snapshot  persist one graph now (requires -data)
//	POST   /v1/admin/flush             persist every dirty graph (requires -data)
//	GET    /healthz                    liveness
//	GET    /metrics                    Prometheus text format
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/obs"
	"lagraph/internal/store"
	"lagraph/internal/svc"
	"lagraph/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8487", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queries queued for a worker slot (0 = 4×workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper clamp on client-requested deadlines")
	allowPath := flag.Bool("allow-path-load", false, "permit POST /graphs to read files from this host's filesystem")
	dataDir := flag.String("data", "", "directory for durable graph snapshots (empty = volatile)")
	snapEvery := flag.Duration("snapshot-interval", 30*time.Second, "how often to snapshot dirty graphs (0 disables the background snapshotter; requires -data)")
	walSync := flag.Bool("wal-sync", true, "fsync the edge journal on every accepted batch (requires -data; false trades durability for throughput)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "journal segment rotation size in bytes (0 = 64 MiB; requires -data)")
	flag.Parse()

	// Kernel-level op records from every query flow into one process-wide
	// Counters sink, rendered by /metrics.
	counters := &obs.Counters{}
	obs.Set(counters)

	cat := catalog.New()
	var pers *store.Persister
	if *dataDir != "" {
		st, err := store.Open(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
		pers = store.NewPersister(st, cat)
		// The edge journal lives beside the snapshots. Opening it first
		// also runs its own recovery (chain verification, torn-tail
		// truncation), so LoadAll below can replay the suffix.
		jl, err := wal.Open(filepath.Join(*dataDir, "wal"), wal.Options{
			SegmentBytes: *walSegBytes,
			NoSync:       !*walSync,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
		defer jl.Close()
		pers.AttachWAL(jl)
		if rec := jl.Recovery(); rec.TornBytes > 0 {
			log.Printf("lagraphd: wal: dropped %d bytes of torn tail from %s (crash mid-append; tolerated)",
				rec.TornBytes, rec.TornFile)
		}
		// Boot-time recovery: replay every live snapshot, then the journal
		// records beyond each snapshot's pinned offset. Corrupt files are
		// quarantined to *.corrupt and logged — a damaged snapshot must
		// never keep the daemon from serving the healthy ones.
		events, err := pers.LoadAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
		for _, ev := range events {
			if ev.Err != nil {
				if ev.Quarantined {
					log.Printf("lagraphd: recovery: quarantined %s (%s): %v", ev.File, ev.Name, ev.Err)
				} else {
					log.Printf("lagraphd: recovery: skipped %s (%s), snapshot kept for a later boot: %v", ev.File, ev.Name, ev.Err)
				}
				continue
			}
			log.Printf("lagraphd: recovered %q (gen %d, %d vertices, %d edges) from %s",
				ev.Name, ev.Meta.Generation, ev.Meta.NRows, ev.Meta.NVals, ev.File)
		}
		if rs := pers.ReplayStats(); rs.Applied+rs.SkippedFloor+rs.SkippedUnknown > 0 {
			log.Printf("lagraphd: wal: replayed %d edge batches (%d below snapshot floors, %d for unknown graphs)",
				rs.Applied, rs.SkippedFloor, rs.SkippedUnknown)
		}
		log.Printf("lagraphd: durable store at %s (%d graphs, wal next LSN %d)",
			*dataDir, len(cat.Names()), jl.NextLSN())
	}

	srv := svc.New(cat, counters, svc.Config{
		Workers:        *workers,
		Queue:          *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		AllowPathLoad:  *allowPath,
		Persister:      pers,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background snapshotter: every interval, persist graphs whose
	// generation moved since their last durable write. Runs off the query
	// path — snapshots share each entry's read lock with queries.
	if pers != nil && *snapEvery > 0 {
		go snapshotLoop(ctx, pers, *snapEvery)
	}

	errc := make(chan error, 1)
	//grblint:ignore goroutine-lifecycle: ListenAndServe returns when Shutdown closes the listener; errc is buffered so the send never blocks
	go func() {
		log.Printf("lagraphd: listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight queries finish
		// up to their own deadlines (bounded by max-timeout + slack), then
		// flush dirty graphs so a clean stop loses nothing.
		log.Printf("lagraphd: signal received, draining")
		sctx, cancel := context.WithTimeout(context.Background(), *maxTimeout+5*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("lagraphd: shutdown: %v", err)
			os.Exit(1)
		}
		if pers != nil {
			res, err := pers.FlushDirty()
			if err != nil {
				log.Printf("lagraphd: final flush: %v", err)
				os.Exit(1)
			}
			log.Printf("lagraphd: final flush: %d snapshotted, %d already clean",
				len(res.Snapshotted), res.Clean)
		}
		log.Printf("lagraphd: drained, bye")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "lagraphd:", err)
			os.Exit(1)
		}
	}
}

// snapshotLoop persists graphs whose generation moved since their last
// durable write, every interval, until ctx ends. Runs off the query path:
// snapshots share each entry's read lock with queries. A named function
// (not a literal in main) so the shutdown test can drive and leak-check
// it directly.
func snapshotLoop(ctx context.Context, pers *store.Persister, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			res, err := pers.FlushDirty()
			if err != nil {
				log.Printf("lagraphd: background snapshot: %v", err)
			}
			for _, sr := range res.Snapshotted {
				log.Printf("lagraphd: snapshotted %q gen %d (%d bytes, %.1fms)",
					sr.Name, sr.Generation, sr.Bytes, sr.ElapsedMS)
			}
		}
	}
}
