package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/leakcheck"
	"lagraph/internal/obs"
	"lagraph/internal/svc"
)

// TestRunAgainstRealService drives the full loadgen round-trip — load,
// concurrent query mix, determinism check, metrics validation — against
// an in-process service. It is the regression test for the worker-pool
// restructure: the job queue is filled and closed before any worker
// starts, so when run() returns there is no feeder goroutine left behind
// for leakcheck to catch.
func TestRunAgainstRealService(t *testing.T) {
	leakcheck.Check(t)
	t.Cleanup(http.DefaultClient.CloseIdleConnections)
	s := svc.New(catalog.New(), &obs.Counters{}, svc.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	err := run(options{
		bases: []string{ts.URL}, name: "loadgen-test", scale: 5,
		queries: 24, parallel: 4, wait: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunReportsUnhealthyDaemon pins the failure path: no daemon behind
// the URL must surface as an error, not a hang, within the -wait budget.
func TestRunReportsUnhealthyDaemon(t *testing.T) {
	leakcheck.Check(t)
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	err := run(options{bases: []string{ts.URL}, wait: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("run against a dead daemon succeeded")
	}
}
