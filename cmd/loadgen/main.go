// loadgen is the lagraphd load-generator and smoke-test client: it loads
// a generated graph into a running daemon, fires a configurable number of
// concurrent queries across a mix of algorithms, checks every response is
// 2xx with a coherent body, asserts that repeated runs of the same query
// return identical checksums (the determinism contract), and finally
// validates the /metrics payload. Exit status 0 means the round-trip is
// healthy; any protocol violation exits 1 — which is exactly what the CI
// server-smoke job keys on.
//
// Usage:
//
//	loadgen -base http://127.0.0.1:8487 -scale 10 -queries 64 -parallel 8
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"lagraph/internal/svc"
)

type result struct {
	algo     string
	checksum string
	code     int
	err      error
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8487", "daemon base URL")
	scale := flag.Int("scale", 10, "generator scale for the test graph")
	queries := flag.Int("queries", 64, "total queries to fire")
	parallel := flag.Int("parallel", 8, "concurrent query workers")
	name := flag.String("name", "loadgen", "graph name to register")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the daemon to come up")
	flag.Parse()

	if err := run(*base, *name, *scale, *queries, *parallel, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Println("loadgen: OK")
}

func run(base, name string, scale, queries, parallel int, wait time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Minute}

	// 1. Wait for liveness.
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy within %v: %v", wait, err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// 2. Load a deterministic synthetic graph (replace, so reruns work).
	load := map[string]any{
		"name": name, "undirected": true, "replace": true,
		"generator": map[string]any{"kind": "powerlaw", "scale": scale, "edge_factor": 8, "seed": 42},
	}
	code, body, err := postJSON(client, base+"/graphs", load)
	if err != nil {
		return fmt.Errorf("load: %v", err)
	}
	if code/100 != 2 {
		return fmt.Errorf("load: status %d: %s", code, body)
	}

	// 3. Fire the query mix concurrently; every query must be 2xx.
	mix := []map[string]any{
		{"algo": "bfs", "src": 0},
		{"algo": "parents", "src": 0},
		{"algo": "sssp", "src": 0},
		{"algo": "pagerank"},
		{"algo": "cc"},
		{"algo": "tc"},
	}
	jobs := make(chan int)
	results := make(chan result, queries)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := mix[i%len(mix)]
				r := result{algo: q["algo"].(string)}
				code, body, err := postJSON(client, base+"/graphs/"+name+"/query", q)
				r.code, r.err = code, err
				if err == nil && code == 200 {
					var qr struct {
						Checksum string `json:"checksum"`
					}
					if jerr := json.Unmarshal(body, &qr); jerr != nil {
						r.err = fmt.Errorf("bad query body: %v", jerr)
					}
					r.checksum = qr.Checksum
				}
				results <- r
			}
		}()
	}
	go func() {
		for i := 0; i < queries; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	// Identical algo+params must give identical checksums: bitwise
	// determinism is part of the service contract.
	sums := map[string]string{}
	ok := 0
	for r := range results {
		if r.err != nil {
			return fmt.Errorf("query %s: %v", r.algo, r.err)
		}
		if r.code != 200 {
			return fmt.Errorf("query %s: status %d", r.algo, r.code)
		}
		if r.checksum != "" {
			if prev, seen := sums[r.algo]; seen && prev != r.checksum {
				return fmt.Errorf("query %s: nondeterministic checksum %s vs %s", r.algo, r.checksum, prev)
			}
			sums[r.algo] = r.checksum
		}
		ok++
	}
	fmt.Printf("loadgen: %d/%d queries OK across %d algorithms\n", ok, queries, len(mix))

	// 4. Validate /metrics: well-formed Prometheus text with the required
	// families and coherent histograms.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	if err := svc.ValidateMetrics(resp.Body); err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	fmt.Println("loadgen: /metrics validated")
	return nil
}

func postJSON(client *http.Client, url string, v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
