// loadgen is the lagraphd load-generator and smoke-test client: it loads
// a generated graph into a running daemon, fires a configurable number of
// concurrent queries across a mix of algorithms, checks every response is
// 2xx with a coherent body, asserts that repeated runs of the same query
// return identical checksums (the determinism contract), and finally
// validates the /metrics payload. Exit status 0 means the round-trip is
// healthy; any protocol violation exits 1 — which is exactly what the CI
// server-smoke job keys on. Queries alternate between the /v1 and legacy
// spellings, and the legacy spelling is required to answer with a
// Deprecation header while /v1 must not.
//
// With -edges N the mix also ingests N deterministic edge batches (POST
// /v1/graphs/{name}-mut/edges) against a second copy of the graph,
// interleaved with the query traffic. The batches are derived from their
// index alone and pairwise disjoint, so the mutated graph's final state
// is identical regardless of interleaving; a verification pass records
// its post-ingest checksums under mut:* keys.
//
// For crash-recovery smoke testing it can also flush the daemon's
// durable store (-flush), record the per-algorithm checksums to a file
// (-checksums-out), skip loading and query a graph recovered from disk
// (-no-load), and assert the checksums match a previous run
// (-checksums-in) — proving a restarted daemon serves bitwise-identical
// results from its snapshots (and, for mut:* keys, from snapshot + WAL
// replay).
//
// With -dual the run adds an interleaved ingest→query pass against the
// mutation copy: each round ingests one deterministic insert-only batch,
// then issues cc/bfs/pagerank in BOTH mode=full and mode=incremental
// (pagerank via mode=verify, which asserts the tolerance-level
// equivalence server-side) and exits 1 on any checksum divergence
// between the modes. The final dual-pass checksums go into the sums file
// under inc:* keys; the dual batches are idempotent (disjoint last-wins
// upserts), so a recovery run repeating the pass must reproduce them
// bitwise — which is how CI proves a warm-start cache never survives a
// kill -9 incorrectly.
//
// With a comma-separated -base list the target is a lagraphd cluster:
// loadgen waits for every node's /readyz, round-robins the traffic over
// all of them (followed 307s and proxied answers both count), then waits
// for replication to converge (lagraphd_cluster_replication_lag 0 on
// every node) and re-runs every query against every node directly —
// each node must return the same checksum the mixed run produced,
// whichever member computed it.
//
// Usage:
//
//	loadgen -base http://127.0.0.1:8487 -scale 10 -queries 64 -parallel 8
//	loadgen -base ... -edges 32 -flush -checksums-out sums.json  # before kill -9
//	loadgen -base ... -no-load -checksums-in sums.json           # after restart
//	loadgen -base http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"lagraph/internal/svc"
)

type result struct {
	algo     string
	checksum string
	code     int
	err      error
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8487", "daemon base URL, or a comma-separated list to target a cluster")
	scale := flag.Int("scale", 10, "generator scale for the test graph")
	queries := flag.Int("queries", 64, "total queries to fire")
	parallel := flag.Int("parallel", 8, "concurrent query workers")
	name := flag.String("name", "loadgen", "graph name to register")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the daemon to come up")
	noLoad := flag.Bool("no-load", false, "skip loading: the graph must already exist (e.g. recovered from -data)")
	flush := flag.Bool("flush", false, "POST /admin/flush after the query mix (daemon must run with -data)")
	sumsOut := flag.String("checksums-out", "", "write per-algorithm checksums to this JSON file")
	sumsIn := flag.String("checksums-in", "", "require per-algorithm checksums to match this JSON file")
	edges := flag.Int("edges", 0, "edge-mutation batches to interleave with the query mix (0 = none)")
	edgeBatch := flag.Int("edge-batch", 64, "tuples per edge batch")
	edgeOffset := flag.Int("edge-offset", 0, "offset added to batch indices, so successive runs ingest disjoint batches")
	dual := flag.Bool("dual", false, "run the dual-mode ingest→query pass (mode=full vs mode=incremental) against the mutation copy")
	dualRounds := flag.Int("dual-rounds", 3, "ingest→query rounds in the dual-mode pass")
	flag.Parse()

	var bases []string
	for _, b := range strings.Split(*base, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -base names no URLs")
		os.Exit(2)
	}
	opts := options{
		bases: bases, name: *name, scale: *scale, queries: *queries,
		parallel: *parallel, wait: *wait, noLoad: *noLoad, flush: *flush,
		sumsOut: *sumsOut, sumsIn: *sumsIn,
		edges: *edges, edgeBatch: *edgeBatch, edgeOffset: *edgeOffset,
		dual: *dual, dualRounds: *dualRounds,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Println("loadgen: OK")
}

type options struct {
	bases           []string
	name            string
	scale           int
	queries         int
	parallel        int
	wait            time.Duration
	noLoad, flush   bool
	sumsOut, sumsIn string
	edges           int
	edgeBatch       int
	edgeOffset      int
	dual            bool
	dualRounds      int
}

func run(opts options) error {
	bases, name := opts.bases, opts.name
	base := bases[0]
	scale, queries, parallel, wait := opts.scale, opts.queries, opts.parallel, opts.wait
	client := &http.Client{Timeout: 2 * time.Minute}

	// 1. Wait for liveness, then readiness, on every target: /readyz stays
	// 503 while a daemon replays its snapshots+WAL or a cluster member is
	// still catching its replicas up, and traffic fired into that window
	// would measure the gate, not the service.
	deadline := time.Now().Add(wait)
	for _, b := range bases {
		for _, probe := range []string{"/healthz", "/readyz"} {
			for {
				resp, err := client.Get(b + probe)
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == 200 {
						break
					}
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("%s not 200 on %s within %v: %v", probe, b, wait, err)
				}
				time.Sleep(200 * time.Millisecond)
			}
		}
	}

	// 2. Versioning contract: the legacy spelling answers with a
	// Deprecation header naming its /v1 successor; the /v1 spelling
	// answers without one.
	for _, probe := range []struct {
		path       string
		wantLegacy bool
	}{{"/graphs", true}, {"/v1/graphs", false}} {
		resp, err := client.Get(base + probe.path)
		if err != nil {
			return fmt.Errorf("probe %s: %v", probe.path, err)
		}
		resp.Body.Close()
		dep := resp.Header.Get("Deprecation")
		if probe.wantLegacy && dep != "true" {
			return fmt.Errorf("legacy path %s missing Deprecation header", probe.path)
		}
		if !probe.wantLegacy && dep != "" {
			return fmt.Errorf("canonical path %s wrongly marked deprecated", probe.path)
		}
	}

	// 3. Load a deterministic synthetic graph (replace, so reruns work).
	// With -no-load the graph must already be registered — the daemon is
	// expected to have recovered it from its durable store.
	if opts.noLoad {
		resp, err := client.Get(base + "/graphs/" + name)
		if err != nil {
			return fmt.Errorf("info: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("-no-load: graph %q not present (status %d): recovery failed", name, resp.StatusCode)
		}
		fmt.Printf("loadgen: graph %q already present (recovered)\n", name)
	} else {
		load := map[string]any{
			"name": name, "undirected": true, "replace": true,
			"generator": map[string]any{"kind": "powerlaw", "scale": scale, "edge_factor": 8, "seed": 42},
		}
		code, body, err := postJSON(client, base+"/graphs", load)
		if err != nil {
			return fmt.Errorf("load: %v", err)
		}
		if code/100 != 2 {
			return fmt.Errorf("load: status %d: %s", code, body)
		}
		if opts.edges > 0 {
			// Second copy for the mutation traffic, so the concurrent edge
			// batches cannot perturb the main graph's determinism checks.
			load["name"] = mutName(name)
			code, body, err := postJSON(client, base+"/v1/graphs", load)
			if err != nil {
				return fmt.Errorf("load mut: %v", err)
			}
			if code/100 != 2 {
				return fmt.Errorf("load mut: status %d: %s", code, body)
			}
		}
	}

	// 4. Fire the query mix concurrently; every request must be 2xx.
	// Queries alternate between the legacy and /v1 spellings and
	// round-robin over every base (against a cluster, the 307s and proxied
	// answers are part of what is under test); with -edges, deterministic
	// edge batches against the mutation copy are interleaved into the same
	// worker pool.
	n := 1 << opts.scale
	// The job queue is filled and closed up front (it is small — one int
	// per job), so the workers are plain drain-until-closed goroutines
	// and the spawner's wg.Wait() bounds their lifetime; no feeder
	// goroutine to leak if a worker dies early. Job i < queries is query
	// #i; job i >= queries is edge batch #(i-queries). Interleaving comes
	// from striding the edge jobs through the fill order.
	total := queries + opts.edges
	order := interleave(queries, opts.edges)
	jobs := make(chan int, total)
	for _, i := range order {
		jobs <- i
	}
	close(jobs)
	results := make(chan result, total)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				target := bases[i%len(bases)]
				if i >= queries {
					b := i - queries
					r := result{algo: "edges"}
					code, body, err := postJSON(client,
						target+"/v1/graphs/"+mutName(name)+"/edges", edgeBatchBody(n, b+opts.edgeOffset, opts.edgeBatch))
					r.code, r.err = code, err
					if err == nil && code != 200 {
						r.err = fmt.Errorf("edge batch %d: status %d: %s", b, code, body)
						r.code = code
					}
					results <- r
					continue
				}
				q := queryMix[i%len(queryMix)]
				prefix := "" // alternate spellings; both must serve the mix
				if i%2 == 1 {
					prefix = "/v1"
				}
				r := result{algo: q["algo"].(string)}
				code, body, err := postJSON(client, target+prefix+"/graphs/"+name+"/query", q)
				r.code, r.err = code, err
				if err == nil && code == 200 {
					var qr struct {
						Checksum string `json:"checksum"`
					}
					if jerr := json.Unmarshal(body, &qr); jerr != nil {
						r.err = fmt.Errorf("bad query body: %v", jerr)
					}
					r.checksum = qr.Checksum
				}
				results <- r
			}
		}()
	}
	// results is buffered for every job, so the workers finish without a
	// concurrent reader and the loop below sees a closed, fully-drained
	// channel.
	wg.Wait()
	close(results)

	// Identical algo+params must give identical checksums: bitwise
	// determinism is part of the service contract.
	sums := map[string]string{}
	ok := 0
	for r := range results {
		if r.err != nil {
			return fmt.Errorf("query %s: %v", r.algo, r.err)
		}
		if r.code != 200 {
			return fmt.Errorf("query %s: status %d", r.algo, r.code)
		}
		if r.checksum != "" {
			if prev, seen := sums[r.algo]; seen && prev != r.checksum {
				return fmt.Errorf("query %s: nondeterministic checksum %s vs %s", r.algo, r.checksum, prev)
			}
			sums[r.algo] = r.checksum
		}
		ok++
	}
	fmt.Printf("loadgen: %d/%d requests OK across %d algorithms (+%d edge batches)\n",
		ok, total, len(queryMix), opts.edges)

	// Dual-mode pass: interleaved ingest→query rounds where every query
	// runs in both execution modes and the checksums must agree. It runs
	// BEFORE the mutation copy's reference state is recorded, because its
	// rounds ingest further (idempotent) batches.
	if opts.dual {
		incSums, err := dualModePass(client, bases, mutName(name), n, opts.dualRounds, opts.wait)
		if err != nil {
			return err
		}
		for k, v := range incSums {
			sums[k] = v
		}
	}

	// Post-ingest verification of the mutation copy: its final state is a
	// pure function of the batch set (batches are pairwise disjoint, and a
	// batch's removes target only its own adds), so these checksums are
	// deterministic and recoverable — they go into the sums file under
	// mut:* keys and must survive a kill -9 via snapshot + WAL replay.
	// The -no-load recovery run re-verifies whenever the daemon recovered
	// the mutation copy, without needing -edges itself.
	// Against a cluster, replication must converge BEFORE the mutation
	// copy's reference state is recorded: right after the ingest burst,
	// bases[0] may be a replica that has not applied the tail yet, and its
	// answer would record a stale "agreed" state.
	if len(bases) > 1 {
		if err := clusterConverge(client, bases, wait); err != nil {
			return err
		}
	}
	if mutSums, err := verifyMut(client, base, mutName(name)); err != nil {
		return err
	} else {
		for k, v := range mutSums {
			sums[k] = v
		}
	}

	// Cluster pass: every node must answer every query with the checksum
	// the mixed run produced — bitwise identity across members is the
	// whole point of shipping the WAL instead of re-running the generator.
	if len(bases) > 1 {
		if err := clusterIdentity(client, bases, name, sums); err != nil {
			return err
		}
	}

	// Cross-run determinism: compare against (or record for) another run,
	// typically across a daemon kill and recovery. Every recorded key must
	// be present — a key the recovery run cannot produce means a graph
	// was lost, which is exactly what this check exists to catch.
	if opts.sumsIn != "" {
		raw, err := os.ReadFile(opts.sumsIn)
		if err != nil {
			return fmt.Errorf("checksums-in: %v", err)
		}
		want := map[string]string{}
		if err := json.Unmarshal(raw, &want); err != nil {
			return fmt.Errorf("checksums-in: %v", err)
		}
		for algo, sum := range want {
			got, have := sums[algo]
			if !have {
				return fmt.Errorf("checksum missing after recovery: %s was %s, now absent", algo, sum)
			}
			if got != sum {
				return fmt.Errorf("checksum drift after recovery: %s was %s, now %s", algo, sum, got)
			}
		}
		fmt.Printf("loadgen: %d checksums identical to %s\n", len(want), opts.sumsIn)
	}
	if opts.sumsOut != "" {
		raw, err := json.MarshalIndent(sums, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.sumsOut, raw, 0o644); err != nil {
			return fmt.Errorf("checksums-out: %v", err)
		}
		fmt.Printf("loadgen: wrote %d checksums to %s\n", len(sums), opts.sumsOut)
	}

	// Flush the durable stores so everything queried above is on disk
	// before the caller kills a daemon.
	if opts.flush {
		for _, b := range bases {
			code, body, err := postJSON(client, b+"/admin/flush", nil)
			if err != nil {
				return fmt.Errorf("flush %s: %v", b, err)
			}
			if code != 200 {
				return fmt.Errorf("flush %s: status %d: %s", b, code, body)
			}
			fmt.Printf("loadgen: flushed %s: %s\n", b, bytes.TrimSpace(body))
		}
	}

	// 5. Validate /metrics on every node: well-formed Prometheus text with
	// the required families and coherent histograms.
	for _, b := range bases {
		resp, err := client.Get(b + "/metrics")
		if err != nil {
			return fmt.Errorf("metrics %s: %v", b, err)
		}
		err = svc.ValidateMetrics(resp.Body)
		code := resp.StatusCode
		resp.Body.Close()
		if code != 200 {
			return fmt.Errorf("metrics %s: status %d", b, code)
		}
		if err != nil {
			return fmt.Errorf("metrics %s: %v", b, err)
		}
	}
	fmt.Println("loadgen: /metrics validated")
	return nil
}

// queryMix is the algorithm set every run exercises; clusterVerify
// re-runs the same set per node so the checksums are comparable.
var queryMix = []map[string]any{
	{"algo": "bfs", "src": 0},
	{"algo": "parents", "src": 0},
	{"algo": "sssp", "src": 0},
	{"algo": "pagerank"},
	{"algo": "cc"},
	{"algo": "tc"},
}

// clusterConverge blocks until replication converged on every node (or
// the wait budget runs out).
//
// Convergence is judged across nodes, not per node: a replica's own lag
// metric reads 0 until its next poll observes the primary's new head, so
// right after an ingest burst a stale replica can look caught up to
// itself. Comparing every replica's journal position and generation
// against its primary's in the same round closes that window.
func clusterConverge(client *http.Client, bases []string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		lagging, err := clusterLagging(client, bases)
		if err == nil && lagging == "" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replication did not converge within %v: %s (%v)", wait, lagging, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// With journals agreed, every node's own lag gauge must read 0 too —
	// this is the operator-facing signal CI greps for.
	for _, b := range bases {
		for {
			body, err := getBody(client, b+"/metrics")
			if err == nil &&
				strings.Contains(body, "\nlagraphd_cluster_replication_lag 0\n") &&
				strings.Contains(body, "\nlagraphd_cluster_ready 1\n") {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replication lag gauge on %s did not reach 0 within %v", b, wait)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// clusterIdentity queries every node for every recorded checksum and
// requires bitwise-identical answers — served locally on owners, routed
// on non-owners. The mutation copy's nedges/cc/tc (mut:* keys) are
// re-checked the same way when present.
func clusterIdentity(client *http.Client, bases []string, name string, sums map[string]string) error {
	checks := 0
	for _, b := range bases {
		for _, q := range queryMix {
			algo := q["algo"].(string)
			want, have := sums[algo]
			if !have {
				continue
			}
			code, body, err := postJSON(client, b+"/v1/graphs/"+name+"/query", q)
			if err != nil || code != 200 {
				return fmt.Errorf("cluster %s %s: status %d: %v %s", b, algo, code, err, body)
			}
			var qr struct {
				Checksum string `json:"checksum"`
				Cluster  struct {
					Role   string `json:"role"`
					LagLSN uint64 `json:"lag_lsn"`
				} `json:"cluster"`
			}
			if err := json.Unmarshal(body, &qr); err != nil {
				return fmt.Errorf("cluster %s %s: %v", b, algo, err)
			}
			if qr.Checksum != want {
				return fmt.Errorf("cluster divergence: %s answers %s with %s, cluster agreed on %s",
					b, algo, qr.Checksum, want)
			}
			if qr.Cluster.LagLSN != 0 {
				return fmt.Errorf("cluster %s %s: served with lag %d after convergence", b, algo, qr.Cluster.LagLSN)
			}
			checks++
		}
		if _, have := sums["mut:cc"]; have {
			mutSums, err := verifyMut(client, b, mutName(name))
			if err != nil {
				return fmt.Errorf("cluster %s: %v", b, err)
			}
			for _, k := range []string{"mut:nedges", "mut:cc", "mut:tc"} {
				if mutSums[k] != sums[k] {
					return fmt.Errorf("cluster divergence: %s answers %s with %s, cluster agreed on %s",
						b, k, mutSums[k], sums[k])
				}
			}
			checks += 3
		}
	}
	fmt.Printf("loadgen: cluster converged, %d checksums identical across %d nodes\n", checks, len(bases))
	return nil
}

// clusterLagging polls /v1/cluster/status on every base and reports the
// first replica whose journal position or generation disagrees with its
// primary's ("" = fully converged). A replica whose primary is not among
// the polled bases cannot be judged and counts as lagging — the caller
// is expected to name every live node.
func clusterLagging(client *http.Client, bases []string) (string, error) {
	type graphPos struct {
		Name       string `json:"name"`
		Role       string `json:"role"`
		Generation uint64 `json:"generation"`
		Journal    uint64 `json:"journal"`
	}
	type status struct {
		Node   string     `json:"node"`
		Ready  bool       `json:"ready"`
		Graphs []graphPos `json:"graphs"`
	}
	primaries := map[string]graphPos{}
	type replica struct {
		base string
		g    graphPos
	}
	var replicas []replica
	for _, b := range bases {
		body, err := getBody(client, b+"/v1/cluster/status")
		if err != nil {
			return b + " unreachable", err
		}
		var st status
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			return b + " bad status", err
		}
		if !st.Ready {
			return b + " not ready", nil
		}
		for _, g := range st.Graphs {
			switch g.Role {
			case "primary":
				primaries[g.Name] = g
			case "replica":
				replicas = append(replicas, replica{base: b, g: g})
			}
		}
	}
	for _, r := range replicas {
		p, ok := primaries[r.g.Name]
		if !ok {
			return fmt.Sprintf("%s replicates %q but no polled node is its primary", r.base, r.g.Name), nil
		}
		if r.g.Journal != p.Journal || r.g.Generation != p.Generation {
			return fmt.Sprintf("%s lags on %q: journal %d gen %d, primary at %d gen %d",
				r.base, r.g.Name, r.g.Journal, r.g.Generation, p.Journal, p.Generation), nil
		}
	}
	return "", nil
}

// getBody fetches a URL and returns its body as a string (any status).
func getBody(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// mutName is the mutation copy's graph name.
func mutName(name string) string { return name + "-mut" }

// dualBatchBase offsets the dual-mode pass's batch indices far above the
// -edges burst so the two tuple ranges are disjoint. Indices are mapped
// to residues 0..2 mod 4 (edgeBatchBody makes every 4th batch remove),
// keeping every dual batch insert-only — the precondition for the exact
// warm starts it is exercising.
const dualBatchBase = 8000

// dualBatchLen is fixed rather than inherited from -edge-batch: the
// recovery run repeats the dual pass to prove checksum identity, and its
// batches are only idempotent if they are byte-for-byte the ones the
// pre-crash run ingested, whatever flags each invocation happened to
// use.
const dualBatchLen = 48

// dualQuery is one checksum-bearing query of the dual-mode pass.
type dualQuery struct {
	Checksum    string `json:"checksum"`
	Incremental *struct {
		ModeUsed       string `json:"mode_used"`
		FallbackReason string `json:"fallback_reason"`
		Verify         *struct {
			Equivalent bool `json:"equivalent"`
		} `json:"verify"`
	} `json:"incremental"`
}

// dualModePass proves mode equivalence over live traffic: each round
// primes the incremental cache with full-mode queries, ingests one
// deterministic insert-only batch, then reissues every query in both
// modes — cc and bfs must answer with bitwise-identical checksums, and
// pagerank goes through mode=verify so the daemon itself asserts the
// tolerance bound (a divergence is a 500, which fails the pass). Against
// a single node the warm start is also REQUIRED to engage (the prior was
// primed in the same round); against a cluster the round-robin may land
// a query on a node without a prior, where an honest fallback is
// legitimate and checksum identity is the whole contract. Returns the
// final checksums under inc:* keys.
func dualModePass(client *http.Client, bases []string, mut string, n, rounds int, wait time.Duration) (map[string]string, error) {
	requireWarm := len(bases) == 1
	queries := []map[string]any{
		{"algo": "cc"},
		{"algo": "bfs", "src": 0},
		{"algo": "pagerank"},
	}
	ask := func(target string, q map[string]any, mode string) (dualQuery, error) {
		body := map[string]any{"mode": mode}
		for k, v := range q {
			body[k] = v
		}
		code, raw, err := postJSON(client, target+"/v1/graphs/"+mut+"/query", body)
		if err != nil {
			return dualQuery{}, fmt.Errorf("dual %s mode=%s: %v", q["algo"], mode, err)
		}
		if code != 200 {
			return dualQuery{}, fmt.Errorf("dual %s mode=%s: status %d: %s", q["algo"], mode, code, raw)
		}
		var dq dualQuery
		if err := json.Unmarshal(raw, &dq); err != nil {
			return dualQuery{}, fmt.Errorf("dual %s mode=%s: %v", q["algo"], mode, err)
		}
		return dq, nil
	}
	sums := map[string]string{}
	rr := 0
	next := func() string { rr++; return bases[rr%len(bases)] }
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			if _, err := ask(next(), q, "full"); err != nil {
				return nil, err
			}
		}
		idx := dualBatchBase + (r/3)*4 + r%3
		code, raw, err := postJSON(client, next()+"/v1/graphs/"+mut+"/edges", edgeBatchBody(n, idx, dualBatchLen))
		if err != nil || code != 200 {
			return nil, fmt.Errorf("dual ingest round %d: status %d: %v %s", r, code, err, raw)
		}
		// Against a cluster, the next queries round-robin over every node:
		// wait for replication so the two modes are never compared across
		// nodes at different generations.
		if len(bases) > 1 {
			if err := clusterConverge(client, bases, wait); err != nil {
				return nil, fmt.Errorf("dual round %d: %v", r, err)
			}
		}
		for _, q := range queries {
			algo := q["algo"].(string)
			if algo == "pagerank" {
				vq, err := ask(next(), q, "verify")
				if err != nil {
					return nil, err
				}
				if vq.Incremental == nil || vq.Incremental.Verify == nil || !vq.Incremental.Verify.Equivalent {
					return nil, fmt.Errorf("dual pagerank round %d: verify did not report equivalence", r)
				}
				if requireWarm && vq.Incremental.ModeUsed != "incremental" {
					return nil, fmt.Errorf("dual pagerank round %d: expected a warm start, got mode_used=%s (%s)",
						r, vq.Incremental.ModeUsed, vq.Incremental.FallbackReason)
				}
				sums["inc:pagerank"] = vq.Checksum
				continue
			}
			inc, err := ask(next(), q, "incremental")
			if err != nil {
				return nil, err
			}
			full, err := ask(next(), q, "full")
			if err != nil {
				return nil, err
			}
			if inc.Checksum != full.Checksum {
				return nil, fmt.Errorf("dual %s round %d: incremental checksum %s != full %s",
					algo, r, inc.Checksum, full.Checksum)
			}
			if requireWarm && (inc.Incremental == nil || inc.Incremental.ModeUsed != "incremental") {
				reason := "missing incremental info"
				if inc.Incremental != nil {
					reason = inc.Incremental.FallbackReason
				}
				return nil, fmt.Errorf("dual %s round %d: expected a warm start, got fallback (%s)", algo, r, reason)
			}
			sums["inc:"+algo] = full.Checksum
		}
	}
	fmt.Printf("loadgen: dual-mode pass OK: %d rounds, full ≡ incremental for cc/bfs, pagerank verified in-bound\n", rounds)
	return sums, nil
}

// interleave returns job indices 0..queries+edges-1 with the edge jobs
// (indices >= queries) strided evenly through the query jobs, so edge
// ingestion and query traffic genuinely overlap in the worker pool.
func interleave(queries, edges int) []int {
	out := make([]int, 0, queries+edges)
	if edges == 0 {
		for i := 0; i < queries; i++ {
			out = append(out, i)
		}
		return out
	}
	stride := queries/edges + 1
	e := 0
	for i := 0; i < queries; i++ {
		out = append(out, i)
		if (i+1)%stride == 0 && e < edges {
			out = append(out, queries+e)
			e++
		}
	}
	for ; e < edges; e++ {
		out = append(out, queries+e)
	}
	return out
}

// edgeBatchBody builds deterministic edge batch #b for an n-vertex graph.
// Tuple m = b*size+k maps to a unique (src, dst) pair, so batches are
// pairwise disjoint and the final graph state does not depend on the
// order in which concurrent batches land. Every 4th batch also removes
// the first half of its own adds in the same batch (within-batch order is
// preserved by the ingest contract), exercising the remove path without
// introducing cross-batch ordering dependencies.
func edgeBatchBody(n, b, size int) map[string]any {
	type tuple = map[string]any
	mk := func(k int) (src, dst int, w float64) {
		m := b*size + k
		src = m % n
		dst = (m/n + src + 1) % n
		if dst == src {
			dst = (dst + 1) % n
		}
		return src, dst, float64(1 + m%7)
	}
	var edges []tuple
	for k := 0; k < size; k++ {
		src, dst, w := mk(k)
		edges = append(edges, tuple{"src": src, "dst": dst, "weight": w})
	}
	if b%4 == 3 {
		for k := 0; k < size/2; k++ {
			src, dst, _ := mk(k)
			edges = append(edges, tuple{"src": src, "dst": dst, "remove": true})
		}
	}
	return map[string]any{"edges": edges}
}

// verifyMut records the mutation copy's post-ingest state: structural
// edge count plus cc/tc checksums, keyed mut:*. A daemon that never saw
// the mutation copy (plain run without -edges, or a recovery where it was
// never created) contributes nothing.
func verifyMut(client *http.Client, base, mut string) (map[string]string, error) {
	resp, err := client.Get(base + "/v1/graphs/" + mut)
	if err != nil {
		return nil, fmt.Errorf("mut info: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == 404 {
		return nil, nil
	}
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("mut info: status %d", resp.StatusCode)
	}
	var info struct {
		NEdges int `json:"nedges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("mut info: %v", err)
	}
	sums := map[string]string{"mut:nedges": fmt.Sprint(info.NEdges)}
	for _, algo := range []string{"cc", "tc"} {
		code, body, err := postJSON(client, base+"/v1/graphs/"+mut+"/query", map[string]any{"algo": algo})
		if err != nil {
			return nil, fmt.Errorf("mut %s: %v", algo, err)
		}
		if code != 200 {
			return nil, fmt.Errorf("mut %s: status %d: %s", algo, code, body)
		}
		var qr struct {
			Checksum string `json:"checksum"`
		}
		if err := json.Unmarshal(body, &qr); err != nil {
			return nil, fmt.Errorf("mut %s: %v", algo, err)
		}
		sums["mut:"+algo] = qr.Checksum
	}
	fmt.Printf("loadgen: mutation copy %q verified (%d stored entries)\n", mut, info.NEdges)
	return sums, nil
}

func postJSON(client *http.Client, url string, v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
