// loadgen is the lagraphd load-generator and smoke-test client: it loads
// a generated graph into a running daemon, fires a configurable number of
// concurrent queries across a mix of algorithms, checks every response is
// 2xx with a coherent body, asserts that repeated runs of the same query
// return identical checksums (the determinism contract), and finally
// validates the /metrics payload. Exit status 0 means the round-trip is
// healthy; any protocol violation exits 1 — which is exactly what the CI
// server-smoke job keys on.
//
// For crash-recovery smoke testing it can also flush the daemon's
// durable store (-flush), record the per-algorithm checksums to a file
// (-checksums-out), skip loading and query a graph recovered from disk
// (-no-load), and assert the checksums match a previous run
// (-checksums-in) — proving a restarted daemon serves bitwise-identical
// results from its snapshots.
//
// Usage:
//
//	loadgen -base http://127.0.0.1:8487 -scale 10 -queries 64 -parallel 8
//	loadgen -base ... -flush -checksums-out sums.json   # before kill -9
//	loadgen -base ... -no-load -checksums-in sums.json  # after restart
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"lagraph/internal/svc"
)

type result struct {
	algo     string
	checksum string
	code     int
	err      error
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8487", "daemon base URL")
	scale := flag.Int("scale", 10, "generator scale for the test graph")
	queries := flag.Int("queries", 64, "total queries to fire")
	parallel := flag.Int("parallel", 8, "concurrent query workers")
	name := flag.String("name", "loadgen", "graph name to register")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the daemon to come up")
	noLoad := flag.Bool("no-load", false, "skip loading: the graph must already exist (e.g. recovered from -data)")
	flush := flag.Bool("flush", false, "POST /admin/flush after the query mix (daemon must run with -data)")
	sumsOut := flag.String("checksums-out", "", "write per-algorithm checksums to this JSON file")
	sumsIn := flag.String("checksums-in", "", "require per-algorithm checksums to match this JSON file")
	flag.Parse()

	opts := options{
		base: *base, name: *name, scale: *scale, queries: *queries,
		parallel: *parallel, wait: *wait, noLoad: *noLoad, flush: *flush,
		sumsOut: *sumsOut, sumsIn: *sumsIn,
	}
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Println("loadgen: OK")
}

type options struct {
	base, name      string
	scale           int
	queries         int
	parallel        int
	wait            time.Duration
	noLoad, flush   bool
	sumsOut, sumsIn string
}

func run(opts options) error {
	base, name := opts.base, opts.name
	scale, queries, parallel, wait := opts.scale, opts.queries, opts.parallel, opts.wait
	client := &http.Client{Timeout: 2 * time.Minute}

	// 1. Wait for liveness.
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy within %v: %v", wait, err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// 2. Load a deterministic synthetic graph (replace, so reruns work).
	// With -no-load the graph must already be registered — the daemon is
	// expected to have recovered it from its durable store.
	if opts.noLoad {
		resp, err := client.Get(base + "/graphs/" + name)
		if err != nil {
			return fmt.Errorf("info: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return fmt.Errorf("-no-load: graph %q not present (status %d): recovery failed", name, resp.StatusCode)
		}
		fmt.Printf("loadgen: graph %q already present (recovered)\n", name)
	} else {
		load := map[string]any{
			"name": name, "undirected": true, "replace": true,
			"generator": map[string]any{"kind": "powerlaw", "scale": scale, "edge_factor": 8, "seed": 42},
		}
		code, body, err := postJSON(client, base+"/graphs", load)
		if err != nil {
			return fmt.Errorf("load: %v", err)
		}
		if code/100 != 2 {
			return fmt.Errorf("load: status %d: %s", code, body)
		}
	}

	// 3. Fire the query mix concurrently; every query must be 2xx.
	mix := []map[string]any{
		{"algo": "bfs", "src": 0},
		{"algo": "parents", "src": 0},
		{"algo": "sssp", "src": 0},
		{"algo": "pagerank"},
		{"algo": "cc"},
		{"algo": "tc"},
	}
	// The job queue is filled and closed up front (it is small — one int
	// per query), so the workers are plain drain-until-closed goroutines
	// and the spawner's wg.Wait() bounds their lifetime; no feeder
	// goroutine to leak if a worker dies early.
	jobs := make(chan int, queries)
	for i := 0; i < queries; i++ {
		jobs <- i
	}
	close(jobs)
	results := make(chan result, queries)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				q := mix[i%len(mix)]
				r := result{algo: q["algo"].(string)}
				code, body, err := postJSON(client, base+"/graphs/"+name+"/query", q)
				r.code, r.err = code, err
				if err == nil && code == 200 {
					var qr struct {
						Checksum string `json:"checksum"`
					}
					if jerr := json.Unmarshal(body, &qr); jerr != nil {
						r.err = fmt.Errorf("bad query body: %v", jerr)
					}
					r.checksum = qr.Checksum
				}
				results <- r
			}
		}()
	}
	// results is buffered for every query, so the workers finish without a
	// concurrent reader and the loop below sees a closed, fully-drained
	// channel.
	wg.Wait()
	close(results)

	// Identical algo+params must give identical checksums: bitwise
	// determinism is part of the service contract.
	sums := map[string]string{}
	ok := 0
	for r := range results {
		if r.err != nil {
			return fmt.Errorf("query %s: %v", r.algo, r.err)
		}
		if r.code != 200 {
			return fmt.Errorf("query %s: status %d", r.algo, r.code)
		}
		if r.checksum != "" {
			if prev, seen := sums[r.algo]; seen && prev != r.checksum {
				return fmt.Errorf("query %s: nondeterministic checksum %s vs %s", r.algo, r.checksum, prev)
			}
			sums[r.algo] = r.checksum
		}
		ok++
	}
	fmt.Printf("loadgen: %d/%d queries OK across %d algorithms\n", ok, queries, len(mix))

	// Cross-run determinism: compare against (or record for) another run,
	// typically across a daemon kill and recovery.
	if opts.sumsIn != "" {
		raw, err := os.ReadFile(opts.sumsIn)
		if err != nil {
			return fmt.Errorf("checksums-in: %v", err)
		}
		want := map[string]string{}
		if err := json.Unmarshal(raw, &want); err != nil {
			return fmt.Errorf("checksums-in: %v", err)
		}
		for algo, sum := range want {
			if got, have := sums[algo]; have && got != sum {
				return fmt.Errorf("checksum drift after recovery: %s was %s, now %s", algo, sum, got)
			}
		}
		fmt.Printf("loadgen: %d checksums identical to %s\n", len(want), opts.sumsIn)
	}
	if opts.sumsOut != "" {
		raw, err := json.MarshalIndent(sums, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opts.sumsOut, raw, 0o644); err != nil {
			return fmt.Errorf("checksums-out: %v", err)
		}
		fmt.Printf("loadgen: wrote %d checksums to %s\n", len(sums), opts.sumsOut)
	}

	// Flush the durable store so everything queried above is on disk
	// before the caller kills the daemon.
	if opts.flush {
		code, body, err := postJSON(client, base+"/admin/flush", nil)
		if err != nil {
			return fmt.Errorf("flush: %v", err)
		}
		if code != 200 {
			return fmt.Errorf("flush: status %d: %s", code, body)
		}
		fmt.Printf("loadgen: flushed: %s\n", bytes.TrimSpace(body))
	}

	// 4. Validate /metrics: well-formed Prometheus text with the required
	// families and coherent histograms.
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	if err := svc.ValidateMetrics(resp.Body); err != nil {
		return fmt.Errorf("metrics: %v", err)
	}
	fmt.Println("loadgen: /metrics validated")
	return nil
}

func postJSON(client *http.Client, url string, v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}
