// loc is a cloc-style line counter for the Table II reproduction: the
// paper compares lines of application code needed for BFS, single-source
// shortest path and local graph clustering across Ligra, GraphIt and
// GraphBLAS (GraphBLAST). This tool counts the non-blank, non-comment
// source lines of the corresponding functions in this repository's
// algorithm collection so the comparison can be regenerated from source.
//
//	go run ./cmd/loc [-dir internal/lagraph] [-files]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"lagraph/internal/loccount"
)

// TableII holds the paper's published numbers and the local function(s)
// whose count reproduces each row.
var TableII = []struct {
	Alg            string
	Ligra, GraphIt string
	GraphBLAS      string
	Funcs          []string
}{
	{"Breadth-first search", "29", "22", "25", []string{"BFSLevelSimple"}},
	{"Single-source shortest-path", "55", "25", "25", []string{"SSSPBellmanFord"}},
	{"Local graph clustering", "84", "N/A", "45", []string{"LocalCluster"}},
}

func main() {
	dir := flag.String("dir", "internal/lagraph", "directory of Go sources to analyze")
	perFile := flag.Bool("files", false, "also print per-file totals")
	flag.Parse()

	funcs, fileTotals, err := loccount.CountDir(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loc:", err)
		os.Exit(1)
	}
	byName := loccount.ByName(funcs)

	fmt.Println("Table II reproduction — lines of application code")
	fmt.Println()
	fmt.Printf("%-28s %7s %8s %11s %8s\n", "Algorithm", "Ligra", "GraphIt", "GraphBLAS", "lagraph-go")
	for _, r := range TableII {
		total := 0
		for _, fn := range r.Funcs {
			total += byName[fn]
		}
		fmt.Printf("%-28s %7s %8s %11s %8d\n", r.Alg, r.Ligra, r.GraphIt, r.GraphBLAS, total)
	}
	fmt.Println("\n(paper columns from Table II; lagraph-go counted from",
		*dir+" by this tool: non-blank, non-comment lines of the function body)")

	fmt.Println("\nPer-function counts:")
	sort.Slice(funcs, func(a, b int) bool { return funcs[a].Name < funcs[b].Name })
	for _, f := range funcs {
		fmt.Printf("  %-36s %4d  (%s)\n", f.Name, f.Lines, f.File)
	}

	if *perFile {
		fmt.Println("\nPer-file totals:")
		names := make([]string, 0, len(fileTotals))
		for n := range fileTotals {
			names = append(names, n)
		}
		sort.Strings(names)
		grand := 0
		for _, n := range names {
			fmt.Printf("  %-36s %5d\n", n, fileTotals[n])
			grand += fileTotals[n]
		}
		fmt.Printf("  %-36s %5d\n", "TOTAL", grand)
	}
}
