// Command grblint runs the repository's invariant checks — the analyzer
// suite in internal/lint — over the packages named by its arguments.
//
// Usage:
//
//	go run ./cmd/grblint [-json] [-checks a,b] [-list] [-list-ignores] [packages...]
//
// Packages are directories, with the go-tool "..." wildcard supported
// (default "./..."). Exit status is 0 when clean, 1 when any diagnostic
// is reported, 2 on a usage or load error.
//
// Individual findings can be suppressed with a trailing or preceding
// comment; the reason is mandatory (a bare directive is itself a
// diagnostic) and -list-ignores inventories every suppression in scope:
//
//	//grblint:ignore <check>[,<check>...]: <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"lagraph/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver, factored so the exit-status/output contract —
// what CI and the driver tests key on — is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("grblint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics (or ignores) as a JSON array")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	listIgnores := fs.Bool("list-ignores", false, "inventory every grblint:ignore directive and exit")
	verbose := fs.Bool("v", false, "report packages as they are checked and any type-check noise")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-18s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	var selection []string
	if *checksFlag != "" {
		known := map[string]bool{}
		for _, name := range lint.CheckNames() {
			known[name] = true
		}
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(stderr, "grblint: unknown check %q (use -list)\n", name)
				return 2
			}
			selection = append(selection, name)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(stderr, "grblint: %v\n", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "grblint: %v\n", err)
		return 2
	}

	cwd, _ := os.Getwd()
	relative := func(path string) string {
		if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return path
	}

	var all []lint.Diagnostic
	var ignores []lint.IgnoreDirective
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "grblint: %s: %v\n", dir, err)
			return 2
		}
		if *verbose {
			fmt.Fprintf(stderr, "grblint: checking %s (%d files, %d type notes)\n",
				pkg.Path, len(pkg.Files), len(pkg.TypeErrors))
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "grblint:   note: %v\n", te)
			}
		}
		if *listIgnores {
			for _, ig := range lint.Ignores(pkg) {
				ig.File = relative(ig.File)
				ignores = append(ignores, ig)
			}
			continue
		}
		diags := lint.RunChecks(pkg, selection)
		for i := range diags {
			diags[i].File = relative(diags[i].File)
		}
		all = append(all, diags...)
	}

	if *listIgnores {
		if *jsonOut {
			if ignores == nil {
				ignores = []lint.IgnoreDirective{}
			}
			return encodeJSON(stdout, stderr, ignores)
		}
		for _, ig := range ignores {
			fmt.Fprintf(stdout, "%s:%d: %s: %s\n",
				ig.File, ig.Line, strings.Join(ig.Checks, ","), ig.Reason)
		}
		fmt.Fprintf(stderr, "grblint: %d ignore directive(s)\n", len(ignores))
		return 0
	}

	if *jsonOut {
		if all == nil {
			all = []lint.Diagnostic{}
		}
		if code := encodeJSON(stdout, stderr, all); code != 0 {
			return code
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "grblint: %d diagnostic(s)\n", len(all))
		}
		return 1
	}
	return 0
}

// encodeJSON writes v as indented JSON, mapping encoder failure onto the
// load-error exit status.
func encodeJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(stderr, "grblint: %v\n", err)
		return 2
	}
	return 0
}
