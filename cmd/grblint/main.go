// Command grblint runs the repository's invariant checks — the analyzer
// suite in internal/lint — over the packages named by its arguments.
//
// Usage:
//
//	go run ./cmd/grblint [-json] [-checks a,b] [-list] [packages...]
//
// Packages are directories, with the go-tool "..." wildcard supported
// (default "./..."). Exit status is 0 when clean, 1 when any diagnostic
// is reported, 2 on a usage or load error.
//
// Individual findings can be suppressed with a trailing or preceding
// comment:
//
//	//grblint:ignore <check>[,<check>...] <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lagraph/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "list available checks and exit")
	verbose := flag.Bool("v", false, "report packages as they are checked and any type-check noise")
	flag.Parse()

	if *list {
		for _, c := range lint.Checks() {
			fmt.Printf("%-18s %s\n", c.Name, c.Doc)
		}
		return
	}

	var selection []string
	if *checksFlag != "" {
		known := map[string]bool{}
		for _, name := range lint.CheckNames() {
			known[name] = true
		}
		for _, name := range strings.Split(*checksFlag, ",") {
			name = strings.TrimSpace(name)
			if !known[name] {
				fmt.Fprintf(os.Stderr, "grblint: unknown check %q (use -list)\n", name)
				os.Exit(2)
			}
			selection = append(selection, name)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "grblint: %v\n", err)
		os.Exit(2)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grblint: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	var all []lint.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grblint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "grblint: checking %s (%d files, %d type notes)\n",
				pkg.Path, len(pkg.Files), len(pkg.TypeErrors))
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "grblint:   note: %v\n", te)
			}
		}
		diags := lint.RunChecks(pkg, selection)
		for i := range diags {
			if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].File = rel
			}
		}
		all = append(all, diags...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []lint.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "grblint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			fmt.Println(d)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "grblint: %d diagnostic(s)\n", len(all))
		}
		os.Exit(1)
	}
}
