package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lagraph/internal/lint"
)

// writeModule materializes a throwaway Go module the driver can be
// pointed at, returning its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runIn executes the driver from dir, capturing exit code and output.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	t.Chdir(dir)
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

const goMod = "module tmpmod\n\ngo 1.24\n"

// cleanSrc has nothing for any check to object to.
const cleanSrc = `package widget

// Add sums two ints.
func Add(a, b int) int { return a + b }
`

// leakySrc spawns a goroutine with no termination path — the one finding
// whose check applies in every package.
const leakySrc = `package widget

// Leak pumps ch forever with no way to stop.
func Leak(ch chan int) {
	go func() {
		for {
			<-ch
		}
	}()
}
`

func TestExitCodeClean(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "widget/widget.go": cleanSrc})
	code, stdout, stderr := runIn(t, dir, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean module wrote diagnostics: %s", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "widget/widget.go": leakySrc})
	code, stdout, stderr := runIn(t, dir, "./...")
	if code != 1 {
		t.Fatalf("leaky module: exit %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "goroutine-lifecycle") {
		t.Errorf("diagnostic does not name its check:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 diagnostic(s)") {
		t.Errorf("missing summary line on stderr: %s", stderr)
	}
}

func TestExitCodeLoadError(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod})
	if code, _, _ := runIn(t, dir, "./no/such/dir"); code != 2 {
		t.Errorf("missing package: exit %d, want 2", code)
	}
	if code, _, stderr := runIn(t, dir, "-checks", "no-such-check", "./..."); code != 2 || !strings.Contains(stderr, "unknown check") {
		t.Errorf("unknown check: exit %d, stderr %q, want 2 + message", code, stderr)
	}
}

func TestJSONSchema(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "widget/widget.go": leakySrc})
	code, stdout, _ := runIn(t, dir, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("output is not a diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d", len(diags))
	}
	d := diags[0]
	if d.Check != "goroutine-lifecycle" || d.Line <= 0 || !strings.HasSuffix(d.File, "widget.go") || d.Message == "" {
		t.Errorf("incomplete diagnostic: %+v", d)
	}

	// A clean run still emits a well-formed (empty) array.
	clean := writeModule(t, map[string]string{"go.mod": goMod, "widget/widget.go": cleanSrc})
	_, stdout, _ = runIn(t, clean, "-json", "./...")
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil || len(diags) != 0 {
		t.Errorf("clean -json output: %q (err %v)", stdout, err)
	}
}

func TestChecksFiltering(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "widget/widget.go": leakySrc})
	if code, _, _ := runIn(t, dir, "-checks", "kernel-purity", "./..."); code != 0 {
		t.Errorf("filtered-out finding still reported: exit %d", code)
	}
	if code, _, _ := runIn(t, dir, "-checks", "goroutine-lifecycle", "./..."); code != 1 {
		t.Errorf("selected check suppressed: exit %d", code)
	}
}

func TestSuppressionAndInventory(t *testing.T) {
	suppressed := `package widget

// Pump drains ch until the process exits; ownership documented below.
func Pump(ch chan int) {
	//grblint:ignore goroutine-lifecycle: process-lifetime pump, exits with main
	go func() {
		for {
			<-ch
		}
	}()
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "widget/widget.go": suppressed})
	if code, stdout, _ := runIn(t, dir, "./..."); code != 0 {
		t.Fatalf("justified ignore did not suppress: exit %d\n%s", code, stdout)
	}

	code, stdout, stderr := runIn(t, dir, "-list-ignores", "./...")
	if code != 0 {
		t.Fatalf("-list-ignores: exit %d\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "goroutine-lifecycle") || !strings.Contains(stdout, "process-lifetime pump") {
		t.Errorf("inventory missing the directive:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 ignore directive(s)") {
		t.Errorf("missing inventory summary: %s", stderr)
	}

	var igs []lint.IgnoreDirective
	_, stdout, _ = runIn(t, dir, "-list-ignores", "-json", "./...")
	if err := json.Unmarshal([]byte(stdout), &igs); err != nil {
		t.Fatalf("-list-ignores -json: %v\n%s", err, stdout)
	}
	if len(igs) != 1 || igs[0].Checks[0] != "goroutine-lifecycle" || igs[0].Reason == "" {
		t.Errorf("bad inventory entry: %+v", igs)
	}
}

func TestBareIgnoreIsAFinding(t *testing.T) {
	bare := `package widget

// Pump drains ch forever.
func Pump(ch chan int) {
	//grblint:ignore goroutine-lifecycle
	go func() {
		for {
			<-ch
		}
	}()
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "widget/widget.go": bare})
	code, stdout, _ := runIn(t, dir, "./...")
	if code != 1 {
		t.Fatalf("bare ignore: exit %d, want 1\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "ignore-justification") {
		t.Errorf("bare ignore not reported as ignore-justification:\n%s", stdout)
	}
}

func TestListChecks(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod})
	code, stdout, _ := runIn(t, dir, "-list")
	if code != 0 {
		t.Fatalf("-list: exit %d", code)
	}
	for _, name := range lint.CheckNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing %s", name)
		}
	}
}
