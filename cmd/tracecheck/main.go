// tracecheck validates a JSON trace produced by `lagraph run -trace`: it
// parses the document, checks the schema tag, and (optionally) asserts
// structural properties the CI smoke job relies on — per-iteration frontier
// sizes and at least one push→pull direction switch. Exit status 0 means
// the trace passed every requested check.
//
// Usage:
//
//	lagraph run -algo bfs -kind powerlaw -scale 12 -trace trace.json
//	tracecheck -in trace.json -algo bfs -want-switch
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"lagraph/internal/obs"
)

func main() {
	in := flag.String("in", "-", "trace file to validate (\"-\" = stdin)")
	algo := flag.String("algo", "", "restrict iteration checks to this algorithm's records")
	wantSwitch := flag.Bool("want-switch", false, "require at least one push→pull direction switch")
	minIters := flag.Int("min-iters", 1, "require at least this many iteration records")
	minOps := flag.Int("min-ops", 0, "require at least this many op records")
	flag.Parse()

	doc, err := readTrace(*in)
	if err != nil {
		fail("reading trace: %v", err)
	}
	if doc.Schema != obs.TraceSchema {
		fail("schema is %q, want %q", doc.Schema, obs.TraceSchema)
	}

	iters := doc.Iters
	if *algo != "" {
		iters = nil
		for _, r := range doc.Iters {
			if r.Algo == *algo {
				iters = append(iters, r)
			}
		}
	}
	if len(iters) < *minIters {
		fail("%d iteration records (algo %q), want at least %d", len(iters), *algo, *minIters)
	}
	if len(doc.Ops) < *minOps {
		fail("%d op records, want at least %d", len(doc.Ops), *minOps)
	}
	for _, r := range iters {
		if r.Iter <= 0 {
			fail("iteration record with non-positive iter %d (algo %s)", r.Iter, r.Algo)
		}
	}

	switched := false
	for k := 1; k < len(iters); k++ {
		if iters[k-1].Dir == "push" && iters[k].Dir == "pull" {
			switched = true
			break
		}
	}
	if *wantSwitch && !switched {
		fail("no push→pull switch in %d iteration records", len(iters))
	}

	fmt.Printf("trace ok: %d ops, %d iters", len(doc.Ops), len(iters))
	if doc.DroppedOps > 0 || doc.DroppedIters > 0 {
		fmt.Printf(" (ring dropped %d ops, %d iters)", doc.DroppedOps, doc.DroppedIters)
	}
	if switched {
		fmt.Printf(", push→pull switch present")
	}
	fmt.Println()
}

func readTrace(path string) (*obs.TraceDocument, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var doc obs.TraceDocument
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
