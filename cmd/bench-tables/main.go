// bench-tables regenerates every table, figure and quantitative claim of
// the paper as plain text; its output is the source material for
// EXPERIMENTS.md. Pass -scale to change the workload size and -table to
// print a single table (1, 2, fig2, c1..c8, census, all).
//
//	go run ./cmd/bench-tables -scale 13
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/loccount"
	"lagraph/internal/obs"
)

var (
	scale    = flag.Int("scale", 13, "RMAT scale (2^scale vertices)")
	ef       = flag.Int("ef", 16, "RMAT edge factor")
	table    = flag.String("table", "all", "which table to print: 1,2,fig2,c1..c8,census,ingest,incremental,perf,all")
	jsonOut  = flag.String("json", "", "write the perf table as machine-readable JSON to this file (e.g. BENCH_1.json)")
	baseFile = flag.String("baseline", "", "previous BENCH_<pr>.json; annotate matching entries with speedup vs that baseline")
	smoke    = flag.String("smoke", "", "smoke-baseline JSON; fail if any p=1 kernel regresses >25% after median-ratio host normalization")
)

func main() {
	flag.Parse()
	fmt.Printf("lagraph-go experiment harness — RMAT scale %d, edge factor %d, GOMAXPROCS=%d\n\n",
		*scale, *ef, runtime.GOMAXPROCS(0))
	run := func(name string, f func()) {
		if *table == "all" || *table == name {
			f()
			fmt.Println()
		}
	}
	run("1", tableI)
	run("2", tableII)
	run("fig2", fig2)
	run("c1", c1)
	run("c2", c2)
	run("c3", c3)
	run("c4", c4)
	run("c5", c5)
	run("c6", c6)
	run("c7", c7)
	run("c8", c8)
	run("census", census)
	run("ingest", ingestTable)
	run("incremental", incrementalTable)
	// perf is opt-in (it re-times every skewed kernel at two parallelism
	// levels): run it when asked for by name, when a JSON sink is given,
	// or when a smoke comparison is requested.
	if *table == "perf" || *jsonOut != "" || *smoke != "" {
		perf()
		fmt.Println()
	}
}

// perfEntry is one timed kernel at one parallelism level. The JSON files
// (BENCH_<pr>.json) accumulate in the repository so the perf trajectory is
// diffable across PRs.
type perfEntry struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	NsPerOp     int64   `json:"ns_per_op"`
	SpeedupVsP1 float64 `json:"speedup_vs_p1,omitempty"`
	// Baseline deltas (filled by -baseline): the matching entry of the
	// previous BENCH_<pr>.json and the improvement factor over it.
	BaselineNsPerOp int64   `json:"baseline_ns_per_op,omitempty"`
	SpeedupVsBase   float64 `json:"speedup_vs_baseline,omitempty"`
	// Obs is the observability counter diff for one run of the kernel at
	// this parallelism level: which mxm kernel fired, how many chunks the
	// scheduler made, the work estimate. Added in lagraph-perf/2.
	Obs *obs.CounterSnapshot `json:"obs,omitempty"`
}

type perfReport struct {
	Schema     string      `json:"schema"`
	Timestamp  string      `json:"timestamp"`
	GoVersion  string      `json:"go_version"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Scale      int         `json:"scale"`
	EdgeFactor int         `json:"edge_factor"`
	Results    []perfEntry `json:"results"`
	// Ingest is the streaming-ingest comparison (§II-A): per-batch
	// admission latency vs whole-graph rebuild, across graph sizes.
	// Added in lagraph-perf/3 alongside POST /v1/graphs/{name}/edges.
	Ingest []ingestEntry `json:"ingest,omitempty"`
	// Audits records the auto-vs-best-static comparisons: an adaptive
	// entry point must never be more than a small factor slower than the
	// best static choice it is selecting among (see EXPERIMENTS.md).
	Audits []auditEntry `json:"audits,omitempty"`
	// Incremental is the warm-start-vs-full comparison under a 1%-edge
	// delta: iterations to convergence and wall time for both paths.
	// Added in lagraph-perf/4 alongside mode=incremental queries.
	Incremental []incrementalEntry `json:"incremental,omitempty"`
}

// auditEntry compares one auto-selecting kernel against the fastest of
// its static alternatives at p=1. Ratio is auto/best: 1.0 means the
// selection was perfect, values above 1.10 violate the adaptive-kernel
// contract.
type auditEntry struct {
	Name              string  `json:"name"`
	AutoNsPerOp       int64   `json:"auto_ns_per_op"`
	BestStatic        string  `json:"best_static"`
	BestStaticNsPerOp int64   `json:"best_static_ns_per_op"`
	Ratio             float64 `json:"ratio"`
}

// perf times the skewed-degree kernel suite (the same workloads as the
// BenchmarkSkewed* micro-benchmarks) at SetParallelism(1) and at the
// machine's parallelism, printing a table and optionally writing JSON.
func perf() {
	fmt.Println("── perf: work-aware scheduling on skewed-degree kernels ──")
	n := 1 << *scale
	el := gen.PowerLaw(n, *ef*n, 1.6, gen.Config{Seed: 41, NoSelfLoops: true})
	a := el.Matrix()
	a.Wait()
	front := grb.MustVector[float64](n)
	for i := 0; i < n; i += 16 {
		_ = front.SetElement(i, 1)
	}
	for i := 0; i < 64; i++ {
		_ = front.SetElement(i, 1)
	}
	front.Wait()
	ka := gen.PowerLaw(256, 4096, 1.6, gen.Config{Seed: 42}).Matrix()
	kb := gen.PowerLaw(64, 1024, 1.6, gen.Config{Seed: 43}).Matrix()
	ka.Wait()
	kb.Wait()

	// Adaptive-format workloads. These are fixed-size (independent of
	// -scale): a ~60%-full dense block where the bitmap view pays, a
	// 2^20-dimension hypersparse multiply where the occupied-row list
	// pays, and the triangle-count formulation family on a skewed graph
	// where the degree presort pays.
	nd := 1 << 10
	dense := denseBlock(nd)
	denseCSR := dense.Dup()
	denseCSR.SetFormat(grb.FormatCSR)
	denseBM := dense.Dup()
	denseBM.SetFormat(grb.FormatBitmap)
	denseAuto := dense.Dup()
	denseAuto.SetFormat(grb.FormatAuto)
	du := make([]float64, nd)
	for i := range du {
		du[i] = 1
	}
	dvec := grb.DenseVector(du)
	km := gen.PowerLaw(nd, 16*nd, 1.6, gen.Config{Seed: 44, NoSelfLoops: true}).Matrix()
	km.Wait()

	nh := 1 << 20
	hyperSeed := gen.PowerLaw(nh, 4096, 1.6, gen.Config{Seed: 45, NoSelfLoops: true}).Matrix()
	hyperCSR := hyperSeed.Dup()
	hyperCSR.SetFormat(grb.FormatCSR)
	hyperHyp := hyperSeed.Dup()
	hyperHyp.SetFormat(grb.FormatHyper)
	hyperCSR.Wait()
	hyperHyp.Wait()

	tg := tcBenchGraph()

	kernels := []struct {
		name string
		f    func()
	}{
		{"mxm_gustavson", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.MxM(c, (*grb.Matrix[bool])(nil), nil, grb.PlusTimes[float64](), a, a,
				&grb.Descriptor{Method: grb.MxMGustavson})
		}},
		{"mxm_dot_masked", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.MxM(c, a, nil, grb.PlusTimes[float64](), a, a,
				&grb.Descriptor{Method: grb.MxMDot, TranB: true})
		}},
		{"mxm_heap", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.MxM(c, (*grb.Matrix[bool])(nil), nil, grb.PlusTimes[float64](), a, a,
				&grb.Descriptor{Method: grb.MxMHeap})
		}},
		{"vxm_push", func() {
			w := grb.MustVector[float64](n)
			_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), front, a,
				&grb.Descriptor{Dir: grb.DirPush})
		}},
		{"vxm_pull", func() {
			w := grb.MustVector[float64](n)
			_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), front, a,
				&grb.Descriptor{Dir: grb.DirPull})
		}},
		{"transpose", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.Transpose[float64, bool](c, nil, nil, a, nil)
		}},
		{"build", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = c.Build(el.Src, el.Dst, el.W, grb.First[float64, float64]())
		}},
		{"kronecker", func() {
			c := grb.MustMatrix[float64](256*64, 256*64)
			_ = grb.Kronecker[float64, float64, float64, bool](c, nil, nil, grb.Times[float64](), ka, kb, nil)
		}},
		// Dense-operand vxm: the format pair. Same operands, same dense
		// frontier; only the matrix format (and hence the kernel) differs.
		{"vxm_dense_push", func() {
			w := grb.MustVector[float64](nd)
			_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), dvec, denseCSR,
				&grb.Descriptor{Dir: grb.DirPush})
		}},
		{"vxm_dense_pull", func() {
			w := grb.MustVector[float64](nd)
			_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), dvec, denseCSR,
				&grb.Descriptor{Dir: grb.DirPull})
		}},
		{"vxm_dense_bitmap", func() {
			w := grb.MustVector[float64](nd)
			_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), dvec, denseBM, nil)
		}},
		{"vxm_dense_auto", func() {
			w := grb.MustVector[float64](nd)
			_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), dvec, denseAuto, nil)
		}},
		// Masked dot mxm (A·Bᵀ, the triangle-count orientation): each
		// admitted output merges two compressed rows, or probes B's
		// bitmap row contiguously.
		{"mxm_dot_dense", func() {
			c := grb.MustMatrix[float64](nd, nd)
			_ = grb.MxM(c, km, nil, grb.PlusTimes[float64](), denseCSR, denseCSR,
				&grb.Descriptor{Method: grb.MxMDot, TranB: true})
		}},
		{"mxm_dot_bitmap", func() {
			c := grb.MustMatrix[float64](nd, nd)
			_ = grb.MxM(c, km, nil, grb.PlusTimes[float64](), denseCSR, denseBM,
				&grb.Descriptor{Method: grb.MxMDot, TranB: true})
		}},
		// Hypersparse multiply: the occupied-row list vs a 2^20-entry row
		// pointer scan. Heap method on both sides (it never allocates an
		// output-dimension accumulator, so the format is the only change).
		{"mxm_hyper_csr", func() {
			c := grb.MustMatrix[float64](nh, nh)
			_ = grb.MxM(c, (*grb.Matrix[bool])(nil), nil, grb.PlusTimes[float64](), hyperCSR, hyperCSR,
				&grb.Descriptor{Method: grb.MxMHeap})
		}},
		{"mxm_hyper", func() {
			c := grb.MustMatrix[float64](nh, nh)
			_ = grb.MxM(c, (*grb.Matrix[bool])(nil), nil, grb.PlusTimes[float64](), hyperHyp, hyperHyp,
				&grb.Descriptor{Method: grb.MxMHeap})
		}},
		// Triangle-count formulation family on a skewed power-law graph.
		// The sorted entry includes the cost of the degree presort itself.
		{"tc_burkhardt", func() {
			_, _ = lagraph.TriangleCount(tg, lagraph.TCBurkhardt)
		}},
		{"tc_sandia_lut", func() {
			_, _ = lagraph.TriangleCount(tg, lagraph.TCSandiaLUT)
		}},
		{"tc_sandia_ll", func() {
			_, _ = lagraph.TriangleCount(tg, lagraph.TCSandiaLL)
		}},
		{"tc_sandia_ll_sorted", func() {
			_, _ = lagraph.TriangleCount(tg, lagraph.TCSandiaLL, lagraph.WithPresort(lagraph.TCSortAscending))
		}},
		{"tc_auto", func() {
			_, _ = lagraph.TriangleCount(tg, lagraph.TCAuto, lagraph.WithPresort(lagraph.TCSortAuto))
		}},
	}

	pmax := runtime.GOMAXPROCS(0)
	if pmax < 4 {
		pmax = 4
	}
	report := perfReport{
		Schema:     "lagraph-perf/4",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		EdgeFactor: *ef,
	}
	fmt.Printf("%-22s %14s %14s %9s   (power-law n=2^%d, α=1.6, %d CPU)\n",
		"kernel", "p=1", fmt.Sprintf("p=%d", pmax), "speedup", *scale, runtime.NumCPU())
	for _, k := range kernels {
		old := grb.SetParallelism(1)
		d1 := timeIt(3, k.f)
		o1 := observeOnce(k.f)
		grb.SetParallelism(pmax)
		dp := timeIt(3, k.f)
		op := observeOnce(k.f)
		grb.SetParallelism(old)
		speedup := float64(d1) / float64(dp)
		report.Results = append(report.Results,
			perfEntry{Name: k.name, Parallelism: 1, NsPerOp: d1.Nanoseconds(), Obs: o1},
			perfEntry{Name: k.name, Parallelism: pmax, NsPerOp: dp.Nanoseconds(), SpeedupVsP1: speedup, Obs: op})
		fmt.Printf("%-22s %14v %14v %8.2fx\n", k.name, d1, dp, speedup)
	}

	// Auto-selection audits: the adaptive entry points against the best
	// static alternative. Measured head-to-head with interleaved reps at
	// p=1 (not read back from the table rows, which are minutes apart and
	// would fold host drift into the ratio).
	byName := make(map[string]func(), len(kernels))
	for _, k := range kernels {
		byName[k.name] = k.f
	}
	audits := []struct {
		name    string
		auto    string
		statics []string
	}{
		{"vxm_dense", "vxm_dense_auto", []string{"vxm_dense_push", "vxm_dense_pull", "vxm_dense_bitmap"}},
		{"tc", "tc_auto", []string{"tc_burkhardt", "tc_sandia_lut", "tc_sandia_ll", "tc_sandia_ll_sorted"}},
	}
	fmt.Println()
	oldP := grb.SetParallelism(1)
	for _, au := range audits {
		const reps = 5
		autoNs := int64(1<<62 - 1)
		bestNs := make([]int64, len(au.statics))
		for i := range bestNs {
			bestNs[i] = 1<<62 - 1
		}
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			byName[au.auto]()
			if d := time.Since(t0).Nanoseconds(); d < autoNs {
				autoNs = d
			}
			for i, s := range au.statics {
				t0 = time.Now()
				byName[s]()
				if d := time.Since(t0).Nanoseconds(); d < bestNs[i] {
					bestNs[i] = d
				}
			}
		}
		bestName, best := au.statics[0], bestNs[0]
		for i, ns := range bestNs {
			if ns < best {
				bestName, best = au.statics[i], ns
			}
		}
		ratio := float64(autoNs) / float64(best)
		report.Audits = append(report.Audits, auditEntry{
			Name: au.name, AutoNsPerOp: autoNs,
			BestStatic: bestName, BestStaticNsPerOp: best, Ratio: ratio,
		})
		fmt.Printf("audit %-12s auto %12s vs best static %-22s %12s  ratio %.3f\n",
			au.name, time.Duration(autoNs), bestName, time.Duration(best), ratio)
	}
	grb.SetParallelism(oldP)

	if *baseFile != "" {
		if err := annotateBaseline(&report, *baseFile); err != nil {
			fmt.Fprintln(os.Stderr, "perf baseline:", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		// The committed BENCH_<pr>.json also carries the streaming-ingest
		// rows; run the table now if -table didn't already.
		if ingestRows == nil {
			fmt.Println()
			ingestTable()
		}
		report.Ingest = ingestRows
		if incrementalRows == nil {
			fmt.Println()
			incrementalTable()
		}
		report.Incremental = incrementalRows
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "perf json:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "perf json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *smoke != "" {
		if err := smokeCheck(&report, *smoke); err != nil {
			fmt.Fprintln(os.Stderr, "bench-smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("bench-smoke: ok")
	}
}

// incrementalEntry is one row of the delta-workload comparison: one
// algorithm recomputed from scratch vs warm-started from its pre-delta
// result after a 1%-edge insert-only delta.
type incrementalEntry struct {
	Algo        string  `json:"algo"`
	Scale       int     `json:"scale"`
	DeltaEdges  int     `json:"delta_edges"`
	FullIters   int     `json:"full_iters"`
	WarmIters   int     `json:"warm_iters"`
	ItersSaved  int     `json:"iters_saved"`
	FullNsPerOp int64   `json:"full_ns_per_op"`
	WarmNsPerOp int64   `json:"warm_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

// incrementalRows holds the table's measurements so the -json sink can
// embed them in the committed BENCH_<pr>.json without re-timing.
var incrementalRows []incrementalEntry

// incrementalTable measures what mode=incremental buys under the
// canonical delta workload: a power-law graph mutated by a 1%-edge
// insert-only delta, each algorithm answered by a full recompute and by
// a warm start from the pre-delta result. Iteration counts are exact
// algorithm state (deterministic across hosts); for PageRank the warm
// start is REQUIRED to converge in at most half the full iterations —
// the claim BENCH_4.json carries — and the table exits nonzero if a
// change regresses that.
func incrementalTable() {
	fmt.Println("── incremental: warm-start vs full recompute under a one-percent edge delta ──")
	n := 1 << *scale
	el := gen.PowerLaw(n, *ef*n, 1.8, gen.Config{Seed: 42, Undirected: true, NoSelfLoops: true})
	g, err := lagraph.NewGraph(el.Matrix(), lagraph.Undirected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incremental:", err)
		os.Exit(1)
	}
	g.A.Wait()

	// The service defaults: this is the configuration mode=incremental
	// actually answers with, so it is the one the table must measure.
	prOpts := []lagraph.Option{lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-4), lagraph.WithMaxIter(1000)}
	ccPrior, err := lagraph.ConnectedComponentsWith(g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incremental:", err)
		os.Exit(1)
	}
	bfsPrior, err := lagraph.BFSLevels(g, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incremental:", err)
		os.Exit(1)
	}
	prPrior, err := lagraph.PageRankWith(g, prOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "incremental:", err)
		os.Exit(1)
	}

	// 1% of the edge count, as deterministic insertions whose endpoints
	// are sampled degree-proportionally (the endpoint of a uniformly
	// random existing edge) — the preferential-attachment growth model the
	// power-law corpus itself is built from. Mirrored: the fixture is
	// undirected.
	deltaEdges := g.NEdges() / 2 / 100
	if deltaEdges < 1 {
		deltaEdges = 1
	}
	rng := rand.New(rand.NewSource(4242))
	src := make([]int, deltaEdges)
	dst := make([]int, deltaEdges)
	var is, js []int
	var xs []float64
	for k := 0; k < deltaEdges; k++ {
		u := el.Src[rng.Intn(len(el.Src))]
		v := el.Dst[rng.Intn(len(el.Dst))]
		src[k], dst[k] = u, v
		is, js, xs = append(is, u), append(js, v), append(xs, 1)
		if u != v {
			is, js, xs = append(is, v), append(js, u), append(xs, 1)
		}
	}
	if err := g.A.SetElements(is, js, xs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "incremental:", err)
		os.Exit(1)
	}
	g.InvalidateCache()
	g.A.Wait()
	delta := &lagraph.Delta{AddSrc: src, AddDst: dst}

	type runout struct {
		iters int
		err   error
	}
	rows := []struct {
		algo string
		full func() runout
		warm func() runout
	}{
		{"pagerank",
			func() runout {
				r, err := lagraph.PageRankWith(g, prOpts...)
				if err != nil {
					return runout{err: err}
				}
				return runout{iters: r.Iterations}
			},
			func() runout {
				r, err := lagraph.PageRankWarm(g, prPrior.Rank, prOpts...)
				if err != nil {
					return runout{err: err}
				}
				return runout{iters: r.Iterations}
			}},
		{"cc",
			func() runout {
				r, err := lagraph.ConnectedComponentsWith(g)
				if err != nil {
					return runout{err: err}
				}
				return runout{iters: r.Iterations}
			},
			func() runout {
				r, err := lagraph.IncrementalCC(g, ccPrior.Labels, delta)
				if err != nil {
					return runout{err: err}
				}
				return runout{iters: r.Iterations}
			}},
		{"bfs",
			func() runout {
				var stats lagraph.BFSStats
				_, err := lagraph.BFSLevels(g, 0, lagraph.WithStats(&stats))
				if err != nil {
					return runout{err: err}
				}
				return runout{iters: stats.Depth}
			},
			func() runout {
				_, rounds, err := lagraph.IncrementalBFSLevels(g, 0, bfsPrior, delta)
				if err != nil {
					return runout{err: err}
				}
				return runout{iters: rounds}
			}},
	}

	fmt.Printf("%-10s %11s %11s %11s %12s %12s %9s   (power-law n=2^%d, +%d edges = 1%%)\n",
		"algo", "full iters", "warm iters", "saved", "full", "warm", "speedup", *scale, deltaEdges)
	for _, row := range rows {
		var fo, wo runout
		df := timeIt(3, func() { fo = row.full() })
		dw := timeIt(3, func() { wo = row.warm() })
		if fo.err != nil || wo.err != nil {
			fmt.Fprintf(os.Stderr, "incremental %s: full=%v warm=%v\n", row.algo, fo.err, wo.err)
			os.Exit(1)
		}
		saved := fo.iters - wo.iters
		if saved < 0 {
			saved = 0
		}
		e := incrementalEntry{
			Algo: row.algo, Scale: *scale, DeltaEdges: deltaEdges,
			FullIters: fo.iters, WarmIters: wo.iters, ItersSaved: saved,
			FullNsPerOp: df.Nanoseconds(), WarmNsPerOp: dw.Nanoseconds(),
			Speedup: float64(df) / float64(dw),
		}
		incrementalRows = append(incrementalRows, e)
		fmt.Printf("%-10s %11d %11d %11d %12s %12s %8.2fx\n",
			e.Algo, e.FullIters, e.WarmIters, e.ItersSaved, df.Round(time.Microsecond), dw.Round(time.Microsecond), e.Speedup)
		if row.algo == "pagerank" && wo.iters*2 > fo.iters {
			fmt.Fprintf(os.Stderr, "incremental: pagerank warm start saved too little (%d warm vs %d full iters, need ≥2x)\n",
				wo.iters, fo.iters)
			os.Exit(1)
		}
	}
}

// ingestEntry is one row of the streaming-ingest comparison (§II-A): the
// latency of admitting one 64-tuple edge batch through the pending-tuple
// path, against rebuilding the whole graph from its edge list — which
// was the only mutation story the service had before
// POST /v1/graphs/{name}/edges.
type ingestEntry struct {
	Scale        int   `json:"scale"`
	Edges        int   `json:"edges"`
	BatchTuples  int   `json:"batch_tuples"`
	BatchNsPerOp int64 `json:"batch_ns_per_op"`
	BuildNsPerOp int64 `json:"build_ns_per_op"`
}

// ingestRows holds the table's measurements so the -json sink can embed
// them in the committed BENCH_<pr>.json without re-timing.
var ingestRows []ingestEntry

// ingestTable demonstrates the non-blocking mode's §II-A promise for the
// write path: admitting an edge batch buffers pending tuples in O(batch)
// regardless of how large the target graph is, while the old way to
// mutate a served graph — POST the whole edge list again — is linear in
// the graph. The batch column must stay flat as the scale column grows;
// the build column must not.
func ingestTable() {
	fmt.Println("── ingest: per-batch edge admission vs whole-graph rebuild (§II-A, non-blocking mode) ──")
	const batch = 64
	dup := grb.Second[float64, float64]()
	fmt.Printf("%7s %12s %16s %18s %9s\n", "scale", "edges", "64-tuple batch", "whole-graph build", "ratio")
	for _, s := range []int{*scale - 6, *scale - 3, *scale} {
		n := 1 << s
		el := gen.PowerLaw(n, *ef*n, 1.6, gen.Config{Seed: 41, NoSelfLoops: true})
		a := el.Matrix()
		a.Wait()
		is := make([]int, batch)
		js := make([]int, batch)
		xs := make([]float64, batch)
		for k := range is {
			is[k] = (k * 131) % n
			js[k] = (k*17 + 1) % n
			xs[k] = float64(k%7 + 1)
		}
		// The admission path: buffer the batch as pending tuples, no Wait —
		// assembly is deferred to the next read, exactly as Entry.Ingest
		// publishes a COLD entry.
		dBatch := timeIt(25, func() { _ = a.SetElements(is, js, xs, dup) })
		dBuild := timeIt(3, func() {
			b := grb.MustMatrix[float64](n, n)
			_ = b.Build(el.Src, el.Dst, el.W, dup)
		})
		ingestRows = append(ingestRows, ingestEntry{
			Scale: s, Edges: len(el.Src), BatchTuples: batch,
			BatchNsPerOp: dBatch.Nanoseconds(), BuildNsPerOp: dBuild.Nanoseconds(),
		})
		fmt.Printf("%7d %12d %16v %18v %8.0fx\n", s, len(el.Src), dBatch, dBuild,
			float64(dBuild)/float64(dBatch))
	}
}

// denseBlock builds an n×n float64 matrix with exactly 60% of each row
// occupied (a fixed residue pattern, so runs are reproducible without a
// RNG): the regime where the bitmap view beats compressed storage.
func denseBlock(n int) *grb.Matrix[float64] {
	p := make([]int, n+1)
	is := make([]int, 0, n*n*6/10)
	xs := make([]float64, 0, n*n*6/10)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if (i*31+j*17)%10 < 6 {
				is = append(is, j)
				xs = append(xs, float64((i+j)%7+1))
			}
		}
		p[i+1] = len(is)
	}
	a, err := grb.ImportCSR(n, n, p, is, xs, true)
	if err != nil {
		panic(err)
	}
	return a
}

// tcBenchGraph is a power-law graph with four planted mid-ordering hubs:
// each hub is connected to every vertex, so its strict-lower row is long
// AND replayed by every higher-indexed neighbor — the shape where the
// natural ordering's saxpy estimate blows up and the degree presort pays
// for its rebuild many times over.
func tcBenchGraph() *lagraph.Graph {
	el := gen.PowerLaw(4096, 16*4096, 1.6, gen.Config{Seed: 46, Undirected: true, NoSelfLoops: true})
	n := el.N
	for h := 1; h <= 4; h++ {
		hv := h * n / 5
		for v := 0; v < n; v++ {
			if v != hv {
				el.Src = append(el.Src, hv, v)
				el.Dst = append(el.Dst, v, hv)
				el.W = append(el.W, 1, 1)
			}
		}
	}
	el.HasDups = true
	return lagraph.FromEdgeList(el, lagraph.Undirected)
}

// loadReport reads a perfReport JSON written by a previous -json run.
func loadReport(path string) (*perfReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r perfReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// findNs returns the ns/op of the named entry at the given parallelism,
// or 0 if the report has no such entry.
func findNs(r *perfReport, name string, par int) int64 {
	for _, e := range r.Results {
		if e.Name == name && e.Parallelism == par {
			return e.NsPerOp
		}
	}
	return 0
}

// annotateBaseline fills each entry's baseline fields from the matching
// (name, parallelism) entry of a previous BENCH json and prints the
// deltas, so BENCH_<pr>.json carries its own comparison.
func annotateBaseline(r *perfReport, path string) error {
	base, err := loadReport(path)
	if err != nil {
		return err
	}
	fmt.Printf("\nvs baseline %s (schema %s):\n", path, base.Schema)
	for i := range r.Results {
		e := &r.Results[i]
		bns := findNs(base, e.Name, e.Parallelism)
		if bns <= 0 || e.NsPerOp <= 0 {
			continue
		}
		e.BaselineNsPerOp = bns
		e.SpeedupVsBase = float64(bns) / float64(e.NsPerOp)
		fmt.Printf("%-22s p=%-2d %12s -> %12s  %6.2fx\n",
			e.Name, e.Parallelism, time.Duration(bns), time.Duration(e.NsPerOp), e.SpeedupVsBase)
	}
	return nil
}

// smokeCheck compares the fresh report against a committed baseline and
// fails on any per-kernel regression beyond 25%. Only p=1 entries are
// compared (the p=max rows depend on the host's core count). Host speed
// differences shift every kernel's ratio by roughly the same factor, so
// each ratio is normalized by the median ratio before the threshold is
// applied — a uniformly 2× slower CI runner passes, a single kernel that
// regressed relative to its peers fails.
func smokeCheck(r *perfReport, path string) error {
	base, err := loadReport(path)
	if err != nil {
		return err
	}
	if base.Scale != r.Scale || base.EdgeFactor != r.EdgeFactor {
		return fmt.Errorf("baseline is scale %d/ef %d, this run is scale %d/ef %d; regenerate the baseline or pass matching flags",
			base.Scale, base.EdgeFactor, r.Scale, r.EdgeFactor)
	}
	type pair struct {
		name  string
		ratio float64
	}
	var pairs []pair
	for _, e := range r.Results {
		if e.Parallelism != 1 {
			continue
		}
		if bns := findNs(base, e.Name, 1); bns > 0 && e.NsPerOp > 0 {
			pairs = append(pairs, pair{e.Name, float64(e.NsPerOp) / float64(bns)})
		}
	}
	if len(pairs) == 0 {
		return fmt.Errorf("no comparable p=1 entries between this run and %s", path)
	}
	ratios := make([]float64, len(pairs))
	for i, p := range pairs {
		ratios[i] = p.ratio
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		median = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	const tolerance = 1.25
	var failed []string
	fmt.Printf("\nbench-smoke vs %s (median host ratio %.2f, tolerance %.0f%%):\n", path, median, (tolerance-1)*100)
	for _, p := range pairs {
		norm := p.ratio / median
		status := "ok"
		if norm > tolerance {
			status = "REGRESSED"
			failed = append(failed, fmt.Sprintf("%s (%.2fx normalized)", p.name, norm))
		}
		fmt.Printf("%-22s ratio %5.2f  normalized %5.2f  %s\n", p.name, p.ratio, norm, status)
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d kernel(s) regressed >%.0f%%: %s", len(failed), (tolerance-1)*100, strings.Join(failed, ", "))
	}
	return nil
}

// observeOnce runs f once under an obs.Counters sink (outside the timed
// reps, so record emission never skews the reported ns/op) and returns
// the counter diff: which kernels fired, chunk counts, work estimates.
func observeOnce(f func()) *obs.CounterSnapshot {
	var c obs.Counters
	prev := obs.Set(&c)
	f()
	obs.Set(prev)
	snap := c.Snapshot()
	return &snap
}

// timeIt runs f a few times and returns the best wall time.
func timeIt(reps int, f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

func undirGraph(seed int64) *lagraph.Graph {
	return lagraph.FromEdgeList(
		gen.RMAT(*scale, *ef, gen.Config{Seed: seed, Undirected: true, NoSelfLoops: true}),
		lagraph.Undirected)
}

func dirGraph(seed int64) *lagraph.Graph {
	return lagraph.FromEdgeList(
		gen.RMAT(*scale, *ef, gen.Config{Seed: seed, NoSelfLoops: true}), lagraph.Directed)
}

func tableI() {
	fmt.Println("── Table I: the GraphBLAS operation set, one timing per operation ──")
	g := dirGraph(1)
	g.AT()
	n := g.N()
	a := g.PatternInt64()
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	vec := grb.DenseVector(v)
	plusPair := grb.PlusPair[int64, int64, int64]()
	minSecond := grb.Semiring[float64, int64, int64]{Add: grb.MinMonoid[int64](), Mul: grb.Second[float64, int64]()}
	minFirst := grb.Semiring[int64, float64, int64]{Add: grb.MinMonoid[int64](), Mul: grb.First[int64, float64]()}

	rows := []struct {
		op string
		f  func()
	}{
		{"mxm (masked, plus.pair)", func() {
			c := grb.MustMatrix[int64](n, n)
			_ = grb.MxM(c, a, nil, plusPair, a, a, nil)
		}},
		{"mxv (min.second)", func() {
			w := grb.MustVector[int64](n)
			_ = grb.MxV(w, (*grb.Vector[bool])(nil), nil, minSecond, g.A, vec, nil)
		}},
		{"vxm (min.first)", func() {
			w := grb.MustVector[int64](n)
			_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, minFirst, vec, g.A, nil)
		}},
		{"eWiseAdd (plus)", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.EWiseAddMatrix[float64, bool](c, nil, nil, grb.Plus[float64](), g.A, g.AT(), nil)
		}},
		{"eWiseMult (times)", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.EWiseMultMatrix[float64, float64, float64, bool](c, nil, nil, grb.Times[float64](), g.A, g.AT(), nil)
		}},
		{"reduce (rows, plus)", func() {
			w := grb.MustVector[float64](n)
			_ = grb.ReduceMatrixToVector[float64, bool](w, nil, nil, grb.PlusMonoid[float64](), g.A, nil)
		}},
		{"apply (2x)", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.ApplyMatrix[float64, float64, bool](c, nil, nil, func(x float64) float64 { return 2 * x }, g.A, nil)
		}},
		{"transpose", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.Transpose[float64, bool](c, nil, nil, g.A, nil)
		}},
		{"extract (n/4 × n/4)", func() {
			rows := make([]int, n/4)
			cols := make([]int, n/4)
			for k := range rows {
				rows[k] = (k * 3) % n
				cols[k] = (k * 7) % n
			}
			c := grb.MustMatrix[float64](len(rows), len(cols))
			_ = grb.ExtractMatrix[float64, bool](c, nil, nil, g.A, rows, cols, nil)
		}},
		{"assign (512×512 region)", func() {
			sub := gen.ErdosRenyi(512, 4096, gen.Config{Seed: 3}).Matrix()
			rws := make([]int, 512)
			cls := make([]int, 512)
			for k := range rws {
				rws[k] = (k * 5) % n
				cls[k] = (k * 11) % n
			}
			c := g.A.Dup()
			_ = grb.AssignMatrix[float64, bool](c, nil, nil, sub, rws, cls, nil)
		}},
		{"select (tril)", func() {
			c := grb.MustMatrix[float64](n, n)
			_ = grb.SelectMatrix[float64, bool](c, nil, nil, grb.Tril[float64](-1), g.A, nil)
		}},
	}
	fmt.Printf("%-28s %14s\n", "operation", "best of 3")
	for _, r := range rows {
		fmt.Printf("%-28s %14v\n", r.op, timeIt(3, r.f))
	}
}

func tableII() {
	fmt.Println("── Table II: lines of application code (see also cmd/loc) ──")
	funcs, _, err := loccount.CountDir("internal/lagraph")
	if err != nil {
		fmt.Println("  (run from the repository root to count sources:", err, ")")
		return
	}
	byName := loccount.ByName(funcs)
	fmt.Printf("%-28s %7s %8s %11s %8s\n", "Algorithm", "Ligra", "GraphIt", "GraphBLAS", "lagraph-go")
	fmt.Printf("%-28s %7s %8s %11s %8d\n", "Breadth-first search", "29", "22", "25", byName["BFSLevelSimple"])
	fmt.Printf("%-28s %7s %8s %11s %8d\n", "Single-source shortest-path", "55", "25", "25", byName["SSSPBellmanFord"])
	fmt.Printf("%-28s %7s %8s %11s %8d\n", "Local graph clustering", "84", "N/A", "45", byName["LocalCluster"])
}

func fig2() {
	fmt.Println("── Fig. 2: level BFS on the GraphBLAS API ──")
	g := undirGraph(2)
	var levels *grb.Vector[int32]
	d := timeIt(3, func() {
		levels, _ = lagraph.BFSLevelSimple(g, 0)
	})
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.NEdges())
	fmt.Printf("level BFS: reached %d vertices in %v\n", levels.Nvals(), d)
}

func c1() {
	fmt.Println("── C1: e×setElement vs one build (pending tuples, §II-A) ──")
	n := 1 << *scale
	el := gen.ErdosRenyi(n, 16*n, gen.Config{Seed: 9})
	dSet := timeIt(3, func() {
		a := grb.MustMatrix[float64](n, n)
		for k := range el.Src {
			_ = a.SetElement(el.Src[k], el.Dst[k], el.W[k])
		}
		a.Wait()
	})
	dBuild := timeIt(3, func() {
		a := grb.MustMatrix[float64](n, n)
		_ = a.Build(el.Src, el.Dst, el.W, grb.Second[float64, float64]())
	})
	fmt.Printf("e = %d tuples into an empty %d×%d matrix\n", len(el.Src), n, n)
	fmt.Printf("setElement loop: %12v\n", dSet)
	fmt.Printf("single build:    %12v   (ratio %.2fx — paper: \"just as fast\")\n",
		dBuild, float64(dSet)/float64(dBuild))
}

func c2() {
	fmt.Println("── C2: submatrix assignment C(I,J)=A vs naive per-element rebuild (§II-A) ──")
	n := 4096
	a := gen.ErdosRenyi(n, 16*n, gen.Config{Seed: 5}).Matrix()
	sub := gen.ErdosRenyi(512, 4096, gen.Config{Seed: 6}).Matrix()
	rows := make([]int, 512)
	cols := make([]int, 512)
	for k := range rows {
		rows[k] = (k * 7) % n
		cols[k] = (k * 5) % n
	}
	dAssign := timeIt(3, func() {
		c := a.Dup()
		_ = grb.AssignMatrix[float64, bool](c, nil, nil, sub, rows, cols, nil)
	})
	si, sj, sx := sub.ExtractTuples()
	dNaive := timeIt(1, func() {
		c := a.Dup()
		for k := range si {
			_ = c.SetElement(rows[si[k]], cols[sj[k]], sx[k])
			c.Wait() // the materialize-per-element strategy of the claim
		}
	})
	fmt.Printf("C is %d×%d with %d entries; |I|=|J|=512, nnz(A)=%d\n", n, n, a.Nvals(), len(si))
	fmt.Printf("batched assign:      %12v\n", dAssign)
	fmt.Printf("per-element rebuild: %12v   (speedup %.0fx — paper: \"100x faster than MATLAB\")\n",
		dNaive, float64(dNaive)/float64(dAssign))
}

func c3() {
	fmt.Println("── C3: the three mxm kernels — Gustavson / dot / heap (§II-A) ──")
	g := undirGraph(2)
	aPat := g.PatternInt64()
	n := aPat.Nrows()
	l := grb.MustMatrix[int64](n, n)
	u := grb.MustMatrix[int64](n, n)
	_ = grb.SelectMatrix[int64, bool](l, nil, nil, grb.Tril[int64](-1), aPat, nil)
	_ = grb.SelectMatrix[int64, bool](u, nil, nil, grb.Triu[int64](1), aPat, nil)
	plusPair := grb.PlusPair[int64, int64, int64]()
	cases := []struct {
		name   string
		method grb.MxMMethod
		masked bool
		tranB  bool
	}{
		{"Gustavson, unmasked (L·L)", grb.MxMGustavson, false, false},
		{"Gustavson, masked ⟨L⟩", grb.MxMGustavson, true, false},
		{"heap, unmasked (L·L)", grb.MxMHeap, false, false},
		{"heap, masked ⟨L⟩", grb.MxMHeap, true, false},
		{"dot, masked ⟨L⟩ (L·Uᵀ)", grb.MxMDot, true, true},
	}
	for _, tc := range cases {
		d := timeIt(3, func() {
			c := grb.MustMatrix[int64](n, n)
			desc := &grb.Descriptor{Method: tc.method, TranB: tc.tranB}
			var mask *grb.Matrix[int64]
			if tc.masked {
				mask = l
			}
			rhs := l
			if tc.tranB {
				rhs = u
			}
			_ = grb.MxM(c, mask, nil, plusPair, l, rhs, desc)
		})
		fmt.Printf("%-28s %12v\n", tc.name, d)
	}
}

func c4() {
	fmt.Println("── C4: early-exit terminal monoids (§II-A) ──")
	g := undirGraph(2)
	n := g.N()
	frontier := grb.MustVector[bool](n)
	for i := 0; i < n; i += 2 {
		_ = frontier.SetElement(i, true)
	}
	frontier.Wait()
	withTerminal := grb.Semiring[bool, float64, bool]{Add: grb.LOrMonoid(), Mul: grb.First[bool, float64]()}
	noTerminal := withTerminal
	noTerminal.Add.Terminal = nil
	pull := &grb.Descriptor{Dir: grb.DirPull}
	dWith := timeIt(3, func() {
		w := grb.MustVector[bool](n)
		_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, withTerminal, frontier, g.A, pull)
	})
	dWithout := timeIt(3, func() {
		w := grb.MustVector[bool](n)
		_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, noTerminal, frontier, g.A, pull)
	})
	fmt.Printf("pull step, LOR monoid with terminal:    %12v\n", dWith)
	fmt.Printf("pull step, LOR monoid without terminal: %12v   (early exit: %.1fx)\n",
		dWithout, float64(dWithout)/float64(dWith))
}

func c5() {
	fmt.Println("── C5: push vs pull vs direction-optimized BFS (§II-E) ──")
	g := undirGraph(2)
	for _, tc := range []struct {
		name string
		dir  grb.Direction
	}{{"push only", grb.DirPush}, {"pull only", grb.DirPull}, {"direction-optimized", grb.DirAuto}} {
		d := timeIt(3, func() {
			_, _ = lagraph.BFSLevels(g, 0, lagraph.WithDirection(tc.dir))
		})
		fmt.Printf("%-22s %12v\n", tc.name, d)
	}
	var stats lagraph.BFSStats
	_, _ = lagraph.BFSLevels(g, 0, lagraph.WithStats(&stats))
	fmt.Println("per-iteration frontier sizes and chosen direction:")
	for i, nf := range stats.FrontierSizes {
		dir := "push"
		if stats.Directions[i] == grb.DirPull {
			dir = "pull"
		}
		fmt.Printf("  iter %2d: %8d  %s\n", i, nf, dir)
	}
}

func c6() {
	fmt.Println("── C6: hypersparse O(e) storage at enormous dimension (§II-A) ──")
	e := 1 << 15
	el := gen.ErdosRenyi(1<<14, e, gen.Config{Seed: 7})
	dHyper := timeIt(3, func() {
		n := 1 << 40
		a := grb.MustMatrix[float64](n, n)
		a.SetFormat(grb.FormatHyper)
		for k := range el.Src {
			_ = a.SetElement(el.Src[k]<<20, el.Dst[k]<<20, el.W[k])
		}
		a.Wait()
	})
	dStd := timeIt(3, func() {
		n := 1 << 14
		a := grb.MustMatrix[float64](n, n)
		a.SetFormat(grb.FormatCSR)
		for k := range el.Src {
			_ = a.SetElement(el.Src[k], el.Dst[k], el.W[k])
		}
		a.Wait()
	})
	fmt.Printf("build %d entries, hypersparse, n=2^40: %12v\n", e, dHyper)
	fmt.Printf("build %d entries, standard CSR, n=2^14: %11v\n", e, dStd)
	fmt.Println("(a standard CSR at n=2^40 would need a 8 TiB pointer array)")
}

func c7() {
	fmt.Println("── C7: O(1) move-based import/export vs Ω(e) extractTuples (§IV) ──")
	g := undirGraph(2)
	a := g.A.Dup()
	dMove := timeIt(5, func() {
		nr, nc, p, i, x := a.ExportCSR()
		a, _ = grb.ImportCSR(nr, nc, p, i, x, true)
	})
	dCopy := timeIt(3, func() {
		is, js, xs := a.ExtractTuples()
		c := grb.MustMatrix[float64](a.Nrows(), a.Ncols())
		_ = c.Build(is, js, xs, nil)
		a = c
	})
	fmt.Printf("export+import (move):        %12v\n", dMove)
	fmt.Printf("extractTuples+build (copy):  %12v   (move is %.0fx faster)\n",
		dCopy, float64(dCopy)/float64(dMove))
}

func c8() {
	fmt.Println("── C8: GraphBLAS algorithms vs classic baselines (§III) ──")
	gd := dirGraph(1)
	gu := undirGraph(2)
	gw := lagraph.FromEdgeList(
		gen.RMAT(*scale, *ef, gen.Config{Seed: 3, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 10}),
		lagraph.Undirected)
	bd := baseline.FromMatrix(gd.A.Dup())
	bu := baseline.FromMatrix(gu.A.Dup())
	bw := baseline.FromMatrix(gw.A.Dup())
	gu.A.Wait()

	fmt.Printf("%-18s %14s %14s %8s\n", "algorithm", "graphblas", "baseline", "ratio")
	row := func(name string, fg, fb func()) {
		dg := timeIt(3, fg)
		db := timeIt(3, fb)
		fmt.Printf("%-18s %14v %14v %7.1fx\n", name, dg, db, float64(dg)/float64(db))
	}
	row("bfs",
		func() { _, _ = lagraph.BFSLevels(gu, 0) },
		func() { baseline.BFSLevels(bu, 0) })
	row("sssp",
		func() { _, _ = lagraph.SSSP(gw, 0, lagraph.WithDelta(4)) },
		func() { baseline.Dijkstra(bw, 0) })
	row("cc",
		func() { _, _ = lagraph.ConnectedComponentsFastSV(gu) },
		func() { baseline.ConnectedComponents(bu) })
	row("pagerank(20it)",
		func() {
			_, _ = lagraph.PageRankWith(gd, lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-30), lagraph.WithMaxIter(20))
		},
		func() { baseline.PageRank(bd, 0.85, 20) })
	row("triangles",
		func() { _, _ = lagraph.TriangleCount(gu, lagraph.TCSandiaDot) },
		func() { baseline.TriangleCount(bu) })
}

func census() {
	fmt.Println("── §V census: the LAGraph target algorithm list, exercised ──")
	gu := undirGraph(12)
	gd := dirGraph(11)
	small := lagraph.FromEdgeList(
		gen.ErdosRenyi(256, 2048, gen.Config{Seed: 13, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 5}),
		lagraph.Undirected)

	type entry struct {
		name string
		run  func() (string, error)
	}
	entries := []entry{
		{"BFS (levels, DO)", func() (string, error) {
			l, err := lagraph.BFSLevels(gu, 0)
			return fmt.Sprintf("reached %d", l.Nvals()), err
		}},
		{"BFS (parents)", func() (string, error) {
			p, err := lagraph.BFSParents(gu, 0)
			return fmt.Sprintf("tree size %d", p.Nvals()), err
		}},
		{"SSSP delta-stepping", func() (string, error) {
			d, err := lagraph.SSSP(small, 0, lagraph.WithDelta(2))
			return fmt.Sprintf("reached %d", d.Nvals()), err
		}},
		{"SSSP Bellman-Ford", func() (string, error) {
			d, err := lagraph.SSSPBellmanFord(small, 0)
			return fmt.Sprintf("reached %d", d.Nvals()), err
		}},
		{"All-pairs shortest paths", func() (string, error) {
			d, err := lagraph.APSP(small)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d finite pairs", d.Nvals()), nil
		}},
		{"Betweenness centrality", func() (string, error) {
			bc, err := lagraph.BetweennessCentrality(small, []int{0, 1, 2, 3})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d vertices scored", bc.Nvals()), nil
		}},
		{"Triangle counting ×4", func() (string, error) {
			c, err := lagraph.TriangleCount(gu, lagraph.TCSandiaDot)
			return fmt.Sprintf("%d triangles", c), err
		}},
		{"k-truss", func() (string, error) {
			tr, err := lagraph.KTruss(gu, 4)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("4-truss %d edges", tr.Nvals()), nil
		}},
		{"Connected components", func() (string, error) {
			l, err := lagraph.ConnectedComponentsFastSV(gu)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d components", lagraph.CountComponents(l)), nil
		}},
		{"PageRank", func() (string, error) {
			r, err := lagraph.PageRankWith(gd, lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-8), lagraph.WithMaxIter(100))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d iterations", r.Iterations), nil
		}},
		{"Graph coloring (JP)", func() (string, error) {
			_, used, err := lagraph.Coloring(gu, 1)
			return fmt.Sprintf("%d colors", used), err
		}},
		{"Maximal independent set", func() (string, error) {
			s, err := lagraph.MIS(gu, 1)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d members", s.Nvals()), nil
		}},
		{"Bipartite matching", func() (string, error) {
			ab := grb.MustMatrix[float64](256, 256)
			el := gen.Bipartite(256, 256, 2048, gen.Config{Seed: 14})
			for k := range el.Src {
				_ = ab.SetElement(el.Src[k], el.Dst[k]-256, 1)
			}
			rm, _, err := lagraph.BipartiteMatching(ab)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d pairs", rm.Nvals()), nil
		}},
		{"Markov clustering", func() (string, error) {
			l, err := lagraph.MarkovClustering(small, 2, 1e-6, 50)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d clusters", lagraph.CountComponents(l)), nil
		}},
		{"Peer-pressure clustering", func() (string, error) {
			l, err := lagraph.PeerPressure(small, 50)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d clusters", lagraph.CountComponents(l)), nil
		}},
		{"Sparse DNN inference", func() (string, error) {
			y0 := grb.MustMatrix[float64](64, 128)
			for i := 0; i < 64; i++ {
				_ = y0.SetElement(i, (i*3)%128, 1)
			}
			w := gen.ErdosRenyi(128, 2048, gen.Config{Seed: 15, MinWeight: 0.1, MaxWeight: 1}).Matrix()
			y, err := lagraph.DNNInference(y0, []lagraph.DNNLayer{{W: w}, {W: w}}, 32)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d activations", y.Nvals()), nil
		}},
		{"Local graph clustering", func() (string, error) {
			r, err := lagraph.LocalCluster(small, 0, 0.15, 1e-4)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d members, φ=%.3f", len(r.Members), r.Conductance), nil
		}},
		{"A* search (extension)", func() (string, error) {
			el := gen.Grid2D(32, 32, gen.Config{Seed: 16, Undirected: true, MinWeight: 1, MaxWeight: 3})
			gg := lagraph.FromEdgeList(el, lagraph.Undirected)
			_, cost, ok, err := lagraph.AStar(gg, 0, 32*32-1, lagraph.GridManhattan(32, 32*32-1))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("reachable=%v cost=%.0f", ok, cost), nil
		}},
		{"Multi-source BFS (batch 8)", func() (string, error) {
			l, err := lagraph.MSBFSLevels(gu, []int{0, 1, 2, 3, 4, 5, 6, 7})
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d (source,vertex) pairs", l.Nvals()), nil
		}},
		{"k-core decomposition", func() (string, error) {
			d, err := lagraph.Coreness(gu)
			return fmt.Sprintf("degeneracy %d", d), err
		}},
		{"Subgraph counting", func() (string, error) {
			sc, err := lagraph.CountSubgraphs(gu)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d tri / %d wedges", sc.TotalTriangles, sc.TotalWedges), nil
		}},
		{"Collaborative filtering", func() (string, error) {
			el := gen.Bipartite(128, 96, 1500, gen.Config{Seed: 18, MinWeight: 1, MaxWeight: 5})
			r := grb.MustMatrix[float64](128, 96)
			for k := range el.Src {
				_ = r.SetElement(el.Src[k], el.Dst[k]-128, el.W[k])
			}
			m, err := lagraph.CollaborativeFiltering(r, 4, 0.005, 0.01, 40, 1)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("rmse %.2f→%.2f", m.RMSE[0], m.RMSE[len(m.RMSE)-1]), nil
		}},
		{"HITS (extension)", func() (string, error) {
			r, err := lagraph.HITSWith(gd, lagraph.WithTolerance(1e-8), lagraph.WithMaxIter(100))
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%d iterations", r.Iterations), nil
		}},
		{"Pseudo-diameter", func() (string, error) {
			d, _, _, err := lagraph.PseudoDiameter(gu, 0, 6)
			return fmt.Sprintf("diameter ≥ %d", d), err
		}},
	}
	for _, e := range entries {
		t0 := time.Now()
		out, err := e.run()
		status := out
		if err != nil {
			status = "ERROR: " + err.Error()
		}
		fmt.Printf("  %-26s %-28s %10v\n", e.name, status, time.Since(t0).Round(time.Microsecond))
	}
}
