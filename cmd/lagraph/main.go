// lagraph is the command-line front end to the algorithm collection: it
// generates synthetic graphs, inspects Matrix Market files, and runs any
// algorithm of the §V list on a graph from disk or from a generator.
//
// Usage:
//
//	lagraph gen  -kind rmat -scale 12 -ef 16 -out g.mtx
//	lagraph info -in g.mtx
//	lagraph run  -algo bfs -src 0 -in g.mtx
//	lagraph run  -algo pagerank -kind rmat -scale 12
//	lagraph run  -algo bfs -kind powerlaw -scale 12 -trace trace.json
//
// Algorithms: bfs, parents, sssp, bellmanford, pagerank, tc, ktruss, cc,
// mis, coloring, bc, mcl, peerpressure, localcluster, apsp.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/mmio"
	"lagraph/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		// A deadline hit gets its own exit status so scripts can tell
		// "too slow" from "wrong": 3 = canceled, 1 = any other failure.
		if errors.Is(err, grb.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "lagraph: canceled:", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "lagraph:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  lagraph gen     -kind rmat|er|grid|powerlaw -scale N [-ef N] [-seed N] [-undirected] -out FILE
  lagraph info    -in FILE
  lagraph run     -algo NAME (-in FILE | -kind ... -scale N) [-src N] [-k N] [-undirected] [-trace FILE] [-timeout DUR]
  lagraph convert -in FILE(.mtx|.grb) -out FILE(.mtx|.grb)`)
}

// cmdConvert moves a matrix between the Matrix Market text format and the
// library's binary serialization (.grb), in either direction based on the
// file extensions.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input file (.mtx or .grb)")
	out := fs.String("out", "", "output file (.mtx or .grb)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -in and -out required")
	}
	var a *grb.Matrix[float64]
	switch {
	case strings.HasSuffix(*in, ".grb"):
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		a, err = grb.DeserializeMatrix[float64](f)
		if err != nil {
			return err
		}
	default:
		var err error
		a, _, err = mmio.ReadMatrixFile(*in)
		if err != nil {
			return err
		}
	}
	switch {
	case strings.HasSuffix(*out, ".grb"):
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := grb.SerializeMatrix(f, a); err != nil {
			return err
		}
	default:
		if err := mmio.WriteMatrixFile(*out, a); err != nil {
			return err
		}
	}
	fmt.Printf("converted %s → %s (%d×%d, %d entries)\n", *in, *out, a.Nrows(), a.Ncols(), a.Nvals())
	return nil
}

// graphFlags adds the shared graph-source flags to a FlagSet.
type graphFlags struct {
	in         *string
	kind       *string
	scale      *int
	ef         *int
	seed       *int64
	undirected *bool
	minW, maxW *float64
	alpha      *float64
}

func addGraphFlags(fs *flag.FlagSet) *graphFlags {
	return &graphFlags{
		in:         fs.String("in", "", "Matrix Market input file"),
		kind:       fs.String("kind", "rmat", "generator: rmat | er | grid | powerlaw"),
		scale:      fs.Int("scale", 10, "generator scale (2^scale vertices; grid side for grid)"),
		ef:         fs.Int("ef", 16, "edges per vertex"),
		seed:       fs.Int64("seed", 1, "generator seed"),
		undirected: fs.Bool("undirected", false, "treat/generate as undirected"),
		minW:       fs.Float64("minw", 0, "minimum edge weight (0 = unweighted)"),
		maxW:       fs.Float64("maxw", 0, "maximum edge weight"),
		alpha:      fs.Float64("alpha", 1.8, "power-law exponent (powerlaw generator)"),
	}
}

func (gf *graphFlags) load() (*lagraph.Graph, error) {
	kind := lagraph.Directed
	if *gf.undirected {
		kind = lagraph.Undirected
	}
	if *gf.in != "" {
		a, _, err := mmio.ReadMatrixFile(*gf.in)
		if err != nil {
			return nil, err
		}
		return lagraph.NewGraph(a, kind)
	}
	cfg := gen.Config{Seed: *gf.seed, Undirected: *gf.undirected, NoSelfLoops: true,
		MinWeight: *gf.minW, MaxWeight: *gf.maxW}
	var e *gen.EdgeList
	switch *gf.kind {
	case "rmat":
		e = gen.RMAT(*gf.scale, *gf.ef, cfg)
	case "er":
		n := 1 << *gf.scale
		e = gen.ErdosRenyi(n, *gf.ef*n, cfg)
	case "grid":
		e = gen.Grid2D(*gf.scale, *gf.scale, cfg)
	case "powerlaw":
		n := 1 << *gf.scale
		e = gen.PowerLaw(n, *gf.ef*n, *gf.alpha, cfg)
	default:
		return nil, fmt.Errorf("unknown generator %q", *gf.kind)
	}
	return lagraph.NewGraph(e.Matrix(), kind)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	gf := addGraphFlags(fs)
	out := fs.String("out", "", "output Matrix Market file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -out required")
	}
	g, err := gf.load()
	if err != nil {
		return err
	}
	if err := mmio.WriteMatrixFile(*out, g.A); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.N(), g.NEdges())
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	gf := addGraphFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gf.load()
	if err != nil {
		return err
	}
	s := lagraph.Measure(g)
	fmt.Printf("vertices:    %d\n", s.N)
	fmt.Printf("edges:       %d\n", s.NEdges)
	fmt.Printf("self loops:  %d\n", s.NSelfLoops)
	fmt.Printf("degree:      min %d, max %d, avg %.2f\n", s.MinDegree, s.MaxDegree, s.AvgDegree)
	fmt.Printf("density:     %.3e\n", s.Density)
	fmt.Printf("symmetric:   %v\n", g.IsSymmetric())
	hist := lagraph.DegreeHistogram(g)
	fmt.Printf("degree histogram (first 10 buckets): ")
	for d := 0; d < len(hist) && d < 10; d++ {
		fmt.Printf("%d:%d ", d, hist[d])
	}
	fmt.Println()
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	gf := addGraphFlags(fs)
	algo := fs.String("algo", "bfs", "algorithm to run")
	src := fs.Int("src", 0, "source vertex (bfs/sssp/bc/localcluster)")
	k := fs.Int("k", 3, "k (ktruss) / batch size (bc) / top-k (pagerank)")
	delta := fs.Float64("delta", 2, "delta (sssp delta-stepping)")
	trace := fs.String("trace", "", "write a JSON op/iteration trace to FILE (\"-\" = stdout)")
	traceCap := fs.Int("trace-cap", obs.DefaultTraceCapacity, "trace ring-buffer capacity (records kept per kind)")
	timeout := fs.Duration("timeout", 0, "abandon the run after this long (0 = no deadline); exit status 3")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := gf.load()
	if err != nil {
		return err
	}
	// The deadline covers the algorithm only, not graph loading: checked
	// between iterations, so cancellation lands within one iteration.
	var opts []lagraph.Option
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts = append(opts, lagraph.WithContext(ctx))
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.NEdges())
	var tr *obs.Trace
	if *trace != "" {
		tr = obs.NewTrace(*traceCap)
		prev := obs.Set(tr)
		defer func() {
			obs.Set(prev)
			if err := writeTrace(*trace, tr); err != nil {
				fmt.Fprintln(os.Stderr, "lagraph: trace:", err)
			}
		}()
	}
	t0 := time.Now()
	defer func() { fmt.Printf("elapsed: %v\n", time.Since(t0)) }()

	switch strings.ToLower(*algo) {
	case "bfs":
		var stats lagraph.BFSStats
		levels, err := lagraph.BFSLevels(g, *src, append(opts, lagraph.WithStats(&stats))...)
		if err != nil {
			return err
		}
		fmt.Printf("bfs from %d: reached %d vertices, depth %d\n", *src, levels.Nvals(), stats.Depth)
		for i := range stats.FrontierSizes {
			dir := "push"
			if stats.Directions[i] == grb.DirPull {
				dir = "pull"
			}
			fmt.Printf("  iter %2d: frontier %7d  %s\n", i, stats.FrontierSizes[i], dir)
		}
	case "parents":
		parents, err := lagraph.BFSParents(g, *src, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("bfs tree from %d: %d vertices\n", *src, parents.Nvals())
	case "sssp":
		d, err := lagraph.SSSP(g, *src, append(opts, lagraph.WithDelta(*delta))...)
		if err != nil {
			return err
		}
		mx, _ := grb.ReduceVectorToScalar(grb.MaxMonoid[float64](), d)
		fmt.Printf("sssp from %d: reached %d, max distance %.1f\n", *src, d.Nvals(), mx)
	case "bellmanford":
		d, err := lagraph.SSSPBellmanFord(g, *src, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("bellman-ford from %d: reached %d\n", *src, d.Nvals())
	case "pagerank":
		res, err := lagraph.PageRankWith(g, append(opts,
			lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-8), lagraph.WithMaxIter(100))...)
		if err != nil {
			return err
		}
		fmt.Printf("pagerank: %d iterations (converged=%v)\n", res.Iterations, res.Converged)
		for rank, v := range lagraph.TopK(res.Rank, *k) {
			score, _ := res.Rank.GetElement(v)
			fmt.Printf("  #%d vertex %d  %.6f\n", rank+1, v, score)
		}
	case "tc":
		c, err := lagraph.TriangleCount(g, lagraph.TCSandiaDot, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("triangles: %d\n", c)
	case "ktruss":
		tr, err := lagraph.KTruss(g, *k, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("%d-truss: %d directed edges\n", *k, tr.Nvals())
	case "cc":
		labels, err := lagraph.ConnectedComponentsFastSV(g, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("components: %d\n", lagraph.CountComponents(labels))
	case "mis":
		iset, err := lagraph.MIS(g, *gf.seed, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("maximal independent set: %d vertices\n", iset.Nvals())
	case "coloring":
		_, used, err := lagraph.Coloring(g, *gf.seed)
		if err != nil {
			return err
		}
		fmt.Printf("colors used: %d\n", used)
	case "bc":
		sources := make([]int, 0, *k)
		for s := 0; s < *k && s < g.N(); s++ {
			sources = append(sources, (*src+s)%g.N())
		}
		bc, err := lagraph.BetweennessCentrality(g, sources)
		if err != nil {
			return err
		}
		for rank, v := range lagraph.TopK(bc, 5) {
			score, _ := bc.GetElement(v)
			fmt.Printf("  #%d vertex %d  bc %.1f\n", rank+1, v, score)
		}
	case "mcl":
		labels, err := lagraph.MarkovClustering(g, 2, 1e-6, 60)
		if err != nil {
			return err
		}
		fmt.Printf("markov clusters: %d\n", lagraph.CountComponents(labels))
	case "peerpressure":
		labels, err := lagraph.PeerPressure(g, 60)
		if err != nil {
			return err
		}
		fmt.Printf("peer-pressure clusters: %d\n", lagraph.CountComponents(labels))
	case "localcluster":
		res, err := lagraph.LocalCluster(g, *src, 0.15, 1e-5)
		if err != nil {
			return err
		}
		fmt.Printf("local cluster around %d: %d members, conductance %.3f\n",
			*src, len(res.Members), res.Conductance)
	case "apsp":
		d, err := lagraph.APSP(g, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("apsp: %d finite pairs\n", d.Nvals())
	case "kcore":
		core, err := lagraph.KCore(g)
		if err != nil {
			return err
		}
		mx, _ := grb.ReduceVectorToScalar(grb.MaxMonoid[int64](), core)
		fmt.Printf("k-core: degeneracy %d\n", mx)
	case "hits":
		res, err := lagraph.HITSWith(g, append(opts,
			lagraph.WithTolerance(1e-8), lagraph.WithMaxIter(200))...)
		if err != nil {
			return err
		}
		fmt.Printf("hits: %d iterations (converged=%v)\n", res.Iterations, res.Converged)
		for rank, v := range lagraph.TopK(res.Authorities, *k) {
			score, _ := res.Authorities.GetElement(v)
			fmt.Printf("  authority #%d vertex %d  %.6f\n", rank+1, v, score)
		}
	case "diameter":
		d, from, to, err := lagraph.PseudoDiameter(g, *src, 8)
		if err != nil {
			return err
		}
		fmt.Printf("pseudo-diameter: %d (between %d and %d)\n", d, from, to)
	case "cc-lp":
		labels, err := lagraph.ConnectedComponentsLabelProp(g, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("components (label prop): %d\n", lagraph.CountComponents(labels))
	case "subgraph":
		sc, err := lagraph.CountSubgraphs(g)
		if err != nil {
			return err
		}
		fmt.Printf("triangles: %d, wedges: %d\n", sc.TotalTriangles, sc.TotalWedges)
		_, global, err := lagraph.ClusteringCoefficient(g)
		if err != nil {
			return err
		}
		fmt.Printf("global clustering coefficient: %.4f\n", global)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

// writeTrace dumps the collected trace as indented JSON ("-" = stdout).
func writeTrace(path string, tr *obs.Trace) error {
	if path == "-" {
		return tr.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
