// Skewed-degree micro-benchmarks for the work-aware scheduler: power-law
// inputs from internal/gen concentrate nearly all flops in a few hub rows,
// the regime where equal-count partitioning serializes on one worker. Each
// benchmark runs at SetParallelism(1) and at the machine's parallelism so
// `go test -bench=Skewed` prints the scaling directly; cmd/bench-tables
// -table perf -json BENCH_1.json records the same workloads for the perf
// trajectory.
package lagraph_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

const (
	skewN     = 1 << 13 // vertices
	skewM     = 16 * skewN
	skewAlpha = 1.6
)

var (
	onceSkew  sync.Once
	skewA     *grb.Matrix[float64]
	skewFront *grb.Vector[float64]
	skewEdges *gen.EdgeList
	skewKronA *grb.Matrix[float64]
	skewKronB *grb.Matrix[float64]
)

func skewedInputs() {
	onceSkew.Do(func() {
		skewEdges = gen.PowerLaw(skewN, skewM, skewAlpha, gen.Config{Seed: 41, NoSelfLoops: true})
		skewA = skewEdges.Matrix()
		skewA.Wait()
		// A BFS-like frontier holding the hubs plus a spread of leaves:
		// the push step's worst case for equal-count splitting.
		skewFront = grb.MustVector[float64](skewN)
		for i := 0; i < skewN; i += 16 {
			_ = skewFront.SetElement(i, 1)
		}
		for i := 0; i < 64; i++ { // hubs live at the low Zipf ranks
			_ = skewFront.SetElement(i, 1)
		}
		skewFront.Wait()
		skewKronA = gen.PowerLaw(256, 4096, skewAlpha, gen.Config{Seed: 42}).Matrix()
		skewKronB = gen.PowerLaw(64, 1024, skewAlpha, gen.Config{Seed: 43}).Matrix()
		skewKronA.Wait()
		skewKronB.Wait()
	})
}

// benchParallelism yields the worker counts benchmarked: serial, and the
// larger of GOMAXPROCS and 4 (so the scheduler's scaling is visible even
// when the host restricts GOMAXPROCS).
func benchParallelism() []int {
	p := runtime.GOMAXPROCS(0)
	if p < 4 {
		p = 4
	}
	return []int{1, p}
}

func runAtParallelism(b *testing.B, f func()) {
	b.Helper()
	skewedInputs()
	for _, p := range benchParallelism() {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			old := grb.SetParallelism(p)
			defer grb.SetParallelism(old)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f()
			}
		})
	}
}

func BenchmarkSkewedMxMGustavson(b *testing.B) {
	runAtParallelism(b, func() {
		c := grb.MustMatrix[float64](skewN, skewN)
		_ = grb.MxM(c, (*grb.Matrix[bool])(nil), nil, grb.PlusTimes[float64](), skewA, skewA,
			&grb.Descriptor{Method: grb.MxMGustavson})
	})
}

func BenchmarkSkewedMxMDotMasked(b *testing.B) {
	runAtParallelism(b, func() {
		c := grb.MustMatrix[float64](skewN, skewN)
		_ = grb.MxM(c, skewA, nil, grb.PlusTimes[float64](), skewA, skewA,
			&grb.Descriptor{Method: grb.MxMDot, TranB: true})
	})
}

func BenchmarkSkewedMxMHeap(b *testing.B) {
	runAtParallelism(b, func() {
		c := grb.MustMatrix[float64](skewN, skewN)
		_ = grb.MxM(c, (*grb.Matrix[bool])(nil), nil, grb.PlusTimes[float64](), skewA, skewA,
			&grb.Descriptor{Method: grb.MxMHeap})
	})
}

// BenchmarkSkewedPush is the BFS push phase in isolation: SpMSpV from a
// hub-heavy frontier, previously fully serial.
func BenchmarkSkewedPush(b *testing.B) {
	runAtParallelism(b, func() {
		w := grb.MustVector[float64](skewN)
		_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), skewFront, skewA,
			&grb.Descriptor{Dir: grb.DirPush})
	})
}

func BenchmarkSkewedPull(b *testing.B) {
	runAtParallelism(b, func() {
		w := grb.MustVector[float64](skewN)
		_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), skewFront, skewA,
			&grb.Descriptor{Dir: grb.DirPull})
	})
}

func BenchmarkSkewedTranspose(b *testing.B) {
	runAtParallelism(b, func() {
		c := grb.MustMatrix[float64](skewN, skewN)
		_ = grb.Transpose[float64, bool](c, nil, nil, skewA, nil)
	})
}

// BenchmarkSkewedBuild is batch assembly (§II-A): the parallel chunk-sort
// plus multiway merge behind Build and pending-tuple Wait.
func BenchmarkSkewedBuild(b *testing.B) {
	runAtParallelism(b, func() {
		a := grb.MustMatrix[float64](skewN, skewN)
		_ = a.Build(skewEdges.Src, skewEdges.Dst, skewEdges.W, grb.First[float64, float64]())
	})
}

func BenchmarkSkewedKronecker(b *testing.B) {
	runAtParallelism(b, func() {
		c := grb.MustMatrix[float64](256*64, 256*64)
		_ = grb.Kronecker[float64, float64, float64, bool](c, nil, nil, grb.Times[float64](),
			skewKronA, skewKronB, nil)
	})
}
