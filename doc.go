// Package lagraph is a pure-Go reproduction of the system proposed in
// "LAGraph: A Community Effort to Collect Graph Algorithms Built on Top of
// the GraphBLAS" (Mattson, Davis, Kumar, Buluç, McMillan, Moreira, Yang —
// IPDPSW 2019): a GraphBLAS implementation (sparse linear algebra over
// arbitrary semirings) plus the LAGraph collection of graph algorithms
// built on it.
//
// The layering follows Figure 1 of the paper:
//
//	applications / examples (examples/, cmd/)
//	        │
//	algorithm library (internal/lagraph)   +  I/O & generators
//	        │                                 (internal/mmio, internal/gen)
//	GraphBLAS API (internal/grb)  — Matrix[T], Vector[T], semirings,
//	        │                        masks, descriptors, non-blocking mode
//	storage kernels — CSR/CSC/hypersparse, Gustavson/dot/heap mxm,
//	                  push–pull mxv, pending tuples & zombies
//
// This root package re-exports the most frequently used surface so that
// small programs need a single import. The full API lives in the
// subpackages.
package lagraph

import (
	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

// Core object types, re-exported.
type (
	// Matrix is a GraphBLAS sparse matrix with entries of type T.
	Matrix[T any] = grb.Matrix[T]
	// Vector is a GraphBLAS sparse vector with entries of type T.
	Vector[T any] = grb.Vector[T]
	// Descriptor modifies GraphBLAS operations.
	Descriptor = grb.Descriptor
	// Graph bundles an adjacency matrix with cached properties.
	Graph = lagraph.Graph
	// Kind distinguishes directed from undirected graphs.
	Kind = lagraph.Kind
)

// Graph kinds.
const (
	Directed   = lagraph.Directed
	Undirected = lagraph.Undirected
)

// Triangle-count method selection, re-exported: the formulation family
// (TCMethod), degree presorting (TCPresort), and the functional options
// that carry them. TCAuto + TCSortAuto picks the formulation and decides
// whether a degree relabeling pays, per graph, at call time.
type (
	// TCMethod selects a triangle-count formulation.
	TCMethod = lagraph.TCMethod
	// TCPresort selects a degree relabeling applied before counting.
	TCPresort = lagraph.TCPresort
	// TCOption configures TriangleCount (WithMethod, WithPresort, …).
	TCOption = lagraph.Option
)

const (
	// TCAuto picks the formulation and presort from the graph's shape.
	TCAuto = lagraph.TCAuto
	// TCSandiaLL is the saxpy L·L formulation (masked by L).
	TCSandiaLL = lagraph.TCSandiaLL
	// TCSortAuto relabels by degree only when the estimated saxpy work
	// on the natural ordering says the rebuild pays.
	TCSortAuto = lagraph.TCSortAuto
)

var (
	// WithMethod overrides the TriangleCount method argument.
	WithMethod = lagraph.WithMethod
	// WithPresort sets the degree presort for TriangleCount.
	WithPresort = lagraph.WithPresort
	// WithDamping sets PageRank's damping factor (default 0.85).
	WithDamping = lagraph.WithDamping
	// WithTolerance sets the convergence tolerance of fixed-point loops.
	WithTolerance = lagraph.WithTolerance
	// WithMaxIter caps the main iteration count.
	WithMaxIter = lagraph.WithMaxIter
	// WithDelta sets delta-stepping's bucket width (default 2).
	WithDelta = lagraph.WithDelta
)

// NewMatrix creates an empty nrows×ncols GraphBLAS matrix.
func NewMatrix[T any](nrows, ncols int) (*Matrix[T], error) {
	return grb.NewMatrix[T](nrows, ncols)
}

// NewVector creates an empty GraphBLAS vector of dimension n.
func NewVector[T any](n int) (*Vector[T], error) {
	return grb.NewVector[T](n)
}

// NewGraph wraps an adjacency matrix as a Graph.
func NewGraph(a *Matrix[float64], kind Kind) (*Graph, error) {
	return lagraph.NewGraph(a, kind)
}

// RMAT generates a scale-free graph with 2^scale vertices (Graph500
// parameters) and wraps it as a Graph.
func RMAT(scale, edgeFactor int, seed int64, undirected bool) *Graph {
	kind := Directed
	if undirected {
		kind = Undirected
	}
	return lagraph.FromEdgeList(gen.RMAT(scale, edgeFactor, gen.Config{
		Seed: seed, Undirected: undirected, NoSelfLoops: true,
	}), kind)
}

// The most used algorithms, re-exported; the full collection lives in
// internal/lagraph (see the examples directory for usage).
var (
	// BFSLevels computes direction-optimized BFS levels.
	BFSLevels = lagraph.BFSLevels
	// BFSParents computes the BFS parent tree with the ANY semiring.
	BFSParents = lagraph.BFSParents
	// PageRank computes damped PageRank with an L1 stopping tolerance;
	// tune it with WithDamping, WithTolerance, WithMaxIter.
	PageRank = lagraph.PageRankWith
	// TriangleCount counts triangles; see lagraph.TCMethod for kernels.
	TriangleCount = lagraph.TriangleCount
	// ConnectedComponents labels weakly connected components (FastSV).
	ConnectedComponents = lagraph.ConnectedComponentsFastSV
	// SSSP computes single-source shortest paths (delta-stepping); tune
	// the bucket width with WithDelta.
	SSSP = lagraph.SSSP
	// KCore computes the k-core decomposition.
	KCore = lagraph.KCore
	// HITS computes hub and authority scores; tune it with WithTolerance
	// and WithMaxIter.
	HITS = lagraph.HITSWith
	// Modularity scores a clustering.
	Modularity = lagraph.Modularity
	// Measure computes basic graph statistics.
	Measure = lagraph.Measure
)
