package lagraph_test

// Per-algorithm benchmarks covering the §V census beyond the C8 subset,
// plus kernel ablations for the design choices DESIGN.md calls out.

import (
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func smallWeighted() *lagraph.Graph {
	return lagraph.FromEdgeList(
		gen.ErdosRenyi(512, 4096, gen.Config{Seed: 21, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 9}),
		lagraph.Undirected)
}

func BenchmarkAlgo_BFSParents(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BFSParents(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_MSBFS16(b *testing.B) {
	_, g, _ := benchGraphs()
	sources := make([]int, 16)
	for s := range sources {
		sources[s] = s * 37
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.MSBFSLevels(g, sources); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_BetweennessBatch8(b *testing.B) {
	g := smallWeighted()
	sources := []int{0, 7, 21, 63, 127, 255, 300, 400}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.BetweennessCentrality(g, sources); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_KTruss4(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.KTruss(g, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_KCore(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.KCore(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_MIS(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.MIS(g, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_Coloring(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, _, err := lagraph.Coloring(g, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_MarkovClustering(b *testing.B) {
	g := smallWeighted()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.MarkovClustering(g, 2, 1e-6, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_PeerPressure(b *testing.B) {
	g := smallWeighted()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.PeerPressure(g, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_LocalCluster(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.LocalCluster(g, 0, 0.15, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_SubgraphCounts(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.CountSubgraphs(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_CollaborativeFiltering(b *testing.B) {
	// 512 users × 256 items, ~8k observed ratings, rank 8, 5 epochs.
	el := gen.Bipartite(512, 256, 8192, gen.Config{Seed: 22, MinWeight: 1, MaxWeight: 5})
	r := grb.MustMatrix[float64](512, 256)
	for k := range el.Src {
		_ = r.SetElement(el.Src[k], el.Dst[k]-512, el.W[k])
	}
	r.Wait()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.CollaborativeFiltering(r, 8, 0.05, 0.01, 5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_DNNLayer(b *testing.B) {
	w := gen.ErdosRenyi(1024, 32*1024, gen.Config{Seed: 23, MinWeight: 0.1, MaxWeight: 1}).Matrix()
	y0 := grb.MustMatrix[float64](256, 1024)
	for i := 0; i < 256; i++ {
		for k := 0; k < 32; k++ {
			_ = y0.SetElement(i, (i*31+k*97)%1024, 1)
		}
	}
	y0.Wait()
	layer := []lagraph.DNNLayer{{W: w}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.DNNInference(y0, layer, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_HITS(b *testing.B) {
	g, _, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, err := lagraph.HITSWith(g, lagraph.WithTolerance(1e-6), lagraph.WithMaxIter(50)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgo_PseudoDiameter(b *testing.B) {
	_, g, _ := benchGraphs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := lagraph.PseudoDiameter(g, 0, 4); err != nil {
			b.Fatal(err)
		}
	}
}

//
// Ablations.
//

// BenchmarkAblation_MaskedVsUnmaskedTC isolates the benefit of fusing the
// output mask into the multiply for triangle counting.
func BenchmarkAblation_MaskedVsUnmaskedTC(b *testing.B) {
	l, _ := benchTCOperands()
	plusPair := grb.PlusPair[int64, int64, int64]()
	b.Run("masked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := grb.MustMatrix[int64](l.Nrows(), l.Ncols())
			if err := grb.MxM(c, l, nil, plusPair, l, l, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmasked-then-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := grb.MustMatrix[int64](l.Nrows(), l.Ncols())
			if err := grb.MxM[int64, int64, int64, bool](c, nil, nil, plusPair, l, l, nil); err != nil {
				b.Fatal(err)
			}
			f := grb.MustMatrix[int64](l.Nrows(), l.Ncols())
			if err := grb.EWiseMultMatrix[int64, int64, int64, bool](f, nil, nil, grb.Second[int64, int64](), l, c, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_CSCCache measures the cost the column cache saves:
// first pull after a mutation pays a transpose.
func BenchmarkAblation_CSCCache(b *testing.B) {
	_, g, _ := benchGraphs()
	n := g.N()
	frontier := grb.MustVector[bool](n)
	for i := 0; i < n; i += 2 {
		_ = frontier.SetElement(i, true)
	}
	frontier.Wait()
	logical := grb.Semiring[bool, float64, bool]{Add: grb.LOrMonoid(), Mul: grb.First[bool, float64]()}
	pull := &grb.Descriptor{Dir: grb.DirPull}
	b.Run("cold-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			a := g.A.Dup() // fresh matrix: no CSC cache
			b.StartTimer()
			w := grb.MustVector[bool](n)
			if err := grb.VxM(w, (*grb.Vector[bool])(nil), nil, logical, frontier, a, pull); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-cache", func(b *testing.B) {
		a := g.A.Dup()
		// Prime the cache.
		w := grb.MustVector[bool](n)
		_ = grb.VxM(w, (*grb.Vector[bool])(nil), nil, logical, frontier, a, pull)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := grb.MustVector[bool](n)
			if err := grb.VxM(w, (*grb.Vector[bool])(nil), nil, logical, frontier, a, pull); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_PendingGranularity shows how batching element updates
// amortizes: one Wait per k insertions.
func BenchmarkAblation_PendingGranularity(b *testing.B) {
	n := 1 << benchScale
	el := gen.ErdosRenyi(n, 1<<12, gen.Config{Seed: 24})
	for _, every := range []int{1, 64, 1 << 30} {
		name := "wait-every-1"
		switch every {
		case 64:
			name = "wait-every-64"
		case 1 << 30:
			name = "wait-once"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := grb.MustMatrix[float64](n, n)
				for k := range el.Src {
					_ = a.SetElement(el.Src[k], el.Dst[k], el.W[k])
					if (k+1)%every == 0 {
						a.Wait()
					}
				}
				a.Wait()
			}
		})
	}
}
