// PageRank example: rank a synthetic scale-free "web graph" and print the
// most central pages, comparing against the classic power-iteration
// baseline (the paper's §III efficiency-retention hypothesis, in
// miniature).
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/lagraph"
)

func main() {
	const scale, edgeFactor = 14, 16
	e := gen.RMAT(scale, edgeFactor, gen.Config{Seed: 7, NoSelfLoops: true})
	g := lagraph.FromEdgeList(e, lagraph.Directed)
	fmt.Printf("web graph: %d pages, %d links\n", g.N(), g.NEdges())

	t0 := time.Now()
	res, err := lagraph.PageRankWith(g, lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-8), lagraph.WithMaxIter(200))
	if err != nil {
		log.Fatal(err)
	}
	grbTime := time.Since(t0)
	fmt.Printf("GraphBLAS PageRank: %d iterations, converged=%v, %v\n",
		res.Iterations, res.Converged, grbTime)

	top := lagraph.TopK(res.Rank, 10)
	fmt.Println("\nrank  page       score")
	for i, p := range top {
		score, _ := res.Rank.GetElement(p)
		fmt.Printf("%4d  %-9d  %.6f\n", i+1, p, score)
	}

	// Classic baseline for the same computation.
	bg := baseline.FromMatrix(g.A.Dup())
	t1 := time.Now()
	want := baseline.PageRank(bg, 0.85, res.Iterations)
	baseTime := time.Since(t1)
	maxDiff := 0.0
	for v := 0; v < g.N(); v++ {
		r, err := res.Rank.GetElement(v)
		if err != nil {
			r = 0
		}
		if d := math.Abs(r - want[v]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nbaseline power iteration: %v; max |Δrank| = %.2e\n", baseTime, maxDiff)
}
