// Sparse deep neural network inference (§V, [47]): a GraphChallenge-style
// workload — random sparse layers, ReLU with saturation — expressed
// entirely in GraphBLAS operations.
//
//	go run ./examples/dnn
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func main() {
	const (
		nfeatures = 512
		nneurons  = 1024
		nlayers   = 8
		fanIn     = 32
	)
	rng := rand.New(rand.NewSource(99))

	// Random sparse layers, weights centred slightly positive so some
	// signal survives 12 layers of ReLU.
	layers := make([]lagraph.DNNLayer, nlayers)
	for l := range layers {
		w := grb.MustMatrix[float64](nneurons, nneurons)
		is := make([]int, 0, nneurons*fanIn)
		js := make([]int, 0, nneurons*fanIn)
		xs := make([]float64, 0, nneurons*fanIn)
		for j := 0; j < nneurons; j++ {
			for k := 0; k < fanIn; k++ {
				is = append(is, rng.Intn(nneurons))
				js = append(js, j)
				xs = append(xs, rng.Float64()*0.6)
			}
		}
		if err := w.Build(is, js, xs, grb.Plus[float64]()); err != nil {
			log.Fatal(err)
		}
		bias := grb.MustVector[float64](nneurons)
		for j := 0; j < nneurons; j++ {
			_ = bias.SetElement(j, -0.15)
		}
		layers[l] = lagraph.DNNLayer{W: w, Bias: bias}
	}

	// Sparse input activations.
	y0 := grb.MustMatrix[float64](nfeatures, nneurons)
	for i := 0; i < nfeatures; i++ {
		for k := 0; k < 64; k++ {
			_ = y0.SetElement(i, rng.Intn(nneurons), rng.Float64())
		}
	}
	fmt.Printf("input: %d×%d activations, %d nonzeros, %d layers\n",
		nfeatures, nneurons, y0.Nvals(), nlayers)

	t0 := time.Now()
	y := y0
	fmt.Println("layer  nonzeros  density")
	for l := range layers {
		var err error
		y, err = lagraph.DNNInference(y, layers[l:l+1], 32)
		if err != nil {
			log.Fatal(err)
		}
		nv := y.Nvals()
		fmt.Printf("%5d  %8d  %.3f\n", l+1, nv, float64(nv)/float64(nfeatures*nneurons))
	}
	fmt.Printf("inference: %v, output nonzeros: %d\n", time.Since(t0), y.Nvals())

	cats, err := lagraph.DNNCategories(y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("categories (rows with surviving signal): %d / %d\n", cats.Nvals(), nfeatures)
}
