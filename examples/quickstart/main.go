// Quickstart: the level-synchronous BFS of Fig. 2 of the paper, run on a
// small scale-free graph through the public facade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	root "lagraph"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func main() {
	// A scale-free graph with 2^12 vertices and ~16 edges per vertex.
	g := root.RMAT(12, 16, 42, true)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.NEdges())

	// The Fig. 2 loop, 1-based levels.
	levels, err := lagraph.BFSLevelSimple(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reached %d of %d vertices\n", levels.Nvals(), g.N())

	// Level histogram.
	_, xs := levels.ExtractTuples()
	hist := map[int32]int{}
	maxLevel := int32(0)
	for _, l := range xs {
		hist[l]++
		if l > maxLevel {
			maxLevel = l
		}
	}
	fmt.Println("level  vertices")
	for l := int32(1); l <= maxLevel; l++ {
		fmt.Printf("%5d  %d\n", l, hist[l])
	}

	// The production BFS records the push–pull decisions the paper's
	// §II-E describes.
	var stats lagraph.BFSStats
	if _, err := root.BFSLevels(g, 0, lagraph.WithStats(&stats)); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\niteration  frontier  direction")
	for i, nf := range stats.FrontierSizes {
		dir := "push"
		if stats.Directions[i] == grb.DirPull {
			dir = "pull"
		}
		fmt.Printf("%9d  %8d  %s\n", i, nf, dir)
	}
}
