// Triangle census: run the four triangle-counting formulations of §V and
// a k-truss sweep on a scale-free graph, showing how the masked-multiply
// kernels (§II-A) are exercised by each.
//
//	go run ./examples/trianglecensus
package main

import (
	"fmt"
	"log"
	"time"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/lagraph"
)

func main() {
	e := gen.RMAT(12, 8, gen.Config{Seed: 5, Undirected: true, NoSelfLoops: true})
	g := lagraph.FromEdgeList(e, lagraph.Undirected)
	fmt.Printf("graph: %d vertices, %d edges\n\n", g.N(), g.NEdges())

	methods := []struct {
		name string
		m    lagraph.TCMethod
	}{
		{"Burkhardt sum(A²∘A)/6 ", lagraph.TCBurkhardt},
		{"Cohen     sum(L·U∘A)/2", lagraph.TCCohen},
		{"Sandia    sum(L·L∘L)  ", lagraph.TCSandiaLL},
		{"SandiaDot sum(L·Uᵀ∘L) ", lagraph.TCSandiaDot},
	}
	fmt.Println("method                      triangles      time")
	for _, m := range methods {
		t0 := time.Now()
		c, err := lagraph.TriangleCount(g, m.m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  %10d  %8v\n", m.name, c, time.Since(t0))
	}
	t0 := time.Now()
	want := baseline.TriangleCount(baseline.FromMatrix(g.A.Dup()))
	fmt.Printf("baseline (set intersect)    %10d  %8v\n\n", want, time.Since(t0))

	fmt.Println("k-truss sweep (surviving directed edges)")
	for k := 3; k <= 8; k++ {
		tr, err := lagraph.KTruss(g, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d-truss: %8d edges\n", k, tr.Nvals())
		if tr.Nvals() == 0 {
			break
		}
	}
}
