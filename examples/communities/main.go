// Community detection example: three clustering formulations of §V —
// Markov clustering, peer-pressure clustering and local (PR-Nibble)
// clustering — on a planted-partition graph, scored against the ground
// truth.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

const (
	nCommunities = 6
	communitySz  = 30
	pIn          = 0.4
	pOut         = 0.005
)

func plantedPartition(seed int64) (*lagraph.Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := nCommunities * communitySz
	truth := make([]int, n)
	el := &gen.EdgeList{N: n}
	add := func(u, v int) {
		el.Src = append(el.Src, u, v)
		el.Dst = append(el.Dst, v, u)
		el.W = append(el.W, 1, 1)
	}
	for u := 0; u < n; u++ {
		truth[u] = u / communitySz
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if truth[u] == truth[v] {
				p = pIn
			}
			if rng.Float64() < p {
				add(u, v)
			}
		}
	}
	g, err := lagraph.NewGraph(el.Matrix(), lagraph.Undirected)
	if err != nil {
		log.Fatal(err)
	}
	return g, truth
}

// purity: fraction of vertices whose cluster's majority ground-truth
// community matches their own.
func purity(labels *grb.Vector[int64], truth []int) float64 {
	byCluster := map[int64]map[int]int{}
	is, xs := labels.ExtractTuples()
	for k := range is {
		c := xs[k]
		if byCluster[c] == nil {
			byCluster[c] = map[int]int{}
		}
		byCluster[c][truth[is[k]]]++
	}
	correct := 0
	for _, hist := range byCluster {
		best := 0
		for _, cnt := range hist {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(truth))
}

func main() {
	g, truth := plantedPartition(17)
	fmt.Printf("planted partition: %d vertices in %d communities, %d edges\n\n",
		g.N(), nCommunities, g.NEdges())

	mcl, err := lagraph.MarkovClustering(g, 2.0, 1e-5, 80)
	if err != nil {
		log.Fatal(err)
	}
	qMCL, _ := lagraph.Modularity(g, mcl)
	fmt.Printf("Markov clustering:        %2d clusters, purity %.3f, modularity %.3f\n",
		lagraph.CountComponents(mcl), purity(mcl, truth), qMCL)

	pp, err := lagraph.PeerPressure(g, 80)
	if err != nil {
		log.Fatal(err)
	}
	qPP, _ := lagraph.Modularity(g, pp)
	fmt.Printf("peer-pressure clustering: %2d clusters, purity %.3f, modularity %.3f\n",
		lagraph.CountComponents(pp), purity(pp, truth), qPP)

	// Local clustering recovers one community around a seed.
	res, err := lagraph.LocalCluster(g, 5, 0.15, 1e-5)
	if err != nil {
		log.Fatal(err)
	}
	inSeed := 0
	for _, v := range res.Members {
		if truth[v] == truth[5] {
			inSeed++
		}
	}
	fmt.Printf("local cluster (seed 5):   %2d members, %d/%d in the seed's community, φ=%.3f\n",
		len(res.Members), inSeed, len(res.Members), res.Conductance)

	// The graph-level context: connected components and pseudo-diameter.
	cc, err := lagraph.ConnectedComponentsFastSV(g)
	if err != nil {
		log.Fatal(err)
	}
	diam, a, b, err := lagraph.PseudoDiameter(g, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomponents: %d, pseudo-diameter: %d (between %d and %d)\n",
		lagraph.CountComponents(cc), diam, a, b)
}
