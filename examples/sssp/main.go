// SSSP example: delta-stepping on a weighted grid standing in for a road
// network (the substitution DESIGN.md documents), validated against
// Dijkstra and Bellman-Ford, plus an A* point-to-point query — the
// algorithm §V lists as not yet expressed in GraphBLAS form, provided
// here as an extension.
//
//	go run ./examples/sssp
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/lagraph"
)

func main() {
	const rows, cols = 120, 120
	e := gen.Grid2D(rows, cols, gen.Config{Seed: 11, Undirected: true, MinWeight: 1, MaxWeight: 10})
	g := lagraph.FromEdgeList(e, lagraph.Undirected)
	fmt.Printf("road network: %d junctions, %d road segments\n", g.N(), g.NEdges())

	src := 0
	dst := rows*cols - 1

	t0 := time.Now()
	dist, err := lagraph.SSSP(g, src, lagraph.WithDelta(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta-stepping (Δ=8):  %v\n", time.Since(t0))

	t0 = time.Now()
	distBF, err := lagraph.SSSPBellmanFord(g, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bellman-Ford (min-plus): %v\n", time.Since(t0))

	bg := baseline.FromMatrix(g.A.Dup())
	t0 = time.Now()
	want := baseline.Dijkstra(bg, src)
	fmt.Printf("Dijkstra baseline:       %v\n", time.Since(t0))

	maxDiff := 0.0
	for v := 0; v < g.N(); v++ {
		d1, err := dist.GetElement(v)
		if err != nil {
			d1 = math.Inf(1)
		}
		d2, err := distBF.GetElement(v)
		if err != nil {
			d2 = math.Inf(1)
		}
		if d := math.Abs(d1 - want[v]); d > maxDiff && !math.IsInf(want[v], 1) {
			maxDiff = d
		}
		if d := math.Abs(d2 - want[v]); d > maxDiff && !math.IsInf(want[v], 1) {
			maxDiff = d
		}
	}
	fmt.Printf("max |Δdistance| vs Dijkstra: %g\n\n", maxDiff)

	d, _ := dist.GetElement(dst)
	fmt.Printf("corner-to-corner distance: %.0f\n", d)

	t0 = time.Now()
	path, cost, ok, err := lagraph.AStar(g, src, dst, lagraph.GridManhattan(cols, dst))
	if err != nil || !ok {
		log.Fatalf("astar: ok=%v err=%v", ok, err)
	}
	fmt.Printf("A* corner-to-corner: cost %.0f, %d hops, %v\n", cost, len(path)-1, time.Since(t0))
}
