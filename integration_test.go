package lagraph_test

// End-to-end pipeline tests across package boundaries: generate → write
// Matrix Market → read back → wrap as a Graph → run algorithms → verify
// against the independent baselines. This is the "test harness"
// deliverable of Fig. 1 exercised as a whole.

import (
	"math"
	"path/filepath"
	"testing"

	root "lagraph"
	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/mmio"
)

func TestPipelineGenerateSerializeAnalyze(t *testing.T) {
	// 1. Generate a weighted scale-free graph.
	e := gen.RMAT(9, 8, gen.Config{Seed: 77, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 9})
	a := e.Matrix()

	// 2. Serialize to Matrix Market and read back.
	dir := t.TempDir()
	path := filepath.Join(dir, "graph.mtx")
	if err := mmio.WriteMatrixFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, hdr, err := mmio.ReadMatrixFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.NRows != a.Nrows() || b.Nvals() != a.Nvals() {
		t.Fatalf("roundtrip: %d vs %d entries", b.Nvals(), a.Nvals())
	}

	// 3. Wrap and analyze.
	g, err := lagraph.NewGraph(b, lagraph.Undirected)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric() {
		t.Fatal("undirected RMAT must serialize symmetric")
	}
	bg := baseline.FromMatrix(g.A.Dup())

	// BFS agrees with the baseline.
	levels, err := lagraph.BFSLevels(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantLevels, _ := baseline.BFSLevels(bg, 0)
	for v, wl := range wantLevels {
		gl, err := levels.GetElement(v)
		if wl < 0 {
			if err == nil {
				t.Fatalf("vertex %d unreachable but leveled", v)
			}
			continue
		}
		if err != nil || gl != int32(wl) {
			t.Fatalf("level[%d]=%v want %d", v, gl, wl)
		}
	}

	// SSSP agrees with Dijkstra.
	dist, err := lagraph.SSSP(g, 0, lagraph.WithDelta(3))
	if err != nil {
		t.Fatal(err)
	}
	wantDist := baseline.Dijkstra(bg, 0)
	for v := range wantDist {
		gd, err := dist.GetElement(v)
		if math.IsInf(wantDist[v], 1) {
			if err == nil {
				t.Fatalf("dist[%d] should be missing", v)
			}
			continue
		}
		if err != nil || math.Abs(gd-wantDist[v]) > 1e-9 {
			t.Fatalf("dist[%d]=%v want %v", v, gd, wantDist[v])
		}
	}

	// Triangles agree across all four formulations and the baseline.
	wantTC := baseline.TriangleCount(bg)
	for _, m := range []lagraph.TCMethod{lagraph.TCBurkhardt, lagraph.TCCohen, lagraph.TCSandiaLL, lagraph.TCSandiaDot} {
		c, err := lagraph.TriangleCount(g, m)
		if err != nil || c != wantTC {
			t.Fatalf("tc method %d: %d want %d (%v)", m, c, wantTC, err)
		}
	}

	// Components agree.
	cc, err := lagraph.ConnectedComponentsFastSV(g)
	if err != nil {
		t.Fatal(err)
	}
	wantCC := baseline.ConnectedComponents(bg)
	for v := range wantCC {
		gv, err := cc.GetElement(v)
		if err != nil || int(gv) != wantCC[v] {
			t.Fatalf("cc[%d]=%v want %d", v, gv, wantCC[v])
		}
	}
}

func TestFacadeSurface(t *testing.T) {
	g := root.RMAT(8, 8, 5, true)
	if g.N() != 256 {
		t.Fatalf("n=%d", g.N())
	}
	levels, err := root.BFSLevels(g, 0)
	if err != nil || levels.Nvals() == 0 {
		t.Fatalf("bfs: %v", err)
	}
	tc, err := root.TriangleCount(g, lagraph.TCSandiaDot)
	if err != nil || tc <= 0 {
		t.Fatalf("tc=%d (%v)", tc, err)
	}
	cc, err := root.ConnectedComponents(g)
	if err != nil || cc.Nvals() != g.N() {
		t.Fatalf("cc: %v", err)
	}
	pr, err := root.PageRank(g, lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-6), lagraph.WithMaxIter(50))
	if err != nil || !pr.Converged {
		t.Fatalf("pagerank: %v", err)
	}
	m, err := root.NewMatrix[float64](4, 4)
	if err != nil || m.Nrows() != 4 {
		t.Fatal("facade matrix")
	}
	v, err := root.NewVector[int](4)
	if err != nil || v.Size() != 4 {
		t.Fatal("facade vector")
	}
	if _, err := root.NewGraph(nil, root.Directed); err == nil {
		t.Fatal("facade graph validation")
	}
}

func TestPipelineHypersparseRoundTrip(t *testing.T) {
	// A graph over a huge vertex-id space survives the full pipeline:
	// build hypersparse → algorithms on a compacted id space.
	n := 1 << 35
	a := grb.MustMatrix[float64](n, n)
	a.SetFormat(grb.FormatHyper)
	// A ring over scattered ids.
	ids := make([]int, 64)
	for k := range ids {
		ids[k] = k * (1 << 28)
	}
	for k := range ids {
		_ = a.SetElement(ids[k], ids[(k+1)%len(ids)], 1)
		_ = a.SetElement(ids[(k+1)%len(ids)], ids[k], 1)
	}
	if a.Nvals() != 128 {
		t.Fatalf("nvals=%d", a.Nvals())
	}
	// Degree of every populated vertex is 2.
	deg := grb.MustVector[int64](n)
	ones := grb.MustMatrix[int64](n, n)
	if err := grb.ApplyMatrix[float64, int64, bool](ones, nil, nil, grb.One[float64, int64](), a, nil); err != nil {
		t.Fatal(err)
	}
	if err := grb.ReduceMatrixToVector[int64, bool](deg, nil, nil, grb.PlusMonoid[int64](), ones, nil); err != nil {
		t.Fatal(err)
	}
	if deg.Nvals() != 64 {
		t.Fatalf("deg nvals=%d", deg.Nvals())
	}
	_, xs := deg.ExtractTuples()
	for _, d := range xs {
		if d != 2 {
			t.Fatalf("degree %d", d)
		}
	}
}
