package lagraph_test

// Table II reproduction test: the paper's point is that GraphBLAS
// formulations are *compact* — comparable to or smaller than Ligra and
// GraphIt. We assert our Go counts stay in that regime for BFS and SSSP,
// and record local clustering (Go error handling and the sweep make it
// longer; EXPERIMENTS.md discusses the delta).

import (
	"testing"

	"lagraph/internal/loccount"
)

func TestTableII_LinesOfCode(t *testing.T) {
	funcs, _, err := loccount.CountDir("internal/lagraph")
	if err != nil {
		t.Fatal(err)
	}
	byName := loccount.ByName(funcs)

	cases := []struct {
		fn    string
		paper int // the GraphBLAS column of Table II
		max   int // our acceptance bound
	}{
		{"BFSLevelSimple", 25, 35},
		{"SSSPBellmanFord", 25, 40},
		{"LocalCluster", 45, 130},
	}
	for _, c := range cases {
		got, ok := byName[c.fn]
		if !ok {
			t.Fatalf("function %s not found", c.fn)
		}
		if got == 0 || got > c.max {
			t.Errorf("%s: %d lines (paper GraphBLAS column: %d; bound %d)", c.fn, got, c.paper, c.max)
		}
		t.Logf("%s: %d lines (paper: %d)", c.fn, got, c.paper)
	}

	// The compactness ordering of Table II: local clustering is the
	// longest of the three in every system.
	if byName["LocalCluster"] <= byName["BFSLevelSimple"] {
		t.Error("local clustering should be the longest algorithm, as in Table II")
	}
}
