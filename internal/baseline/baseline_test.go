package baseline

import (
	"math"
	"testing"

	"lagraph/internal/gen"
)

func grid(t *testing.T) *Graph {
	t.Helper()
	return FromMatrix(gen.Grid2D(4, 4, gen.Config{Seed: 1, Undirected: true}).Matrix())
}

func TestBFSLevelsOnGrid(t *testing.T) {
	g := grid(t)
	levels, parents := BFSLevels(g, 0)
	// Manhattan distance on the 4x4 lattice.
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if levels[r*4+c] != r+c {
				t.Fatalf("level(%d,%d)=%d want %d", r, c, levels[r*4+c], r+c)
			}
		}
	}
	if parents[0] != 0 {
		t.Fatal("root parent")
	}
	for v := 1; v < 16; v++ {
		if levels[parents[v]] != levels[v]-1 {
			t.Fatalf("parent level of %d", v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := FromMatrix(gen.Path(5, gen.Config{}).Matrix()) // directed path
	levels, _ := BFSLevels(g, 2)
	if levels[0] != -1 || levels[1] != -1 {
		t.Fatal("upstream vertices must be unreachable")
	}
	if levels[4] != 2 {
		t.Fatalf("level[4]=%d", levels[4])
	}
}

func TestDijkstraVsBellmanFord(t *testing.T) {
	e := gen.ErdosRenyi(60, 400, gen.Config{Seed: 4, MinWeight: 1, MaxWeight: 10, NoSelfLoops: true})
	g := FromMatrix(e.Matrix())
	d1 := Dijkstra(g, 0)
	d2, ok := BellmanFord(g, 0)
	if !ok {
		t.Fatal("no negative cycles expected")
	}
	for v := range d1 {
		if math.IsInf(d1[v], 1) != math.IsInf(d2[v], 1) {
			t.Fatalf("reachability disagrees at %d", v)
		}
		if !math.IsInf(d1[v], 1) && math.Abs(d1[v]-d2[v]) > 1e-9 {
			t.Fatalf("dist[%d]: %v vs %v", v, d1[v], d2[v])
		}
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	// 0→1→2→0 with total weight -1.
	el := &gen.EdgeList{N: 3, Src: []int{0, 1, 2}, Dst: []int{1, 2, 0}, W: []float64{1, 1, -3}}
	g := FromMatrix(el.Matrix())
	if _, ok := BellmanFord(g, 0); ok {
		t.Fatal("negative cycle must be detected")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two rings of 5, disjoint.
	el := &gen.EdgeList{N: 10}
	for i := 0; i < 5; i++ {
		el.Src = append(el.Src, i, (i+1)%5)
		el.Dst = append(el.Dst, (i+1)%5, i)
		el.W = append(el.W, 1, 1)
		el.Src = append(el.Src, 5+i, 5+(i+1)%5)
		el.Dst = append(el.Dst, 5+(i+1)%5, 5+i)
		el.W = append(el.W, 1, 1)
	}
	g := FromMatrix(el.Matrix())
	comp := ConnectedComponents(g)
	for i := 0; i < 5; i++ {
		if comp[i] != 0 {
			t.Fatalf("comp[%d]=%d", i, comp[i])
		}
		if comp[5+i] != 5 {
			t.Fatalf("comp[%d]=%d", 5+i, comp[5+i])
		}
	}
}

func TestPageRankProperties(t *testing.T) {
	e := gen.RMAT(8, 8, gen.Config{Seed: 2, NoSelfLoops: true})
	g := FromMatrix(e.Matrix())
	r := PageRank(g, 0.85, 50)
	sum := 0.0
	for _, x := range r {
		if x < 0 {
			t.Fatal("negative rank")
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks must sum to 1, got %v", sum)
	}
}

func TestPageRankStar(t *testing.T) {
	// All leaves point at the hub: hub rank must dominate.
	el := &gen.EdgeList{N: 6}
	for i := 1; i < 6; i++ {
		el.Src = append(el.Src, i)
		el.Dst = append(el.Dst, 0)
		el.W = append(el.W, 1)
	}
	g := FromMatrix(el.Matrix())
	r := PageRank(g, 0.85, 60)
	for i := 1; i < 6; i++ {
		if r[0] <= r[i] {
			t.Fatalf("hub rank %v not dominant over leaf %v", r[0], r[i])
		}
	}
}

func TestTriangleCount(t *testing.T) {
	// K4 has 4 triangles.
	g := FromMatrix(gen.Complete(4, gen.Config{Undirected: true}).Matrix())
	if c := TriangleCount(g); c != 4 {
		t.Fatalf("K4 triangles=%d", c)
	}
	// A ring has none.
	ring := FromMatrix(gen.Ring(6, gen.Config{Undirected: true}).Matrix())
	if c := TriangleCount(ring); c != 0 {
		t.Fatalf("ring triangles=%d", c)
	}
	// K5: C(5,3)=10.
	k5 := FromMatrix(gen.Complete(5, gen.Config{Undirected: true}).Matrix())
	if c := TriangleCount(k5); c != 10 {
		t.Fatalf("K5 triangles=%d", c)
	}
}

func TestGreedyColoringValid(t *testing.T) {
	e := gen.ErdosRenyi(80, 600, gen.Config{Seed: 6, Undirected: true, NoSelfLoops: true})
	g := FromMatrix(e.Matrix())
	colour, used := GreedyColoring(g)
	if used < 1 {
		t.Fatal("no colours")
	}
	for u := 0; u < g.N; u++ {
		if colour[u] < 1 || colour[u] > used {
			t.Fatalf("colour[%d]=%d", u, colour[u])
		}
		adj, _ := g.Row(u)
		for _, v := range adj {
			if v != u && colour[v] == colour[u] {
				t.Fatalf("adjacent %d,%d share colour %d", u, v, colour[u])
			}
		}
	}
}

func TestGreedyMISValid(t *testing.T) {
	e := gen.ErdosRenyi(80, 500, gen.Config{Seed: 7, Undirected: true, NoSelfLoops: true})
	g := FromMatrix(e.Matrix())
	in := GreedyMIS(g)
	for u := 0; u < g.N; u++ {
		adj, _ := g.Row(u)
		if in[u] {
			for _, v := range adj {
				if v != u && in[v] {
					t.Fatalf("independence violated at %d-%d", u, v)
				}
			}
		} else {
			// Maximality: some neighbour is in the set.
			ok := false
			for _, v := range adj {
				if in[v] {
					ok = true
					break
				}
			}
			if !ok && len(adj) > 0 {
				t.Fatalf("maximality violated at %d", u)
			}
		}
	}
}

func TestKCore(t *testing.T) {
	// K4 plus a pendant vertex: K4 members have core 3, pendant core 1.
	el := &gen.EdgeList{N: 5}
	add := func(u, v int) {
		el.Src = append(el.Src, u, v)
		el.Dst = append(el.Dst, v, u)
		el.W = append(el.W, 1, 1)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			add(i, j)
		}
	}
	add(0, 4)
	g := FromMatrix(el.Matrix())
	core := KCoreDecomposition(g)
	for i := 0; i < 4; i++ {
		if core[i] != 3 {
			t.Fatalf("core[%d]=%d want 3", i, core[i])
		}
	}
	if core[4] != 1 {
		t.Fatalf("core[4]=%d want 1", core[4])
	}
}

func TestBetweennessPath(t *testing.T) {
	// Undirected path 0-1-2-3-4: interior vertices have the highest BC;
	// vertex 2 is on 4 shortest pairs (each direction): bc[2]=8? Brandes
	// counts ordered pairs; for the path of 5, bc[2] = 2*(2*2) = 8.
	el := &gen.EdgeList{N: 5}
	for i := 0; i+1 < 5; i++ {
		el.Src = append(el.Src, i, i+1)
		el.Dst = append(el.Dst, i+1, i)
		el.W = append(el.W, 1, 1)
	}
	g := FromMatrix(el.Matrix())
	bc := BetweennessCentrality(g)
	if bc[0] != 0 || bc[4] != 0 {
		t.Fatalf("endpoints: %v", bc)
	}
	if bc[2] != 8 {
		t.Fatalf("bc[2]=%v want 8", bc[2])
	}
	if bc[1] != 6 || bc[3] != 6 {
		t.Fatalf("bc[1]=%v bc[3]=%v want 6", bc[1], bc[3])
	}
}
