// Package baseline holds classic pointer-chasing implementations of the
// graph algorithms in the LAGraph collection. They serve two purposes in
// this reproduction: (1) independent oracles for correctness tests of the
// GraphBLAS formulations, and (2) the comparison points for the paper's
// central hypothesis (§III) that linear-algebra formulations retain the
// efficiency of direct implementations.
package baseline

import (
	"container/heap"
	"math"
	"sort"

	"lagraph/internal/grb"
)

// Graph is a plain CSR adjacency structure.
type Graph struct {
	N   int
	Ptr []int // length N+1
	Adj []int
	W   []float64
}

// FromMatrix flattens a GraphBLAS adjacency matrix into plain CSR.
func FromMatrix(a *grb.Matrix[float64]) *Graph {
	b := a.Dup()
	nr, _, p, adj, w := b.ExportCSR()
	return &Graph{N: nr, Ptr: p, Adj: adj, W: w}
}

// NEdges returns the number of directed edges.
func (g *Graph) NEdges() int { return len(g.Adj) }

// Row returns the neighbours and weights of vertex u.
func (g *Graph) Row(u int) ([]int, []float64) {
	return g.Adj[g.Ptr[u]:g.Ptr[u+1]], g.W[g.Ptr[u]:g.Ptr[u+1]]
}

// BFSLevels runs a textbook queue-based breadth-first search and returns
// the level of every vertex (-1 if unreachable) and the parent array.
func BFSLevels(g *Graph, src int) (levels, parents []int) {
	levels = make([]int, g.N)
	parents = make([]int, g.N)
	for i := range levels {
		levels[i] = -1
		parents[i] = -1
	}
	levels[src] = 0
	parents[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		adj, _ := g.Row(u)
		for _, v := range adj {
			if levels[v] < 0 {
				levels[v] = levels[u] + 1
				parents[v] = u
				queue = append(queue, v)
			}
		}
	}
	return levels, parents
}

// pqItem is a binary-heap entry for Dijkstra.
type pqItem struct {
	v int
	d float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes single-source shortest path distances with a binary
// heap. Weights must be non-negative. Unreachable vertices get +Inf.
func Dijkstra(g *Graph, src int) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		adj, w := g.Row(it.v)
		for k, v := range adj {
			nd := it.d + w[k]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(q, pqItem{v, nd})
			}
		}
	}
	return dist
}

// BellmanFord computes SSSP distances tolerating negative edges; it
// reports ok=false when a negative cycle is reachable.
func BellmanFord(g *Graph, src int) (dist []float64, ok bool) {
	dist = make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for iter := 0; iter < g.N; iter++ {
		changed := false
		for u := 0; u < g.N; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			adj, w := g.Row(u)
			for k, v := range adj {
				if nd := dist[u] + w[k]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
		if !changed {
			return dist, true
		}
	}
	return dist, false
}

// ConnectedComponents labels the weakly connected components with
// union-find (path halving + union by size) and returns the component id
// of every vertex, normalized to the smallest member.
func ConnectedComponents(g *Graph) []int {
	parent := make([]int, g.N)
	size := make([]int, g.N)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	for u := 0; u < g.N; u++ {
		adj, _ := g.Row(u)
		for _, v := range adj {
			union(u, v)
		}
	}
	// Normalize to the minimum vertex id in each component.
	minID := make([]int, g.N)
	for i := range minID {
		minID[i] = g.N
	}
	for u := 0; u < g.N; u++ {
		r := find(u)
		if u < minID[r] {
			minID[r] = u
		}
	}
	comp := make([]int, g.N)
	for u := 0; u < g.N; u++ {
		comp[u] = minID[find(u)]
	}
	return comp
}

// PageRank runs the classic power iteration with uniform teleportation,
// treating dangling vertices by redistributing their mass uniformly.
func PageRank(g *Graph, damping float64, iters int) []float64 {
	n := g.N
	r := make([]float64, n)
	next := make([]float64, n)
	outDeg := make([]int, n)
	for u := 0; u < n; u++ {
		outDeg[u] = g.Ptr[u+1] - g.Ptr[u]
	}
	for i := range r {
		r[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			if outDeg[u] == 0 {
				dangling += r[u]
				continue
			}
			share := r[u] / float64(outDeg[u])
			adj, _ := g.Row(u)
			for _, v := range adj {
				next[v] += share
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		for i := range next {
			next[i] = base + damping*next[i]
		}
		r, next = next, r
	}
	return r
}

// TriangleCount counts undirected triangles by sorted-adjacency
// intersection over the lower triangle. The graph must be symmetric.
func TriangleCount(g *Graph) int64 {
	// Build lower-triangle neighbour lists (v < u), sorted.
	lower := make([][]int, g.N)
	for u := 0; u < g.N; u++ {
		adj, _ := g.Row(u)
		for _, v := range adj {
			if v < u {
				lower[u] = append(lower[u], v)
			}
		}
		sort.Ints(lower[u])
	}
	var count int64
	for u := 0; u < g.N; u++ {
		for _, v := range lower[u] {
			// Intersect lower[u] and lower[v].
			a, b := lower[u], lower[v]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case b[j] < a[i]:
					j++
				default:
					count++
					i++
					j++
				}
			}
		}
	}
	return count
}

// GreedyColoring colours vertices in index order with the smallest
// feasible colour; returns the colour array (1-based) and the number of
// colours used.
func GreedyColoring(g *Graph) ([]int, int) {
	colour := make([]int, g.N)
	maxC := 0
	used := make([]int, g.N+2) // colour → last vertex that blocked it
	for i := range used {
		used[i] = -1
	}
	for u := 0; u < g.N; u++ {
		adj, _ := g.Row(u)
		for _, v := range adj {
			if colour[v] > 0 {
				used[colour[v]] = u
			}
		}
		c := 1
		for used[c] == u {
			c++
		}
		colour[u] = c
		if c > maxC {
			maxC = c
		}
	}
	return colour, maxC
}

// GreedyMIS returns a maximal independent set by greedy insertion in
// index order.
func GreedyMIS(g *Graph) []bool {
	in := make([]bool, g.N)
	blocked := make([]bool, g.N)
	for u := 0; u < g.N; u++ {
		if blocked[u] {
			continue
		}
		in[u] = true
		adj, _ := g.Row(u)
		for _, v := range adj {
			blocked[v] = true
		}
	}
	return in
}

// KCoreDecomposition returns the core number of every vertex (peeling).
// The graph must be symmetric.
func KCoreDecomposition(g *Graph) []int {
	deg := make([]int, g.N)
	maxDeg := 0
	for u := 0; u < g.N; u++ {
		deg[u] = g.Ptr[u+1] - g.Ptr[u]
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort vertices by degree (standard O(V+E) peeling).
	bin := make([]int, maxDeg+2)
	for u := 0; u < g.N; u++ {
		bin[deg[u]]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int, g.N)
	vert := make([]int, g.N)
	for u := 0; u < g.N; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = u
		bin[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	core := make([]int, g.N)
	for k := 0; k < g.N; k++ {
		u := vert[k]
		core[u] = deg[u]
		adj, _ := g.Row(u)
		for _, v := range adj {
			if deg[v] > deg[u] {
				dv, pv := deg[v], pos[v]
				pw := bin[dv]
				w := vert[pw]
				if v != w {
					pos[v], pos[w] = pw, pv
					vert[pv], vert[pw] = w, v
				}
				bin[dv]++
				deg[v]--
			}
		}
	}
	return core
}

// BetweennessCentrality runs Brandes' algorithm exactly over all sources
// (unweighted). O(V·E) — use only on small graphs or as a test oracle.
func BetweennessCentrality(g *Graph) []float64 {
	bc := make([]float64, g.N)
	for s := 0; s < g.N; s++ {
		accumulateBrandes(g, s, bc)
	}
	return bc
}

// BetweennessCentralitySources runs Brandes' accumulation for a batch of
// source vertices only, matching the batched LAGraph formulation.
func BetweennessCentralitySources(g *Graph, sources []int) []float64 {
	bc := make([]float64, g.N)
	for _, s := range sources {
		accumulateBrandes(g, s, bc)
	}
	return bc
}

func accumulateBrandes(g *Graph, s int, bc []float64) {
	sigma := make([]float64, g.N)
	dist := make([]int, g.N)
	delta := make([]float64, g.N)
	for i := range dist {
		dist[i] = -1
	}
	sigma[s] = 1
	dist[s] = 0
	order := []int{s}
	for head := 0; head < len(order); head++ {
		u := order[head]
		adj, _ := g.Row(u)
		for _, v := range adj {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				order = append(order, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	for k := len(order) - 1; k > 0; k-- {
		u := order[k]
		adj, _ := g.Row(u)
		for _, v := range adj {
			if dist[v] == dist[u]+1 && sigma[v] > 0 {
				delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
			}
		}
		bc[u] += delta[u]
	}
}
