// Package leakcheck is the runtime companion to grblint's static
// goroutine-lifecycle check: the analyzer proves every go statement HAS a
// termination path, this package verifies the path is actually TAKEN. A
// test calls Check(t) first thing; at cleanup time every goroutine that
// appeared since and did not exit within a grace period fails the test
// with its full stack.
//
// Goroutine identity comes from the runtime.Stack header ("goroutine N
// [state]:"): IDs increase monotonically and are never reused, so any ID
// absent from the baseline snapshot is new. The grace period absorbs
// goroutines that are mid-exit when the test body returns (a worker
// draining its last job, an http server closing keep-alives) — a real
// leak is parked on a channel or ticker and never goes away.
package leakcheck

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// graceTimeout is how long cleanup waits for stragglers to exit before
// declaring them leaked. Long enough for connection teardown, short
// enough not to stall the suite on a genuine leak.
const graceTimeout = 2 * time.Second

// Check snapshots the currently live goroutines and registers a cleanup
// that fails t if goroutines spawned during the test survive the grace
// period. Call it before starting any servers or pools so their
// goroutines are attributed to the test, not the baseline.
func Check(t testing.TB) {
	t.Helper()
	base := snapshot()
	t.Cleanup(func() {
		if leaks := wait(base, graceTimeout); len(leaks) > 0 {
			t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s",
				len(leaks), strings.Join(leaks, "\n\n"))
		}
	})
}

// wait polls until every non-baseline, non-system goroutine has exited or
// the timeout passes, returning the stacks of the survivors.
func wait(baseline map[int64]string, timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		leaks := leaked(baseline)
		if len(leaks) == 0 || time.Now().After(deadline) {
			return leaks
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// leaked returns the stacks of goroutines that are neither in the
// baseline nor attributable to the runtime/test machinery.
func leaked(baseline map[int64]string) []string {
	var leaks []string
	for id, stack := range snapshot() {
		if _, ok := baseline[id]; ok || systemGoroutine(stack) {
			continue
		}
		leaks = append(leaks, stack)
	}
	return leaks
}

// systemGoroutine reports stacks owned by the runtime, the testing
// framework, or process-lifetime signal handling — infrastructure a test
// neither started nor can stop.
func systemGoroutine(stack string) bool {
	for _, marker := range []string{
		"created by runtime",
		"created by testing.",
		"created by os/signal.",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}

// snapshot captures every goroutine's stack, keyed by goroutine ID.
func snapshot() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := map[int64]string{}
	for _, block := range strings.Split(string(buf), "\n\n") {
		if id, ok := goroutineID(block); ok {
			out[id] = block
		}
	}
	return out
}

// goroutineID parses the "goroutine N [state]:" header of one stack
// block.
func goroutineID(block string) (int64, bool) {
	rest, ok := strings.CutPrefix(block, "goroutine ")
	if !ok {
		return 0, false
	}
	end := strings.IndexByte(rest, ' ')
	if end < 0 {
		return 0, false
	}
	id, err := strconv.ParseInt(rest[:end], 10, 64)
	return id, err == nil
}
