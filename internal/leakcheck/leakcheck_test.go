package leakcheck

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDetectsParkedGoroutine pins the core mechanism: a goroutine parked
// on a channel after the baseline is reported with its stack, and stops
// being reported once released.
func TestDetectsParkedGoroutine(t *testing.T) {
	base := snapshot()
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked
	leaks := wait(base, 100*time.Millisecond)
	if len(leaks) != 1 {
		t.Fatalf("want 1 leak while parked, got %d: %v", len(leaks), leaks)
	}
	if !strings.Contains(leaks[0], "leakcheck.TestDetectsParkedGoroutine") {
		t.Errorf("leak stack should name the spawner:\n%s", leaks[0])
	}
	close(release)
	if leaks := wait(base, graceTimeout); len(leaks) != 0 {
		t.Fatalf("leak persisted after release: %v", leaks)
	}
}

// TestGraceAbsorbsStragglers verifies a goroutine that is merely slow to
// exit — not parked forever — passes within the grace period.
func TestGraceAbsorbsStragglers(t *testing.T) {
	base := snapshot()
	go func() {
		time.Sleep(150 * time.Millisecond)
	}()
	if leaks := wait(base, graceTimeout); len(leaks) != 0 {
		t.Fatalf("straggler within grace reported as leak: %v", leaks)
	}
}

// TestCheckCleanPasses wires the public API into a test that starts and
// properly shuts down an HTTP server — the shape every service test has.
func TestCheckCleanPasses(t *testing.T) {
	Check(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Client().CloseIdleConnections()
	ts.Close()
}

// TestGoroutineID covers the header parser against real and junk input.
func TestGoroutineID(t *testing.T) {
	if id, ok := goroutineID("goroutine 42 [running]:\nmain.main()"); !ok || id != 42 {
		t.Errorf("goroutineID(real header) = %d, %v", id, ok)
	}
	for _, junk := range []string{"", "goroutine x [running]:", "not a header"} {
		if _, ok := goroutineID(junk); ok {
			t.Errorf("goroutineID(%q) unexpectedly parsed", junk)
		}
	}
}
