package gen

import (
	"sort"
	"testing"
)

func TestRMATShape(t *testing.T) {
	e := RMAT(10, 8, Config{Seed: 1})
	if e.N != 1024 {
		t.Fatalf("n=%d", e.N)
	}
	if len(e.Src) != 8*1024 {
		t.Fatalf("edges=%d", len(e.Src))
	}
	for k := range e.Src {
		if e.Src[k] < 0 || e.Src[k] >= e.N || e.Dst[k] < 0 || e.Dst[k] >= e.N {
			t.Fatal("edge out of range")
		}
	}
}

func TestRMATSkew(t *testing.T) {
	// RMAT must produce a skewed degree distribution: the busiest vertex
	// should far exceed the mean degree.
	e := RMAT(12, 16, Config{Seed: 2})
	deg := make([]int, e.N)
	for _, u := range e.Src {
		deg[u]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	mean := float64(len(e.Src)) / float64(e.N)
	if float64(deg[0]) < 10*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", deg[0], mean)
	}
}

func TestRMATDeterminism(t *testing.T) {
	a := RMAT(8, 4, Config{Seed: 7})
	b := RMAT(8, 4, Config{Seed: 7})
	for k := range a.Src {
		if a.Src[k] != b.Src[k] || a.Dst[k] != b.Dst[k] {
			t.Fatal("same seed must reproduce the same graph")
		}
	}
	c := RMAT(8, 4, Config{Seed: 8})
	same := true
	for k := range a.Src {
		if a.Src[k] != c.Src[k] || a.Dst[k] != c.Dst[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestUndirectedMirrors(t *testing.T) {
	e := ErdosRenyi(50, 200, Config{Seed: 3, Undirected: true, NoSelfLoops: true})
	type edge struct{ u, v int }
	set := map[edge]bool{}
	for k := range e.Src {
		if e.Src[k] == e.Dst[k] {
			t.Fatal("self loop present")
		}
		set[edge{e.Src[k], e.Dst[k]}] = true
	}
	for k := range e.Src {
		if !set[edge{e.Dst[k], e.Src[k]}] {
			t.Fatal("missing mirror edge")
		}
	}
}

func TestGrid2D(t *testing.T) {
	e := Grid2D(3, 4, Config{Seed: 1, Undirected: true})
	a := e.Matrix()
	if a.Nrows() != 12 {
		t.Fatalf("n=%d", a.Nrows())
	}
	// Interior lattice: 2*rows*cols - rows - cols undirected edges, each
	// stored twice.
	wantEdges := 2 * (2*3*4 - 3 - 4)
	if a.Nvals() != wantEdges {
		t.Fatalf("nvals=%d want %d", a.Nvals(), wantEdges)
	}
	// Vertex 0 connects to 1 and 4.
	if _, err := a.GetElement(0, 1); err != nil {
		t.Fatal("0-1 missing")
	}
	if _, err := a.GetElement(0, 4); err != nil {
		t.Fatal("0-4 missing")
	}
	if _, err := a.GetElement(0, 5); err == nil {
		t.Fatal("0-5 must not exist")
	}
}

func TestSimpleTopologies(t *testing.T) {
	if p := Path(5, Config{}); len(p.Src) != 4 || p.N != 5 {
		t.Fatal("path")
	}
	if r := Ring(5, Config{}); len(r.Src) != 5 {
		t.Fatal("ring")
	}
	if s := Star(5, Config{}); len(s.Src) != 4 {
		t.Fatal("star")
	}
	if c := Complete(4, Config{}); len(c.Src) != 12 {
		t.Fatalf("complete directed: %d", len(c.Src))
	}
	if c := Complete(4, Config{Undirected: true}); len(c.Src) != 12 {
		t.Fatalf("complete undirected stores both directions: %d", len(c.Src))
	}
	if tr := Tree(10, Config{Seed: 1}); len(tr.Src) != 9 {
		t.Fatal("tree")
	}
}

func TestBipartite(t *testing.T) {
	e := Bipartite(10, 20, 100, Config{Seed: 5})
	if e.N != 30 {
		t.Fatalf("n=%d", e.N)
	}
	for k := range e.Src {
		if e.Src[k] >= 10 || e.Dst[k] < 10 {
			t.Fatal("edge does not cross the partition left→right")
		}
	}
}

func TestWeights(t *testing.T) {
	e := ErdosRenyi(20, 100, Config{Seed: 9, MinWeight: 2, MaxWeight: 5})
	for _, w := range e.W {
		if w < 2 || w > 5 {
			t.Fatalf("weight %v outside [2,5]", w)
		}
	}
	d := Path(4, Config{})
	for _, w := range d.W {
		if w != 1 {
			t.Fatal("default weight must be 1")
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	n, k := 100, 6
	// beta=0: a pure ring lattice with n*k/2 stored edges (directed both
	// ways here since Undirected=false adds reverse edges explicitly).
	e := WattsStrogatz(n, k, 0, Config{Seed: 1})
	if len(e.Src) != n*k {
		t.Fatalf("edges=%d want %d", len(e.Src), n*k)
	}
	// Vertex 0 connects to 1,2,3 and is connected from 97,98,99.
	found := map[int]bool{}
	for idx := range e.Src {
		if e.Src[idx] == 0 {
			found[e.Dst[idx]] = true
		}
	}
	for _, v := range []int{1, 2, 3, 97, 98, 99} {
		if !found[v] {
			t.Fatalf("lattice neighbour %d missing", v)
		}
	}
	// beta=1: same edge count, different structure.
	e2 := WattsStrogatz(n, k, 1, Config{Seed: 2})
	if len(e2.Src) != n*k {
		t.Fatalf("rewired edges=%d", len(e2.Src))
	}
	for idx := range e2.Src {
		if e2.Src[idx] == e2.Dst[idx] {
			t.Fatal("self loop after rewiring")
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	e := BarabasiAlbert(500, 3, Config{Seed: 3})
	if e.N != 500 {
		t.Fatal("n")
	}
	deg := make([]int, e.N)
	for k := range e.Src {
		deg[e.Src[k]]++
		deg[e.Dst[k]]++
	}
	// Preferential attachment: heavy-tailed degrees — the max degree far
	// exceeds the mean.
	maxd, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxd {
			maxd = d
		}
	}
	mean := float64(sum) / float64(e.N)
	if float64(maxd) < 4*mean {
		t.Fatalf("max degree %d vs mean %.1f: not heavy-tailed", maxd, mean)
	}
	// Every non-seed vertex has at least one edge.
	for v := 1; v < e.N; v++ {
		if deg[v] == 0 {
			t.Fatalf("vertex %d isolated", v)
		}
	}
}

func TestBoolMatrix(t *testing.T) {
	e := Ring(6, Config{})
	b := e.BoolMatrix()
	if b.Nvals() != 6 {
		t.Fatalf("nvals=%d", b.Nvals())
	}
	if v, _ := b.GetElement(0, 1); v != true {
		t.Fatal("value")
	}
}
