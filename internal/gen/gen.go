// Package gen generates synthetic graphs: the scale-free (RMAT/Kronecker)
// generator the paper lists among the required LAGraph support libraries
// (§VI), plus Erdős–Rényi, grid, path, ring, star, complete and bipartite
// generators used by the test and benchmark harnesses. RMAT graphs stand
// in for the web-scale datasets of the papers the position paper cites
// (Graph500 and the GAP benchmark suite use the same generator family).
package gen

import (
	"math/rand"

	"lagraph/internal/grb"
)

// Config controls the shape of generated graphs.
type Config struct {
	// Undirected mirrors every generated edge.
	Undirected bool
	// NoSelfLoops discards i→i edges.
	NoSelfLoops bool
	// MinWeight/MaxWeight bound the uniform random edge weights; if both
	// are zero, weights default to 1.
	MinWeight, MaxWeight float64
	// Seed makes generation reproducible.
	Seed int64
}

func (c Config) rng() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

func (c Config) weight(rng *rand.Rand) float64 {
	if c.MinWeight == 0 && c.MaxWeight == 0 {
		return 1
	}
	return c.MinWeight + rng.Float64()*(c.MaxWeight-c.MinWeight)
}

// EdgeList is a set of weighted directed edges over n vertices.
type EdgeList struct {
	N       int
	Src     []int
	Dst     []int
	W       []float64
	HasDups bool
}

// Matrix assembles the edge list into an n×n adjacency matrix, keeping
// the first weight when the generator produced duplicate edges (so weight
// ranges are preserved for shortest-path workloads).
func (e *EdgeList) Matrix() *grb.Matrix[float64] {
	a := grb.MustMatrix[float64](e.N, e.N)
	if err := a.Build(e.Src, e.Dst, e.W, grb.First[float64, float64]()); err != nil {
		panic(err)
	}
	return a
}

// BoolMatrix assembles the unweighted pattern of the edge list.
func (e *EdgeList) BoolMatrix() *grb.Matrix[bool] {
	xs := make([]bool, len(e.Src))
	for i := range xs {
		xs[i] = true
	}
	a := grb.MustMatrix[bool](e.N, e.N)
	if err := a.Build(e.Src, e.Dst, xs, grb.LOr()); err != nil {
		panic(err)
	}
	return a
}

func (e *EdgeList) add(rng *rand.Rand, cfg Config, u, v int, w float64) {
	if cfg.NoSelfLoops && u == v {
		return
	}
	e.Src = append(e.Src, u)
	e.Dst = append(e.Dst, v)
	e.W = append(e.W, w)
	if cfg.Undirected && u != v {
		e.Src = append(e.Src, v)
		e.Dst = append(e.Dst, u)
		e.W = append(e.W, w)
	}
}

// RMAT generates a recursive-matrix (Kronecker-like) scale-free graph with
// 2^scale vertices and edgeFactor·2^scale edges, using the standard
// Graph500 partition probabilities a=0.57, b=0.19, c=0.19, d=0.05.
func RMAT(scale, edgeFactor int, cfg Config) *EdgeList {
	return RMATProb(scale, edgeFactor, 0.57, 0.19, 0.19, cfg)
}

// RMATProb is RMAT with explicit quadrant probabilities a, b, c (d is the
// remainder).
func RMATProb(scale, edgeFactor int, a, b, c float64, cfg Config) *EdgeList {
	rng := cfg.rng()
	n := 1 << scale
	m := edgeFactor * n
	e := &EdgeList{N: n, HasDups: true}
	for k := 0; k < m; k++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: nothing to set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		e.add(rng, cfg, u, v, cfg.weight(rng))
	}
	return e
}

// PowerLaw generates m edges whose sources follow a Zipf power-law degree
// distribution with exponent alpha > 1 (a handful of hubs emit most of
// the edges) and whose destinations are uniform. This is the adversarial
// input for equal-count row partitioning — nearly all flops concentrate
// in a few rows — and the workload of the BenchmarkSkewed* suite.
func PowerLaw(n, m int, alpha float64, cfg Config) *EdgeList {
	rng := cfg.rng()
	if alpha <= 1 {
		alpha = 1.5
	}
	z := rand.NewZipf(rng, alpha, 1, uint64(n-1))
	e := &EdgeList{N: n, HasDups: true}
	for k := 0; k < m; k++ {
		e.add(rng, cfg, int(z.Uint64()), rng.Intn(n), cfg.weight(rng))
	}
	return e
}

// ErdosRenyi generates a G(n, m) uniform random multigraph with m edge
// draws.
func ErdosRenyi(n, m int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n, HasDups: true}
	for k := 0; k < m; k++ {
		e.add(rng, cfg, rng.Intn(n), rng.Intn(n), cfg.weight(rng))
	}
	return e
}

// Grid2D generates a rows×cols lattice with 4-neighbour connectivity —
// the synthetic stand-in for a road network (bounded degree, large
// diameter).
func Grid2D(rows, cols int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: rows * cols}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				w := cfg.weight(rng)
				e.add(rng, cfg, id(r, c), id(r, c+1), w)
				if !cfg.Undirected {
					e.add(rng, cfg, id(r, c+1), id(r, c), cfg.weight(rng))
				}
			}
			if r+1 < rows {
				w := cfg.weight(rng)
				e.add(rng, cfg, id(r, c), id(r+1, c), w)
				if !cfg.Undirected {
					e.add(rng, cfg, id(r+1, c), id(r, c), cfg.weight(rng))
				}
			}
		}
	}
	return e
}

// Path generates the path 0→1→…→n-1.
func Path(n int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n}
	for i := 0; i+1 < n; i++ {
		e.add(rng, cfg, i, i+1, cfg.weight(rng))
	}
	return e
}

// Ring generates the cycle 0→1→…→n-1→0.
func Ring(n int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n}
	for i := 0; i < n; i++ {
		e.add(rng, cfg, i, (i+1)%n, cfg.weight(rng))
	}
	return e
}

// Star generates a star with hub 0 and n-1 leaves.
func Star(n int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n}
	for i := 1; i < n; i++ {
		e.add(rng, cfg, 0, i, cfg.weight(rng))
	}
	return e
}

// Complete generates the complete graph on n vertices (directed: all
// ordered pairs).
func Complete(n int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n}
	for i := 0; i < n; i++ {
		lo := 0
		if cfg.Undirected {
			lo = i + 1
		}
		for j := lo; j < n; j++ {
			if i == j {
				continue
			}
			e.add(rng, cfg, i, j, cfg.weight(rng))
		}
	}
	return e
}

// Bipartite generates a random bipartite graph: n1 left vertices, n2
// right vertices (numbered n1..n1+n2-1), m random edges from left to
// right.
func Bipartite(n1, n2, m int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n1 + n2, HasDups: true}
	for k := 0; k < m; k++ {
		e.add(rng, cfg, rng.Intn(n1), n1+rng.Intn(n2), cfg.weight(rng))
	}
	return e
}

// Tree generates a random recursive tree: vertex i attaches to a uniform
// random earlier vertex.
func Tree(n int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n}
	for i := 1; i < n; i++ {
		e.add(rng, cfg, rng.Intn(i), i, cfg.weight(rng))
	}
	return e
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbours (k even), with each edge
// rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n}
	if k >= n {
		k = n - 1
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k/2; d++ {
			v := (u + d) % n
			if rng.Float64() < beta {
				// Rewire to a random non-self endpoint.
				v = rng.Intn(n)
				for v == u {
					v = rng.Intn(n)
				}
			}
			e.add(rng, cfg, u, v, cfg.weight(rng))
			if !cfg.Undirected {
				e.add(rng, cfg, v, u, cfg.weight(rng))
			}
		}
	}
	return e
}

// BarabasiAlbert generates a preferential-attachment scale-free graph:
// each new vertex attaches m edges to existing vertices with probability
// proportional to their degree.
func BarabasiAlbert(n, m int, cfg Config) *EdgeList {
	rng := cfg.rng()
	e := &EdgeList{N: n}
	if n < 2 {
		return e
	}
	if m < 1 {
		m = 1
	}
	// Repeated-endpoint list: sampling uniformly from it is sampling
	// proportionally to degree.
	targets := []int{0}
	for v := 1; v < n; v++ {
		picked := map[int]bool{}
		edges := m
		if v < m {
			edges = v
		}
		for len(picked) < edges {
			u := targets[rng.Intn(len(targets))]
			if u == v || picked[u] {
				// Fall back to uniform to escape degenerate early rounds.
				u = rng.Intn(v)
				if picked[u] {
					continue
				}
			}
			picked[u] = true
		}
		for u := range picked {
			e.add(rng, cfg, u, v, cfg.weight(rng))
			if !cfg.Undirected {
				e.add(rng, cfg, v, u, cfg.weight(rng))
			}
			targets = append(targets, u, v)
		}
	}
	return e
}
