package grb

import "fmt"

// Error wrapping discipline: every public entry point that fails returns
// one of the package sentinels (ErrUninitialized, ErrDimensionMismatch,
// ...) wrapped with the operation's name — and, for structural failures,
// the offending dimensions — via %w. Callers match with errors.Is; the
// sentinel taxonomy is the stable API (locked by TestErrorTaxonomy), the
// message text is diagnostic only.
//
// Element-level accessors (GetElement / SetElement and the ErrNoValue
// path) intentionally return bare sentinels: they sit on per-element hot
// loops where a fmt.Errorf per miss would allocate.

// opError wraps a sentinel with the public operation that produced it.
func opError(op string, err error) error {
	return fmt.Errorf("grb.%s: %w", op, err)
}

// opErrorf wraps a sentinel with the operation name and a formatted
// detail (typically the offending dimensions).
func opErrorf(op string, err error, format string, args ...any) error {
	return fmt.Errorf("grb.%s: %s: %w", op, fmt.Sprintf(format, args...), err)
}
