package grb

import (
	"math/rand"
	"testing"
)

// Cross-parallelism determinism on skewed inputs: every kernel that was
// parallelized or re-partitioned by the work-aware scheduler must produce
// bitwise-identical output at SetParallelism(1) and SetParallelism(8).
// float64 with PlusTimes is the stress case — floating-point addition is
// not associative, so any partitioning that depends on the worker count
// shows up as a value mismatch, not just an ordering one.

// skewedMatrix builds an n×n float64 matrix with power-law-style row
// degrees (row r holds ~n/(r+1) entries): the input on which equal-count
// partitioning collapses onto the hub rows.
func skewedMatrix(tb testing.TB, n, seed int) *Matrix[float64] {
	tb.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	var is, js []int
	var xs []float64
	for r := 0; r < n; r++ {
		deg := n/(r+1) + 1
		if deg > n {
			deg = n
		}
		for d := 0; d < deg; d++ {
			is = append(is, r)
			js = append(js, rng.Intn(n))
			xs = append(xs, rng.Float64()*2-1)
		}
	}
	a := MustMatrix[float64](n, n)
	if err := a.Build(is, js, xs, Plus[float64]()); err != nil {
		tb.Fatal(err)
	}
	return a
}

func matricesIdentical(tb testing.TB, what string, x, y *Matrix[float64]) {
	tb.Helper()
	xi, xj, xv := x.ExtractTuples()
	yi, yj, yv := y.ExtractTuples()
	if len(xi) != len(yi) {
		tb.Fatalf("%s: nvals %d vs %d across worker counts", what, len(xi), len(yi))
	}
	for k := range xi {
		if xi[k] != yi[k] || xj[k] != yj[k] || xv[k] != yv[k] {
			tb.Fatalf("%s: entry %d differs across worker counts: (%d,%d,%v) vs (%d,%d,%v)",
				what, k, xi[k], xj[k], xv[k], yi[k], yj[k], yv[k])
		}
	}
}

func vectorsIdentical(tb testing.TB, what string, x, y *Vector[float64]) {
	tb.Helper()
	xi, xv := x.ExtractTuples()
	yi, yv := y.ExtractTuples()
	if len(xi) != len(yi) {
		tb.Fatalf("%s: nvals %d vs %d across worker counts", what, len(xi), len(yi))
	}
	for k := range xi {
		if xi[k] != yi[k] || xv[k] != yv[k] {
			tb.Fatalf("%s: entry %d differs across worker counts: (%d,%v) vs (%d,%v)",
				what, k, xi[k], xv[k], yi[k], yv[k])
		}
	}
}

// atParallelism runs f at the given worker bound and restores the old one.
func atParallelism(n int, f func()) {
	old := SetParallelism(n)
	defer SetParallelism(old)
	f()
}

func TestSkewedMxMDeterminism(t *testing.T) {
	a := skewedMatrix(t, 900, 1)
	b := skewedMatrix(t, 900, 2)
	mask := skewedMatrix(t, 900, 3)
	for _, tc := range []struct {
		name   string
		method MxMMethod
		masked bool
	}{
		{"gustavson", MxMGustavson, false},
		{"gustavson-masked", MxMGustavson, true},
		{"dot-masked", MxMDot, true},
		{"heap", MxMHeap, false},
	} {
		run := func() *Matrix[float64] {
			c := MustMatrix[float64](900, 900)
			var m *Matrix[float64]
			if tc.masked {
				m = mask
			}
			if err := MxM(c, m, nil, PlusTimes[float64](), a, b, &Descriptor{Method: tc.method}); err != nil {
				t.Fatal(err)
			}
			return c
		}
		var c1, c8 *Matrix[float64]
		atParallelism(1, func() { c1 = run() })
		atParallelism(8, func() { c8 = run() })
		matricesIdentical(t, "mxm/"+tc.name, c1, c8)
	}
}

func TestSkewedPushDeterminism(t *testing.T) {
	n := 1500
	a := skewedMatrix(t, n, 4)
	u := MustVector[float64](n)
	for i := 0; i < n; i += 2 { // half-dense frontier crossing the hubs
		_ = u.SetElement(i, float64(i%13)+0.25)
	}
	u.Wait()
	run := func(dir Direction) *Vector[float64] {
		w := MustVector[float64](n)
		if err := VxM(w, (*Vector[bool])(nil), nil, PlusTimes[float64](), u, a, &Descriptor{Dir: dir}); err != nil {
			t.Fatal(err)
		}
		return w
	}
	var p1, p8 *Vector[float64]
	atParallelism(1, func() { p1 = run(DirPush) })
	atParallelism(8, func() { p8 = run(DirPush) })
	vectorsIdentical(t, "vxm/push", p1, p8)

	atParallelism(1, func() { p1 = run(DirPull) })
	atParallelism(8, func() { p8 = run(DirPull) })
	vectorsIdentical(t, "vxm/pull", p1, p8)

	// Masked pull: the sparse-mask target path.
	mask := MustVector[bool](n)
	for i := 0; i < n; i += 3 {
		_ = mask.SetElement(i, true)
	}
	mask.Wait()
	runMasked := func() *Vector[float64] {
		w := MustVector[float64](n)
		if err := VxM(w, mask, nil, PlusTimes[float64](), u, a, &Descriptor{Dir: DirPull}); err != nil {
			t.Fatal(err)
		}
		return w
	}
	atParallelism(1, func() { p1 = runMasked() })
	atParallelism(8, func() { p8 = runMasked() })
	vectorsIdentical(t, "vxm/pull-masked", p1, p8)
}

// TestSkewedPushHashDeterminism drives the hash-accumulator push used in
// the hypersparse regime (output dimension ≥ hyperThresholdDim·hyperRatio)
// through the chunked scatter and merge.
func TestSkewedPushHashDeterminism(t *testing.T) {
	n := hyperThresholdDim * hyperRatio // 32768: hash threshold exactly
	rng := rand.New(rand.NewSource(7))
	a := MustMatrix[float64](n, n)
	var is, js []int
	var xs []float64
	for r := 0; r < 600; r++ {
		row := rng.Intn(n)
		deg := 600/(r+1) + 2
		for d := 0; d < deg; d++ {
			is = append(is, row)
			js = append(js, rng.Intn(n))
			xs = append(xs, rng.Float64())
		}
	}
	if err := a.Build(is, js, xs, Plus[float64]()); err != nil {
		t.Fatal(err)
	}
	u := MustVector[float64](n)
	for _, r := range is { // frontier covering every stored row
		_ = u.SetElement(r, 1.5)
	}
	u.Wait()
	run := func() *Vector[float64] {
		w := MustVector[float64](n)
		if err := VxM(w, (*Vector[bool])(nil), nil, PlusTimes[float64](), u, a, &Descriptor{Dir: DirPush}); err != nil {
			t.Fatal(err)
		}
		return w
	}
	var p1, p8 *Vector[float64]
	atParallelism(1, func() { p1 = run() })
	atParallelism(8, func() { p8 = run() })
	vectorsIdentical(t, "vxm/push-hash", p1, p8)
}

func TestSkewedTransposeDeterminism(t *testing.T) {
	a := skewedMatrix(t, 2500, 5) // ~2500·ln(2500) ≈ 20k entries > transposeParallelMin
	if a.Nvals() < transposeParallelMin {
		t.Fatalf("test input too small to exercise the parallel transpose: %d", a.Nvals())
	}
	run := func() *Matrix[float64] {
		c := MustMatrix[float64](2500, 2500)
		if err := Transpose[float64, bool](c, nil, nil, a, nil); err != nil {
			t.Fatal(err)
		}
		return c
	}
	var c1, c8 *Matrix[float64]
	atParallelism(1, func() { c1 = run() })
	atParallelism(8, func() { c8 = run() })
	matricesIdentical(t, "transpose", c1, c8)
}

func TestSkewedAssemblyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 3000
	e := 3 * parallelSortThreshold // well past the parallel-sort threshold
	is := make([]int, e)
	js := make([]int, e)
	xs := make([]float64, e)
	for k := range is {
		is[k] = rng.Intn(n) * rng.Intn(2) // duplicate-heavy, skewed to row 0
		js[k] = rng.Intn(n)
		xs[k] = rng.Float64()
	}

	build := func() *Matrix[float64] {
		a := MustMatrix[float64](n, n)
		if err := a.Build(is, js, xs, Plus[float64]()); err != nil {
			t.Fatal(err)
		}
		return a
	}
	var a1, a8 *Matrix[float64]
	atParallelism(1, func() { a1 = build() })
	atParallelism(8, func() { a8 = build() })
	matricesIdentical(t, "build", a1, a8)

	// Pending-tuple merge into an existing matrix (the Wait slow path).
	merge := func() *Matrix[float64] {
		a := build()
		for k := 0; k < e; k++ {
			if err := a.MergeElement(js[k], is[k], xs[k], Plus[float64]()); err != nil {
				t.Fatal(err)
			}
		}
		a.Wait()
		return a
	}
	atParallelism(1, func() { a1 = merge() })
	atParallelism(8, func() { a8 = merge() })
	matricesIdentical(t, "wait-merge", a1, a8)

	// Vector pending-tuple assembly.
	vbuild := func() *Vector[float64] {
		v := MustVector[float64](n)
		for k := 0; k < e; k++ {
			_ = v.SetElement(is[k], xs[k])
		}
		v.Wait()
		return v
	}
	var v1, v8 *Vector[float64]
	atParallelism(1, func() { v1 = vbuild() })
	atParallelism(8, func() { v8 = vbuild() })
	vectorsIdentical(t, "vector-wait", v1, v8)
}

func TestSkewedKroneckerDeterminism(t *testing.T) {
	a := skewedMatrix(t, 80, 8)
	b := skewedMatrix(t, 60, 9)
	run := func() *Matrix[float64] {
		c := MustMatrix[float64](80*60, 80*60)
		if err := Kronecker[float64, float64, float64, bool](c, nil, nil, Times[float64](), a, b, nil); err != nil {
			t.Fatal(err)
		}
		return c
	}
	var c1, c8 *Matrix[float64]
	atParallelism(1, func() { c1 = run() })
	atParallelism(8, func() { c8 = run() })
	matricesIdentical(t, "kronecker", c1, c8)
}

// TestKroneckerMatchesElementwise pins the direct-CSR Kronecker emission
// against a brute-force per-element reference.
func TestKroneckerMatchesElementwise(t *testing.T) {
	a := skewedMatrix(t, 17, 10)
	b := skewedMatrix(t, 11, 11)
	c := MustMatrix[float64](17*11, 17*11)
	if err := Kronecker[float64, float64, float64, bool](c, nil, nil, Times[float64](), a, b, nil); err != nil {
		t.Fatal(err)
	}
	ref := MustMatrix[float64](17*11, 17*11)
	ai, aj, ax := a.ExtractTuples()
	bi, bj, bx := b.ExtractTuples()
	for p := range ai {
		for q := range bi {
			if err := ref.SetElement(ai[p]*11+bi[q], aj[p]*11+bj[q], ax[p]*bx[q]); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref.Wait()
	matricesIdentical(t, "kronecker-vs-reference", c, ref)
}

// TestWorkChunksInvariants pins the contract the deterministic kernels
// rely on: boundaries cover [0,n) monotonically, never depend on the
// worker count, and a single huge element lands alone in its chunk.
func TestWorkChunksInvariants(t *testing.T) {
	weights := make([]int, 100)
	for k := range weights {
		weights[k] = 1
	}
	weights[40] = 100000 // hub
	wf := func(k int) int { return weights[k] }

	var b1, b8 [][]int
	atParallelism(1, func() { b1 = append(b1, workChunks(100, wf, 64, 16)) })
	atParallelism(8, func() { b8 = append(b8, workChunks(100, wf, 64, 16)) })
	bounds := b1[0]
	if len(bounds) != len(b8[0]) {
		t.Fatal("workChunks boundaries depend on worker count")
	}
	for k := range bounds {
		if bounds[k] != b8[0][k] {
			t.Fatal("workChunks boundaries depend on worker count")
		}
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != 100 {
		t.Fatalf("bounds do not cover the range: %v", bounds)
	}
	for k := 1; k < len(bounds); k++ {
		if bounds[k] <= bounds[k-1] {
			t.Fatalf("bounds not strictly increasing: %v", bounds)
		}
	}
	// The hub element must be alone in its chunk: every other chunk holds
	// a negligible share of the weight.
	for k := 0; k+1 < len(bounds); k++ {
		if bounds[k] <= 40 && 40 < bounds[k+1] && bounds[k+1]-bounds[k] > 1 {
			// The hub may only share a chunk if it sits at a boundary edge
			// that could not be cut tighter; with these weights it must be
			// isolated on at least one side.
			if bounds[k] < 40 && bounds[k+1] > 41 {
				t.Fatalf("hub not isolated by work splitting: %v", bounds)
			}
		}
	}
	// Zero-work input: single chunk.
	b := workChunks(50, func(int) int { return 0 }, 64, 16)
	if len(b) != 2 || b[0] != 0 || b[1] != 50 {
		t.Fatalf("zero-weight input should yield one chunk, got %v", b)
	}
}

func TestParallelSortPermMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := parallelSortThreshold * 2
	keys := make([]int, n)
	for k := range keys {
		keys[k] = rng.Intn(50) // heavy duplication: tiebreak must decide
	}
	less := func(a, b int) bool {
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return a < b
	}
	mk := func() []int {
		perm := make([]int, n)
		for k := range perm {
			perm[k] = k
		}
		return perm
	}
	var s1, s8 []int
	atParallelism(1, func() { s1 = mk(); parallelSortPerm(s1, less) })
	atParallelism(8, func() { s8 = mk(); parallelSortPerm(s8, less) })
	for k := range s1 {
		if s1[k] != s8[k] {
			t.Fatalf("parallel sort diverges from serial at %d", k)
		}
	}
}
