package grb

import (
	"sort"
	"sync"
	"sync/atomic"

	"lagraph/internal/obs"
)

// MxV / VxM with the push–pull direction optimization of §II-E
// (GraphBLAST): the push form is a sparse-matrix sparse-vector product
// (work ∝ entries of the input vector and their adjacency), the pull form
// a dot-product sweep over the output (work ∝ output dimension, with early
// exit on terminal monoids). DirAuto switches on input-vector density,
// reproducing the frontier-based switching of direction-optimizing BFS.

// VxM computes w⟨m⟩ ⊙= uᵀ ⊕.⊗ A (row vector times matrix).
func VxM[A, U, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], s Semiring[U, A, T], u *Vector[U], a *Matrix[A], desc *Descriptor) error {
	if w == nil || u == nil || a == nil || s.Add.Op == nil || s.Mul == nil {
		return opError("vxm", ErrUninitialized)
	}
	return vxmImpl("vxm", w, mask, accum, s, u, a, desc.get())
}

// MxV computes w⟨m⟩ ⊙= A ⊕.⊗ u. It is VxM against the transposed
// operand, with the multiplier's argument order swapped — both run
// through vxmImpl so the shared core reports the caller's own op name in
// errors and op records instead of pretending everything is a vxm.
func MxV[A, U, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], s Semiring[A, U, T], a *Matrix[A], u *Vector[U], desc *Descriptor) error {
	if w == nil || u == nil || a == nil || s.Add.Op == nil || s.Mul == nil {
		return opError("mxv", ErrUninitialized)
	}
	swapped := Semiring[U, A, T]{
		Add: s.Add,
		Mul: func(x U, y A) T { return s.Mul(y, x) },
	}
	d := desc.get()
	d.TranA = !d.TranA
	return vxmImpl("mxv", w, mask, accum, swapped, u, a, d)
}

// vxmImpl is the direction-optimized sparse matrix–vector core behind
// VxM and MxV. op names the public entry point for error wrapping and
// observation; d carries resolved descriptor values (MxV arrives with
// TranA already flipped).
func vxmImpl[A, U, T, M any](op string, w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], s Semiring[U, A, T], u *Vector[U], a *Matrix[A], d descValues) error {
	ar, ac := a.nr, a.nc
	if d.TranA {
		ar, ac = ac, ar
	}
	if u.n != ar || w.n != ac {
		return opErrorf(op, ErrDimensionMismatch, "u is %d, A is %d×%d, w is %d", u.n, ar, ac, w.n)
	}
	if mask != nil && mask.n != w.n {
		return opErrorf(op, ErrDimensionMismatch, "mask is %d, w is %d", mask.n, w.n)
	}
	mv := newMaskVec(mask, d)

	// Kernel selection. A forced direction is honored verbatim; DirAuto
	// engages the static heuristics (bitmap scan for at-least-half-full
	// matrices, else the GraphBLAST push/pull density switch), which an
	// installed Tuner may override from measured history. Every candidate
	// accumulates each output in ascending input-index order, so the
	// choice can never change results — only speed.
	kernel := "push"
	policy := "forced"
	switch d.Dir {
	case DirPull:
		kernel = "pull"
	case DirPush:
		kernel = "push"
	default:
		policy = "static"
		bmOK := a.bitmapEligible()
		if a.bitmapPreferred() {
			kernel = "bitmap"
		} else if chooseDirection(u, a, d, mv, ac) == DirPull {
			kernel = "pull"
		}
		if tn := ActiveTuner(); tn != nil {
			cands := []string{"push", "pull"}
			if bmOK {
				cands = append(cands, "bitmap")
			}
			if k, ok := tn.Advise(op, mask != nil, int64(a.Nvals())+int64(u.Nvals()), cands); ok {
				kernel, policy = k, "tuned"
			}
		}
	}

	// Observation guard: one atomic load; st stays nil (and the kernels
	// record nothing) when no observer is installed.
	ob := obs.Active()
	var st *kernelStats
	var t0 int64
	var nnzU int
	if ob != nil {
		st = new(kernelStats)
		t0 = ob.Now()
		nnzU = u.Nvals()
	}

	var zi []int
	var zx []T
	var nnzA int
	switch kernel {
	case "bitmap":
		va := a.bitmapView()
		nnzA = va.nvals
		zi, zx = vxmBitmap(u, va, d.TranA, s, mv, ac, st)
	case "pull":
		// Pull: dot products over output positions; needs the effective
		// matrix in column-major order (columns of A = rows of Aᵀ).
		caT := orientedCSC(a, d.TranA)
		nnzA = caT.nvals()
		zi, zx = vxmPull(u, caT, s, mv, ac, st)
	default:
		ca := orientedCSR(a, d.TranA)
		nnzA = ca.nvals()
		zi, zx = vxmPush(u, ca, s, mv, ac, st)
	}
	nnzOut := len(zi)
	err := writeVectorResult(w, mask, accum, zi, zx, d)
	if ob != nil && err == nil {
		// Push work estimates pad each frontier entry by one, so the
		// exact multiply count is recoverable; pull rows exit early on
		// terminal monoids, so their actual work is reported as 0
		// (unknown) rather than paid for with per-iteration counting.
		var act int64
		if kernel == "push" {
			act = st.estFlops - int64(nnzU)
		}
		ob.Op(obs.OpRecord{
			Op: op, Kernel: kernel, Policy: policy,
			Rows: ar, Cols: ac,
			NnzA: nnzA, NnzB: nnzU, NnzOut: nnzOut,
			Masked:   mask != nil,
			EstFlops: st.estFlops, ActFlops: act,
			Chunks: st.chunks, MaxChunkFlops: st.maxChunkFlops,
			DurNanos: ob.Now() - t0,
		})
	}
	return err
}

// chooseDirection implements the GraphBLAST switch: pull when the input
// vector is dense relative to its dimension (or the mask admits few
// outputs), push otherwise.
func chooseDirection[U, A any](u *Vector[U], a *Matrix[A], d descValues, mv *maskVec, outDim int) Direction {
	un := u.Nvals()
	if mv != nil && !mv.comp && mv.val == nil && len(mv.idx) < outDim/d.PushPullRatio {
		// A sparse positive mask bounds the pull work tightly.
		return DirPull
	}
	if un > u.n/d.PushPullRatio {
		return DirPull
	}
	return DirPush
}

// Push-kernel chunking: the frontier is cut at equal-flop boundaries once
// the estimated work passes pushWorkQuantum, into at most pushMaxChunks
// pieces. The chunk boundaries depend only on the input — never on the
// worker count — and chunk partials are always merged in chunk order, so
// the result is bitwise identical at any parallelism level (association of
// a non-commutative-rounding Add is fixed by the chunking, not by the
// scheduler).
const (
	pushWorkQuantum = 1 << 13
	pushMaxChunks   = 64
)

// sparsePart is one chunk's partial result: indices sorted ascending.
type sparsePart[T any] struct {
	i []int
	x []T
}

// vxmPush computes z = uᵀ·A by scattering each selected row of A
// (Gustavson over a single "row": SpMSpV). Memory: a dense accumulator
// when the output dimension is modest, a hash accumulator in the
// hypersparse regime. Large frontiers are split into flop-balanced chunks
// scattered concurrently (each worker reusing one accumulator) and merged
// with a k-way pass.
func vxmPush[A, U, T any](u *Vector[U], ca *cs[A], s Semiring[U, A, T], mv *maskVec, outDim int, st *kernelStats) ([]int, []T) {
	ui, ux := u.materialized()
	useHash := outDim >= hyperThresholdDim*hyperRatio
	deg := func(t int) int {
		rk, ok := ca.findMajor(ui[t])
		if !ok {
			return 1
		}
		return ca.p[rk+1] - ca.p[rk] + 1
	}
	bounds := workChunks(len(ui), deg, pushWorkQuantum, pushMaxChunks)
	nchunks := len(bounds) - 1
	if st != nil {
		st.fill(bounds, deg) // read-only: never perturbs the bounds
	}

	parts := make([]sparsePart[T], nchunks)
	if nchunks <= 1 {
		if useHash {
			parts[0].i, parts[0].x = scatterRowsHash(ui, ux, ca, s)
		} else {
			val := make([]T, outDim)
			seen := make([]bool, outDim)
			parts[0].i, parts[0].x = scatterRowsDense(ui, ux, ca, s, val, seen)
		}
	} else {
		w := workers()
		if w > nchunks {
			w = nchunks
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				var val []T
				var seen []bool
				if !useHash {
					val = make([]T, outDim)
					seen = make([]bool, outDim)
				}
				for {
					c := int(next.Add(1)) - 1
					if c >= nchunks {
						return
					}
					lo, hi := bounds[c], bounds[c+1]
					if useHash {
						parts[c].i, parts[c].x = scatterRowsHash(ui[lo:hi], ux[lo:hi], ca, s)
					} else {
						parts[c].i, parts[c].x = scatterRowsDense(ui[lo:hi], ux[lo:hi], ca, s, val, seen)
					}
				}
			}()
		}
		wg.Wait()
	}

	zi, zx := parts[0].i, parts[0].x
	if nchunks > 1 {
		zi, zx = mergeAddParts(parts, s.Add)
	}
	if mv == nil {
		return zi, zx
	}
	oi := zi[:0]
	ox := zx[:0]
	allowed := mv.cursor()
	for t, j := range zi {
		if allowed(j) {
			oi = append(oi, j)
			ox = append(ox, zx[t])
		}
	}
	return oi, ox
}

// scatterRowsDense accumulates the selected rows of one frontier chunk
// into the caller-owned dense accumulator (reused across chunks by each
// worker) and extracts the touched entries sorted, clearing the
// accumulator behind itself.
func scatterRowsDense[A, U, T any](ui []int, ux []U, ca *cs[A], s Semiring[U, A, T], val []T, seen []bool) ([]int, []T) {
	var touched []int
	for t, k := range ui {
		rk, ok := ca.findMajor(k)
		if !ok {
			continue
		}
		ri, rx := ca.vec(rk)
		uv := ux[t]
		for p := range ri {
			j := ri[p]
			if seen[j] {
				if s.Add.Terminal != nil && s.Add.Terminal(val[j]) {
					continue
				}
				val[j] = s.Add.Op(val[j], s.Mul(uv, rx[p]))
			} else {
				seen[j] = true
				val[j] = s.Mul(uv, rx[p])
				touched = append(touched, j)
			}
		}
	}
	sort.Ints(touched)
	zx := make([]T, len(touched))
	for t, j := range touched {
		zx[t] = val[j]
		seen[j] = false
	}
	return touched, zx
}

// scatterRowsHash is the O(chunk flops)-memory scatter used when the
// output dimension is enormous (hypersparse regime).
func scatterRowsHash[A, U, T any](ui []int, ux []U, ca *cs[A], s Semiring[U, A, T]) ([]int, []T) {
	acc := make(map[int]T)
	for t, k := range ui {
		rk, ok := ca.findMajor(k)
		if !ok {
			continue
		}
		ri, rx := ca.vec(rk)
		uv := ux[t]
		for p := range ri {
			j := ri[p]
			if old, ok := acc[j]; ok {
				if s.Add.Terminal != nil && s.Add.Terminal(old) {
					continue
				}
				acc[j] = s.Add.Op(old, s.Mul(uv, rx[p]))
			} else {
				acc[j] = s.Mul(uv, rx[p])
			}
		}
	}
	zi := make([]int, 0, len(acc))
	for j := range acc {
		zi = append(zi, j)
	}
	sort.Ints(zi)
	zx := make([]T, len(zi))
	for t, j := range zi {
		zx[t] = acc[j]
	}
	return zi, zx
}

// mergeAddParts k-way merges sorted chunk partials, combining entries that
// appear in several chunks with the additive monoid, strictly in chunk
// order (chunk 0's contribution first): the fixed association that makes
// chunked push deterministic.
func mergeAddParts[T any](parts []sparsePart[T], add Monoid[T]) ([]int, []T) {
	heads := make([]int, len(parts))
	total := 0
	for _, p := range parts {
		total += len(p.i)
	}
	zi := make([]int, 0, total)
	zx := make([]T, 0, total)
	for {
		best := -1
		for c := range parts {
			if heads[c] == len(parts[c].i) {
				continue
			}
			if best < 0 || parts[c].i[heads[c]] < parts[best].i[heads[best]] {
				best = c
			}
		}
		if best < 0 {
			return zi, zx
		}
		j := parts[best].i[heads[best]]
		acc := parts[best].x[heads[best]]
		heads[best]++
		for c := best + 1; c < len(parts); c++ {
			if heads[c] < len(parts[c].i) && parts[c].i[heads[c]] == j {
				if add.Terminal == nil || !add.Terminal(acc) {
					acc = add.Op(acc, parts[c].x[heads[c]])
				}
				heads[c]++
			}
		}
		zi = append(zi, j)
		zx = append(zx, acc)
	}
}

// pullWorkQuantum is the minimum estimated flop count before the pull
// kernel spins up worker goroutines.
const pullWorkQuantum = 1 << 12

// vxmPull computes z(j) = u·A(:,j) for each admitted output j, with early
// exit on terminal monoids. caT is the column-major view of the effective
// matrix, so caT's major vectors are the columns of A. Outputs are staged
// per column and compacted in order, so results are independent of the
// partitioning; columns are partitioned at equal-degree boundaries (hub
// columns of a power-law graph otherwise serialize the sweep).
func vxmPull[A, U, T any](u *Vector[U], caT *cs[A], s Semiring[U, A, T], mv *maskVec, outDim int, st *kernelStats) ([]int, []T) {
	ud, uok := u.dense()

	// The admitted output set.
	var targets []int
	if mv != nil && !mv.comp && mv.val == nil {
		targets = mv.idx
	} else if mv != nil {
		bm := mv.bitmap(outDim)
		for j, ok := range bm {
			if ok {
				targets = append(targets, j)
			}
		}
	}

	dotCol := func(j int) (T, bool) {
		var zero T
		ck, ok := caT.findMajor(j)
		if !ok {
			return zero, false
		}
		ci, cx := caT.vec(ck)
		var acc T
		found := false
		for t := range ci {
			i := ci[t]
			if !uok[i] {
				continue
			}
			p := s.Mul(ud[i], cx[t])
			if found {
				acc = s.Add.Op(acc, p)
			} else {
				acc = p
				found = true
			}
			if s.Add.Terminal != nil && s.Add.Terminal(acc) {
				return acc, true
			}
		}
		return acc, found
	}
	colDeg := func(j int) int {
		ck, ok := caT.findMajor(j)
		if !ok {
			return 1
		}
		return caT.p[ck+1] - caT.p[ck] + 1
	}

	var n int
	var colOf func(t int) int
	var weight func(t int) int
	if targets != nil {
		n = len(targets)
		colOf = func(t int) int { return targets[t] }
		weight = func(t int) int { return colDeg(targets[t]) }
	} else {
		// No mask: sweep all stored columns.
		n = caT.nvecs()
		colOf = func(t int) int { return caT.majorOf(t) }
		weight = func(t int) int { return caT.p[t+1] - caT.p[t] + 1 }
	}
	vals := make([]T, n)
	found := make([]bool, n)
	parallelWorkObs(n, pullWorkQuantum, weight, st, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			if v, ok := dotCol(colOf(t)); ok {
				vals[t] = v
				found[t] = true
			}
		}
	})
	zi := make([]int, 0, n)
	zx := make([]T, 0, n)
	for t := 0; t < n; t++ {
		if found[t] {
			zi = append(zi, colOf(t))
			zx = append(zx, vals[t])
		}
	}
	return zi, zx
}

// vxmBitmap computes z = uᵀ·Aeff against the dense bitmap view of A. The
// view is row-major over A's rows, so the contiguous scan direction
// depends on the orientation: untransposed (vxm) the frontier selects
// bitmap rows directly and the kernel scatters them push-style; transposed
// (mxv) each output is a bitmap row dotted against u pull-style. Either
// way every output accumulates in ascending input-index order — the same
// association as the push and pull kernels — so the format choice is
// invisible in the result bits.
func vxmBitmap[A, U, T any](u *Vector[U], va *bm[A], tran bool, s Semiring[U, A, T], mv *maskVec, outDim int, st *kernelStats) ([]int, []T) {
	if tran {
		return vxmBitmapPull(u, va, s, mv, outDim, st)
	}
	return vxmBitmapPush(u, va, s, mv, outDim, st)
}

// vxmBitmapPush scatters the frontier's bitmap rows (contiguous cell
// scans) into dense accumulators, chunked and merged exactly like vxmPush.
// outDim = va.nc is bitmap-bounded, so the dense accumulator is always
// affordable (no hash regime).
func vxmBitmapPush[A, U, T any](u *Vector[U], va *bm[A], s Semiring[U, A, T], mv *maskVec, outDim int, st *kernelStats) ([]int, []T) {
	ui, ux := u.materialized()
	// Every frontier row costs one full cell scan regardless of fill.
	rowCost := func(int) int { return va.nc + 1 }
	bounds := workChunks(len(ui), rowCost, pushWorkQuantum, pushMaxChunks)
	nchunks := len(bounds) - 1
	if st != nil {
		st.fill(bounds, rowCost)
	}

	parts := make([]sparsePart[T], nchunks)
	if nchunks <= 1 {
		val := make([]T, outDim)
		seen := make([]bool, outDim)
		parts[0].i, parts[0].x = scatterBitmapRows(ui, ux, va, s, val, seen)
	} else {
		w := workers()
		if w > nchunks {
			w = nchunks
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				val := make([]T, outDim)
				seen := make([]bool, outDim)
				for {
					c := int(next.Add(1)) - 1
					if c >= nchunks {
						return
					}
					lo, hi := bounds[c], bounds[c+1]
					parts[c].i, parts[c].x = scatterBitmapRows(ui[lo:hi], ux[lo:hi], va, s, val, seen)
				}
			}()
		}
		wg.Wait()
	}

	zi, zx := parts[0].i, parts[0].x
	if nchunks > 1 {
		zi, zx = mergeAddParts(parts, s.Add)
	}
	if mv == nil {
		return zi, zx
	}
	oi := zi[:0]
	ox := zx[:0]
	allowed := mv.cursor()
	for t, j := range zi {
		if allowed(j) {
			oi = append(oi, j)
			ox = append(ox, zx[t])
		}
	}
	return oi, ox
}

// scatterBitmapRows is scatterRowsDense over bitmap rows: present cells of
// each selected row accumulate into the dense accumulator in ascending
// column order, rows in frontier (ascending index) order.
func scatterBitmapRows[A, U, T any](ui []int, ux []U, va *bm[A], s Semiring[U, A, T], val []T, seen []bool) ([]int, []T) {
	var touched []int
	for t, k := range ui {
		base := k * va.nc
		uv := ux[t]
		for j := 0; j < va.nc; j++ {
			if !va.b[base+j] {
				continue
			}
			if seen[j] {
				if s.Add.Terminal != nil && s.Add.Terminal(val[j]) {
					continue
				}
				val[j] = s.Add.Op(val[j], s.Mul(uv, va.x[base+j]))
			} else {
				seen[j] = true
				val[j] = s.Mul(uv, va.x[base+j])
				touched = append(touched, j)
			}
		}
	}
	sort.Ints(touched)
	zx := make([]T, len(touched))
	for t, j := range touched {
		zx[t] = val[j]
		seen[j] = false
	}
	return touched, zx
}

// vxmBitmapPull computes each admitted output as a dot of one bitmap row
// (the transposed orientation: columns of Aᵀ are rows of A) against the
// densified input, with the pull kernel's terminal early exit and the same
// target-set logic as vxmPull.
func vxmBitmapPull[A, U, T any](u *Vector[U], va *bm[A], s Semiring[U, A, T], mv *maskVec, outDim int, st *kernelStats) ([]int, []T) {
	ud, uok := u.dense()

	var targets []int
	if mv != nil && !mv.comp && mv.val == nil {
		targets = mv.idx
	} else if mv != nil {
		bmv := mv.bitmap(outDim)
		for j, ok := range bmv {
			if ok {
				targets = append(targets, j)
			}
		}
	}

	dotRow := func(j int) (T, bool) {
		base := j * va.nc
		var acc T
		found := false
		for i := 0; i < va.nc; i++ {
			if !va.b[base+i] || !uok[i] {
				continue
			}
			p := s.Mul(ud[i], va.x[base+i])
			if found {
				acc = s.Add.Op(acc, p)
			} else {
				acc = p
				found = true
			}
			if s.Add.Terminal != nil && s.Add.Terminal(acc) {
				return acc, true
			}
		}
		return acc, found
	}

	var n int
	var colOf func(t int) int
	if targets != nil {
		n = len(targets)
		colOf = func(t int) int { return targets[t] }
	} else {
		n = outDim
		colOf = func(t int) int { return t }
	}
	rowCost := func(int) int { return va.nc + 1 }
	vals := make([]T, n)
	found := make([]bool, n)
	parallelWorkObs(n, pullWorkQuantum, rowCost, st, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			if v, ok := dotRow(colOf(t)); ok {
				vals[t] = v
				found[t] = true
			}
		}
	})
	zi := make([]int, 0, n)
	zx := make([]T, 0, n)
	for t := 0; t < n; t++ {
		if found[t] {
			zi = append(zi, colOf(t))
			zx = append(zx, vals[t])
		}
	}
	return zi, zx
}
