package grb

import "sort"

// MxV / VxM with the push–pull direction optimization of §II-E
// (GraphBLAST): the push form is a sparse-matrix sparse-vector product
// (work ∝ entries of the input vector and their adjacency), the pull form
// a dot-product sweep over the output (work ∝ output dimension, with early
// exit on terminal monoids). DirAuto switches on input-vector density,
// reproducing the frontier-based switching of direction-optimizing BFS.

// VxM computes w⟨m⟩ ⊙= uᵀ ⊕.⊗ A (row vector times matrix).
func VxM[A, U, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], s Semiring[U, A, T], u *Vector[U], a *Matrix[A], desc *Descriptor) error {
	if w == nil || u == nil || a == nil || s.Add.Op == nil || s.Mul == nil {
		return ErrUninitialized
	}
	d := desc.get()
	ar, ac := a.nr, a.nc
	if d.TranA {
		ar, ac = ac, ar
	}
	if u.n != ar || w.n != ac {
		return ErrDimensionMismatch
	}
	if mask != nil && mask.n != w.n {
		return ErrDimensionMismatch
	}
	mv := newMaskVec(mask, d)

	dir := d.Dir
	if dir == DirAuto {
		dir = chooseDirection(u, a, d, mv, ac)
	}

	var zi []int
	var zx []T
	if dir == DirPull {
		// Pull: dot products over output positions; needs the effective
		// matrix in column-major order (columns of A = rows of Aᵀ).
		caT := orientedCSC(a, d.TranA)
		zi, zx = vxmPull(u, caT, s, mv, ac)
	} else {
		ca := orientedCSR(a, d.TranA)
		zi, zx = vxmPush(u, ca, s, mv, ac)
	}
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// MxV computes w⟨m⟩ ⊙= A ⊕.⊗ u. It is VxM against the transposed
// operand, with the multiplier's argument order swapped.
func MxV[A, U, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], s Semiring[A, U, T], a *Matrix[A], u *Vector[U], desc *Descriptor) error {
	if w == nil || u == nil || a == nil || s.Add.Op == nil || s.Mul == nil {
		return ErrUninitialized
	}
	d := desc.get()
	swapped := Semiring[U, A, T]{
		Add: s.Add,
		Mul: func(x U, y A) T { return s.Mul(y, x) },
	}
	d2 := d
	d2.TranA = !d.TranA
	// Rebuild a Descriptor carrying the resolved values.
	nd := &Descriptor{
		TranA: d2.TranA, Replace: d2.Replace, Comp: d2.Comp,
		MaskValue: d2.MaskValue, Method: d2.Method, Dir: d2.Dir,
		PushPullRatio: d2.PushPullRatio,
	}
	return VxM(w, mask, accum, swapped, u, a, nd)
}

// chooseDirection implements the GraphBLAST switch: pull when the input
// vector is dense relative to its dimension (or the mask admits few
// outputs), push otherwise.
func chooseDirection[U, A any](u *Vector[U], a *Matrix[A], d descValues, mv *maskVec, outDim int) Direction {
	un := u.Nvals()
	if mv != nil && !mv.comp && mv.val == nil && len(mv.idx) < outDim/d.PushPullRatio {
		// A sparse positive mask bounds the pull work tightly.
		return DirPull
	}
	if un > u.n/d.PushPullRatio {
		return DirPull
	}
	return DirPush
}

// vxmPush computes z = uᵀ·A by scattering each selected row of A
// (Gustavson over a single "row": SpMSpV). Memory: a dense accumulator
// when the output dimension is modest, a hash accumulator in the
// hypersparse regime.
func vxmPush[A, U, T any](u *Vector[U], ca *cs[A], s Semiring[U, A, T], mv *maskVec, outDim int) ([]int, []T) {
	ui, ux := u.materialized()
	if outDim >= hyperThresholdDim*hyperRatio {
		return vxmPushHash(ui, ux, ca, s, mv)
	}
	val := make([]T, outDim)
	seen := make([]bool, outDim)
	var touched []int
	for t, k := range ui {
		rk, ok := ca.findMajor(k)
		if !ok {
			continue
		}
		ri, rx := ca.vec(rk)
		uv := ux[t]
		for p := range ri {
			j := ri[p]
			if seen[j] {
				if s.Add.Terminal != nil && s.Add.Terminal(val[j]) {
					continue
				}
				val[j] = s.Add.Op(val[j], s.Mul(uv, rx[p]))
			} else {
				seen[j] = true
				val[j] = s.Mul(uv, rx[p])
				touched = append(touched, j)
			}
		}
	}
	sort.Ints(touched)
	zi := make([]int, 0, len(touched))
	zx := make([]T, 0, len(touched))
	allowed := mv.cursor()
	for _, j := range touched {
		if allowed(j) {
			zi = append(zi, j)
			zx = append(zx, val[j])
		}
	}
	return zi, zx
}

// vxmPushHash is the O(flops)-memory push used when the output dimension
// is enormous (hypersparse regime).
func vxmPushHash[A, U, T any](ui []int, ux []U, ca *cs[A], s Semiring[U, A, T], mv *maskVec) ([]int, []T) {
	acc := make(map[int]T)
	for t, k := range ui {
		rk, ok := ca.findMajor(k)
		if !ok {
			continue
		}
		ri, rx := ca.vec(rk)
		uv := ux[t]
		for p := range ri {
			j := ri[p]
			if old, ok := acc[j]; ok {
				if s.Add.Terminal != nil && s.Add.Terminal(old) {
					continue
				}
				acc[j] = s.Add.Op(old, s.Mul(uv, rx[p]))
			} else {
				acc[j] = s.Mul(uv, rx[p])
			}
		}
	}
	touched := make([]int, 0, len(acc))
	for j := range acc {
		touched = append(touched, j)
	}
	sort.Ints(touched)
	zi := make([]int, 0, len(touched))
	zx := make([]T, 0, len(touched))
	allowed := mv.cursor()
	for _, j := range touched {
		if allowed(j) {
			zi = append(zi, j)
			zx = append(zx, acc[j])
		}
	}
	return zi, zx
}

// vxmPull computes z(j) = u·A(:,j) for each admitted output j, with early
// exit on terminal monoids. caT is the column-major view of the effective
// matrix, so caT's major vectors are the columns of A.
func vxmPull[A, U, T any](u *Vector[U], caT *cs[A], s Semiring[U, A, T], mv *maskVec, outDim int) ([]int, []T) {
	ud, uok := u.dense()

	// The admitted output set.
	var targets []int
	if mv != nil && !mv.comp && mv.val == nil {
		targets = mv.idx
	} else if mv != nil {
		bm := mv.bitmap(outDim)
		for j, ok := range bm {
			if ok {
				targets = append(targets, j)
			}
		}
	}

	type part struct {
		i []int
		x []T
	}
	dotCol := func(j int) (T, bool) {
		var zero T
		ck, ok := caT.findMajor(j)
		if !ok {
			return zero, false
		}
		ci, cx := caT.vec(ck)
		var acc T
		found := false
		for t := range ci {
			i := ci[t]
			if !uok[i] {
				continue
			}
			p := s.Mul(ud[i], cx[t])
			if found {
				acc = s.Add.Op(acc, p)
			} else {
				acc = p
				found = true
			}
			if s.Add.Terminal != nil && s.Add.Terminal(acc) {
				return acc, true
			}
		}
		return acc, found
	}

	if targets != nil {
		n := len(targets)
		nblocks := workers()
		if nblocks > n {
			nblocks = 1
		}
		parts := make([]part, nblocks)
		parallelRanges(nblocks, 1, func(blo, bhi int) {
			for b := blo; b < bhi; b++ {
				for t := b * n / nblocks; t < (b+1)*n/nblocks; t++ {
					j := targets[t]
					if v, ok := dotCol(j); ok {
						parts[b].i = append(parts[b].i, j)
						parts[b].x = append(parts[b].x, v)
					}
				}
			}
		})
		var zi []int
		var zx []T
		for _, p := range parts {
			zi = append(zi, p.i...)
			zx = append(zx, p.x...)
		}
		return zi, zx
	}

	// No mask: sweep all stored columns.
	nvec := caT.nvecs()
	nblocks := workers()
	if nblocks > nvec {
		nblocks = 1
	}
	parts := make([]part, nblocks)
	parallelRanges(nblocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			for k := b * nvec / nblocks; k < (b+1)*nvec/nblocks; k++ {
				j := caT.majorOf(k)
				if v, ok := dotCol(j); ok {
					parts[b].i = append(parts[b].i, j)
					parts[b].x = append(parts[b].x, v)
				}
			}
		}
	})
	var zi []int
	var zx []T
	for _, p := range parts {
		zi = append(zi, p.i...)
		zx = append(zx, p.x...)
	}
	return zi, zx
}
