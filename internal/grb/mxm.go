package grb

import "lagraph/internal/obs"

// MxM: C⟨M⟩ ⊙= A ⊕.⊗ B, with the three kernel families of §II-A:
//
//   - Gustavson's method: row-wise saxpy with a dense accumulator; the
//     general-purpose kernel.
//   - The dot-product method: C(i,j) = A(i,:)·B(:,j); superior when a
//     sparse mask limits the output pattern (triangle counting) and when
//     the additive monoid has a terminal value (early exit).
//   - The heap method: a k-way merge of the B rows selected by each A row;
//     wins when rows of A are very short, and never allocates an
//     output-dimension-sized accumulator (so it also serves hypersparse
//     outputs).

// MxM computes C⟨M⟩ ⊙= A ⊕.⊗ B.
func MxM[A, B, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], s Semiring[A, B, T], a *Matrix[A], b *Matrix[B], desc *Descriptor) error {
	if c == nil || a == nil || b == nil || s.Add.Op == nil || s.Mul == nil {
		return opError("mxm", ErrUninitialized)
	}
	d := desc.get()
	ar, ac := a.nr, a.nc
	if d.TranA {
		ar, ac = ac, ar
	}
	br, bc := b.nr, b.nc
	if d.TranB {
		br, bc = bc, br
	}
	if ac != br {
		return opErrorf("mxm", ErrDimensionMismatch, "A is %d×%d, B is %d×%d", ar, ac, br, bc)
	}
	if c.nr != ar || c.nc != bc {
		return opErrorf("mxm", ErrDimensionMismatch, "C is %d×%d, A·B is %d×%d", c.nr, c.nc, ar, bc)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return opErrorf("mxm", ErrDimensionMismatch, "mask is %d×%d, C is %d×%d", mask.nr, mask.nc, c.nr, c.nc)
	}

	ca := orientedCSR(a, d.TranA)
	mm := newMaskMat(mask, d)

	method := d.Method
	policy := "forced"
	if method == MxMAuto {
		method = chooseMxM(ca, mm, ar, bc)
		policy = "static"
		if tn := ActiveTuner(); tn != nil {
			cands := []string{"gustavson", "heap"}
			if mm != nil && !mm.comp {
				if b.bitmapEligible() {
					cands = append(cands, "dot-bitmap")
				} else {
					cands = append(cands, "dot")
				}
			}
			if k, ok := tn.Advise("mxm", mask != nil, int64(ca.nvals())+int64(b.Nvals()), cands); ok {
				policy = "tuned"
				switch k {
				case "dot", "dot-bitmap":
					method = MxMDot
				case "heap":
					method = MxMHeap
				default:
					method = MxMGustavson
				}
			}
		}
	}

	// Observation guard: one atomic load; st stays nil (and the kernels
	// record nothing) when no observer is installed.
	ob := obs.Active()
	var st *kernelStats
	var t0 int64
	if ob != nil {
		st = new(kernelStats)
		t0 = ob.Now()
	}

	var z *cs[T]
	var kernel string
	var nnzB int
	switch method {
	case MxMDot:
		if vb := b.bitmapView(); vb != nil {
			// Bitmap B turns each dot's sorted merge into O(1) cell
			// probes per A entry — and skips building the CSC cache.
			nnzB = vb.nvals
			z = mxmDotBitmap(ca, vb, d.TranB, s, mm, ar, bc, st)
			kernel = "dot-bitmap"
		} else {
			cbT := orientedCSC(b, d.TranB)
			nnzB = cbT.nvals()
			z = mxmDot(ca, cbT, s, mm, ar, bc, st)
			kernel = "dot"
		}
	case MxMHeap:
		cb := orientedCSR(b, d.TranB)
		nnzB = cb.nvals()
		z = mxmHeap(ca, cb, s, mm, ar, bc, st)
		kernel = "heap"
	default:
		cb := orientedCSR(b, d.TranB)
		nnzB = cb.nvals()
		z = mxmGustavson(ca, cb, s, mm, ar, bc, st)
		kernel = "gustavson"
	}
	err := writeMatrixResult(c, mask, accum, z, d)
	if ob != nil && err == nil {
		// The saxpy-family estimate pads each stored A row by one; the
		// exact multiply count is the estimate minus that padding. Dot
		// rows (compressed or bitmap) exit early on terminal monoids, so
		// their actual work is unknowable without per-iteration counting
		// — reported as 0.
		var act int64
		if method != MxMDot {
			act = st.estFlops - int64(ca.nvecs())
		}
		ob.Op(obs.OpRecord{
			Op: "mxm", Kernel: kernel, Policy: policy,
			Rows: ar, Cols: bc,
			NnzA: ca.nvals(), NnzB: nnzB, NnzOut: z.nvals(),
			Masked:   mask != nil,
			EstFlops: st.estFlops, ActFlops: act,
			Chunks: st.chunks, MaxChunkFlops: st.maxChunkFlops,
			DurNanos: ob.Now() - t0,
		})
	}
	return err
}

// orientedCSC returns the column-major view of the effective operand: for
// a transposed operand that is simply its row-major storage.
func orientedCSC[T any](a *Matrix[T], tran bool) *cs[T] {
	if tran {
		return a.materializedCSR()
	}
	return a.materializedCSC()
}

// chooseMxM picks a kernel: dot when a non-complemented mask restricts the
// output to a small pattern; heap when A's rows are very short and the
// output dimension is large; Gustavson otherwise.
func chooseMxM[A any](ca *cs[A], mm *maskMat, outRows, outCols int) MxMMethod {
	if mm != nil && !mm.comp {
		return MxMDot
	}
	nv := ca.nvals()
	if nv > 0 && outCols >= hyperThresholdDim*hyperRatio {
		return MxMHeap // avoid O(outCols) accumulators per worker
	}
	if ca.nvecs() > 0 && nv/max(ca.nvecs(), 1) <= 2 && outCols > 4096 {
		return MxMHeap
	}
	return MxMGustavson
}

// mxmWorkQuantum is the minimum estimated flop count before the saxpy and
// heap kernels spin up worker goroutines.
const mxmWorkQuantum = 1 << 12

// saxpyFlops estimates the work of A's stored row k under Gustavson or the
// heap method: the summed degrees of the B rows it selects. On power-law
// graphs this varies by orders of magnitude across rows, which is why the
// kernels partition by it rather than by row count.
func saxpyFlops[A, B any](ca *cs[A], cb *cs[B], k int) int {
	ai, _ := ca.vec(k)
	f := 1
	for _, j := range ai {
		if bk, ok := cb.findMajor(j); ok {
			f += cb.p[bk+1] - cb.p[bk]
		}
	}
	return f
}

// mxmGustavson computes Z = A·B row-wise with a dense accumulator, rows
// partitioned at equal-flop boundaries and dynamically scheduled so hub
// rows don't serialize the kernel.
func mxmGustavson[A, B, T any](ca *cs[A], cb *cs[B], s Semiring[A, B, T], mm *maskMat, nr, nc int, st *kernelStats) *cs[T] {
	nvec := ca.nvecs()
	staging := newRowSlices[T](nvec)
	flops := func(k int) int { return saxpyFlops(ca, cb, k) }
	parallelWorkObs(nvec, mxmWorkQuantum, flops, st, func(lo, hi int) {
		val := make([]T, nc)
		seen := make([]bool, nc)
		var touched []int
		for k := lo; k < hi; k++ {
			ai, ax := ca.vec(k)
			if len(ai) == 0 {
				continue
			}
			row := ca.majorOf(k)
			touched = touched[:0]
			for t := range ai {
				bk, ok := cb.findMajor(ai[t])
				if !ok {
					continue
				}
				bi, bx := cb.vec(bk)
				av := ax[t]
				for u := range bi {
					j := bi[u]
					p := s.Mul(av, bx[u])
					if seen[j] {
						val[j] = s.Add.Op(val[j], p)
					} else {
						seen[j] = true
						val[j] = p
						touched = append(touched, j)
					}
				}
			}
			sortDedupIndices(touched) // sort; already unique
			emitMasked(&staging.idx[k], &staging.val[k], touched, val, mm, row)
			for _, j := range touched {
				seen[j] = false
			}
		}
	})
	return stitchByA(staging, ca, nr, nc)
}

// emitMasked appends the accumulated row, filtered by the row's mask.
func emitMasked[T any](oi *[]int, ox *[]T, touched []int, val []T, mm *maskMat, row int) {
	if mm == nil {
		for _, j := range touched {
			*oi = append(*oi, j)
			*ox = append(*ox, val[j])
		}
		return
	}
	allowed := mm.rowMask(row).cursor()
	for _, j := range touched {
		if allowed(j) {
			*oi = append(*oi, j)
			*ox = append(*ox, val[j])
		}
	}
}

// stitchByA assembles staged rows using A's row structure (hypersparse A
// yields hypersparse Z).
func stitchByA[A, T any](staging *rowSlices[T], ca *cs[A], nr, nc int) *cs[T] {
	if ca.h != nil {
		return staging.stitch(nr, nc, ca.h)
	}
	return staging.stitch(nr, nc, nil)
}

// mxmDot computes Z = A·B with dot products, iterating only positions
// admitted by the mask when one is present (and not complemented). cbT is
// the column-major view of B, i.e. rows of Bᵀ.
func mxmDot[A, B, T any](ca *cs[A], cbT *cs[B], s Semiring[A, B, T], mm *maskMat, nr, nc int, st *kernelStats) *cs[T] {
	nvec := ca.nvecs()
	staging := newRowSlices[T](nvec)
	useMaskPattern := mm != nil && !mm.comp
	// Per-row work ≈ admitted outputs × merge length; the mask row size is
	// the dominant skew on masked products (triangle counting).
	flops := func(k int) int {
		ai, _ := ca.vec(k)
		if len(ai) == 0 {
			return 1
		}
		outs := nc
		if useMaskPattern {
			mi, _ := mm.row(ca.majorOf(k))
			outs = len(mi)
		}
		return 1 + outs*(len(ai)+1)
	}
	parallelWorkObs(nvec, mxmWorkQuantum, flops, st, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			ai, ax := ca.vec(k)
			if len(ai) == 0 {
				continue
			}
			row := ca.majorOf(k)
			dot := func(j int) {
				bk, ok := cbT.findMajor(j)
				if !ok {
					return
				}
				bi, bx := cbT.vec(bk)
				acc, any := sparseDot(ai, ax, bi, bx, s)
				if any {
					staging.idx[k] = append(staging.idx[k], j)
					staging.val[k] = append(staging.val[k], acc)
				}
			}
			if useMaskPattern {
				mi, mv := mm.row(row)
				for t, j := range mi {
					if mv != nil && !mv[t] {
						continue
					}
					dot(j)
				}
			} else if mm != nil { // complemented mask: all j not admitted... i.e. admitted by comp view
				allowed := mm.rowMask(row).cursor()
				for j := 0; j < nc; j++ {
					if allowed(j) {
						dot(j)
					}
				}
			} else {
				for j := 0; j < nc; j++ {
					dot(j)
				}
			}
		}
	})
	return stitchByA(staging, ca, nr, nc)
}

// mxmDotBitmap is mxmDot with B held as a dense bitmap: each dot product
// walks only A's row and probes Beff(k,j) in O(1) instead of merging two
// sorted index lists — the win grows with B's fill (exactly when the
// bitmap view exists). tranB selects the probe orientation: Beff(k,j) is
// cell (k,j) of the bitmap untransposed and cell (j,k) transposed (the
// L·Uᵀ orientation of triangle counting, whose probes are contiguous).
// Probes ascend in k like sparseDot's merge, and the terminal early exit
// is preserved, so results are bitwise identical to the compressed dot.
func mxmDotBitmap[A, B, T any](ca *cs[A], vb *bm[B], tranB bool, s Semiring[A, B, T], mm *maskMat, nr, nc int, st *kernelStats) *cs[T] {
	nvec := ca.nvecs()
	staging := newRowSlices[T](nvec)
	useMaskPattern := mm != nil && !mm.comp
	flops := func(k int) int {
		ai, _ := ca.vec(k)
		if len(ai) == 0 {
			return 1
		}
		outs := nc
		if useMaskPattern {
			mi, _ := mm.row(ca.majorOf(k))
			outs = len(mi)
		}
		return 1 + outs*(len(ai)+1)
	}
	parallelWorkObs(nvec, mxmWorkQuantum, flops, st, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			ai, ax := ca.vec(k)
			if len(ai) == 0 {
				continue
			}
			row := ca.majorOf(k)
			dot := func(j int) {
				var acc T
				found := false
				for t := range ai {
					var cell int
					if tranB {
						cell = j*vb.nc + ai[t]
					} else {
						cell = ai[t]*vb.nc + j
					}
					if !vb.b[cell] {
						continue
					}
					p := s.Mul(ax[t], vb.x[cell])
					if found {
						acc = s.Add.Op(acc, p)
					} else {
						acc = p
						found = true
					}
					if s.Add.Terminal != nil && s.Add.Terminal(acc) {
						break
					}
				}
				if found {
					staging.idx[k] = append(staging.idx[k], j)
					staging.val[k] = append(staging.val[k], acc)
				}
			}
			if useMaskPattern {
				mi, mv := mm.row(row)
				for t, j := range mi {
					if mv != nil && !mv[t] {
						continue
					}
					dot(j)
				}
			} else if mm != nil {
				allowed := mm.rowMask(row).cursor()
				for j := 0; j < nc; j++ {
					if allowed(j) {
						dot(j)
					}
				}
			} else {
				for j := 0; j < nc; j++ {
					dot(j)
				}
			}
		}
	})
	return stitchByA(staging, ca, nr, nc)
}

// sparseDot merges two sorted sparse vectors under the semiring, stopping
// early once the additive monoid reaches a terminal value (§II-A's early
// exit; the reason a "pull" BFS step is cheap).
func sparseDot[A, B, T any](ai []int, ax []A, bi []int, bx []B, s Semiring[A, B, T]) (T, bool) {
	var acc T
	found := false
	u, v := 0, 0
	for u < len(ai) && v < len(bi) {
		switch {
		case ai[u] < bi[v]:
			u++
		case bi[v] < ai[u]:
			v++
		default:
			p := s.Mul(ax[u], bx[v])
			if found {
				acc = s.Add.Op(acc, p)
			} else {
				acc = p
				found = true
			}
			if s.Add.Terminal != nil && s.Add.Terminal(acc) {
				return acc, true
			}
			u++
			v++
		}
	}
	return acc, found
}

// heapEntry is a cursor into one selected row of B during the k-way merge.
type heapEntry[B any] struct {
	col int // current column of this cursor
	pos int // position within the row
	bi  []int
	bx  []B
	src int // index into A's row (for the multiplier)
}

// mxmHeap computes Z = A·B one row at a time by merging the selected rows
// of B with a binary heap keyed on column index. Memory per worker is
// O(row degree of A), never O(ncols) — the property that matters for
// hypersparse outputs.
func mxmHeap[A, B, T any](ca *cs[A], cb *cs[B], s Semiring[A, B, T], mm *maskMat, nr, nc int, st *kernelStats) *cs[T] {
	nvec := ca.nvecs()
	staging := newRowSlices[T](nvec)
	flops := func(k int) int { return saxpyFlops(ca, cb, k) }
	parallelWorkObs(nvec, mxmWorkQuantum, flops, st, func(lo, hi int) {
		var heap []heapEntry[B]
		for k := lo; k < hi; k++ {
			ai, ax := ca.vec(k)
			if len(ai) == 0 {
				continue
			}
			row := ca.majorOf(k)
			heap = heap[:0]
			for t := range ai {
				bk, ok := cb.findMajor(ai[t])
				if !ok {
					continue
				}
				bi, bx := cb.vec(bk)
				if len(bi) == 0 {
					continue
				}
				heap = append(heap, heapEntry[B]{col: bi[0], pos: 0, bi: bi, bx: bx, src: t})
			}
			// heapify
			for t := len(heap)/2 - 1; t >= 0; t-- {
				siftDown(heap, t)
			}
			var oi []int
			var ox []T
			for len(heap) > 0 {
				top := heap[0]
				j := top.col
				p := s.Mul(ax[top.src], top.bx[top.pos])
				if len(oi) > 0 && oi[len(oi)-1] == j {
					ox[len(ox)-1] = s.Add.Op(ox[len(ox)-1], p)
				} else {
					oi = append(oi, j)
					ox = append(ox, p)
				}
				// advance cursor
				if top.pos+1 < len(top.bi) {
					heap[0].pos++
					heap[0].col = top.bi[top.pos+1]
					siftDown(heap, 0)
				} else {
					heap[0] = heap[len(heap)-1]
					heap = heap[:len(heap)-1]
					if len(heap) > 0 {
						siftDown(heap, 0)
					}
				}
			}
			if mm == nil {
				staging.idx[k], staging.val[k] = oi, ox
			} else {
				allowed := mm.rowMask(row).cursor()
				for t, j := range oi {
					if allowed(j) {
						staging.idx[k] = append(staging.idx[k], j)
						staging.val[k] = append(staging.val[k], ox[t])
					}
				}
			}
		}
	})
	return stitchByA(staging, ca, nr, nc)
}

func siftDown[B any](h []heapEntry[B], i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].col < h[small].col {
			small = l
		}
		if r < len(h) && h[r].col < h[small].col {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// Kronecker computes C⟨M⟩ ⊙= A ⊗kron B (the GrB_kronecker of the v1.3
// API): C(ia·nbr+ib, ja·nbc+jb) = mul(A(ia,ja), B(ib,jb)).
func Kronecker[A, B, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], mul BinaryOp[A, B, T], a *Matrix[A], b *Matrix[B], desc *Descriptor) error {
	if c == nil || a == nil || b == nil || mul == nil {
		return opError("kronecker", ErrUninitialized)
	}
	d := desc.get()
	ca := orientedCSR(a, d.TranA)
	cb := orientedCSR(b, d.TranB)
	nbr, nbc := cb.nmajor, cb.nminor
	nr, nc := ca.nmajor*nbr, ca.nminor*nbc
	if c.nr != nr || c.nc != nc {
		return opErrorf("kronecker", ErrDimensionMismatch, "C is %d×%d, want %d×%d", c.nr, c.nc, nr, nc)
	}
	return writeMatrixResult(c, mask, accum, kroneckerCS(ca, cb, mul, nr, nc), d)
}

// kroneckerCS emits A ⊗ B directly in compressed form: output row
// ia·nbr+ib is, walking A's row ia in column order, B's row ib shifted by
// ja·nbc — each segment sorted and the segments disjoint and ascending, so
// the row needs no staging, sorting or duplicate pass (the old path
// materialized three O(nvals(A)·nvals(B)) COO slices and re-sorted them
// through assembleCS). Output rows are filled concurrently at exact
// offsets known from a prefix sum over the per-row sizes.
func kroneckerCS[A, B, T any](ca *cs[A], cb *cs[B], mul BinaryOp[A, B, T], nr, nc int) *cs[T] {
	nva, nvb := ca.nvecs(), cb.nvecs()
	nbr, nbc := cb.nmajor, cb.nminor
	nrows := nva * nvb
	p := make([]int, nrows+1)
	h := make([]int, nrows)
	for ka := 0; ka < nva; ka++ {
		la := ca.p[ka+1] - ca.p[ka]
		base := ca.majorOf(ka) * nbr
		for kb := 0; kb < nvb; kb++ {
			r := ka*nvb + kb
			p[r+1] = p[r] + la*(cb.p[kb+1]-cb.p[kb])
			h[r] = base + cb.majorOf(kb)
		}
	}
	zi := make([]int, p[nrows])
	zx := make([]T, p[nrows])
	parallelWork(nrows, mxmWorkQuantum, func(r int) int { return p[r+1] - p[r] + 1 }, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ai, ax := ca.vec(r / nvb)
			bi, bx := cb.vec(r % nvb)
			w := p[r]
			for ta := range ai {
				col := ai[ta] * nbc
				av := ax[ta]
				for tb := range bi {
					zi[w] = col + bi[tb]
					zx[w] = mul(av, bx[tb])
					w++
				}
			}
		}
	})
	// Compress away stored-but-empty rows (empty input rows in standard
	// format produce them) to keep the hypersparse invariant.
	cp := make([]int, 1, nrows+1)
	ch := make([]int, 0, nrows)
	for r := 0; r < nrows; r++ {
		if p[r+1] > p[r] {
			cp = append(cp, p[r+1])
			ch = append(ch, h[r])
		}
	}
	return &cs[T]{nmajor: nr, nminor: nc, p: cp, h: ch, i: zi, x: zx}
}
