package grb

// This file implements the C API's output write rule, shared by every
// operation: C⟨M,replace⟩ ⊙= Z, where Z is the fully-computed result of
// the operation proper. The rule (spec §2.4):
//
//   - positions admitted by the mask take the merged value: with no
//     accumulator Z replaces C there (including deletions where Z has no
//     entry); with an accumulator, C ⊙ Z where both exist, else whichever
//     exists;
//   - positions not admitted keep their previous C value, unless Replace
//     is set, in which case they are deleted.

// writeVectorResult applies the write rule to vector w given result entries
// (zidx, zx) sorted ascending.
func writeVectorResult[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], zidx []int, zx []T, d descValues) error {
	if mask != nil && mask.n != w.n {
		return opErrorf("write", ErrDimensionMismatch, "mask is %d, w is %d", mask.n, w.n)
	}
	mv := newMaskVec(mask, d)
	widx, wx := w.materialized()
	allowed := mv.cursor()

	ni := make([]int, 0, len(zidx)+len(widx))
	nx := make([]T, 0, len(zidx)+len(widx))
	s, k := 0, 0 // cursors into w and z
	for s < len(widx) || k < len(zidx) {
		var i int
		haveW := s < len(widx)
		haveZ := k < len(zidx)
		switch {
		case haveW && (!haveZ || widx[s] < zidx[k]):
			i = widx[s]
			if allowed(i) {
				// admitted, z missing: deletion unless accumulating
				if accum != nil {
					ni = append(ni, i)
					nx = append(nx, wx[s])
				}
			} else if !d.Replace {
				ni = append(ni, i)
				nx = append(nx, wx[s])
			}
			s++
		case haveZ && (!haveW || zidx[k] < widx[s]):
			i = zidx[k]
			if allowed(i) {
				ni = append(ni, i)
				nx = append(nx, zx[k])
			}
			k++
		default: // both present at the same index
			i = widx[s]
			if allowed(i) {
				v := zx[k]
				if accum != nil {
					v = accum(wx[s], zx[k])
				}
				ni = append(ni, i)
				nx = append(nx, v)
			} else if !d.Replace {
				ni = append(ni, i)
				nx = append(nx, wx[s])
			}
			s++
			k++
		}
	}
	w.idx, w.x = ni, nx
	return nil
}

// writeMatrixResult applies the write rule to matrix c given the computed
// result z in row-major compressed form.
func writeMatrixResult[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], z *cs[T], d descValues) error {
	if z.nmajor != c.nr || z.nminor != c.nc {
		return opErrorf("write", ErrDimensionMismatch, "result is %d×%d, C is %d×%d", z.nmajor, z.nminor, c.nr, c.nc)
	}
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return opErrorf("write", ErrDimensionMismatch, "mask is %d×%d, C is %d×%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	mm := newMaskMat(mask, d)
	old := c.materializedCSR()

	// Fast path: no mask, no accumulator → adopt z wholesale.
	if mm == nil && accum == nil {
		c.csr = z
		c.csc = nil
		c.maybeConvertFormat()
		return nil
	}

	est := old.nvals() + z.nvals()
	ni := make([]int, 0, est)
	nx := make([]T, 0, est)
	var np, nh []int
	hyper := old.h != nil && z.h != nil
	if hyper {
		np = append(np, 0)
	} else {
		np = make([]int, 1, c.nr+1)
	}

	// Row iterators over possibly-hypersparse old and z.
	ok, zk := 0, 0
	emit := func(row int, oi []int, ox []T, zi []int, zx []T) {
		var rm *maskVec
		if mm != nil {
			rm = mm.rowMask(row)
		}
		allowed := rm.cursor()
		if mm == nil {
			allowed = func(int) bool { return true }
		}
		s, k := 0, 0
		for s < len(oi) || k < len(zi) {
			haveW := s < len(oi)
			haveZ := k < len(zi)
			switch {
			case haveW && (!haveZ || oi[s] < zi[k]):
				j := oi[s]
				if allowed(j) {
					if accum != nil {
						ni = append(ni, j)
						nx = append(nx, ox[s])
					}
				} else if !d.Replace {
					ni = append(ni, j)
					nx = append(nx, ox[s])
				}
				s++
			case haveZ && (!haveW || zi[k] < oi[s]):
				j := zi[k]
				if allowed(j) {
					ni = append(ni, j)
					nx = append(nx, zx[k])
				}
				k++
			default:
				j := oi[s]
				if allowed(j) {
					v := zx[k]
					if accum != nil {
						v = accum(ox[s], zx[k])
					}
					ni = append(ni, j)
					nx = append(nx, v)
				} else if !d.Replace {
					ni = append(ni, j)
					nx = append(nx, ox[s])
				}
				s++
				k++
			}
		}
	}

	closeRow := func(row int) {
		if hyper {
			if len(ni) > np[len(np)-1] {
				nh = append(nh, row)
				np = append(np, len(ni))
			}
		} else {
			np = append(np, len(ni))
		}
	}

	rowOf := func(cs *cs[T], k int) (int, bool) {
		if k >= cs.nvecs() {
			return 0, false
		}
		return cs.majorOf(k), true
	}

	for {
		ro, hasO := rowOf(old, ok)
		rz, hasZ := rowOf(z, zk)
		if !hasO && !hasZ {
			break
		}
		var row int
		switch {
		case !hasO:
			row = rz
		case !hasZ:
			row = ro
		default:
			row = min(ro, rz)
		}
		var oi, zi []int
		var ox, zx []T
		if hasO && ro == row {
			oi, ox = old.vec(ok)
			ok++
		}
		if hasZ && rz == row {
			zi, zx = z.vec(zk)
			zk++
		}
		if !hyper {
			// close empty rows up to 'row'
			for len(np)-1 < row {
				np = append(np, len(ni))
			}
		}
		emit(row, oi, ox, zi, zx)
		closeRow(row)
	}
	if !hyper {
		for len(np)-1 < c.nr {
			np = append(np, len(ni))
		}
	}

	c.csr = &cs[T]{nmajor: c.nr, nminor: c.nc, p: np, h: nh, i: ni, x: nx}
	c.csc = nil
	c.maybeConvertFormat()
	return nil
}
