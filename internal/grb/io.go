package grb

// This file implements extractTuples and the move-constructor style
// import/export of §IV of the paper: passing ownership of the Ap/Ai/Ax
// arrays between the application and the library in O(1), without copying.

// ExtractTuples returns the stored entries in row-major order as parallel
// coordinate slices. It costs Ω(e) — the paper contrasts this with the
// O(1) export below.
func (a *Matrix[T]) ExtractTuples() (is, js []int, xs []T) {
	c := a.materializedCSR()
	n := c.nvals()
	is = make([]int, 0, n)
	js = make([]int, 0, n)
	xs = make([]T, 0, n)
	for k := 0; k < c.nvecs(); k++ {
		row := c.majorOf(k)
		ci, cx := c.vec(k)
		for t := range ci {
			is = append(is, row)
			js = append(js, ci[t])
			xs = append(xs, cx[t])
		}
	}
	return is, js, xs
}

// ImportCSR wraps caller-provided CSR arrays as a Matrix in O(1) time:
// ownership of p, i and x moves to the library ("move constructor", §IV).
// p must have length nrows+1 with p[0]==0 and be non-decreasing; the column
// indices of each row must be sorted and in range. Validation is O(e); pass
// trusted=true to skip it and make the import truly O(1).
func ImportCSR[T any](nrows, ncols int, p, i []int, x []T, trusted bool) (*Matrix[T], error) {
	if nrows < 0 || ncols < 0 || len(p) != nrows+1 || len(i) != len(x) {
		return nil, opErrorf("import", ErrInvalidValue, "CSR shape: dims %d×%d, len(p)=%d, %d indices, %d values", nrows, ncols, len(p), len(i), len(x))
	}
	if !trusted {
		if err := validateCS(nrows, ncols, p, nil, i); err != nil {
			return nil, err
		}
	}
	return &Matrix[T]{
		nr: nrows, nc: ncols, format: FormatCSR,
		csr: &cs[T]{nmajor: nrows, nminor: ncols, p: p, i: i, x: x},
	}, nil
}

// ImportHyperCSR wraps hypersparse CSR arrays in O(1): h lists the
// non-empty rows ascending, p has length len(h)+1.
func ImportHyperCSR[T any](nrows, ncols int, p, h, i []int, x []T, trusted bool) (*Matrix[T], error) {
	if nrows < 0 || ncols < 0 || len(p) != len(h)+1 || len(i) != len(x) {
		return nil, opErrorf("import", ErrInvalidValue, "hyper-CSR shape: dims %d×%d, len(p)=%d, len(h)=%d, %d indices, %d values", nrows, ncols, len(p), len(h), len(i), len(x))
	}
	if !trusted {
		if err := validateCS(nrows, ncols, p, h, i); err != nil {
			return nil, err
		}
	}
	return &Matrix[T]{
		nr: nrows, nc: ncols, format: FormatHyper,
		csr: &cs[T]{nmajor: nrows, nminor: ncols, p: p, h: h, i: i, x: x},
	}, nil
}

// ImportCSC wraps CSC arrays (p over columns, i holding row indices). The
// library's internal layout is row-major, so — exactly as §IV anticipates
// for implementations whose opaque format differs — the data is transposed
// in O(e) rather than adopted in O(1). The CSC arrays are retained as the
// column-cache so a subsequent ExportCSC is O(1).
func ImportCSC[T any](nrows, ncols int, p, i []int, x []T, trusted bool) (*Matrix[T], error) {
	if nrows < 0 || ncols < 0 || len(p) != ncols+1 || len(i) != len(x) {
		return nil, opErrorf("import", ErrInvalidValue, "CSC shape: dims %d×%d, len(p)=%d, %d indices, %d values", nrows, ncols, len(p), len(i), len(x))
	}
	if !trusted {
		if err := validateCS(ncols, nrows, p, nil, i); err != nil {
			return nil, err
		}
	}
	csc := &cs[T]{nmajor: ncols, nminor: nrows, p: p, i: i, x: x}
	return &Matrix[T]{
		nr: nrows, nc: ncols, format: FormatCSR,
		csr: transposeCS(csc), csc: csc,
	}, nil
}

// ExportCSR removes the CSR arrays from the matrix and hands ownership to
// the caller in O(1) (after pending work completes). The matrix is emptied:
// after an export, re-importing the same arrays reconstructs it perfectly
// (§IV). Hypersparse matrices are expanded to standard form first (O(n)).
func (a *Matrix[T]) ExportCSR() (nrows, ncols int, p, i []int, x []T) {
	c := a.materializedCSR()
	if c.h != nil {
		c = hyperToStandard(c)
	}
	nrows, ncols, p, i, x = a.nr, a.nc, c.p, c.i, c.x
	a.Clear()
	return
}

// ExportHyperCSR removes the hypersparse CSR arrays in O(1). Standard
// matrices are compacted first (O(n)).
func (a *Matrix[T]) ExportHyperCSR() (nrows, ncols int, p, h, i []int, x []T) {
	c := a.materializedCSR()
	if c.h == nil {
		c = standardToHyper(c)
	}
	nrows, ncols, p, h, i, x = a.nr, a.nc, c.p, c.h, c.i, c.x
	a.Clear()
	return
}

// ExportCSC removes CSC arrays from the matrix; O(1) when the column cache
// is already materialized, O(e) otherwise.
func (a *Matrix[T]) ExportCSC() (nrows, ncols int, p, i []int, x []T) {
	c := a.materializedCSC()
	if c.h != nil {
		c = hyperToStandard(c)
	}
	nrows, ncols, p, i, x = a.nr, a.nc, c.p, c.i, c.x
	a.Clear()
	return
}

// validateCS checks pointer monotonicity and sorted, in-range indices.
func validateCS(nmajor, nminor int, p, h, i []int) error {
	if len(p) == 0 || p[0] != 0 || p[len(p)-1] != len(i) {
		return opErrorf("import", ErrInvalidValue, "malformed pointer array")
	}
	for k := 0; k+1 < len(p); k++ {
		if p[k+1] < p[k] {
			return opErrorf("import", ErrInvalidValue, "pointer array decreases at %d", k)
		}
		prev := -1
		for t := p[k]; t < p[k+1]; t++ {
			if i[t] <= prev || i[t] >= nminor {
				return opErrorf("import", ErrInvalidValue, "index %d out of order or out of range %d", i[t], nminor)
			}
			prev = i[t]
		}
	}
	prev := -1
	for _, hj := range h {
		if hj <= prev || hj >= nmajor {
			return opErrorf("import", ErrInvalidValue, "hyper list entry %d out of order or out of range %d", hj, nmajor)
		}
		prev = hj
	}
	return nil
}
