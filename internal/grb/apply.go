package grb

// Apply and Select of Table I (Select is the GrB_select of the v1.3+ API,
// needed by the triangle-counting and k-truss algorithms for tril/triu and
// value thresholding).

// ApplyMatrix computes C⟨M⟩ ⊙= f(A) element-wise.
func ApplyMatrix[A, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], f UnaryOp[A, T], a *Matrix[A], desc *Descriptor) error {
	if c == nil || a == nil || f == nil {
		return opError("apply", ErrUninitialized)
	}
	return applyIdxMatrix(c, mask, accum, func(x A, _, _ int) T { return f(x) }, a, desc)
}

// ApplyIndexMatrix computes C⟨M⟩ ⊙= f(A(i,j), i, j).
func ApplyIndexMatrix[A, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], f IndexUnaryOp[A, T], a *Matrix[A], desc *Descriptor) error {
	if c == nil || a == nil || f == nil {
		return opError("apply", ErrUninitialized)
	}
	return applyIdxMatrix(c, mask, accum, f, a, desc)
}

func applyIdxMatrix[A, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], f IndexUnaryOp[A, T], a *Matrix[A], desc *Descriptor) error {
	d := desc.get()
	ar, ac := a.nr, a.nc
	if d.TranA {
		ar, ac = ac, ar
	}
	if c.nr != ar || c.nc != ac {
		return opErrorf("apply", ErrDimensionMismatch, "C is %d×%d, A is %d×%d", c.nr, c.nc, ar, ac)
	}
	ca := orientedCSR(a, d.TranA)
	z := &cs[T]{nmajor: ar, nminor: ac}
	z.p = append([]int(nil), ca.p...)
	if ca.h != nil {
		z.h = append([]int(nil), ca.h...)
	}
	z.i = append([]int(nil), ca.i...)
	z.x = make([]T, len(ca.x))
	parallelRanges(ca.nvecs(), 64, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			row := ca.majorOf(k)
			for t := ca.p[k]; t < ca.p[k+1]; t++ {
				z.x[t] = f(ca.x[t], row, ca.i[t])
			}
		}
	})
	return writeMatrixResult(c, mask, accum, z, d)
}

// ApplyVector computes w⟨m⟩ ⊙= f(u) element-wise.
func ApplyVector[A, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], f UnaryOp[A, T], u *Vector[A], desc *Descriptor) error {
	if w == nil || u == nil || f == nil {
		return opError("apply", ErrUninitialized)
	}
	return ApplyIndexVector(w, mask, accum, func(x A, _, _ int) T { return f(x) }, u, desc)
}

// ApplyIndexVector computes w⟨m⟩ ⊙= f(u(i), i, 0).
func ApplyIndexVector[A, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], f IndexUnaryOp[A, T], u *Vector[A], desc *Descriptor) error {
	if w == nil || u == nil || f == nil {
		return opError("apply", ErrUninitialized)
	}
	if w.n != u.n {
		return opErrorf("apply", ErrDimensionMismatch, "w is %d, u is %d", w.n, u.n)
	}
	d := desc.get()
	ui, ux := u.materialized()
	zi := append([]int(nil), ui...)
	zx := make([]T, len(ux))
	for k := range ux {
		zx[k] = f(ux[k], ui[k], 0)
	}
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// SelectMatrix computes C⟨M⟩ ⊙= A(keep), retaining only the entries for
// which keep(a, i, j) is true. tril, triu, value filters and diagonal
// extraction are all instances.
func SelectMatrix[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], keep IndexUnaryOp[T, bool], a *Matrix[T], desc *Descriptor) error {
	if c == nil || a == nil || keep == nil {
		return opError("select", ErrUninitialized)
	}
	d := desc.get()
	ar, ac := a.nr, a.nc
	if d.TranA {
		ar, ac = ac, ar
	}
	if c.nr != ar || c.nc != ac {
		return opErrorf("select", ErrDimensionMismatch, "C is %d×%d, A is %d×%d", c.nr, c.nc, ar, ac)
	}
	ca := orientedCSR(a, d.TranA)
	staging := newRowSlices[T](ca.nvecs())
	parallelRanges(ca.nvecs(), 64, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			row := ca.majorOf(k)
			ci, cx := ca.vec(k)
			for t := range ci {
				if keep(cx[t], row, ci[t]) {
					staging.idx[k] = append(staging.idx[k], ci[t])
					staging.val[k] = append(staging.val[k], cx[t])
				}
			}
		}
	})
	var z *cs[T]
	if ca.h != nil {
		z = staging.stitch(ar, ac, ca.h)
	} else {
		z = staging.stitch(ar, ac, nil)
	}
	return writeMatrixResult(c, mask, accum, z, d)
}

// SelectVector computes w⟨m⟩ ⊙= u(keep).
func SelectVector[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], keep IndexUnaryOp[T, bool], u *Vector[T], desc *Descriptor) error {
	if w == nil || u == nil || keep == nil {
		return opError("select", ErrUninitialized)
	}
	if w.n != u.n {
		return opErrorf("select", ErrDimensionMismatch, "w is %d, u is %d", w.n, u.n)
	}
	d := desc.get()
	ui, ux := u.materialized()
	var zi []int
	var zx []T
	for k := range ui {
		if keep(ux[k], ui[k], 0) {
			zi = append(zi, ui[k])
			zx = append(zx, ux[k])
		}
	}
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// Common select predicates.

// Tril keeps entries on or below the k-th diagonal (j-i <= k).
func Tril[T any](k int) IndexUnaryOp[T, bool] {
	return func(_ T, i, j int) bool { return j-i <= k }
}

// Triu keeps entries on or above the k-th diagonal (j-i >= k).
func Triu[T any](k int) IndexUnaryOp[T, bool] {
	return func(_ T, i, j int) bool { return j-i >= k }
}

// Diag keeps entries exactly on the k-th diagonal.
func Diag[T any](k int) IndexUnaryOp[T, bool] {
	return func(_ T, i, j int) bool { return j-i == k }
}

// OffDiag keeps entries off the main diagonal.
func OffDiag[T any]() IndexUnaryOp[T, bool] {
	return func(_ T, i, j int) bool { return i != j }
}

// ValueGT keeps entries strictly greater than the threshold.
func ValueGT[T Number](threshold T) IndexUnaryOp[T, bool] {
	return func(x T, _, _ int) bool { return x > threshold }
}

// ValueGE keeps entries greater than or equal to the threshold.
func ValueGE[T Number](threshold T) IndexUnaryOp[T, bool] {
	return func(x T, _, _ int) bool { return x >= threshold }
}

// ValueLT keeps entries strictly less than the threshold.
func ValueLT[T Number](threshold T) IndexUnaryOp[T, bool] {
	return func(x T, _, _ int) bool { return x < threshold }
}

// ValueNE keeps entries different from the given value.
func ValueNE[T comparable](v T) IndexUnaryOp[T, bool] {
	return func(x T, _, _ int) bool { return x != v }
}

// ValueEQ keeps entries equal to the given value.
func ValueEQ[T comparable](v T) IndexUnaryOp[T, bool] {
	return func(x T, _, _ int) bool { return x == v }
}
