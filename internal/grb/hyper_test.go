package grb_test

// Hypersparse conformance: every major operation must produce identical
// results whether its operands are stored standard or hypersparse.

import (
	"fmt"
	"math/rand"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/grb/ref"
)

// hyperDup returns a copy of a forced into hypersparse storage.
func hyperDup(a *grb.Matrix[int64]) *grb.Matrix[int64] {
	b := a.Dup()
	b.SetFormat(grb.FormatHyper)
	return b
}

func TestHypersparseConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 6; trial++ {
		m := 5 + rng.Intn(25)
		k := 5 + rng.Intn(25)
		n := 5 + rng.Intn(25)
		a := randMatrix(rng, m, k, 0.15)
		b := randMatrix(rng, k, n, 0.15)
		b2 := randMatrix(rng, m, k, 0.15)
		ah, bh, b2h := hyperDup(a), hyperDup(b), hyperDup(b2)

		t.Run(fmt.Sprintf("t%d/mxm", trial), func(t *testing.T) {
			for _, method := range []grb.MxMMethod{grb.MxMGustavson, grb.MxMDot, grb.MxMHeap} {
				c := grb.MustMatrix[int64](m, n)
				d := grb.Descriptor{Method: method}
				if err := grb.MxM[int64, int64, int64, bool](c, nil, nil, grb.PlusTimes[int64](), ah, bh, &d); err != nil {
					t.Fatal(err)
				}
				want := ref.NewMat[int64](m, n)
				ref.MxM[int64, int64, int64, bool](want, nil, nil, grb.PlusTimes[int64](), ref.FromMatrix(a), ref.FromMatrix(b), ref.Desc{})
				eqMat(t, c, want)
			}
		})
		t.Run(fmt.Sprintf("t%d/ewise", trial), func(t *testing.T) {
			c := grb.MustMatrix[int64](m, k)
			if err := grb.EWiseAddMatrix[int64, bool](c, nil, nil, grb.Plus[int64](), ah, b2h, nil); err != nil {
				t.Fatal(err)
			}
			want := ref.NewMat[int64](m, k)
			ref.EWiseAddMat[int64, bool](want, nil, nil, grb.Plus[int64](), ref.FromMatrix(a), ref.FromMatrix(b2), ref.Desc{})
			eqMat(t, c, want)

			// Mixed: one hyper, one standard.
			c2 := grb.MustMatrix[int64](m, k)
			if err := grb.EWiseMultMatrix[int64, int64, int64, bool](c2, nil, nil, grb.Times[int64](), ah, b2, nil); err != nil {
				t.Fatal(err)
			}
			want2 := ref.NewMat[int64](m, k)
			ref.EWiseMultMat[int64, int64, int64, bool](want2, nil, nil, grb.Times[int64](), ref.FromMatrix(a), ref.FromMatrix(b2), ref.Desc{})
			eqMat(t, c2, want2)
		})
		t.Run(fmt.Sprintf("t%d/transpose-select-apply", trial), func(t *testing.T) {
			c := grb.MustMatrix[int64](k, m)
			if err := grb.Transpose[int64, bool](c, nil, nil, ah, nil); err != nil {
				t.Fatal(err)
			}
			want := ref.NewMat[int64](k, m)
			ref.Transpose[int64, bool](want, nil, nil, ref.FromMatrix(a), ref.Desc{})
			eqMat(t, c, want)

			s := grb.MustMatrix[int64](m, k)
			if err := grb.SelectMatrix[int64, bool](s, nil, nil, grb.Tril[int64](0), ah, nil); err != nil {
				t.Fatal(err)
			}
			wantS := ref.NewMat[int64](m, k)
			ref.Select[int64, bool](wantS, nil, nil, grb.Tril[int64](0), ref.FromMatrix(a), ref.Desc{})
			eqMat(t, s, wantS)

			ap := grb.MustMatrix[int64](m, k)
			if err := grb.ApplyMatrix[int64, int64, bool](ap, nil, nil, func(x int64) int64 { return -x }, ah, nil); err != nil {
				t.Fatal(err)
			}
			wantA := ref.NewMat[int64](m, k)
			ref.Apply[int64, int64, bool](wantA, nil, nil, func(x int64) int64 { return -x }, ref.FromMatrix(a), ref.Desc{})
			eqMat(t, ap, wantA)
		})
		t.Run(fmt.Sprintf("t%d/vxm", trial), func(t *testing.T) {
			u := randVector(rng, m, 0.4)
			for _, dir := range []grb.Direction{grb.DirPush, grb.DirPull} {
				w := grb.MustVector[int64](k)
				d := grb.Descriptor{Dir: dir}
				if err := grb.VxM[int64, int64, int64, bool](w, nil, nil, grb.PlusTimes[int64](), u, ah, &d); err != nil {
					t.Fatal(err)
				}
				want := ref.NewVec[int64](k)
				ref.VxM[int64, int64, int64, bool](want, nil, nil, grb.PlusTimes[int64](), ref.FromVector(u), ref.FromMatrix(a), ref.Desc{})
				eqVec(t, w, want)
			}
		})
		t.Run(fmt.Sprintf("t%d/reduce", trial), func(t *testing.T) {
			w := grb.MustVector[int64](m)
			if err := grb.ReduceMatrixToVector[int64, bool](w, nil, nil, grb.PlusMonoid[int64](), ah, nil); err != nil {
				t.Fatal(err)
			}
			want := ref.NewVec[int64](m)
			ref.ReduceMatToVec[int64, bool](want, nil, nil, grb.PlusMonoid[int64](), ref.FromMatrix(a), ref.Desc{})
			eqVec(t, w, want)
		})
		t.Run(fmt.Sprintf("t%d/masked-writeback", trial), func(t *testing.T) {
			// Write rule with hyper old value and hyper z.
			cInit := randMatrix(rng, m, k, 0.1)
			mask := randMatrix(rng, m, k, 0.3)
			c := hyperDup(cInit)
			if err := grb.ApplyMatrix(c, mask, grb.Plus[int64](), func(x int64) int64 { return 10 * x }, ah, &grb.Descriptor{Replace: true}); err != nil {
				t.Fatal(err)
			}
			want := ref.FromMatrix(cInit)
			ref.Apply(want, ref.FromMatrix(mask), grb.Plus[int64](), func(x int64) int64 { return 10 * x }, ref.FromMatrix(a), ref.Desc{Replace: true})
			eqMat(t, c, want)
		})
	}
}

func TestHypersparseExtractTuplesOrder(t *testing.T) {
	a := grb.MustMatrix[int64](1<<30, 1<<30)
	a.SetFormat(grb.FormatHyper)
	_ = a.SetElement(1<<29, 3, 1)
	_ = a.SetElement(5, 1<<20, 2)
	_ = a.SetElement(5, 2, 3)
	is, js, xs := a.ExtractTuples()
	if len(is) != 3 {
		t.Fatalf("nvals=%d", len(is))
	}
	if is[0] != 5 || js[0] != 2 || xs[0] != 3 {
		t.Fatal("row-major order broken")
	}
	if is[2] != 1<<29 || js[2] != 3 {
		t.Fatal("large row misplaced")
	}
}
