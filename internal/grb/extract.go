package grb

import "sort"

// Extract of Table I: C⟨M⟩ ⊙= A(I,J), w⟨m⟩ ⊙= u(I), and column
// extraction. A nil index slice plays the role of GrB_ALL.

// All is the nil index list standing for "all indices, in order".
var All []int = nil

// resolveIndices returns the index list, expanding All to 0..n-1 (lazily:
// a nil return means identity of length n).
func checkIndices(op string, idx []int, n int) error {
	for _, i := range idx {
		if i < 0 || i >= n {
			return opErrorf(op, ErrIndexOutOfBounds, "index %d, bound %d", i, n)
		}
	}
	return nil
}

// ExtractMatrix computes C⟨M⟩ ⊙= A(I,J): C(r,c) = A(I[r], J[c]). Nil I or
// J means all rows/columns. Duplicate indices are permitted.
func ExtractMatrix[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], a *Matrix[T], rows, cols []int, desc *Descriptor) error {
	if c == nil || a == nil {
		return opError("extract", ErrUninitialized)
	}
	d := desc.get()
	ar, ac := a.nr, a.nc
	if d.TranA {
		ar, ac = ac, ar
	}
	if err := checkIndices("extract", rows, ar); err != nil {
		return err
	}
	if err := checkIndices("extract", cols, ac); err != nil {
		return err
	}
	onr, onc := len(rows), len(cols)
	if rows == nil {
		onr = ar
	}
	if cols == nil {
		onc = ac
	}
	if c.nr != onr || c.nc != onc {
		return opErrorf("extract", ErrDimensionMismatch, "C is %d×%d, region is %d×%d", c.nr, c.nc, onr, onc)
	}
	ca := orientedCSR(a, d.TranA)

	// Map each source column to its (possibly several) output positions.
	var colTargets map[int][]int
	if cols != nil {
		colTargets = make(map[int][]int, len(cols))
		for t, j := range cols {
			colTargets[j] = append(colTargets[j], t)
		}
	}

	staging := newRowSlices[T](onr)
	gatherRow := func(out, src int) {
		si, sx := rowView(ca, src)
		if cols == nil {
			staging.idx[out] = append(staging.idx[out], si...)
			staging.val[out] = append(staging.val[out], sx...)
			return
		}
		type ent struct {
			j int
			x T
		}
		var tmp []ent
		for t := range si {
			for _, tgt := range colTargets[si[t]] {
				tmp = append(tmp, ent{tgt, sx[t]})
			}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].j < tmp[b].j })
		for _, e := range tmp {
			staging.idx[out] = append(staging.idx[out], e.j)
			staging.val[out] = append(staging.val[out], e.x)
		}
	}
	parallelRanges(onr, 64, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			src := r
			if rows != nil {
				src = rows[r]
			}
			gatherRow(r, src)
		}
	})
	z := staging.stitch(onr, onc, nil)
	return writeMatrixResult(c, mask, accum, z, d)
}

// ExtractVector computes w⟨m⟩ ⊙= u(I).
func ExtractVector[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], u *Vector[T], idx []int, desc *Descriptor) error {
	if w == nil || u == nil {
		return opError("extract", ErrUninitialized)
	}
	if err := checkIndices("extract", idx, u.n); err != nil {
		return err
	}
	on := len(idx)
	if idx == nil {
		on = u.n
	}
	if w.n != on {
		return opErrorf("extract", ErrDimensionMismatch, "w is %d, region is %d", w.n, on)
	}
	d := desc.get()
	ui, ux := u.materialized()
	var zi []int
	var zx []T
	if idx == nil {
		zi = append(zi, ui...)
		zx = append(zx, ux...)
	} else {
		type ent struct {
			i int
			x T
		}
		var tmp []ent
		for t, src := range idx {
			pos := sort.SearchInts(ui, src)
			if pos < len(ui) && ui[pos] == src {
				tmp = append(tmp, ent{t, ux[pos]})
			}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].i < tmp[b].i })
		for _, e := range tmp {
			zi = append(zi, e.i)
			zx = append(zx, e.x)
		}
	}
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// ExtractMatrixCol computes w⟨m⟩ ⊙= A(I,j), one column of A (or one row
// with TranA).
func ExtractMatrixCol[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], a *Matrix[T], rows []int, j int, desc *Descriptor) error {
	if w == nil || a == nil {
		return opError("extract", ErrUninitialized)
	}
	d := desc.get()
	// Column extraction reads A in column-major order; with TranA it is a
	// row of A, read in row-major order.
	var col *cs[T]
	var dim int
	if d.TranA {
		col = a.materializedCSR()
		dim = a.nc
	} else {
		col = a.materializedCSC()
		dim = a.nr
	}
	if j < 0 || j >= col.nmajor {
		return opErrorf("extract", ErrIndexOutOfBounds, "column %d, bound %d", j, col.nmajor)
	}
	if err := checkIndices("extract", rows, dim); err != nil {
		return err
	}
	on := len(rows)
	if rows == nil {
		on = dim
	}
	if w.n != on {
		return opErrorf("extract", ErrDimensionMismatch, "w is %d, region is %d", w.n, on)
	}
	ci, cx := rowView(col, j)
	var zi []int
	var zx []T
	if rows == nil {
		zi = append(zi, ci...)
		zx = append(zx, cx...)
	} else {
		type ent struct {
			i int
			x T
		}
		var tmp []ent
		for t, src := range rows {
			pos := sort.SearchInts(ci, src)
			if pos < len(ci) && ci[pos] == src {
				tmp = append(tmp, ent{t, cx[pos]})
			}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].i < tmp[b].i })
		for _, e := range tmp {
			zi = append(zi, e.i)
			zx = append(zx, e.x)
		}
	}
	// The write rule here treats w as a plain vector result.
	dd := d
	dd.TranA = false
	return writeVectorResult(w, mask, accum, zi, zx, dd)
}
