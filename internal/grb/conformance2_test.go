package grb_test

// Second conformance wave: masked and accumulated variants of extract,
// assign and reduce, which the first wave covered only unmasked.

import (
	"fmt"
	"math/rand"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/grb/ref"
)

func TestConformanceMaskedExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.Intn(25)
		n := 2 + rng.Intn(25)
		a := randMatrix(rng, m, n, 0.3)
		ni, nj := 1+rng.Intn(m), 1+rng.Intn(n)
		rows := make([]int, ni)
		cols := make([]int, nj)
		for k := range rows {
			rows[k] = rng.Intn(m)
		}
		for k := range cols {
			cols[k] = rng.Intn(n)
		}
		mask := randMatrix(rng, ni, nj, 0.4)
		cInit := randMatrix(rng, ni, nj, 0.2)
		for _, mc := range maskCases() {
			for _, withAccum := range []bool{false, true} {
				t.Run(fmt.Sprintf("t%d/%s/accum=%v", trial, mc.name, withAccum), func(t *testing.T) {
					var accum grb.BinaryOp[int64, int64, int64]
					if withAccum {
						accum = grb.Plus[int64]()
					}
					var gm *grb.Matrix[int64]
					var rm *ref.Mat[int64]
					if mc.useMask {
						gm = mask
						rm = ref.FromMatrix(mask)
					}
					d := mc.desc
					c := cInit.Dup()
					if err := grb.ExtractMatrix(c, gm, accum, a, rows, cols, &d); err != nil {
						t.Fatal(err)
					}
					want := ref.FromMatrix(cInit)
					ref.Extract(want, rm, accum, ref.FromMatrix(a), rows, cols, refDesc(d))
					eqMat(t, c, want)
				})
			}
		}
	}
}

func TestConformanceMaskedAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		m := 3 + rng.Intn(20)
		n := 3 + rng.Intn(20)
		c0 := randMatrix(rng, m, n, 0.25)
		urows := uniqueIdx(rng, m, 1+rng.Intn(m))
		ucols := uniqueIdx(rng, n, 1+rng.Intn(n))
		sub := randMatrix(rng, len(urows), len(ucols), 0.4)
		mask := randMatrix(rng, m, n, 0.4)
		for _, mc := range maskCases() {
			if mc.desc.Replace {
				// GrB_assign's Replace interacts with the region in ways
				// the C spec revised across versions; this library
				// documents region-limited Replace, matching the mimic.
				continue
			}
			for _, withAccum := range []bool{false, true} {
				t.Run(fmt.Sprintf("t%d/%s/accum=%v", trial, mc.name, withAccum), func(t *testing.T) {
					var accum grb.BinaryOp[int64, int64, int64]
					if withAccum {
						accum = grb.Plus[int64]()
					}
					var gm *grb.Matrix[int64]
					var rm *ref.Mat[int64]
					if mc.useMask {
						gm = mask
						rm = ref.FromMatrix(mask)
					}
					d := mc.desc
					c := c0.Dup()
					if err := grb.AssignMatrix(c, gm, accum, sub, urows, ucols, &d); err != nil {
						t.Fatal(err)
					}
					want := ref.FromMatrix(c0)
					ref.Assign(want, rm, accum, ref.FromMatrix(sub), urows, ucols, refDesc(d))
					eqMat(t, c, want)
				})
			}
		}
	}
}

func TestConformanceAssignReplaceInRegion(t *testing.T) {
	// Replace semantics restricted to the region: admitted-but-absent
	// positions are cleared, outside-region entries survive.
	c := grb.MustMatrix[int64](3, 3)
	_ = c.SetElement(0, 0, 1) // inside region, not admitted by mask
	_ = c.SetElement(2, 2, 9) // outside region
	sub := grb.MustMatrix[int64](2, 2)
	_ = sub.SetElement(0, 1, 5)
	mask := grb.MustMatrix[int64](3, 3)
	_ = mask.SetElement(0, 1, 1)
	d := &grb.Descriptor{Replace: true}
	if err := grb.AssignMatrix(c, mask, nil, sub, []int{0, 1}, []int{0, 1}, d); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetElement(0, 0); err == nil {
		t.Fatal("in-region non-admitted entry must be cleared under Replace")
	}
	if v, _ := c.GetElement(0, 1); v != 5 {
		t.Fatal("assigned value missing")
	}
	if v, _ := c.GetElement(2, 2); v != 9 {
		t.Fatal("outside-region entry must survive")
	}
}

func TestConformanceMaskedReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.Intn(25)
		n := 1 + rng.Intn(25)
		a := randMatrix(rng, m, n, 0.3)
		mask := randVector(rng, m, 0.5)
		wInit := randVector(rng, m, 0.3)
		for _, mc := range maskCases() {
			for _, withAccum := range []bool{false, true} {
				t.Run(fmt.Sprintf("t%d/%s/accum=%v", trial, mc.name, withAccum), func(t *testing.T) {
					var accum grb.BinaryOp[int64, int64, int64]
					if withAccum {
						accum = grb.MinOp[int64]()
					}
					var gm *grb.Vector[int64]
					var rm *ref.Vec[int64]
					if mc.useMask {
						gm = mask
						rm = ref.FromVector(mask)
					}
					d := mc.desc
					w := wInit.Dup()
					if err := grb.ReduceMatrixToVector(w, gm, accum, grb.PlusMonoid[int64](), a, &d); err != nil {
						t.Fatal(err)
					}
					want := ref.FromVector(wInit)
					ref.ReduceMatToVec(want, rm, accum, grb.PlusMonoid[int64](), ref.FromMatrix(a), refDesc(d))
					eqVec(t, w, want)
				})
			}
		}
	}
}

func TestConformanceSelectWithAccum(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, n := 20, 25
	a := randMatrix(rng, m, n, 0.3)
	cInit := randMatrix(rng, m, n, 0.2)
	keep := grb.ValueGT(int64(0))
	c := cInit.Dup()
	if err := grb.SelectMatrix[int64, bool](c, nil, grb.Plus[int64](), keep, a, nil); err != nil {
		t.Fatal(err)
	}
	want := ref.FromMatrix(cInit)
	ref.Select[int64, bool](want, nil, grb.Plus[int64](), keep, ref.FromMatrix(a), ref.Desc{})
	eqMat(t, c, want)
}

func TestConformanceAssignScalarMatrixMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 6; trial++ {
		m := 2 + rng.Intn(20)
		n := 2 + rng.Intn(20)
		c0 := randMatrix(rng, m, n, 0.25)
		mask := randMatrix(rng, m, n, 0.4)
		for _, withAccum := range []bool{false, true} {
			var accum grb.BinaryOp[int64, int64, int64]
			if withAccum {
				accum = grb.Plus[int64]()
			}
			c := c0.Dup()
			if err := grb.AssignMatrixScalar(c, mask, accum, int64(7), grb.All, grb.All, nil); err != nil {
				t.Fatal(err)
			}
			// Mimic: admitted positions get 7 (accumulated where present).
			want := ref.FromMatrix(c0)
			mm := ref.FromMatrix(mask)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					if !mm.Set[i][j] {
						continue
					}
					if want.Set[i][j] && accum != nil {
						want.Val[i][j] = accum(want.Val[i][j], 7)
					} else {
						want.Val[i][j] = 7
						want.Set[i][j] = true
					}
				}
			}
			eqMat(t, c, want)
		}
	}
}
