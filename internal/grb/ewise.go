package grb

// Element-wise operations of Table I: eWiseAdd (set union of patterns) and
// eWiseMult (set intersection).

// mergeUnion merges two sorted sparse rows with union semantics.
func mergeUnion[A, B, C any](ai []int, ax []A, bi []int, bx []B, add BinaryOp[A, B, C], onlyA func(A) C, onlyB func(B) C, oi *[]int, ox *[]C) {
	s, k := 0, 0
	for s < len(ai) || k < len(bi) {
		switch {
		case k >= len(bi) || (s < len(ai) && ai[s] < bi[k]):
			*oi = append(*oi, ai[s])
			*ox = append(*ox, onlyA(ax[s]))
			s++
		case s >= len(ai) || bi[k] < ai[s]:
			*oi = append(*oi, bi[k])
			*ox = append(*ox, onlyB(bx[k]))
			k++
		default:
			*oi = append(*oi, ai[s])
			*ox = append(*ox, add(ax[s], bx[k]))
			s++
			k++
		}
	}
}

// mergeIntersect merges two sorted sparse rows with intersection semantics.
func mergeIntersect[A, B, C any](ai []int, ax []A, bi []int, bx []B, mul BinaryOp[A, B, C], oi *[]int, ox *[]C) {
	s, k := 0, 0
	for s < len(ai) && k < len(bi) {
		switch {
		case ai[s] < bi[k]:
			s++
		case bi[k] < ai[s]:
			k++
		default:
			*oi = append(*oi, ai[s])
			*ox = append(*ox, mul(ax[s], bx[k]))
			s++
			k++
		}
	}
}

// rowView returns the sorted entries of major index r, empty if none.
func rowView[T any](c *cs[T], r int) ([]int, []T) {
	k, ok := c.findMajor(r)
	if !ok {
		return nil, nil
	}
	return c.vec(k)
}

// orientedCSR returns the row-major view of a, or the row-major view of aᵀ
// when tran is set (which is a's column-major storage).
func orientedCSR[T any](a *Matrix[T], tran bool) *cs[T] {
	if tran {
		return a.materializedCSC()
	}
	return a.materializedCSR()
}

// unionRows returns the sorted union of the stored major indices of two
// structures (used for hypersparse outputs).
func unionRows[A, B any](a *cs[A], b *cs[B]) []int {
	out := make([]int, 0, a.nvecs()+b.nvecs())
	s, k := 0, 0
	for s < a.nvecs() || k < b.nvecs() {
		switch {
		case k >= b.nvecs() || (s < a.nvecs() && a.majorOf(s) < b.majorOf(k)):
			out = append(out, a.majorOf(s))
			s++
		case s >= a.nvecs() || b.majorOf(k) < a.majorOf(s):
			out = append(out, b.majorOf(k))
			k++
		default:
			out = append(out, a.majorOf(s))
			s++
			k++
		}
	}
	return out
}

// eWiseDims validates operand dimensions under the descriptor and returns
// the output shape. op names the public entry point for error reports.
func eWiseDims[A, B any](op string, a *Matrix[A], b *Matrix[B], d descValues) (nr, nc int, err error) {
	ar, ac := a.nr, a.nc
	if d.TranA {
		ar, ac = ac, ar
	}
	br, bc := b.nr, b.nc
	if d.TranB {
		br, bc = bc, br
	}
	if ar != br || ac != bc {
		return 0, 0, opErrorf(op, ErrDimensionMismatch, "A is %d×%d, B is %d×%d", ar, ac, br, bc)
	}
	return ar, ac, nil
}

// EWiseAddMatrix computes C⟨M⟩ ⊙= A ⊕ B over the union of patterns: where
// only one operand has an entry, that value passes through unchanged.
func EWiseAddMatrix[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], add BinaryOp[T, T, T], a, b *Matrix[T], desc *Descriptor) error {
	if c == nil || a == nil || b == nil || add == nil {
		return opError("eWiseAdd", ErrUninitialized)
	}
	d := desc.get()
	nr, nc, err := eWiseDims("eWiseAdd", a, b, d)
	if err != nil {
		return err
	}
	if c.nr != nr || c.nc != nc {
		return opErrorf("eWiseAdd", ErrDimensionMismatch, "C is %d×%d, want %d×%d", c.nr, c.nc, nr, nc)
	}
	ca := orientedCSR(a, d.TranA)
	cb := orientedCSR(b, d.TranB)
	id := Identity[T]()
	z := ewiseCS(ca, cb, nr, nc, func(ai []int, ax []T, bi []int, bx []T, oi *[]int, ox *[]T) {
		mergeUnion(ai, ax, bi, bx, add, id, id, oi, ox)
	})
	return writeMatrixResult(c, mask, accum, z, d)
}

// EWiseMultMatrix computes C⟨M⟩ ⊙= A ⊗ B over the intersection of
// patterns.
func EWiseMultMatrix[A, B, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], mul BinaryOp[A, B, T], a *Matrix[A], b *Matrix[B], desc *Descriptor) error {
	if c == nil || a == nil || b == nil || mul == nil {
		return opError("eWiseMult", ErrUninitialized)
	}
	d := desc.get()
	nr, nc, err := eWiseDims("eWiseMult", a, b, d)
	if err != nil {
		return err
	}
	if c.nr != nr || c.nc != nc {
		return opErrorf("eWiseMult", ErrDimensionMismatch, "C is %d×%d, want %d×%d", c.nr, c.nc, nr, nc)
	}
	ca := orientedCSR(a, d.TranA)
	cb := orientedCSR(b, d.TranB)
	z := ewiseCS2(ca, cb, nr, nc, func(ai []int, ax []A, bi []int, bx []B, oi *[]int, ox *[]T) {
		mergeIntersect(ai, ax, bi, bx, mul, oi, ox)
	})
	return writeMatrixResult(c, mask, accum, z, d)
}

// ewiseCS runs a row-merge kernel over same-typed operands in parallel.
func ewiseCS[T any](ca, cb *cs[T], nr, nc int, merge func(ai []int, ax []T, bi []int, bx []T, oi *[]int, ox *[]T)) *cs[T] {
	return ewiseCS2[T, T, T](ca, cb, nr, nc, merge)
}

// ewiseCS2 is the mixed-type general form.
func ewiseCS2[A, B, T any](ca *cs[A], cb *cs[B], nr, nc int, merge func(ai []int, ax []A, bi []int, bx []B, oi *[]int, ox *[]T)) *cs[T] {
	hyper := ca.h != nil || cb.h != nil
	if hyper {
		rows := unionRows(ca, cb)
		staging := newRowSlices[T](len(rows))
		parallelRanges(len(rows), 64, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				r := rows[k]
				ai, ax := rowView(ca, r)
				bi, bx := rowView(cb, r)
				merge(ai, ax, bi, bx, &staging.idx[k], &staging.val[k])
			}
		})
		return staging.stitch(nr, nc, rows)
	}
	staging := newRowSlices[T](nr)
	parallelRanges(nr, 256, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ai, ax := ca.vec(r)
			bi, bx := cb.vec(r)
			merge(ai, ax, bi, bx, &staging.idx[r], &staging.val[r])
		}
	})
	return staging.stitch(nr, nc, nil)
}

// EWiseUnionMatrix computes C⟨M⟩ ⊙= A ⊕ B over the union of patterns,
// substituting alpha for missing A entries and beta for missing B entries
// (the GxB_eWiseUnion of the v2 API): unlike eWiseAdd, the operator is
// applied at every union position.
func EWiseUnionMatrix[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], add BinaryOp[T, T, T], a *Matrix[T], alpha T, b *Matrix[T], beta T, desc *Descriptor) error {
	if c == nil || a == nil || b == nil || add == nil {
		return opError("eWiseUnion", ErrUninitialized)
	}
	d := desc.get()
	nr, nc, err := eWiseDims("eWiseUnion", a, b, d)
	if err != nil {
		return err
	}
	if c.nr != nr || c.nc != nc {
		return opErrorf("eWiseUnion", ErrDimensionMismatch, "C is %d×%d, want %d×%d", c.nr, c.nc, nr, nc)
	}
	ca := orientedCSR(a, d.TranA)
	cb := orientedCSR(b, d.TranB)
	z := ewiseCS(ca, cb, nr, nc, func(ai []int, ax []T, bi []int, bx []T, oi *[]int, ox *[]T) {
		mergeUnion(ai, ax, bi, bx, add,
			func(x T) T { return add(x, beta) },
			func(y T) T { return add(alpha, y) },
			oi, ox)
	})
	return writeMatrixResult(c, mask, accum, z, d)
}

// EWiseUnionVector computes w⟨m⟩ ⊙= u ⊕ v with fill values for missing
// operands.
func EWiseUnionVector[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], add BinaryOp[T, T, T], u *Vector[T], alpha T, v *Vector[T], beta T, desc *Descriptor) error {
	if w == nil || u == nil || v == nil || add == nil {
		return opError("eWiseUnion", ErrUninitialized)
	}
	if u.n != v.n || w.n != u.n {
		return opErrorf("eWiseUnion", ErrDimensionMismatch, "w is %d, u is %d, v is %d", w.n, u.n, v.n)
	}
	d := desc.get()
	ui, ux := u.materialized()
	vi, vx := v.materialized()
	var zi []int
	var zx []T
	mergeUnion(ui, ux, vi, vx, add,
		func(x T) T { return add(x, beta) },
		func(y T) T { return add(alpha, y) },
		&zi, &zx)
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// EWiseAddVector computes w⟨m⟩ ⊙= u ⊕ v over the union of patterns.
func EWiseAddVector[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], add BinaryOp[T, T, T], u, v *Vector[T], desc *Descriptor) error {
	if w == nil || u == nil || v == nil || add == nil {
		return opError("eWiseAdd", ErrUninitialized)
	}
	if u.n != v.n || w.n != u.n {
		return opErrorf("eWiseAdd", ErrDimensionMismatch, "w is %d, u is %d, v is %d", w.n, u.n, v.n)
	}
	d := desc.get()
	ui, ux := u.materialized()
	vi, vx := v.materialized()
	var zi []int
	var zx []T
	id := Identity[T]()
	mergeUnion(ui, ux, vi, vx, add, id, id, &zi, &zx)
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// EWiseMultVector computes w⟨m⟩ ⊙= u ⊗ v over the intersection of
// patterns.
func EWiseMultVector[A, B, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], mul BinaryOp[A, B, T], u *Vector[A], v *Vector[B], desc *Descriptor) error {
	if w == nil || u == nil || v == nil || mul == nil {
		return opError("eWiseMult", ErrUninitialized)
	}
	if u.n != v.n || w.n != u.n {
		return opErrorf("eWiseMult", ErrDimensionMismatch, "w is %d, u is %d, v is %d", w.n, u.n, v.n)
	}
	d := desc.get()
	ui, ux := u.materialized()
	vi, vx := v.materialized()
	var zi []int
	var zx []T
	mergeIntersect(ui, ux, vi, vx, mul, &zi, &zx)
	return writeVectorResult(w, mask, accum, zi, zx, d)
}
