package grb

import (
	"sort"
	"sync"

	"lagraph/internal/obs"
)

// Format selects the storage layout of a Matrix.
type Format int

const (
	// FormatAuto lets the library choose between standard and hypersparse
	// compressed-sparse-row storage based on the fill pattern.
	FormatAuto Format = iota
	// FormatCSR forces standard compressed sparse row storage: a pointer
	// array of length nrows+1, O(nrows + nvals) memory.
	FormatCSR
	// FormatHyper forces hypersparse storage: only non-empty rows are
	// represented, O(nvals) memory, so matrices of enormous dimension can
	// be created as long as nvals << nrows (paper §II-A).
	FormatHyper
	// FormatBitmap additionally maintains a dense bitmap view (a presence
	// flag plus a value slot for every position, O(nrows·ncols) memory)
	// next to the compressed storage, giving kernels O(1) random access —
	// the layout that wins for dense frontiers and small dense blocks.
	// Honored only while nrows·ncols is within bitmapMaxCells; the
	// compressed structure remains canonical, so serialization, export,
	// and the store's snapshot frames are unchanged by this format.
	FormatBitmap
)

// hyperThresholdDim is the minimum dimension before FormatAuto considers
// hypersparse storage, and hyperRatio the maximum fraction of non-empty
// rows for which hypersparse is chosen.
const (
	hyperThresholdDim = 4096
	hyperRatio        = 8 // hypersparse if non-empty rows < nrows/hyperRatio
)

// cs is a compressed-sparse structure in one orientation: row-major when
// used as CSR, column-major when used as CSC. "Major" is the compressed
// dimension (rows for CSR), "minor" the index dimension.
type cs[T any] struct {
	nmajor, nminor int
	// p has length nvecs+1; entries of stored vector k occupy
	// i[p[k]:p[k+1]] and x[p[k]:p[k+1]], with i sorted ascending.
	p []int
	// h is nil for standard storage (nvecs == nmajor, vector k is major
	// index k). For hypersparse storage h lists, in ascending order, the
	// major index of each stored vector.
	h []int
	i []int
	x []T
}

func (c *cs[T]) nvecs() int {
	return len(c.p) - 1
}

func (c *cs[T]) nvals() int {
	return c.p[len(c.p)-1]
}

// majorOf returns the major index of stored vector k.
func (c *cs[T]) majorOf(k int) int {
	if c.h == nil {
		return k
	}
	return c.h[k]
}

// findMajor returns the stored-vector slot for major index j, or ok=false
// if j has no stored vector (always true for standard storage).
func (c *cs[T]) findMajor(j int) (int, bool) {
	if c.h == nil {
		return j, true
	}
	k := sort.SearchInts(c.h, j)
	if k < len(c.h) && c.h[k] == j {
		return k, true
	}
	return 0, false
}

// vec returns the minor indices and values of stored vector k.
func (c *cs[T]) vec(k int) ([]int, []T) {
	lo, hi := c.p[k], c.p[k+1]
	return c.i[lo:hi], c.x[lo:hi]
}

// emptyCS returns an empty structure with the requested orientation.
func emptyCS[T any](nmajor, nminor int, hyper bool) *cs[T] {
	c := &cs[T]{nmajor: nmajor, nminor: nminor}
	if hyper {
		c.p = []int{0}
		c.h = []int{}
	} else {
		c.p = make([]int, nmajor+1)
	}
	return c
}

// tuple is a pending update produced by SetElement or element-wise Assign.
type tuple[T any] struct {
	i, j int
	x    T
}

// Matrix is an opaque GraphBLAS matrix holding entries of type T. The zero
// value is not usable; create matrices with NewMatrix, Build, or Import.
//
// Matrix follows the non-blocking execution model of the C API:
// single-element mutations are buffered as pending tuples (insertions) and
// zombies (deletions) and assembled lazily by the next whole-matrix
// operation or an explicit Wait.
type Matrix[T any] struct {
	nr, nc int
	format Format
	csr    *cs[T] // primary storage, row-major; never nil after init
	csc    *cs[T] // column-major cache; nil when stale
	cscMu  sync.Mutex
	bmp    *bm[T] // dense bitmap view cache; nil when stale or ineligible
	bmpMu  sync.Mutex

	pend   []tuple[T]
	pendOp func(T, T) T // nil means "last value wins"
	nzomb  int
}

// NewMatrix creates an empty nrows-by-ncols matrix.
func NewMatrix[T any](nrows, ncols int) (*Matrix[T], error) {
	if nrows < 0 || ncols < 0 {
		return nil, opErrorf("newMatrix", ErrInvalidValue, "dims %d×%d", nrows, ncols)
	}
	return newMatrixRaw[T](nrows, ncols, FormatAuto), nil
}

// MustMatrix is NewMatrix for static dimensions known to be valid.
func MustMatrix[T any](nrows, ncols int) *Matrix[T] {
	a, err := NewMatrix[T](nrows, ncols)
	if err != nil {
		panic(err)
	}
	return a
}

func newMatrixRaw[T any](nr, nc int, f Format) *Matrix[T] {
	hyper := f == FormatHyper || (f == FormatAuto && nr >= hyperThresholdDim*hyperRatio)
	return &Matrix[T]{
		nr: nr, nc: nc, format: f,
		csr: emptyCS[T](nr, nc, hyper),
	}
}

// Nrows returns the number of rows.
func (a *Matrix[T]) Nrows() int { return a.nr }

// Ncols returns the number of columns.
func (a *Matrix[T]) Ncols() int { return a.nc }

// Nvals returns the number of stored entries, forcing pending work to
// complete first.
func (a *Matrix[T]) Nvals() int {
	c := a.materializedCSR()
	return c.nvals()
}

// SetFormat selects the storage layout, converting immediately when the
// matrix has no pending work (otherwise at the next materialization).
func (a *Matrix[T]) SetFormat(f Format) {
	a.format = f
	if a.nzomb == 0 && len(a.pend) == 0 {
		a.maybeConvertFormat()
	}
}

// Clear removes all entries, keeping the dimensions.
func (a *Matrix[T]) Clear() {
	a.csr = emptyCS[T](a.nr, a.nc, a.format == FormatHyper)
	a.csc = nil
	a.bmp = nil
	a.pend = nil
	a.pendOp = nil
	a.nzomb = 0
}

// Dup returns a deep copy.
func (a *Matrix[T]) Dup() *Matrix[T] {
	a.Wait()
	b := &Matrix[T]{nr: a.nr, nc: a.nc, format: a.format, csr: a.csr.clone()}
	return b
}

func (c *cs[T]) clone() *cs[T] {
	d := &cs[T]{nmajor: c.nmajor, nminor: c.nminor}
	d.p = append([]int(nil), c.p...)
	if c.h != nil {
		d.h = append([]int(nil), c.h...)
	}
	d.i = append([]int(nil), c.i...)
	d.x = append([]T(nil), c.x...)
	return d
}

// SetElement stores a(i,j) = x, buffering the update as a pending tuple:
// a sequence of e SetElement calls costs O(e log e) total when assembled,
// not O(e·(n+e)) (paper §II-A).
func (a *Matrix[T]) SetElement(i, j int, x T) error {
	if i < 0 || i >= a.nr || j < 0 || j >= a.nc {
		return ErrIndexOutOfBounds
	}
	if a.pendOp != nil {
		// Mixed pending semantics: flush accumulating updates first.
		a.Wait()
	}
	a.pend = append(a.pend, tuple[T]{i, j, x})
	a.csc = nil
	a.bmp = nil
	return nil
}

// SetElements buffers a batch of updates a(is[k], js[k]) = xs[k] as
// pending tuples in one call — the batch-ingest entry point the service's
// streaming write path lands edge batches through. Validation is
// all-or-nothing: every index is bounds-checked before any tuple is
// buffered, so a rejected batch leaves the matrix exactly as it was.
//
// dup selects the duplicate-combination semantics at the next assembly:
// nil means last value wins (matching SetElement — later tuples shadow
// earlier ones and overwrite stored entries), while a non-nil dup both
// combines duplicates within the buffered batch and accumulates a
// buffered value onto an already-stored entry (matching MergeElement).
// Choosing dup therefore chooses accumulate semantics, not replace. A
// batch with a non-nil dup first assembles anything already buffered
// (operator identity is unprovable across calls), so only runs of
// last-wins batches defer assembly across batch boundaries.
//
// A sequence of batches totalling e tuples still assembles in
// O(e log e): batching changes the constant (one bounds-check loop, one
// append), not the complexity class (paper §II-A).
func (a *Matrix[T]) SetElements(is, js []int, xs []T, dup BinaryOp[T, T, T]) error {
	if len(is) != len(js) || len(is) != len(xs) {
		return ErrDimensionMismatch
	}
	for k := range is {
		if is[k] < 0 || is[k] >= a.nr || js[k] < 0 || js[k] >= a.nc {
			return ErrIndexOutOfBounds
		}
	}
	if len(is) == 0 {
		return nil
	}
	if dup == nil {
		if a.pendOp != nil {
			a.Wait() // flush accumulating updates before last-wins ones
		}
	} else {
		// Two function values cannot be compared, so a batch carrying any
		// dup assembles whatever is already buffered rather than trusting
		// it used the same operator: correctness over deferral on the
		// (rarer) accumulate path.
		if len(a.pend) > 0 || a.pendOp != nil {
			a.Wait()
		}
		a.pendOp = dup
	}
	if cap(a.pend)-len(a.pend) < len(is) {
		grown := make([]tuple[T], len(a.pend), len(a.pend)+len(is))
		copy(grown, a.pend)
		a.pend = grown
	}
	for k := range is {
		a.pend = append(a.pend, tuple[T]{is[k], js[k], xs[k]})
	}
	a.csc = nil
	a.bmp = nil
	return nil
}

// accumElement buffers a(i,j) = a(i,j) ⊙ x (used by Assign with an
// accumulator). All buffered updates must share one operator; a change of
// operator forces assembly.
func (a *Matrix[T]) accumElement(i, j int, x T, op func(T, T) T) {
	if (a.pendOp == nil && len(a.pend) > 0) || (a.pendOp != nil && len(a.pend) == 0) {
		a.Wait()
	}
	a.pendOp = op
	a.pend = append(a.pend, tuple[T]{i, j, x})
	a.csc = nil
	a.bmp = nil
}

// MergeElement buffers a(i,j) ← op(a(i,j), x) (or a(i,j)=x if absent)
// through the pending-tuple mechanism. All buffered updates must share one
// operator; switching forces assembly.
func (a *Matrix[T]) MergeElement(i, j int, x T, op BinaryOp[T, T, T]) error {
	if i < 0 || i >= a.nr || j < 0 || j >= a.nc {
		return ErrIndexOutOfBounds
	}
	if op == nil {
		return ErrUninitialized
	}
	a.accumElement(i, j, x, op)
	return nil
}

// RemoveElement deletes the entry at (i,j) if present, tagging it as a
// zombie for batch reclamation at the next materialization.
func (a *Matrix[T]) RemoveElement(i, j int) error {
	if i < 0 || i >= a.nr || j < 0 || j >= a.nc {
		return ErrIndexOutOfBounds
	}
	if len(a.pend) > 0 {
		a.Wait()
	}
	c := a.csr
	k, ok := c.findMajor(i)
	if !ok {
		return nil
	}
	lo, hi := c.p[k], c.p[k+1]
	pos := lo + searchFlipped(c.i[lo:hi], j)
	if pos < hi && c.i[pos] == j { // live entry (zombies are negative)
		c.i[pos] = ^j // flip: zombie
		a.nzomb++
		a.csc = nil
		a.bmp = nil
	}
	return nil
}

// GetElement returns the entry at (i,j). It reports ErrNoValue if no entry
// is stored there. Reading forces pending work to complete.
func (a *Matrix[T]) GetElement(i, j int) (T, error) {
	var zero T
	if i < 0 || i >= a.nr || j < 0 || j >= a.nc {
		return zero, ErrIndexOutOfBounds
	}
	c := a.materializedCSR()
	if v := a.cachedBitmap(); v != nil { // O(1) random access, the bitmap's specialty
		if v.b[i*v.nc+j] {
			return v.x[i*v.nc+j], nil
		}
		return zero, ErrNoValue
	}
	k, ok := c.findMajor(i)
	if !ok {
		return zero, ErrNoValue
	}
	lo, hi := c.p[k], c.p[k+1]
	pos := lo + sort.SearchInts(c.i[lo:hi], j)
	if pos < hi && c.i[pos] == j {
		return c.x[pos], nil
	}
	return zero, ErrNoValue
}

// Pending reports how many updates are buffered (pending tuples) and how
// many stored entries are tagged for deletion (zombies). Diagnostic.
func (a *Matrix[T]) Pending() (tuples, zombies int) {
	return len(a.pend), a.nzomb
}

// Wait forces all pending work to complete: zombies are reclaimed and
// pending tuples assembled in a single O(n + e + p log p) pass. With an
// observer installed, each non-trivial assembly emits an op record; the
// no-pending early return stays allocation-free either way (it is on the
// hot path of every whole-matrix operation).
func (a *Matrix[T]) Wait() {
	if a.nzomb == 0 && len(a.pend) == 0 {
		return
	}
	ob := obs.Active()
	if ob == nil {
		a.assemble()
		return
	}
	pending, zombies := len(a.pend), a.nzomb
	t0 := ob.Now()
	a.assemble()
	ob.Op(obs.OpRecord{
		Op: "wait", Kernel: "assemble",
		Rows: a.nr, Cols: a.nc,
		NnzOut:  a.csr.nvals(),
		Pending: pending, Zombies: zombies,
		DurNanos: ob.Now() - t0,
	})
}

// assemble is Wait's worker: it must only run with pending work present.
func (a *Matrix[T]) assemble() {
	old := a.csr
	pend := a.pend
	op := a.pendOp
	a.pend = nil
	a.pendOp = nil
	nz := a.nzomb
	a.nzomb = 0

	// Fast path: assembling pending tuples into an empty matrix is
	// exactly a Build — this is what makes "a sequence of e SetElement
	// operations as fast as one Build of e tuples" (§II-A) true.
	if old.nvals() == 0 && nz == 0 {
		is := make([]int, len(pend))
		js := make([]int, len(pend))
		xs := make([]T, len(pend))
		for k, t := range pend {
			is[k], js[k], xs[k] = t.i, t.j, t.x
		}
		dup := op
		if dup == nil {
			dup = Second[T, T]()
		}
		c, err := assembleCS(old.nmajor, old.nminor, is, js, xs, dup)
		if err != nil {
			panic("grb: internal assembly error")
		}
		a.csr = c
		a.csc = nil
		a.maybeConvertFormat()
		return
	}

	// Sort pending tuples by (i,j), stable so that later updates win.
	pend = sortPendingTuples(pend)
	// Combine duplicate pending tuples.
	if len(pend) > 1 {
		w := 0
		for r := 1; r < len(pend); r++ {
			if pend[r].i == pend[w].i && pend[r].j == pend[w].j {
				if op != nil {
					pend[w].x = op(pend[w].x, pend[r].x)
				} else {
					pend[w].x = pend[r].x
				}
			} else {
				w++
				pend[w] = pend[r]
			}
		}
		pend = pend[:w+1]
	}

	est := old.nvals() - nz + len(pend)
	ni := make([]int, 0, est)
	nx := make([]T, 0, est)
	np := make([]int, 0, old.nvecs()+2)
	var nh []int
	hyper := old.h != nil
	if hyper {
		nh = make([]int, 0, old.nvecs()+2)
	}
	np = append(np, 0)

	pk := 0 // cursor into pend
	emitRow := func(row int, oi []int, ox []T) {
		// Merge existing row (skipping zombies) with pending tuples for
		// this row.
		s := 0
		for s < len(oi) || (pk < len(pend) && pend[pk].i == row) {
			var oj int
			haveO := false
			// Skip zombies.
			for s < len(oi) && oi[s] < 0 {
				s++
			}
			if s < len(oi) {
				oj = oi[s]
				haveO = true
			}
			haveP := pk < len(pend) && pend[pk].i == row
			switch {
			case haveO && (!haveP || oj < pend[pk].j):
				ni = append(ni, oj)
				nx = append(nx, ox[s])
				s++
			case haveP && (!haveO || pend[pk].j < oj):
				ni = append(ni, pend[pk].j)
				nx = append(nx, pend[pk].x)
				pk++
			case haveO && haveP: // equal column: combine
				v := pend[pk].x
				if op != nil {
					v = op(ox[s], pend[pk].x)
				}
				ni = append(ni, oj)
				nx = append(nx, v)
				s++
				pk++
			default:
				return
			}
		}
	}
	closeRow := func(row int) {
		if hyper {
			if len(ni) > np[len(np)-1] {
				nh = append(nh, row)
				np = append(np, len(ni))
			}
		} else {
			np = append(np, len(ni))
		}
	}

	if hyper {
		// Walk the union of stored rows and pending rows in order.
		k := 0
		for k < old.nvecs() || pk < len(pend) {
			var row int
			switch {
			case k >= old.nvecs():
				row = pend[pk].i
			case pk >= len(pend):
				row = old.h[k]
			default:
				row = min(old.h[k], pend[pk].i)
			}
			if k < old.nvecs() && old.h[k] == row {
				oi, ox := old.vec(k)
				emitRow(row, oi, ox)
				k++
			} else {
				emitRow(row, nil, nil)
			}
			closeRow(row)
		}
	} else {
		for row := 0; row < old.nmajor; row++ {
			oi, ox := old.vec(row)
			emitRow(row, oi, ox)
			closeRow(row)
		}
	}

	a.csr = &cs[T]{nmajor: old.nmajor, nminor: old.nminor, p: np, h: nh, i: ni, x: nx}
	a.csc = nil
	a.maybeConvertFormat()
}

// maybeConvertFormat moves between standard and hypersparse CSR according
// to the configured format and, for FormatAuto, the fill heuristic. It
// also drops the bitmap view — every caller has just replaced the
// canonical storage — leaving bitmapView to rebuild it lazily on demand.
func (a *Matrix[T]) maybeConvertFormat() {
	a.bmp = nil
	c := a.csr
	switch a.format {
	case FormatCSR, FormatBitmap:
		// The bitmap view rides on standard CSR: bitmap-eligible matrices
		// are small (≤ bitmapMaxCells cells) and dense, the opposite of
		// the hypersparse regime.
		if c.h != nil {
			a.csr = hyperToStandard(c)
		}
	case FormatHyper:
		if c.h == nil {
			a.csr = standardToHyper(c)
		}
	case FormatAuto:
		if c.h == nil && c.nmajor >= hyperThresholdDim {
			nonEmpty := 0
			for k := 0; k < c.nmajor; k++ {
				if c.p[k+1] > c.p[k] {
					nonEmpty++
				}
			}
			if nonEmpty < c.nmajor/hyperRatio {
				a.csr = standardToHyper(c)
			}
		} else if c.h != nil &&
			(c.nmajor < hyperThresholdDim || c.nvecs() >= c.nmajor/hyperRatio) {
			a.csr = hyperToStandard(c)
		}
	}
}

func standardToHyper[T any](c *cs[T]) *cs[T] {
	nonEmpty := 0
	for k := 0; k < c.nmajor; k++ {
		if c.p[k+1] > c.p[k] {
			nonEmpty++
		}
	}
	h := make([]int, 0, nonEmpty)
	p := make([]int, 1, nonEmpty+1)
	for k := 0; k < c.nmajor; k++ {
		if c.p[k+1] > c.p[k] {
			h = append(h, k)
			p = append(p, c.p[k+1])
		}
	}
	return &cs[T]{nmajor: c.nmajor, nminor: c.nminor, p: p, h: h, i: c.i, x: c.x}
}

func hyperToStandard[T any](c *cs[T]) *cs[T] {
	p := make([]int, c.nmajor+1)
	for k := 0; k < c.nvecs(); k++ {
		p[c.h[k]+1] = c.p[k+1] - c.p[k]
	}
	for k := 0; k < c.nmajor; k++ {
		p[k+1] += p[k]
	}
	return &cs[T]{nmajor: c.nmajor, nminor: c.nminor, p: p, i: c.i, x: c.x}
}

// Build assembles a matrix from coordinate-form tuples, combining
// duplicates with dup (nil means duplicates are an error).
func (a *Matrix[T]) Build(is, js []int, xs []T, dup BinaryOp[T, T, T]) error {
	if len(is) != len(js) || len(is) != len(xs) {
		return opErrorf("build", ErrInvalidValue, "tuple slices have lengths %d, %d, %d", len(is), len(js), len(xs))
	}
	for k := range is {
		if is[k] < 0 || is[k] >= a.nr || js[k] < 0 || js[k] >= a.nc {
			return opErrorf("build", ErrIndexOutOfBounds, "tuple (%d,%d), matrix is %d×%d", is[k], js[k], a.nr, a.nc)
		}
	}
	// Build requires an empty matrix; staleness is unobservable because the
	// stored-entry read is paired with the pending-buffer check, and the
	// raw csr read is safe because every format keeps csr canonical.
	if a.csr.nvals() != 0 || len(a.pend) > 0 { //grblint:ignore pending-tuples,format-invariants: read paired with pend check; csr is canonical in every format
		return opErrorf("build", ErrInvalidValue, "matrix is not empty")
	}
	c, err := assembleCS(a.nr, a.nc, is, js, xs, dup)
	if err != nil {
		return err
	}
	a.csr = c
	a.csc = nil
	a.maybeConvertFormat()
	return nil
}

// sortPendingTuples orders pend by (i, j) with original order preserved on
// ties (later updates win when duplicates combine left-to-right). Large
// batches are chunk-sorted concurrently and k-way merged; the index
// tiebreak makes the order total, so the result is identical at any
// parallelism.
func sortPendingTuples[T any](pend []tuple[T]) []tuple[T] {
	if len(pend) <= 1 {
		return pend
	}
	if len(pend) < parallelSortThreshold || workers() <= 1 {
		sort.SliceStable(pend, func(u, v int) bool {
			if pend[u].i != pend[v].i {
				return pend[u].i < pend[v].i
			}
			return pend[u].j < pend[v].j
		})
		return pend
	}
	perm := make([]int, len(pend))
	for k := range perm {
		perm[k] = k
	}
	parallelSortPerm(perm, func(a, b int) bool {
		if pend[a].i != pend[b].i {
			return pend[a].i < pend[b].i
		}
		if pend[a].j != pend[b].j {
			return pend[a].j < pend[b].j
		}
		return a < b
	})
	sorted := make([]tuple[T], len(pend))
	for k, idx := range perm {
		sorted[k] = pend[idx]
	}
	return sorted
}

// assembleCS sorts tuples by (major, minor), combines duplicates, and
// compresses them into hypersparse form (standard form is derived later by
// maybeConvertFormat if appropriate). The tuple sort — the dominant cost
// of batch build — runs as a parallel chunk sort plus multiway merge,
// keeping §II-A's "as fast as batch build" property at scale.
func assembleCS[T any](nmajor, nminor int, is, js []int, xs []T, dup BinaryOp[T, T, T]) (*cs[T], error) {
	n := len(is)
	perm := make([]int, n)
	for k := range perm {
		perm[k] = k
	}
	parallelSortPerm(perm, func(a, b int) bool {
		if is[a] != is[b] {
			return is[a] < is[b]
		}
		if js[a] != js[b] {
			return js[a] < js[b]
		}
		return a < b
	})

	pi := make([]int, 0, n)
	px := make([]T, 0, n)
	rows := make([]int, 0, 64) // distinct major ids, ascending
	p := make([]int, 0, 65)    // start offset of each stored row
	lastI, lastJ := -1, -1
	for _, k := range perm {
		i, j, x := is[k], js[k], xs[k]
		if i == lastI && j == lastJ {
			if dup == nil {
				return nil, ErrInvalidValue
			}
			px[len(px)-1] = dup(px[len(px)-1], x)
			continue
		}
		if i != lastI {
			rows = append(rows, i)
			p = append(p, len(pi))
		}
		pi = append(pi, j)
		px = append(px, x)
		lastI, lastJ = i, j
	}
	p = append(p, len(pi))
	if len(rows) == 0 {
		p = []int{0}
	}
	return &cs[T]{nmajor: nmajor, nminor: nminor, p: p, h: rows, i: pi, x: px}, nil
}
