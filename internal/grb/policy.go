package grb

import (
	"math"
	mathbits "math/bits" // plain "bits" collides with a test helper in this package
	"sort"
	"sync"
	"sync/atomic"

	"lagraph/internal/obs"
)

// Observation-fed kernel selection (§II-E, GraphBLAST): the static
// heuristics in chooseMxM / chooseDirection encode what *should* be fast,
// while the obs layer records what *was* fast. A Tuner closes the loop: it
// consumes the same OpRecords any sink sees — kernel choice, operand
// sizes, estimated vs actual flops, duration — and, once it has seen
// enough samples of each candidate kernel on comparably-sized inputs,
// overrides the static choice with the measured winner.
//
// The tuner is deliberately an out-of-band advisor, not part of any
// kernel: with no tuner installed the dispatch cost is a single atomic
// load (the same zero-cost contract as obs.Active), and the advice can
// only change *which* kernel runs, never *what* it computes — every
// selectable kernel pair is bitwise-identical on the same inputs (the
// format conformance tests pin this), so tuning is invisible to results.

// tunerKey identifies one cell of the tuner's history: an entry point, a
// kernel, the masked/unmasked regime (masked dot products have a wholly
// different cost model), and a log2 size bucket over the operands'
// combined stored-entry count. bucket -1 aggregates all sizes and backs
// the rate-based fallback.
type tunerKey struct {
	op     string
	kernel string
	masked bool
	bucket int
}

// tunerStat is one cell's exponentially-weighted history.
type tunerStat struct {
	n    int
	ewma float64 // duration EWMA, nanoseconds (bucketed cells)
	// rate and estErr are maintained on the bucket -1 aggregate only:
	// rate is the EWMA of DurNanos per estimated flop, estErr the EWMA of
	// ActFlops/EstFlops where the kernel reports both — the est-vs-actual
	// calibration surfaced in Snapshot and BENCH_2's selection audit.
	rate   float64
	estErr float64
}

const (
	// tunerMinSamples is how many observations of *every* candidate a
	// bucket needs before the tuner overrides the static heuristic; until
	// then the heuristic's picks double as exploration samples.
	tunerMinSamples = 3
	// tunerAlpha is the EWMA weight of the newest observation.
	tunerAlpha = 0.25
)

// Tuner accumulates kernel timing history from op records and advises
// dispatch. Install it with SetTuner to receive advice requests, and feed
// it records by making it (part of) the process observer — typically
// obs.Set(&obs.Multi{Obs: []obs.Observer{trace, tuner}}).
type Tuner struct {
	mu    sync.Mutex
	stats map[tunerKey]*tunerStat //grblint:guardedby mu
}

// NewTuner returns an empty tuner.
func NewTuner() *Tuner {
	return &Tuner{stats: make(map[tunerKey]*tunerStat)}
}

// activeTuner is the process-wide advisor consulted by auto dispatch; nil
// (the default) keeps dispatch on the static heuristics at zero cost.
var activeTuner atomic.Pointer[Tuner]

// SetTuner installs t as the process-wide kernel advisor (nil uninstalls)
// and returns the previous one. Installing the tuner does NOT feed it:
// records arrive only while it is also registered as an observer.
func SetTuner(t *Tuner) *Tuner {
	return activeTuner.Swap(t)
}

// ActiveTuner returns the installed advisor, or nil. One atomic load.
func ActiveTuner() *Tuner {
	return activeTuner.Load()
}

// sizeBucket maps a combined operand entry count to its log2 bucket.
func sizeBucket(size int64) int {
	if size < 0 {
		size = 0
	}
	return mathbits.Len64(uint64(size))
}

// Now implements obs.Observer via the obs package clock: the Tuner IS an
// injected observer, so this is the clock seam itself, not a kernel
// reading time.
func (t *Tuner) Now() int64 { return obs.Clock() } //grblint:ignore kernel-purity: observer clock implementation

// Iter implements obs.Observer; iteration records carry no kernel choice.
func (t *Tuner) Iter(obs.IterRecord) {}

// Op implements obs.Observer: it folds one kernel-level record into the
// history. Only method-choice ops (mxm, vxm, mxv) with a measured duration
// are retained.
func (t *Tuner) Op(r obs.OpRecord) {
	switch r.Op {
	case "mxm", "vxm", "mxv":
	default:
		return
	}
	if r.Kernel == "" || r.DurNanos <= 0 {
		return
	}
	bucket := sizeBucket(int64(r.NnzA) + int64(r.NnzB))
	t.mu.Lock()
	s := t.cell(tunerKey{r.Op, r.Kernel, r.Masked, bucket})
	s.n++
	s.ewma = ewma(s.ewma, float64(r.DurNanos), s.n)
	agg := t.cell(tunerKey{r.Op, r.Kernel, r.Masked, -1})
	agg.n++
	ef := r.EstFlops
	if ef < 1 {
		ef = 1
	}
	agg.rate = ewma(agg.rate, float64(r.DurNanos)/float64(ef), agg.n)
	if r.ActFlops > 0 && r.EstFlops > 0 {
		agg.estErr = ewma(agg.estErr, float64(r.ActFlops)/float64(r.EstFlops), agg.n)
	}
	t.mu.Unlock()
}

// cell returns (allocating if needed) one history cell. Callers hold t.mu.
//
//grblint:locked mu
func (t *Tuner) cell(k tunerKey) *tunerStat {
	s := t.stats[k]
	if s == nil {
		s = &tunerStat{}
		t.stats[k] = s
	}
	return s
}

// ewma folds x into the running average e after n total samples (n counts
// x itself); the first sample initializes the average.
func ewma(e, x float64, n int) float64 {
	if n <= 1 {
		return x
	}
	return e + tunerAlpha*(x-e)
}

// Advise picks among candidate kernels for an op on operands whose
// combined stored-entry count is size. It answers ok only when every
// candidate has at least tunerMinSamples observations in the size bucket —
// an incompletely-explored bucket yields (_, false) and the static
// heuristic (whose picks generate the missing samples) decides. Candidates
// the caller cannot run (dot without a positive mask, bitmap without an
// eligible view) must simply be left out of the list.
func (t *Tuner) Advise(op string, masked bool, size int64, candidates []string) (string, bool) {
	if len(candidates) < 2 {
		return "", false
	}
	bucket := sizeBucket(size)
	t.mu.Lock()
	defer t.mu.Unlock()
	best := ""
	bestCost := math.Inf(1)
	for _, k := range candidates {
		s := t.stats[tunerKey{op, k, masked, bucket}]
		if s == nil || s.n < tunerMinSamples {
			return "", false
		}
		if s.ewma < bestCost {
			best, bestCost = k, s.ewma
		}
	}
	return best, true
}

// KernelCalibration reports the est-vs-actual flop calibration and
// modeled cost rate of one (op, kernel, masked) regime.
type KernelCalibration struct {
	Op      string `json:"op"`
	Kernel  string `json:"kernel"`
	Masked  bool   `json:"masked,omitempty"`
	Samples int    `json:"samples"`
	// NsPerEstFlop is the duration EWMA normalized by the kernel's own
	// work estimate.
	NsPerEstFlop float64 `json:"ns_per_est_flop"`
	// EstErr is the EWMA of actual/estimated flops (1.0 = the estimator
	// is calibrated; 0 when the kernel never reports actual work).
	EstErr float64 `json:"est_err,omitempty"`
}

// Calibration snapshots the per-kernel aggregates, ordered by (op,
// kernel, masked) so the output is stable run to run.
func (t *Tuner) Calibration() []KernelCalibration {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]tunerKey, 0, len(t.stats))
	//grblint:ignore determinism: keys are fully sorted before use below
	for k := range t.stats {
		if k.bucket == -1 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].op != keys[b].op {
			return keys[a].op < keys[b].op
		}
		if keys[a].kernel != keys[b].kernel {
			return keys[a].kernel < keys[b].kernel
		}
		return !keys[a].masked && keys[b].masked
	})
	out := make([]KernelCalibration, 0, len(keys))
	for _, k := range keys {
		s := t.stats[k]
		out = append(out, KernelCalibration{
			Op: k.op, Kernel: k.kernel, Masked: k.masked,
			Samples: s.n, NsPerEstFlop: s.rate, EstErr: s.estErr,
		})
	}
	return out
}
