package grb

// Concat and Split — the GxB_Matrix_concat / GxB_Matrix_split tile
// operations of SuiteSparse: assembling a matrix from a grid of blocks
// and cutting one back apart. Bipartite constructions and blocked
// algorithms use these to avoid tuple-level surgery.

// Concat assembles tiles into one matrix. tiles is a row-major grid with
// rows×cols entries; every tile in a grid row must share its height, and
// every tile in a grid column its width.
func Concat[T any](tiles [][]*Matrix[T]) (*Matrix[T], error) {
	if len(tiles) == 0 {
		return nil, opErrorf("concat", ErrInvalidValue, "empty tile grid")
	}
	gcols := len(tiles[0])
	if gcols == 0 {
		return nil, opErrorf("concat", ErrInvalidValue, "empty tile grid")
	}
	rowH := make([]int, len(tiles))
	colW := make([]int, gcols)
	for r, row := range tiles {
		if len(row) != gcols {
			return nil, opErrorf("concat", ErrInvalidValue, "ragged tile grid: row %d has %d tiles, want %d", r, len(row), gcols)
		}
		for c, tile := range row {
			if tile == nil {
				return nil, opError("concat", ErrUninitialized)
			}
			if rowH[r] == 0 {
				rowH[r] = tile.Nrows()
			} else if rowH[r] != tile.Nrows() {
				return nil, opErrorf("concat", ErrDimensionMismatch, "tile (%d,%d) is %d rows, want %d", r, c, tile.Nrows(), rowH[r])
			}
			if colW[c] == 0 {
				colW[c] = tile.Ncols()
			} else if colW[c] != tile.Ncols() {
				return nil, opErrorf("concat", ErrDimensionMismatch, "tile (%d,%d) is %d cols, want %d", r, c, tile.Ncols(), colW[c])
			}
		}
	}
	nr, nc := 0, 0
	rowOff := make([]int, len(tiles))
	colOff := make([]int, gcols)
	for r, h := range rowH {
		rowOff[r] = nr
		nr += h
	}
	for c, w := range colW {
		colOff[c] = nc
		nc += w
	}
	out := MustMatrix[T](nr, nc)
	var is, js []int
	var xs []T
	for r, row := range tiles {
		for c, tile := range row {
			ti, tj, tx := tile.ExtractTuples()
			for k := range ti {
				is = append(is, ti[k]+rowOff[r])
				js = append(js, tj[k]+colOff[c])
				xs = append(xs, tx[k])
			}
		}
	}
	if err := out.Build(is, js, xs, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// Split cuts a into a grid of tiles with the given row heights and
// column widths (which must sum to a's dimensions).
func Split[T any](a *Matrix[T], rowHeights, colWidths []int) ([][]*Matrix[T], error) {
	if a == nil {
		return nil, opError("split", ErrUninitialized)
	}
	sumR, sumC := 0, 0
	for _, h := range rowHeights {
		if h < 0 {
			return nil, opErrorf("split", ErrInvalidValue, "negative tile height %d", h)
		}
		sumR += h
	}
	for _, w := range colWidths {
		if w < 0 {
			return nil, opErrorf("split", ErrInvalidValue, "negative tile width %d", w)
		}
		sumC += w
	}
	if sumR != a.Nrows() || sumC != a.Ncols() {
		return nil, opErrorf("split", ErrDimensionMismatch, "tiles sum to %d×%d, A is %d×%d", sumR, sumC, a.Nrows(), a.Ncols())
	}
	rowOff := make([]int, len(rowHeights)+1)
	for r, h := range rowHeights {
		rowOff[r+1] = rowOff[r] + h
	}
	colOff := make([]int, len(colWidths)+1)
	for c, w := range colWidths {
		colOff[c+1] = colOff[c] + w
	}
	findBlock := func(off []int, x int) int {
		lo, hi := 0, len(off)-1
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if off[mid] <= x {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}

	type triple struct {
		i, j int
		x    T
	}
	grid := make([][][]triple, len(rowHeights))
	for r := range grid {
		grid[r] = make([][]triple, len(colWidths))
	}
	a.Iterate(func(i, j int, x T) bool {
		r := findBlock(rowOff, i)
		c := findBlock(colOff, j)
		grid[r][c] = append(grid[r][c], triple{i - rowOff[r], j - colOff[c], x})
		return true
	})
	out := make([][]*Matrix[T], len(rowHeights))
	for r := range out {
		out[r] = make([]*Matrix[T], len(colWidths))
		for c := range out[r] {
			tile := MustMatrix[T](rowHeights[r], colWidths[c])
			ts := grid[r][c]
			is := make([]int, len(ts))
			js := make([]int, len(ts))
			xs := make([]T, len(ts))
			for k, tr := range ts {
				is[k], js[k], xs[k] = tr.i, tr.j, tr.x
			}
			if err := tile.Build(is, js, xs, nil); err != nil {
				return nil, err
			}
			out[r][c] = tile
		}
	}
	return out, nil
}
