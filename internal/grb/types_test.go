package grb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMinMaxVal(t *testing.T) {
	if maxVal[int8]() != 127 || minVal[int8]() != -128 {
		t.Fatalf("int8: %d %d", maxVal[int8](), minVal[int8]())
	}
	if maxVal[uint8]() != 255 || minVal[uint8]() != 0 {
		t.Fatalf("uint8: %d %d", maxVal[uint8](), minVal[uint8]())
	}
	if maxVal[int32]() != math.MaxInt32 || minVal[int32]() != math.MinInt32 {
		t.Fatal("int32")
	}
	if maxVal[int64]() != math.MaxInt64 || minVal[int64]() != math.MinInt64 {
		t.Fatal("int64")
	}
	if maxVal[uint64]() != math.MaxUint64 {
		t.Fatal("uint64")
	}
	if !math.IsInf(maxVal[float64](), 1) || !math.IsInf(minVal[float64](), -1) {
		t.Fatal("float64")
	}
	if !math.IsInf(float64(maxVal[float32]()), 1) {
		t.Fatal("float32")
	}
}

func TestMonoidIdentities(t *testing.T) {
	cases := []struct {
		name string
		got  int64
		want int64
	}{
		{"plus", PlusMonoid[int64]().Identity, 0},
		{"times", TimesMonoid[int64]().Identity, 1},
		{"min", MinMonoid[int64]().Identity, math.MaxInt64},
		{"max", MaxMonoid[int64]().Identity, math.MinInt64},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s identity: got %d want %d", c.name, c.got, c.want)
		}
	}
	if LOrMonoid().Identity != false || LAndMonoid().Identity != true {
		t.Error("bool monoid identities")
	}
}

func TestMonoidTerminals(t *testing.T) {
	if !LOrMonoid().Terminal(true) || LOrMonoid().Terminal(false) {
		t.Error("lor terminal")
	}
	if !LAndMonoid().Terminal(false) || LAndMonoid().Terminal(true) {
		t.Error("land terminal")
	}
	if !MinMonoid[int32]().Terminal(math.MinInt32) || MinMonoid[int32]().Terminal(0) {
		t.Error("min terminal")
	}
	if !MaxMonoid[uint16]().Terminal(math.MaxUint16) || MaxMonoid[uint16]().Terminal(5) {
		t.Error("max terminal")
	}
	if !AnyMonoid[int]().Terminal(12345) {
		t.Error("any monoid: everything is terminal")
	}
}

// Property: monoid laws — identity and associativity — for the built-ins.
func TestQuickMonoidLaws(t *testing.T) {
	monoids := map[string]Monoid[int64]{
		"plus": PlusMonoid[int64](),
		"min":  MinMonoid[int64](),
		"max":  MaxMonoid[int64](),
	}
	for name, m := range monoids {
		m := m
		t.Run(name+"/identity", func(t *testing.T) {
			f := func(x int64) bool {
				return m.Op(m.Identity, x) == x && m.Op(x, m.Identity) == x
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(name+"/assoc", func(t *testing.T) {
			f := func(x, y, z int16) bool {
				a, b, c := int64(x), int64(y), int64(z)
				return m.Op(m.Op(a, b), c) == m.Op(a, m.Op(b, c))
			}
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
		t.Run(name+"/comm", func(t *testing.T) {
			f := func(x, y int64) bool { return m.Op(x, y) == m.Op(y, x) }
			if err := quick.Check(f, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: semiring distributivity for min-plus on bounded inputs (no
// overflow regime).
func TestQuickMinPlusDistributes(t *testing.T) {
	s := MinPlus[int64]()
	f := func(a, b, c int16) bool {
		x, y, z := int64(a), int64(b), int64(c)
		// x ⊗ (y ⊕ z) == (x ⊗ y) ⊕ (x ⊗ z)
		lhs := s.Mul(x, s.Add.Op(y, z))
		rhs := s.Add.Op(s.Mul(x, y), s.Mul(x, z))
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryOpsAndPredicates(t *testing.T) {
	if First[int, string]()(3, "x") != 3 {
		t.Error("first")
	}
	if Second[int, string]()(3, "x") != "x" {
		t.Error("second")
	}
	if Pair[int, int, int64]()(9, 9) != 1 {
		t.Error("pair")
	}
	if MinOp[int]()(2, 5) != 2 || MaxOp[int]()(2, 5) != 5 {
		t.Error("min/max")
	}
	if Div[float64]()(1, 4) != 0.25 {
		t.Error("div")
	}
	if !Lt[int]()(1, 2) || Gt[int]()(1, 2) || !Le[int]()(2, 2) || !Ge[int]()(2, 2) {
		t.Error("comparisons")
	}
	if !Eq[string]()("a", "a") || !Ne[int]()(1, 2) {
		t.Error("eq/ne")
	}
	if LXor()(true, true) || !LXor()(true, false) {
		t.Error("xor")
	}
	if AbsOp[int]()(-4) != 4 || AInv[int]()(4) != -4 || MInv[float64]()(4) != 0.25 {
		t.Error("unary")
	}
	if One[string, int]()("zzz") != 1 {
		t.Error("one")
	}
	if LNot()(true) {
		t.Error("lnot")
	}
	if Identity[int]()(7) != 7 {
		t.Error("identity op")
	}
}

func TestSelectPredicates(t *testing.T) {
	if !Tril[int](0)(0, 3, 3) || Tril[int](0)(0, 2, 3) {
		t.Error("tril")
	}
	if !Triu[int](1)(0, 2, 3) || Triu[int](1)(0, 3, 3) {
		t.Error("triu")
	}
	if !Diag[int](0)(0, 5, 5) || Diag[int](0)(0, 5, 6) {
		t.Error("diag")
	}
	if OffDiag[int]()(0, 5, 5) || !OffDiag[int]()(0, 5, 6) {
		t.Error("offdiag")
	}
	if !ValueGT(int32(3))(4, 0, 0) || ValueGT(int32(3))(3, 0, 0) {
		t.Error("valueGT")
	}
	if !ValueGE(3)(3, 0, 0) || !ValueLT(3)(2, 0, 0) {
		t.Error("valueGE/LT")
	}
	if !ValueNE(3)(4, 0, 0) || !ValueEQ(3)(3, 0, 0) {
		t.Error("valueNE/EQ")
	}
}
