// Package ref is the dense reference mimic of the GraphBLAS semantics,
// reproducing the testing methodology of SuiteSparse:GraphBLAS described
// in §II-A of the paper: each operation is written a second time in the
// simplest possible style — dense value arrays with a separate Boolean
// pattern, triply-nested-loop matrix multiply — so it can be visually
// inspected for conformance to the specification, and the fast sparse
// kernels are tested for exact value-and-pattern equality against it.
//
// Nothing in this package is intended to be fast.
package ref

import "lagraph/internal/grb"

// Mat is a dense matrix with an explicit stored-entry pattern.
type Mat[T any] struct {
	NRows, NCols int
	Val          [][]T
	Set          [][]bool
}

// Vec is a dense vector with an explicit stored-entry pattern.
type Vec[T any] struct {
	N   int
	Val []T
	Set []bool
}

// Desc carries the descriptor settings the mimic honours.
type Desc struct {
	TranA, TranB bool
	Replace      bool
	Comp         bool
	MaskValue    bool
}

// NewMat returns an empty dense matrix.
func NewMat[T any](nr, nc int) *Mat[T] {
	m := &Mat[T]{NRows: nr, NCols: nc}
	m.Val = make([][]T, nr)
	m.Set = make([][]bool, nr)
	for i := range m.Val {
		m.Val[i] = make([]T, nc)
		m.Set[i] = make([]bool, nc)
	}
	return m
}

// NewVec returns an empty dense vector.
func NewVec[T any](n int) *Vec[T] {
	return &Vec[T]{N: n, Val: make([]T, n), Set: make([]bool, n)}
}

// FromMatrix converts a grb.Matrix into its dense mimic.
func FromMatrix[T any](a *grb.Matrix[T]) *Mat[T] {
	m := NewMat[T](a.Nrows(), a.Ncols())
	is, js, xs := a.ExtractTuples()
	for k := range is {
		m.Val[is[k]][js[k]] = xs[k]
		m.Set[is[k]][js[k]] = true
	}
	return m
}

// FromVector converts a grb.Vector into its dense mimic.
func FromVector[T any](v *grb.Vector[T]) *Vec[T] {
	m := NewVec[T](v.Size())
	is, xs := v.ExtractTuples()
	for k := range is {
		m.Val[is[k]] = xs[k]
		m.Set[is[k]] = true
	}
	return m
}

// ToMatrix converts the mimic back into a grb.Matrix.
func (m *Mat[T]) ToMatrix() *grb.Matrix[T] {
	a := grb.MustMatrix[T](m.NRows, m.NCols)
	var is, js []int
	var xs []T
	for i := 0; i < m.NRows; i++ {
		for j := 0; j < m.NCols; j++ {
			if m.Set[i][j] {
				is = append(is, i)
				js = append(js, j)
				xs = append(xs, m.Val[i][j])
			}
		}
	}
	if err := a.Build(is, js, xs, nil); err != nil {
		panic(err)
	}
	return a
}

// ToVector converts the mimic back into a grb.Vector.
func (v *Vec[T]) ToVector() *grb.Vector[T] {
	a := grb.MustVector[T](v.N)
	for i := 0; i < v.N; i++ {
		if v.Set[i] {
			_ = a.SetElement(i, v.Val[i])
		}
	}
	a.Wait()
	return a
}

// maybeTranspose returns a (or aᵀ) as a fresh dense matrix.
func maybeTranspose[T any](a *Mat[T], t bool) *Mat[T] {
	if !t {
		return a
	}
	z := NewMat[T](a.NCols, a.NRows)
	for i := 0; i < a.NRows; i++ {
		for j := 0; j < a.NCols; j++ {
			z.Val[j][i] = a.Val[i][j]
			z.Set[j][i] = a.Set[i][j]
		}
	}
	return z
}

// matAllowed evaluates the mask at (i,j) per the spec: no mask admits
// everything; a structural mask admits stored positions; a value mask
// additionally requires the stored bool to be true; Comp inverts.
func matAllowed[M any](mask *Mat[M], d Desc, i, j int) bool {
	if mask == nil {
		return !d.Comp || true // nil mask admits all (Comp of no mask is still all)
	}
	in := mask.Set[i][j]
	if in && d.MaskValue {
		if bv, ok := any(mask.Val[i][j]).(bool); ok {
			in = bv
		}
	}
	if d.Comp {
		return !in
	}
	return in
}

func vecAllowed[M any](mask *Vec[M], d Desc, i int) bool {
	if mask == nil {
		return true
	}
	in := mask.Set[i]
	if in && d.MaskValue {
		if bv, ok := any(mask.Val[i]).(bool); ok {
			in = bv
		}
	}
	if d.Comp {
		return !in
	}
	return in
}

// writeMat applies the spec's write rule C⟨M,replace⟩ ⊙= Z position by
// position.
func writeMat[T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], z *Mat[T], d Desc) {
	for i := 0; i < c.NRows; i++ {
		for j := 0; j < c.NCols; j++ {
			if matAllowed(mask, d, i, j) {
				switch {
				case z.Set[i][j] && c.Set[i][j] && accum != nil:
					c.Val[i][j] = accum(c.Val[i][j], z.Val[i][j])
				case z.Set[i][j]:
					c.Val[i][j] = z.Val[i][j]
					c.Set[i][j] = true
				case accum == nil:
					c.Set[i][j] = false
					var zero T
					c.Val[i][j] = zero
				}
			} else if d.Replace {
				c.Set[i][j] = false
				var zero T
				c.Val[i][j] = zero
			}
		}
	}
}

func writeVec[T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], z *Vec[T], d Desc) {
	for i := 0; i < w.N; i++ {
		if vecAllowed(mask, d, i) {
			switch {
			case z.Set[i] && w.Set[i] && accum != nil:
				w.Val[i] = accum(w.Val[i], z.Val[i])
			case z.Set[i]:
				w.Val[i] = z.Val[i]
				w.Set[i] = true
			case accum == nil:
				w.Set[i] = false
				var zero T
				w.Val[i] = zero
			}
		} else if d.Replace {
			w.Set[i] = false
			var zero T
			w.Val[i] = zero
		}
	}
}

// MxM computes C⟨M⟩ ⊙= A ⊕.⊗ B with a brute-force triple loop.
func MxM[A, B, T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], s grb.Semiring[A, B, T], a *Mat[A], b *Mat[B], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	be := maybeTranspose(b, d.TranB)
	z := NewMat[T](ae.NRows, be.NCols)
	for i := 0; i < ae.NRows; i++ {
		for j := 0; j < be.NCols; j++ {
			var acc T
			found := false
			for k := 0; k < ae.NCols; k++ {
				if ae.Set[i][k] && be.Set[k][j] {
					p := s.Mul(ae.Val[i][k], be.Val[k][j])
					if found {
						acc = s.Add.Op(acc, p)
					} else {
						acc = p
						found = true
					}
				}
			}
			if found {
				z.Val[i][j] = acc
				z.Set[i][j] = true
			}
		}
	}
	writeMat(c, mask, accum, z, d)
}

// VxM computes w⟨m⟩ ⊙= uᵀ ⊕.⊗ A.
func VxM[A, U, T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], s grb.Semiring[U, A, T], u *Vec[U], a *Mat[A], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	z := NewVec[T](ae.NCols)
	for j := 0; j < ae.NCols; j++ {
		var acc T
		found := false
		for i := 0; i < ae.NRows; i++ {
			if u.Set[i] && ae.Set[i][j] {
				p := s.Mul(u.Val[i], ae.Val[i][j])
				if found {
					acc = s.Add.Op(acc, p)
				} else {
					acc = p
					found = true
				}
			}
		}
		if found {
			z.Val[j] = acc
			z.Set[j] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// MxV computes w⟨m⟩ ⊙= A ⊕.⊗ u.
func MxV[A, U, T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], s grb.Semiring[A, U, T], a *Mat[A], u *Vec[U], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	z := NewVec[T](ae.NRows)
	for i := 0; i < ae.NRows; i++ {
		var acc T
		found := false
		for j := 0; j < ae.NCols; j++ {
			if ae.Set[i][j] && u.Set[j] {
				p := s.Mul(ae.Val[i][j], u.Val[j])
				if found {
					acc = s.Add.Op(acc, p)
				} else {
					acc = p
					found = true
				}
			}
		}
		if found {
			z.Val[i] = acc
			z.Set[i] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// EWiseAddMat computes C⟨M⟩ ⊙= A ⊕ B over the union of patterns.
func EWiseAddMat[T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], add grb.BinaryOp[T, T, T], a, b *Mat[T], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	be := maybeTranspose(b, d.TranB)
	z := NewMat[T](ae.NRows, ae.NCols)
	for i := 0; i < ae.NRows; i++ {
		for j := 0; j < ae.NCols; j++ {
			switch {
			case ae.Set[i][j] && be.Set[i][j]:
				z.Val[i][j] = add(ae.Val[i][j], be.Val[i][j])
				z.Set[i][j] = true
			case ae.Set[i][j]:
				z.Val[i][j] = ae.Val[i][j]
				z.Set[i][j] = true
			case be.Set[i][j]:
				z.Val[i][j] = be.Val[i][j]
				z.Set[i][j] = true
			}
		}
	}
	writeMat(c, mask, accum, z, d)
}

// EWiseMultMat computes C⟨M⟩ ⊙= A ⊗ B over the intersection of patterns.
func EWiseMultMat[A, B, T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], mul grb.BinaryOp[A, B, T], a *Mat[A], b *Mat[B], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	be := maybeTranspose(b, d.TranB)
	z := NewMat[T](ae.NRows, ae.NCols)
	for i := 0; i < ae.NRows; i++ {
		for j := 0; j < ae.NCols; j++ {
			if ae.Set[i][j] && be.Set[i][j] {
				z.Val[i][j] = mul(ae.Val[i][j], be.Val[i][j])
				z.Set[i][j] = true
			}
		}
	}
	writeMat(c, mask, accum, z, d)
}

// EWiseAddVec computes w⟨m⟩ ⊙= u ⊕ v.
func EWiseAddVec[T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], add grb.BinaryOp[T, T, T], u, v *Vec[T], d Desc) {
	z := NewVec[T](u.N)
	for i := 0; i < u.N; i++ {
		switch {
		case u.Set[i] && v.Set[i]:
			z.Val[i] = add(u.Val[i], v.Val[i])
			z.Set[i] = true
		case u.Set[i]:
			z.Val[i] = u.Val[i]
			z.Set[i] = true
		case v.Set[i]:
			z.Val[i] = v.Val[i]
			z.Set[i] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// EWiseMultVec computes w⟨m⟩ ⊙= u ⊗ v.
func EWiseMultVec[A, B, T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], mul grb.BinaryOp[A, B, T], u *Vec[A], v *Vec[B], d Desc) {
	z := NewVec[T](u.N)
	for i := 0; i < u.N; i++ {
		if u.Set[i] && v.Set[i] {
			z.Val[i] = mul(u.Val[i], v.Val[i])
			z.Set[i] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// Apply computes C⟨M⟩ ⊙= f(A).
func Apply[A, T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], f grb.UnaryOp[A, T], a *Mat[A], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	z := NewMat[T](ae.NRows, ae.NCols)
	for i := 0; i < ae.NRows; i++ {
		for j := 0; j < ae.NCols; j++ {
			if ae.Set[i][j] {
				z.Val[i][j] = f(ae.Val[i][j])
				z.Set[i][j] = true
			}
		}
	}
	writeMat(c, mask, accum, z, d)
}

// Select computes C⟨M⟩ ⊙= A(keep).
func Select[T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], keep grb.IndexUnaryOp[T, bool], a *Mat[T], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	z := NewMat[T](ae.NRows, ae.NCols)
	for i := 0; i < ae.NRows; i++ {
		for j := 0; j < ae.NCols; j++ {
			if ae.Set[i][j] && keep(ae.Val[i][j], i, j) {
				z.Val[i][j] = ae.Val[i][j]
				z.Set[i][j] = true
			}
		}
	}
	writeMat(c, mask, accum, z, d)
}

// ReduceMatToVec computes w⟨m⟩ ⊙= ⊕ⱼ A(:,j).
func ReduceMatToVec[T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], mon grb.Monoid[T], a *Mat[T], d Desc) {
	ae := maybeTranspose(a, d.TranA)
	z := NewVec[T](ae.NRows)
	for i := 0; i < ae.NRows; i++ {
		var acc T
		found := false
		for j := 0; j < ae.NCols; j++ {
			if ae.Set[i][j] {
				if found {
					acc = mon.Op(acc, ae.Val[i][j])
				} else {
					acc = ae.Val[i][j]
					found = true
				}
			}
		}
		if found {
			z.Val[i] = acc
			z.Set[i] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// ReduceMatToScalar reduces all entries starting from the identity.
func ReduceMatToScalar[T any](mon grb.Monoid[T], a *Mat[T]) T {
	acc := mon.Identity
	for i := 0; i < a.NRows; i++ {
		for j := 0; j < a.NCols; j++ {
			if a.Set[i][j] {
				acc = mon.Op(acc, a.Val[i][j])
			}
		}
	}
	return acc
}

// Transpose computes C⟨M⟩ ⊙= Aᵀ.
func Transpose[T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], a *Mat[T], d Desc) {
	z := maybeTranspose(a, !d.TranA)
	zc := NewMat[T](z.NRows, z.NCols)
	for i := range z.Val {
		copy(zc.Val[i], z.Val[i])
		copy(zc.Set[i], z.Set[i])
	}
	writeMat(c, mask, accum, zc, d)
}

// Extract computes C⟨M⟩ ⊙= A(I,J) (nil index = all).
func Extract[T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], a *Mat[T], rows, cols []int, d Desc) {
	ae := maybeTranspose(a, d.TranA)
	if rows == nil {
		rows = iota(ae.NRows)
	}
	if cols == nil {
		cols = iota(ae.NCols)
	}
	z := NewMat[T](len(rows), len(cols))
	for r, i := range rows {
		for t, j := range cols {
			if ae.Set[i][j] {
				z.Val[r][t] = ae.Val[i][j]
				z.Set[r][t] = true
			}
		}
	}
	writeMat(c, mask, accum, z, d)
}

// Assign computes C(I,J)⟨M⟩ ⊙= A; positions outside I×J are untouched.
func Assign[T, M any](c *Mat[T], mask *Mat[M], accum grb.BinaryOp[T, T, T], a *Mat[T], rows, cols []int, d Desc) {
	if rows == nil {
		rows = iota(c.NRows)
	}
	if cols == nil {
		cols = iota(c.NCols)
	}
	// Expand A to C shape (later writes win for duplicate indices).
	z := NewMat[T](c.NRows, c.NCols)
	inRegion := NewMat[bool](c.NRows, c.NCols)
	for r, i := range rows {
		for t, j := range cols {
			inRegion.Set[i][j] = true
			z.Set[i][j] = a.Set[r][t]
			z.Val[i][j] = a.Val[r][t]
		}
	}
	for i := 0; i < c.NRows; i++ {
		for j := 0; j < c.NCols; j++ {
			if !inRegion.Set[i][j] {
				continue // untouched outside the region
			}
			if matAllowed(mask, d, i, j) {
				switch {
				case z.Set[i][j] && c.Set[i][j] && accum != nil:
					c.Val[i][j] = accum(c.Val[i][j], z.Val[i][j])
				case z.Set[i][j]:
					c.Val[i][j] = z.Val[i][j]
					c.Set[i][j] = true
				case accum == nil:
					c.Set[i][j] = false
				}
			} else if d.Replace {
				c.Set[i][j] = false
			}
		}
	}
}

// ApplyVec computes w⟨m⟩ ⊙= f(u).
func ApplyVec[A, T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], f grb.UnaryOp[A, T], u *Vec[A], d Desc) {
	z := NewVec[T](u.N)
	for i := 0; i < u.N; i++ {
		if u.Set[i] {
			z.Val[i] = f(u.Val[i])
			z.Set[i] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// SelectVec computes w⟨m⟩ ⊙= u(keep).
func SelectVec[T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], keep grb.IndexUnaryOp[T, bool], u *Vec[T], d Desc) {
	z := NewVec[T](u.N)
	for i := 0; i < u.N; i++ {
		if u.Set[i] && keep(u.Val[i], i, 0) {
			z.Val[i] = u.Val[i]
			z.Set[i] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// ExtractVec computes w⟨m⟩ ⊙= u(I) (nil = all).
func ExtractVec[T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], u *Vec[T], idx []int, d Desc) {
	if idx == nil {
		idx = iota(u.N)
	}
	z := NewVec[T](len(idx))
	for t, src := range idx {
		if u.Set[src] {
			z.Val[t] = u.Val[src]
			z.Set[t] = true
		}
	}
	writeVec(w, mask, accum, z, d)
}

// AssignVec computes w(I)⟨m⟩ ⊙= u; positions outside I are untouched.
func AssignVec[T, M any](w *Vec[T], mask *Vec[M], accum grb.BinaryOp[T, T, T], u *Vec[T], idx []int, d Desc) {
	if idx == nil {
		idx = iota(w.N)
	}
	z := NewVec[T](w.N)
	inRegion := make([]bool, w.N)
	for t, target := range idx {
		inRegion[target] = true
		z.Set[target] = u.Set[t]
		z.Val[target] = u.Val[t]
	}
	for i := 0; i < w.N; i++ {
		if !inRegion[i] {
			continue
		}
		if vecAllowed(mask, d, i) {
			switch {
			case z.Set[i] && w.Set[i] && accum != nil:
				w.Val[i] = accum(w.Val[i], z.Val[i])
			case z.Set[i]:
				w.Val[i] = z.Val[i]
				w.Set[i] = true
			case accum == nil:
				w.Set[i] = false
			}
		} else if d.Replace {
			w.Set[i] = false
		}
	}
}

func iota(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
