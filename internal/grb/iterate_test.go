package grb

import (
	"errors"
	"testing"
)

func TestMatrixIterate(t *testing.T) {
	a := MustMatrix[int](3, 3)
	_ = a.SetElement(2, 1, 21)
	_ = a.SetElement(0, 2, 2)
	_ = a.SetElement(0, 0, 0)
	var got [][3]int
	a.Iterate(func(i, j int, x int) bool {
		got = append(got, [3]int{i, j, x})
		return true
	})
	want := [][3]int{{0, 0, 0}, {0, 2, 2}, {2, 1, 21}}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("entry %d: %v want %v", k, got[k], want[k])
		}
	}
	// Early stop.
	count := 0
	a.Iterate(func(_, _ int, _ int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop: %d", count)
	}
}

func TestIterateRow(t *testing.T) {
	a := MustMatrix[int](3, 4)
	_ = a.SetElement(1, 3, 13)
	_ = a.SetElement(1, 0, 10)
	var cols []int
	if err := a.IterateRow(1, func(j int, x int) bool {
		cols = append(cols, j)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 3 {
		t.Fatalf("cols=%v", cols)
	}
	if err := a.IterateRow(5, func(int, int) bool { return true }); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatal("oob row")
	}
	// Empty row iterates nothing.
	ran := false
	_ = a.IterateRow(0, func(int, int) bool { ran = true; return true })
	if ran {
		t.Fatal("empty row")
	}
}

func TestVectorIterate(t *testing.T) {
	v := MustVector[string](5)
	_ = v.SetElement(4, "d")
	_ = v.SetElement(1, "a")
	var idx []int
	v.Iterate(func(i int, x string) bool {
		idx = append(idx, i)
		return true
	})
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 4 {
		t.Fatalf("idx=%v", idx)
	}
}

func TestInnerProduct(t *testing.T) {
	u := MustVector[int64](6)
	v := MustVector[int64](6)
	_ = u.SetElement(0, 2)
	_ = u.SetElement(2, 3)
	_ = u.SetElement(4, 5)
	_ = v.SetElement(2, 10)
	_ = v.SetElement(4, 100)
	_ = v.SetElement(5, 7)
	got, ok, err := InnerProduct(PlusTimes[int64](), u, v)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got != 3*10+5*100 {
		t.Fatalf("dot=%d", got)
	}
	// Empty intersection.
	w := MustVector[int64](6)
	_ = w.SetElement(1, 1)
	_, ok, err = InnerProduct(PlusTimes[int64](), u, w)
	if err != nil || ok {
		t.Fatal("empty intersection must report ok=false")
	}
	// Terminal early exit (any monoid).
	_, ok, err = InnerProduct(AnySecond[int64](), u, v)
	if err != nil || !ok {
		t.Fatal("any semiring")
	}
	// Dim mismatch.
	bad := MustVector[int64](7)
	if _, _, err := InnerProduct(PlusTimes[int64](), u, bad); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("dims")
	}
}

func TestExtractMatrixRowAndCol(t *testing.T) {
	a := MustMatrix[int64](3, 4)
	_ = a.SetElement(1, 0, 10)
	_ = a.SetElement(1, 3, 13)
	_ = a.SetElement(2, 3, 23)

	// Row 1 as a vector.
	w := MustVector[int64](4)
	if err := ExtractMatrixRow[int64, bool](w, nil, nil, a, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if w.Nvals() != 2 {
		t.Fatalf("row nvals=%d", w.Nvals())
	}
	if x, _ := w.GetElement(3); x != 13 {
		t.Fatal("row value")
	}

	// Column 3 as a vector.
	v := MustVector[int64](3)
	if err := ExtractMatrixCol[int64, bool](v, nil, nil, a, nil, 3, nil); err != nil {
		t.Fatal(err)
	}
	if v.Nvals() != 2 {
		t.Fatalf("col nvals=%d", v.Nvals())
	}
	if x, _ := v.GetElement(2); x != 23 {
		t.Fatal("col value")
	}

	// Subset of a row.
	ws := MustVector[int64](2)
	if err := ExtractMatrixRow[int64, bool](ws, nil, nil, a, 1, []int{3, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := ws.GetElement(0); x != 13 {
		t.Fatal("subset reorder")
	}
	if _, err := ws.GetElement(1); err == nil {
		t.Fatal("a(1,1) is empty")
	}
}

func TestAssignMatrixRow(t *testing.T) {
	a := MustMatrix[int64](3, 5)
	_ = a.SetElement(1, 0, 1)
	_ = a.SetElement(1, 2, 2)
	_ = a.SetElement(0, 4, 9)

	u := MustVector[int64](5)
	_ = u.SetElement(1, 11)
	_ = u.SetElement(2, 22)
	if err := AssignMatrixRow[int64, bool](a, nil, nil, u, 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Row 1 now mirrors u exactly (no accum → deletions where u empty).
	if _, err := a.GetElement(1, 0); err == nil {
		t.Fatal("a(1,0) must be deleted")
	}
	if x, _ := a.GetElement(1, 1); x != 11 {
		t.Fatal("a(1,1)")
	}
	if x, _ := a.GetElement(1, 2); x != 22 {
		t.Fatal("a(1,2)")
	}
	// Other rows untouched.
	if x, _ := a.GetElement(0, 4); x != 9 {
		t.Fatal("other row")
	}

	// Accumulate into a sub-region.
	u2 := MustVector[int64](2)
	_ = u2.SetElement(0, 100)
	if err := AssignMatrixRow[int64, bool](a, nil, Plus[int64](), u2, 1, []int{2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := a.GetElement(1, 2); x != 122 {
		t.Fatalf("accum region: %d", x)
	}
	// Position 3 (u2(1) empty, accum non-nil) untouched/absent.
	if _, err := a.GetElement(1, 3); err == nil {
		t.Fatal("a(1,3) should stay empty")
	}

	// Errors.
	if err := AssignMatrixRow[int64, bool](a, nil, nil, u, 7, nil, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatal("row oob")
	}
	if err := AssignMatrixRow[int64, bool](a, nil, nil, u2, 1, nil, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("dims")
	}
}
