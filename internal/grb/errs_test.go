package grb

import (
	"encoding/gob"
	"errors"
	"strings"
	"testing"
)

// deserializeWire encodes a hand-built wire image and feeds it to the
// matrix decoder, the shortest route to a syntactically valid gob stream
// whose declared shape lies.
func deserializeWire(img matrixWire[int64]) (*Matrix[int64], error) {
	var b strings.Builder
	if err := gob.NewEncoder(&b).Encode(img); err != nil {
		return nil, err
	}
	return DeserializeMatrix[int64](strings.NewReader(b.String()))
}

// TestErrorTaxonomy locks the error-reporting contract: every public entry
// point wraps its sentinel with %w (errors.Is must match) and prefixes the
// message with "grb.<op>:" so a failure names the operation that rejected
// the call. Adding an entry point without wrapping breaks this table.
func TestErrorTaxonomy(t *testing.T) {
	u3 := MustVector[int64](3)
	u4 := MustVector[int64](4)
	m22 := MustMatrix[int64](2, 2)
	m23 := MustMatrix[int64](2, 3)
	cases := []struct {
		name string
		op   string // expected "grb.<op>:" prefix
		want error
		call func() error
	}{
		{"mxm nil", "mxm", ErrUninitialized, func() error {
			return MxM[int64, int64, int64, bool](nil, nil, nil, PlusTimes[int64](), m22, m22, nil)
		}},
		{"mxm dims", "mxm", ErrDimensionMismatch, func() error {
			return MxM[int64, int64, int64, bool](m22, nil, nil, PlusTimes[int64](), m23, m22, nil)
		}},
		{"vxm nil", "vxm", ErrUninitialized, func() error {
			return VxM[int64, int64, int64, bool](nil, nil, nil, PlusTimes[int64](), u3, m22, nil)
		}},
		{"vxm dims", "vxm", ErrDimensionMismatch, func() error {
			return VxM[int64, int64, int64, bool](u3, nil, nil, PlusTimes[int64](), u4, m22, nil)
		}},
		{"mxv dims", "mxv", ErrDimensionMismatch, func() error {
			return MxV[int64, int64, int64, bool](u3, nil, nil, PlusTimes[int64](), m22, u4, nil)
		}},
		{"kronecker nil", "kronecker", ErrUninitialized, func() error {
			return Kronecker[int64, int64, int64, bool](nil, nil, nil, Times[int64](), m22, m22, nil)
		}},
		{"ewiseadd matrix dims", "eWiseAdd", ErrDimensionMismatch, func() error {
			return EWiseAddMatrix[int64, bool](m22, nil, nil, Plus[int64](), m22, m23, nil)
		}},
		{"ewisemult vector nil", "eWiseMult", ErrUninitialized, func() error {
			return EWiseMultVector[int64, int64, int64, bool](u3, nil, nil, nil, u3, u3, nil)
		}},
		{"ewiseunion vector dims", "eWiseUnion", ErrDimensionMismatch, func() error {
			return EWiseUnionVector[int64, bool](u3, nil, nil, Plus[int64](), u3, 0, u4, 0, nil)
		}},
		{"apply nil", "apply", ErrUninitialized, func() error {
			return ApplyVector[int64, int64, bool](u3, nil, nil, nil, u3, nil)
		}},
		{"apply bind nil", "apply", ErrUninitialized, func() error {
			return ApplyVectorBind2nd[int64, int64, int64, bool](u3, nil, nil, nil, u3, 1, nil)
		}},
		{"select dims", "select", ErrDimensionMismatch, func() error {
			return SelectVector[int64, bool](u3, nil, nil, ValueGT(int64(0)), u4, nil)
		}},
		{"assign index", "assign", ErrIndexOutOfBounds, func() error {
			return AssignVectorScalar[int64, bool](u3, nil, nil, 1, []int{9}, nil)
		}},
		{"assign dims", "assign", ErrDimensionMismatch, func() error {
			return AssignVector[int64, bool](u3, nil, nil, u4, []int{0}, nil)
		}},
		{"extract nil", "extract", ErrUninitialized, func() error {
			return ExtractVector[int64, bool](nil, nil, nil, u3, All, nil)
		}},
		{"extract index", "extract", ErrIndexOutOfBounds, func() error {
			return ExtractVector[int64, bool](u3, nil, nil, u3, []int{0, 7, 1}, nil)
		}},
		{"reduce nil", "reduce", ErrUninitialized, func() error {
			_, err := ReduceVectorToScalar(Monoid[int64]{}, u3)
			return err
		}},
		{"transpose dims", "transpose", ErrDimensionMismatch, func() error {
			return Transpose[int64, bool](m22, nil, nil, m23, nil)
		}},
		{"concat ragged", "concat", ErrInvalidValue, func() error {
			_, err := Concat([][]*Matrix[int64]{{m22, m22}, {m22}})
			return err
		}},
		{"split sums", "split", ErrDimensionMismatch, func() error {
			_, err := Split(m22, []int{1}, []int{2})
			return err
		}},
		{"serialize nil", "serialize", ErrUninitialized, func() error {
			return SerializeMatrix[int64](&strings.Builder{}, nil)
		}},
		{"deserialize garbage", "deserialize", ErrCorrupt, func() error {
			_, err := DeserializeMatrix[int64](strings.NewReader("not a gob stream"))
			return err
		}},
		{"deserialize truncated", "deserialize", ErrCorrupt, func() error {
			var b strings.Builder
			if err := SerializeMatrix(&b, MustMatrix[int64](3, 3)); err != nil {
				return err
			}
			_, err := DeserializeMatrix[int64](strings.NewReader(b.String()[:b.Len()/2]))
			return err
		}},
		{"deserialize shape lie", "deserialize", ErrCorrupt, func() error {
			_, err := deserializeWire(matrixWire[int64]{
				Version: serialVersion, NRows: 2, NCols: 2,
				P: []int{0, 1}, I: []int{0}, X: []int64{1},
			})
			return err
		}},
		{"deserialize index range", "deserialize", ErrCorrupt, func() error {
			_, err := deserializeWire(matrixWire[int64]{
				Version: serialVersion, NRows: 2, NCols: 2,
				P: []int{0, 1, 1}, I: []int{9}, X: []int64{1},
			})
			return err
		}},
		{"deserialize vector lie", "deserialize", ErrCorrupt, func() error {
			var b strings.Builder
			if err := gob.NewEncoder(&b).Encode(vectorWire[int64]{
				Version: serialVersion, N: 4, Idx: []int{0, 2}, X: []int64{1},
			}); err != nil {
				return err
			}
			_, err := DeserializeVector[int64](strings.NewReader(b.String()))
			return err
		}},
		{"build lengths", "build", ErrInvalidValue, func() error {
			return MustMatrix[int64](2, 2).Build([]int{0}, []int{0, 1}, []int64{1}, nil)
		}},
		{"import shape", "import", ErrInvalidValue, func() error {
			_, err := ImportCSR(2, 2, []int{0, 1}, []int{0}, []int64{1}, false)
			return err
		}},
		{"diag nil", "diag", ErrUninitialized, func() error {
			_, err := DiagMatrix[int64](nil, 0)
			return err
		}},
		{"innerProduct dims", "innerProduct", ErrDimensionMismatch, func() error {
			_, _, err := InnerProduct(PlusTimes[int64](), u3, u4)
			return err
		}},
		{"resize negative", "resize", ErrInvalidValue, func() error {
			return MustMatrix[int64](2, 2).Resize(-1, 2)
		}},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: errors.Is(%v, %v) = false", tc.name, err, tc.want)
		}
		if !strings.HasPrefix(err.Error(), "grb."+tc.op+":") {
			t.Errorf("%s: message %q lacks prefix %q", tc.name, err.Error(), "grb."+tc.op+":")
		}
	}
}

// TestHotPathAccessorsStayBare documents the deliberate exception: the
// element-level accessors return the sentinels unwrapped so the probe in a
// tight loop costs no allocation.
func TestHotPathAccessorsStayBare(t *testing.T) {
	v := MustVector[int64](4)
	if _, err := v.GetElement(2); err != ErrNoValue {
		t.Fatalf("GetElement miss: got %v, want bare ErrNoValue", err)
	}
	if err := v.SetElement(9, 1); err != ErrIndexOutOfBounds {
		t.Fatalf("SetElement oob: got %v, want bare ErrIndexOutOfBounds", err)
	}
	a := MustMatrix[int64](2, 2)
	if _, err := a.GetElement(0, 0); err != ErrNoValue {
		t.Fatalf("matrix GetElement miss: got %v, want bare ErrNoValue", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_, _ = v.GetElement(2)
	})
	if allocs != 0 {
		t.Fatalf("GetElement miss allocates %.1f per call", allocs)
	}
}
