package grb

import "testing"

func TestEWiseUnionVector(t *testing.T) {
	u := MustVector[int64](5)
	v := MustVector[int64](5)
	_ = u.SetElement(0, 10)
	_ = u.SetElement(2, 20)
	_ = v.SetElement(2, 1)
	_ = v.SetElement(4, 2)
	w := MustVector[int64](5)
	// minus with alpha=100, beta=1000.
	if err := EWiseUnionVector[int64, bool](w, nil, nil, Minus[int64](), u, 100, v, 1000, nil); err != nil {
		t.Fatal(err)
	}
	// w(0) = 10 - 1000 (beta); w(2) = 20 - 1; w(4) = 100 - 2 (alpha).
	cases := map[int]int64{0: -990, 2: 19, 4: 98}
	if w.Nvals() != len(cases) {
		t.Fatalf("nvals=%d", w.Nvals())
	}
	for i, want := range cases {
		if x, _ := w.GetElement(i); x != want {
			t.Fatalf("w(%d)=%d want %d", i, x, want)
		}
	}
}

func TestEWiseUnionMatrix(t *testing.T) {
	a := MustMatrix[float64](2, 2)
	b := MustMatrix[float64](2, 2)
	_ = a.SetElement(0, 0, 3)
	_ = b.SetElement(1, 1, 4)
	_ = a.SetElement(0, 1, 1)
	_ = b.SetElement(0, 1, 2)
	c := MustMatrix[float64](2, 2)
	if err := EWiseUnionMatrix[float64, bool](c, nil, nil, Div[float64](), a, -1, b, 2, nil); err != nil {
		t.Fatal(err)
	}
	// c(0,0)=3/2 (beta), c(0,1)=1/2, c(1,1)=-1/4 (alpha).
	if x, _ := c.GetElement(0, 0); x != 1.5 {
		t.Fatalf("c(0,0)=%v", x)
	}
	if x, _ := c.GetElement(0, 1); x != 0.5 {
		t.Fatalf("c(0,1)=%v", x)
	}
	if x, _ := c.GetElement(1, 1); x != -0.25 {
		t.Fatalf("c(1,1)=%v", x)
	}
	// Compare against eWiseAdd difference: union with zero fills equals
	// eWiseAdd for plus.
	d1 := MustMatrix[float64](2, 2)
	if err := EWiseUnionMatrix[float64, bool](d1, nil, nil, Plus[float64](), a, 0, b, 0, nil); err != nil {
		t.Fatal(err)
	}
	d2 := MustMatrix[float64](2, 2)
	if err := EWiseAddMatrix[float64, bool](d2, nil, nil, Plus[float64](), a, b, nil); err != nil {
		t.Fatal(err)
	}
	i1, j1, x1 := d1.ExtractTuples()
	i2, j2, x2 := d2.ExtractTuples()
	if len(i1) != len(i2) {
		t.Fatal("pattern")
	}
	for k := range i1 {
		if i1[k] != i2[k] || j1[k] != j2[k] || x1[k] != x2[k] {
			t.Fatal("zero-fill union must equal eWiseAdd for plus")
		}
	}
}
