// Package grb is a pure-Go, generic implementation of the GraphBLAS: sparse
// linear algebra over arbitrary semirings, designed as the substrate for the
// LAGraph algorithm collection.
//
// The package follows the GraphBLAS C API specification in structure and
// semantics — opaque Matrix and Vector objects, masks, accumulators,
// descriptors, and a non-blocking execution model with pending tuples and
// zombies — but maps the C API's polymorphism onto Go type parameters.
//
// All operations are safe for concurrent use on distinct objects. A single
// Matrix or Vector must not be mutated concurrently.
package grb

import "errors"

// API errors, mirroring the GraphBLAS C API error classes.
var (
	// ErrUninitialized is returned when an operation receives a nil object.
	ErrUninitialized = errors.New("grb: uninitialized (nil) object")
	// ErrDimensionMismatch is returned when object dimensions are not
	// compatible with the requested operation.
	ErrDimensionMismatch = errors.New("grb: dimension mismatch")
	// ErrIndexOutOfBounds is returned when a row or column index lies
	// outside the object's dimensions.
	ErrIndexOutOfBounds = errors.New("grb: index out of bounds")
	// ErrInvalidValue is returned for malformed arguments (negative sizes,
	// unsorted import arrays, ...).
	ErrInvalidValue = errors.New("grb: invalid value")
	// ErrNoValue is returned by element extraction when no entry is stored
	// at the requested position.
	ErrNoValue = errors.New("grb: no entry at index")
	// ErrEmptyObject is returned by reductions without an identity over an
	// object holding no entries.
	ErrEmptyObject = errors.New("grb: empty object")
	// ErrCanceled is returned when a caller-supplied deadline or
	// cancellation interrupts a multi-step computation. Kernels themselves
	// never observe deadlines (they are deterministic functions of their
	// operands); the algorithm layers check a context between whole
	// GraphBLAS operations and wrap this sentinel, so callers match with
	// errors.Is across every layer.
	ErrCanceled = errors.New("grb: operation canceled")
	// ErrCorrupt is returned when serialized bytes fail integrity or shape
	// validation during deserialization: a truncated stream, a version the
	// decoder does not speak, dimensions that contradict the array lengths,
	// or indices out of range. Every Deserialize* failure wraps this
	// sentinel, so a caller holding untrusted bytes needs exactly one
	// errors.Is check to distinguish "bad bytes" from programming errors.
	ErrCorrupt = errors.New("grb: corrupt serialized data")
)

// Int is the constraint satisfied by the built-in signed and unsigned
// integer types.
type Int interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64
}

// Float is the constraint satisfied by the built-in floating point types.
type Float interface{ ~float32 | ~float64 }

// Number is the constraint satisfied by every built-in numeric type for
// which the built-in operator sets are defined.
type Number interface{ Int | Float }

// UnaryOp maps a single input value to an output value, as used by Apply.
type UnaryOp[A, C any] func(A) C

// BinaryOp combines two values. It is the element-wise operator of
// eWiseAdd/eWiseMult, the multiplicative operator of a semiring, the
// duplicate-resolution operator of Build, and the accumulator of every
// operation.
type BinaryOp[A, B, C any] func(A, B) C

// IndexUnaryOp maps a stored value together with its position to an output
// value. It drives Select and ApplyIndex. For vectors the column index j is
// always 0.
type IndexUnaryOp[A, C any] func(a A, i, j int) C

// Monoid is an associative BinaryOp with an identity element. Terminal, if
// non-nil, reports whether a value is an annihilator for the operation
// (e.g. true for LOR, 0 for TIMES over integers): once a reduction reaches
// a terminal value it may stop early. The paper (§II-A) describes this
// early-exit mechanism as the enabler of direction-optimized BFS.
type Monoid[T any] struct {
	Op       func(T, T) T
	Identity T
	Terminal func(T) bool // nil if the monoid has no terminal value
}

// Semiring pairs an additive Monoid with a multiplicative BinaryOp, the
// ⊕.⊗ of the GraphBLAS math specification.
type Semiring[A, B, C any] struct {
	Add Monoid[C]
	Mul BinaryOp[A, B, C]
}

//
// Built-in unary operators.
//

// Identity returns the identity unary operator.
func Identity[T any]() UnaryOp[T, T] { return func(x T) T { return x } }

// AbsOp returns |x| for signed numeric types.
func AbsOp[T Number]() UnaryOp[T, T] {
	return func(x T) T {
		if x < 0 {
			return -x
		}
		return x
	}
}

// AInv returns the additive inverse operator -x.
func AInv[T Number]() UnaryOp[T, T] { return func(x T) T { return -x } }

// MInv returns the multiplicative inverse operator 1/x.
func MInv[T Float]() UnaryOp[T, T] { return func(x T) T { return 1 / x } }

// LNot returns logical negation.
func LNot() UnaryOp[bool, bool] { return func(x bool) bool { return !x } }

// One returns the operator that maps every input to 1, useful for
// converting a matrix to its pattern.
func One[A any, C Number]() UnaryOp[A, C] { return func(A) C { return 1 } }

//
// Built-in binary operators.
//

// First returns f(x,y) = x.
func First[A, B any]() BinaryOp[A, B, A] { return func(x A, _ B) A { return x } }

// Second returns f(x,y) = y.
func Second[A, B any]() BinaryOp[A, B, B] { return func(_ A, y B) B { return y } }

// Pair returns f(x,y) = 1 regardless of the inputs (the ONEB operator of
// the v2 C API), the workhorse of triangle counting.
func Pair[A, B any, C Number]() BinaryOp[A, B, C] { return func(A, B) C { return 1 } }

// Plus returns x + y.
func Plus[T Number]() BinaryOp[T, T, T] { return func(x, y T) T { return x + y } }

// Minus returns x - y.
func Minus[T Number]() BinaryOp[T, T, T] { return func(x, y T) T { return x - y } }

// Times returns x * y.
func Times[T Number]() BinaryOp[T, T, T] { return func(x, y T) T { return x * y } }

// Div returns x / y.
func Div[T Number]() BinaryOp[T, T, T] { return func(x, y T) T { return x / y } }

// MinOp returns min(x, y).
func MinOp[T Number]() BinaryOp[T, T, T] {
	return func(x, y T) T {
		if y < x {
			return y
		}
		return x
	}
}

// MaxOp returns max(x, y).
func MaxOp[T Number]() BinaryOp[T, T, T] {
	return func(x, y T) T {
		if y > x {
			return y
		}
		return x
	}
}

// LOr returns logical or.
func LOr() BinaryOp[bool, bool, bool] { return func(x, y bool) bool { return x || y } }

// LAnd returns logical and.
func LAnd() BinaryOp[bool, bool, bool] { return func(x, y bool) bool { return x && y } }

// LXor returns logical exclusive-or.
func LXor() BinaryOp[bool, bool, bool] { return func(x, y bool) bool { return x != y } }

// Eq returns x == y.
func Eq[T comparable]() BinaryOp[T, T, bool] { return func(x, y T) bool { return x == y } }

// Ne returns x != y.
func Ne[T comparable]() BinaryOp[T, T, bool] { return func(x, y T) bool { return x != y } }

// Lt returns x < y.
func Lt[T Number]() BinaryOp[T, T, bool] { return func(x, y T) bool { return x < y } }

// Gt returns x > y.
func Gt[T Number]() BinaryOp[T, T, bool] { return func(x, y T) bool { return x > y } }

// Le returns x <= y.
func Le[T Number]() BinaryOp[T, T, bool] { return func(x, y T) bool { return x <= y } }

// Ge returns x >= y.
func Ge[T Number]() BinaryOp[T, T, bool] { return func(x, y T) bool { return x >= y } }

//
// Built-in monoids.
//

// PlusMonoid is the (+, 0) monoid.
func PlusMonoid[T Number]() Monoid[T] {
	return Monoid[T]{Op: func(x, y T) T { return x + y }, Identity: 0}
}

// TimesMonoid is the (*, 1) monoid. For integer types 0 is terminal.
func TimesMonoid[T Number]() Monoid[T] {
	return Monoid[T]{Op: func(x, y T) T { return x * y }, Identity: 1}
}

// MinMonoid is the (min, +inf) monoid; the maximum representable value is
// the identity and the minimum representable value is terminal.
func MinMonoid[T Number]() Monoid[T] {
	hi, lo := maxVal[T](), minVal[T]()
	return Monoid[T]{
		Op: func(x, y T) T {
			if y < x {
				return y
			}
			return x
		},
		Identity: hi,
		Terminal: func(x T) bool { return x == lo },
	}
}

// MaxMonoid is the (max, -inf) monoid.
func MaxMonoid[T Number]() Monoid[T] {
	hi, lo := maxVal[T](), minVal[T]()
	return Monoid[T]{
		Op: func(x, y T) T {
			if y > x {
				return y
			}
			return x
		},
		Identity: lo,
		Terminal: func(x T) bool { return x == hi },
	}
}

// LOrMonoid is the (||, false) monoid; true is terminal. Its terminal value
// is what makes the "pull" step of direction-optimized BFS cheap.
func LOrMonoid() Monoid[bool] {
	return Monoid[bool]{
		Op:       func(x, y bool) bool { return x || y },
		Identity: false,
		Terminal: func(x bool) bool { return x },
	}
}

// LAndMonoid is the (&&, true) monoid; false is terminal.
func LAndMonoid() Monoid[bool] {
	return Monoid[bool]{
		Op:       func(x, y bool) bool { return x && y },
		Identity: true,
		Terminal: func(x bool) bool { return !x },
	}
}

// LXorMonoid is the (xor, false) monoid.
func LXorMonoid() Monoid[bool] {
	return Monoid[bool]{Op: func(x, y bool) bool { return x != y }, Identity: false}
}

// AnyMonoid returns either operand (here: the second). It is the ANY monoid
// of SuiteSparse: every value is terminal, so reductions stop at the first
// hit.
func AnyMonoid[T any]() Monoid[T] {
	var zero T
	return Monoid[T]{
		Op:       func(_, y T) T { return y },
		Identity: zero,
		Terminal: func(T) bool { return true },
	}
}

//
// Built-in semirings. The names follow the AddMonoid+MulOp convention of
// the C API (PlusTimes = GrB_PLUS_TIMES_SEMIRING_*).
//

// PlusTimes is the conventional arithmetic semiring (+, *).
func PlusTimes[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: PlusMonoid[T](), Mul: Times[T]()}
}

// MinPlus is the tropical semiring (min, +) of shortest paths.
func MinPlus[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: Plus[T]()}
}

// MaxPlus is the (max, +) semiring of critical paths.
func MaxPlus[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MaxMonoid[T](), Mul: Plus[T]()}
}

// MinTimes is the (min, *) semiring.
func MinTimes[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: Times[T]()}
}

// MinMax is the (min, max) semiring of bottleneck paths.
func MinMax[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: MaxOp[T]()}
}

// LorLand is the boolean (||, &&) semiring of reachability; the
// LogicalSemiring of Fig. 2 of the paper.
func LorLand() Semiring[bool, bool, bool] {
	return Semiring[bool, bool, bool]{Add: LOrMonoid(), Mul: LAnd()}
}

// PlusPair is the (+, pair) semiring that counts set intersections; the
// triangle-counting semiring.
func PlusPair[A, B any, C Number]() Semiring[A, B, C] {
	return Semiring[A, B, C]{Add: PlusMonoid[C](), Mul: Pair[A, B, C]()}
}

// PlusFirst is the (+, first) semiring.
func PlusFirst[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: PlusMonoid[T](), Mul: First[T, T]()}
}

// PlusSecond is the (+, second) semiring.
func PlusSecond[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: PlusMonoid[T](), Mul: Second[T, T]()}
}

// MinFirst is the (min, first) semiring: w = A min.first v selects the
// smallest contributing row value, used by BFS parent computation.
func MinFirst[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: First[T, T]()}
}

// MinSecond is the (min, second) semiring.
func MinSecond[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MinMonoid[T](), Mul: Second[T, T]()}
}

// MaxSecond is the (max, second) semiring.
func MaxSecond[T Number]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: MaxMonoid[T](), Mul: Second[T, T]()}
}

// AnySecond is the (any, second) semiring: the cheapest possible "does a
// neighbour exist, and carry its value" reduction.
func AnySecond[T any]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: AnyMonoid[T](), Mul: Second[T, T]()}
}

// AnyFirst is the (any, first) semiring.
func AnyFirst[T any]() Semiring[T, T, T] {
	return Semiring[T, T, T]{Add: AnyMonoid[T](), Mul: First[T, T]()}
}

// maxVal returns the largest representable value of T: the MIN monoid
// identity ("+infinity"; literally +Inf for floating point types). It is
// computed by doubling until overflow, which Go defines as wraparound for
// integers and saturation to +Inf for floats.
func maxVal[T Number]() T {
	m := T(1)
	for {
		n := m + m
		if n <= m {
			break
		}
		m = n
	}
	return m - 1 + m
}

// minVal returns the smallest representable value of T: the MAX monoid
// identity (0 for unsigned, -Inf for floats).
func minVal[T Number]() T {
	if T(0)-T(1) > 0 { // unsigned
		return 0
	}
	return -maxVal[T]() - 1
}
