package grb

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// The host running the test suite may have a single CPU; these tests pin
// the worker count above 1 so the concurrent kernel paths are exercised
// and verified deterministic regardless of GOMAXPROCS.

func TestParallelRangesCoversAll(t *testing.T) {
	defer SetParallelism(SetParallelism(8))
	var count atomic.Int64
	seen := make([]atomic.Bool, 1000)
	parallelRanges(1000, 10, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if seen[i].Swap(true) {
				t.Error("index visited twice")
			}
			count.Add(1)
		}
	})
	if count.Load() != 1000 {
		t.Fatalf("visited %d of 1000", count.Load())
	}
	// Degenerate cases.
	parallelRanges(0, 1, func(lo, hi int) { t.Error("should not run") })
	ran := false
	parallelRanges(1, 100, func(lo, hi int) { ran = lo == 0 && hi == 1 })
	if !ran {
		t.Fatal("single-element range")
	}
}

func TestSetParallelism(t *testing.T) {
	old := SetParallelism(3)
	if workers() != 3 {
		t.Fatalf("workers=%d", workers())
	}
	SetParallelism(0)
	if workers() < 1 {
		t.Fatal("default workers must be >= 1")
	}
	SetParallelism(old)
}

// TestParallelDeterminism checks that multi-worker kernels produce results
// identical to single-worker runs (the row-partitioned design guarantees
// it).
func TestParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 300
	a := MustMatrix[int64](n, n)
	b := MustMatrix[int64](n, n)
	for k := 0; k < 6000; k++ {
		_ = a.SetElement(rng.Intn(n), rng.Intn(n), int64(rng.Intn(9)-4))
		_ = b.SetElement(rng.Intn(n), rng.Intn(n), int64(rng.Intn(9)-4))
	}

	run := func() (*Matrix[int64], *Matrix[int64], *Vector[int64]) {
		c := MustMatrix[int64](n, n)
		if err := MxM[int64, int64, int64, bool](c, nil, nil, PlusTimes[int64](), a, b, nil); err != nil {
			t.Fatal(err)
		}
		e := MustMatrix[int64](n, n)
		if err := EWiseAddMatrix[int64, bool](e, nil, nil, Plus[int64](), a, b, nil); err != nil {
			t.Fatal(err)
		}
		r := MustVector[int64](n)
		if err := ReduceMatrixToVector[int64, bool](r, nil, nil, PlusMonoid[int64](), a, nil); err != nil {
			t.Fatal(err)
		}
		return c, e, r
	}

	defer SetParallelism(SetParallelism(1))
	c1, e1, r1 := run()
	SetParallelism(7)
	c2, e2, r2 := run()

	eqM := func(x, y *Matrix[int64]) bool {
		xi, xj, xv := x.ExtractTuples()
		yi, yj, yv := y.ExtractTuples()
		if len(xi) != len(yi) {
			return false
		}
		for k := range xi {
			if xi[k] != yi[k] || xj[k] != yj[k] || xv[k] != yv[k] {
				return false
			}
		}
		return true
	}
	if !eqM(c1, c2) {
		t.Fatal("MxM differs across worker counts")
	}
	if !eqM(e1, e2) {
		t.Fatal("eWiseAdd differs across worker counts")
	}
	i1, v1 := r1.ExtractTuples()
	i2, v2 := r2.ExtractTuples()
	if len(i1) != len(i2) {
		t.Fatal("reduce length differs")
	}
	for k := range i1 {
		if i1[k] != i2[k] || v1[k] != v2[k] {
			t.Fatal("reduce differs across worker counts")
		}
	}
}

// TestConcurrentReads checks that read-only operations on a shared,
// materialized matrix are safe from multiple goroutines.
func TestConcurrentReads(t *testing.T) {
	n := 200
	a := MustMatrix[float64](n, n)
	for k := 0; k < 4000; k++ {
		_ = a.SetElement((k*7)%n, (k*13)%n, float64(k))
	}
	a.Wait()
	// No cache pre-build: the first concurrent pull builds the CSC cache
	// under its mutex.

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int) {
			v := MustVector[float64](n)
			for i := 0; i < n; i++ {
				_ = v.SetElement(i, float64(i+seed))
			}
			w2 := MustVector[float64](n)
			// Alternate push and pull so both access paths (including the
			// lazy CSC build) run concurrently.
			d := &Descriptor{Dir: DirPush}
			if seed%2 == 0 {
				d.Dir = DirPull
			}
			err := MxV(w2, (*Vector[bool])(nil), nil, PlusTimes[float64](), a, v, d)
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
