package grb

// Reductions of Table I: matrix→vector (row-wise), matrix→scalar, and
// vector→scalar, all driven by a Monoid. Terminal monoid values short-cut
// the reduction (§II-A's early-exit mechanism).

// ReduceMatrixToVector computes w⟨m⟩ ⊙= ⊕ⱼ A(:,j): each output element is
// the monoid-reduction of the corresponding row of A (or column, with
// TranA).
func ReduceMatrixToVector[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], mon Monoid[T], a *Matrix[T], desc *Descriptor) error {
	if w == nil || a == nil || mon.Op == nil {
		return opError("reduce", ErrUninitialized)
	}
	d := desc.get()
	ar := a.nr
	if d.TranA {
		ar = a.nc
	}
	if w.n != ar {
		return opErrorf("reduce", ErrDimensionMismatch, "w is %d, A has %d rows", w.n, ar)
	}
	ca := orientedCSR(a, d.TranA)
	nvec := ca.nvecs()
	// Reduce rows in flop-balanced parallel ranges staged per row, then
	// compact in order (a hub row no longer serializes the reduction).
	vals := make([]T, nvec)
	nonempty := make([]bool, nvec)
	parallelWork(nvec, 1<<12, func(k int) int { return ca.p[k+1] - ca.p[k] + 1 }, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			if ca.p[k+1] == ca.p[k] {
				continue
			}
			_, cx := ca.vec(k)
			acc := cx[0]
			for t := 1; t < len(cx); t++ {
				if mon.Terminal != nil && mon.Terminal(acc) {
					break
				}
				acc = mon.Op(acc, cx[t])
			}
			vals[k] = acc
			nonempty[k] = true
		}
	})
	zi := make([]int, 0, nvec)
	zx := make([]T, 0, nvec)
	for k := 0; k < nvec; k++ {
		if nonempty[k] {
			zi = append(zi, ca.majorOf(k))
			zx = append(zx, vals[k])
		}
	}
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// ReduceMatrixToScalar reduces every stored entry of A with the monoid,
// starting from its identity.
func ReduceMatrixToScalar[T any](mon Monoid[T], a *Matrix[T]) (T, error) {
	var zero T
	if a == nil || mon.Op == nil {
		return zero, opError("reduce", ErrUninitialized)
	}
	c := a.materializedCSR()
	n := len(c.x)
	if n == 0 {
		return mon.Identity, nil
	}
	// Chunk boundaries depend only on n (never the worker count), and
	// partials fold in chunk order, so the reduction is deterministic at
	// any parallelism even for rounding-sensitive monoids.
	bounds := workChunks(n, func(int) int { return 1 }, 1<<14, pushMaxChunks)
	partial := make([]T, len(bounds)-1)
	runChunks(bounds, func(b, lo, hi int) {
		acc := mon.Identity
		for t := lo; t < hi; t++ {
			if mon.Terminal != nil && mon.Terminal(acc) {
				break
			}
			acc = mon.Op(acc, c.x[t])
		}
		partial[b] = acc
	})
	acc := mon.Identity
	for _, p := range partial {
		if mon.Terminal != nil && mon.Terminal(acc) {
			break
		}
		acc = mon.Op(acc, p)
	}
	return acc, nil
}

// ReduceVectorToScalar reduces every stored entry of u with the monoid.
func ReduceVectorToScalar[T any](mon Monoid[T], u *Vector[T]) (T, error) {
	var zero T
	if u == nil || mon.Op == nil {
		return zero, opError("reduce", ErrUninitialized)
	}
	_, ux := u.materialized()
	acc := mon.Identity
	for _, x := range ux {
		if mon.Terminal != nil && mon.Terminal(acc) {
			break
		}
		acc = mon.Op(acc, x)
	}
	return acc, nil
}
