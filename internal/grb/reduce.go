package grb

// Reductions of Table I: matrix→vector (row-wise), matrix→scalar, and
// vector→scalar, all driven by a Monoid. Terminal monoid values short-cut
// the reduction (§II-A's early-exit mechanism).

// ReduceMatrixToVector computes w⟨m⟩ ⊙= ⊕ⱼ A(:,j): each output element is
// the monoid-reduction of the corresponding row of A (or column, with
// TranA).
func ReduceMatrixToVector[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], mon Monoid[T], a *Matrix[T], desc *Descriptor) error {
	if w == nil || a == nil || mon.Op == nil {
		return ErrUninitialized
	}
	d := desc.get()
	ar := a.nr
	if d.TranA {
		ar = a.nc
	}
	if w.n != ar {
		return ErrDimensionMismatch
	}
	ca := orientedCSR(a, d.TranA)
	nvec := ca.nvecs()
	zi := make([]int, 0, nvec)
	zx := make([]T, 0, nvec)
	type part struct {
		i []int
		x []T
	}
	parts := make([]part, 0)
	// Reduce rows in parallel blocks, then concatenate in order.
	nblocks := workers()
	if nblocks > nvec {
		nblocks = 1
	}
	parts = make([]part, nblocks)
	parallelRanges(nblocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * nvec / nblocks
			hi := (b + 1) * nvec / nblocks
			for k := lo; k < hi; k++ {
				if ca.p[k+1] == ca.p[k] {
					continue
				}
				_, cx := ca.vec(k)
				acc := cx[0]
				for t := 1; t < len(cx); t++ {
					if mon.Terminal != nil && mon.Terminal(acc) {
						break
					}
					acc = mon.Op(acc, cx[t])
				}
				parts[b].i = append(parts[b].i, ca.majorOf(k))
				parts[b].x = append(parts[b].x, acc)
			}
		}
	})
	for _, p := range parts {
		zi = append(zi, p.i...)
		zx = append(zx, p.x...)
	}
	return writeVectorResult(w, mask, accum, zi, zx, d)
}

// ReduceMatrixToScalar reduces every stored entry of A with the monoid,
// starting from its identity.
func ReduceMatrixToScalar[T any](mon Monoid[T], a *Matrix[T]) (T, error) {
	var zero T
	if a == nil || mon.Op == nil {
		return zero, ErrUninitialized
	}
	c := a.materializedCSR()
	n := len(c.x)
	if n == 0 {
		return mon.Identity, nil
	}
	nblocks := workers()
	if nblocks > n {
		nblocks = 1
	}
	partial := make([]T, nblocks)
	parallelRanges(nblocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * n / nblocks
			hi := (b + 1) * n / nblocks
			acc := mon.Identity
			for t := lo; t < hi; t++ {
				if mon.Terminal != nil && mon.Terminal(acc) {
					break
				}
				acc = mon.Op(acc, c.x[t])
			}
			partial[b] = acc
		}
	})
	acc := mon.Identity
	for _, p := range partial {
		acc = mon.Op(acc, p)
	}
	return acc, nil
}

// ReduceVectorToScalar reduces every stored entry of u with the monoid.
func ReduceVectorToScalar[T any](mon Monoid[T], u *Vector[T]) (T, error) {
	var zero T
	if u == nil || mon.Op == nil {
		return zero, ErrUninitialized
	}
	_, ux := u.materialized()
	acc := mon.Identity
	for _, x := range ux {
		if mon.Terminal != nil && mon.Terminal(acc) {
			break
		}
		acc = mon.Op(acc, x)
	}
	return acc, nil
}
