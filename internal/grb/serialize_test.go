package grb

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestSerializeMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := MustMatrix[float64](50, 70)
	for k := 0; k < 500; k++ {
		_ = a.SetElement(rng.Intn(50), rng.Intn(70), rng.Float64())
	}
	var buf bytes.Buffer
	if err := SerializeMatrix(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := DeserializeMatrix[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	ai, aj, ax := a.ExtractTuples()
	bi, bj, bx := b.ExtractTuples()
	if len(ai) != len(bi) {
		t.Fatalf("nvals %d vs %d", len(ai), len(bi))
	}
	for k := range ai {
		if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
			t.Fatalf("entry %d differs", k)
		}
	}
}

func TestSerializeHypersparseRoundTrip(t *testing.T) {
	n := 1 << 40
	a := MustMatrix[int64](n, n)
	a.SetFormat(FormatHyper)
	_ = a.SetElement(1<<35, 7, 42)
	_ = a.SetElement(3, 1<<30, 43)
	var buf bytes.Buffer
	if err := SerializeMatrix(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := DeserializeMatrix[int64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Nrows() != n || b.Nvals() != 2 {
		t.Fatalf("dims/nvals: %d %d", b.Nrows(), b.Nvals())
	}
	if v, _ := b.GetElement(1<<35, 7); v != 42 {
		t.Fatal("entry lost")
	}
}

func TestSerializeEmptyAndStructTypes(t *testing.T) {
	// Empty matrix.
	a := MustMatrix[int](4, 6)
	var buf bytes.Buffer
	if err := SerializeMatrix(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := DeserializeMatrix[int](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Nrows() != 4 || b.Ncols() != 6 || b.Nvals() != 0 {
		t.Fatal("empty roundtrip")
	}

	// User-defined entry type.
	type pt struct{ X, Y float64 }
	m := MustMatrix[pt](3, 3)
	_ = m.SetElement(1, 2, pt{1.5, -2})
	buf.Reset()
	if err := SerializeMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := DeserializeMatrix[pt](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m2.GetElement(1, 2); v != (pt{1.5, -2}) {
		t.Fatalf("struct entry %+v", v)
	}
}

func TestSerializeVectorRoundTrip(t *testing.T) {
	v := MustVector[int32](100)
	_ = v.SetElement(3, 33)
	_ = v.SetElement(77, 777)
	var buf bytes.Buffer
	if err := SerializeVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	w, err := DeserializeVector[int32](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 100 || w.Nvals() != 2 {
		t.Fatal("shape")
	}
	if x, _ := w.GetElement(77); x != 777 {
		t.Fatal("value")
	}
}

func TestDeserializeGarbage(t *testing.T) {
	if _, err := DeserializeMatrix[int](bytes.NewReader([]byte("not gob"))); err == nil {
		t.Fatal("garbage must fail")
	}
	if _, err := DeserializeVector[int](bytes.NewReader(nil)); err == nil {
		t.Fatal("empty must fail")
	}
	if err := SerializeMatrix[int](&bytes.Buffer{}, nil); !errors.Is(err, ErrUninitialized) {
		t.Fatal("nil matrix")
	}
}
