package grb_test

// Mixed-domain conformance: the GraphBLAS allows the two multiply inputs
// and the output to live in different domains. These tests drive the
// kernels with heterogeneous semirings and compare against the mimic.

import (
	"math/rand"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/grb/ref"
)

func eqMatG[T comparable](t *testing.T, got *grb.Matrix[T], want *ref.Mat[T]) {
	t.Helper()
	is, js, xs := got.ExtractTuples()
	seen := map[[2]int]bool{}
	for k := range is {
		i, j := is[k], js[k]
		if !want.Set[i][j] || want.Val[i][j] != xs[k] {
			t.Fatalf("entry (%d,%d)=%v want set=%v val=%v", i, j, xs[k], want.Set[i][j], want.Val[i][j])
		}
		seen[[2]int{i, j}] = true
	}
	for i := 0; i < want.NRows; i++ {
		for j := 0; j < want.NCols; j++ {
			if want.Set[i][j] && !seen[[2]int{i, j}] {
				t.Fatalf("missing (%d,%d)", i, j)
			}
		}
	}
}

func eqVecG[T comparable](t *testing.T, got *grb.Vector[T], want *ref.Vec[T]) {
	t.Helper()
	is, xs := got.ExtractTuples()
	seen := map[int]bool{}
	for k := range is {
		if !want.Set[is[k]] || want.Val[is[k]] != xs[k] {
			t.Fatalf("entry %d=%v", is[k], xs[k])
		}
		seen[is[k]] = true
	}
	for i := 0; i < want.N; i++ {
		if want.Set[i] && !seen[i] {
			t.Fatalf("missing %d", i)
		}
	}
}

// lorLt: bool = OR over k of (a < b) — int64 inputs, bool output.
func lorLt() grb.Semiring[int64, int64, bool] {
	return grb.Semiring[int64, int64, bool]{Add: grb.LOrMonoid(), Mul: grb.Lt[int64]()}
}

func TestConformanceMixedDomainMxM(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randMatrix(rng, m, k, 0.25)
		b := randMatrix(rng, k, n, 0.25)
		for _, method := range []grb.MxMMethod{grb.MxMGustavson, grb.MxMDot, grb.MxMHeap} {
			c := grb.MustMatrix[bool](m, n)
			d := grb.Descriptor{Method: method}
			if err := grb.MxM[int64, int64, bool, bool](c, nil, nil, lorLt(), a, b, &d); err != nil {
				t.Fatal(err)
			}
			want := ref.NewMat[bool](m, n)
			ref.MxM[int64, int64, bool, bool](want, nil, nil, lorLt(), ref.FromMatrix(a), ref.FromMatrix(b), ref.Desc{})
			eqMatG(t, c, want)
		}
	}
}

func TestConformanceMixedDomainVxM(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	// plus.pair: int64 count of reachable-by-one-hop contributions from a
	// bool frontier over a float-weighted matrix.
	s := grb.Semiring[bool, int64, int64]{Add: grb.PlusMonoid[int64](), Mul: grb.Pair[bool, int64, int64]()}
	for trial := 0; trial < 8; trial++ {
		m, n := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randMatrix(rng, m, n, 0.2)
		u := grb.MustVector[bool](m)
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.4 {
				_ = u.SetElement(i, rng.Float64() < 0.5)
			}
		}
		for _, dir := range []grb.Direction{grb.DirPush, grb.DirPull} {
			w := grb.MustVector[int64](n)
			d := grb.Descriptor{Dir: dir}
			if err := grb.VxM[int64, bool, int64, bool](w, nil, nil, s, u, a, &d); err != nil {
				t.Fatal(err)
			}
			want := ref.NewVec[int64](n)
			ref.VxM[int64, bool, int64, bool](want, nil, nil, s, ref.FromVector(u), ref.FromMatrix(a), ref.Desc{})
			eqVecG(t, w, want)
		}
	}
}

func TestConformanceMixedEWiseAndApply(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m, n := 25, 20
	a := randMatrix(rng, m, n, 0.3)
	b := randMatrix(rng, m, n, 0.3)

	// eWiseMult with comparison output.
	c := grb.MustMatrix[bool](m, n)
	if err := grb.EWiseMultMatrix[int64, int64, bool, bool](c, nil, nil, grb.Le[int64](), a, b, nil); err != nil {
		t.Fatal(err)
	}
	want := ref.NewMat[bool](m, n)
	ref.EWiseMultMat[int64, int64, bool, bool](want, nil, nil, grb.Le[int64](), ref.FromMatrix(a), ref.FromMatrix(b), ref.Desc{})
	eqMatG(t, c, want)

	// apply with domain change int64 → string-ish (use float64 to stay
	// comparable).
	f := func(x int64) float64 { return float64(x) / 2 }
	cf := grb.MustMatrix[float64](m, n)
	if err := grb.ApplyMatrix[int64, float64, bool](cf, nil, nil, f, a, nil); err != nil {
		t.Fatal(err)
	}
	wantF := ref.NewMat[float64](m, n)
	ref.Apply[int64, float64, bool](wantF, nil, nil, f, ref.FromMatrix(a), ref.Desc{})
	eqMatG(t, cf, wantF)
}

func TestUserDefinedTypes(t *testing.T) {
	// Entries of an arbitrary struct type: the "user-defined types" the C
	// API supports via void*; here they are ordinary Go structs.
	type edge struct {
		W   int
		Tag string
	}
	a := grb.MustMatrix[edge](3, 3)
	_ = a.SetElement(0, 1, edge{2, "a"})
	_ = a.SetElement(1, 2, edge{3, "b"})

	// Semiring over the struct: min-plus on W, concatenating tags.
	s := grb.Semiring[edge, edge, edge]{
		Add: grb.Monoid[edge]{
			Op: func(x, y edge) edge {
				if x.W <= y.W {
					return x
				}
				return y
			},
			Identity: edge{W: 1 << 30},
		},
		Mul: func(x, y edge) edge { return edge{x.W + y.W, x.Tag + y.Tag} },
	}
	c := grb.MustMatrix[edge](3, 3)
	if err := grb.MxM[edge, edge, edge, bool](c, nil, nil, s, a, a, nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetElement(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 5 || got.Tag != "ab" {
		t.Fatalf("got %+v", got)
	}
	if c.Nvals() != 1 {
		t.Fatalf("nvals=%d", c.Nvals())
	}
}
