package grb_test

// Third conformance wave: vector-level apply / select / extract / assign
// under all mask configurations and with accumulators.

import (
	"fmt"
	"math/rand"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/grb/ref"
)

func TestConformanceVectorOps(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(40)
		u := randVector(rng, n, 0.4)
		mask := randVector(rng, n, 0.5)
		wInit := randVector(rng, n, 0.3)
		idx := uniqueIdx(rng, n, 1+rng.Intn(n))
		for _, mc := range maskCases() {
			for _, withAccum := range []bool{false, true} {
				var accum grb.BinaryOp[int64, int64, int64]
				if withAccum {
					accum = grb.Plus[int64]()
				}
				var gm *grb.Vector[int64]
				var rm *ref.Vec[int64]
				if mc.useMask {
					gm = mask
					rm = ref.FromVector(mask)
				}
				d := mc.desc
				suffix := fmt.Sprintf("t%d/%s/accum=%v", trial, mc.name, withAccum)

				t.Run("apply/"+suffix, func(t *testing.T) {
					w := wInit.Dup()
					neg := func(x int64) int64 { return -x }
					if err := grb.ApplyVector(w, gm, accum, neg, u, &d); err != nil {
						t.Fatal(err)
					}
					want := ref.FromVector(wInit)
					ref.ApplyVec(want, rm, accum, neg, ref.FromVector(u), refDesc(d))
					eqVec(t, w, want)
				})

				t.Run("select/"+suffix, func(t *testing.T) {
					w := wInit.Dup()
					keep := grb.ValueGT(int64(0))
					if err := grb.SelectVector(w, gm, accum, keep, u, &d); err != nil {
						t.Fatal(err)
					}
					want := ref.FromVector(wInit)
					ref.SelectVec(want, rm, accum, keep, ref.FromVector(u), refDesc(d))
					eqVec(t, w, want)
				})

				t.Run("extract-all/"+suffix, func(t *testing.T) {
					w := wInit.Dup()
					if err := grb.ExtractVector(w, gm, accum, u, grb.All, &d); err != nil {
						t.Fatal(err)
					}
					want := ref.FromVector(wInit)
					ref.ExtractVec(want, rm, accum, ref.FromVector(u), nil, refDesc(d))
					eqVec(t, w, want)
				})

				if !mc.desc.Replace {
					t.Run("assign/"+suffix, func(t *testing.T) {
						sub := randVector(rng, len(idx), 0.5)
						w := wInit.Dup()
						if err := grb.AssignVector(w, gm, accum, sub, idx, &d); err != nil {
							t.Fatal(err)
						}
						want := ref.FromVector(wInit)
						ref.AssignVec(want, rm, accum, ref.FromVector(sub), idx, refDesc(d))
						eqVec(t, w, want)
					})
				}
			}
		}

		// Extract with an index list (shape change: no masks to keep the
		// output dimension simple).
		t.Run(fmt.Sprintf("t%d/extract-idx", trial), func(t *testing.T) {
			w := grb.MustVector[int64](len(idx))
			if err := grb.ExtractVector[int64, bool](w, nil, nil, u, idx, nil); err != nil {
				t.Fatal(err)
			}
			want := ref.NewVec[int64](len(idx))
			ref.ExtractVec[int64, bool](want, nil, nil, ref.FromVector(u), idx, ref.Desc{})
			eqVec(t, w, want)
		})
	}
}
