package grb

import (
	"math/rand"
	"testing"
)

// End-to-end algebraic laws: the kernels must realise the semiring
// algebra, so matrix identities that hold in exact arithmetic must hold
// for the computed results.

func randM(rng *rand.Rand, nr, nc, nnz int) *Matrix[int64] {
	a := MustMatrix[int64](nr, nc)
	for k := 0; k < nnz; k++ {
		_ = a.SetElement(rng.Intn(nr), rng.Intn(nc), int64(rng.Intn(7)-3))
	}
	return a
}

func matEqual(t *testing.T, a, b *Matrix[int64], what string) {
	t.Helper()
	ai, aj, ax := a.ExtractTuples()
	bi, bj, bx := b.ExtractTuples()
	if len(ai) != len(bi) {
		t.Fatalf("%s: nvals %d vs %d", what, len(ai), len(bi))
	}
	for k := range ai {
		if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
			t.Fatalf("%s: entry %d differs: (%d,%d,%d) vs (%d,%d,%d)",
				what, k, ai[k], aj[k], ax[k], bi[k], bj[k], bx[k])
		}
	}
}

func mxmInto(t *testing.T, nr, nc int, a, b *Matrix[int64], method MxMMethod) *Matrix[int64] {
	t.Helper()
	c := MustMatrix[int64](nr, nc)
	d := &Descriptor{Method: method}
	if err := MxM[int64, int64, int64, bool](c, nil, nil, PlusTimes[int64](), a, b, d); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMxMAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 6; trial++ {
		m, k1, k2, n := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15)
		a := randM(rng, m, k1, 30)
		b := randM(rng, k1, k2, 30)
		c := randM(rng, k2, n, 30)
		// (A·B)·C — Gustavson throughout.
		ab := mxmInto(t, m, k2, a, b, MxMGustavson)
		abc1 := mxmInto(t, m, n, ab, c, MxMGustavson)
		// A·(B·C) — heap throughout (also crosses kernels).
		bc := mxmInto(t, k1, n, b, c, MxMHeap)
		abc2 := mxmInto(t, m, n, a, bc, MxMHeap)
		matEqual(t, abc1, abc2, "associativity")
	}
}

func TestMxMDistributesOverEWiseAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 6; trial++ {
		m, k, n := 1+rng.Intn(15), 1+rng.Intn(15), 1+rng.Intn(15)
		a := randM(rng, m, k, 30)
		b := randM(rng, k, n, 30)
		c := randM(rng, k, n, 30)
		// A·(B+C)
		bpc := MustMatrix[int64](k, n)
		if err := EWiseAddMatrix[int64, bool](bpc, nil, nil, Plus[int64](), b, c, nil); err != nil {
			t.Fatal(err)
		}
		lhs := mxmInto(t, m, n, a, bpc, MxMGustavson)
		// A·B + A·C — may contain explicit zeros where the two products
		// cancel; A·(B+C) drops positions where B+C cancelled first. Add
		// both sides to a common zero matrix... instead compare values at
		// the union: lhs+0 vs ab+ac as eWiseAdd, then drop explicit zeros
		// from both.
		ab := mxmInto(t, m, n, a, b, MxMDot)
		ac := mxmInto(t, m, n, a, c, MxMDot)
		rhs := MustMatrix[int64](m, n)
		if err := EWiseAddMatrix[int64, bool](rhs, nil, nil, Plus[int64](), ab, ac, nil); err != nil {
			t.Fatal(err)
		}
		lhsNZ := dropZeros(t, lhs)
		rhsNZ := dropZeros(t, rhs)
		matEqual(t, lhsNZ, rhsNZ, "distributivity (nonzeros)")
	}
}

func dropZeros(t *testing.T, a *Matrix[int64]) *Matrix[int64] {
	t.Helper()
	out := MustMatrix[int64](a.Nrows(), a.Ncols())
	if err := SelectMatrix[int64, bool](out, nil, nil, ValueNE(int64(0)), a, nil); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTransposeProductIdentity(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 6; trial++ {
		m, k, n := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a := randM(rng, m, k, 40)
		b := randM(rng, k, n, 40)
		ab := mxmInto(t, m, n, a, b, MxMGustavson)
		abT := MustMatrix[int64](n, m)
		if err := Transpose[int64, bool](abT, nil, nil, ab, nil); err != nil {
			t.Fatal(err)
		}
		// Bᵀ·Aᵀ via descriptor transposes.
		btat := MustMatrix[int64](n, m)
		d := &Descriptor{TranA: true, TranB: true}
		if err := MxM[int64, int64, int64, bool](btat, nil, nil, PlusTimes[int64](), b, a, d); err != nil {
			t.Fatal(err)
		}
		matEqual(t, abT, btat, "(AB)ᵀ = BᵀAᵀ")
	}
}

func TestBFSSelfLoopsHarmless(t *testing.T) {
	// Self loops must not change reachability semantics in the kernels:
	// w = uᵀA with LOR over a matrix with diagonal entries just re-adds
	// already-present contributions.
	a := MustMatrix[float64](4, 4)
	_ = a.SetElement(0, 0, 1) // self loop
	_ = a.SetElement(0, 1, 1)
	_ = a.SetElement(1, 2, 1)
	u := MustVector[bool](4)
	_ = u.SetElement(0, true)
	logical := Semiring[bool, float64, bool]{Add: LOrMonoid(), Mul: First[bool, float64]()}
	w := MustVector[bool](4)
	if err := VxM[float64, bool, bool, bool](w, nil, nil, logical, u, a, nil); err != nil {
		t.Fatal(err)
	}
	if w.Nvals() != 2 { // 0 (self loop) and 1
		t.Fatalf("nvals=%d", w.Nvals())
	}
	if _, err := w.GetElement(1); err != nil {
		t.Fatal("neighbour missing")
	}
}
