package grb

import "sort"

// materializedCSR completes pending work and returns the row-major storage.
func (a *Matrix[T]) materializedCSR() *cs[T] {
	a.Wait()
	return a.csr
}

// materializedCSC returns the column-major view, building and caching it on
// first use. Kernels that prefer column access (dot-product mxm, pull mxv)
// call this; the cache is invalidated by any mutation. The build is
// mutex-guarded so that a fully-materialized matrix can be shared by
// concurrent read-only operations.
func (a *Matrix[T]) materializedCSC() *cs[T] {
	a.Wait()
	a.cscMu.Lock()
	defer a.cscMu.Unlock()
	if a.csc == nil {
		a.csc = transposeCS(a.csr)
	}
	return a.csc
}

// Materialize completes every lazy structure of the matrix: pending
// tuples and zombies are assembled and the column-oriented cache is
// built. After Materialize returns, read-only operations — including the
// pull and dot kernels that want column access — never mutate the matrix,
// so it can be shared by any number of concurrent readers. This is the
// "Wait before publish" step of the catalog locking protocol.
func (a *Matrix[T]) Materialize() {
	a.materializedCSC()
}

// transposeParallelMin is the entry count above which transposeCS runs the
// two-pass parallel bucket transpose instead of the serial one.
const transposeParallelMin = 1 << 14

// transposeCS returns the same entries with major and minor swapped. For
// standard targets it uses an O(nvals + nminor) bucket pass — parallelized
// as the classic two-pass transpose (per-chunk column counts → prefix sum
// → concurrent scatter at exact offsets) when the matrix is large; when
// the minor dimension is huge and the matrix sparse (hypersparse regime)
// it sorts tuples instead, keeping memory at O(nvals).
func transposeCS[T any](c *cs[T]) *cs[T] {
	if c.nminor >= hyperThresholdDim*hyperRatio && c.nvals() < c.nminor/hyperRatio {
		return transposeCSBySort(c)
	}
	t := &cs[T]{nmajor: c.nminor, nminor: c.nmajor}
	t.p = make([]int, c.nminor+1)
	nv := c.nvals()
	t.i = make([]int, nv)
	t.x = make([]T, nv)
	if nv >= transposeParallelMin && workers() > 1 && c.nminor <= nv {
		transposeParallel(c, t)
		return t
	}
	// Count entries per minor index.
	for _, j := range c.i {
		t.p[j+1]++
	}
	for k := 0; k < c.nminor; k++ {
		t.p[k+1] += t.p[k]
	}
	// Scatter. Walking stored vectors in ascending major order keeps each
	// output vector sorted.
	next := make([]int, c.nminor)
	copy(next, t.p[:c.nminor])
	for k := 0; k < c.nvecs(); k++ {
		row := c.majorOf(k)
		ci, cx := c.vec(k)
		for u := range ci {
			pos := next[ci[u]]
			next[ci[u]]++
			t.i[pos] = row
			t.x[pos] = cx[u]
		}
	}
	return t
}

// transposeParallel fills t (pre-sized) from c with the two-pass bucket
// transpose. Rows are cut at equal-entry boundaries; pass one counts each
// chunk's entries per column, a prefix turns the counts into exact write
// offsets, and pass two scatters every chunk concurrently. Entry positions
// are fully determined by the counts, so the output is identical to the
// serial transpose regardless of worker count or scheduling.
func transposeParallel[T any](c, t *cs[T]) {
	nvec := c.nvecs()
	bounds := workChunks(nvec, func(k int) int { return c.p[k+1] - c.p[k] + 1 }, 1, workers())
	nchunks := len(bounds) - 1
	counts := make([][]int, nchunks)
	runChunks(bounds, func(cx, lo, hi int) {
		cnt := make([]int, c.nminor)
		for _, j := range c.i[c.p[lo]:c.p[hi]] {
			cnt[j]++
		}
		counts[cx] = cnt
	})
	// Turn per-chunk counts into within-column offsets and per-column
	// totals, then prefix the totals into the column pointer array.
	parallelRanges(c.nminor, 4096, func(jlo, jhi int) {
		for j := jlo; j < jhi; j++ {
			run := 0
			for cx := 0; cx < nchunks; cx++ {
				tmp := counts[cx][j]
				counts[cx][j] = run
				run += tmp
			}
			t.p[j+1] = run
		}
	})
	for j := 0; j < c.nminor; j++ {
		t.p[j+1] += t.p[j]
	}
	runChunks(bounds, func(cx, lo, hi int) {
		next := counts[cx]
		for k := lo; k < hi; k++ {
			row := c.majorOf(k)
			ci, vx := c.vec(k)
			for u := range ci {
				j := ci[u]
				pos := t.p[j] + next[j]
				next[j]++
				t.i[pos] = row
				t.x[pos] = vx[u]
			}
		}
	})
}

// transposeCSBySort builds a hypersparse transpose without O(nminor) work.
func transposeCSBySort[T any](c *cs[T]) *cs[T] {
	nv := c.nvals()
	is := make([]int, 0, nv) // new major = old minor
	js := make([]int, 0, nv)
	xs := make([]T, 0, nv)
	for k := 0; k < c.nvecs(); k++ {
		row := c.majorOf(k)
		ci, cx := c.vec(k)
		for u := range ci {
			is = append(is, ci[u])
			js = append(js, row)
			xs = append(xs, cx[u])
		}
	}
	t, err := assembleCS(c.nminor, c.nmajor, is, js, xs, nil)
	if err != nil {
		panic("grb: internal transpose error")
	}
	return t
}

// Transpose computes C⟨M⟩ = accum(C, Aᵀ) (Table I). With a nil mask, nil
// accumulator and default descriptor it is a plain transpose.
func Transpose[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], a *Matrix[T], desc *Descriptor) error {
	if c == nil || a == nil {
		return opError("transpose", ErrUninitialized)
	}
	d := desc.get()
	ar, ac := a.nr, a.nc
	if d.TranA { // transpose of a transpose
		ar, ac = ac, ar
	}
	if c.nr != ac || c.nc != ar {
		return opErrorf("transpose", ErrDimensionMismatch, "C is %d×%d, Aᵀ is %d×%d", c.nr, c.nc, ac, ar)
	}
	var z *cs[T]
	if d.TranA {
		z = a.materializedCSR().clone()
	} else {
		z = transposeCS(a.materializedCSR())
	}
	return writeMatrixResult(c, mask, accum, z, d)
}

// sortDedupIndices sorts idx ascending and removes duplicates in place.
func sortDedupIndices(idx []int) []int {
	if len(idx) < 2 {
		return idx
	}
	sort.Ints(idx)
	w := 0
	for r := 1; r < len(idx); r++ {
		if idx[r] != idx[w] {
			w++
			idx[w] = idx[r]
		}
	}
	return idx[:w+1]
}
