package grb

// MxMMethod selects the sparse matrix-multiply kernel, mirroring the three
// algorithm families of SuiteSparse:GraphBLAS (§II-A): Gustavson's method,
// the dot-product method, and the heap (k-way merge) method.
type MxMMethod int

const (
	// MxMAuto picks a kernel from the operand shapes: dot for small or
	// heavily masked outputs, heap for extremely sparse operands,
	// Gustavson otherwise.
	MxMAuto MxMMethod = iota
	// MxMGustavson forces row-wise saxpy accumulation (CSR·CSR).
	MxMGustavson
	// MxMDot forces dot products (CSR·CSC); best with a sparse mask.
	MxMDot
	// MxMHeap forces the k-way merge method; best when rows of A have very
	// few entries.
	MxMHeap
)

// Direction selects the traversal direction of MxV/VxM, the push–pull
// choice of GraphBLAST (§II-E).
type Direction int

const (
	// DirAuto switches between push and pull on a sparsity threshold.
	DirAuto Direction = iota
	// DirPush forces the saxpy/scatter form (SpMSpV): work scales with the
	// input vector's entries.
	DirPush
	// DirPull forces the dot-product form (SpMV): work scales with the
	// output dimension, with early exit on terminal monoids.
	DirPull
)

// Descriptor modifies an operation: input transposition, output
// replacement, and mask interpretation, plus implementation hints. The nil
// descriptor means all defaults.
type Descriptor struct {
	// TranA / TranB select the transpose of the first/second input.
	TranA, TranB bool
	// Replace clears all of the output object before the masked result is
	// written (GrB_REPLACE).
	Replace bool
	// Comp complements the mask (GrB_COMP).
	Comp bool
	// MaskValue interprets a bool-valued mask by its stored values
	// (GrB_STRUCTURE is this library's default; MaskValue opts into value
	// semantics, which only bool containers support).
	MaskValue bool
	// Method hints the MxM kernel.
	Method MxMMethod
	// Dir hints the MxV/VxM traversal direction.
	Dir Direction
	// PushPullRatio overrides the DirAuto switch threshold: pull is chosen
	// when nvals(input) > dim/PushPullRatio. Zero means the default.
	PushPullRatio int
}

// descValues is the resolved, nil-safe view of a Descriptor.
type descValues struct {
	TranA, TranB  bool
	Replace       bool
	Comp          bool
	MaskValue     bool
	Method        MxMMethod
	Dir           Direction
	PushPullRatio int
}

const defaultPushPullRatio = 16

func (d *Descriptor) get() descValues {
	if d == nil {
		return descValues{PushPullRatio: defaultPushPullRatio}
	}
	v := descValues{
		TranA: d.TranA, TranB: d.TranB,
		Replace: d.Replace, Comp: d.Comp, MaskValue: d.MaskValue,
		Method: d.Method, Dir: d.Dir, PushPullRatio: d.PushPullRatio,
	}
	if v.PushPullRatio <= 0 {
		v.PushPullRatio = defaultPushPullRatio
	}
	return v
}

// Common descriptors, named after their C API counterparts.
var (
	// DescT0 transposes the first input.
	DescT0 = &Descriptor{TranA: true}
	// DescT1 transposes the second input.
	DescT1 = &Descriptor{TranB: true}
	// DescR replaces the output.
	DescR = &Descriptor{Replace: true}
	// DescC complements the mask.
	DescC = &Descriptor{Comp: true}
	// DescRC replaces the output and complements the mask.
	DescRC = &Descriptor{Replace: true, Comp: true}
	// DescRSC replaces the output, complementing the structural mask; the
	// descriptor of the BFS in Fig. 2 of the paper.
	DescRSC = &Descriptor{Replace: true, Comp: true}
)
