package grb

import "sort"

// Iteration and inner products: zero-copy access patterns that LAGraph
// algorithms use to avoid materializing tuple slices.

// Iterate calls fn for every stored entry in row-major order, stopping
// early if fn returns false. It forces pending work first. The matrix
// must not be mutated during iteration.
func (a *Matrix[T]) Iterate(fn func(i, j int, x T) bool) {
	c := a.materializedCSR()
	for k := 0; k < c.nvecs(); k++ {
		row := c.majorOf(k)
		ci, cx := c.vec(k)
		for t := range ci {
			if !fn(row, ci[t], cx[t]) {
				return
			}
		}
	}
}

// IterateRow calls fn for every stored entry of row i, in column order.
func (a *Matrix[T]) IterateRow(i int, fn func(j int, x T) bool) error {
	if i < 0 || i >= a.nr {
		return opErrorf("iterateRow", ErrIndexOutOfBounds, "row %d, bound %d", i, a.nr)
	}
	ci, cx := rowView(a.materializedCSR(), i)
	for t := range ci {
		if !fn(ci[t], cx[t]) {
			return nil
		}
	}
	return nil
}

// Iterate calls fn for every stored entry in index order, stopping early
// if fn returns false.
func (v *Vector[T]) Iterate(fn func(i int, x T) bool) {
	v.Wait()
	for k, i := range v.idx {
		if !fn(i, v.x[k]) {
			return
		}
	}
}

// InnerProduct computes the semiring inner product uᵀ ⊕.⊗ v over the
// intersection of patterns. ok is false when the intersection is empty.
func InnerProduct[A, B, T any](s Semiring[A, B, T], u *Vector[A], v *Vector[B]) (result T, ok bool, err error) {
	var zero T
	if u == nil || v == nil || s.Add.Op == nil || s.Mul == nil {
		return zero, false, opError("innerProduct", ErrUninitialized)
	}
	if u.n != v.n {
		return zero, false, opErrorf("innerProduct", ErrDimensionMismatch, "u is %d, v is %d", u.n, v.n)
	}
	ui, ux := u.materialized()
	vi, vx := v.materialized()
	var acc T
	found := false
	a, b := 0, 0
	for a < len(ui) && b < len(vi) {
		switch {
		case ui[a] < vi[b]:
			a++
		case vi[b] < ui[a]:
			b++
		default:
			p := s.Mul(ux[a], vx[b])
			if found {
				acc = s.Add.Op(acc, p)
			} else {
				acc = p
				found = true
			}
			if s.Add.Terminal != nil && s.Add.Terminal(acc) {
				return acc, true, nil
			}
			a++
			b++
		}
	}
	return acc, found, nil
}

// ExtractMatrixRow computes w⟨m⟩ ⊙= A(i,J)ᵀ: one row of A as a vector
// (the GrB_Col_extract of Aᵀ). Nil cols means the whole row.
func ExtractMatrixRow[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], a *Matrix[T], i int, cols []int, desc *Descriptor) error {
	d := &Descriptor{TranA: true}
	if desc != nil {
		dd := *desc
		dd.TranA = !dd.TranA
		d = &dd
	}
	return ExtractMatrixCol(w, mask, accum, a, cols, i, d)
}

// AssignMatrixRow computes C(i,J)⟨m⟩ ⊙= u: writes a vector into one row
// of C (GrB_Row_assign). The mask is over the row.
func AssignMatrixRow[T, M any](c *Matrix[T], mask *Vector[M], accum BinaryOp[T, T, T], u *Vector[T], i int, cols []int, desc *Descriptor) error {
	if c == nil || u == nil {
		return opError("assign", ErrUninitialized)
	}
	if i < 0 || i >= c.nr {
		return opErrorf("assign", ErrIndexOutOfBounds, "row %d, bound %d", i, c.nr)
	}
	if err := checkIndices("assign", cols, c.nc); err != nil {
		return err
	}
	un := len(cols)
	if cols == nil {
		un = c.nc
	}
	if u.n != un {
		return opErrorf("assign", ErrDimensionMismatch, "u is %d, region is %d", u.n, un)
	}
	if mask != nil && mask.n != c.nc {
		return opErrorf("assign", ErrDimensionMismatch, "mask is %d, row width is %d", mask.n, c.nc)
	}
	d := desc.get()
	mv := newMaskVec(mask, d)

	// Build the replacement row as a dense-sparse merge.
	ui, ux := u.materialized()
	var tmp []ent2[T]
	region := map[int]struct{}{}
	if cols == nil {
		for k := range ui {
			tmp = append(tmp, ent2[T]{ui[k], ux[k]})
		}
	} else {
		ud, uok := u.dense()
		for t, target := range cols {
			region[target] = struct{}{}
			if uok[t] {
				tmp = append(tmp, ent2[T]{target, ud[t]})
			}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].j < tmp[b].j })
	}

	inRegion := func(j int) bool {
		if cols == nil {
			return true
		}
		_, ok := region[j]
		return ok
	}

	// Merge into the existing row.
	oi, ox := rowView(c.materializedCSR(), i)
	allowed := mv.cursor()
	var ni []int
	var nx []T
	s, k := 0, 0
	for s < len(oi) || k < len(tmp) {
		haveO := s < len(oi)
		haveZ := k < len(tmp)
		switch {
		case haveO && (!haveZ || oi[s] < tmp[k].j):
			j := oi[s]
			keep := true
			if inRegion(j) && allowed(j) {
				keep = accum != nil
			} else if inRegion(j) && d.Replace {
				keep = false
			}
			if keep {
				ni = append(ni, j)
				nx = append(nx, ox[s])
			}
			s++
		case haveZ && (!haveO || tmp[k].j < oi[s]):
			if allowed(tmp[k].j) {
				ni = append(ni, tmp[k].j)
				nx = append(nx, tmp[k].x)
			}
			k++
		default:
			j := oi[s]
			if allowed(j) {
				v := tmp[k].x
				if accum != nil {
					v = accum(ox[s], tmp[k].x)
				}
				ni = append(ni, j)
				nx = append(nx, v)
			} else if !d.Replace || !inRegion(j) {
				ni = append(ni, j)
				nx = append(nx, ox[s])
			}
			s++
			k++
		}
	}

	// Rewrite row i through the tuple interface (single-row surgery).
	return c.replaceRow(i, ni, nx)
}

// ent2 is the (column, value) pair used by AssignMatrixRow.
type ent2[T any] struct {
	j int
	x T
}

// replaceRow substitutes the entries of one row.
func (a *Matrix[T]) replaceRow(i int, ni []int, nx []T) error {
	old := a.materializedCSR()
	// Remove existing row entries, then insert new ones via pending
	// tuples (cheap; assembled lazily).
	if k, ok := old.findMajor(i); ok {
		ci, _ := old.vec(k)
		for _, j := range ci {
			if j >= 0 {
				_ = a.RemoveElement(i, j)
			}
		}
	}
	for t := range ni {
		_ = a.SetElement(i, ni[t], nx[t])
	}
	return nil
}
