package grb_test

// The two halves of the zero-cost observation contract, asserted from
// outside the package:
//
//  1. Tracing never changes results. A traced masked MxM over a power-law
//     graph serializes to exactly the bytes of the untraced run, at
//     SetParallelism(1) and SetParallelism(8). Record emission happens
//     strictly after kernel output is computed, so any divergence here
//     means an observer leaked into kernel control flow.
//  2. Disabled observation is free. With no observer installed the per-op
//     guard is one atomic load and a nil check; the no-pending Wait —
//     the guard's hottest host — must not allocate.
//
// These run under -race in CI; the race detector covers the Set/Active
// publication and the Trace ring's mutex against parallel kernels.

import (
	"bytes"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// tracedMxMBytes runs the masked MxM workload at parallelism p, with or
// without a process-wide trace observer, and returns the serialized result.
func tracedMxMBytes(t *testing.T, p int, traced bool) []byte {
	t.Helper()
	a := gen.PowerLaw(plN, plEdges, plAlpha, gen.Config{Seed: 71, NoSelfLoops: true}).Matrix()
	mask := gen.PowerLaw(plN, plEdges/2, plAlpha, gen.Config{Seed: 72}).BoolMatrix()
	if traced {
		prev := obs.Set(obs.NewTrace(0))
		defer obs.Set(prev)
	}
	var out []byte
	atParallelism(p, func() {
		c := grb.MustMatrix[float64](plN, plN)
		if err := grb.MxM(c, mask, nil, grb.PlusTimes[float64](), a, a, nil); err != nil {
			t.Fatal(err)
		}
		out = serializedMatrix(t, c)
	})
	return out
}

// TestTracedMxMBitwiseIdentical: the four (parallelism, traced)
// combinations of a masked power-law MxM all serialize identically.
func TestTracedMxMBitwiseIdentical(t *testing.T) {
	base := tracedMxMBytes(t, 1, false)
	for _, c := range []struct {
		name   string
		p      int
		traced bool
	}{
		{"p1 traced", 1, true},
		{"p8 untraced", 8, false},
		{"p8 traced", 8, true},
	} {
		if got := tracedMxMBytes(t, c.p, c.traced); !bytes.Equal(base, got) {
			t.Errorf("%s: serialization differs from p1 untraced (%d vs %d bytes)",
				c.name, len(got), len(base))
		}
	}
}

// TestTracedMxMEmitsRecords is the flip side: the traced run actually
// produced op records with the fields the schema promises.
func TestTracedMxMEmitsRecords(t *testing.T) {
	tr := obs.NewTrace(0)
	prev := obs.Set(tr)
	defer obs.Set(prev)
	_ = tracedMxMBytes(t, 8, false) // observer already installed above
	ops := tr.Ops()
	var mxm *obs.OpRecord
	for i := range ops {
		if ops[i].Op == "mxm" {
			mxm = &ops[i]
			break
		}
	}
	if mxm == nil {
		t.Fatalf("no mxm op record in %d traced ops", len(ops))
	}
	if mxm.Kernel == "" || mxm.Rows != plN || mxm.Cols != plN || !mxm.Masked {
		t.Errorf("mxm record incomplete: %+v", *mxm)
	}
	if mxm.EstFlops <= 0 || mxm.NnzA <= 0 {
		t.Errorf("mxm record missing work estimate: %+v", *mxm)
	}
}

// TestDisabledObserverWaitZeroAlloc: with observation disabled, the
// no-pending Wait — pure guard, no work — performs zero allocations.
func TestDisabledObserverWaitZeroAlloc(t *testing.T) {
	prev := obs.Set(nil)
	defer obs.Set(prev)
	a := gen.PowerLaw(512, 4096, plAlpha, gen.Config{Seed: 73}).Matrix()
	a.Wait()
	v := grb.MustVector[float64](512)
	_ = v.SetElement(3, 1)
	v.Wait()
	if n := testing.AllocsPerRun(200, func() { a.Wait() }); n != 0 {
		t.Errorf("no-pending Matrix.Wait allocates %.1f per call with observation disabled", n)
	}
	if n := testing.AllocsPerRun(200, func() { v.Wait() }); n != 0 {
		t.Errorf("no-pending Vector.Wait allocates %.1f per call with observation disabled", n)
	}
}
