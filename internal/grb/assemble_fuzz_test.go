package grb

import (
	"errors"
	"math"
	"testing"
)

// FuzzAssembleCS round-trips arbitrary COO tuple batches — duplicates,
// out-of-order input, empty rows, repeated rows — through assembleCS and
// checks the three invariants every kernel depends on: the hypersparse
// row list is strictly ascending, each row's column indices are strictly
// ascending with monotone row pointers, and duplicate combination agrees
// bitwise with a naive map-based oracle that folds duplicates in input
// order (the same association assembleCS's stable (i,j,k) sort fixes).

// fuzzTuples decodes the fuzzer's byte stream into a bounded tuple batch.
func fuzzTuples(data []byte) (nmajor, nminor int, is, js []int, xs []float64) {
	if len(data) < 2 {
		return 1, 1, nil, nil, nil
	}
	nmajor = int(data[0])%64 + 1
	nminor = int(data[1])%64 + 1
	data = data[2:]
	for len(data) >= 3 {
		i := int(data[0]) % nmajor
		j := int(data[1]) % nminor
		// Small signed values keep float sums exact-but-interesting.
		x := float64(int8(data[2]))
		is = append(is, i)
		js = append(js, j)
		xs = append(xs, x)
		data = data[3:]
	}
	return nmajor, nminor, is, js, xs
}

func FuzzAssembleCS(f *testing.F) {
	// Seed: in-order distinct, duplicated keys, reversed order, row gaps.
	f.Add([]byte{4, 4, 0, 0, 1, 1, 1, 2, 3, 3, 3})
	f.Add([]byte{4, 4, 2, 2, 10, 2, 2, 20, 2, 2, 30})
	f.Add([]byte{8, 8, 7, 7, 1, 3, 5, 2, 0, 0, 3, 3, 5, 4})
	f.Add([]byte{2, 63, 1, 62, 1, 0, 0, 2, 1, 62, 3})
	seed := make([]byte, 2+3*300)
	seed[0], seed[1] = 16, 16
	for k := range seed[2:] {
		seed[2+k] = byte(k * 7)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		nmajor, nminor, is, js, xs := fuzzTuples(data)

		// Oracle: left-fold duplicates in input order.
		type key struct{ i, j int }
		oracle := map[key]float64{}
		for k := range is {
			kk := key{is[k], js[k]}
			if old, ok := oracle[kk]; ok {
				oracle[kk] = old + xs[k]
			} else {
				oracle[kk] = xs[k]
			}
		}

		c, err := assembleCS(nmajor, nminor, is, js, xs, Plus[float64]())
		if err != nil {
			t.Fatalf("assembleCS: %v", err)
		}

		// Structural invariants.
		if c.nmajor != nmajor || c.nminor != nminor {
			t.Fatalf("dims (%d,%d), want (%d,%d)", c.nmajor, c.nminor, nmajor, nminor)
		}
		if len(c.p) != len(c.h)+1 || c.p[0] != 0 {
			t.Fatalf("pointer shape: len(p)=%d len(h)=%d p[0]=%d", len(c.p), len(c.h), c.p[0])
		}
		for k := 0; k < c.nvecs(); k++ {
			if k > 0 && c.h[k] <= c.h[k-1] {
				t.Fatalf("row list not strictly ascending at %d: %v", k, c.h)
			}
			if c.p[k+1] <= c.p[k] {
				t.Fatalf("stored row %d is empty or pointers non-monotone", k)
			}
			ci, _ := c.vec(k)
			for t2 := 1; t2 < len(ci); t2++ {
				if ci[t2] <= ci[t2-1] {
					t.Fatalf("row %d columns not strictly ascending: %v", c.h[k], ci)
				}
			}
		}

		// Value agreement with the oracle, entry by entry.
		if c.nvals() != len(oracle) {
			t.Fatalf("nvals %d, want %d distinct keys", c.nvals(), len(oracle))
		}
		for k := 0; k < c.nvecs(); k++ {
			ci, cx := c.vec(k)
			for t2 := range ci {
				kk := key{c.h[k], ci[t2]}
				want, ok := oracle[kk]
				if !ok {
					t.Fatalf("entry (%d,%d) not in oracle", kk.i, kk.j)
				}
				if cx[t2] != want {
					t.Fatalf("entry (%d,%d) = %v (bits %x), oracle %v (bits %x)",
						kk.i, kk.j, cx[t2], bits(cx[t2]), want, bits(want))
				}
			}
		}

		// dup=nil must reject exactly the batches that contain duplicates.
		_, err = assembleCS(nmajor, nminor, is, js, xs, nil)
		hasDup := len(oracle) < len(is)
		if hasDup && !errors.Is(err, ErrInvalidValue) {
			t.Fatalf("dup=nil on duplicated input: err=%v, want ErrInvalidValue", err)
		}
		if !hasDup && err != nil {
			t.Fatalf("dup=nil on duplicate-free input: %v", err)
		}
	})
}

func bits(x float64) uint64 { return math.Float64bits(x) }
