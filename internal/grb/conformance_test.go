package grb_test

// Conformance tests in the style the paper describes for SuiteSparse
// (§II-A): every operation is executed both by the fast sparse kernels and
// by the dense reference mimic (internal/grb/ref), and the results must be
// identical in both value and pattern.

import (
	"fmt"
	"math/rand"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/grb/ref"
)

// randMatrix builds a random nr×nc matrix with roughly density*nr*nc
// entries and small integer values (exact in every arithmetic order).
func randMatrix(rng *rand.Rand, nr, nc int, density float64) *grb.Matrix[int64] {
	a := grb.MustMatrix[int64](nr, nc)
	n := int(density * float64(nr) * float64(nc))
	is := make([]int, n)
	js := make([]int, n)
	xs := make([]int64, n)
	for k := 0; k < n; k++ {
		is[k] = rng.Intn(nr)
		js[k] = rng.Intn(nc)
		xs[k] = int64(rng.Intn(9) - 4)
	}
	if err := a.Build(is, js, xs, grb.Plus[int64]()); err != nil {
		panic(err)
	}
	return a
}

func randVector(rng *rand.Rand, n int, density float64) *grb.Vector[int64] {
	v := grb.MustVector[int64](n)
	cnt := int(density * float64(n))
	is := make([]int, cnt)
	xs := make([]int64, cnt)
	for k := 0; k < cnt; k++ {
		is[k] = rng.Intn(n)
		xs[k] = int64(rng.Intn(9) - 4)
	}
	if err := v.Build(is, xs, grb.Plus[int64]()); err != nil {
		panic(err)
	}
	return v
}

// eqMat fails the test unless got and want agree in value and pattern.
func eqMat(t *testing.T, got *grb.Matrix[int64], want *ref.Mat[int64]) {
	t.Helper()
	if got.Nrows() != want.NRows || got.Ncols() != want.NCols {
		t.Fatalf("dims: got %dx%d want %dx%d", got.Nrows(), got.Ncols(), want.NRows, want.NCols)
	}
	seen := ref.NewMat[bool](want.NRows, want.NCols)
	is, js, xs := got.ExtractTuples()
	for k := range is {
		i, j := is[k], js[k]
		if !want.Set[i][j] {
			t.Fatalf("spurious entry at (%d,%d) = %v", i, j, xs[k])
		}
		if want.Val[i][j] != xs[k] {
			t.Fatalf("value at (%d,%d): got %v want %v", i, j, xs[k], want.Val[i][j])
		}
		seen.Set[i][j] = true
	}
	for i := 0; i < want.NRows; i++ {
		for j := 0; j < want.NCols; j++ {
			if want.Set[i][j] && !seen.Set[i][j] {
				t.Fatalf("missing entry at (%d,%d) = %v", i, j, want.Val[i][j])
			}
		}
	}
}

func eqVec(t *testing.T, got *grb.Vector[int64], want *ref.Vec[int64]) {
	t.Helper()
	if got.Size() != want.N {
		t.Fatalf("size: got %d want %d", got.Size(), want.N)
	}
	seen := make([]bool, want.N)
	is, xs := got.ExtractTuples()
	for k := range is {
		if !want.Set[is[k]] {
			t.Fatalf("spurious entry at %d = %v", is[k], xs[k])
		}
		if want.Val[is[k]] != xs[k] {
			t.Fatalf("value at %d: got %v want %v", is[k], xs[k], want.Val[is[k]])
		}
		seen[is[k]] = true
	}
	for i := range seen {
		if want.Set[i] && !seen[i] {
			t.Fatalf("missing entry at %d = %v", i, want.Val[i])
		}
	}
}

// maskCase enumerates the mask configurations every op is tested under.
type maskCase struct {
	name    string
	useMask bool
	desc    grb.Descriptor
}

func maskCases() []maskCase {
	return []maskCase{
		{"nomask", false, grb.Descriptor{}},
		{"mask", true, grb.Descriptor{}},
		{"comp", true, grb.Descriptor{Comp: true}},
		{"replace", true, grb.Descriptor{Replace: true}},
		{"comp+replace", true, grb.Descriptor{Comp: true, Replace: true}},
	}
}

func refDesc(d grb.Descriptor) ref.Desc {
	return ref.Desc{
		TranA: d.TranA, TranB: d.TranB,
		Replace: d.Replace, Comp: d.Comp, MaskValue: d.MaskValue,
	}
}

func TestConformanceMxM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	methods := []struct {
		name string
		m    grb.MxMMethod
	}{
		{"gustavson", grb.MxMGustavson},
		{"dot", grb.MxMDot},
		{"heap", grb.MxMHeap},
	}
	for trial := 0; trial < 12; trial++ {
		m := 1 + rng.Intn(30)
		k := 1 + rng.Intn(30)
		n := 1 + rng.Intn(30)
		a := randMatrix(rng, m, k, 0.2)
		b := randMatrix(rng, k, n, 0.2)
		mask := randMatrix(rng, m, n, 0.3)
		cInit := randMatrix(rng, m, n, 0.15)
		for _, mc := range maskCases() {
			for _, method := range methods {
				for _, withAccum := range []bool{false, true} {
					name := fmt.Sprintf("t%d/%s/%s/accum=%v", trial, mc.name, method.name, withAccum)
					t.Run(name, func(t *testing.T) {
						d := mc.desc
						d.Method = method.m
						var accum grb.BinaryOp[int64, int64, int64]
						if withAccum {
							accum = grb.Plus[int64]()
						}
						var gm *grb.Matrix[int64]
						var rm *ref.Mat[int64]
						if mc.useMask {
							gm = mask
							rm = ref.FromMatrix(mask)
						}
						c := cInit.Dup()
						if err := grb.MxM(c, gm, accum, grb.PlusTimes[int64](), a, b, &d); err != nil {
							t.Fatal(err)
						}
						want := ref.FromMatrix(cInit)
						ref.MxM(want, rm, accum, grb.PlusTimes[int64](), ref.FromMatrix(a), ref.FromMatrix(b), refDesc(d))
						eqMat(t, c, want)
					})
				}
			}
		}
	}
}

func TestConformanceMxMTransposed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.Intn(20)
		k := 1 + rng.Intn(20)
		n := 1 + rng.Intn(20)
		for _, tc := range []struct{ ta, tb bool }{{true, false}, {false, true}, {true, true}} {
			ar, ac := m, k
			if tc.ta {
				ar, ac = k, m
			}
			br, bc := k, n
			if tc.tb {
				br, bc = n, k
			}
			a := randMatrix(rng, ar, ac, 0.2)
			b := randMatrix(rng, br, bc, 0.2)
			c := grb.MustMatrix[int64](m, n)
			d := grb.Descriptor{TranA: tc.ta, TranB: tc.tb}
			if err := grb.MxM[int64, int64, int64, bool](c, nil, nil, grb.PlusTimes[int64](), a, b, &d); err != nil {
				t.Fatal(err)
			}
			want := ref.NewMat[int64](m, n)
			ref.MxM[int64, int64, int64, bool](want, nil, nil, grb.PlusTimes[int64](), ref.FromMatrix(a), ref.FromMatrix(b), refDesc(d))
			eqMat(t, c, want)
		}
	}
}

func TestConformanceVxMAndMxV(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dirs := []struct {
		name string
		d    grb.Direction
	}{{"push", grb.DirPush}, {"pull", grb.DirPull}, {"auto", grb.DirAuto}}
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		a := randMatrix(rng, m, n, 0.15)
		u := randVector(rng, m, 0.4)
		v := randVector(rng, n, 0.4)
		maskN := randVector(rng, n, 0.5)
		maskM := randVector(rng, m, 0.5)
		wInitN := randVector(rng, n, 0.3)
		wInitM := randVector(rng, m, 0.3)
		for _, mc := range maskCases() {
			for _, dir := range dirs {
				for _, withAccum := range []bool{false, true} {
					name := fmt.Sprintf("t%d/%s/%s/accum=%v", trial, mc.name, dir.name, withAccum)
					t.Run("vxm/"+name, func(t *testing.T) {
						d := mc.desc
						d.Dir = dir.d
						var accum grb.BinaryOp[int64, int64, int64]
						if withAccum {
							accum = grb.Plus[int64]()
						}
						var gm *grb.Vector[int64]
						var rm *ref.Vec[int64]
						if mc.useMask {
							gm = maskN
							rm = ref.FromVector(maskN)
						}
						w := wInitN.Dup()
						if err := grb.VxM(w, gm, accum, grb.PlusTimes[int64](), u, a, &d); err != nil {
							t.Fatal(err)
						}
						want := ref.FromVector(wInitN)
						ref.VxM(want, rm, accum, grb.PlusTimes[int64](), ref.FromVector(u), ref.FromMatrix(a), refDesc(d))
						eqVec(t, w, want)
					})
					t.Run("mxv/"+name, func(t *testing.T) {
						d := mc.desc
						d.Dir = dir.d
						var accum grb.BinaryOp[int64, int64, int64]
						if withAccum {
							accum = grb.Plus[int64]()
						}
						var gm *grb.Vector[int64]
						var rm *ref.Vec[int64]
						if mc.useMask {
							gm = maskM
							rm = ref.FromVector(maskM)
						}
						w := wInitM.Dup()
						if err := grb.MxV(w, gm, accum, grb.PlusTimes[int64](), a, v, &d); err != nil {
							t.Fatal(err)
						}
						want := ref.FromVector(wInitM)
						ref.MxV(want, rm, accum, grb.PlusTimes[int64](), ref.FromMatrix(a), ref.FromVector(v), refDesc(d))
						eqVec(t, w, want)
					})
				}
			}
		}
	}
}

func TestConformanceVxMTransposed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(30)
		n := 1 + rng.Intn(30)
		a := randMatrix(rng, m, n, 0.2)
		u := randVector(rng, n, 0.4) // multiplies Aᵀ (n×m)
		for _, dir := range []grb.Direction{grb.DirPush, grb.DirPull} {
			w := grb.MustVector[int64](m)
			d := grb.Descriptor{TranA: true, Dir: dir}
			if err := grb.VxM[int64, int64, int64, bool](w, nil, nil, grb.PlusTimes[int64](), u, a, &d); err != nil {
				t.Fatal(err)
			}
			want := ref.NewVec[int64](m)
			ref.VxM[int64, int64, int64, bool](want, nil, nil, grb.PlusTimes[int64](), ref.FromVector(u), ref.FromMatrix(a), refDesc(d))
			eqVec(t, w, want)
		}
	}
}

func TestConformanceEWise(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(30)
		n := 1 + rng.Intn(30)
		a := randMatrix(rng, m, n, 0.2)
		b := randMatrix(rng, m, n, 0.2)
		mask := randMatrix(rng, m, n, 0.4)
		cInit := randMatrix(rng, m, n, 0.2)
		for _, mc := range maskCases() {
			for _, opName := range []string{"add", "mult"} {
				t.Run(fmt.Sprintf("t%d/%s/%s", trial, mc.name, opName), func(t *testing.T) {
					var gm *grb.Matrix[int64]
					var rm *ref.Mat[int64]
					if mc.useMask {
						gm = mask
						rm = ref.FromMatrix(mask)
					}
					c := cInit.Dup()
					want := ref.FromMatrix(cInit)
					d := mc.desc
					if opName == "add" {
						if err := grb.EWiseAddMatrix(c, gm, nil, grb.Plus[int64](), a, b, &d); err != nil {
							t.Fatal(err)
						}
						ref.EWiseAddMat(want, rm, nil, grb.Plus[int64](), ref.FromMatrix(a), ref.FromMatrix(b), refDesc(d))
					} else {
						if err := grb.EWiseMultMatrix(c, gm, nil, grb.Times[int64](), a, b, &d); err != nil {
							t.Fatal(err)
						}
						ref.EWiseMultMat(want, rm, nil, grb.Times[int64](), ref.FromMatrix(a), ref.FromMatrix(b), refDesc(d))
					}
					eqMat(t, c, want)
				})
			}
		}
		// Vector forms.
		u := randVector(rng, n, 0.4)
		v := randVector(rng, n, 0.4)
		w := grb.MustVector[int64](n)
		if err := grb.EWiseAddVector[int64, bool](w, nil, nil, grb.MinOp[int64](), u, v, nil); err != nil {
			t.Fatal(err)
		}
		want := ref.NewVec[int64](n)
		ref.EWiseAddVec[int64, bool](want, nil, nil, grb.MinOp[int64](), ref.FromVector(u), ref.FromVector(v), ref.Desc{})
		eqVec(t, w, want)

		w2 := grb.MustVector[int64](n)
		if err := grb.EWiseMultVector[int64, int64, int64, bool](w2, nil, nil, grb.Times[int64](), u, v, nil); err != nil {
			t.Fatal(err)
		}
		want2 := ref.NewVec[int64](n)
		ref.EWiseMultVec[int64, int64, int64, bool](want2, nil, nil, grb.Times[int64](), ref.FromVector(u), ref.FromVector(v), ref.Desc{})
		eqVec(t, w2, want2)
	}
}

func TestConformanceApplySelectReduceTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := 1 + rng.Intn(30)
		n := 1 + rng.Intn(30)
		a := randMatrix(rng, m, n, 0.25)
		mask := randMatrix(rng, m, n, 0.4)
		for _, mc := range maskCases() {
			var gm *grb.Matrix[int64]
			var rm *ref.Mat[int64]
			if mc.useMask {
				gm = mask
				rm = ref.FromMatrix(mask)
			}
			d := mc.desc

			t.Run(fmt.Sprintf("t%d/%s/apply", trial, mc.name), func(t *testing.T) {
				c := grb.MustMatrix[int64](m, n)
				double := func(x int64) int64 { return 2 * x }
				if err := grb.ApplyMatrix(c, gm, nil, double, a, &d); err != nil {
					t.Fatal(err)
				}
				want := ref.NewMat[int64](m, n)
				ref.Apply(want, rm, nil, double, ref.FromMatrix(a), refDesc(d))
				eqMat(t, c, want)
			})

			t.Run(fmt.Sprintf("t%d/%s/select", trial, mc.name), func(t *testing.T) {
				c := grb.MustMatrix[int64](m, n)
				keep := grb.Tril[int64](0)
				if err := grb.SelectMatrix(c, gm, nil, keep, a, &d); err != nil {
					t.Fatal(err)
				}
				want := ref.NewMat[int64](m, n)
				ref.Select(want, rm, nil, keep, ref.FromMatrix(a), refDesc(d))
				eqMat(t, c, want)
			})
		}

		// Transpose with mask on the transposed shape.
		maskT := randMatrix(rng, n, m, 0.4)
		for _, mc := range maskCases() {
			t.Run(fmt.Sprintf("t%d/%s/transpose", trial, mc.name), func(t *testing.T) {
				var gm *grb.Matrix[int64]
				var rm *ref.Mat[int64]
				if mc.useMask {
					gm = maskT
					rm = ref.FromMatrix(maskT)
				}
				d := mc.desc
				c := grb.MustMatrix[int64](n, m)
				if err := grb.Transpose(c, gm, nil, a, &d); err != nil {
					t.Fatal(err)
				}
				want := ref.NewMat[int64](n, m)
				ref.Transpose(want, rm, nil, ref.FromMatrix(a), refDesc(d))
				eqMat(t, c, want)
			})
		}

		// Row-wise reduction.
		t.Run(fmt.Sprintf("t%d/reduce", trial), func(t *testing.T) {
			w := grb.MustVector[int64](m)
			if err := grb.ReduceMatrixToVector[int64, bool](w, nil, nil, grb.PlusMonoid[int64](), a, nil); err != nil {
				t.Fatal(err)
			}
			want := ref.NewVec[int64](m)
			ref.ReduceMatToVec[int64, bool](want, nil, nil, grb.PlusMonoid[int64](), ref.FromMatrix(a), ref.Desc{})
			eqVec(t, w, want)

			got, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), a)
			if err != nil {
				t.Fatal(err)
			}
			if exp := ref.ReduceMatToScalar(grb.PlusMonoid[int64](), ref.FromMatrix(a)); got != exp {
				t.Fatalf("scalar reduce: got %d want %d", got, exp)
			}
		})
	}
}

func TestConformanceExtractAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.Intn(30)
		n := 2 + rng.Intn(30)
		a := randMatrix(rng, m, n, 0.25)

		// Extract a random submatrix.
		ni := 1 + rng.Intn(m)
		nj := 1 + rng.Intn(n)
		rows := make([]int, ni)
		cols := make([]int, nj)
		for k := range rows {
			rows[k] = rng.Intn(m)
		}
		for k := range cols {
			cols[k] = rng.Intn(n)
		}
		t.Run(fmt.Sprintf("t%d/extract", trial), func(t *testing.T) {
			c := grb.MustMatrix[int64](ni, nj)
			if err := grb.ExtractMatrix[int64, bool](c, nil, nil, a, rows, cols, nil); err != nil {
				t.Fatal(err)
			}
			want := ref.NewMat[int64](ni, nj)
			ref.Extract[int64, bool](want, nil, nil, ref.FromMatrix(a), rows, cols, ref.Desc{})
			eqMat(t, c, want)
		})

		// Assign a submatrix at unique positions (duplicate targets have
		// implementation-defined resolution, so dedup first).
		urows := uniqueIdx(rng, m, 1+rng.Intn(m))
		ucols := uniqueIdx(rng, n, 1+rng.Intn(n))
		sub := randMatrix(rng, len(urows), len(ucols), 0.3)
		for _, withAccum := range []bool{false, true} {
			t.Run(fmt.Sprintf("t%d/assign/accum=%v", trial, withAccum), func(t *testing.T) {
				var accum grb.BinaryOp[int64, int64, int64]
				if withAccum {
					accum = grb.Plus[int64]()
				}
				c := a.Dup()
				if err := grb.AssignMatrix[int64, bool](c, nil, accum, sub, urows, ucols, nil); err != nil {
					t.Fatal(err)
				}
				want := ref.FromMatrix(a)
				ref.Assign[int64, bool](want, nil, accum, ref.FromMatrix(sub), urows, ucols, ref.Desc{})
				eqMat(t, c, want)
			})
		}

		// Vector extract/assign.
		u := randVector(rng, n, 0.4)
		t.Run(fmt.Sprintf("t%d/vextract", trial), func(t *testing.T) {
			w := grb.MustVector[int64](len(ucols))
			if err := grb.ExtractVector[int64, bool](w, nil, nil, u, ucols, nil); err != nil {
				t.Fatal(err)
			}
			is, xs := w.ExtractTuples()
			got := map[int]int64{}
			for k := range is {
				got[is[k]] = xs[k]
			}
			for t2, src := range ucols {
				v, err := u.GetElement(src)
				if err == nil {
					if got[t2] != v {
						t.Fatalf("w[%d]: got %d want %d", t2, got[t2], v)
					}
				} else if _, ok := got[t2]; ok {
					t.Fatalf("w[%d] should be empty", t2)
				}
			}
		})

		// Scalar assign through a mask (the BFS levels[frontier] = depth
		// step).
		t.Run(fmt.Sprintf("t%d/vassign-scalar", trial), func(t *testing.T) {
			w := randVector(rng, n, 0.3)
			maskv := randVector(rng, n, 0.4)
			wRef := ref.FromVector(w)
			maskRef := ref.FromVector(maskv)
			if err := grb.AssignVectorScalar(w, maskv, nil, int64(77), nil, nil); err != nil {
				t.Fatal(err)
			}
			// Mimic: scalar fills every admitted position.
			for i := 0; i < n; i++ {
				if maskRef.Set[i] {
					wRef.Val[i] = 77
					wRef.Set[i] = true
				}
			}
			eqVec(t, w, wRef)
		})
	}
}

func uniqueIdx(rng *rand.Rand, n, want int) []int {
	if want > n {
		want = n
	}
	perm := rng.Perm(n)
	return perm[:want]
}

func TestConformanceMaskValueSemantics(t *testing.T) {
	// A bool mask with stored 'false' entries behaves differently under
	// structural vs value interpretation.
	rng := rand.New(rand.NewSource(8))
	n := 20
	a := randMatrix(rng, n, n, 0.3)
	b := randMatrix(rng, n, n, 0.3)
	mask := grb.MustMatrix[bool](n, n)
	var is, js []int
	var xs []bool
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				is = append(is, i)
				js = append(js, j)
				xs = append(xs, rng.Float64() < 0.5)
			}
		}
	}
	if err := mask.Build(is, js, xs, nil); err != nil {
		t.Fatal(err)
	}
	refMask := ref.NewMat[bool](n, n)
	for k := range is {
		refMask.Val[is[k]][js[k]] = xs[k]
		refMask.Set[is[k]][js[k]] = true
	}
	for _, valued := range []bool{false, true} {
		d := grb.Descriptor{MaskValue: valued}
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, mask, nil, grb.PlusTimes[int64](), a, b, &d); err != nil {
			t.Fatal(err)
		}
		want := ref.NewMat[int64](n, n)
		ref.MxM(want, refMask, nil, grb.PlusTimes[int64](), ref.FromMatrix(a), ref.FromMatrix(b), refDesc(d))
		eqMat(t, c, want)
	}
}
