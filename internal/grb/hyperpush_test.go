package grb

import (
	"math/rand"
	"testing"
)

// TestVxMHashAccumulatorPath exercises the O(flops)-memory hash push used
// when the output dimension is in the hypersparse regime, by embedding a
// small problem into a huge id space and checking the embedded result
// matches the compact one.
func TestVxMHashAccumulatorPath(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	const m = 40
	const stride = 1 << 30 // scatter ids over a 2^35+ space
	bigN := m * stride

	small := MustMatrix[int64](m, m)
	big := MustMatrix[int64](bigN, bigN)
	big.SetFormat(FormatHyper)
	for k := 0; k < 200; k++ {
		i, j := rng.Intn(m), rng.Intn(m)
		x := int64(rng.Intn(9) - 4)
		_ = small.SetElement(i, j, x)
		_ = big.SetElement(i*stride, j*stride, x)
	}
	uSmall := MustVector[int64](m)
	uBig := MustVector[int64](bigN)
	for i := 0; i < m; i++ {
		if rng.Float64() < 0.5 {
			x := int64(rng.Intn(5))
			_ = uSmall.SetElement(i, x)
			_ = uBig.SetElement(i*stride, x)
		}
	}

	wSmall := MustVector[int64](m)
	if err := VxM[int64, int64, int64, bool](wSmall, nil, nil, PlusTimes[int64](), uSmall, small, &Descriptor{Dir: DirPush}); err != nil {
		t.Fatal(err)
	}
	wBig := MustVector[int64](bigN)
	if err := VxM[int64, int64, int64, bool](wBig, nil, nil, PlusTimes[int64](), uBig, big, &Descriptor{Dir: DirPush}); err != nil {
		t.Fatal(err)
	}
	si, sx := wSmall.ExtractTuples()
	bi, bx := wBig.ExtractTuples()
	if len(si) != len(bi) {
		t.Fatalf("nvals %d vs %d", len(si), len(bi))
	}
	for k := range si {
		if bi[k] != si[k]*stride || bx[k] != sx[k] {
			t.Fatalf("entry %d: (%d,%d) vs (%d,%d)", k, bi[k], bx[k], si[k]*stride, sx[k])
		}
	}
}

// TestMxMHeapOnHugeOutput checks the auto-chooser routes enormous output
// dimensions away from the dense-accumulator kernel and still gets the
// right answer.
func TestMxMHeapOnHugeOutput(t *testing.T) {
	const stride = 1 << 28
	const m = 12
	bigN := m * stride
	a := MustMatrix[int64](bigN, bigN)
	a.SetFormat(FormatHyper)
	small := MustMatrix[int64](m, m)
	rng := rand.New(rand.NewSource(82))
	for k := 0; k < 60; k++ {
		i, j := rng.Intn(m), rng.Intn(m)
		x := int64(1 + rng.Intn(4))
		_ = small.SetElement(i, j, x)
		_ = a.SetElement(i*stride, j*stride, x)
	}
	cBig := MustMatrix[int64](bigN, bigN)
	cBig.SetFormat(FormatHyper)
	if err := MxM[int64, int64, int64, bool](cBig, nil, nil, PlusTimes[int64](), a, a, nil); err != nil {
		t.Fatal(err)
	}
	cSmall := MustMatrix[int64](m, m)
	if err := MxM[int64, int64, int64, bool](cSmall, nil, nil, PlusTimes[int64](), small, small, nil); err != nil {
		t.Fatal(err)
	}
	if cBig.Nvals() != cSmall.Nvals() {
		t.Fatalf("nvals %d vs %d", cBig.Nvals(), cSmall.Nvals())
	}
	cSmall.Iterate(func(i, j int, x int64) bool {
		v, err := cBig.GetElement(i*stride, j*stride)
		if err != nil || v != x {
			t.Fatalf("c(%d,%d): %v vs %v (err %v)", i, j, v, x, err)
		}
		return true
	})
}

func TestNamedDescriptors(t *testing.T) {
	// The C-API-named descriptor constants carry the right flags.
	if !DescT0.TranA || DescT0.TranB {
		t.Error("DescT0")
	}
	if !DescT1.TranB || DescT1.TranA {
		t.Error("DescT1")
	}
	if !DescR.Replace || DescR.Comp {
		t.Error("DescR")
	}
	if !DescC.Comp || DescC.Replace {
		t.Error("DescC")
	}
	if !DescRC.Comp || !DescRC.Replace {
		t.Error("DescRC")
	}
	if !DescRSC.Comp || !DescRSC.Replace {
		t.Error("DescRSC")
	}
	// Nil descriptor defaults.
	var d *Descriptor
	v := d.get()
	if v.TranA || v.TranB || v.Replace || v.Comp || v.MaskValue {
		t.Error("nil descriptor defaults")
	}
	if v.PushPullRatio != defaultPushPullRatio {
		t.Error("default ratio")
	}
	// Explicit ratio survives.
	v2 := (&Descriptor{PushPullRatio: 4}).get()
	if v2.PushPullRatio != 4 {
		t.Error("explicit ratio")
	}
}
