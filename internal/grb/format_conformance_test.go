package grb_test

// Format conformance: the storage formats (standard CSR, hypersparse,
// bitmap) are interchangeable views of one logical matrix, so every
// kernel must produce bitwise-identical results regardless of which
// format its operands are in, at any parallelism level, traced or
// untraced. Float64 results are compared bit-for-bit — the kernels
// accumulate each output in ascending input-index order precisely so
// that dispatch (direction, method, format, tuner advice) can never
// change rounding.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// allFormats enumerates the storage formats under test.
var allFormats = []struct {
	name string
	f    grb.Format
}{
	{"csr", grb.FormatCSR},
	{"hyper", grb.FormatHyper},
	{"bitmap", grb.FormatBitmap},
}

// inFormat returns a deep copy of a converted to format f.
func inFormat[T any](a *grb.Matrix[T], f grb.Format) *grb.Matrix[T] {
	b := a.Dup()
	b.SetFormat(f)
	return b
}

// randMatrixF64 builds a random nr×nc float64 matrix whose values have
// full mantissas, so any change in accumulation order shows up in the
// result bits.
func randMatrixF64(rng *rand.Rand, nr, nc int, density float64) *grb.Matrix[float64] {
	a := grb.MustMatrix[float64](nr, nc)
	n := int(density * float64(nr) * float64(nc))
	is := make([]int, n)
	js := make([]int, n)
	xs := make([]float64, n)
	for k := 0; k < n; k++ {
		is[k] = rng.Intn(nr)
		js[k] = rng.Intn(nc)
		xs[k] = rng.NormFloat64()
	}
	if err := a.Build(is, js, xs, grb.Plus[float64]()); err != nil {
		panic(err)
	}
	return a
}

func randVectorF64(rng *rand.Rand, n int, density float64) *grb.Vector[float64] {
	v := grb.MustVector[float64](n)
	cnt := int(density * float64(n))
	is := make([]int, cnt)
	xs := make([]float64, cnt)
	for k := 0; k < cnt; k++ {
		is[k] = rng.Intn(n)
		xs[k] = rng.NormFloat64()
	}
	if err := v.Build(is, xs, grb.Plus[float64]()); err != nil {
		panic(err)
	}
	return v
}

// mustIdenticalMat fails unless got and want hold exactly the same
// tuples, bit-for-bit (NaNs compare by representation).
func mustIdenticalMat[T comparable](t *testing.T, label string, got, want *grb.Matrix[T]) {
	t.Helper()
	gi, gj, gx := got.ExtractTuples()
	wi, wj, wx := want.ExtractTuples()
	if len(gi) != len(wi) {
		t.Fatalf("%s: %d entries, want %d", label, len(gi), len(wi))
	}
	for k := range gi {
		if gi[k] != wi[k] || gj[k] != wj[k] || !bitIdentical(gx[k], wx[k]) {
			t.Fatalf("%s: entry %d is (%d,%d)=%v, want (%d,%d)=%v",
				label, k, gi[k], gj[k], gx[k], wi[k], wj[k], wx[k])
		}
	}
}

func mustIdenticalVec[T comparable](t *testing.T, label string, got, want *grb.Vector[T]) {
	t.Helper()
	gi, gx := got.ExtractTuples()
	wi, wx := want.ExtractTuples()
	if len(gi) != len(wi) {
		t.Fatalf("%s: %d entries, want %d", label, len(gi), len(wi))
	}
	for k := range gi {
		if gi[k] != wi[k] || !bitIdentical(gx[k], wx[k]) {
			t.Fatalf("%s: entry %d is [%d]=%v, want [%d]=%v",
				label, k, gi[k], gx[k], wi[k], wx[k])
		}
	}
}

// bitIdentical compares two values exactly; float64s by their bits.
func bitIdentical[T comparable](a, b T) bool {
	if fa, ok := any(a).(float64); ok {
		return math.Float64bits(fa) == math.Float64bits(any(b).(float64))
	}
	return a == b
}

// TestFormatConformanceMxM pins that every MxM method yields identical
// bits whatever format either operand is stored in — including the
// dot-bitmap kernel that a bitmap-formatted B upgrades the dot method to.
func TestFormatConformanceMxM(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	methods := []struct {
		name string
		m    grb.MxMMethod
	}{
		{"gustavson", grb.MxMGustavson},
		{"dot", grb.MxMDot},
		{"heap", grb.MxMHeap},
	}
	for trial := 0; trial < 6; trial++ {
		m := 8 + rng.Intn(24)
		k := 8 + rng.Intn(24)
		n := 8 + rng.Intn(24)
		ai := randMatrix(rng, m, k, 0.3)
		bi := randMatrix(rng, k, n, 0.3)
		af := randMatrixF64(rng, m, k, 0.3)
		bf := randMatrixF64(rng, k, n, 0.3)
		maskI := randMatrix(rng, m, n, 0.4)
		for _, method := range methods {
			for _, masked := range []bool{false, true} {
				d := grb.Descriptor{Method: method.m}
				var gm *grb.Matrix[int64]
				if masked {
					gm = maskI
				}
				baseI := grb.MustMatrix[int64](m, n)
				if err := grb.MxM(baseI, gm, nil, grb.PlusTimes[int64](), inFormat(ai, grb.FormatCSR), inFormat(bi, grb.FormatCSR), &d); err != nil {
					t.Fatal(err)
				}
				baseF := grb.MustMatrix[float64](m, n)
				if err := grb.MxM[float64, float64, float64, int64](baseF, nil, nil, grb.PlusTimes[float64](), inFormat(af, grb.FormatCSR), inFormat(bf, grb.FormatCSR), &d); err != nil {
					t.Fatal(err)
				}
				for _, fa := range allFormats {
					for _, fb := range allFormats {
						label := fmt.Sprintf("t%d/%s/masked=%v/a=%s/b=%s", trial, method.name, masked, fa.name, fb.name)
						cI := grb.MustMatrix[int64](m, n)
						if err := grb.MxM(cI, gm, nil, grb.PlusTimes[int64](), inFormat(ai, fa.f), inFormat(bi, fb.f), &d); err != nil {
							t.Fatal(err)
						}
						mustIdenticalMat(t, label+"/int64", cI, baseI)
						cF := grb.MustMatrix[float64](m, n)
						if err := grb.MxM[float64, float64, float64, int64](cF, nil, nil, grb.PlusTimes[float64](), inFormat(af, fa.f), inFormat(bf, fb.f), &d); err != nil {
							t.Fatal(err)
						}
						mustIdenticalMat(t, label+"/float64", cF, baseF)
					}
				}
			}
		}
	}
}

// TestFormatConformanceVxM pins the vxm kernels — push, pull, and the
// bitmap pair a bitmap-formatted operand enables — to identical bits
// across formats and forced directions.
func TestFormatConformanceVxM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dirs := []struct {
		name string
		d    grb.Direction
	}{{"auto", grb.DirAuto}, {"push", grb.DirPush}, {"pull", grb.DirPull}}
	for trial := 0; trial < 6; trial++ {
		m := 8 + rng.Intn(32)
		n := 8 + rng.Intn(32)
		ai := randMatrix(rng, m, n, 0.3)
		af := randMatrixF64(rng, m, n, 0.3)
		ui := randVector(rng, m, 0.6)
		uf := randVectorF64(rng, m, 0.6)
		maskI := randVector(rng, n, 0.5)
		for _, dir := range dirs {
			for _, masked := range []bool{false, true} {
				d := grb.Descriptor{Dir: dir.d}
				var gm *grb.Vector[int64]
				if masked {
					gm = maskI
				}
				baseI := grb.MustVector[int64](n)
				if err := grb.VxM(baseI, gm, nil, grb.PlusTimes[int64](), ui, inFormat(ai, grb.FormatCSR), &d); err != nil {
					t.Fatal(err)
				}
				baseF := grb.MustVector[float64](n)
				if err := grb.VxM[float64, float64, float64, int64](baseF, nil, nil, grb.PlusTimes[float64](), uf, inFormat(af, grb.FormatCSR), &d); err != nil {
					t.Fatal(err)
				}
				for _, fa := range allFormats {
					label := fmt.Sprintf("t%d/%s/masked=%v/a=%s", trial, dir.name, masked, fa.name)
					wI := grb.MustVector[int64](n)
					if err := grb.VxM(wI, gm, nil, grb.PlusTimes[int64](), ui, inFormat(ai, fa.f), &d); err != nil {
						t.Fatal(err)
					}
					mustIdenticalVec(t, label+"/int64", wI, baseI)
					wF := grb.MustVector[float64](n)
					if err := grb.VxM[float64, float64, float64, int64](wF, nil, nil, grb.PlusTimes[float64](), uf, inFormat(af, fa.f), &d); err != nil {
						t.Fatal(err)
					}
					mustIdenticalVec(t, label+"/float64", wF, baseF)
				}
			}
		}
	}
}

// TestFormatConformanceReduce pins reductions across formats.
func TestFormatConformanceReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		m := 8 + rng.Intn(32)
		n := 8 + rng.Intn(32)
		af := randMatrixF64(rng, m, n, 0.3)
		baseV := grb.MustVector[float64](m)
		if err := grb.ReduceMatrixToVector[float64, bool](baseV, nil, nil, grb.PlusMonoid[float64](), inFormat(af, grb.FormatCSR), nil); err != nil {
			t.Fatal(err)
		}
		baseS, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), inFormat(af, grb.FormatCSR))
		if err != nil {
			t.Fatal(err)
		}
		for _, fa := range allFormats {
			a := inFormat(af, fa.f)
			w := grb.MustVector[float64](m)
			if err := grb.ReduceMatrixToVector[float64, bool](w, nil, nil, grb.PlusMonoid[float64](), a, nil); err != nil {
				t.Fatal(err)
			}
			mustIdenticalVec(t, fmt.Sprintf("t%d/%s/vector", trial, fa.name), w, baseV)
			s, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), a)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(s) != math.Float64bits(baseS) {
				t.Fatalf("t%d/%s: scalar reduce %v, want %v", trial, fa.name, s, baseS)
			}
		}
	}
}

// TestFormatConformanceParallelism pins bitwise-identical results at
// P=1 vs P=8 for every format (run under -race in CI).
func TestFormatConformanceParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, k, n := 40, 48, 44
	af := randMatrixF64(rng, m, k, 0.4)
	bf := randMatrixF64(rng, k, n, 0.4)
	uf := randVectorF64(rng, m, 0.7)
	defer grb.SetParallelism(grb.SetParallelism(1))
	for _, fa := range allFormats {
		var mxmRes []*grb.Matrix[float64]
		var vxmRes []*grb.Vector[float64]
		for _, p := range []int{1, 8} {
			grb.SetParallelism(p)
			c := grb.MustMatrix[float64](m, n)
			if err := grb.MxM[float64, float64, float64, bool](c, nil, nil, grb.PlusTimes[float64](), inFormat(af, fa.f), inFormat(bf, fa.f), nil); err != nil {
				t.Fatal(err)
			}
			mxmRes = append(mxmRes, c)
			w := grb.MustVector[float64](k)
			if err := grb.VxM[float64, float64, float64, bool](w, nil, nil, grb.PlusTimes[float64](), uf, inFormat(af, fa.f), nil); err != nil {
				t.Fatal(err)
			}
			vxmRes = append(vxmRes, w)
		}
		mustIdenticalMat(t, fa.name+"/mxm P1 vs P8", mxmRes[1], mxmRes[0])
		mustIdenticalVec(t, fa.name+"/vxm P1 vs P8", vxmRes[1], vxmRes[0])
	}
}

// TestFormatSerializeRoundTrip pins that serialization is format-aware
// and a fixed point: each format round-trips to the same tuples AND the
// same bytes, so the restored matrix has the same format preference.
func TestFormatSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 4; trial++ {
		a := randMatrixF64(rng, 8+rng.Intn(30), 8+rng.Intn(30), 0.3)
		for _, fa := range allFormats {
			b := inFormat(a, fa.f)
			var buf bytes.Buffer
			if err := grb.SerializeMatrix(&buf, b); err != nil {
				t.Fatal(err)
			}
			c, err := grb.DeserializeMatrix[float64](bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: %v", fa.name, err)
			}
			mustIdenticalMat(t, fa.name+"/tuples", c, b)
			var re bytes.Buffer
			if err := grb.SerializeMatrix(&re, c); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), re.Bytes()) {
				t.Fatalf("%s: serialization is not a fixed point across the round trip", fa.name)
			}
		}
	}
}

// TestFormatTracedIdenticalToUntraced pins that observation — including
// a learning tuner registered as an observer — never changes results.
func TestFormatTracedIdenticalToUntraced(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	m, k, n := 30, 34, 32
	af := randMatrixF64(rng, m, k, 0.4)
	bf := randMatrixF64(rng, k, n, 0.4)
	uf := randVectorF64(rng, m, 0.7)

	run := func() (*grb.Matrix[float64], *grb.Vector[float64]) {
		c := grb.MustMatrix[float64](m, n)
		if err := grb.MxM[float64, float64, float64, bool](c, nil, nil, grb.PlusTimes[float64](), inFormat(af, grb.FormatBitmap), inFormat(bf, grb.FormatBitmap), nil); err != nil {
			t.Fatal(err)
		}
		w := grb.MustVector[float64](k)
		if err := grb.VxM[float64, float64, float64, bool](w, nil, nil, grb.PlusTimes[float64](), uf, inFormat(af, grb.FormatBitmap), nil); err != nil {
			t.Fatal(err)
		}
		return c, w
	}

	baseC, baseW := run()

	tuner := grb.NewTuner()
	trace := obs.NewTrace(1024)
	prevObs := obs.Set(&obs.Multi{Obs: []obs.Observer{trace, tuner}})
	prevTuner := grb.SetTuner(tuner)
	defer func() {
		obs.Set(prevObs)
		grb.SetTuner(prevTuner)
	}()
	for i := 0; i < 8; i++ { // enough rounds for the tuner to start advising
		c, w := run()
		mustIdenticalMat(t, fmt.Sprintf("traced round %d mxm", i), c, baseC)
		mustIdenticalVec(t, fmt.Sprintf("traced round %d vxm", i), w, baseW)
	}
	if len(trace.Ops()) == 0 {
		t.Fatal("trace recorded no ops")
	}
}

// TestTunerAdviseAndPolicy seeds a tuner with forced-kernel history and
// checks that (a) auto dispatch then picks the measured winner, (b) the
// decision is recorded as policy "tuned" in the op trace, and (c) the
// result is identical to every static choice.
func TestTunerAdviseAndPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m, n := 24, 26
	a := randMatrix(rng, m, n, 0.6) // dense enough for bitmap eligibility
	u := randVector(rng, m, 0.8)

	// Static baselines, forced both ways.
	want := grb.MustVector[int64](n)
	if err := grb.VxM[int64, int64, int64, bool](want, nil, nil, grb.PlusTimes[int64](), u, a, &grb.Descriptor{Dir: grb.DirPush}); err != nil {
		t.Fatal(err)
	}
	pull := grb.MustVector[int64](n)
	if err := grb.VxM[int64, int64, int64, bool](pull, nil, nil, grb.PlusTimes[int64](), u, a, &grb.Descriptor{Dir: grb.DirPull}); err != nil {
		t.Fatal(err)
	}
	mustIdenticalVec(t, "push vs pull", pull, want)

	tuner := grb.NewTuner()
	size := int64(a.Nvals()) + int64(u.Nvals())
	// Feed synthetic history: "pull" measured much faster than the
	// others in this size bucket, so advice must say pull.
	for i := 0; i < 4; i++ {
		for kernel, dur := range map[string]int64{"push": 9000, "pull": 100, "bitmap": 8000} {
			tuner.Op(obs.OpRecord{Op: "vxm", Kernel: kernel, DurNanos: dur, NnzA: int(size), EstFlops: 1000})
		}
	}
	if k, ok := tuner.Advise("vxm", false, size, []string{"push", "pull", "bitmap"}); !ok || k != "pull" {
		t.Fatalf("Advise = %q, %v; want pull, true", k, ok)
	}

	trace := obs.NewTrace(64)
	prevObs := obs.Set(trace)
	prevTuner := grb.SetTuner(tuner)
	defer func() {
		obs.Set(prevObs)
		grb.SetTuner(prevTuner)
	}()
	got := grb.MustVector[int64](n)
	if err := grb.VxM[int64, int64, int64, bool](got, nil, nil, grb.PlusTimes[int64](), u, a, nil); err != nil {
		t.Fatal(err)
	}
	mustIdenticalVec(t, "tuned vs static", got, want)
	var rec *obs.OpRecord
	for _, r := range trace.Ops() {
		if r.Op == "vxm" {
			rec = &r
			break
		}
	}
	if rec == nil {
		t.Fatal("no vxm op record traced")
	}
	if rec.Policy != "tuned" || rec.Kernel != "pull" {
		t.Fatalf("op record policy=%q kernel=%q; want tuned/pull", rec.Policy, rec.Kernel)
	}

	// A forced direction must bypass the tuner and record policy "forced".
	trace2 := obs.NewTrace(64)
	obs.Set(trace2)
	forced := grb.MustVector[int64](n)
	if err := grb.VxM[int64, int64, int64, bool](forced, nil, nil, grb.PlusTimes[int64](), u, a, &grb.Descriptor{Dir: grb.DirPush}); err != nil {
		t.Fatal(err)
	}
	mustIdenticalVec(t, "forced vs static", forced, want)
	ops := trace2.Ops()
	if len(ops) == 0 || ops[0].Policy != "forced" || ops[0].Kernel != "push" {
		t.Fatalf("forced run recorded %+v; want policy=forced kernel=push", ops)
	}
}
