package grb

import "sort"

// maskVec is a type-erased view of a vector used as a write mask. The nil
// pointer admits every index. By default the mask is structural (a stored
// entry admits the index); bool-valued masks with value semantics also
// require the stored value to be true. Comp inverts the admission.
type maskVec struct {
	n    int
	idx  []int
	val  []bool // nil means every stored entry counts as true
	comp bool
}

// newMaskVec builds a mask view over m, materializing it first. A nil m
// yields a nil view (no mask). When the descriptor requests value
// semantics and M is bool, stored values are honoured.
func newMaskVec[M any](m *Vector[M], d descValues) *maskVec {
	if m == nil {
		return nil
	}
	idx, xs := m.materialized()
	mv := &maskVec{n: m.n, idx: idx, comp: d.Comp}
	if d.MaskValue {
		if bs, ok := any(xs).([]bool); ok {
			mv.val = bs
		}
	}
	return mv
}

// allowed reports whether index i may be written. O(log nvals).
func (m *maskVec) allowed(i int) bool {
	if m == nil {
		return true
	}
	pos := sort.SearchInts(m.idx, i)
	in := pos < len(m.idx) && m.idx[pos] == i
	if in && m.val != nil {
		in = m.val[pos]
	}
	return in != m.comp
}

// cursor returns an ascending-order admission tester with O(1) amortized
// cost; indices must be queried in non-decreasing order.
func (m *maskVec) cursor() func(i int) bool {
	if m == nil {
		return func(int) bool { return true }
	}
	k := 0
	return func(i int) bool {
		for k < len(m.idx) && m.idx[k] < i {
			k++
		}
		in := k < len(m.idx) && m.idx[k] == i
		if in && m.val != nil {
			in = m.val[k]
		}
		return in != m.comp
	}
}

// bitmap scatters the mask into a dense admission bitmap of length n.
func (m *maskVec) bitmap(n int) []bool {
	b := make([]bool, n)
	if m == nil {
		for i := range b {
			b[i] = true
		}
		return b
	}
	for k, i := range m.idx {
		t := true
		if m.val != nil {
			t = m.val[k]
		}
		b[i] = t
	}
	if m.comp {
		for i := range b {
			b[i] = !b[i]
		}
	}
	return b
}

// countAllowed returns how many of the n indices are admitted.
func (m *maskVec) countAllowed(n int) int {
	if m == nil {
		return n
	}
	stored := 0
	if m.val == nil {
		stored = len(m.idx)
	} else {
		for _, t := range m.val {
			if t {
				stored++
			}
		}
	}
	if m.comp {
		return n - stored
	}
	return stored
}

// maskMat is a type-erased row-oriented view of a matrix used as a write
// mask. The nil pointer admits every position.
type maskMat struct {
	nr, nc int
	// row returns the admitted column pattern of row i: sorted column
	// indices plus optional truth values (nil = all true). The slices
	// alias internal storage and must not be modified.
	row func(i int) ([]int, []bool)
	// majors lists the stored row indices (ascending).
	majors func() []int
	comp   bool
}

// iterate visits every stored mask position with its admission value
// (before complementation).
func (m *maskMat) iterate(fn func(i, j int, admit bool)) {
	for _, i := range m.majors() {
		ci, cv := m.row(i)
		for t, j := range ci {
			admit := true
			if cv != nil {
				admit = cv[t]
			}
			fn(i, j, admit)
		}
	}
}

// newMaskMat builds a mask view over m (materializing it). Value semantics
// are honoured for bool matrices when requested by the descriptor.
func newMaskMat[M any](m *Matrix[M], d descValues) *maskMat {
	if m == nil {
		return nil
	}
	c := m.materializedCSR()
	valued := false
	var bx []bool
	if d.MaskValue {
		if bs, ok := any(c.x).([]bool); ok {
			valued, bx = true, bs
		}
	}
	return &maskMat{
		nr: m.nr, nc: m.nc,
		comp: d.Comp,
		row: func(i int) ([]int, []bool) {
			k, ok := c.findMajor(i)
			if !ok {
				return nil, nil
			}
			lo, hi := c.p[k], c.p[k+1]
			if valued {
				return c.i[lo:hi], bx[lo:hi]
			}
			return c.i[lo:hi], nil
		},
		majors: func() []int {
			out := make([]int, 0, c.nvecs())
			for k := 0; k < c.nvecs(); k++ {
				if c.p[k+1] > c.p[k] {
					out = append(out, c.majorOf(k))
				}
			}
			return out
		},
	}
}

// rowMask returns the admission view of one row of the matrix mask.
func (m *maskMat) rowMask(i int) *maskVec {
	if m == nil {
		return nil
	}
	idx, val := m.row(i)
	return &maskVec{n: m.nc, idx: idx, val: val, comp: m.comp}
}
