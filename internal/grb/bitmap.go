package grb

// Bitmap storage (§II-A: SuiteSparse's fourth format family). A bitmap
// holds a presence flag and a value slot for every (i,j) position, giving
// O(1) random access and perfectly contiguous row scans — the layout that
// wins when a matrix is dense enough that compressed indices cost more
// than they save (dense frontiers, small dense blocks of a multigrid
// hierarchy, masks that admit most positions).
//
// The bitmap is a *view*: the row-major compressed structure (Matrix.csr)
// stays canonical for every matrix, so serialization, the store's LGSNAP
// frames, ExtractTuples and all compressed-only kernels are format
// transparent. Kernels that profit from O(1) access (bitmap vxm, the
// bitmap dot mxm) consult bitmapView and fall back to compressed storage
// when the view is absent. maybeConvertFormat builds and drops the view
// under the density thresholds below; mutations invalidate it exactly
// like the column cache.
type bm[T any] struct {
	nr, nc int
	// b[i*nc+j] reports whether (i,j) holds a stored entry; x[i*nc+j] is
	// its value. Rows are contiguous.
	b []bool
	x []T
	// nvals mirrors the canonical structure's entry count.
	nvals int
}

// Bitmap eligibility: FormatAuto builds the view only when the matrix is
// small enough that a dense array is affordable and dense enough that it
// pays. FormatBitmap forces the view whenever the cell count is
// representable (the cap still applies — a 2^40-dimension bitmap is not a
// storage format, it is an OOM).
const (
	// bitmapMaxCells caps nr*nc for any bitmap view (bools + values for
	// 2^22 cells of float64 ≈ 36 MiB, the outer edge of "cheap").
	bitmapMaxCells = 1 << 22
	// bitmapDenRatio selects the view when nvals ≥ nr*nc/bitmapDenRatio,
	// i.e. at ≥ 12.5% fill compressed indices are pure overhead.
	bitmapDenRatio = 8
)

// bitmapCells returns nr*nc if it is within the bitmap cap, or -1 when the
// product is too large (or would overflow).
func bitmapCells(nr, nc int) int {
	if nr <= 0 || nc <= 0 || nr > bitmapMaxCells || nc > bitmapMaxCells/nr {
		return -1
	}
	return nr * nc
}

// csToBM expands a compressed structure into its bitmap view.
func csToBM[T any](c *cs[T]) *bm[T] {
	cells := bitmapCells(c.nmajor, c.nminor)
	if cells < 0 {
		return nil
	}
	v := &bm[T]{
		nr: c.nmajor, nc: c.nminor,
		b:     make([]bool, cells),
		x:     make([]T, cells),
		nvals: c.nvals(),
	}
	for k := 0; k < c.nvecs(); k++ {
		base := c.majorOf(k) * c.nminor
		ci, cx := c.vec(k)
		for t := range ci {
			v.b[base+ci[t]] = true
			v.x[base+ci[t]] = cx[t]
		}
	}
	return v
}

// bmToCS compacts a bitmap view back into standard compressed form, rows
// ascending, columns ascending within each row — the unique canonical
// order, so the round trip is exact.
func bmToCS[T any](v *bm[T]) *cs[T] {
	c := &cs[T]{nmajor: v.nr, nminor: v.nc}
	c.p = make([]int, v.nr+1)
	c.i = make([]int, 0, v.nvals)
	c.x = make([]T, 0, v.nvals)
	for i := 0; i < v.nr; i++ {
		base := i * v.nc
		for j := 0; j < v.nc; j++ {
			if v.b[base+j] {
				c.i = append(c.i, j)
				c.x = append(c.x, v.x[base+j])
			}
		}
		c.p[i+1] = len(c.i)
	}
	return c
}

// bitmapView completes pending work and returns the bitmap view, building
// and caching it on first use — the exact protocol of materializedCSC, so
// a fully-materialized matrix can be shared by concurrent readers. It
// returns nil when the matrix is not bitmap-eligible (FormatCSR /
// FormatHyper, too many cells, or FormatAuto below the density bar);
// callers fall back to compressed kernels on nil. Every mutation path
// invalidates the cache (bmp = nil) exactly like the column cache.
func (a *Matrix[T]) bitmapView() *bm[T] {
	a.Wait()
	a.bmpMu.Lock()
	defer a.bmpMu.Unlock()
	if a.bmp != nil {
		return a.bmp
	}
	if !a.bitmapWanted() {
		return nil
	}
	a.bmp = csToBM(a.csr)
	return a.bmp
}

// bitmapWanted reports whether the current storage qualifies for a bitmap
// view under the configured format. Pending work must already be complete.
func (a *Matrix[T]) bitmapWanted() bool {
	c := a.csr
	cells := bitmapCells(c.nmajor, c.nminor)
	switch a.format {
	case FormatBitmap:
		return cells >= 0
	case FormatAuto:
		return cells >= 0 && c.nvals()*bitmapDenRatio >= cells
	}
	return false
}

// bitmapEligible completes pending work and reports bitmap eligibility
// without building the view — the O(1) probe dispatch uses to assemble
// its candidate set.
func (a *Matrix[T]) bitmapEligible() bool {
	a.Wait()
	return a.bitmapWanted()
}

// bitmapPreferred reports whether static vxm dispatch should pick the
// bitmap sweep outright: only when the caller forced FormatBitmap — an
// explicit declaration that the matrix lives dense. Density alone never
// makes the sweep the static choice: measured across fills from 50% to
// 100%, the compressed pull kernel beats the bitmap sweep (the sweep
// re-derives each row's occupancy from the bool lane, information the
// compressed index arrays already encode), so under FormatAuto the view
// serves the O(1)-probe kernels (bitmap dot, element reads) while sweeps
// stay compressed unless the tuner measures otherwise.
func (a *Matrix[T]) bitmapPreferred() bool {
	a.Wait()
	return a.format == FormatBitmap && a.bitmapWanted()
}

// cachedBitmap returns the already-built bitmap view or nil, without
// triggering a build — the cheap fast-path probe for single-element reads.
// Pending work must already be complete.
func (a *Matrix[T]) cachedBitmap() *bm[T] {
	a.bmpMu.Lock()
	v := a.bmp
	a.bmpMu.Unlock()
	return v
}
