package grb_test

// Cross-parallelism determinism over generator-grade input, asserted at
// the serialization layer: a masked float64 MxM and a forced-push VxM
// over gen.PowerLaw graphs must produce byte-for-byte identical
// serialized results at SetParallelism(1) and SetParallelism(8). This is
// the external-package twin of the in-package TestSkewed* suite — it goes
// through the public API only and compares the full wire encoding, so a
// nondeterminism anywhere between kernel partitioning and the stored
// representation (pattern, values, hypersparse row list) fails it.

import (
	"bytes"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

const (
	plN     = 2048
	plEdges = 32768
	plAlpha = 1.7
)

// atParallelism runs fn with the worker bound set to p, restoring the
// previous setting afterwards.
func atParallelism(p int, fn func()) {
	prev := grb.SetParallelism(p)
	defer grb.SetParallelism(prev)
	fn()
}

func serializedMatrix(t *testing.T, a *grb.Matrix[float64]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := grb.SerializeMatrix(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func serializedVector(t *testing.T, v *grb.Vector[float64]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := grb.SerializeVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPowerLawMaskedMxMDeterminism: C⟨M⟩ = A ⊕.⊗ A with a structural bool
// mask, PlusTimes over float64 — the non-associative stress case.
func TestPowerLawMaskedMxMDeterminism(t *testing.T) {
	a := gen.PowerLaw(plN, plEdges, plAlpha, gen.Config{Seed: 61, NoSelfLoops: true}).Matrix()
	mask := gen.PowerLaw(plN, plEdges/2, plAlpha, gen.Config{Seed: 62}).BoolMatrix()

	run := func(p int) []byte {
		var out []byte
		atParallelism(p, func() {
			c := grb.MustMatrix[float64](plN, plN)
			if err := grb.MxM(c, mask, nil, grb.PlusTimes[float64](), a, a, nil); err != nil {
				t.Fatal(err)
			}
			out = serializedMatrix(t, c)
		})
		return out
	}

	one := run(1)
	eight := run(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("masked MxM serialization differs between SetParallelism(1) (%d bytes) and SetParallelism(8) (%d bytes)",
			len(one), len(eight))
	}
}

// TestPowerLawVxMPushDeterminism forces the push (scatter) kernel — the
// one whose chunk merges fix the float association — via DirPush, with a
// frontier wide enough to split into many flop-balanced chunks.
func TestPowerLawVxMPushDeterminism(t *testing.T) {
	a := gen.PowerLaw(plN, plEdges, plAlpha, gen.Config{Seed: 63, NoSelfLoops: true}).Matrix()

	u := grb.MustVector[float64](plN)
	for i := 0; i < plN; i += 2 {
		if err := u.SetElement(i, 1.0/float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	u.Wait()

	desc := &grb.Descriptor{Dir: grb.DirPush}
	run := func(p int) []byte {
		var out []byte
		atParallelism(p, func() {
			w := grb.MustVector[float64](plN)
			if err := grb.VxM(w, (*grb.Vector[bool])(nil), nil, grb.PlusTimes[float64](), u, a, desc); err != nil {
				t.Fatal(err)
			}
			out = serializedVector(t, w)
		})
		return out
	}

	one := run(1)
	eight := run(8)
	if !bytes.Equal(one, eight) {
		t.Fatalf("push VxM serialization differs between SetParallelism(1) (%d bytes) and SetParallelism(8) (%d bytes)",
			len(one), len(eight))
	}
}
