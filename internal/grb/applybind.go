package grb

// Apply with a bound scalar operand — the GrB_apply overloads with a
// BinaryOp and a scalar (first or second) from the v1.3 C API. LAGraph
// algorithms use these constantly (scale a vector, compare against a
// threshold, add a constant), so they are provided directly rather than
// through closures.

// ApplyVectorBind1st computes w⟨m⟩ ⊙= f(s, u(i)) element-wise.
func ApplyVectorBind1st[S, A, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], f BinaryOp[S, A, T], s S, u *Vector[A], desc *Descriptor) error {
	if f == nil {
		return opError("apply", ErrUninitialized)
	}
	return ApplyVector(w, mask, accum, func(x A) T { return f(s, x) }, u, desc)
}

// ApplyVectorBind2nd computes w⟨m⟩ ⊙= f(u(i), s) element-wise.
func ApplyVectorBind2nd[A, S, T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], f BinaryOp[A, S, T], u *Vector[A], s S, desc *Descriptor) error {
	if f == nil {
		return opError("apply", ErrUninitialized)
	}
	return ApplyVector(w, mask, accum, func(x A) T { return f(x, s) }, u, desc)
}

// ApplyMatrixBind1st computes C⟨M⟩ ⊙= f(s, A(i,j)) element-wise.
func ApplyMatrixBind1st[S, A, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], f BinaryOp[S, A, T], s S, a *Matrix[A], desc *Descriptor) error {
	if f == nil {
		return opError("apply", ErrUninitialized)
	}
	return ApplyMatrix(c, mask, accum, func(x A) T { return f(s, x) }, a, desc)
}

// ApplyMatrixBind2nd computes C⟨M⟩ ⊙= f(A(i,j), s) element-wise.
func ApplyMatrixBind2nd[A, S, T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], f BinaryOp[A, S, T], a *Matrix[A], s S, desc *Descriptor) error {
	if f == nil {
		return opError("apply", ErrUninitialized)
	}
	return ApplyMatrix(c, mask, accum, func(x A) T { return f(x, s) }, a, desc)
}

// DiagMatrix builds the (n+|k|)×(n+|k|) matrix whose k-th diagonal holds
// the entries of v (GrB_Matrix_diag).
func DiagMatrix[T any](v *Vector[T], k int) (*Matrix[T], error) {
	if v == nil {
		return nil, opError("diag", ErrUninitialized)
	}
	idx, xs := v.materialized()
	n := v.n
	dim := n
	if k > 0 {
		dim = n + k
	} else if k < 0 {
		dim = n - k
	}
	a := MustMatrix[T](dim, dim)
	is := make([]int, len(idx))
	js := make([]int, len(idx))
	for t, i := range idx {
		r, c := i, i+k
		if k < 0 {
			r, c = i-k, i
		}
		is[t] = r
		js[t] = c
	}
	// Shift produces distinct coordinates, so no dup op is needed.
	if err := a.Build(is, js, append([]T(nil), xs...), nil); err != nil {
		return nil, err
	}
	return a, nil
}

// MatrixDiag extracts the k-th diagonal of a into a vector
// (GxB_Vector_diag).
func MatrixDiag[T any](a *Matrix[T], k int) (*Vector[T], error) {
	if a == nil {
		return nil, opError("diag", ErrUninitialized)
	}
	c := a.materializedCSR()
	// Diagonal length.
	var n int
	if k >= 0 {
		n = min(a.nr, a.nc-k)
	} else {
		n = min(a.nr+k, a.nc)
	}
	if n < 0 {
		n = 0
	}
	v := MustVector[T](n)
	for kk := 0; kk < c.nvecs(); kk++ {
		i := c.majorOf(kk)
		j := i + k
		if j < 0 || j >= a.nc {
			continue
		}
		ci, cx := c.vec(kk)
		pos := searchFlipped(ci, j)
		if pos < len(ci) && ci[pos] == j {
			var t int
			if k >= 0 {
				t = i
			} else {
				t = j
			}
			if t < n {
				_ = v.SetElement(t, cx[pos])
			}
		}
	}
	v.Wait()
	return v, nil
}

// Resize changes the dimensions of the matrix in place, dropping entries
// that fall outside the new bounds (GrB_Matrix_resize).
func (a *Matrix[T]) Resize(nrows, ncols int) error {
	if nrows < 0 || ncols < 0 {
		return opErrorf("resize", ErrInvalidValue, "want %d×%d", nrows, ncols)
	}
	old := a.materializedCSR()
	is, js, xs := a.ExtractTuples()
	w := 0
	for k := range is {
		if is[k] < nrows && js[k] < ncols {
			is[w], js[w], xs[w] = is[k], js[k], xs[k]
			w++
		}
	}
	is, js, xs = is[:w], js[:w], xs[:w]
	a.nr, a.nc = nrows, ncols
	a.csr = emptyCS[T](nrows, ncols, old.h != nil)
	a.csc = nil
	if w > 0 {
		return a.Build(is, js, xs, nil)
	}
	return nil
}

// Resize changes the dimension of the vector in place, dropping entries
// beyond the new size (GrB_Vector_resize).
func (v *Vector[T]) Resize(n int) error {
	if n < 0 {
		return opErrorf("resize", ErrInvalidValue, "want %d", n)
	}
	v.Wait()
	w := 0
	for k := range v.idx {
		if v.idx[k] < n {
			v.idx[w], v.x[w] = v.idx[k], v.x[k]
			w++
		}
	}
	v.idx, v.x = v.idx[:w], v.x[:w]
	v.n = n
	return nil
}
