package grb

import "sort"

// Assign of Table I: C(I,J)⟨M⟩ ⊙= A and the scalar variants. The mask has
// the dimensions of the output; positions outside the I×J region are never
// modified. Single-element assignment funnels into the pending-tuple
// mechanism, which is what makes a long sequence of incremental updates
// cheap (§II-A).

// AssignVector computes w(I)⟨m⟩ ⊙= u, with nil I meaning all of w.
func AssignVector[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], u *Vector[T], idx []int, desc *Descriptor) error {
	if w == nil || u == nil {
		return opError("assign", ErrUninitialized)
	}
	if err := checkIndices("assign", idx, w.n); err != nil {
		return err
	}
	un := len(idx)
	if idx == nil {
		un = w.n
	}
	if u.n != un {
		return opErrorf("assign", ErrDimensionMismatch, "u is %d, region is %d", u.n, un)
	}
	d := desc.get()
	ui, ux := u.materialized()

	// Fast path: small dense updates buffer as pending tuples instead of
	// rewriting w. (The deletion semantics of sparse u — region positions
	// with no u entry lose their value — need the general path.)
	if mask == nil && idx != nil && len(idx) <= pendingFastPathMax && !d.Replace && len(ui) == un {
		for t, target := range idx {
			if accum != nil {
				w.accumElement(target, ux[t], accum)
			} else {
				_ = w.SetElement(target, ux[t])
			}
		}
		return nil
	}

	// General path: expand u into w-shaped z over the region, then apply
	// the write rule restricted to the region.
	zi := make([]int, 0, len(ui))
	zx := make([]T, 0, len(ui))
	region := make(map[int]struct{}, un)
	if idx == nil {
		zi = append(zi, ui...)
		zx = append(zx, ux...)
	} else {
		type ent struct {
			i int
			x T
			e bool // entry present in u
		}
		tmp := make([]ent, 0, len(idx))
		ud, uok := u.dense()
		for t, target := range idx {
			region[target] = struct{}{}
			if uok[t] {
				tmp = append(tmp, ent{target, ud[t], true})
			}
		}
		sort.Slice(tmp, func(a, b int) bool { return tmp[a].i < tmp[b].i })
		for _, e := range tmp {
			zi = append(zi, e.i)
			zx = append(zx, e.x)
		}
	}
	inRegion := func(i int) bool {
		if idx == nil {
			return true
		}
		_, ok := region[i]
		return ok
	}
	return writeVectorRegion(w, mask, accum, zi, zx, inRegion, d)
}

// pendingFastPathMax bounds the assign sizes routed through pending
// tuples.
const pendingFastPathMax = 256

// AssignVectorScalar computes w(I)⟨m⟩ ⊙= s: every admitted position in the
// region receives the scalar. This is the `levels[frontier] = depth` step
// of the Fig. 2 BFS.
func AssignVectorScalar[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], s T, idx []int, desc *Descriptor) error {
	if w == nil {
		return opError("assign", ErrUninitialized)
	}
	if err := checkIndices("assign", idx, w.n); err != nil {
		return err
	}
	if mask != nil && mask.n != w.n {
		return opErrorf("assign", ErrDimensionMismatch, "mask is %d, w is %d", mask.n, w.n)
	}
	d := desc.get()
	mv := newMaskVec(mask, d)

	// Enumerate admitted positions in the region.
	var zi []int
	switch {
	case idx == nil && mv == nil:
		zi = make([]int, w.n)
		for i := range zi {
			zi[i] = i
		}
	case idx == nil && !mv.comp && mv.val == nil:
		zi = append(zi, mv.idx...)
	case idx == nil:
		for i := 0; i < w.n; i++ {
			if mv.allowed(i) {
				zi = append(zi, i)
			}
		}
	default:
		zi = append(zi, idx...)
		zi = sortDedupIndices(zi)
		if mv != nil {
			keep := zi[:0]
			for _, i := range zi {
				if mv.allowed(i) {
					keep = append(keep, i)
				}
			}
			zi = keep
		}
	}
	zx := make([]T, len(zi))
	for k := range zx {
		zx[k] = s
	}

	// The scalar fills every admitted region position, so within the
	// masked region there are no deletions; outside the region nothing
	// changes. Merge is therefore direct.
	widx, wx := w.materialized()
	ni := make([]int, 0, len(widx)+len(zi))
	nx := make([]T, 0, len(widx)+len(zi))
	sc, k := 0, 0
	for sc < len(widx) || k < len(zi) {
		switch {
		case k >= len(zi) || (sc < len(widx) && widx[sc] < zi[k]):
			// Untouched existing entry; Replace deletes entries outside
			// the admitted set only if they fall inside the region.
			drop := false
			if d.Replace {
				if idx == nil {
					drop = mv != nil && !mv.allowed(widx[sc])
				} else {
					// in-region check via sorted zi is insufficient
					// (entry may be region-but-not-admitted); accept the
					// conservative interpretation: only admitted
					// positions are rewritten.
					drop = false
				}
			}
			if !drop {
				ni = append(ni, widx[sc])
				nx = append(nx, wx[sc])
			}
			sc++
		case sc >= len(widx) || zi[k] < widx[sc]:
			ni = append(ni, zi[k])
			nx = append(nx, zx[k])
			k++
		default:
			v := zx[k]
			if accum != nil {
				v = accum(wx[sc], zx[k])
			}
			ni = append(ni, widx[sc])
			nx = append(nx, v)
			sc++
			k++
		}
	}
	w.idx, w.x = ni, nx
	return nil
}

// writeVectorRegion applies the write rule restricted to a region:
// positions outside the region always keep their previous value.
func writeVectorRegion[T, M any](w *Vector[T], mask *Vector[M], accum BinaryOp[T, T, T], zidx []int, zx []T, inRegion func(int) bool, d descValues) error {
	if mask != nil && mask.n != w.n {
		return opErrorf("assign", ErrDimensionMismatch, "mask is %d, w is %d", mask.n, w.n)
	}
	mv := newMaskVec(mask, d)
	widx, wx := w.materialized()
	allowed := mv.cursor()

	ni := make([]int, 0, len(zidx)+len(widx))
	nx := make([]T, 0, len(zidx)+len(widx))
	s, k := 0, 0
	for s < len(widx) || k < len(zidx) {
		haveW := s < len(widx)
		haveZ := k < len(zidx)
		switch {
		case haveW && (!haveZ || widx[s] < zidx[k]):
			i := widx[s]
			keep := true
			if inRegion(i) && allowed(i) {
				keep = accum != nil // admitted, z missing: delete unless accumulating
			} else if inRegion(i) && d.Replace {
				keep = false
			}
			if keep {
				ni = append(ni, i)
				nx = append(nx, wx[s])
			}
			s++
		case haveZ && (!haveW || zidx[k] < widx[s]):
			i := zidx[k]
			if allowed(i) {
				ni = append(ni, i)
				nx = append(nx, zx[k])
			}
			k++
		default:
			i := widx[s]
			if allowed(i) {
				v := zx[k]
				if accum != nil {
					v = accum(wx[s], zx[k])
				}
				ni = append(ni, i)
				nx = append(nx, v)
			} else if !d.Replace || !inRegion(i) {
				ni = append(ni, i)
				nx = append(nx, wx[s])
			}
			s++
			k++
		}
	}
	w.idx, w.x = ni, nx
	return nil
}

// AssignMatrix computes C(I,J)⟨M⟩ ⊙= A, with nil index lists meaning all
// rows/columns. Positions outside I×J are untouched.
func AssignMatrix[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], a *Matrix[T], rows, cols []int, desc *Descriptor) error {
	if c == nil || a == nil {
		return opError("assign", ErrUninitialized)
	}
	if err := checkIndices("assign", rows, c.nr); err != nil {
		return err
	}
	if err := checkIndices("assign", cols, c.nc); err != nil {
		return err
	}
	anr, anc := len(rows), len(cols)
	if rows == nil {
		anr = c.nr
	}
	if cols == nil {
		anc = c.nc
	}
	if a.nr != anr || a.nc != anc {
		return opErrorf("assign", ErrDimensionMismatch, "A is %d×%d, region is %d×%d", a.nr, a.nc, anr, anc)
	}
	d := desc.get()

	// Expand A into a C-shaped result z.
	ca := a.materializedCSR()
	is := make([]int, 0, ca.nvals())
	js := make([]int, 0, ca.nvals())
	xs := make([]T, 0, ca.nvals())
	for k := 0; k < ca.nvecs(); k++ {
		srcRow := ca.majorOf(k)
		dstRow := srcRow
		if rows != nil {
			dstRow = rows[srcRow]
		}
		ci, cx := ca.vec(k)
		for t := range ci {
			dstCol := ci[t]
			if cols != nil {
				dstCol = cols[ci[t]]
			}
			is = append(is, dstRow)
			js = append(js, dstCol)
			xs = append(xs, cx[t])
		}
	}
	// Duplicate targets (duplicate indices in I or J) resolve to the last
	// written value, matching SuiteSparse behaviour.
	z, err := assembleCS(c.nr, c.nc, is, js, xs, nil)
	if err != nil {
		return err
	}

	rowRegion := regionSet(rows, c.nr)
	colRegion := regionSet(cols, c.nc)
	return writeMatrixRegion(c, mask, accum, z, rowRegion, colRegion, d)
}

// AssignMatrixScalar computes C(I,J)⟨M⟩ ⊙= s over every admitted region
// position.
func AssignMatrixScalar[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], s T, rows, cols []int, desc *Descriptor) error {
	if c == nil {
		return opError("assign", ErrUninitialized)
	}
	if err := checkIndices("assign", rows, c.nr); err != nil {
		return err
	}
	if err := checkIndices("assign", cols, c.nc); err != nil {
		return err
	}
	d := desc.get()
	mm := newMaskMat(mask, d)

	// Fast path: whole-matrix scalar assign through a positive mask — the
	// levels⟨frontier⟩ = depth step of the multi-source BFS — writes
	// exactly the mask's admitted pattern; the general write rule then
	// applies mask/accum/replace semantics.
	if rows == nil && cols == nil && mm != nil && !mm.comp {
		is := make([]int, 0, 256)
		js := make([]int, 0, 256)
		xs := make([]T, 0, 256)
		mm.iterate(func(i, j int, admit bool) {
			if admit {
				is = append(is, i)
				js = append(js, j)
				xs = append(xs, s)
			}
		})
		z, err := assembleCS(c.nr, c.nc, is, js, xs, nil)
		if err != nil {
			return err
		}
		return writeMatrixResult(c, mask, accum, z, d)
	}

	rset := rows
	if rset == nil {
		rset = make([]int, c.nr)
		for i := range rset {
			rset[i] = i
		}
	} else {
		rset = sortDedupIndices(append([]int(nil), rset...))
	}
	cset := cols
	if cset == nil {
		cset = make([]int, c.nc)
		for j := range cset {
			cset[j] = j
		}
	} else {
		cset = sortDedupIndices(append([]int(nil), cset...))
	}

	is := make([]int, 0, len(rset)*len(cset))
	js := make([]int, 0, len(rset)*len(cset))
	xs := make([]T, 0, len(rset)*len(cset))
	for _, i := range rset {
		var rm *maskVec
		if mm != nil {
			rm = mm.rowMask(i)
		}
		for _, j := range cset {
			if rm == nil || rm.allowed(j) {
				is = append(is, i)
				js = append(js, j)
				xs = append(xs, s)
			}
		}
	}
	z, err := assembleCS(c.nr, c.nc, is, js, xs, nil)
	if err != nil {
		return err
	}
	// As with the vector scalar assign, the scalar fills every admitted
	// region position; the mask has already been applied to z.
	return writeMatrixRegion[T, bool](c, nil, accum, z, regionSet(rows, c.nr), regionSet(cols, c.nc), d)
}

// regionSet returns a membership test for an index list (nil = everything).
func regionSet(idx []int, n int) func(int) bool {
	if idx == nil {
		return func(int) bool { return true }
	}
	set := make(map[int]struct{}, len(idx))
	for _, i := range idx {
		set[i] = struct{}{}
	}
	return func(i int) bool {
		_, ok := set[i]
		return ok
	}
}

// writeMatrixRegion is writeMatrixResult restricted to a row×column
// region: positions outside it always keep their previous value.
func writeMatrixRegion[T, M any](c *Matrix[T], mask *Matrix[M], accum BinaryOp[T, T, T], z *cs[T], rowIn, colIn func(int) bool, d descValues) error {
	if mask != nil && (mask.nr != c.nr || mask.nc != c.nc) {
		return opErrorf("assign", ErrDimensionMismatch, "mask is %d×%d, C is %d×%d", mask.nr, mask.nc, c.nr, c.nc)
	}
	mm := newMaskMat(mask, d)
	old := c.materializedCSR()

	ni := make([]int, 0, old.nvals()+z.nvals())
	nx := make([]T, 0, old.nvals()+z.nvals())
	np := make([]int, 1, c.nr+2)
	var nh []int
	hyper := old.h != nil && z.h != nil
	if hyper {
		np = np[:1]
	}

	emit := func(row int, oi []int, ox []T, zi []int, zx []T) {
		inRow := rowIn(row)
		var allowed func(int) bool
		if mm == nil {
			allowed = func(int) bool { return true }
		} else {
			allowed = mm.rowMask(row).cursor()
		}
		s, k := 0, 0
		for s < len(oi) || k < len(zi) {
			haveW := s < len(oi)
			haveZ := k < len(zi)
			switch {
			case haveW && (!haveZ || oi[s] < zi[k]):
				j := oi[s]
				keep := true
				if inRow && colIn(j) {
					if allowed(j) {
						keep = accum != nil
					} else if d.Replace {
						keep = false
					}
				}
				if keep {
					ni = append(ni, j)
					nx = append(nx, ox[s])
				}
				s++
			case haveZ && (!haveW || zi[k] < oi[s]):
				j := zi[k]
				if allowed(j) {
					ni = append(ni, j)
					nx = append(nx, zx[k])
				}
				k++
			default:
				j := oi[s]
				if allowed(j) {
					v := zx[k]
					if accum != nil {
						v = accum(ox[s], zx[k])
					}
					ni = append(ni, j)
					nx = append(nx, v)
				} else if !d.Replace || !(inRow && colIn(j)) {
					ni = append(ni, j)
					nx = append(nx, ox[s])
				}
				s++
				k++
			}
		}
	}

	ok, zk := 0, 0
	for ok < old.nvecs() || zk < z.nvecs() {
		var row int
		switch {
		case ok >= old.nvecs():
			row = z.majorOf(zk)
		case zk >= z.nvecs():
			row = old.majorOf(ok)
		default:
			row = min(old.majorOf(ok), z.majorOf(zk))
		}
		var oi, zi []int
		var ox, zx []T
		if ok < old.nvecs() && old.majorOf(ok) == row {
			oi, ox = old.vec(ok)
			ok++
		}
		if zk < z.nvecs() && z.majorOf(zk) == row {
			zi, zx = z.vec(zk)
			zk++
		}
		if !hyper {
			for len(np)-1 < row {
				np = append(np, len(ni))
			}
		}
		before := len(ni)
		emit(row, oi, ox, zi, zx)
		if hyper {
			if len(ni) > before {
				nh = append(nh, row)
				np = append(np, len(ni))
			}
		} else {
			np = append(np, len(ni))
		}
	}
	if !hyper {
		for len(np)-1 < c.nr {
			np = append(np, len(ni))
		}
	}
	c.csr = &cs[T]{nmajor: c.nr, nminor: c.nc, p: np, h: nh, i: ni, x: nx}
	c.csc = nil
	c.maybeConvertFormat()
	return nil
}
