package grb_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"runtime"
	"testing"

	"lagraph/internal/grb"
)

// allocBytes reads the cumulative heap allocation counter.
func allocBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}

// hostileWire mirrors the package's matrixWire layout so the fuzzer can
// seed structurally-valid gob streams with lying contents. gob matches
// types by field names, so this encodes exactly what the decoder reads.
type hostileWire struct {
	Version      int
	NRows, NCols int
	Format       int
	Hyper        bool
	P, H, I      []int
	X            []int64
}

func gobBytes(t testing.TB, w hostileWire) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDeserializeMatrix is the corruption hunter for the wire decoder:
// arbitrary bytes must never panic, never allocate anywhere near a
// declared-but-absent size (the decoder is alloc-bounded against lying
// headers), and every rejection must wrap ErrCorrupt. Accepted inputs
// must behave like real matrices: consistent shape, and a serialize →
// deserialize round trip that reproduces the same serialized bytes.
func FuzzDeserializeMatrix(f *testing.F) {
	// Seeds: real serializations, sliced and lying variants.
	a, err := grb.NewMatrix[int64](3, 4)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range [][3]int{{0, 1, 7}, {1, 3, -2}, {2, 0, 5}} {
		if err := a.SetElement(e[0], e[1], int64(e[2])); err != nil {
			f.Fatal(err)
		}
	}
	var valid bytes.Buffer
	if err := grb.SerializeMatrix(&valid, a); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte("not gob"))
	f.Add([]byte{})
	// Declared-huge dimensions with nothing behind them.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 1 << 50, NCols: 1 << 50}))
	// Pointer array shorter than NRows+1.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 4, NCols: 4, P: []int{0, 1}, I: []int{0}, X: []int64{9}}))
	// Index/value length mismatch.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 2, NCols: 2, P: []int{0, 1, 2}, I: []int{0, 1}, X: []int64{5}}))
	// Out-of-range column index.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 2, NCols: 2, P: []int{0, 1, 1}, I: []int{9}, X: []int64{5}}))
	// Hyper flag with inconsistent H.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 8, NCols: 8, Hyper: true, P: []int{0, 1}, H: []int{3, 4}, I: []int{2}, X: []int64{1}}))
	// Future version.
	f.Add(gobBytes(f, hostileWire{Version: 99, NRows: 1, NCols: 1, P: []int{0, 0}}))
	// Negative dimensions.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: -1, NCols: 4, P: []int{0}}))
	// Format-tagged seeds: one real serialization per storage format, so
	// the fuzzer mutates from every format's wire shape.
	for _, format := range []grb.Format{grb.FormatCSR, grb.FormatHyper, grb.FormatBitmap} {
		b := a.Dup()
		b.SetFormat(format)
		var buf bytes.Buffer
		if err := grb.SerializeMatrix(&buf, b); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Format outside the known enum.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 2, NCols: 2, Format: 99, P: []int{0, 0, 0}}))
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 2, NCols: 2, Format: -1, P: []int{0, 0, 0}}))
	// Hyper payload lying about a standard format: restoring the claimed
	// format would expand to an NRows+1 pointer array.
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 1 << 50, NCols: 4, Format: int(grb.FormatCSR), Hyper: true, P: []int{0}, H: []int{}}))
	f.Add(gobBytes(f, hostileWire{Version: 1, NRows: 1 << 50, NCols: 4, Format: int(grb.FormatBitmap), Hyper: true, P: []int{0}, H: []int{}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		before := allocBytes()
		m, err := grb.DeserializeMatrix[int64](bytes.NewReader(data))
		after := allocBytes()
		// A decode of a few KB of input must never balloon: the cap guards
		// both gob's internal growth and the decoder's own preallocation.
		if grew := after - before; grew > 512<<20 {
			t.Fatalf("decoding %d bytes allocated %d bytes", len(data), grew)
		}
		if err != nil {
			if !errors.Is(err, grb.ErrCorrupt) {
				t.Fatalf("rejection does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted: the matrix must be internally consistent and
		// re-serializable, and the re-serialized bytes must decode to the
		// same shape (round-trip stability).
		nr, nc, nv := m.Nrows(), m.Ncols(), m.Nvals()
		if nr < 0 || nc < 0 || nv < 0 || (nr > 0 && nc > 0 && nv > nr*nc) {
			t.Fatalf("accepted matrix has impossible shape %d×%d with %d values", nr, nc, nv)
		}
		var re bytes.Buffer
		if err := grb.SerializeMatrix(&re, m); err != nil {
			t.Fatalf("accepted matrix does not re-serialize: %v", err)
		}
		m2, err := grb.DeserializeMatrix[int64](bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized matrix rejected: %v", err)
		}
		if m2.Nrows() != nr || m2.Ncols() != nc || m2.Nvals() != nv {
			t.Fatal("round trip changed the matrix shape")
		}
		var re2 bytes.Buffer
		if err := grb.SerializeMatrix(&re2, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re.Bytes(), re2.Bytes()) {
			t.Fatal("serialization is not a fixed point after one round trip")
		}
	})
}

// FuzzDeserializeVector is the vector-side twin.
func FuzzDeserializeVector(f *testing.F) {
	v, err := grb.NewVector[float64](5)
	if err != nil {
		f.Fatal(err)
	}
	if err := v.SetElement(2, 1.5); err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := grb.SerializeVector(&valid, v); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte{})
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		before := allocBytes()
		w, err := grb.DeserializeVector[float64](bytes.NewReader(data))
		after := allocBytes()
		if grew := after - before; grew > 512<<20 {
			t.Fatalf("decoding %d bytes allocated %d bytes", len(data), grew)
		}
		if err != nil {
			if !errors.Is(err, grb.ErrCorrupt) {
				t.Fatalf("rejection does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if w.Size() < 0 || w.Nvals() < 0 || w.Nvals() > w.Size() {
			t.Fatalf("accepted vector has impossible shape: size %d, %d values", w.Size(), w.Nvals())
		}
	})
}
