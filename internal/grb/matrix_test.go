package grb

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix[int](-1, 3); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("want ErrInvalidValue, got %v", err)
	}
	if _, err := NewMatrix[int](3, -1); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("want ErrInvalidValue, got %v", err)
	}
	a, err := NewMatrix[int](0, 0)
	if err != nil || a.Nrows() != 0 || a.Ncols() != 0 {
		t.Fatalf("0x0 matrix should be valid: %v", err)
	}
}

func TestSetGetRemoveElement(t *testing.T) {
	a := MustMatrix[float64](5, 7)
	if err := a.SetElement(2, 3, 4.5); err != nil {
		t.Fatal(err)
	}
	if err := a.SetElement(5, 0, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("want ErrIndexOutOfBounds, got %v", err)
	}
	if err := a.SetElement(0, 7, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("want ErrIndexOutOfBounds, got %v", err)
	}
	v, err := a.GetElement(2, 3)
	if err != nil || v != 4.5 {
		t.Fatalf("got (%v,%v) want (4.5,nil)", v, err)
	}
	if _, err := a.GetElement(0, 0); !errors.Is(err, ErrNoValue) {
		t.Fatalf("want ErrNoValue, got %v", err)
	}
	// Overwrite keeps a single entry.
	_ = a.SetElement(2, 3, 9)
	if n := a.Nvals(); n != 1 {
		t.Fatalf("nvals=%d want 1", n)
	}
	v, _ = a.GetElement(2, 3)
	if v != 9 {
		t.Fatalf("overwrite: got %v want 9", v)
	}
	if err := a.RemoveElement(2, 3); err != nil {
		t.Fatal(err)
	}
	if n := a.Nvals(); n != 0 {
		t.Fatalf("after remove nvals=%d want 0", n)
	}
	// Removing a missing element is a no-op.
	if err := a.RemoveElement(1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPendingTuplesAndZombies(t *testing.T) {
	a := MustMatrix[int](100, 100)
	for k := 0; k < 50; k++ {
		_ = a.SetElement(k%10, k%7, k)
	}
	pend, zomb := a.Pending()
	if pend != 50 || zomb != 0 {
		t.Fatalf("pending=%d zombies=%d, want 50/0", pend, zomb)
	}
	a.Wait()
	pend, zomb = a.Pending()
	if pend != 0 || zomb != 0 {
		t.Fatalf("after wait pending=%d zombies=%d", pend, zomb)
	}
	// Zombies accumulate until the next materialization.
	_ = a.RemoveElement(0, 0)
	_, zomb = a.Pending()
	if zomb != 1 {
		t.Fatalf("zombies=%d want 1", zomb)
	}
	if _, err := a.GetElement(0, 0); !errors.Is(err, ErrNoValue) {
		t.Fatalf("zombie should read as missing, got %v", err)
	}
	// Resurrection: set after remove.
	_ = a.RemoveElement(1, 1)
	_ = a.SetElement(1, 1, 42)
	v, err := a.GetElement(1, 1)
	if err != nil || v != 42 {
		t.Fatalf("resurrected entry: got (%v,%v)", v, err)
	}
}

func TestSetElementMatchesBuild(t *testing.T) {
	// The pending-tuple mechanism makes e SetElement calls equivalent to
	// one Build of e tuples (§II-A).
	rng := rand.New(rand.NewSource(42))
	n := 200
	e := 2000
	is := make([]int, e)
	js := make([]int, e)
	xs := make([]int64, e)
	for k := range is {
		is[k] = rng.Intn(n)
		js[k] = rng.Intn(n)
		xs[k] = int64(k)
	}
	viaBuild := MustMatrix[int64](n, n)
	if err := viaBuild.Build(is, js, xs, Second[int64, int64]()); err != nil {
		t.Fatal(err)
	}
	viaSet := MustMatrix[int64](n, n)
	for k := range is {
		_ = viaSet.SetElement(is[k], js[k], xs[k])
	}
	bi, bj, bx := viaBuild.ExtractTuples()
	si, sj, sx := viaSet.ExtractTuples()
	if len(bi) != len(si) {
		t.Fatalf("nvals differ: build=%d set=%d", len(bi), len(si))
	}
	for k := range bi {
		if bi[k] != si[k] || bj[k] != sj[k] || bx[k] != sx[k] {
			t.Fatalf("entry %d differs: build=(%d,%d,%d) set=(%d,%d,%d)",
				k, bi[k], bj[k], bx[k], si[k], sj[k], sx[k])
		}
	}
}

func TestBuildErrors(t *testing.T) {
	a := MustMatrix[int](4, 4)
	if err := a.Build([]int{0}, []int{0, 1}, []int{1}, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("length mismatch: %v", err)
	}
	if err := a.Build([]int{9}, []int{0}, []int{1}, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("oob: %v", err)
	}
	if err := a.Build([]int{0, 0}, []int{0, 0}, []int{1, 2}, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("dup without op: %v", err)
	}
	if err := a.Build([]int{0, 0}, []int{0, 0}, []int{1, 2}, Plus[int]()); err != nil {
		t.Fatalf("dup with op: %v", err)
	}
	if v, _ := a.GetElement(0, 0); v != 3 {
		t.Fatalf("dup sum: got %d want 3", v)
	}
	// Build on a non-empty matrix fails.
	if err := a.Build([]int{1}, []int{1}, []int{1}, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("non-empty build: %v", err)
	}
}

func TestDupIsDeep(t *testing.T) {
	a := MustMatrix[int](3, 3)
	_ = a.SetElement(1, 1, 5)
	b := a.Dup()
	_ = a.SetElement(1, 1, 9)
	v, _ := b.GetElement(1, 1)
	if v != 5 {
		t.Fatalf("dup not deep: got %d", v)
	}
}

func TestImportExportRoundTrip(t *testing.T) {
	p := []int{0, 2, 2, 3}
	i := []int{0, 2, 1}
	x := []float64{1, 2, 3}
	a, err := ImportCSR(3, 3, p, i, x, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.Nvals() != 3 {
		t.Fatalf("nvals=%d", a.Nvals())
	}
	v, _ := a.GetElement(0, 2)
	if v != 2 {
		t.Fatalf("a(0,2)=%v", v)
	}
	nr, nc, p2, i2, x2 := a.ExportCSR()
	if nr != 3 || nc != 3 {
		t.Fatalf("dims %dx%d", nr, nc)
	}
	// Export empties the matrix.
	if a.Nvals() != 0 {
		t.Fatalf("export should empty the matrix, nvals=%d", a.Nvals())
	}
	// Re-import reconstructs perfectly (§IV).
	b, err := ImportCSR(nr, nc, p2, i2, x2, true)
	if err != nil {
		t.Fatal(err)
	}
	v, _ = b.GetElement(2, 1)
	if v != 3 {
		t.Fatalf("b(2,1)=%v", v)
	}
}

func TestImportValidation(t *testing.T) {
	if _, err := ImportCSR(2, 2, []int{0, 1}, []int{0}, []int{1}, false); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("short p: %v", err)
	}
	if _, err := ImportCSR(2, 2, []int{0, 1, 1}, []int{5}, []int{1}, false); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("oob index: %v", err)
	}
	if _, err := ImportCSR(2, 2, []int{0, 2, 2}, []int{1, 0}, []int{1, 2}, false); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("unsorted row: %v", err)
	}
}

func TestImportExportCSC(t *testing.T) {
	// 2x3 matrix: (0,0)=1, (1,0)=2, (1,2)=3 in CSC.
	p := []int{0, 2, 2, 3}
	i := []int{0, 1, 1}
	x := []int{1, 2, 3}
	a, err := ImportCSC(2, 3, p, i, x, false)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.GetElement(1, 2); v != 3 {
		t.Fatalf("a(1,2)=%v", v)
	}
	if v, _ := a.GetElement(0, 0); v != 1 {
		t.Fatalf("a(0,0)=%v", v)
	}
	nr, nc, p2, i2, x2 := a.ExportCSC()
	if nr != 2 || nc != 3 || len(i2) != 3 {
		t.Fatalf("export dims %dx%d nnz=%d", nr, nc, len(i2))
	}
	b, err := ImportCSC(nr, nc, p2, i2, x2, true)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := b.GetElement(1, 0); v != 2 {
		t.Fatalf("b(1,0)=%v", v)
	}
}

func TestHypersparseFormat(t *testing.T) {
	// A matrix with enormous dimensions: storage must be O(e), and a
	// standard CSR pointer array of n+1 = 2^40 entries would be absurd.
	n := 1 << 40
	a := MustMatrix[int](n, n)
	a.SetFormat(FormatHyper)
	for k := 0; k < 1000; k++ {
		_ = a.SetElement(k*(1<<28), (k*7919)%n, k)
	}
	if got := a.Nvals(); got != 1000 {
		t.Fatalf("nvals=%d", got)
	}
	if a.csr.h == nil {
		t.Fatal("expected hypersparse storage")
	}
	if len(a.csr.p) > 1001 {
		t.Fatalf("pointer array has %d entries; hypersparse should be O(e)", len(a.csr.p))
	}
	v, err := a.GetElement(2*(1<<28), (2*7919)%n)
	if err != nil || v != 2 {
		t.Fatalf("get: (%v,%v)", v, err)
	}
	// Transpose and reduce work without O(n) blowup.
	at := MustMatrix[int](n, n)
	at.SetFormat(FormatHyper)
	if err := Transpose[int, bool](at, nil, nil, a, nil); err != nil {
		t.Fatal(err)
	}
	if at.Nvals() != 1000 {
		t.Fatalf("transpose nvals=%d", at.Nvals())
	}
	sum, err := ReduceMatrixToScalar(PlusMonoid[int](), a)
	if err != nil || sum != 999*1000/2 {
		t.Fatalf("sum=%d err=%v", sum, err)
	}
}

func TestFormatAutoSwitch(t *testing.T) {
	// Sparse fill over a large dimension should select hypersparse
	// automatically; densifying should switch back.
	n := hyperThresholdDim * hyperRatio * 2
	a := MustMatrix[int](n, 4)
	for k := 0; k < 10; k++ {
		_ = a.SetElement(k*1000, k%4, k)
	}
	a.Wait()
	if a.csr.h == nil {
		t.Fatal("auto format should pick hypersparse for sparse fill")
	}
	small := MustMatrix[int](10, 10)
	_ = small.SetElement(1, 1, 1)
	small.Wait()
	if small.csr.h != nil {
		t.Fatal("small matrices should stay standard")
	}
}

func TestClearAndResizeBehaviour(t *testing.T) {
	a := MustMatrix[int](4, 4)
	_ = a.SetElement(1, 2, 3)
	a.Clear()
	if a.Nvals() != 0 {
		t.Fatal("clear should drop entries")
	}
	if a.Nrows() != 4 || a.Ncols() != 4 {
		t.Fatal("clear must keep dimensions")
	}
}

func TestExtractTuplesRowMajorOrder(t *testing.T) {
	a := MustMatrix[int](3, 3)
	_ = a.SetElement(2, 0, 1)
	_ = a.SetElement(0, 1, 2)
	_ = a.SetElement(0, 0, 3)
	is, js, _ := a.ExtractTuples()
	want := [][2]int{{0, 0}, {0, 1}, {2, 0}}
	for k := range want {
		if is[k] != want[k][0] || js[k] != want[k][1] {
			t.Fatalf("order: got (%d,%d) want %v", is[k], js[k], want[k])
		}
	}
}

// Property: Build(ExtractTuples(A)) == A for arbitrary tuple sets.
func TestQuickBuildExtractRoundTrip(t *testing.T) {
	f := func(coords []uint16, vals []int16) bool {
		n := 128
		m := len(coords)
		if len(vals) < m {
			m = len(vals)
		}
		is := make([]int, m)
		js := make([]int, m)
		xs := make([]int64, m)
		for k := 0; k < m; k++ {
			is[k] = int(coords[k]) % n
			js[k] = (int(coords[k]) / n) % n
			xs[k] = int64(vals[k])
		}
		a := MustMatrix[int64](n, n)
		if err := a.Build(is, js, xs, Second[int64, int64]()); err != nil {
			return false
		}
		i2, j2, x2 := a.ExtractTuples()
		b := MustMatrix[int64](n, n)
		if err := b.Build(i2, j2, x2, nil); err != nil {
			return false
		}
		i3, j3, x3 := b.ExtractTuples()
		if len(i2) != len(i3) {
			return false
		}
		for k := range i2 {
			if i2[k] != i3[k] || j2[k] != j3[k] || x2[k] != x3[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution.
func TestQuickTransposeInvolution(t *testing.T) {
	f := func(coords []uint16, vals []int16, hyper bool) bool {
		nr, nc := 64, 96
		m := min(len(coords), len(vals))
		a := MustMatrix[int64](nr, nc)
		if hyper {
			a.SetFormat(FormatHyper)
		}
		for k := 0; k < m; k++ {
			_ = a.SetElement(int(coords[k])%nr, (int(coords[k])/7)%nc, int64(vals[k]))
		}
		at := MustMatrix[int64](nc, nr)
		if err := Transpose[int64, bool](at, nil, nil, a, nil); err != nil {
			return false
		}
		att := MustMatrix[int64](nr, nc)
		if err := Transpose[int64, bool](att, nil, nil, at, nil); err != nil {
			return false
		}
		ai, aj, ax := a.ExtractTuples()
		bi, bj, bx := att.ExtractTuples()
		if len(ai) != len(bi) {
			return false
		}
		for k := range ai {
			if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved set/remove/get behaves like a map (the
// pending-tuple + zombie machinery has no observable effect).
func TestQuickMatrixVsMap(t *testing.T) {
	f := func(ops []int32) bool {
		nr, nc := 24, 17
		a := MustMatrix[int64](nr, nc)
		model := map[[2]int]int64{}
		for _, op := range ops {
			v := int(op)
			if v < 0 {
				v = -v
			}
			i, j := v%nr, (v/nr)%nc
			switch op % 4 {
			case 0:
				_ = a.RemoveElement(i, j)
				delete(model, [2]int{i, j})
			case 1, -1:
				got, err := a.GetElement(i, j)
				want, ok := model[[2]int{i, j}]
				if ok != (err == nil) || (ok && got != want) {
					return false
				}
			default:
				_ = a.SetElement(i, j, int64(op))
				model[[2]int{i, j}] = int64(op)
			}
		}
		if a.Nvals() != len(model) {
			return false
		}
		for pos, want := range model {
			got, err := a.GetElement(pos[0], pos[1])
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dup and serialization agree with the original under random
// mutation histories.
func TestQuickMergeElementAssociativity(t *testing.T) {
	f := func(vals []int16) bool {
		n := 64
		v := MustVector[int64](n)
		model := map[int]int64{}
		for k, x := range vals {
			i := k % n
			_ = v.MergeElement(i, int64(x), MinOp[int64]())
			if old, ok := model[i]; !ok || int64(x) < old {
				model[i] = int64(x)
			}
		}
		if v.Nvals() != len(model) {
			return false
		}
		for i, want := range model {
			got, err := v.GetElement(i)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CSR and CSC views describe the same matrix.
func TestQuickCSRCSCConsistency(t *testing.T) {
	f := func(coords []uint16, vals []int16) bool {
		nr, nc := 50, 70
		m := min(len(coords), len(vals))
		a := MustMatrix[int64](nr, nc)
		for k := 0; k < m; k++ {
			_ = a.SetElement(int(coords[k])%nr, (int(coords[k])/3)%nc, int64(vals[k]))
		}
		csr := a.materializedCSR()
		csc := a.materializedCSC()
		if csr.nvals() != csc.nvals() {
			return false
		}
		for k := 0; k < csc.nvecs(); k++ {
			col := csc.majorOf(k)
			ci, cx := csc.vec(k)
			for u := range ci {
				v, err := a.GetElement(ci[u], col)
				if err != nil || v != cx[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
