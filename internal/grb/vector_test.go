package grb

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	v := MustVector[float64](10)
	if v.Size() != 10 {
		t.Fatalf("size=%d", v.Size())
	}
	if err := v.SetElement(3, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := v.SetElement(10, 1); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("oob: %v", err)
	}
	x, err := v.GetElement(3)
	if err != nil || x != 1.5 {
		t.Fatalf("get: (%v,%v)", x, err)
	}
	if _, err := v.GetElement(4); !errors.Is(err, ErrNoValue) {
		t.Fatalf("missing: %v", err)
	}
	_ = v.SetElement(3, 2.5)
	if v.Nvals() != 1 {
		t.Fatalf("nvals=%d", v.Nvals())
	}
	_ = v.RemoveElement(3)
	if v.Nvals() != 0 {
		t.Fatalf("after remove nvals=%d", v.Nvals())
	}
}

func TestVectorPendingAndZombies(t *testing.T) {
	v := MustVector[int](100)
	for k := 0; k < 20; k++ {
		_ = v.SetElement(k*3, k)
	}
	pend, _ := v.Pending()
	if pend != 20 {
		t.Fatalf("pending=%d", pend)
	}
	if v.Nvals() != 20 {
		t.Fatalf("nvals=%d", v.Nvals())
	}
	_ = v.RemoveElement(0)
	_ = v.RemoveElement(3)
	_, zomb := v.Pending()
	if zomb != 2 {
		t.Fatalf("zombies=%d", zomb)
	}
	if v.Nvals() != 18 {
		t.Fatalf("after removals nvals=%d", v.Nvals())
	}
	// Resurrect.
	_ = v.RemoveElement(6)
	_ = v.SetElement(6, 99)
	if x, _ := v.GetElement(6); x != 99 {
		t.Fatalf("resurrect: %v", x)
	}
}

func TestVectorBuildAndDuplicates(t *testing.T) {
	v := MustVector[int](10)
	if err := v.Build([]int{1, 1, 5}, []int{2, 3, 4}, Plus[int]()); err != nil {
		t.Fatal(err)
	}
	if x, _ := v.GetElement(1); x != 5 {
		t.Fatalf("dup sum: %d", x)
	}
	w := MustVector[int](10)
	if err := w.Build([]int{1, 1}, []int{2, 3}, nil); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("dup without op: %v", err)
	}
	u := MustVector[int](10)
	if err := u.Build([]int{12}, []int{1}, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("oob: %v", err)
	}
}

func TestVectorImportExport(t *testing.T) {
	v, err := ImportSparse(10, []int{2, 5, 7}, []int{20, 50, 70}, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.Nvals() != 3 {
		t.Fatalf("nvals=%d", v.Nvals())
	}
	n, idx, x := v.ExportSparse()
	if n != 10 || len(idx) != 3 || v.Nvals() != 0 {
		t.Fatal("export should empty the vector")
	}
	w, err := ImportSparse(n, idx, x, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := w.GetElement(5); got != 50 {
		t.Fatalf("roundtrip: %d", got)
	}
	// Unsorted import rejected.
	if _, err := ImportSparse(10, []int{5, 2}, []int{1, 2}, false); !errors.Is(err, ErrInvalidValue) {
		t.Fatalf("unsorted: %v", err)
	}
}

func TestDenseVector(t *testing.T) {
	v := DenseVector([]float64{1, 2, 3})
	if v.Size() != 3 || v.Nvals() != 3 {
		t.Fatal("dense vector shape")
	}
	if x, _ := v.GetElement(2); x != 3 {
		t.Fatalf("x=%v", x)
	}
}

// Property: a sequence of SetElement calls equals one Build (last wins).
func TestQuickVectorSetEqualsBuild(t *testing.T) {
	f := func(idx []uint8, vals []int16) bool {
		n := 256
		m := min(len(idx), len(vals))
		a := MustVector[int64](n)
		for k := 0; k < m; k++ {
			_ = a.SetElement(int(idx[k]), int64(vals[k]))
		}
		b := MustVector[int64](n)
		is := make([]int, m)
		xs := make([]int64, m)
		for k := 0; k < m; k++ {
			is[k] = int(idx[k])
			xs[k] = int64(vals[k])
		}
		if err := b.Build(is, xs, Second[int64, int64]()); err != nil {
			return false
		}
		ai, ax := a.ExtractTuples()
		bi, bx := b.ExtractTuples()
		if len(ai) != len(bi) {
			return false
		}
		for k := range ai {
			if ai[k] != bi[k] || ax[k] != bx[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved removals and insertions behave like a map.
func TestQuickVectorVsMap(t *testing.T) {
	f := func(ops []int16) bool {
		n := 64
		v := MustVector[int64](n)
		model := map[int]int64{}
		for _, op := range ops {
			i := int(op) % n
			if i < 0 {
				i = -i
			}
			if op%3 == 0 {
				_ = v.RemoveElement(i)
				delete(model, i)
			} else {
				_ = v.SetElement(i, int64(op))
				model[i] = int64(op)
			}
		}
		if v.Nvals() != len(model) {
			return false
		}
		for i, want := range model {
			got, err := v.GetElement(i)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
