package grb

import (
	"errors"
	"testing"
)

func TestApplyBind(t *testing.T) {
	u := MustVector[int64](5)
	_ = u.SetElement(1, 10)
	_ = u.SetElement(3, 20)

	w := MustVector[int64](5)
	if err := ApplyVectorBind1st[int64, int64, int64, bool](w, nil, nil, Minus[int64](), 100, u, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := w.GetElement(1); x != 90 {
		t.Fatalf("bind1st: %d", x)
	}
	if err := ApplyVectorBind2nd[int64, int64, int64, bool](w, nil, nil, Minus[int64](), u, 3, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := w.GetElement(3); x != 17 {
		t.Fatalf("bind2nd: %d", x)
	}

	a := MustMatrix[float64](3, 3)
	_ = a.SetElement(0, 2, 4)
	c := MustMatrix[float64](3, 3)
	if err := ApplyMatrixBind1st[float64, float64, float64, bool](c, nil, nil, Times[float64](), 0.5, a, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := c.GetElement(0, 2); x != 2 {
		t.Fatalf("matrix bind1st: %v", x)
	}
	if err := ApplyMatrixBind2nd[float64, float64, bool, bool](
		MustMatrix[bool](3, 3), nil, nil, Gt[float64](), a, 3.0, nil); err != nil {
		t.Fatal(err)
	}
	// Nil op rejected.
	if err := ApplyVectorBind1st[int64, int64, int64, bool](w, nil, nil, nil, 1, u, nil); !errors.Is(err, ErrUninitialized) {
		t.Fatal("nil op must be rejected")
	}
}

func TestDiagMatrixAndExtract(t *testing.T) {
	v := MustVector[int64](3)
	_ = v.SetElement(0, 5)
	_ = v.SetElement(2, 7)

	// Main diagonal.
	d0, err := DiagMatrix(v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Nrows() != 3 || d0.Nvals() != 2 {
		t.Fatalf("diag0 shape %dx%d nvals=%d", d0.Nrows(), d0.Ncols(), d0.Nvals())
	}
	if x, _ := d0.GetElement(2, 2); x != 7 {
		t.Fatal("diag0 value")
	}

	// Superdiagonal k=1: dimension 4, entry (0,1) and (2,3).
	d1, err := DiagMatrix(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Nrows() != 4 {
		t.Fatalf("diag1 dim %d", d1.Nrows())
	}
	if x, _ := d1.GetElement(0, 1); x != 5 {
		t.Fatal("diag1 entry")
	}

	// Subdiagonal k=-2: entry (2,0) and (4,2).
	d2, err := DiagMatrix(v, -2)
	if err != nil {
		t.Fatal(err)
	}
	if x, _ := d2.GetElement(4, 2); x != 7 {
		t.Fatal("diag-2 entry")
	}

	// Round trip via MatrixDiag.
	back, err := MatrixDiag(d1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != 3 || back.Nvals() != 2 {
		t.Fatalf("extract diag: size=%d nvals=%d", back.Size(), back.Nvals())
	}
	if x, _ := back.GetElement(2); x != 7 {
		t.Fatal("extract diag value")
	}

	// Extracting an empty diagonal.
	a := MustMatrix[int64](3, 3)
	_ = a.SetElement(1, 0, 9)
	sub, err := MatrixDiag(a, -1)
	if err != nil {
		t.Fatal(err)
	}
	if x, _ := sub.GetElement(0); x != 9 {
		t.Fatalf("subdiag: %d", x)
	}
	if sub.Size() != 2 {
		t.Fatalf("subdiag len %d", sub.Size())
	}
}

func TestMatrixResize(t *testing.T) {
	a := MustMatrix[int](4, 4)
	_ = a.SetElement(0, 0, 1)
	_ = a.SetElement(3, 3, 2)
	_ = a.SetElement(1, 2, 3)
	if err := a.Resize(2, 3); err != nil {
		t.Fatal(err)
	}
	if a.Nrows() != 2 || a.Ncols() != 3 {
		t.Fatal("dims")
	}
	if a.Nvals() != 2 {
		t.Fatalf("nvals=%d", a.Nvals()) // (3,3) dropped
	}
	if x, _ := a.GetElement(1, 2); x != 3 {
		t.Fatal("surviving entry")
	}
	// Growing keeps everything.
	if err := a.Resize(10, 10); err != nil {
		t.Fatal(err)
	}
	if a.Nvals() != 2 {
		t.Fatal("grow should keep entries")
	}
	if err := a.SetElement(9, 9, 4); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(a.Resize(-1, 2), ErrInvalidValue) {
		t.Fatal("negative resize")
	}
}

func TestVectorResize(t *testing.T) {
	v := MustVector[int](6)
	_ = v.SetElement(1, 10)
	_ = v.SetElement(5, 50)
	if err := v.Resize(3); err != nil {
		t.Fatal(err)
	}
	if v.Size() != 3 || v.Nvals() != 1 {
		t.Fatalf("size=%d nvals=%d", v.Size(), v.Nvals())
	}
	if err := v.Resize(8); err != nil {
		t.Fatal(err)
	}
	if err := v.SetElement(7, 70); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(v.Resize(-1), ErrInvalidValue) {
		t.Fatal("negative resize")
	}
}
