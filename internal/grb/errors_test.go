package grb

import (
	"errors"
	"testing"
)

// Error-path coverage: the API-error class of the C specification —
// uninitialized objects and dimension mismatches must be reported, never
// panic.

func TestOpNilArguments(t *testing.T) {
	a := MustMatrix[int64](3, 3)
	v := MustVector[int64](3)
	s := PlusTimes[int64]()

	if err := MxM[int64, int64, int64, bool](nil, nil, nil, s, a, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("mxm nil output")
	}
	if err := MxM[int64, int64, int64, bool](a, nil, nil, s, nil, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("mxm nil input")
	}
	if err := MxM[int64, int64, int64, bool](a, nil, nil, Semiring[int64, int64, int64]{}, a, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("mxm empty semiring")
	}
	if err := VxM[int64, int64, int64, bool](nil, nil, nil, s, v, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("vxm nil output")
	}
	if err := MxV[int64, int64, int64, bool](v, nil, nil, s, nil, v, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("mxv nil matrix")
	}
	if err := EWiseAddMatrix[int64, bool](a, nil, nil, nil, a, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("ewiseadd nil op")
	}
	if err := EWiseMultVector[int64, int64, int64, bool](v, nil, nil, nil, v, v, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("ewisemult nil op")
	}
	if err := ApplyMatrix[int64, int64, bool](a, nil, nil, nil, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("apply nil op")
	}
	if err := SelectMatrix[int64, bool](a, nil, nil, nil, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("select nil op")
	}
	if err := ReduceMatrixToVector[int64, bool](v, nil, nil, Monoid[int64]{}, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("reduce empty monoid")
	}
	if _, err := ReduceMatrixToScalar(PlusMonoid[int64](), (*Matrix[int64])(nil)); !errors.Is(err, ErrUninitialized) {
		t.Error("reduce nil matrix")
	}
	if err := Transpose[int64, bool](nil, nil, nil, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("transpose nil output")
	}
	if err := Kronecker[int64, int64, int64, bool](a, nil, nil, nil, a, a, nil); !errors.Is(err, ErrUninitialized) {
		t.Error("kronecker nil op")
	}
	if _, err := DiagMatrix[int64](nil, 0); !errors.Is(err, ErrUninitialized) {
		t.Error("diag nil vector")
	}
	if _, err := MatrixDiag[int64](nil, 0); !errors.Is(err, ErrUninitialized) {
		t.Error("matrixdiag nil")
	}
}

func TestOpDimensionMismatches(t *testing.T) {
	a34 := MustMatrix[int64](3, 4)
	a45 := MustMatrix[int64](4, 5)
	a33 := MustMatrix[int64](3, 3)
	c35 := MustMatrix[int64](3, 5)
	v3 := MustVector[int64](3)
	v4 := MustVector[int64](4)
	v5 := MustVector[int64](5)
	s := PlusTimes[int64]()

	// mxm inner dimension.
	if err := MxM[int64, int64, int64, bool](c35, nil, nil, s, a34, a33, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("mxm inner dim")
	}
	// mxm output shape.
	if err := MxM[int64, int64, int64, bool](a33, nil, nil, s, a34, a45, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("mxm output dim")
	}
	// mxm mask shape.
	if err := MxM(c35, a33, nil, s, a34, a45, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("mxm mask dim")
	}
	// Transposed shapes flip requirements.
	if err := MxM[int64, int64, int64, bool](c35, nil, nil, s, a34, a45, DescT0); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("mxm tranA dim should mismatch")
	}
	// vxm / mxv.
	if err := VxM[int64, int64, int64, bool](v5, nil, nil, s, v4, a34, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("vxm input dim")
	}
	if err := VxM[int64, int64, int64, bool](v5, nil, nil, s, v3, a34, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("vxm output dim")
	}
	if err := MxV[int64, int64, int64, bool](v3, nil, nil, s, a34, v3, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("mxv input dim")
	}
	if err := VxM(v4, v3, nil, s, v3, a34, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("vxm mask dim")
	}
	// eWise.
	if err := EWiseAddMatrix[int64, bool](a34, nil, nil, Plus[int64](), a34, a45, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("ewise dims")
	}
	if err := EWiseAddVector[int64, bool](v3, nil, nil, Plus[int64](), v3, v4, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("ewise vec dims")
	}
	// apply/select output shape.
	if err := ApplyMatrix[int64, int64, bool](a33, nil, nil, Identity[int64](), a34, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("apply dims")
	}
	if err := SelectMatrix[int64, bool](a33, nil, nil, Tril[int64](0), a34, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("select dims")
	}
	// reduce.
	if err := ReduceMatrixToVector[int64, bool](v4, nil, nil, PlusMonoid[int64](), a34, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("reduce dims (rows)")
	}
	if err := ReduceMatrixToVector[int64, bool](v3, nil, nil, PlusMonoid[int64](), a34, DescT0); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("reduce dims (cols)")
	}
	// transpose.
	if err := Transpose[int64, bool](a34, nil, nil, a34, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("transpose dims")
	}
	// extract/assign.
	if err := ExtractMatrix[int64, bool](a33, nil, nil, a34, []int{0, 1}, []int{0}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("extract dims")
	}
	if err := ExtractMatrix[int64, bool](a33, nil, nil, a34, []int{9}, nil, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Error("extract oob")
	}
	if err := AssignMatrix[int64, bool](a34, nil, nil, a33, []int{0, 1}, []int{0, 1, 2}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("assign dims")
	}
	if err := AssignMatrix[int64, bool](a34, nil, nil, a33, []int{0, 1, 9}, []int{0, 1, 2}, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Error("assign oob")
	}
	if err := ExtractVector[int64, bool](v3, nil, nil, v4, []int{0, 1}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("vextract dims")
	}
	if err := AssignVector[int64, bool](v4, nil, nil, v3, []int{0, 1}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("vassign dims")
	}
	if err := AssignVectorScalar[int64, bool](v4, nil, nil, 7, []int{0, 9}, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Error("vassign scalar oob")
	}
	// kronecker output shape.
	if err := Kronecker[int64, int64, int64, bool](a34, nil, nil, Times[int64](), a33, a33, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("kronecker dims")
	}
	// column extract.
	if err := ExtractMatrixCol[int64, bool](v3, nil, nil, a34, nil, 7, nil); !errors.Is(err, ErrIndexOutOfBounds) {
		t.Error("col extract oob")
	}
}

func TestKroneckerSmall(t *testing.T) {
	// [1 2; 0 3] ⊗ [0 1; 1 0]
	a := MustMatrix[int64](2, 2)
	_ = a.SetElement(0, 0, 1)
	_ = a.SetElement(0, 1, 2)
	_ = a.SetElement(1, 1, 3)
	b := MustMatrix[int64](2, 2)
	_ = b.SetElement(0, 1, 1)
	_ = b.SetElement(1, 0, 1)
	c := MustMatrix[int64](4, 4)
	if err := Kronecker[int64, int64, int64, bool](c, nil, nil, Times[int64](), a, b, nil); err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]int64{
		{0, 1}: 1, {1, 0}: 1, // block (0,0) = 1·B
		{0, 3}: 2, {1, 2}: 2, // block (0,1) = 2·B
		{2, 3}: 3, {3, 2}: 3, // block (1,1) = 3·B
	}
	if c.Nvals() != len(want) {
		t.Fatalf("nvals=%d want %d", c.Nvals(), len(want))
	}
	for pos, x := range want {
		got, err := c.GetElement(pos[0], pos[1])
		if err != nil || got != x {
			t.Fatalf("c(%d,%d)=%v want %v (err %v)", pos[0], pos[1], got, x, err)
		}
	}
}

func TestKroneckerBuildsRMATLikeGraph(t *testing.T) {
	// Kronecker powers of a seed matrix generate the scale-free family
	// RMAT approximates; the k-th power has nnz(seed)^k entries.
	seed := MustMatrix[float64](2, 2)
	_ = seed.SetElement(0, 0, 0.57)
	_ = seed.SetElement(0, 1, 0.19)
	_ = seed.SetElement(1, 0, 0.19)
	g := seed.Dup()
	for k := 1; k < 4; k++ {
		next := MustMatrix[float64](g.Nrows()*2, g.Ncols()*2)
		if err := Kronecker[float64, float64, float64, bool](next, nil, nil, Times[float64](), g, seed, nil); err != nil {
			t.Fatal(err)
		}
		g = next
	}
	if g.Nrows() != 16 {
		t.Fatalf("dim %d", g.Nrows())
	}
	if g.Nvals() != 81 { // 3^4
		t.Fatalf("nvals=%d want 81", g.Nvals())
	}
}

func TestVectorMaskValueSemantics(t *testing.T) {
	// Value masks on vectors: stored false excludes under MaskValue.
	n := 6
	u := MustVector[int64](n)
	for i := 0; i < n; i++ {
		_ = u.SetElement(i, int64(i+1))
	}
	mask := MustVector[bool](n)
	_ = mask.SetElement(1, true)
	_ = mask.SetElement(2, false)
	_ = mask.SetElement(4, true)

	// Structural: entries 1,2,4 admitted.
	w := MustVector[int64](n)
	if err := ApplyVector(w, mask, nil, Identity[int64](), u, nil); err != nil {
		t.Fatal(err)
	}
	if w.Nvals() != 3 {
		t.Fatalf("structural nvals=%d", w.Nvals())
	}
	// Value: only 1,4.
	w2 := MustVector[int64](n)
	if err := ApplyVector(w2, mask, nil, Identity[int64](), u, &Descriptor{MaskValue: true}); err != nil {
		t.Fatal(err)
	}
	if w2.Nvals() != 2 {
		t.Fatalf("value nvals=%d", w2.Nvals())
	}
	if _, err := w2.GetElement(2); err == nil {
		t.Fatal("stored-false position must be excluded under value semantics")
	}
	// Complemented value mask admits 0,2,3,5.
	w3 := MustVector[int64](n)
	if err := ApplyVector(w3, mask, nil, Identity[int64](), u, &Descriptor{MaskValue: true, Comp: true}); err != nil {
		t.Fatal(err)
	}
	if w3.Nvals() != 4 {
		t.Fatalf("comp value nvals=%d", w3.Nvals())
	}
}

func TestAccumSemantics(t *testing.T) {
	// w already has entries; result z misses some of them. With accum,
	// untouched entries survive; without, they are deleted.
	n := 4
	w := MustVector[int64](n)
	_ = w.SetElement(0, 100)
	_ = w.SetElement(1, 100)
	u := MustVector[int64](n)
	_ = u.SetElement(1, 5)
	_ = u.SetElement(2, 5)

	noAcc := w.Dup()
	if err := ApplyVector[int64, int64, bool](noAcc, nil, nil, Identity[int64](), u, nil); err != nil {
		t.Fatal(err)
	}
	if noAcc.Nvals() != 2 {
		t.Fatalf("no-accum nvals=%d", noAcc.Nvals())
	}
	if _, err := noAcc.GetElement(0); err == nil {
		t.Fatal("w(0) must be deleted without accum")
	}

	acc := w.Dup()
	if err := ApplyVector(acc, (*Vector[bool])(nil), Plus[int64](), Identity[int64](), u, nil); err != nil {
		t.Fatal(err)
	}
	if x, _ := acc.GetElement(0); x != 100 {
		t.Fatal("w(0) must survive with accum")
	}
	if x, _ := acc.GetElement(1); x != 105 {
		t.Fatalf("accumulated: %d", x)
	}
	if x, _ := acc.GetElement(2); x != 5 {
		t.Fatalf("new entry: %d", x)
	}
}
