package grb

import (
	"errors"
	"math/rand"
	"testing"
)

func TestSetElementsMatchesSetElementLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, e := 150, 1200
	is := make([]int, e)
	js := make([]int, e)
	xs := make([]int64, e)
	for k := range is {
		is[k] = rng.Intn(n)
		js[k] = rng.Intn(n)
		xs[k] = int64(k)
	}
	viaLoop := MustMatrix[int64](n, n)
	for k := range is {
		_ = viaLoop.SetElement(is[k], js[k], xs[k])
	}
	viaBatch := MustMatrix[int64](n, n)
	// Split across several batches to exercise cross-batch deferral.
	for lo := 0; lo < e; lo += 256 {
		hi := lo + 256
		if hi > e {
			hi = e
		}
		if err := viaBatch.SetElements(is[lo:hi], js[lo:hi], xs[lo:hi], nil); err != nil {
			t.Fatal(err)
		}
	}
	if pend, _ := viaBatch.Pending(); pend != e {
		t.Fatalf("last-wins batches must stay pending across batch boundaries: pending=%d want %d", pend, e)
	}
	li, lj, lx := viaLoop.ExtractTuples()
	bi, bj, bx := viaBatch.ExtractTuples()
	if len(li) != len(bi) {
		t.Fatalf("nvals differ: loop=%d batch=%d", len(li), len(bi))
	}
	for k := range li {
		if li[k] != bi[k] || lj[k] != bj[k] || lx[k] != bx[k] {
			t.Fatalf("entry %d differs: loop=(%d,%d,%d) batch=(%d,%d,%d)",
				k, li[k], lj[k], lx[k], bi[k], bj[k], bx[k])
		}
	}
}

func TestSetElementsValidationIsAtomic(t *testing.T) {
	a := MustMatrix[float64](4, 4)
	if err := a.SetElements([]int{0, 1}, []int{0}, []float64{1, 2}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("ragged batch: want ErrDimensionMismatch, got %v", err)
	}
	// Last tuple is out of bounds: NOTHING from the batch may land.
	err := a.SetElements([]int{0, 1, 4}, []int{0, 1, 0}, []float64{1, 2, 3}, nil)
	if !errors.Is(err, ErrIndexOutOfBounds) {
		t.Fatalf("want ErrIndexOutOfBounds, got %v", err)
	}
	if pend, _ := a.Pending(); pend != 0 {
		t.Fatalf("rejected batch left %d pending tuples", pend)
	}
	if n := a.Nvals(); n != 0 {
		t.Fatalf("rejected batch left %d values", n)
	}
	// Empty batch is a no-op, not an error.
	if err := a.SetElements(nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetElementsDupCombines(t *testing.T) {
	plus := Plus[int64]()
	a := MustMatrix[int64](3, 3)
	// Duplicates within one batch combine with dup.
	if err := a.SetElements([]int{1, 1, 1}, []int{2, 2, 2}, []int64{1, 10, 100}, plus); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.GetElement(1, 2); v != 111 {
		t.Fatalf("in-batch dup: got %d want 111", v)
	}
	// A later accumulate batch combines onto the stored entry.
	if err := a.SetElements([]int{1}, []int{2}, []int64{1000}, plus); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.GetElement(1, 2); v != 1111 {
		t.Fatalf("accumulate onto stored: got %d want 1111", v)
	}
	// Last-wins batch replaces instead.
	if err := a.SetElements([]int{1}, []int{2}, []int64{5}, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.GetElement(1, 2); v != 5 {
		t.Fatalf("last-wins after accumulate: got %d want 5", v)
	}
}

func TestSetElementsLastWinsOverwrites(t *testing.T) {
	a := MustMatrix[int64](3, 3)
	if err := a.SetElements([]int{0, 0}, []int{1, 1}, []int64{7, 9}, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.GetElement(0, 1); v != 9 {
		t.Fatalf("last-wins within batch: got %d want 9", v)
	}
	if n := a.Nvals(); n != 1 {
		t.Fatalf("nvals=%d want 1", n)
	}
}

func TestSetElementsInterleavesWithRemoves(t *testing.T) {
	// The streaming write path applies adds via SetElements and removes
	// via RemoveElement; the end state must match the naive sequence.
	a := MustMatrix[float64](10, 10)
	if err := a.SetElements([]int{1, 2, 3}, []int{1, 2, 3}, []float64{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveElement(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.SetElements([]int{4, 2}, []int{4, 2}, []float64{4, 22}, nil); err != nil {
		t.Fatal(err)
	}
	if n := a.Nvals(); n != 4 {
		t.Fatalf("nvals=%d want 4", n)
	}
	if v, _ := a.GetElement(2, 2); v != 22 {
		t.Fatalf("resurrected entry: got %v want 22", v)
	}
	if _, err := a.GetElement(5, 5); !errors.Is(err, ErrNoValue) {
		t.Fatalf("want ErrNoValue, got %v", err)
	}
}
