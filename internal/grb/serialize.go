package grb

// Binary serialization of GraphBLAS objects (the GxB_Matrix_serialize
// analogue of SuiteSparse): a versioned gob envelope around the
// compressed-sparse arrays, so opaque objects can cross process
// boundaries without going through Ω(e·log e) tuple rebuilds.

import (
	"encoding/gob"
	"fmt"
	"io"
)

// serialVersion guards the on-wire layout.
const serialVersion = 1

// matrixWire is the serialized form of a Matrix.
type matrixWire[T any] struct {
	Version      int
	NRows, NCols int
	Hyper        bool
	P, H, I      []int
	X            []T
}

// vectorWire is the serialized form of a Vector.
type vectorWire[T any] struct {
	Version int
	N       int
	Idx     []int
	X       []T
}

// SerializeMatrix writes a compact binary image of the matrix.
func SerializeMatrix[T any](w io.Writer, a *Matrix[T]) error {
	if a == nil {
		return opError("serialize", ErrUninitialized)
	}
	a.Wait()
	c := a.csr
	img := matrixWire[T]{
		Version: serialVersion,
		NRows:   a.nr, NCols: a.nc,
		Hyper: c.h != nil,
		P:     c.p, H: c.h, I: c.i, X: c.x,
	}
	return gob.NewEncoder(w).Encode(img)
}

// DeserializeMatrix reconstructs a matrix written by SerializeMatrix.
func DeserializeMatrix[T any](r io.Reader) (*Matrix[T], error) {
	var img matrixWire[T]
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("grb: deserialize: %w", err)
	}
	if img.Version != serialVersion {
		return nil, fmt.Errorf("grb: deserialize: unsupported version %d", img.Version)
	}
	if img.NRows < 0 || img.NCols < 0 {
		return nil, opErrorf("deserialize", ErrInvalidValue, "dims %d×%d", img.NRows, img.NCols)
	}
	if img.Hyper {
		return ImportHyperCSR(img.NRows, img.NCols, img.P, img.H, img.I, img.X, false)
	}
	// gob encodes empty slices as nil; restore the pointer array shape.
	if img.P == nil {
		img.P = make([]int, img.NRows+1)
	}
	if img.I == nil {
		img.I = []int{}
	}
	if img.X == nil {
		img.X = []T{}
	}
	return ImportCSR(img.NRows, img.NCols, img.P, img.I, img.X, false)
}

// SerializeVector writes a compact binary image of the vector.
func SerializeVector[T any](w io.Writer, v *Vector[T]) error {
	if v == nil {
		return opError("serialize", ErrUninitialized)
	}
	v.Wait()
	img := vectorWire[T]{Version: serialVersion, N: v.n, Idx: v.idx, X: v.x}
	return gob.NewEncoder(w).Encode(img)
}

// DeserializeVector reconstructs a vector written by SerializeVector.
func DeserializeVector[T any](r io.Reader) (*Vector[T], error) {
	var img vectorWire[T]
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("grb: deserialize: %w", err)
	}
	if img.Version != serialVersion {
		return nil, fmt.Errorf("grb: deserialize: unsupported version %d", img.Version)
	}
	if img.Idx == nil {
		img.Idx = []int{}
	}
	if img.X == nil {
		img.X = []T{}
	}
	return ImportSparse(img.N, img.Idx, img.X, false)
}
