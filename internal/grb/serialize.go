package grb

// Binary serialization of GraphBLAS objects (the GxB_Matrix_serialize
// analogue of SuiteSparse): a versioned gob envelope around the
// compressed-sparse arrays, so opaque objects can cross process
// boundaries without going through Ω(e·log e) tuple rebuilds.

import (
	"encoding/gob"
	"io"
)

// serialVersion guards the on-wire layout.
const serialVersion = 1

// matrixWire is the serialized form of a Matrix. The payload is always the
// canonical compressed-sparse arrays regardless of the matrix's runtime
// format — a bitmap-formatted matrix serializes its CSR and rebuilds the
// bitmap view lazily on the other side — so every format shares one wire
// layout. Format records the owner's format preference; gob omits zero
// fields, so images written before the field existed decode as FormatAuto.
type matrixWire[T any] struct {
	Version      int
	NRows, NCols int
	Format       int
	Hyper        bool
	P, H, I      []int
	X            []T
}

// vectorWire is the serialized form of a Vector.
type vectorWire[T any] struct {
	Version int
	N       int
	Idx     []int
	X       []T
}

// SerializeMatrix writes a compact binary image of the matrix.
func SerializeMatrix[T any](w io.Writer, a *Matrix[T]) error {
	if a == nil {
		return opError("serialize", ErrUninitialized)
	}
	c := a.materializedCSR()
	img := matrixWire[T]{
		Version: serialVersion,
		NRows:   a.nr, NCols: a.nc,
		Format: int(a.format),
		Hyper:  c.h != nil,
		P:      c.p, H: c.h, I: c.i, X: c.x,
	}
	return gob.NewEncoder(w).Encode(img)
}

// maxNilPointerRestore caps the pointer array synthesized for a wire image
// that omitted P entirely. Every matrix the serializer produces carries a
// non-empty pointer array, so a missing P with large declared dimensions is
// only reachable from hostile bytes — without the cap, a 24-byte stream
// declaring 2^60 rows would make the decoder allocate 8 EiB.
const maxNilPointerRestore = 1 << 24

// DeserializeMatrix reconstructs a matrix written by SerializeMatrix. The
// input is untrusted: dimensions are validated against the array lengths
// before any import, preallocation is capped against the declared sizes,
// and every failure — a gob-level parse error, an unsupported version, a
// shape lie, or out-of-range indices — wraps ErrCorrupt.
func DeserializeMatrix[T any](r io.Reader) (*Matrix[T], error) {
	var img matrixWire[T]
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, opErrorf("deserialize", ErrCorrupt, "%v", err)
	}
	if img.Version != serialVersion {
		return nil, opErrorf("deserialize", ErrCorrupt, "unsupported version %d", img.Version)
	}
	if img.NRows < 0 || img.NCols < 0 || img.NRows+1 <= 0 {
		return nil, opErrorf("deserialize", ErrCorrupt, "dims %d×%d", img.NRows, img.NCols)
	}
	if img.Format < int(FormatAuto) || img.Format > int(FormatBitmap) {
		return nil, opErrorf("deserialize", ErrCorrupt, "unknown format %d", img.Format)
	}
	// Reject shape lies before the importer sees the arrays: the declared
	// dimensions must agree with the array lengths exactly.
	if len(img.I) != len(img.X) {
		return nil, opErrorf("deserialize", ErrCorrupt, "%d indices but %d values", len(img.I), len(img.X))
	}
	if img.Hyper {
		// The serializer stores CSR- and bitmap-formatted matrices in
		// standard layout (those formats force it), so a hyper payload
		// claiming one is hostile — and restoring the claimed format would
		// expand a tiny hyper image to a NRows+1 pointer array, letting
		// 30 bytes of input demand an arbitrarily large allocation.
		if f := Format(img.Format); f == FormatCSR || f == FormatBitmap {
			return nil, opErrorf("deserialize", ErrCorrupt, "hyper payload with standard format %d", img.Format)
		}
		if img.P == nil && img.H == nil {
			img.P = []int{0} // empty hypersparse image
		}
		if img.H == nil {
			img.H = []int{}
		}
		if len(img.P) != len(img.H)+1 {
			return nil, opErrorf("deserialize", ErrCorrupt, "hyper pointer array len %d, hyper list len %d", len(img.P), len(img.H))
		}
		a, err := ImportHyperCSR(img.NRows, img.NCols, img.P, img.H, img.I, img.X, false)
		if err != nil {
			return nil, opErrorf("deserialize", ErrCorrupt, "%v", err)
		}
		a.SetFormat(Format(img.Format))
		return a, nil
	}
	// gob omits empty slices; restore the pointer array shape, but never
	// let declared-but-absent dimensions drive a giant allocation.
	if img.P == nil {
		if len(img.I) != 0 || img.NRows+1 > maxNilPointerRestore {
			return nil, opErrorf("deserialize", ErrCorrupt, "missing pointer array for %d×%d with %d entries", img.NRows, img.NCols, len(img.I))
		}
		img.P = make([]int, img.NRows+1)
	}
	if len(img.P) != img.NRows+1 {
		return nil, opErrorf("deserialize", ErrCorrupt, "pointer array len %d for %d rows", len(img.P), img.NRows)
	}
	if img.I == nil {
		img.I = []int{}
	}
	if img.X == nil {
		img.X = []T{}
	}
	a, err := ImportCSR(img.NRows, img.NCols, img.P, img.I, img.X, false)
	if err != nil {
		return nil, opErrorf("deserialize", ErrCorrupt, "%v", err)
	}
	a.SetFormat(Format(img.Format))
	return a, nil
}

// SerializeVector writes a compact binary image of the vector.
func SerializeVector[T any](w io.Writer, v *Vector[T]) error {
	if v == nil {
		return opError("serialize", ErrUninitialized)
	}
	v.Wait()
	img := vectorWire[T]{Version: serialVersion, N: v.n, Idx: v.idx, X: v.x}
	return gob.NewEncoder(w).Encode(img)
}

// DeserializeVector reconstructs a vector written by SerializeVector,
// under the same untrusted-input discipline as DeserializeMatrix: shape
// lies are rejected before import and every failure wraps ErrCorrupt.
func DeserializeVector[T any](r io.Reader) (*Vector[T], error) {
	var img vectorWire[T]
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, opErrorf("deserialize", ErrCorrupt, "%v", err)
	}
	if img.Version != serialVersion {
		return nil, opErrorf("deserialize", ErrCorrupt, "unsupported version %d", img.Version)
	}
	if img.N < 0 {
		return nil, opErrorf("deserialize", ErrCorrupt, "dim %d", img.N)
	}
	if len(img.Idx) != len(img.X) {
		return nil, opErrorf("deserialize", ErrCorrupt, "%d indices but %d values", len(img.Idx), len(img.X))
	}
	if img.Idx == nil {
		img.Idx = []int{}
	}
	if img.X == nil {
		img.X = []T{}
	}
	v, err := ImportSparse(img.N, img.Idx, img.X, false)
	if err != nil {
		return nil, opErrorf("deserialize", ErrCorrupt, "%v", err)
	}
	return v, nil
}
