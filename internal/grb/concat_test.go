package grb

import (
	"errors"
	"math/rand"
	"testing"
)

func TestConcatAndSplitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := MustMatrix[int64](23, 31)
	for k := 0; k < 200; k++ {
		_ = a.SetElement(rng.Intn(23), rng.Intn(31), int64(k))
	}
	tiles, err := Split(a, []int{10, 13}, []int{7, 20, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 2 || len(tiles[0]) != 3 {
		t.Fatal("grid shape")
	}
	if tiles[0][0].Nrows() != 10 || tiles[0][0].Ncols() != 7 {
		t.Fatal("tile dims")
	}
	if tiles[1][2].Nrows() != 13 || tiles[1][2].Ncols() != 4 {
		t.Fatal("tile dims (last)")
	}
	total := 0
	for _, row := range tiles {
		for _, tile := range row {
			total += tile.Nvals()
		}
	}
	if total != a.Nvals() {
		t.Fatalf("entries lost: %d vs %d", total, a.Nvals())
	}
	// Reassemble.
	b, err := Concat(tiles)
	if err != nil {
		t.Fatal(err)
	}
	ai, aj, ax := a.ExtractTuples()
	bi, bj, bx := b.ExtractTuples()
	if len(ai) != len(bi) {
		t.Fatal("nvals")
	}
	for k := range ai {
		if ai[k] != bi[k] || aj[k] != bj[k] || ax[k] != bx[k] {
			t.Fatalf("entry %d changed", k)
		}
	}
}

func TestConcatValidation(t *testing.T) {
	a := MustMatrix[int](2, 3)
	b := MustMatrix[int](2, 2)
	c := MustMatrix[int](1, 3)
	if _, err := Concat([][]*Matrix[int]{}); !errors.Is(err, ErrInvalidValue) {
		t.Fatal("empty grid")
	}
	if _, err := Concat([][]*Matrix[int]{{a, nil}}); !errors.Is(err, ErrUninitialized) {
		t.Fatal("nil tile")
	}
	// Mismatched heights in one grid row.
	if _, err := Concat([][]*Matrix[int]{{a, c}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("row heights")
	}
	// Mismatched widths in one grid column.
	if _, err := Concat([][]*Matrix[int]{{a}, {b}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("column widths")
	}
	// Ragged grid.
	if _, err := Concat([][]*Matrix[int]{{a, a}, {a}}); !errors.Is(err, ErrInvalidValue) {
		t.Fatal("ragged")
	}
}

func TestSplitValidation(t *testing.T) {
	a := MustMatrix[int](4, 4)
	if _, err := Split(a, []int{2, 3}, []int{4}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatal("row sum")
	}
	if _, err := Split(a, []int{4}, []int{-1, 5}); !errors.Is(err, ErrInvalidValue) {
		t.Fatal("negative width")
	}
	if _, err := Split[int](nil, []int{1}, []int{1}); !errors.Is(err, ErrUninitialized) {
		t.Fatal("nil matrix")
	}
}

func TestConcatBipartiteBlock(t *testing.T) {
	// The classic use: embed a biadjacency B into [[0 B],[Bᵀ 0]].
	bi := MustMatrix[float64](2, 3)
	_ = bi.SetElement(0, 1, 5)
	_ = bi.SetElement(1, 2, 7)
	bt := MustMatrix[float64](3, 2)
	if err := Transpose[float64, bool](bt, nil, nil, bi, nil); err != nil {
		t.Fatal(err)
	}
	z22 := MustMatrix[float64](2, 2)
	z33 := MustMatrix[float64](3, 3)
	g, err := Concat([][]*Matrix[float64]{{z22, bi}, {bt, z33}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Nrows() != 5 || g.Nvals() != 4 {
		t.Fatalf("block graph: %dx%d nvals=%d", g.Nrows(), g.Ncols(), g.Nvals())
	}
	if v, _ := g.GetElement(0, 3); v != 5 {
		t.Fatal("B block placement")
	}
	if v, _ := g.GetElement(3, 0); v != 5 {
		t.Fatal("Bᵀ block placement")
	}
}
