package grb

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// maxWorkers caps kernel parallelism; 0 means GOMAXPROCS. Settable for
// experiments via SetParallelism. Accessed atomically so kernels may run
// from concurrent goroutines while the knob is turned.
var maxWorkers atomic.Int64

// SetParallelism bounds the number of worker goroutines used by parallel
// kernels (0 restores the default of GOMAXPROCS). It returns the previous
// setting. Safe to call concurrently; operations already in flight keep
// the worker count they started with.
func SetParallelism(n int) int {
	return int(maxWorkers.Swap(int64(n)))
}

func workers() int {
	// An explicit SetParallelism is honored verbatim — even above
	// GOMAXPROCS — because the determinism tests deliberately pin the
	// worker count above 1 on single-CPU hosts to exercise the concurrent
	// paths. Oversubscription overhead on small operations is instead
	// avoided structurally by seqFallbackWork: sub-threshold work never
	// chunks, so it never spawns workers at any parallelism setting.
	if n := maxWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// parallelRanges splits [0,n) into at most workers() contiguous ranges of
// at least grain elements and runs fn on each concurrently. fn must be
// safe for concurrent invocation on disjoint ranges. Results are
// deterministic as long as fn's effects are confined to its range.
//
// Use this for uniform per-element cost; for skewed workloads (power-law
// row degrees) use parallelWork, which balances estimated flops instead of
// element counts.
func parallelRanges(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workers()
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// workChunks splits [0,n) into contiguous ranges holding roughly equal
// total weight (estimated flops), not equal element counts: on power-law
// inputs equal-count splitting leaves one worker with the hub rows and the
// rest idle. Boundaries are found on the weight prefix sum, so a single
// huge element ends up alone in its chunk and the remaining work spreads
// over the other chunks.
//
// At most maxChunks ranges are produced, and none is created at all (a
// single [0,n) range is returned) while the total weight is below quantum
// or below seqFallbackWork — the sequential-fallback threshold under which
// goroutine dispatch and chunk merging cost more than the work itself.
// The boundaries depend only on (weights, quantum, maxChunks) — never on
// the current worker count — so callers that fold chunk results in chunk
// order get bitwise-identical output at any parallelism level.
func workChunks(n int, weight func(k int) int, quantum, maxChunks int) []int {
	if n <= 0 {
		return []int{0, 0}
	}
	if maxChunks < 1 {
		maxChunks = 1
	}
	prefix := make([]int, n+1)
	for k := 0; k < n; k++ {
		w := weight(k)
		if w < 0 {
			w = 0
		}
		prefix[k+1] = prefix[k] + w
	}
	total := prefix[n]
	if quantum < 1 {
		quantum = 1
	}
	if total < seqFallbackWork {
		return []int{0, n}
	}
	nchunks := total / quantum
	if nchunks > maxChunks {
		nchunks = maxChunks
	}
	if nchunks > n {
		nchunks = n
	}
	if nchunks <= 1 {
		return []int{0, n}
	}
	bounds := make([]int, 1, nchunks+1)
	for c := 1; c < nchunks; c++ {
		target := total / nchunks * c
		// First index whose prefix exceeds the target.
		b := sort.Search(n, func(k int) bool { return prefix[k+1] > target })
		if b <= bounds[len(bounds)-1] {
			continue // a heavy element swallowed this boundary
		}
		bounds = append(bounds, b)
	}
	bounds = append(bounds, n)
	return bounds
}

// runChunks executes fn once per chunk of bounds, dynamically scheduled:
// workers pull the next chunk index from an atomic counter, so a worker
// that drew a light chunk immediately takes another while a worker stuck
// on a hub chunk keeps going. fn receives the chunk index and its range;
// it must confine its effects to per-chunk state or the range itself.
func runChunks(bounds []int, fn func(c, lo, hi int)) {
	nchunks := len(bounds) - 1
	if nchunks <= 0 {
		return
	}
	w := workers()
	if w > nchunks {
		w = nchunks
	}
	if w <= 1 {
		for c := 0; c < nchunks; c++ {
			fn(c, bounds[c], bounds[c+1])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				fn(c, bounds[c], bounds[c+1])
			}
		}()
	}
	wg.Wait()
}

// seqFallbackWork is the estimated-flop total below which the partitioner
// refuses to create chunks at all, regardless of quantum: spawning workers
// for an operation this small costs more in goroutine dispatch and chunk
// merging than the operation itself (the source of the BENCH_1 small-op
// regressions). Serial execution of a sub-threshold op is also exactly the
// chunk-order fold of its would-be chunks, so results are unchanged.
const seqFallbackWork = 1 << 16

// workOversubscribe is how many chunks parallelWork creates per worker.
// Finer chunks let the dynamic scheduler absorb estimation error (the
// weight function is an estimate, not a measurement) at the cost of a
// little scheduling overhead.
const workOversubscribe = 4

// parallelWork runs fn over [0,n) split at equal-weight boundaries and
// dynamically scheduled: the flop-balanced counterpart of parallelRanges.
// quantum is the minimum total weight worth spinning up goroutines for.
// fn must be safe for concurrent invocation on disjoint ranges.
func parallelWork(n, quantum int, weight func(k int) int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workers()
	if w <= 1 {
		fn(0, n)
		return
	}
	bounds := workChunks(n, weight, quantum, w*workOversubscribe)
	if len(bounds) <= 2 {
		fn(0, n)
		return
	}
	runChunks(bounds, func(_, lo, hi int) { fn(lo, hi) })
}

// kernelStats is the scheduler's contribution to an op record: how much
// estimated work the kernel carried and how it was partitioned. A nil
// *kernelStats means observation is disabled and must cost nothing; a
// non-nil one is filled from the same (weights, quantum, maxChunks)
// arguments the partitioner saw, so recording never changes chunk
// boundaries — and therefore never changes results (the chunk-order
// merges fix the reduction association).
type kernelStats struct {
	estFlops      int64 // total estimated weight across all chunks
	chunks        int   // number of chunks the partitioner produced
	maxChunkFlops int64 // heaviest chunk's estimated weight
}

// fill computes per-chunk weight sums for bounds. It re-walks the weight
// function (an extra O(n) on the traced path only) rather than threading
// state through workChunks, keeping the untraced partitioner untouched.
func (st *kernelStats) fill(bounds []int, weight func(k int) int) {
	st.chunks += len(bounds) - 1
	for c := 0; c < len(bounds)-1; c++ {
		var sum int64
		for k := bounds[c]; k < bounds[c+1]; k++ {
			w := weight(k)
			if w < 0 {
				w = 0 // mirror workChunks's clamp
			}
			sum += int64(w)
		}
		st.estFlops += sum
		if sum > st.maxChunkFlops {
			st.maxChunkFlops = sum
		}
	}
}

// parallelWorkObs is parallelWork plus optional observation: with st nil
// it is exactly parallelWork (same branches, same bounds, no extra work);
// with st non-nil it additionally fills st from the partition it runs.
func parallelWorkObs(n, quantum int, weight func(k int) int, st *kernelStats, fn func(lo, hi int)) {
	if st == nil {
		parallelWork(n, quantum, weight, fn)
		return
	}
	if n <= 0 {
		return
	}
	w := workers()
	if w <= 1 {
		st.fill([]int{0, n}, weight)
		fn(0, n)
		return
	}
	bounds := workChunks(n, weight, quantum, w*workOversubscribe)
	if len(bounds) <= 2 {
		st.fill([]int{0, n}, weight)
		fn(0, n)
		return
	}
	st.fill(bounds, weight)
	runChunks(bounds, func(_, lo, hi int) { fn(lo, hi) })
}

// parallelSortThreshold is the slice length below which parallelSortPerm
// sorts serially; goroutine and merge overhead dominate under it.
const parallelSortThreshold = 1 << 13

// parallelSortPerm sorts perm by less, which must define a strict total
// order (callers break ties on the original index, which also makes the
// sort stable). Large slices are chunk-sorted concurrently and k-way
// merged; the result is identical to a serial sort at any parallelism.
func parallelSortPerm(perm []int, less func(a, b int) bool) {
	n := len(perm)
	w := workers()
	if n < parallelSortThreshold || w <= 1 {
		sort.Slice(perm, func(u, v int) bool { return less(perm[u], perm[v]) })
		return
	}
	nchunks := w
	if nchunks > n {
		nchunks = n
	}
	bounds := make([]int, nchunks+1)
	for c := 0; c <= nchunks; c++ {
		bounds[c] = c * n / nchunks
	}
	runChunks(bounds, func(_, lo, hi int) {
		s := perm[lo:hi]
		sort.Slice(s, func(u, v int) bool { return less(s[u], s[v]) })
	})
	// K-way merge of the sorted chunks. Ties cannot occur (total order),
	// so merge output is unique regardless of chunking.
	heads := make([]int, nchunks)
	for c := range heads {
		heads[c] = bounds[c]
	}
	out := make([]int, 0, n)
	for len(out) < n {
		best := -1
		for c := 0; c < nchunks; c++ {
			if heads[c] == bounds[c+1] {
				continue
			}
			if best < 0 || less(perm[heads[c]], perm[heads[best]]) {
				best = c
			}
		}
		out = append(out, perm[heads[best]])
		heads[best]++
	}
	copy(perm, out)
}

// rowSlices is the per-row staging area used by parallel kernels: each row
// is computed independently into its own slice pair, then stitched into a
// compressed structure. Stitching preserves row order, so parallel results
// are identical to sequential ones.
type rowSlices[T any] struct {
	idx [][]int
	val [][]T
}

func newRowSlices[T any](n int) *rowSlices[T] {
	return &rowSlices[T]{idx: make([][]int, n), val: make([][]T, n)}
}

// stitch assembles the staged rows into a cs. rows maps staging slot to
// major index (nil means slot k is major index k, i.e. standard layout).
func (r *rowSlices[T]) stitch(nmajor, nminor int, rows []int) *cs[T] {
	total := 0
	for _, s := range r.idx {
		total += len(s)
	}
	ni := make([]int, 0, total)
	nx := make([]T, 0, total)
	if rows == nil {
		p := make([]int, len(r.idx)+1)
		for k := range r.idx {
			ni = append(ni, r.idx[k]...)
			nx = append(nx, r.val[k]...)
			p[k+1] = len(ni)
		}
		return &cs[T]{nmajor: nmajor, nminor: nminor, p: p, i: ni, x: nx}
	}
	h := make([]int, 0, len(rows))
	p := make([]int, 1, len(rows)+1)
	for k := range r.idx {
		if len(r.idx[k]) == 0 {
			continue
		}
		ni = append(ni, r.idx[k]...)
		nx = append(nx, r.val[k]...)
		h = append(h, rows[k])
		p = append(p, len(ni))
	}
	return &cs[T]{nmajor: nmajor, nminor: nminor, p: p, h: h, i: ni, x: nx}
}
