package grb

import (
	"runtime"
	"sync"
)

// maxWorkers caps kernel parallelism; 0 means GOMAXPROCS. Settable for
// experiments via SetParallelism.
var maxWorkers = 0

// SetParallelism bounds the number of worker goroutines used by parallel
// kernels (0 restores the default of GOMAXPROCS). It returns the previous
// setting. Not safe to call concurrently with running operations.
func SetParallelism(n int) int {
	old := maxWorkers
	maxWorkers = n
	return old
}

func workers() int {
	if maxWorkers > 0 {
		return maxWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelRanges splits [0,n) into at most workers() contiguous ranges of
// at least grain elements and runs fn on each concurrently. fn must be
// safe for concurrent invocation on disjoint ranges. Results are
// deterministic as long as fn's effects are confined to its range.
func parallelRanges(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := workers()
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks > w {
		chunks = w
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// rowSlices is the per-row staging area used by parallel kernels: each row
// is computed independently into its own slice pair, then stitched into a
// compressed structure. Stitching preserves row order, so parallel results
// are identical to sequential ones.
type rowSlices[T any] struct {
	idx [][]int
	val [][]T
}

func newRowSlices[T any](n int) *rowSlices[T] {
	return &rowSlices[T]{idx: make([][]int, n), val: make([][]T, n)}
}

// stitch assembles the staged rows into a cs. rows maps staging slot to
// major index (nil means slot k is major index k, i.e. standard layout).
func (r *rowSlices[T]) stitch(nmajor, nminor int, rows []int) *cs[T] {
	total := 0
	for _, s := range r.idx {
		total += len(s)
	}
	ni := make([]int, 0, total)
	nx := make([]T, 0, total)
	if rows == nil {
		p := make([]int, len(r.idx)+1)
		for k := range r.idx {
			ni = append(ni, r.idx[k]...)
			nx = append(nx, r.val[k]...)
			p[k+1] = len(ni)
		}
		return &cs[T]{nmajor: nmajor, nminor: nminor, p: p, i: ni, x: nx}
	}
	h := make([]int, 0, len(rows))
	p := make([]int, 1, len(rows)+1)
	for k := range r.idx {
		if len(r.idx[k]) == 0 {
			continue
		}
		ni = append(ni, r.idx[k]...)
		nx = append(nx, r.val[k]...)
		h = append(h, rows[k])
		p = append(p, len(ni))
	}
	return &cs[T]{nmajor: nmajor, nminor: nminor, p: p, h: h, i: ni, x: nx}
}
