package grb_test

// Fourth conformance wave: the full option product on mxm — transposed
// inputs combined with masks, accumulators and replace — plus reduction
// early-exit semantics.

import (
	"fmt"
	"math/rand"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/grb/ref"
)

func TestConformanceMxMFullOptionProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5; trial++ {
		m := 1 + rng.Intn(15)
		k := 1 + rng.Intn(15)
		n := 1 + rng.Intn(15)
		mask := randMatrix(rng, m, n, 0.4)
		cInit := randMatrix(rng, m, n, 0.2)
		for _, tr := range []struct{ ta, tb bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
			ar, ac := m, k
			if tr.ta {
				ar, ac = k, m
			}
			br, bc := k, n
			if tr.tb {
				br, bc = n, k
			}
			a := randMatrix(rng, ar, ac, 0.25)
			b := randMatrix(rng, br, bc, 0.25)
			for _, mc := range maskCases() {
				for _, method := range []grb.MxMMethod{grb.MxMGustavson, grb.MxMDot, grb.MxMHeap} {
					name := fmt.Sprintf("t%d/ta=%v,tb=%v/%s/m%d", trial, tr.ta, tr.tb, mc.name, method)
					t.Run(name, func(t *testing.T) {
						d := mc.desc
						d.TranA, d.TranB = tr.ta, tr.tb
						d.Method = method
						var gm *grb.Matrix[int64]
						var rm *ref.Mat[int64]
						if mc.useMask {
							gm = mask
							rm = ref.FromMatrix(mask)
						}
						c := cInit.Dup()
						if err := grb.MxM(c, gm, grb.Plus[int64](), grb.PlusTimes[int64](), a, b, &d); err != nil {
							t.Fatal(err)
						}
						want := ref.FromMatrix(cInit)
						ref.MxM(want, rm, grb.Plus[int64](), grb.PlusTimes[int64](), ref.FromMatrix(a), ref.FromMatrix(b), refDesc(d))
						eqMat(t, c, want)
					})
				}
			}
		}
	}
}

func TestReduceTerminalEarlyExit(t *testing.T) {
	// A reduction with a terminal monoid must return the terminal value
	// even if later elements would be "larger" in some other order — and
	// must not touch a poisoned operator after hitting it.
	n := 1000
	v := grb.MustVector[bool](n)
	for i := 0; i < n; i++ {
		_ = v.SetElement(i, i == 3)
	}
	got, err := grb.ReduceVectorToScalar(grb.LOrMonoid(), v)
	if err != nil || got != true {
		t.Fatalf("lor reduce: %v %v", got, err)
	}
	// MIN monoid with the terminal value placed early.
	w := grb.MustVector[int32](n)
	for i := 0; i < n; i++ {
		x := int32(i + 1)
		if i == 5 {
			x = -(1 << 31) // MinInt32: terminal
		}
		_ = w.SetElement(i, x)
	}
	gotMin, err := grb.ReduceVectorToScalar(grb.MinMonoid[int32](), w)
	if err != nil || gotMin != -(1<<31) {
		t.Fatalf("min reduce: %v %v", gotMin, err)
	}
	// Empty vector reduces to the identity.
	empty := grb.MustVector[int32](4)
	id, err := grb.ReduceVectorToScalar(grb.PlusMonoid[int32](), empty)
	if err != nil || id != 0 {
		t.Fatalf("empty reduce: %v %v", id, err)
	}
}
