package grb

import (
	"sort"

	"lagraph/internal/obs"
)

// Vector is an opaque GraphBLAS vector of dimension n holding entries of
// type T. Entries are stored sparsely (sorted index list plus values);
// single-element mutations buffer as pending tuples like Matrix.
type Vector[T any] struct {
	n   int
	idx []int // sorted; zombie entries flipped (^i)
	x   []T

	pend   []tuple[T] // j field unused
	pendOp func(T, T) T
	nzomb  int
}

// NewVector creates an empty vector of dimension n.
func NewVector[T any](n int) (*Vector[T], error) {
	if n < 0 {
		return nil, opErrorf("newVector", ErrInvalidValue, "dim %d", n)
	}
	return &Vector[T]{n: n}, nil
}

// MustVector is NewVector for static dimensions known to be valid.
func MustVector[T any](n int) *Vector[T] {
	v, err := NewVector[T](n)
	if err != nil {
		panic(err)
	}
	return v
}

// Size returns the vector's dimension.
func (v *Vector[T]) Size() int { return v.n }

// Nvals returns the number of stored entries, forcing pending work first.
func (v *Vector[T]) Nvals() int {
	v.Wait()
	return len(v.idx)
}

// Clear removes all entries.
func (v *Vector[T]) Clear() {
	v.idx = v.idx[:0]
	v.x = v.x[:0]
	v.pend = nil
	v.pendOp = nil
	v.nzomb = 0
}

// Dup returns a deep copy.
func (v *Vector[T]) Dup() *Vector[T] {
	v.Wait()
	return &Vector[T]{
		n:   v.n,
		idx: append([]int(nil), v.idx...),
		x:   append([]T(nil), v.x...),
	}
}

// SetElement stores v(i) = x as a pending tuple.
func (v *Vector[T]) SetElement(i int, x T) error {
	if i < 0 || i >= v.n {
		return ErrIndexOutOfBounds
	}
	if v.pendOp != nil {
		v.Wait()
	}
	v.pend = append(v.pend, tuple[T]{i: i, x: x})
	return nil
}

// accumElement buffers v(i) = v(i) ⊙ x.
func (v *Vector[T]) accumElement(i int, x T, op func(T, T) T) {
	if (v.pendOp == nil && len(v.pend) > 0) || (v.pendOp != nil && len(v.pend) == 0) {
		v.Wait()
	}
	v.pendOp = op
	v.pend = append(v.pend, tuple[T]{i: i, x: x})
}

// MergeElement buffers v(i) ← op(v(i), x) (or v(i)=x if absent) through
// the pending-tuple mechanism: a long gather-scatter sequence costs
// O(p log p) at the next materialization. All buffered updates must share
// one operator; switching forces assembly.
func (v *Vector[T]) MergeElement(i int, x T, op BinaryOp[T, T, T]) error {
	if i < 0 || i >= v.n {
		return ErrIndexOutOfBounds
	}
	if op == nil {
		return ErrUninitialized
	}
	v.accumElement(i, x, op)
	return nil
}

// RemoveElement deletes v(i) if present (zombie tagging).
func (v *Vector[T]) RemoveElement(i int) error {
	if i < 0 || i >= v.n {
		return ErrIndexOutOfBounds
	}
	if len(v.pend) > 0 {
		v.Wait()
	}
	pos := searchFlipped(v.idx, i)
	if pos < len(v.idx) && v.idx[pos] == i { // live entry (zombies are negative)
		v.idx[pos] = ^i
		v.nzomb++
	}
	return nil
}

// unflip recovers the index a zombie entry was flipped from.
func unflip(i int) int {
	if i < 0 {
		return ^i
	}
	return i
}

// searchFlipped binary-searches an index slice that may contain zombies:
// flipping preserves the ordering of the underlying indices, so the search
// compares unflipped values.
func searchFlipped(idx []int, i int) int {
	return sort.Search(len(idx), func(k int) bool { return unflip(idx[k]) >= i })
}

// GetElement returns v(i), or ErrNoValue if no entry is stored.
func (v *Vector[T]) GetElement(i int) (T, error) {
	var zero T
	if i < 0 || i >= v.n {
		return zero, ErrIndexOutOfBounds
	}
	v.Wait()
	pos := sort.SearchInts(v.idx, i)
	if pos < len(v.idx) && v.idx[pos] == i {
		return v.x[pos], nil
	}
	return zero, ErrNoValue
}

// Pending reports buffered updates and zombies. Diagnostic.
func (v *Vector[T]) Pending() (tuples, zombies int) { return len(v.pend), v.nzomb }

// Wait assembles pending tuples and reclaims zombies. With an observer
// installed, each non-trivial assembly emits an op record; the no-pending
// early return stays allocation-free either way.
func (v *Vector[T]) Wait() {
	if v.nzomb == 0 && len(v.pend) == 0 {
		return
	}
	ob := obs.Active()
	if ob == nil {
		v.assemble()
		return
	}
	pending, zombies := len(v.pend), v.nzomb
	t0 := ob.Now()
	v.assemble()
	ob.Op(obs.OpRecord{
		Op: "wait", Kernel: "assemble",
		Rows:    v.n,
		NnzOut:  len(v.idx),
		Pending: pending, Zombies: zombies,
		DurNanos: ob.Now() - t0,
	})
}

// assemble is Wait's worker: it must only run with pending work present.
func (v *Vector[T]) assemble() {
	pend := v.pend
	op := v.pendOp
	v.pend = nil
	v.pendOp = nil
	v.nzomb = 0

	if len(pend) > 1 {
		pend = sortPendingTuples(pend) // j is zero throughout: orders by i, stable
		w := 0
		for r := 1; r < len(pend); r++ {
			if pend[r].i == pend[w].i {
				if op != nil {
					pend[w].x = op(pend[w].x, pend[r].x)
				} else {
					pend[w].x = pend[r].x
				}
			} else {
				w++
				pend[w] = pend[r]
			}
		}
		pend = pend[:w+1]
	}

	ni := make([]int, 0, len(v.idx)+len(pend))
	nx := make([]T, 0, len(v.idx)+len(pend))
	s, pk := 0, 0
	for s < len(v.idx) || pk < len(pend) {
		for s < len(v.idx) && v.idx[s] < 0 { // zombie
			s++
		}
		haveO := s < len(v.idx)
		haveP := pk < len(pend)
		switch {
		case haveO && (!haveP || v.idx[s] < pend[pk].i):
			ni = append(ni, v.idx[s])
			nx = append(nx, v.x[s])
			s++
		case haveP && (!haveO || pend[pk].i < v.idx[s]):
			ni = append(ni, pend[pk].i)
			nx = append(nx, pend[pk].x)
			pk++
		case haveO && haveP:
			val := pend[pk].x
			if op != nil {
				val = op(v.x[s], pend[pk].x)
			}
			ni = append(ni, v.idx[s])
			nx = append(nx, val)
			s++
			pk++
		default:
			s = len(v.idx)
		}
	}
	v.idx, v.x = ni, nx
}

// Build assembles a vector from coordinate tuples, combining duplicates
// with dup (nil means duplicates are an error).
func (v *Vector[T]) Build(is []int, xs []T, dup BinaryOp[T, T, T]) error {
	if len(is) != len(xs) {
		return opErrorf("build", ErrInvalidValue, "tuple slices have lengths %d, %d", len(is), len(xs))
	}
	// Build requires an empty vector; staleness is unobservable because the
	// stored-entry read is paired with the pending-buffer check.
	if len(v.idx) != 0 || len(v.pend) > 0 { //grblint:ignore pending-tuples: read paired with pend check
		return opErrorf("build", ErrInvalidValue, "vector is not empty")
	}
	for _, i := range is {
		if i < 0 || i >= v.n {
			return opErrorf("build", ErrIndexOutOfBounds, "index %d, dim %d", i, v.n)
		}
	}
	perm := make([]int, len(is))
	for k := range perm {
		perm[k] = k
	}
	sort.SliceStable(perm, func(a, b int) bool { return is[perm[a]] < is[perm[b]] })
	ni := make([]int, 0, len(is))
	nx := make([]T, 0, len(is))
	last := -1
	for _, k := range perm {
		if is[k] == last {
			if dup == nil {
				return ErrInvalidValue
			}
			nx[len(nx)-1] = dup(nx[len(nx)-1], xs[k])
			continue
		}
		ni = append(ni, is[k])
		nx = append(nx, xs[k])
		last = is[k]
	}
	v.idx, v.x = ni, nx
	return nil
}

// ExtractTuples returns the stored entries as parallel slices.
func (v *Vector[T]) ExtractTuples() (is []int, xs []T) {
	v.Wait()
	return append([]int(nil), v.idx...), append([]T(nil), v.x...)
}

// ImportSparse wraps a sorted index list and values as a Vector in O(1),
// taking ownership of the slices. Validation is O(nvals) unless trusted.
func ImportSparse[T any](n int, idx []int, x []T, trusted bool) (*Vector[T], error) {
	if n < 0 || len(idx) != len(x) {
		return nil, opErrorf("import", ErrInvalidValue, "dim %d, %d indices, %d values", n, len(idx), len(x))
	}
	if !trusted {
		prev := -1
		for _, i := range idx {
			if i <= prev || i >= n {
				return nil, opErrorf("import", ErrInvalidValue, "index %d out of order or out of range %d", i, n)
			}
			prev = i
		}
	}
	return &Vector[T]{n: n, idx: idx, x: x}, nil
}

// ExportSparse removes the index and value slices from the vector in O(1),
// handing ownership to the caller; the vector is emptied.
func (v *Vector[T]) ExportSparse() (n int, idx []int, x []T) {
	v.Wait()
	n, idx, x = v.n, v.idx, v.x
	v.idx, v.x = nil, nil
	return
}

// DenseVector creates a vector with entries at every index, copying xs.
func DenseVector[T any](xs []T) *Vector[T] {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	return &Vector[T]{n: len(xs), idx: idx, x: append([]T(nil), xs...)}
}

// materialized completes pending work and returns the internal slices.
func (v *Vector[T]) materialized() ([]int, []T) {
	v.Wait()
	return v.idx, v.x
}

// dense scatters the vector into a fresh dense slice plus presence flags.
func (v *Vector[T]) dense() ([]T, []bool) {
	v.Wait()
	xs := make([]T, v.n)
	ok := make([]bool, v.n)
	for k, i := range v.idx {
		xs[i] = v.x[k]
		ok[i] = true
	}
	return xs, ok
}
