package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Counters is the aggregate sink: lock-free atomic tallies with no
// per-record allocation, cheap enough to leave enabled around benchmark
// timing loops. Use Snapshot to read a consistent-enough view (each
// counter is individually atomic; the set is not a transaction).
type Counters struct {
	Ops      atomic.Int64 // kernel-level operations observed
	Iters    atomic.Int64 // algorithm iterations observed
	Waits    atomic.Int64 // pending-tuple assemblies
	Pending  atomic.Int64 // pending tuples consumed by assemblies
	Zombies  atomic.Int64 // zombie entries reclaimed by assemblies
	EstFlops atomic.Int64 // summed work estimates across ops
	NnzOut   atomic.Int64 // summed raw output entries across ops
	DurNanos atomic.Int64 // summed op durations

	// Per-kernel op counts.
	Gustavson atomic.Int64
	Dot       atomic.Int64
	Heap      atomic.Int64
	Push      atomic.Int64
	Pull      atomic.Int64
	Bitmap    atomic.Int64 // bitmap-format kernels: "bitmap" vxm, "dot-bitmap" mxm
}

// Now implements Observer via the package clock.
func (c *Counters) Now() int64 { return Clock() }

// Op implements Observer.
func (c *Counters) Op(r OpRecord) {
	c.Ops.Add(1)
	c.EstFlops.Add(r.EstFlops)
	c.NnzOut.Add(int64(r.NnzOut))
	c.DurNanos.Add(r.DurNanos)
	switch r.Kernel {
	case "gustavson":
		c.Gustavson.Add(1)
	case "dot":
		c.Dot.Add(1)
	case "heap":
		c.Heap.Add(1)
	case "push":
		c.Push.Add(1)
	case "pull":
		c.Pull.Add(1)
	case "bitmap", "dot-bitmap":
		c.Bitmap.Add(1)
	case "assemble":
		c.Waits.Add(1)
		c.Pending.Add(int64(r.Pending))
		c.Zombies.Add(int64(r.Zombies))
	}
}

// Iter implements Observer.
func (c *Counters) Iter(IterRecord) { c.Iters.Add(1) }

// CounterSnapshot is a plain-integer copy of Counters, JSON-marshalable
// and subtractable (benchmarks diff snapshots around a timing region).
type CounterSnapshot struct {
	Ops       int64 `json:"ops"`
	Iters     int64 `json:"iters,omitempty"`
	Waits     int64 `json:"waits,omitempty"`
	Pending   int64 `json:"pending,omitempty"`
	Zombies   int64 `json:"zombies,omitempty"`
	EstFlops  int64 `json:"est_flops,omitempty"`
	NnzOut    int64 `json:"nnz_out,omitempty"`
	DurNanos  int64 `json:"dur_nanos,omitempty"`
	Gustavson int64 `json:"gustavson,omitempty"`
	Dot       int64 `json:"dot,omitempty"`
	Heap      int64 `json:"heap,omitempty"`
	Push      int64 `json:"push,omitempty"`
	Pull      int64 `json:"pull,omitempty"`
	Bitmap    int64 `json:"bitmap,omitempty"`
}

// Snapshot reads every counter.
func (c *Counters) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Ops:       c.Ops.Load(),
		Iters:     c.Iters.Load(),
		Waits:     c.Waits.Load(),
		Pending:   c.Pending.Load(),
		Zombies:   c.Zombies.Load(),
		EstFlops:  c.EstFlops.Load(),
		NnzOut:    c.NnzOut.Load(),
		DurNanos:  c.DurNanos.Load(),
		Gustavson: c.Gustavson.Load(),
		Dot:       c.Dot.Load(),
		Heap:      c.Heap.Load(),
		Push:      c.Push.Load(),
		Pull:      c.Pull.Load(),
		Bitmap:    c.Bitmap.Load(),
	}
}

// Sub returns s - prev, field-wise: the activity between two snapshots.
func (s CounterSnapshot) Sub(prev CounterSnapshot) CounterSnapshot {
	return CounterSnapshot{
		Ops:       s.Ops - prev.Ops,
		Iters:     s.Iters - prev.Iters,
		Waits:     s.Waits - prev.Waits,
		Pending:   s.Pending - prev.Pending,
		Zombies:   s.Zombies - prev.Zombies,
		EstFlops:  s.EstFlops - prev.EstFlops,
		NnzOut:    s.NnzOut - prev.NnzOut,
		DurNanos:  s.DurNanos - prev.DurNanos,
		Gustavson: s.Gustavson - prev.Gustavson,
		Dot:       s.Dot - prev.Dot,
		Heap:      s.Heap - prev.Heap,
		Push:      s.Push - prev.Push,
		Pull:      s.Pull - prev.Pull,
		Bitmap:    s.Bitmap - prev.Bitmap,
	}
}

// Multi fans every record out to several observers in order — the way to
// run a Trace (or Counters) alongside the kernel tuner, which is itself an
// Observer. Now comes from the first observer so durations stay on a
// single clock; an empty Multi falls back to the package clock.
type Multi struct {
	Obs []Observer
}

// Now implements Observer.
func (m *Multi) Now() int64 {
	if len(m.Obs) > 0 {
		return m.Obs[0].Now()
	}
	return Clock()
}

// Op implements Observer.
func (m *Multi) Op(r OpRecord) {
	for _, o := range m.Obs {
		o.Op(r)
	}
}

// Iter implements Observer.
func (m *Multi) Iter(r IterRecord) {
	for _, o := range m.Obs {
		o.Iter(r)
	}
}

// Trace is the bounded ring-buffer sink: it retains the most recent
// capacity op records and capacity iter records, counting what it had to
// drop. A mutex serializes writers; record emission is already off the
// kernels' parallel inner loops, so contention is per-op, not per-entry.
type Trace struct {
	mu           sync.Mutex
	ops          []OpRecord   //grblint:guardedby mu
	iters        []IterRecord //grblint:guardedby mu
	opNext       int          //grblint:guardedby mu // ring write position once len(ops) == cap
	iterNext     int          //grblint:guardedby mu
	droppedOps   int64        //grblint:guardedby mu
	droppedIters int64        //grblint:guardedby mu
	capacity     int          // immutable after NewTrace
}

// DefaultTraceCapacity bounds a Trace built with NewTrace(0).
const DefaultTraceCapacity = 4096

// NewTrace creates a trace sink retaining the last capacity records of
// each kind (capacity <= 0 selects DefaultTraceCapacity).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Trace{capacity: capacity}
}

// Now implements Observer via the package clock.
func (t *Trace) Now() int64 { return Clock() }

// Op implements Observer.
func (t *Trace) Op(r OpRecord) {
	t.mu.Lock()
	if len(t.ops) < t.capacity {
		t.ops = append(t.ops, r)
	} else {
		t.ops[t.opNext] = r
		t.opNext = (t.opNext + 1) % t.capacity
		t.droppedOps++
	}
	t.mu.Unlock()
}

// Iter implements Observer.
func (t *Trace) Iter(r IterRecord) {
	t.mu.Lock()
	if len(t.iters) < t.capacity {
		t.iters = append(t.iters, r)
	} else {
		t.iters[t.iterNext] = r
		t.iterNext = (t.iterNext + 1) % t.capacity
		t.droppedIters++
	}
	t.mu.Unlock()
}

// Ops returns the retained op records, oldest first.
func (t *Trace) Ops() []OpRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]OpRecord, 0, len(t.ops))
	out = append(out, t.ops[t.opNext:]...)
	out = append(out, t.ops[:t.opNext]...)
	return out
}

// Iters returns the retained iter records, oldest first.
func (t *Trace) Iters() []IterRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]IterRecord, 0, len(t.iters))
	out = append(out, t.iters[t.iterNext:]...)
	out = append(out, t.iters[:t.iterNext]...)
	return out
}

// TraceDocument is the serialized form a Trace writes: the schema for
// cmd/lagraph -trace output and the CI trace-smoke validator.
type TraceDocument struct {
	Schema       string       `json:"schema"` // "lagraph-trace/1"
	Ops          []OpRecord   `json:"ops"`
	Iters        []IterRecord `json:"iters"`
	DroppedOps   int64        `json:"dropped_ops,omitempty"`
	DroppedIters int64        `json:"dropped_iters,omitempty"`
}

// TraceSchema identifies the JSON trace format.
const TraceSchema = "lagraph-trace/1"

// Document snapshots the trace into its serialized form.
func (t *Trace) Document() TraceDocument {
	doc := TraceDocument{
		Schema: TraceSchema,
		Ops:    t.Ops(),
		Iters:  t.Iters(),
	}
	t.mu.Lock()
	doc.DroppedOps = t.droppedOps
	doc.DroppedIters = t.droppedIters
	t.mu.Unlock()
	return doc
}

// WriteJSON writes the trace as an indented JSON document.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Document())
}
