// Package obs is the observability layer for the GraphBLAS substrate and
// the algorithm collection: a single process-wide Observer receives one
// OpRecord per kernel-level operation (mxm, vxm, mxv, pending-tuple
// assembly) and one IterRecord per algorithm iteration (BFS, SSSP,
// PageRank, ...). The records expose the runtime decisions the library
// otherwise makes silently — which mxm kernel was selected, whether a
// traversal stepped push or pull, how much estimated work each operation
// carried and how evenly it split across chunks.
//
// # Zero-cost contract
//
// Observation is off by default and the disabled path must be free: grb
// operations perform exactly one atomic pointer load (Active) and a nil
// check, no allocations, no stat recording. The AllocsPerRun tests in
// internal/grb enforce this. Enabling an observer may allocate and may
// read the clock, but must never change results: record emission happens
// strictly after the kernel's output is computed, and traced runs are
// bitwise identical to untraced runs (enforced by determinism tests at
// P=1 and P=8 under -race).
//
// # Clock seam
//
// grblint's kernel-purity check bans the time package inside internal/grb
// — kernels must be deterministic functions of their operands. Durations
// therefore come from the observer itself: the Observer interface carries
// Now(), instrumented code brackets work with ob.Now() calls, and the
// clock implementation (a monotonic reading against the package epoch)
// lives here. Kernel code never imports time; a test observer can supply
// a fake clock.
package obs

import (
	"sync/atomic"
	"time"
)

// OpRecord describes one kernel-level GraphBLAS operation. Integer fields
// that a given op does not populate are zero and omitted from JSON.
type OpRecord struct {
	// Op is the entry point: "mxm", "vxm", "mxv", "wait".
	Op string `json:"op"`
	// Kernel is the compute strategy the op selected: "gustavson",
	// "dot", "heap", "dot-bitmap" for mxm; "push", "pull", "bitmap" for
	// vxm/mxv; "assemble" for Wait.
	Kernel string `json:"kernel,omitempty"`
	// Policy records how Kernel was chosen when the op had a choice:
	// "forced" (the caller pinned a method through the descriptor),
	// "static" (the built-in heuristic decided), or "tuned" (the
	// observation-fed tuner overrode the heuristic from measured history).
	// Empty for ops with no method choice. BENCH_2's selection audit and
	// the policy conformance tests read this field.
	Policy string `json:"policy,omitempty"`
	// Rows and Cols are the output dimensions.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// NnzA and NnzB are the stored-entry counts of the (oriented)
	// operands; NnzOut counts the kernel's raw output before the mask /
	// accumulate / replace write-back.
	NnzA   int  `json:"nnz_a,omitempty"`
	NnzB   int  `json:"nnz_b,omitempty"`
	NnzOut int  `json:"nnz_out,omitempty"`
	Masked bool `json:"masked,omitempty"`
	// EstFlops is the work estimate the scheduler partitioned by (the
	// same weight function workChunks saw). ActFlops is the exact
	// multiply count where the kernel can derive it from operand
	// structure at no cost (gustavson/heap/push); 0 means unknown —
	// dot and pull kernels exit rows early, so counting their actual
	// work would violate the zero-cost contract.
	EstFlops int64 `json:"est_flops,omitempty"`
	ActFlops int64 `json:"act_flops,omitempty"`
	// Pending and Zombies are the buffered-update counts an assembly
	// (Op "wait") consumed.
	Pending int `json:"pending,omitempty"`
	Zombies int `json:"zombies,omitempty"`
	// Chunks is how many work chunks the scheduler created (1 means the
	// op ran serially); MaxChunkFlops is the heaviest chunk's estimated
	// weight. MaxChunkFlops·Chunks/EstFlops ≥ 1 measures partition
	// imbalance: 1.0 is a perfect equal-weight split.
	Chunks        int   `json:"chunks,omitempty"`
	MaxChunkFlops int64 `json:"max_chunk_flops,omitempty"`
	// DurNanos is the op's wall time as measured by the observer's own
	// clock (see the clock seam note in the package doc).
	DurNanos int64 `json:"dur_nanos,omitempty"`
}

// IterRecord describes one iteration of an algorithm-level loop.
type IterRecord struct {
	// Algo names the loop: "bfs", "sssp", "pagerank", "hits", ...
	Algo string `json:"algo"`
	// Iter is the 1-based iteration (BFS depth, PageRank sweep, ...).
	Iter int `json:"iter"`
	// Frontier is the active-set size this iteration (BFS frontier
	// nvals, SSSP bucket size); 0 when the loop has no frontier notion.
	Frontier int `json:"frontier,omitempty"`
	// Dir is the traversal direction a direction-optimized step chose:
	// "push" or "pull". Empty for non-traversal loops.
	Dir string `json:"dir,omitempty"`
	// Residual is the convergence measure (L1 delta for PageRank/HITS).
	Residual float64 `json:"residual,omitempty"`
	// Warm marks an iteration of a warm-started (incremental) run: the
	// loop resumed from a prior result instead of the cold initial state,
	// so BENCH tables can attribute iterations-to-convergence savings.
	Warm bool `json:"warm,omitempty"`
	// DurNanos is the iteration's wall time.
	DurNanos int64 `json:"dur_nanos,omitempty"`
}

// Observer receives operation and iteration records. Implementations must
// be safe for concurrent use: kernels may emit from concurrent operations.
// Now is the injected clock — instrumented code calls it to bracket work,
// so a test observer can make durations deterministic.
type Observer interface {
	// Now returns the observer's monotonic clock reading in nanoseconds.
	Now() int64
	// Op records one kernel-level operation.
	Op(OpRecord)
	// Iter records one algorithm-loop iteration.
	Iter(IterRecord)
}

// active holds the process-wide observer. An atomic.Pointer to the
// interface value keeps the disabled check to a single atomic load.
var active atomic.Pointer[Observer]

// Set installs o as the process-wide observer (nil disables observation)
// and returns the previous observer, or nil. Safe to call concurrently
// with running operations: ops already in flight keep the observer they
// loaded.
func Set(o Observer) Observer {
	var p *Observer
	if o != nil {
		p = &o
	}
	prev := active.Swap(p)
	if prev == nil {
		return nil
	}
	return *prev
}

// Active returns the installed observer, or nil when observation is
// disabled. The nil return path performs one atomic load and no
// allocations — this is the per-op guard on every kernel hot path.
func Active() Observer {
	p := active.Load()
	if p == nil {
		return nil
	}
	return *p
}

// epoch anchors the package clock; readings are monotonic durations since
// process start, not wall timestamps, so they subtract safely.
var epoch = time.Now()

// Clock returns nanoseconds since the package epoch on the monotonic
// clock. Sinks in this package implement Observer.Now with it; kernel
// code never calls it directly (the purity check bans time in grb — the
// clock reaches kernels only through an Observer).
func Clock() int64 {
	return int64(time.Since(epoch))
}
