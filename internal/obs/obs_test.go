package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSetActiveRoundTrip(t *testing.T) {
	if Active() != nil {
		t.Fatal("observer should start disabled")
	}
	c := &Counters{}
	if prev := Set(c); prev != nil {
		t.Fatalf("Set on disabled state returned %v, want nil", prev)
	}
	if Active() != Observer(c) {
		t.Fatal("Active did not return the installed observer")
	}
	tr := NewTrace(8)
	if prev := Set(tr); prev != Observer(c) {
		t.Fatalf("Set did not return the previous observer, got %v", prev)
	}
	if prev := Set(nil); prev != Observer(tr) {
		t.Fatalf("Set(nil) did not return the previous observer, got %v", prev)
	}
	if Active() != nil {
		t.Fatal("Set(nil) should disable observation")
	}
}

func TestClockMonotonic(t *testing.T) {
	a := Clock()
	b := Clock()
	if b < a {
		t.Fatalf("clock went backwards: %d then %d", a, b)
	}
}

func TestCountersAggregate(t *testing.T) {
	c := &Counters{}
	base := c.Snapshot()
	c.Op(OpRecord{Op: "mxm", Kernel: "gustavson", EstFlops: 100, NnzOut: 7, DurNanos: 5})
	c.Op(OpRecord{Op: "mxm", Kernel: "dot", EstFlops: 50, NnzOut: 3})
	c.Op(OpRecord{Op: "vxm", Kernel: "push", EstFlops: 10, NnzOut: 2})
	c.Op(OpRecord{Op: "vxm", Kernel: "pull", EstFlops: 20, NnzOut: 1})
	c.Op(OpRecord{Op: "mxm", Kernel: "heap", EstFlops: 30, NnzOut: 4})
	c.Op(OpRecord{Op: "wait", Kernel: "assemble", Pending: 12, Zombies: 3})
	c.Iter(IterRecord{Algo: "bfs", Iter: 1})
	c.Iter(IterRecord{Algo: "bfs", Iter: 2})
	d := c.Snapshot().Sub(base)
	if d.Ops != 6 || d.Iters != 2 || d.Waits != 1 {
		t.Fatalf("ops/iters/waits = %d/%d/%d, want 6/2/1", d.Ops, d.Iters, d.Waits)
	}
	if d.Gustavson != 1 || d.Dot != 1 || d.Heap != 1 || d.Push != 1 || d.Pull != 1 {
		t.Fatalf("kernel counts = %+v", d)
	}
	if d.EstFlops != 210 || d.NnzOut != 17 || d.Pending != 12 || d.Zombies != 3 || d.DurNanos != 5 {
		t.Fatalf("aggregates = %+v", d)
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("snapshot must be JSON-marshalable: %v", err)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Op(OpRecord{Op: "mxm", Rows: i})
		tr.Iter(IterRecord{Algo: "bfs", Iter: i})
	}
	ops := tr.Ops()
	if len(ops) != 4 {
		t.Fatalf("retained %d ops, want 4", len(ops))
	}
	for k, r := range ops {
		if r.Rows != 6+k {
			t.Fatalf("ops[%d].Rows = %d, want %d (oldest-first order)", k, r.Rows, 6+k)
		}
	}
	iters := tr.Iters()
	if len(iters) != 4 || iters[0].Iter != 6 || iters[3].Iter != 9 {
		t.Fatalf("iters = %+v", iters)
	}
	doc := tr.Document()
	if doc.DroppedOps != 6 || doc.DroppedIters != 6 {
		t.Fatalf("dropped = %d/%d, want 6/6", doc.DroppedOps, doc.DroppedIters)
	}
}

func TestTraceWriteJSON(t *testing.T) {
	tr := NewTrace(16)
	tr.Op(OpRecord{Op: "mxm", Kernel: "gustavson", Rows: 3, Cols: 3, NnzOut: 5, Masked: true})
	tr.Iter(IterRecord{Algo: "bfs", Iter: 1, Frontier: 9, Dir: "push"})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc TraceDocument
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output does not round-trip: %v", err)
	}
	if doc.Schema != TraceSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, TraceSchema)
	}
	if len(doc.Ops) != 1 || doc.Ops[0].Kernel != "gustavson" || !doc.Ops[0].Masked {
		t.Fatalf("ops = %+v", doc.Ops)
	}
	if len(doc.Iters) != 1 || doc.Iters[0].Dir != "push" || doc.Iters[0].Frontier != 9 {
		t.Fatalf("iters = %+v", doc.Iters)
	}
}

// TestTraceConcurrent exercises the ring under concurrent emission; run
// with -race this is the data-race check for the mutex discipline.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Op(OpRecord{Op: "mxm", Rows: g, Cols: i})
				tr.Iter(IterRecord{Algo: "bfs", Iter: i})
			}
		}(g)
	}
	wg.Wait()
	doc := tr.Document()
	if got := int64(len(doc.Ops)) + doc.DroppedOps; got != 800 {
		t.Fatalf("retained+dropped ops = %d, want 800", got)
	}
	if got := int64(len(doc.Iters)) + doc.DroppedIters; got != 800 {
		t.Fatalf("retained+dropped iters = %d, want 800", got)
	}
}

// TestActiveZeroAlloc pins the disabled-path guarantee at the source: the
// Active() nil-check itself allocates nothing.
func TestActiveZeroAlloc(t *testing.T) {
	Set(nil)
	if n := testing.AllocsPerRun(100, func() {
		if Active() != nil {
			t.Fatal("unexpected observer")
		}
	}); n != 0 {
		t.Fatalf("Active() allocates %v times per run on the disabled path", n)
	}
}
