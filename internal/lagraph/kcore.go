package lagraph

import "lagraph/internal/grb"

// K-core decomposition in GraphBLAS form (the LAGraph_KCore algorithm):
// peel vertices of minimum remaining degree level by level; each peel is
// a select, a masked matrix-vector multiply counting the edges lost, and
// a degree update — no explicit adjacency-list surgery.

// KCore returns the core number of every vertex of an undirected graph.
func KCore(g *Graph) (*grb.Vector[int64], error) {
	if err := g.requireUndirected(); err != nil {
		return nil, err
	}
	n := g.N()
	core := grb.MustVector[int64](n)

	// Remaining degrees; vertices with no edges have core 0 and are never
	// touched below (they hold no entry in deg).
	deg := g.OutDegree().Dup()
	plusPair := grb.Semiring[float64, int64, int64]{Add: grb.PlusMonoid[int64](), Mul: grb.Pair[float64, int64, int64]()}

	k := int64(0)
	for deg.Nvals() > 0 {
		minDeg, err := grb.ReduceVectorToScalar(grb.MinMonoid[int64](), deg)
		if err != nil {
			return nil, err
		}
		if minDeg > k {
			k = minDeg
		}
		// Peel everything of remaining degree ≤ k until none is left.
		for {
			frontier := grb.MustVector[int64](n)
			if err := grb.SelectVector[int64, bool](frontier, nil, nil,
				func(d int64, _, _ int) bool { return d <= k }, deg, nil); err != nil {
				return nil, err
			}
			if frontier.Nvals() == 0 {
				break
			}
			// core⟨frontier⟩ = k
			if err := grb.AssignVectorScalar(core, frontier, nil, k, grb.All, nil); err != nil {
				return nil, err
			}
			// Remove the peeled vertices from deg.
			fi, _ := frontier.ExtractTuples()
			for _, v := range fi {
				_ = deg.RemoveElement(v)
			}
			// lost(i) = edges from i into the peeled set; deg⟨struct⟩ -= lost.
			lost := grb.MustVector[int64](n)
			if err := grb.MxV(lost, deg, nil, plusPair, g.A, frontier, nil); err != nil {
				return nil, err
			}
			if err := grb.EWiseAddVector[int64, bool](deg, nil, nil,
				grb.Minus[int64](), deg, lost, nil); err != nil {
				return nil, err
			}
		}
	}
	return core, nil
}

// Coreness returns the largest k for which a non-empty k-core exists (the
// graph's degeneracy).
func Coreness(g *Graph) (int64, error) {
	core, err := KCore(g)
	if err != nil {
		return 0, err
	}
	if core.Nvals() == 0 {
		return 0, nil
	}
	return grb.ReduceVectorToScalar(grb.MaxMonoid[int64](), core)
}
