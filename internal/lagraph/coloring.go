package lagraph

import (
	"math/rand"

	"lagraph/internal/grb"
)

// Graph coloring (§V, [40]): independent-set based colouring in the
// Jones–Plassmann style — in each round, the uncoloured vertices whose
// random priority beats all uncoloured neighbours receive the current
// colour, exactly the formulation Osama et al. evaluate on GPUs.

// Coloring assigns a colour (1-based) to every vertex such that
// neighbours differ, and returns the colour vector and the number of
// colours used.
func Coloring(g *Graph, seed int64) (*grb.Vector[int32], int, error) {
	if err := g.requireUndirected(); err != nil {
		return nil, 0, err
	}
	n := g.N()
	rng := rand.New(rand.NewSource(seed))

	// Fixed random priorities, tie-broken by vertex id.
	prio := make([]float64, n)
	for i := range prio {
		prio[i] = rng.Float64() + float64(i)*1e-12
	}
	prioVec := grb.DenseVector(prio)

	colour := grb.MustVector[int32](n)
	uncoloured := grb.MustVector[bool](n)
	for i := 0; i < n; i++ {
		_ = uncoloured.SetElement(i, true)
	}
	maxSecond := grb.Semiring[float64, float64, float64]{Add: grb.MaxMonoid[float64](), Mul: grb.Second[float64, float64]()}

	for c := int32(1); ; c++ {
		if uncoloured.Nvals() == 0 {
			return colour, int(c - 1), nil
		}
		if int(c) > n+1 {
			return nil, 0, ErrNoConvergence
		}
		// Priorities restricted to uncoloured vertices.
		p := grb.MustVector[float64](n)
		if err := grb.ExtractVector(p, uncoloured, nil, prioVec, grb.All, nil); err != nil {
			return nil, 0, err
		}
		// nbMax(i) = max priority among uncoloured neighbours.
		nbMax := grb.MustVector[float64](n)
		if err := grb.MxV(nbMax, uncoloured, nil, maxSecond, g.A, p, nil); err != nil {
			return nil, 0, err
		}
		// winners: uncoloured vertices beating all uncoloured neighbours.
		beats := grb.MustVector[bool](n)
		if err := grb.EWiseMultVector[float64, float64, bool, bool](beats, nil, nil, grb.Gt[float64](), p, nbMax, nil); err != nil {
			return nil, 0, err
		}
		if err := grb.SelectVector[bool, bool](beats, nil, nil, grb.ValueEQ(true), beats, nil); err != nil {
			return nil, 0, err
		}
		winners := grb.MustVector[bool](n)
		if err := grb.ExtractVector(winners, nbMax, nil, uncoloured, grb.All, grb.DescC); err != nil {
			return nil, 0, err
		}
		if err := grb.EWiseAddVector[bool, bool](winners, nil, nil, grb.LOr(), winners, beats, nil); err != nil {
			return nil, 0, err
		}
		if winners.Nvals() == 0 {
			// With distinct priorities some vertex always wins; guard
			// against pathological ties anyway.
			continue
		}
		// colour⟨winners⟩ = c; remove winners from the uncoloured pool.
		if err := grb.AssignVectorScalar(colour, winners, nil, c, grb.All, nil); err != nil {
			return nil, 0, err
		}
		next := grb.MustVector[bool](n)
		if err := grb.ExtractVector(next, winners, nil, uncoloured, grb.All, grb.DescC); err != nil {
			return nil, 0, err
		}
		uncoloured = next
	}
}

// VerifyColoring checks that adjacent vertices received different
// colours and every vertex is coloured.
func VerifyColoring(g *Graph, colour *grb.Vector[int32]) bool {
	if colour.Nvals() != g.N() {
		return false
	}
	// conflict(i,j) exists when A(i,j) present and colour(i)==colour(j):
	// check rows via gathered tuples.
	is, js, _ := g.A.ExtractTuples()
	ci, cx := colour.ExtractTuples()
	lookup := make(map[int]int32, len(ci))
	for k := range ci {
		lookup[ci[k]] = cx[k]
	}
	for k := range is {
		if is[k] != js[k] && lookup[is[k]] == lookup[js[k]] {
			return false
		}
	}
	return true
}
