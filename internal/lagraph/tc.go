package lagraph

import "lagraph/internal/grb"

// Triangle counting (§V, [34], [35]) in four classic linear-algebra
// formulations, and k-truss (§V, [36], [37]). All require undirected
// graphs; self loops are ignored by masking to the strict triangles.

// TCMethod selects the triangle counting formulation.
type TCMethod int

const (
	// TCBurkhardt computes sum(A²∘A)/6: the masked square of the full
	// adjacency.
	TCBurkhardt TCMethod = iota
	// TCCohen computes sum(L·U ∘ A)/2 with L/U the lower/upper triangles.
	TCCohen
	// TCSandiaLL computes sum(L·L ∘ L): each triangle counted once.
	TCSandiaLL
	// TCSandiaDot computes sum(L·Uᵀ ∘ L) using the dot-product kernel —
	// the formulation that showcases the masked dot mxm (§II-A).
	TCSandiaDot
)

// TriangleCount counts the triangles of an undirected graph.
func TriangleCount(g *Graph, method TCMethod, opts ...Option) (int64, error) {
	if err := g.requireUndirected(); err != nil {
		return 0, err
	}
	cfg := newOptions(opts)
	if err := cfg.canceled(); err != nil {
		return 0, err
	}
	a := g.PatternInt64()
	n := a.Nrows()
	offDiag := grb.MustMatrix[int64](n, n)
	if err := grb.SelectMatrix[int64, bool](offDiag, nil, nil, grb.OffDiag[int64](), a, nil); err != nil {
		return 0, err
	}
	a = offDiag

	plusPair := grb.PlusPair[int64, int64, int64]()
	switch method {
	case TCBurkhardt:
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, a, nil, plusPair, a, a, nil); err != nil {
			return 0, err
		}
		total, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)
		if err != nil {
			return 0, err
		}
		return total / 6, nil

	case TCCohen:
		l, u, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, a, nil, plusPair, l, u, nil); err != nil {
			return 0, err
		}
		total, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)
		if err != nil {
			return 0, err
		}
		return total / 2, nil

	case TCSandiaLL:
		l, _, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, l, nil, plusPair, l, l, &grb.Descriptor{Method: grb.MxMGustavson}); err != nil {
			return 0, err
		}
		return grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)

	case TCSandiaDot:
		l, u, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		// L·Uᵀ with the dot kernel: Uᵀ's rows are U's columns, and the
		// mask L keeps the output pattern sparse.
		c := grb.MustMatrix[int64](n, n)
		d := &grb.Descriptor{TranB: true, Method: grb.MxMDot}
		if err := grb.MxM(c, l, nil, plusPair, l, u, d); err != nil {
			return 0, err
		}
		return grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)
	}
	return 0, ErrBadArgument
}

// trilTriu splits a into strict lower and strict upper triangles.
func trilTriu(a *grb.Matrix[int64]) (l, u *grb.Matrix[int64], err error) {
	n := a.Nrows()
	l = grb.MustMatrix[int64](n, n)
	u = grb.MustMatrix[int64](n, n)
	if err := grb.SelectMatrix[int64, bool](l, nil, nil, grb.Tril[int64](-1), a, nil); err != nil {
		return nil, nil, err
	}
	if err := grb.SelectMatrix[int64, bool](u, nil, nil, grb.Triu[int64](1), a, nil); err != nil {
		return nil, nil, err
	}
	return l, u, nil
}

// KTruss computes the k-truss of an undirected graph: the maximal
// subgraph in which every edge supports at least k-2 triangles. It
// returns the truss adjacency with entries holding the per-edge support.
// Formulation of Davis [36]: iterate C⟨C⟩ = C plus.pair C, then drop
// edges with support < k-2.
func KTruss(g *Graph, k int, opts ...Option) (*grb.Matrix[int64], error) {
	if err := g.requireUndirected(); err != nil {
		return nil, err
	}
	if k < 3 {
		return nil, ErrBadArgument
	}
	cfg := newOptions(opts)
	n := g.N()
	c := grb.MustMatrix[int64](n, n)
	if err := grb.SelectMatrix[int64, bool](c, nil, nil, grb.OffDiag[int64](), g.PatternInt64(), nil); err != nil {
		return nil, err
	}
	support := int64(k - 2)
	plusPair := grb.PlusPair[int64, int64, int64]()
	for iter := 0; iter <= n; iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		// C⟨C,replace⟩ = C plus.pair C : support of every surviving edge.
		z := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(z, c, nil, plusPair, c, c, grb.DescR); err != nil {
			return nil, err
		}
		// Keep edges with enough support.
		if err := grb.SelectMatrix[int64, bool](z, nil, nil, grb.ValueGE(support), z, nil); err != nil {
			return nil, err
		}
		if z.Nvals() == c.Nvals() {
			// Also require identical pattern: counts equal suffices here
			// because z's pattern is a subset of c's.
			return z, nil
		}
		c = z
		if c.Nvals() == 0 {
			return c, nil
		}
	}
	return nil, ErrNoConvergence
}
