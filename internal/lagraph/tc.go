package lagraph

import (
	"sort"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// Triangle counting (§V, [34], [35]) as the full method family of the
// LAGraph evolution study — Burkhardt, Cohen, and the Sandia variants over
// both triangles and both multiply orientations — plus degree presort, and
// k-truss (§V, [36], [37]). All require undirected graphs; self loops are
// ignored by masking to the strict triangles.

// TCMethod selects the triangle counting formulation. The zero value is
// TCBurkhardt; TCAuto lets the library choose.
type TCMethod int

const (
	// TCBurkhardt computes sum(A²∘A)/6: the masked square of the full
	// adjacency.
	TCBurkhardt TCMethod = iota
	// TCCohen computes sum(L·U ∘ A)/2 with L/U the lower/upper triangles.
	TCCohen
	// TCSandiaLL computes sum(L·L ∘ L): each triangle counted once.
	TCSandiaLL
	// TCSandiaDot computes sum(L·Uᵀ ∘ L) using the dot-product kernel —
	// the formulation that showcases the masked dot mxm (§II-A). In the
	// LAGraph family naming this is SandiaLUT; TCSandiaLUT aliases it.
	TCSandiaDot
	// TCSandiaUU computes sum(U·U ∘ U): SandiaLL over the upper triangle.
	TCSandiaUU
	// TCSandiaULT computes sum(U·Lᵀ ∘ U) with the dot kernel: the
	// transpose-orientation twin of SandiaLUT.
	TCSandiaULT
	// TCAuto picks the plan for the graph: the saxpy SandiaLL
	// formulation, paired (unless the caller chose a presort explicitly)
	// with TCSortAuto so that skewed orderings are repaired exactly when
	// the work estimate says the relabeling pays.
	TCAuto
)

// TCSandiaLUT is the LAGraph family name for TCSandiaDot (L·Uᵀ masked by
// L, computed with the dot kernel).
const TCSandiaLUT = TCSandiaDot

// tcMethodNames renders methods for iteration traces.
var tcMethodNames = map[TCMethod]string{
	TCBurkhardt: "burkhardt",
	TCCohen:     "cohen",
	TCSandiaLL:  "sandia-ll",
	TCSandiaDot: "sandia-lut",
	TCSandiaUU:  "sandia-uu",
	TCSandiaULT: "sandia-ult",
	TCAuto:      "auto",
}

// TCPresort selects the degree ordering applied to the graph before
// counting. Relabeling vertices by ascending degree drastically evens out
// the saxpy work of the LL formulation on skewed (power-law) graphs: a
// hub relabeled to the highest index never appears as an inner index k,
// so its long L row is never replayed into other rows' accumulations.
// Descending order does the same for UU. The dot-product formulations are
// different: their per-entry merge cost is |L(i,:)|+|U(j,:)|, and pushing
// all hubs to one end concentrates those lengths instead of spreading
// them, so sorting does not pay there (TCSortAuto leaves them alone).
// The count is invariant under any vertex relabeling, so the permutation
// needs no inverse on output — it is applied once, counted, and
// discarded.
type TCPresort int

const (
	// TCNoSort counts on the input ordering (the zero value).
	TCNoSort TCPresort = iota
	// TCSortAscending relabels vertices by ascending degree.
	TCSortAscending
	// TCSortDescending relabels vertices by descending degree.
	TCSortDescending
	// TCSortAuto sorts only when the estimated saxpy work of the natural
	// ordering (Σᵥ d₋(v)·d₊(v), the exact inner-loop count of the LL
	// formulation) exceeds tcSortWorkFactor× the entry count — the
	// regime where hubs sit mid-ordering and their rows are replayed —
	// and only for the methods whose shape the ordering helps.
	TCSortAuto
)

// tcPresortNames renders presorts for iteration traces.
var tcPresortNames = map[TCPresort]string{
	TCNoSort:         "none",
	TCSortAscending:  "ascending",
	TCSortDescending: "descending",
	TCSortAuto:       "auto",
}

// tcSortWorkFactor: TCSortAuto engages when the natural ordering's
// estimated saxpy work exceeds this many multiples of the entry count
// (the rebuild the sort costs is itself a small multiple of nnz).
const tcSortWorkFactor = 4

// TriangleCount counts the triangles of an undirected graph. method picks
// the formulation (WithMethod overrides it, so callers using options can
// pass TCAuto here); WithPresort selects the degree relabeling.
func TriangleCount(g *Graph, method TCMethod, opts ...Option) (int64, error) {
	if err := g.requireUndirected(); err != nil {
		return 0, err
	}
	cfg := newOptions(opts)
	if err := cfg.canceled(); err != nil {
		return 0, err
	}
	if cfg.MethodSet {
		method = cfg.Method
	}
	if method < TCBurkhardt || method > TCAuto {
		return 0, ErrBadArgument
	}
	presort := cfg.Presort
	if presort < TCNoSort || presort > TCSortAuto {
		return 0, ErrBadArgument
	}

	a := g.PatternInt64()
	n := a.Nrows()
	offDiag := grb.MustMatrix[int64](n, n)
	if err := grb.SelectMatrix[int64, bool](offDiag, nil, nil, grb.OffDiag[int64](), a, nil); err != nil {
		return 0, err
	}
	a = offDiag

	if method == TCAuto {
		// The saxpy LL formulation: on well-ordered graphs its masked
		// Gustavson pass does exactly Σ d₋·d₊ work (the family's
		// measured best), and pairing it with the auto presort repairs
		// the orderings where that estimate blows up.
		method = TCSandiaLL
		if !cfg.PresortSet {
			presort = TCSortAuto
		}
	}
	dir := tcResolvePresort(a, method, presort)
	if dir != 0 {
		var err error
		if a, err = tcPermuteByDegree(a, dir); err != nil {
			return 0, err
		}
	}

	// Trace the resolved plan: method and presort are runtime decisions
	// when the caller passed TCAuto / TCSortAuto, and BENCH_2's selection
	// audit reads them back from here.
	if ob := cfg.observer(); ob != nil {
		sorted := "unsorted"
		if dir > 0 {
			sorted = "sorted-ascending"
		} else if dir < 0 {
			sorted = "sorted-descending"
		}
		ob.Iter(obs.IterRecord{
			Algo: "tc", Iter: 1,
			Dir:      tcMethodNames[method] + "/" + sorted,
			Frontier: a.Nvals(),
		})
	}
	if err := cfg.canceled(); err != nil {
		return 0, err
	}
	return tcCount(a, method)
}

// tcResolvePresort turns the requested presort into a concrete direction:
// +1 ascending, -1 descending, 0 none.
func tcResolvePresort(a *grb.Matrix[int64], method TCMethod, presort TCPresort) int {
	switch presort {
	case TCSortAscending:
		return 1
	case TCSortDescending:
		return -1
	case TCSortAuto:
		// Sorting costs an O(nnz) rebuild; it pays only when the
		// method's triangle shape can exploit the ordering — the saxpy
		// formulations LL and UU, whose inner-index replay the
		// relabeling removes — and only when the natural ordering is
		// actually bad. Σᵥ d₋(v)·d₊(v) is the exact saxpy inner-loop
		// count of LL (and, symmetrically, UU) on the ordering as given:
		// a hub already first or last contributes nothing, a hub
		// mid-ordering contributes ~deg²/4. The dot formulations and the
		// full-matrix methods see no benefit (measured: on a power-law
		// graph an ascending sort inflates the masked-dot merge work by
		// orders of magnitude), so auto never sorts them.
		var prefer int
		switch method {
		case TCSandiaLL:
			prefer = 1
		case TCSandiaUU:
			prefer = -1
		default:
			return 0
		}
		work, total := tcNaturalWork(a)
		if total == 0 {
			return 0
		}
		if work > tcSortWorkFactor*total {
			return prefer
		}
		return 0
	}
	return 0
}

// tcNaturalWork estimates the saxpy triangle work of the input ordering:
// for each vertex the product of its below-diagonal and above-diagonal
// degrees, summed, alongside the total entry count. This is the exact
// multiply count of the LL formulation's masked Gustavson pass (each
// entry k of row i's strict lower triangle replays L(k,:), whose length
// is d₋(k); k appears as such an inner index d₊(k) times).
func tcNaturalWork(a *grb.Matrix[int64]) (work, total int64) {
	is, js, _ := a.ExtractTuples()
	n := a.Nrows()
	dlo := make([]int32, n)
	dhi := make([]int32, n)
	for k := range is {
		if js[k] < is[k] {
			dlo[is[k]]++
		} else if js[k] > is[k] {
			dhi[is[k]]++
		}
	}
	for v := 0; v < n; v++ {
		work += int64(dlo[v]) * int64(dhi[v])
		total += int64(dlo[v]) + int64(dhi[v])
	}
	return work, total
}

// tcPermuteByDegree relabels the graph's vertices by degree (dir > 0
// ascending, dir < 0 descending), breaking ties on the original index so
// the permutation — and therefore every downstream kernel input — is
// deterministic. The triangle count is invariant under relabeling, so
// the permuted matrix simply replaces the original.
func tcPermuteByDegree(a *grb.Matrix[int64], dir int) (*grb.Matrix[int64], error) {
	n := a.Nrows()
	is, js, xs := a.ExtractTuples()
	deg := make([]int, n)
	for _, i := range is {
		deg[i]++
	}
	perm := make([]int, n) // perm[newIdx] = oldIdx
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(u, v int) bool {
		du, dv := deg[perm[u]], deg[perm[v]]
		if du != dv {
			if dir > 0 {
				return du < dv
			}
			return du > dv
		}
		return perm[u] < perm[v]
	})
	pinv := make([]int, n) // pinv[oldIdx] = newIdx
	for newI, oldI := range perm {
		pinv[oldI] = newI
	}
	for k := range is {
		is[k] = pinv[is[k]]
		js[k] = pinv[js[k]]
	}
	p := grb.MustMatrix[int64](n, n)
	if err := p.Build(is, js, xs, grb.Second[int64, int64]()); err != nil {
		return nil, err
	}
	return p, nil
}

// tcCount runs one concrete formulation over the prepared off-diagonal
// adjacency.
func tcCount(a *grb.Matrix[int64], method TCMethod) (int64, error) {
	n := a.Nrows()
	plusPair := grb.PlusPair[int64, int64, int64]()
	switch method {
	case TCBurkhardt:
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, a, nil, plusPair, a, a, nil); err != nil {
			return 0, err
		}
		total, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)
		if err != nil {
			return 0, err
		}
		return total / 6, nil

	case TCCohen:
		l, u, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, a, nil, plusPair, l, u, nil); err != nil {
			return 0, err
		}
		total, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)
		if err != nil {
			return 0, err
		}
		return total / 2, nil

	case TCSandiaLL:
		l, _, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, l, nil, plusPair, l, l, &grb.Descriptor{Method: grb.MxMGustavson}); err != nil {
			return 0, err
		}
		return grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)

	case TCSandiaUU:
		_, u, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		c := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(c, u, nil, plusPair, u, u, &grb.Descriptor{Method: grb.MxMGustavson}); err != nil {
			return 0, err
		}
		return grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)

	case TCSandiaDot:
		l, u, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		// L·Uᵀ with the dot kernel: Uᵀ's rows are U's columns, and the
		// mask L keeps the output pattern sparse.
		c := grb.MustMatrix[int64](n, n)
		d := &grb.Descriptor{TranB: true, Method: grb.MxMDot}
		if err := grb.MxM(c, l, nil, plusPair, l, u, d); err != nil {
			return 0, err
		}
		return grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)

	case TCSandiaULT:
		l, u, err := trilTriu(a)
		if err != nil {
			return 0, err
		}
		// U·Lᵀ with the dot kernel, masked by U: the mirror image of
		// SandiaLUT.
		c := grb.MustMatrix[int64](n, n)
		d := &grb.Descriptor{TranB: true, Method: grb.MxMDot}
		if err := grb.MxM(c, u, nil, plusPair, u, l, d); err != nil {
			return 0, err
		}
		return grb.ReduceMatrixToScalar(grb.PlusMonoid[int64](), c)
	}
	return 0, ErrBadArgument
}

// trilTriu splits a into strict lower and strict upper triangles.
func trilTriu(a *grb.Matrix[int64]) (l, u *grb.Matrix[int64], err error) {
	n := a.Nrows()
	l = grb.MustMatrix[int64](n, n)
	u = grb.MustMatrix[int64](n, n)
	if err := grb.SelectMatrix[int64, bool](l, nil, nil, grb.Tril[int64](-1), a, nil); err != nil {
		return nil, nil, err
	}
	if err := grb.SelectMatrix[int64, bool](u, nil, nil, grb.Triu[int64](1), a, nil); err != nil {
		return nil, nil, err
	}
	return l, u, nil
}

// KTruss computes the k-truss of an undirected graph: the maximal
// subgraph in which every edge supports at least k-2 triangles. It
// returns the truss adjacency with entries holding the per-edge support.
// Formulation of Davis [36]: iterate C⟨C⟩ = C plus.pair C, then drop
// edges with support < k-2.
func KTruss(g *Graph, k int, opts ...Option) (*grb.Matrix[int64], error) {
	if err := g.requireUndirected(); err != nil {
		return nil, err
	}
	if k < 3 {
		return nil, ErrBadArgument
	}
	cfg := newOptions(opts)
	n := g.N()
	c := grb.MustMatrix[int64](n, n)
	if err := grb.SelectMatrix[int64, bool](c, nil, nil, grb.OffDiag[int64](), g.PatternInt64(), nil); err != nil {
		return nil, err
	}
	support := int64(k - 2)
	plusPair := grb.PlusPair[int64, int64, int64]()
	for iter := 0; iter <= n; iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		// C⟨C,replace⟩ = C plus.pair C : support of every surviving edge.
		z := grb.MustMatrix[int64](n, n)
		if err := grb.MxM(z, c, nil, plusPair, c, c, grb.DescR); err != nil {
			return nil, err
		}
		// Keep edges with enough support.
		if err := grb.SelectMatrix[int64, bool](z, nil, nil, grb.ValueGE(support), z, nil); err != nil {
			return nil, err
		}
		if z.Nvals() == c.Nvals() {
			// Also require identical pattern: counts equal suffices here
			// because z's pattern is a subset of c's.
			return z, nil
		}
		c = z
		if c.Nvals() == 0 {
			return c, nil
		}
	}
	return nil, ErrNoConvergence
}
