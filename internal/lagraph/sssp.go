package lagraph

import (
	"math"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// Single-source shortest paths (§V): a Bellman-Ford formulation over the
// (min,+) semiring, and the delta-stepping formulation of Sridhar et
// al. [32] used by LAGraph.

// SSSPBellmanFord iterates d ← d min.+ (dᵀA) until the distance vector
// reaches a fixed point. Edge weights must be non-negative (no negative
// cycle detection). Unreached vertices hold no entry.
func SSSPBellmanFord(g *Graph, src int, opts ...Option) (*grb.Vector[float64], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	cfg := newOptions(opts)
	ob := cfg.observer()
	n := g.N()
	d := grb.MustVector[float64](n)
	_ = d.SetElement(src, 0)
	minPlus := grb.MinPlus[float64]()
	for iter := 0; iter < cfg.maxIter(n); iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		prevN := d.Nvals()
		prevSum, err := grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), d)
		if err != nil {
			return nil, err
		}
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		// d ← d min (d min.+ A)
		if err := grb.VxM(d, (*grb.Vector[bool])(nil), grb.MinOp[float64](), minPlus, d, g.A, nil); err != nil {
			return nil, err
		}
		curSum, err := grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), d)
		if err != nil {
			return nil, err
		}
		if ob != nil {
			ob.Iter(obs.IterRecord{Algo: "sssp-bf", Iter: iter + 1, Frontier: d.Nvals(),
				Residual: math.Abs(curSum - prevSum), DurNanos: ob.Now() - t0})
		}
		if d.Nvals() == prevN && curSum == prevSum {
			return d, nil
		}
	}
	return d, nil
}

// SSSP is the Options-based single-source shortest-path entry point:
// delta-stepping with a configurable bucket width (WithDelta; default 2).
// Weights must be non-negative.
func SSSP(g *Graph, src int, opts ...Option) (*grb.Vector[float64], error) {
	cfg := newOptions(opts)
	delta := cfg.Delta
	if delta == 0 {
		delta = 2
	}
	if delta <= 0 {
		return nil, ErrBadArgument
	}
	return ssspDelta(g, src, delta, &cfg)
}

// ssspDelta is the delta-stepping core: vertices are processed in distance
// buckets of width delta; light edges (< delta) are relaxed repeatedly
// inside the bucket, heavy edges once per bucket.
func ssspDelta(g *Graph, src int, delta float64, cfg *Options) (*grb.Vector[float64], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	ob := cfg.observer()
	n := g.N()

	// Split the adjacency into light and heavy edge matrices.
	light := grb.MustMatrix[float64](n, n)
	heavy := grb.MustMatrix[float64](n, n)
	if err := grb.SelectMatrix[float64, bool](light, nil, nil, grb.ValueLT(delta), g.A, nil); err != nil {
		return nil, err
	}
	if err := grb.SelectMatrix[float64, bool](heavy, nil, nil, grb.ValueGE(delta), g.A, nil); err != nil {
		return nil, err
	}

	t := grb.MustVector[float64](n) // tentative distances
	_ = t.SetElement(src, 0)
	minPlus := grb.MinPlus[float64]()

	for step := 0; ; step++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		lo := float64(step) * delta
		hi := lo + delta
		// tBucket: tentative distances inside the current bucket.
		inBucket := func(x float64, _, _ int) bool { return x >= lo && x < hi }
		tReq := grb.MustVector[float64](n)
		if err := grb.SelectVector[float64, bool](tReq, nil, nil, inBucket, t, nil); err != nil {
			return nil, err
		}
		bucketSize := tReq.Nvals()
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		if bucketSize == 0 {
			// Any vertex left beyond this bucket?
			remaining := grb.MustVector[float64](n)
			if err := grb.SelectVector[float64, bool](remaining, nil, nil, grb.ValueGE(hi), t, nil); err != nil {
				return nil, err
			}
			if remaining.Nvals() == 0 {
				return t, nil
			}
			continue
		}
		// Relax light edges to a fixed point within the bucket.
		for inner := 0; inner < n; inner++ {
			// tNew = tReq min.+ light, folded into t.
			before := snapshotSum(t)
			if err := grb.VxM(t, (*grb.Vector[bool])(nil), grb.MinOp[float64](), minPlus, tReq, light, nil); err != nil {
				return nil, err
			}
			// Next inner frontier: bucket members whose distance changed
			// into this bucket.
			if err := grb.SelectVector[float64, bool](tReq, nil, nil, inBucket, t, grb.DescR); err != nil {
				return nil, err
			}
			if snapshotSum(t) == before {
				break
			}
		}
		// Settle the bucket: relax heavy edges once from all bucket
		// members.
		if err := grb.SelectVector[float64, bool](tReq, nil, nil, inBucket, t, grb.DescR); err != nil {
			return nil, err
		}
		if tReq.Nvals() > 0 {
			if err := grb.VxM(t, (*grb.Vector[bool])(nil), grb.MinOp[float64](), minPlus, tReq, heavy, nil); err != nil {
				return nil, err
			}
		}
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "sssp", Iter: step + 1,
				Frontier: bucketSize,
				DurNanos: ob.Now() - t0,
			})
		}
		// Termination: every remaining tentative distance below hi is
		// settled; stop when nothing at or beyond hi remains.
		remaining := grb.MustVector[float64](n)
		if err := grb.SelectVector[float64, bool](remaining, nil, nil, grb.ValueGE(hi), t, nil); err != nil {
			return nil, err
		}
		if remaining.Nvals() == 0 {
			return t, nil
		}
	}
}

// snapshotSum is a cheap fixed-point detector: the (finite) distance sum
// is strictly decreasing under relaxation.
func snapshotSum(v *grb.Vector[float64]) float64 {
	s, err := grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), v)
	if err != nil {
		return math.NaN()
	}
	return s*1e6 + float64(v.Nvals())
}

// APSP computes all-pairs shortest paths by (min,+) repeated squaring:
// D ← D min.+ D until a fixed point, starting from the adjacency with a
// zero diagonal. O(n³ log n) worst case — intended for modest n, as in
// the Solomonik-Buluç-Demmel formulation the paper cites [33].
func APSP(g *Graph, opts ...Option) (*grb.Matrix[float64], error) {
	cfg := newOptions(opts)
	n := g.N()
	d := g.A.Dup()
	// Zero diagonal: d(i,i) = 0.
	for i := 0; i < n; i++ {
		if err := d.SetElement(i, i, 0); err != nil {
			return nil, err
		}
	}
	minPlus := grb.MinPlus[float64]()
	maxIter := 1
	for m := 1; m < n; m *= 2 {
		maxIter++
	}
	for iter := 0; iter < maxIter; iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		prev := d.Nvals()
		sum, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), d)
		if err != nil {
			return nil, err
		}
		// d ← d min (d min.+ d)
		if err := grb.MxM(d, (*grb.Matrix[bool])(nil), grb.MinOp[float64](), minPlus, d, d, nil); err != nil {
			return nil, err
		}
		sum2, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), d)
		if err != nil {
			return nil, err
		}
		if d.Nvals() == prev && sum == sum2 {
			break
		}
	}
	return d, nil
}
