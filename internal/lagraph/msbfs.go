package lagraph

import "lagraph/internal/grb"

// Multi-source BFS: a batch of traversals carried as one ns×n frontier
// matrix, the building block of batched betweenness centrality and
// all-pairs reachability studies (Buluç–Madduri [31] generalized). Each
// iteration is a single masked mxm — the formulation's entire point.

// MSBFSLevels runs BFS from every source simultaneously and returns the
// ns×n level matrix: levels(s,v) is the 0-based depth of v from
// sources[s]; unreached pairs hold no entry.
func MSBFSLevels(g *Graph, sources []int) (*grb.Matrix[int32], error) {
	n := g.N()
	ns := len(sources)
	if ns == 0 {
		return grb.MustMatrix[int32](0, n), nil
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, ErrBadArgument
		}
	}
	levels := grb.MustMatrix[int32](ns, n)
	frontier := grb.MustMatrix[bool](ns, n)
	for s, src := range sources {
		_ = frontier.SetElement(s, src, true)
	}
	logical := grb.Semiring[bool, float64, bool]{Add: grb.LOrMonoid(), Mul: grb.First[bool, float64]()}
	depth := int32(0)
	for frontier.Nvals() > 0 {
		// levels⟨frontier⟩ = depth
		if err := grb.AssignMatrixScalar(levels, frontier, nil, depth, grb.All, grb.All, nil); err != nil {
			return nil, err
		}
		// frontier⟨¬levels,replace⟩ = frontier ⊕.⊗ A
		next := grb.MustMatrix[bool](ns, n)
		if err := grb.MxM(next, levels, nil, logical, frontier, g.A, grb.DescRC); err != nil {
			return nil, err
		}
		frontier = next
		depth++
	}
	return levels, nil
}

// ReachabilityCount returns, for each source in the batch, how many
// vertices its BFS reaches (including itself).
func ReachabilityCount(g *Graph, sources []int) ([]int, error) {
	levels, err := MSBFSLevels(g, sources)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(sources))
	is, _, _ := levels.ExtractTuples()
	for _, s := range is {
		counts[s]++
	}
	return counts, nil
}
