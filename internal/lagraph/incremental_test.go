// Metamorphic equivalence battery for the incremental algorithms: every
// warm-started run must agree with a full recompute on the mutated
// graph — bitwise for CC and BFS (insert-only deltas), to the
// contraction bound for PageRank (any delta). The fuzzer drives random
// delta sequences (dup edges, self-loops, repeated batches) through
// both paths at SetParallelism(1) and SetParallelism(8), so the seed
// corpus doubles as a determinism check under `go test -race`.
package lagraph_test

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

// deltaGraph builds the scale-8 power-law fixture used across the
// incremental tests.
func deltaGraph(t testing.TB, kind lagraph.Kind) *lagraph.Graph {
	t.Helper()
	n := 1 << 8
	e := gen.PowerLaw(n, 8*n, 1.8, gen.Config{Seed: 42, Undirected: kind == lagraph.Undirected, NoSelfLoops: true})
	g, err := lagraph.NewGraph(e.Matrix(), kind)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// applyInserts lands insert edges on g the way the service's ingest path
// does (SetElements, mirrored for undirected, cache invalidated) and
// returns the matching Delta record.
func applyInserts(t testing.TB, g *lagraph.Graph, src, dst []int) *lagraph.Delta {
	t.Helper()
	is := make([]int, 0, 2*len(src))
	js := make([]int, 0, 2*len(src))
	xs := make([]float64, 0, 2*len(src))
	for k := range src {
		is, js, xs = append(is, src[k]), append(js, dst[k]), append(xs, 1)
		if g.Kind == lagraph.Undirected && src[k] != dst[k] {
			is, js, xs = append(is, dst[k]), append(js, src[k]), append(xs, 1)
		}
	}
	if err := g.A.SetElements(is, js, xs, nil); err != nil {
		t.Fatal(err)
	}
	g.InvalidateCache()
	return &lagraph.Delta{AddSrc: src, AddDst: dst}
}

func vecBytes[T any](t testing.TB, v *grb.Vector[T]) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := grb.SerializeVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIncrementalCCEquivalence(t *testing.T) {
	for _, kind := range []lagraph.Kind{lagraph.Undirected, lagraph.Directed} {
		g := deltaGraph(t, kind)
		prior, err := lagraph.ConnectedComponentsWith(g)
		if err != nil {
			t.Fatal(err)
		}
		// Bridge edges between far-apart ids plus a duplicate and a
		// self-loop: the delta shapes ingest actually produces.
		delta := applyInserts(t, g, []int{3, 100, 3, 7}, []int{200, 50, 200, 7})
		inc, err := lagraph.IncrementalCC(g, prior.Labels, delta)
		if err != nil {
			t.Fatal(err)
		}
		full, err := lagraph.ConnectedComponentsWith(g)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vecBytes(t, inc.Labels), vecBytes(t, full.Labels)) {
			t.Fatalf("kind %v: incremental CC labels differ from full recompute", kind)
		}
	}
}

func TestIncrementalCCRejectsUnusablePriors(t *testing.T) {
	g := deltaGraph(t, lagraph.Undirected)
	prior, err := lagraph.ConnectedComponentsWith(g)
	if err != nil {
		t.Fatal(err)
	}
	ok := &lagraph.Delta{}
	cases := map[string]func() error{
		"nil prior": func() error { _, e := lagraph.IncrementalCC(g, nil, ok); return e },
		"removals": func() error {
			_, e := lagraph.IncrementalCC(g, prior.Labels, &lagraph.Delta{Removals: 1})
			return e
		},
		"untracked": func() error {
			_, e := lagraph.IncrementalCC(g, prior.Labels, &lagraph.Delta{Unknown: true})
			return e
		},
		"nil delta": func() error { _, e := lagraph.IncrementalCC(g, prior.Labels, nil); return e },
		"mis-sized prior": func() error {
			short := grb.MustVector[int64](g.N() - 1)
			_, e := lagraph.IncrementalCC(g, short, ok)
			return e
		},
		"label out of range": func() error {
			bad := prior.Labels.Dup()
			if err := bad.SetElement(0, int64(g.N())); err != nil {
				return err
			}
			_, e := lagraph.IncrementalCC(g, bad, ok)
			return e
		},
	}
	for name, fn := range cases {
		if err := fn(); !errors.Is(err, lagraph.ErrStalePrior) {
			t.Errorf("%s: want ErrStalePrior, got %v", name, err)
		}
	}
}

func TestPageRankWarmEquivalence(t *testing.T) {
	g := deltaGraph(t, lagraph.Directed)
	opts := []lagraph.Option{lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-8), lagraph.WithMaxIter(500)}
	prior, err := lagraph.PageRankWith(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	applyInserts(t, g, []int{1, 2, 3, 250}, []int{200, 201, 202, 0})
	warm, err := lagraph.PageRankWarm(g, prior.Rank, opts...)
	if err != nil {
		t.Fatal(err)
	}
	full, err := lagraph.PageRankWith(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 * 0.85 * 1e-8 / (1 - 0.85)
	if d := lagraph.L1Distance(warm.Rank, full.Rank); d > bound {
		t.Fatalf("warm PageRank L1 distance %g exceeds contraction bound %g", d, bound)
	}
	if !warm.Converged || !full.Converged {
		t.Fatalf("expected both runs to converge (warm=%v full=%v)", warm.Converged, full.Converged)
	}
	if warm.Iterations > full.Iterations {
		t.Fatalf("warm start took more iterations (%d) than cold (%d) on a small delta",
			warm.Iterations, full.Iterations)
	}
}

func TestPageRankWarmRejectsUnusablePriors(t *testing.T) {
	g := deltaGraph(t, lagraph.Directed)
	prior, err := lagraph.PageRankWith(g)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := prior.Rank.Dup()
	if err := poisoned.SetElement(5, math.NaN()); err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]*grb.Vector[float64]{
		"nil prior":      nil,
		"mis-sized":      grb.MustVector[float64](g.N() - 1),
		"sparse":         grb.MustVector[float64](g.N()),
		"non-finite NaN": poisoned,
	} {
		if _, err := lagraph.PageRankWarm(g, v); !errors.Is(err, lagraph.ErrStalePrior) {
			t.Errorf("%s: want ErrStalePrior, got %v", name, err)
		}
	}
}

func TestIncrementalBFSEquivalence(t *testing.T) {
	for _, kind := range []lagraph.Kind{lagraph.Undirected, lagraph.Directed} {
		g := deltaGraph(t, kind)
		prior, err := lagraph.BFSLevels(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Shortcut edges from near the source to high-level vertices force
		// real repair cascades; the duplicate is a no-op relaxation.
		delta := applyInserts(t, g, []int{0, 0, 4, 9}, []int{255, 255, 180, 130})
		repaired, rounds, err := lagraph.IncrementalBFSLevels(g, 0, prior, delta)
		if err != nil {
			t.Fatal(err)
		}
		var stats lagraph.BFSStats
		full, err := lagraph.BFSLevels(g, 0, lagraph.WithStats(&stats))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vecBytes(t, repaired), vecBytes(t, full)) {
			t.Fatalf("kind %v: repaired BFS levels differ from full recompute", kind)
		}
		if rounds > stats.Depth {
			t.Fatalf("kind %v: repair took %d rounds, more than a full BFS depth %d", kind, rounds, stats.Depth)
		}
	}
}

func TestIncrementalBFSRejectsUnusablePriors(t *testing.T) {
	g := deltaGraph(t, lagraph.Undirected)
	prior, err := lagraph.BFSLevels(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok := &lagraph.Delta{}
	cases := map[string]func() error{
		"nil prior": func() error { _, _, e := lagraph.IncrementalBFSLevels(g, 0, nil, ok); return e },
		"removals": func() error {
			_, _, e := lagraph.IncrementalBFSLevels(g, 0, prior, &lagraph.Delta{Removals: 1})
			return e
		},
		"wrong source": func() error {
			// A prior rooted at 0 cannot repair a src=1 query.
			_, _, e := lagraph.IncrementalBFSLevels(g, 1, prior, ok)
			return e
		},
		"endpoint out of range": func() error {
			_, _, e := lagraph.IncrementalBFSLevels(g, 0, prior, &lagraph.Delta{AddSrc: []int{0}, AddDst: []int{g.N()}})
			return e
		},
	}
	for name, fn := range cases {
		if err := fn(); !errors.Is(err, lagraph.ErrStalePrior) {
			t.Errorf("%s: want ErrStalePrior, got %v", name, err)
		}
	}
	if _, _, err := lagraph.IncrementalBFSLevels(g, -1, prior, ok); err == nil || errors.Is(err, lagraph.ErrStalePrior) {
		t.Errorf("negative source: want a bad-argument error, got %v", err)
	}
}

func TestL1Distance(t *testing.T) {
	mk := func(idx []int, xs []float64) *grb.Vector[float64] {
		v, err := grb.ImportSparse(10, idx, xs, true)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a := mk([]int{0, 3, 7}, []float64{1, -2, 0.5})
	b := mk([]int{3, 5, 7}, []float64{2, 1, 0.5})
	// |1-0| + |-2-2| + |0-1| + |0.5-0.5| = 6
	if d := lagraph.L1Distance(a, b); math.Abs(d-6) > 1e-15 {
		t.Fatalf("L1Distance = %g, want 6", d)
	}
	if d := lagraph.L1Distance(a, a); d != 0 {
		t.Fatalf("L1Distance(a,a) = %g, want 0", d)
	}
}

// FuzzIncrementalEquivalence is the metamorphic core: random base
// graphs, random insert-only delta sequences (dup edges, self-loops,
// repeated endpoints, multiple batches between queries), both
// parallelism levels. CC and BFS must match the full recompute bitwise;
// PageRank must stay inside the contraction bound.
func FuzzIncrementalEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(4), false)
	f.Add(int64(7), uint8(3), uint8(9), true)
	f.Add(int64(42), uint8(2), uint8(16), false)
	f.Add(int64(1234), uint8(5), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, nBatches, opsPerBatch uint8, directed bool) {
		batches := int(nBatches%5) + 1
		ops := int(opsPerBatch%24) + 1
		rng := rand.New(rand.NewSource(seed))
		kind := lagraph.Undirected
		if directed {
			kind = lagraph.Directed
		}
		n := 64 + rng.Intn(129)
		e := gen.ErdosRenyi(n, 4*n, gen.Config{Seed: seed, Undirected: !directed, NoSelfLoops: true})
		g, err := lagraph.NewGraph(e.Matrix(), kind)
		if err != nil {
			t.Fatal(err)
		}

		prOpts := []lagraph.Option{lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-7), lagraph.WithMaxIter(300)}
		cc, err := lagraph.ConnectedComponentsWith(g)
		if err != nil {
			t.Fatal(err)
		}
		bfs, err := lagraph.BFSLevels(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := lagraph.PageRankWith(g, prOpts...)
		if err != nil {
			t.Fatal(err)
		}

		// Accumulate several batches into one delta window, exactly as the
		// catalog's delta log aggregates generations between two queries.
		var src, dst []int
		for b := 0; b < batches; b++ {
			for o := 0; o < ops; o++ {
				u := rng.Intn(n)
				v := u
				if rng.Intn(8) != 0 { // 1-in-8 self-loop
					v = rng.Intn(n)
				}
				src, dst = append(src, u), append(dst, v)
				if rng.Intn(4) == 0 { // repeated edge inside the window
					src, dst = append(src, u), append(dst, v)
				}
			}
		}
		delta := applyInserts(t, g, src, dst)

		for _, par := range []int{1, 8} {
			prev := grb.SetParallelism(par)
			incCC, err := lagraph.IncrementalCC(g, cc.Labels, delta)
			if err != nil {
				t.Fatal(err)
			}
			fullCC, err := lagraph.ConnectedComponentsWith(g)
			if err != nil {
				t.Fatal(err)
			}
			repaired, _, err := lagraph.IncrementalBFSLevels(g, 0, bfs, delta)
			if err != nil {
				t.Fatal(err)
			}
			fullBFS, err := lagraph.BFSLevels(g, 0)
			if err != nil {
				t.Fatal(err)
			}
			warmPR, err := lagraph.PageRankWarm(g, pr.Rank, prOpts...)
			if err != nil {
				t.Fatal(err)
			}
			fullPR, err := lagraph.PageRankWith(g, prOpts...)
			if err != nil {
				t.Fatal(err)
			}
			grb.SetParallelism(prev)

			if !bytes.Equal(vecBytes(t, incCC.Labels), vecBytes(t, fullCC.Labels)) {
				t.Fatalf("P=%d seed=%d: incremental CC diverged from full recompute", par, seed)
			}
			if !bytes.Equal(vecBytes(t, repaired), vecBytes(t, fullBFS)) {
				t.Fatalf("P=%d seed=%d: incremental BFS diverged from full recompute", par, seed)
			}
			bound := 2 * 0.85 * 1e-7 / (1 - 0.85)
			if d := lagraph.L1Distance(warmPR.Rank, fullPR.Rank); d > bound {
				t.Fatalf("P=%d seed=%d: warm PageRank L1 %g exceeds bound %g", par, seed, d, bound)
			}
		}
	})
}
