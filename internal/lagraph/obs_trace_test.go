package lagraph

// Algorithm-level half of the observation contract: a traced BFS returns
// bitwise-identical levels to an untraced one at both parallelism
// extremes, and the trace of a direction-optimized BFS over a power-law
// graph carries what the CI smoke job asserts — per-iteration frontier
// sizes and at least one push→pull switch.

import (
	"bytes"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

func powerLawGraph(n, m int, seed int64) *Graph {
	return FromEdgeList(
		gen.PowerLaw(n, m, 1.8, gen.Config{Seed: seed, Undirected: true, NoSelfLoops: true}),
		Undirected)
}

func bfsLevelBytes(t *testing.T, g *Graph, p int, traced bool) []byte {
	t.Helper()
	if traced {
		prev := obs.Set(obs.NewTrace(0))
		defer obs.Set(prev)
	}
	prevP := grb.SetParallelism(p)
	defer grb.SetParallelism(prevP)
	levels, err := BFSLevels(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := grb.SerializeVector(&buf, levels); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTracedBFSBitwiseIdentical: tracing must not perturb the traversal.
func TestTracedBFSBitwiseIdentical(t *testing.T) {
	g := powerLawGraph(1<<11, 1<<15, 81)
	base := bfsLevelBytes(t, g, 1, false)
	for _, c := range []struct {
		name   string
		p      int
		traced bool
	}{
		{"p1 traced", 1, true},
		{"p8 untraced", 8, false},
		{"p8 traced", 8, true},
	} {
		if got := bfsLevelBytes(t, g, c.p, c.traced); !bytes.Equal(base, got) {
			t.Errorf("%s: BFS levels differ from p1 untraced (%d vs %d bytes)",
				c.name, len(got), len(base))
		}
	}
}

// TestPowerLawBFSTraceSwitch: on a skewed graph the auto-directed BFS
// starts push (sparse frontier) and goes pull once the frontier saturates;
// the trace must record frontier sizes and that switch. This is the
// in-tree twin of the CI trace-smoke job (cmd/tracecheck -want-switch).
func TestPowerLawBFSTraceSwitch(t *testing.T) {
	g := powerLawGraph(1<<12, 1<<16, 82)
	tr := obs.NewTrace(0)
	if _, err := BFSLevels(g, 0, WithObserver(tr)); err != nil {
		t.Fatal(err)
	}
	var iters []obs.IterRecord
	for _, r := range tr.Iters() {
		if r.Algo == "bfs" {
			iters = append(iters, r)
		}
	}
	if len(iters) < 2 {
		t.Fatalf("BFS trace has %d iteration records, want at least 2", len(iters))
	}
	switched := false
	for k, r := range iters {
		if r.Iter != k+1 {
			t.Errorf("iteration %d recorded as iter %d", k+1, r.Iter)
		}
		if r.Frontier <= 0 {
			t.Errorf("iteration %d has no frontier size: %+v", k+1, r)
		}
		if k > 0 && iters[k-1].Dir == "push" && r.Dir == "pull" {
			switched = true
		}
	}
	if !switched {
		t.Errorf("no push→pull switch across %d iterations (dirs: %v)", len(iters), dirs(iters))
	}
}

func dirs(iters []obs.IterRecord) []string {
	out := make([]string, len(iters))
	for i, r := range iters {
		out[i] = r.Dir
	}
	return out
}
