package lagraph

import (
	"math/rand"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// Maximal independent set (§V, [44]) by Luby's algorithm in GraphBLAS
// form, and greedy graph coloring (§V, [40]) by the Jones–Plassmann
// variant built on the same random-priority machinery.

// MIS computes a maximal independent set with Luby's randomized
// algorithm: every candidate draws a score; vertices whose score beats
// all neighbours' join the set; winners and their neighbours leave the
// candidate pool.
func MIS(g *Graph, seed int64, opts ...Option) (*grb.Vector[bool], error) {
	if err := g.requireUndirected(); err != nil {
		return nil, err
	}
	cfg := newOptions(opts)
	n := g.N()
	rng := rand.New(rand.NewSource(seed))

	// candidates: structural set of still-undecided vertices.
	candidates := grb.MustVector[bool](n)
	deg := g.OutDegree()
	for i := 0; i < n; i++ {
		_ = candidates.SetElement(i, true)
	}
	iset := grb.MustVector[bool](n)
	maxSecond := grb.Semiring[float64, float64, float64]{Add: grb.MaxMonoid[float64](), Mul: grb.Second[float64, float64]()}

	ob := cfg.observer()
	for round := 0; round <= 2*n+64; round++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		nc := candidates.Nvals()
		if nc == 0 {
			return iset, nil
		}
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		// score(i) = random / (1 + deg(i)) for candidates (degree-aware
		// scores converge faster; Luby's classic analysis still applies).
		score := grb.MustVector[float64](n)
		ci, _ := candidates.ExtractTuples()
		for _, i := range ci {
			d, err := deg.GetElement(i)
			if err != nil {
				d = 0
			}
			_ = score.SetElement(i, rng.Float64()/float64(1+d))
		}
		// nbMax(i) = max score among neighbours.
		nbMax := grb.MustVector[float64](n)
		if err := grb.MxV(nbMax, candidates, nil, maxSecond, g.A, score, nil); err != nil {
			return nil, err
		}
		// winners: candidates whose score beats every neighbour's.
		winners := grb.MustVector[bool](n)
		scoreBeats := grb.MustVector[bool](n)
		// gt(i) = score(i) > nbMax(i) where both exist; candidates with
		// no competing neighbour win automatically.
		if err := grb.EWiseMultVector[float64, float64, bool, bool](scoreBeats, nil, nil, grb.Gt[float64](), score, nbMax, nil); err != nil {
			return nil, err
		}
		// winners = (candidates with no nbMax entry) ∪ (scoreBeats true).
		if err := grb.ExtractVector(winners, nbMax, nil, candidates, grb.All, grb.DescC); err != nil {
			return nil, err
		}
		if err := grb.SelectVector[bool, bool](scoreBeats, nil, nil, grb.ValueEQ(true), scoreBeats, nil); err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector[bool, bool](winners, nil, nil, grb.LOr(), winners, scoreBeats, nil); err != nil {
			return nil, err
		}
		if winners.Nvals() == 0 {
			continue // rare tie round; redraw
		}
		// iset ∪= winners.
		if err := grb.EWiseAddVector[bool, bool](iset, nil, nil, grb.LOr(), iset, winners, nil); err != nil {
			return nil, err
		}
		// neighboursOfWinners, to be removed from candidacy.
		lor := grb.Semiring[float64, bool, bool]{Add: grb.LOrMonoid(), Mul: grb.Second[float64, bool]()}
		nbw := grb.MustVector[bool](n)
		if err := grb.MxV(nbw, candidates, nil, lor, g.A, winners, nil); err != nil {
			return nil, err
		}
		// candidates ← candidates \ (winners ∪ nbw): keep entries of
		// candidates not present in either.
		drop := grb.MustVector[bool](n)
		if err := grb.EWiseAddVector[bool, bool](drop, nil, nil, grb.LOr(), winners, nbw, nil); err != nil {
			return nil, err
		}
		next := grb.MustVector[bool](n)
		if err := grb.ExtractVector(next, drop, nil, candidates, grb.All, grb.DescC); err != nil {
			return nil, err
		}
		candidates = next
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "mis", Iter: round + 1,
				Frontier: nc,
				DurNanos: ob.Now() - t0,
			})
		}
	}
	return nil, ErrNoConvergence
}

// VerifyMIS checks independence and maximality; it returns false with a
// reason when the set is invalid. Exported for the test harness.
func VerifyMIS(g *Graph, iset *grb.Vector[bool]) (bool, string) {
	n := g.N()
	lor := grb.Semiring[float64, bool, bool]{Add: grb.LOrMonoid(), Mul: grb.Second[float64, bool]()}
	// nb(i) = true if any neighbour is in the set.
	nb := grb.MustVector[bool](n)
	if err := grb.MxV(nb, (*grb.Vector[bool])(nil), nil, lor, g.A, iset, nil); err != nil {
		return false, err.Error()
	}
	// Independence: no member may have a member neighbour.
	conflict := grb.MustVector[bool](n)
	if err := grb.EWiseMultVector[bool, bool, bool, bool](conflict, nil, nil, grb.LAnd(), iset, nb, nil); err != nil {
		return false, err.Error()
	}
	anyConflict, _ := grb.ReduceVectorToScalar(grb.LOrMonoid(), conflict)
	if anyConflict {
		return false, "independence violated"
	}
	// Maximality: every non-member with at least one edge must see a
	// member (isolated vertices must be members).
	deg := g.OutDegree()
	for i := 0; i < n; i++ {
		if _, err := iset.GetElement(i); err == nil {
			continue
		}
		if _, err := nb.GetElement(i); err == nil {
			continue
		}
		if d, err := deg.GetElement(i); err == nil && d > 0 {
			return false, "maximality violated"
		}
		// isolated vertex not in set
		if _, err := deg.GetElement(i); err != nil {
			return false, "isolated vertex excluded"
		}
	}
	return true, ""
}
