package lagraph

import (
	"context"
	"fmt"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// Options collects the knobs shared by the algorithm entry points, set
// through functional options: iteration caps, convergence tolerances,
// traversal direction, and the observer that receives per-iteration
// records. The zero value of every field means "algorithm default", so
// options compose freely and new fields are backward compatible.
//
// The positional signatures that predated Options (PageRank's
// (damping, tol, maxIter), HITS's (tol, maxIter), SSSPDeltaStepping's
// delta) have been removed: PageRankWith, HITSWith, and SSSP are the only
// entry points, and grblint's deprecation check keeps new Deprecated
// symbols from accumulating.
type Options struct {
	// MaxIter caps the main iteration count; 0 selects the algorithm's
	// default (n for traversals, 100 for PageRank, 50 for HITS).
	MaxIter int
	// Tol is the convergence tolerance for fixed-point loops; 0 selects
	// the algorithm's default.
	Tol float64
	// Damping is PageRank's damping factor; 0 selects 0.85.
	Damping float64
	// Delta is delta-stepping's bucket width; 0 selects 2.
	Delta float64
	// Observer receives per-iteration IterRecords. nil falls back to
	// the process-wide observer (obs.Active), so a -trace run needs no
	// per-call plumbing; set it explicitly to scope observation to one
	// algorithm invocation.
	Observer obs.Observer
	// Dir forces push or pull traversal (DirAuto switches adaptively).
	Dir grb.Direction
	// PushPullRatio overrides the frontier-density threshold at which
	// DirAuto switches from push to pull; 0 selects the grb default.
	PushPullRatio int
	// Stats, when non-nil, receives per-iteration BFS statistics.
	Stats *BFSStats
	// Method selects the TriangleCount formulation when MethodSet is
	// true, overriding the positional method argument. Use WithMethod —
	// the MethodSet latch is what lets TCBurkhardt (the zero value) be
	// selected explicitly.
	Method TCMethod
	// MethodSet records that Method was set via WithMethod.
	MethodSet bool
	// Presort selects TriangleCount's degree relabeling; the zero value
	// TCNoSort preserves the input ordering.
	Presort TCPresort
	// PresortSet records that Presort was set via WithPresort, so TCAuto
	// can default to TCSortAuto without overriding an explicit choice.
	PresortSet bool
	// Ctx, when non-nil, is checked between iterations of every
	// algorithm loop: once it is done the algorithm abandons its local
	// state and returns an error wrapping grb.ErrCanceled. Cancellation
	// is clean — the input Graph and its cached properties are never
	// mutated mid-iteration, so a canceled run leaves no torn state.
	// Kernel code (internal/grb) never stores or checks a context; the
	// context lives at the algorithm layer only (enforced by grblint's
	// kernel-purity check).
	Ctx context.Context
}

// Option mutates an Options; pass them variadically to entry points.
type Option func(*Options)

// newOptions folds opts over the zero value.
func newOptions(opts []Option) Options {
	var o Options
	for _, f := range opts {
		f(&o)
	}
	return o
}

// observer resolves the effective observer: the per-call one if set,
// otherwise the process-wide one (which is nil when tracing is off).
func (o *Options) observer() obs.Observer {
	if o.Observer != nil {
		return o.Observer
	}
	return obs.Active()
}

// maxIter returns the iteration cap, with def as the algorithm default.
func (o *Options) maxIter(def int) int {
	if o.MaxIter > 0 {
		return o.MaxIter
	}
	return def
}

// tol returns the tolerance, with def as the algorithm default.
func (o *Options) tol(def float64) float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return def
}

// canceled returns nil while the configured context (if any) is live, and
// an error wrapping both grb.ErrCanceled and the context's own error once
// it is done. Algorithm loops call it at the top of every iteration, so a
// canceled request returns within one iteration of the cancellation.
func (o *Options) canceled() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return fmt.Errorf("lagraph: %w: %w", grb.ErrCanceled, context.Cause(o.Ctx))
	default:
		return nil
	}
}

// WithMaxIter caps the main iteration count.
func WithMaxIter(n int) Option {
	return func(o *Options) { o.MaxIter = n }
}

// WithTolerance sets the convergence tolerance of fixed-point loops.
func WithTolerance(t float64) Option {
	return func(o *Options) { o.Tol = t }
}

// WithDamping sets PageRank's damping factor.
func WithDamping(d float64) Option {
	return func(o *Options) { o.Damping = d }
}

// WithDelta sets delta-stepping's bucket width.
func WithDelta(d float64) Option {
	return func(o *Options) { o.Delta = d }
}

// WithObserver scopes per-iteration observation to this invocation,
// overriding the process-wide observer.
func WithObserver(ob obs.Observer) Option {
	return func(o *Options) { o.Observer = ob }
}

// WithDirection forces push or pull traversal for every iteration
// (DirAuto, the default, switches adaptively).
func WithDirection(d grb.Direction) Option {
	return func(o *Options) { o.Dir = d }
}

// WithPushPullRatio overrides the frontier-density threshold at which
// DirAuto switches from push to pull.
func WithPushPullRatio(r int) Option {
	return func(o *Options) { o.PushPullRatio = r }
}

// WithContext bounds the algorithm by ctx: each iteration starts only
// while ctx is live, and a done context makes the algorithm return an
// error matching grb.ErrCanceled (and ctx's own cause) via errors.Is.
func WithContext(ctx context.Context) Option {
	return func(o *Options) { o.Ctx = ctx }
}

// WithMethod selects the TriangleCount formulation, overriding the
// positional method argument; pass TCAuto to let the library choose
// (and combine with WithPresort(TCSortAuto) for fully adaptive counting).
func WithMethod(m TCMethod) Option {
	return func(o *Options) { o.Method = m; o.MethodSet = true }
}

// WithPresort selects TriangleCount's degree relabeling. TCSortAuto
// sorts only when the relabeling is estimated to pay, in the direction
// the resolved method prefers.
func WithPresort(p TCPresort) Option {
	return func(o *Options) { o.Presort = p; o.PresortSet = true }
}

// WithStats records per-iteration traversal statistics into s.
func WithStats(s *BFSStats) Option {
	return func(o *Options) { o.Stats = s }
}

// dirString renders a traversal direction for an IterRecord.
func dirString(d grb.Direction) string {
	if d == grb.DirPull {
		return "pull"
	}
	return "push"
}
