package lagraph

import (
	"math"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// PageRank (§V, [39]) in the GAP-benchmark formulation used by LAGraph:
// rank is held in a dense vector, importance flows along transposed
// edges, dangling vertices redistribute uniformly, and iteration stops on
// an L1-norm tolerance.

// PageRankResult carries the ranking and convergence information.
type PageRankResult struct {
	Rank       *grb.Vector[float64]
	Iterations int
	Converged  bool
}

// PageRankWith computes the damped PageRank of every vertex. Defaults:
// damping 0.85, tolerance 1e-4, at most 100 iterations.
func PageRankWith(g *Graph, opts ...Option) (*PageRankResult, error) {
	cfg := newOptions(opts)
	return pageRankFrom(g, nil, false, &cfg)
}

// pageRankFrom runs the power iteration from an initial rank vector. r0
// nil selects the cold uniform start 1/n; a warm start passes a prior
// rank vector (see PageRankWarm). The iteration map is a contraction
// with factor ≤ damping in L1, so any start converges to the same unique
// fixed point; the residual stop then bounds the distance between a warm
// and a cold answer by 2·damping·tol/(1-damping). The per-iteration op
// sequence is identical in both modes — cold results are bitwise
// unchanged by this refactor.
func pageRankFrom(g *Graph, r0 *grb.Vector[float64], warm bool, cfg *Options) (*PageRankResult, error) {
	damping := cfg.Damping
	if damping == 0 {
		damping = 0.85
	}
	if damping <= 0 || damping >= 1 {
		return nil, ErrBadArgument
	}
	tol := cfg.tol(1e-4)
	maxIter := cfg.maxIter(100)
	ob := cfg.observer()
	n := g.N()
	nf := float64(n)

	// dOut(i) = out-degree; invOut(i) = damping / dOut(i) where dOut>0.
	deg := g.OutDegree()
	invOut := grb.MustVector[float64](n)
	if err := grb.ApplyVector[int64, float64, bool](invOut, nil, nil,
		func(d int64) float64 { return 1 / float64(d) }, deg, nil); err != nil {
		return nil, err
	}
	// dangling mask: vertices with no out-edges.
	danglingMask := deg // structural complement used below

	var r *grb.Vector[float64]
	if r0 == nil {
		r = grb.DenseVector(constants(n, 1/nf))
	} else {
		r = r0.Dup()
	}
	w := grb.MustVector[float64](n)
	plusSecond := grb.PlusSecond[float64]()

	for iter := 1; iter <= maxIter; iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		// Dangling mass this round.
		dr := grb.MustVector[float64](n)
		if err := grb.ExtractVector(dr, danglingMask, nil, r, grb.All, grb.DescC); err != nil {
			return nil, err
		}
		danglingMass, err := grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), dr)
		if err != nil {
			return nil, err
		}

		// out(i) = r(i)/deg(i) for non-dangling vertices.
		out := grb.MustVector[float64](n)
		if err := grb.EWiseMultVector[float64, float64, float64, bool](out, nil, nil, grb.Times[float64](), r, invOut, nil); err != nil {
			return nil, err
		}
		// w = Aᵀ ⊕.⊗ out (importance flows along in-edges). The
		// plus.second semiring ignores the stored weight: PageRank is a
		// structural algorithm.
		if err := grb.MxV(w, (*grb.Vector[bool])(nil), nil, plusSecond, g.A, out, grb.DescT0); err != nil {
			return nil, err
		}
		base := (1-damping)/nf + damping*danglingMass/nf
		rNew := grb.DenseVector(constants(n, base))
		if err := grb.EWiseAddVector[float64, bool](rNew, nil, nil, grb.Plus[float64](), rNew, scaled(w, damping, n), nil); err != nil {
			return nil, err
		}

		// L1 distance ‖rNew - r‖₁.
		diff := grb.MustVector[float64](n)
		if err := grb.EWiseAddVector[float64, bool](diff, nil, nil, grb.Minus[float64](), rNew, r, nil); err != nil {
			return nil, err
		}
		abs := grb.MustVector[float64](n)
		if err := grb.ApplyVector[float64, float64, bool](abs, nil, nil, math.Abs, diff, nil); err != nil {
			return nil, err
		}
		l1, err := grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), abs)
		if err != nil {
			return nil, err
		}
		r = rNew
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "pagerank", Iter: iter,
				Residual: l1,
				Warm:     warm,
				DurNanos: ob.Now() - t0,
			})
		}
		if l1 < tol {
			return &PageRankResult{Rank: r, Iterations: iter, Converged: true}, nil
		}
	}
	return &PageRankResult{Rank: r, Iterations: maxIter, Converged: false}, nil
}

func constants(n int, v float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = v
	}
	return xs
}

func scaled(v *grb.Vector[float64], f float64, n int) *grb.Vector[float64] {
	w := grb.MustVector[float64](n)
	if err := grb.ApplyVector[float64, float64, bool](w, nil, nil,
		func(x float64) float64 { return f * x }, v, nil); err != nil {
		panic(err)
	}
	return w
}

// TopK returns the indices of the k largest entries of a rank vector, in
// descending order.
func TopK(v *grb.Vector[float64], k int) []int {
	is, xs := v.ExtractTuples()
	type pair struct {
		i int
		x float64
	}
	ps := make([]pair, len(is))
	for t := range is {
		ps[t] = pair{is[t], xs[t]}
	}
	// partial selection sort for small k
	if k > len(ps) {
		k = len(ps)
	}
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < len(ps); b++ {
			if ps[b].x > ps[best].x {
				best = b
			}
		}
		ps[a], ps[best] = ps[best], ps[a]
	}
	out := make([]int, k)
	for a := 0; a < k; a++ {
		out[a] = ps[a].i
	}
	return out
}
