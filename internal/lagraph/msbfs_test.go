package lagraph

import (
	"testing"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
)

func TestMSBFSMatchesSingleSource(t *testing.T) {
	g := rmatGraph(t, 8, 8, 9, true)
	bg := baseline.FromMatrix(g.A.Dup())
	sources := []int{0, 3, 17, 100}
	levels, err := MSBFSLevels(g, sources)
	if err != nil {
		t.Fatal(err)
	}
	if levels.Nrows() != len(sources) {
		t.Fatalf("rows=%d", levels.Nrows())
	}
	for s, src := range sources {
		want, _ := baseline.BFSLevels(bg, src)
		for v := 0; v < g.N(); v++ {
			got, err := levels.GetElement(s, v)
			if want[v] < 0 {
				if err == nil {
					t.Fatalf("src %d: vertex %d unreachable but leveled", src, v)
				}
				continue
			}
			if err != nil || got != int32(want[v]) {
				t.Fatalf("src %d: level[%d]=%v want %d (err %v)", src, v, got, want[v], err)
			}
		}
	}
}

func TestMSBFSEmptyAndBadSources(t *testing.T) {
	g := rmatGraph(t, 6, 4, 9, true)
	levels, err := MSBFSLevels(g, nil)
	if err != nil || levels.Nrows() != 0 {
		t.Fatal("empty batch")
	}
	if _, err := MSBFSLevels(g, []int{0, -1}); err != ErrBadArgument {
		t.Fatal("bad source")
	}
}

func TestReachabilityCount(t *testing.T) {
	// Directed path: vertex k reaches n-k vertices.
	g := FromEdgeList(gen.Path(6, gen.Config{}), Directed)
	counts, err := ReachabilityCount(g, []int{0, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 6 || counts[1] != 3 || counts[2] != 1 {
		t.Fatalf("counts=%v", counts)
	}
}
