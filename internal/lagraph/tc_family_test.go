package lagraph

import (
	"strings"
	"testing"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/obs"
)

// tcAllMethods enumerates the full formulation family, including the
// aliases and the adaptive entry.
var tcAllMethods = []struct {
	name string
	m    TCMethod
}{
	{"burkhardt", TCBurkhardt}, {"cohen", TCCohen},
	{"sandiaLL", TCSandiaLL}, {"sandiaLUT", TCSandiaLUT},
	{"sandiaUU", TCSandiaUU}, {"sandiaULT", TCSandiaULT},
	{"auto", TCAuto},
}

var tcAllPresorts = []struct {
	name string
	p    TCPresort
}{
	{"nosort", TCNoSort}, {"asc", TCSortAscending},
	{"desc", TCSortDescending}, {"autosort", TCSortAuto},
}

// TestTriangleCountFamilyAgrees: every method × presort combination must
// report the same count as the dense baseline — the triangle count is
// invariant under both the formulation and any vertex relabeling.
func TestTriangleCountFamilyAgrees(t *testing.T) {
	for _, seed := range []int64{1, 5} {
		g := rmatGraph(t, 8, 8, seed, true)
		want := baseline.TriangleCount(baseline.FromMatrix(g.A.Dup()))
		for _, m := range tcAllMethods {
			for _, p := range tcAllPresorts {
				got, err := TriangleCount(g, m.m, WithPresort(p.p))
				if err != nil {
					t.Fatalf("%s/%s: %v", m.name, p.name, err)
				}
				if got != want {
					t.Fatalf("%s/%s: %d triangles, want %d", m.name, p.name, got, want)
				}
			}
		}
	}
}

// TestTriangleCountNewMethodsSmall pins the new formulations on a graph
// with a known count.
func TestTriangleCountNewMethodsSmall(t *testing.T) {
	k4 := FromEdgeList(gen.Complete(4, gen.Config{Undirected: true}), Undirected)
	for _, m := range tcAllMethods {
		for _, p := range tcAllPresorts {
			if c, err := TriangleCount(k4, m.m, WithPresort(p.p)); err != nil || c != 4 {
				t.Fatalf("K4 %s/%s: %d (%v)", m.name, p.name, c, err)
			}
		}
	}
}

// TestTriangleCountWithMethod: the option overrides the positional
// argument, and the MethodSet latch lets the zero-valued TCBurkhardt be
// selected explicitly.
func TestTriangleCountWithMethod(t *testing.T) {
	g := rmatGraph(t, 8, 8, 3, true)
	want := baseline.TriangleCount(baseline.FromMatrix(g.A.Dup()))
	got, err := TriangleCount(g, TCSandiaLL, WithMethod(TCBurkhardt))
	if err != nil || got != want {
		t.Fatalf("WithMethod(TCBurkhardt): %d (%v), want %d", got, err, want)
	}
	got, err = TriangleCount(g, TCBurkhardt, WithMethod(TCAuto), WithPresort(TCSortAuto))
	if err != nil || got != want {
		t.Fatalf("WithMethod(TCAuto): %d (%v), want %d", got, err, want)
	}
}

// TestTriangleCountBadArguments: out-of-range methods and presorts are
// rejected, not silently clamped.
func TestTriangleCountBadArguments(t *testing.T) {
	g := rmatGraph(t, 6, 4, 1, true)
	if _, err := TriangleCount(g, TCMethod(99)); err != ErrBadArgument {
		t.Fatalf("method 99: %v, want ErrBadArgument", err)
	}
	if _, err := TriangleCount(g, TCBurkhardt, WithPresort(TCPresort(99))); err != ErrBadArgument {
		t.Fatalf("presort 99: %v, want ErrBadArgument", err)
	}
	if _, err := TriangleCount(g, TCBurkhardt, WithMethod(TCMethod(-1))); err != ErrBadArgument {
		t.Fatalf("WithMethod(-1): %v, want ErrBadArgument", err)
	}
}

// midHubStar builds a star whose hub sits mid-ordering (plus one closing
// edge so a triangle exists): the worst natural labeling for the saxpy
// formulations — the hub's long strict-lower row is replayed by every
// higher-indexed neighbor — and therefore the shape TCSortAuto must
// repair.
func midHubStar(n int) *gen.EdgeList {
	el := &gen.EdgeList{N: n}
	hub := n / 2
	for v := 0; v < n; v++ {
		if v != hub {
			el.Src = append(el.Src, hub, v)
			el.Dst = append(el.Dst, v, hub)
			el.W = append(el.W, 1, 1)
		}
	}
	el.Src = append(el.Src, 1, 2)
	el.Dst = append(el.Dst, 2, 1)
	el.W = append(el.W, 1, 1)
	return el
}

// TestTriangleCountTracesDecision: the resolved method and presort are
// runtime decisions under TCAuto/TCSortAuto; the trace must surface them.
func TestTriangleCountTracesDecision(t *testing.T) {
	g := FromEdgeList(midHubStar(64), Undirected)

	tr := obs.NewTrace(16)
	if _, err := TriangleCount(g, TCSandiaLL, WithPresort(TCSortAuto), WithObserver(tr)); err != nil {
		t.Fatal(err)
	}
	var recs []obs.IterRecord
	for _, r := range tr.Iters() {
		if r.Algo == "tc" {
			recs = append(recs, r)
		}
	}
	if len(recs) != 1 {
		t.Fatalf("%d tc trace records, want 1", len(recs))
	}
	// The saxpy LL formulation prefers ascending order, and the work
	// estimate (hub mid-ordering → Σ d₋·d₊ ≫ nnz) must have engaged.
	if recs[0].Dir != "sandia-ll/sorted-ascending" {
		t.Fatalf("traced decision %q, want sandia-ll/sorted-ascending", recs[0].Dir)
	}
	if recs[0].Frontier <= 0 {
		t.Fatalf("traced record has no edge count: %+v", recs[0])
	}

	// TCAuto resolves to the same plan — LL plus the implied auto
	// presort — without the caller naming either.
	tr2 := obs.NewTrace(16)
	if _, err := TriangleCount(g, TCAuto, WithObserver(tr2)); err != nil {
		t.Fatal(err)
	}
	for _, r := range tr2.Iters() {
		if r.Algo == "tc" && r.Dir != "sandia-ll/sorted-ascending" {
			t.Fatalf("auto on skewed graph traced %q, want sandia-ll/sorted-ascending", r.Dir)
		}
	}

	// The dot formulation never auto-sorts (sorting concentrates its
	// merge work instead of spreading it).
	tr3 := obs.NewTrace(16)
	if _, err := TriangleCount(g, TCSandiaLUT, WithPresort(TCSortAuto), WithObserver(tr3)); err != nil {
		t.Fatal(err)
	}
	for _, r := range tr3.Iters() {
		if r.Algo == "tc" && r.Dir != "sandia-lut/unsorted" {
			t.Fatalf("dot on skewed graph traced %q, want sandia-lut/unsorted", r.Dir)
		}
	}

	// On a degree-regular graph no method auto-sorts: every vertex's
	// below/above split is balanced but tiny, so the estimate stays
	// under the rebuild bar.
	ring := FromEdgeList(gen.Ring(32, gen.Config{Undirected: true}), Undirected)
	tr4 := obs.NewTrace(16)
	if _, err := TriangleCount(ring, TCAuto, WithObserver(tr4)); err != nil {
		t.Fatal(err)
	}
	for _, r := range tr4.Iters() {
		if r.Algo == "tc" && !strings.HasSuffix(r.Dir, "/unsorted") {
			t.Fatalf("regular graph traced %q, want */unsorted", r.Dir)
		}
	}
}

// TestTriangleCountPresortDeterministic: the degree sort breaks ties on
// vertex index, so repeated runs produce identical results even on
// degree-regular graphs where every comparison ties.
func TestTriangleCountPresortDeterministic(t *testing.T) {
	g := rmatGraph(t, 7, 8, 9, true)
	first, err := TriangleCount(g, TCSandiaLUT, WithPresort(TCSortAscending))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := TriangleCount(g, TCSandiaLUT, WithPresort(TCSortAscending))
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatalf("run %d: %d, first run %d", i, again, first)
		}
	}
}
