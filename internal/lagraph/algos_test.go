package lagraph

import (
	"math"
	"testing"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

func TestTriangleCountAllMethodsMatchBaseline(t *testing.T) {
	methods := []struct {
		name string
		m    TCMethod
	}{
		{"burkhardt", TCBurkhardt}, {"cohen", TCCohen},
		{"sandiaLL", TCSandiaLL}, {"sandiaDot", TCSandiaDot},
	}
	for _, seed := range []int64{1, 2, 3} {
		g := rmatGraph(t, 8, 8, seed, true)
		want := baseline.TriangleCount(baseline.FromMatrix(g.A.Dup()))
		for _, m := range methods {
			got, err := TriangleCount(g, m.m)
			if err != nil {
				t.Fatalf("%s: %v", m.name, err)
			}
			if got != want {
				t.Fatalf("%s: %d triangles, want %d", m.name, got, want)
			}
		}
	}
}

func TestTriangleCountSmallCases(t *testing.T) {
	k4 := FromEdgeList(gen.Complete(4, gen.Config{Undirected: true}), Undirected)
	for _, m := range []TCMethod{TCBurkhardt, TCCohen, TCSandiaLL, TCSandiaDot} {
		if c, err := TriangleCount(k4, m); err != nil || c != 4 {
			t.Fatalf("K4 method %d: %d (%v)", m, c, err)
		}
	}
	ring := FromEdgeList(gen.Ring(8, gen.Config{Undirected: true}), Undirected)
	if c, err := TriangleCount(ring, TCSandiaLL); err != nil || c != 0 {
		t.Fatalf("ring: %d (%v)", c, err)
	}
}

func TestTriangleCountRequiresUndirected(t *testing.T) {
	g := rmatGraph(t, 6, 4, 1, false)
	if _, err := TriangleCount(g, TCBurkhardt); err != ErrNotUndirected {
		t.Fatal(err)
	}
}

func TestKTruss(t *testing.T) {
	// K4 with a pendant: 3-truss keeps exactly the K4 edges; 4-truss of
	// K4 keeps K4 (each edge in 2 triangles); 5-truss is empty.
	e := gen.Complete(4, gen.Config{Undirected: true})
	e.N = 5
	e.Src = append(e.Src, 0, 4)
	e.Dst = append(e.Dst, 4, 0)
	e.W = append(e.W, 1, 1)
	g := FromEdgeList(e, Undirected)

	t3, err := KTruss(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if t3.Nvals() != 12 { // K4's 6 undirected edges, both directions
		t.Fatalf("3-truss nvals=%d want 12", t3.Nvals())
	}
	if _, err := t3.GetElement(0, 4); err == nil {
		t.Fatal("pendant edge must leave the truss")
	}
	// Each K4 edge supports 2 triangles.
	if v, _ := t3.GetElement(0, 1); v != 2 {
		t.Fatalf("support=%d want 2", v)
	}
	t4, err := KTruss(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t4.Nvals() != 12 {
		t.Fatalf("4-truss nvals=%d", t4.Nvals())
	}
	t5, err := KTruss(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if t5.Nvals() != 0 {
		t.Fatalf("5-truss nvals=%d", t5.Nvals())
	}
	if _, err := KTruss(g, 2); err != ErrBadArgument {
		t.Fatal("k<3 must be rejected")
	}
}

// bruteTruss computes the k-truss by direct per-edge triangle counting —
// an independent oracle for the GraphBLAS formulation.
func bruteTruss(g *Graph, k int) map[[2]int]int {
	adj := map[int]map[int]bool{}
	g.A.Iterate(func(i, j int, _ float64) bool {
		if i != j {
			if adj[i] == nil {
				adj[i] = map[int]bool{}
			}
			adj[i][j] = true
		}
		return true
	})
	edges := map[[2]int]bool{}
	for u, nb := range adj {
		for v := range nb {
			edges[[2]int{u, v}] = true
		}
	}
	for {
		support := map[[2]int]int{}
		for e := range edges {
			u, v := e[0], e[1]
			for w := range adj[u] {
				if w != v && adj[v][w] && edges[[2]int{u, w}] && edges[[2]int{v, w}] {
					support[e]++
				}
			}
		}
		removed := false
		for e := range edges {
			if support[e] < k-2 {
				delete(edges, e)
				delete(adj[e[0]], e[1])
				removed = true
			}
		}
		if !removed {
			out := map[[2]int]int{}
			for e := range edges {
				out[e] = support[e]
			}
			return out
		}
	}
}

func TestKTrussMatchesBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := rmatGraph(t, 6, 6, seed, true)
		for _, k := range []int{3, 4, 5} {
			want := bruteTruss(g, k)
			got, err := KTruss(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Nvals() != len(want) {
				t.Fatalf("seed %d k=%d: %d edges vs brute %d", seed, k, got.Nvals(), len(want))
			}
			got.Iterate(func(i, j int, s int64) bool {
				ws, ok := want[[2]int{i, j}]
				if !ok {
					t.Fatalf("seed %d k=%d: edge (%d,%d) not in brute truss", seed, k, i, j)
				}
				if int(s) != ws {
					t.Fatalf("seed %d k=%d: support(%d,%d)=%d want %d", seed, k, i, j, s, ws)
				}
				return true
			})
		}
	}
}

func componentsMatch(t *testing.T, got *grb.Vector[int64], want []int) {
	t.Helper()
	for v := range want {
		gv, err := got.GetElement(v)
		if err != nil {
			t.Fatalf("vertex %d unlabeled", v)
		}
		if int(gv) != want[v] {
			t.Fatalf("vertex %d: label %d want %d", v, gv, want[v])
		}
	}
}

func TestConnectedComponentsMatchBaseline(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		// Sparse enough to have several components.
		e := gen.ErdosRenyi(300, 260, gen.Config{Seed: seed, Undirected: true, NoSelfLoops: true})
		g := FromEdgeList(e, Undirected)
		want := baseline.ConnectedComponents(baseline.FromMatrix(g.A.Dup()))
		gotSV, err := ConnectedComponentsFastSV(g)
		if err != nil {
			t.Fatal(err)
		}
		componentsMatch(t, gotSV, want)
		gotLP, err := ConnectedComponentsLabelProp(g)
		if err != nil {
			t.Fatal(err)
		}
		componentsMatch(t, gotLP, want)
	}
}

func TestConnectedComponentsDirectedWeak(t *testing.T) {
	// A directed path is weakly connected: one component.
	g := FromEdgeList(gen.Path(10, gen.Config{}), Directed)
	got, err := ConnectedComponentsFastSV(g)
	if err != nil {
		t.Fatal(err)
	}
	if CountComponents(got) != 1 {
		t.Fatalf("components=%d", CountComponents(got))
	}
}

func TestPageRankMatchesBaseline(t *testing.T) {
	e := gen.RMAT(9, 8, gen.Config{Seed: 3, NoSelfLoops: true})
	g := FromEdgeList(e, Directed)
	bg := baseline.FromMatrix(g.A.Dup())
	want := baseline.PageRank(bg, 0.85, 100)
	res, err := PageRankWith(g, WithDamping(0.85), WithTolerance(1e-10), WithMaxIter(200))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("should converge")
	}
	sum := 0.0
	for v := 0; v < g.N(); v++ {
		r, err := res.Rank.GetElement(v)
		if err != nil {
			t.Fatalf("rank %d missing", v)
		}
		if math.Abs(r-want[v]) > 1e-6 {
			t.Fatalf("rank[%d]=%v want %v", v, r, want[v])
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

func TestPageRankBadArgs(t *testing.T) {
	g := rmatGraph(t, 5, 4, 1, false)
	if _, err := PageRankWith(g, WithDamping(1.5)); err != ErrBadArgument {
		t.Fatal(err)
	}
	if _, err := PageRankWith(g, WithDamping(-0.1)); err != ErrBadArgument {
		t.Fatal(err)
	}
	// Zero-value options select defaults rather than erroring.
	if _, err := PageRankWith(g, WithMaxIter(0), WithTolerance(0)); err != nil {
		t.Fatal(err)
	}
}

func TestTopK(t *testing.T) {
	v := grb.DenseVector([]float64{0.1, 0.9, 0.5, 0.7})
	top := TopK(v, 2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("topk=%v", top)
	}
	if got := TopK(v, 99); len(got) != 4 {
		t.Fatalf("overlong k: %v", got)
	}
}

func TestBetweennessMatchesBaseline(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		e := gen.ErdosRenyi(60, 300, gen.Config{Seed: seed, Undirected: true, NoSelfLoops: true})
		g := FromEdgeList(e, Undirected)
		bg := baseline.FromMatrix(g.A.Dup())
		sources := []int{0, 5, 11, 17, 23}
		want := baseline.BetweennessCentralitySources(bg, sources)
		got, err := BetweennessCentrality(g, sources)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			gv, err := got.GetElement(v)
			if err != nil {
				gv = 0
			}
			if math.Abs(gv-want[v]) > 1e-6 {
				t.Fatalf("bc[%d]=%v want %v", v, gv, want[v])
			}
		}
	}
}

func TestBetweennessPathGraph(t *testing.T) {
	// Exact BC on the undirected path of 5 (all sources).
	e := gen.Path(5, gen.Config{Undirected: true})
	g := FromEdgeList(e, Undirected)
	all := []int{0, 1, 2, 3, 4}
	got, err := BetweennessCentrality(g, all)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{1: 6, 2: 8, 3: 6}
	for v, w := range want {
		gv, err := got.GetElement(v)
		if err != nil || math.Abs(gv-w) > 1e-9 {
			t.Fatalf("bc[%d]=%v want %v (err %v)", v, gv, w, err)
		}
	}
	if _, err := got.GetElement(0); err == nil {
		t.Fatal("endpoints must have zero (absent) centrality")
	}
}

func TestMISValid(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := rmatGraph(t, 8, 6, seed, true)
		iset, err := MIS(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		ok, reason := VerifyMIS(g, iset)
		if !ok {
			t.Fatalf("seed %d: %s", seed, reason)
		}
	}
}

func TestMISIncludesIsolated(t *testing.T) {
	// A graph with isolated vertices: they must all join the set.
	e := gen.Ring(4, gen.Config{Undirected: true})
	e.N = 7 // vertices 4,5,6 isolated
	g := FromEdgeList(e, Undirected)
	iset, err := MIS(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 4; v < 7; v++ {
		if _, err := iset.GetElement(v); err != nil {
			t.Fatalf("isolated vertex %d must be in the MIS", v)
		}
	}
}

func TestColoringValid(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := rmatGraph(t, 8, 8, seed, true)
		colour, used, err := Coloring(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		if used < 1 {
			t.Fatal("no colours used")
		}
		if !VerifyColoring(g, colour) {
			t.Fatalf("seed %d: invalid coloring", seed)
		}
	}
}

func TestColoringRingNeedsFew(t *testing.T) {
	g := FromEdgeList(gen.Ring(10, gen.Config{Undirected: true}), Undirected)
	colour, used, err := Coloring(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyColoring(g, colour) {
		t.Fatal("invalid")
	}
	if used > 4 {
		t.Fatalf("ring coloured with %d colours; JP should use few", used)
	}
}

func TestMarkovClusteringTwoCliques(t *testing.T) {
	// Two K5 cliques joined by a single bridge edge: MCL must separate
	// them.
	e := gen.Complete(5, gen.Config{Undirected: true})
	e2 := gen.Complete(5, gen.Config{Undirected: true})
	e.N = 10
	for k := range e2.Src {
		e.Src = append(e.Src, e2.Src[k]+5)
		e.Dst = append(e.Dst, e2.Dst[k]+5)
		e.W = append(e.W, 1)
	}
	e.Src = append(e.Src, 0, 5)
	e.Dst = append(e.Dst, 5, 0)
	e.W = append(e.W, 1, 1)
	g := FromEdgeList(e, Undirected)
	labels, err := MarkovClustering(g, 2.0, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	l0, _ := labels.GetElement(0)
	l5, _ := labels.GetElement(5)
	if l0 == l5 {
		t.Fatal("cliques must end in different clusters")
	}
	for v := 1; v < 5; v++ {
		if lv, _ := labels.GetElement(v); lv != l0 {
			t.Fatalf("vertex %d left cluster 0", v)
		}
	}
	for v := 6; v < 10; v++ {
		if lv, _ := labels.GetElement(v); lv != l5 {
			t.Fatalf("vertex %d left cluster 1", v)
		}
	}
}

func TestPeerPressureTwoCliques(t *testing.T) {
	e := gen.Complete(6, gen.Config{Undirected: true})
	e2 := gen.Complete(6, gen.Config{Undirected: true})
	e.N = 12
	for k := range e2.Src {
		e.Src = append(e.Src, e2.Src[k]+6)
		e.Dst = append(e.Dst, e2.Dst[k]+6)
		e.W = append(e.W, 1)
	}
	g := FromEdgeList(e, Undirected)
	labels, err := PeerPressure(g, 50)
	if err != nil {
		t.Fatal(err)
	}
	l0, _ := labels.GetElement(0)
	l6, _ := labels.GetElement(6)
	if l0 == l6 {
		t.Fatal("disjoint cliques must get different clusters")
	}
	for v := 1; v < 6; v++ {
		if lv, _ := labels.GetElement(v); lv != l0 {
			t.Fatalf("vertex %d", v)
		}
	}
}

func TestDNNInference(t *testing.T) {
	// One feature, two neurons, two layers with hand-computed results.
	y0 := grb.MustMatrix[float64](1, 2)
	_ = y0.SetElement(0, 0, 1)
	_ = y0.SetElement(0, 1, 2)
	w1 := grb.MustMatrix[float64](2, 2)
	_ = w1.SetElement(0, 0, 1)
	_ = w1.SetElement(1, 0, 1)  // neuron0 ← y0+y1 = 3
	_ = w1.SetElement(1, 1, -1) // neuron1 ← -2 → ReLU drops
	bias := grb.MustVector[float64](2)
	_ = bias.SetElement(0, 0.5)
	layers := []DNNLayer{{W: w1, Bias: bias}}
	y, err := DNNInference(y0, layers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := y.GetElement(0, 0); v != 3.5 {
		t.Fatalf("y(0,0)=%v want 3.5", v)
	}
	if _, err := y.GetElement(0, 1); err == nil {
		t.Fatal("negative activation must be dropped by ReLU")
	}
	// Clamp.
	y2, err := DNNInference(y0, layers, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := y2.GetElement(0, 0); v != 2.0 {
		t.Fatalf("clamped y=%v", v)
	}
	cats, err := DNNCategories(y)
	if err != nil {
		t.Fatal(err)
	}
	if cats.Nvals() != 1 {
		t.Fatalf("categories=%d", cats.Nvals())
	}
}

func TestDNNMultiLayerRandom(t *testing.T) {
	// Random multi-layer run: activations must stay non-negative and
	// bounded by ymax.
	e := gen.ErdosRenyi(64, 512, gen.Config{Seed: 4, MinWeight: -0.5, MaxWeight: 1})
	w := e.Matrix()
	y0El := gen.Bipartite(32, 0, 0, gen.Config{})
	_ = y0El
	y0 := grb.MustMatrix[float64](32, 64)
	for i := 0; i < 32; i++ {
		_ = y0.SetElement(i, (i*7)%64, 1)
		_ = y0.SetElement(i, (i*13)%64, 0.5)
	}
	layers := []DNNLayer{{W: w}, {W: w}, {W: w}}
	y, err := DNNInference(y0, layers, 32)
	if err != nil {
		t.Fatal(err)
	}
	_, _, xs := y.ExtractTuples()
	for _, x := range xs {
		if x <= 0 || x > 32 {
			t.Fatalf("activation %v outside (0,32]", x)
		}
	}
}

func TestBipartiteMatching(t *testing.T) {
	// The diagonal graph forces a perfect matching.
	diag := grb.MustMatrix[float64](4, 4)
	for i := 0; i < 4; i++ {
		_ = diag.SetElement(i, i, 1)
	}
	rm, cm, err := BipartiteMatching(diag)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := VerifyMatching(diag, rm, cm); !ok {
		t.Fatal(reason)
	}
	if rm.Nvals() != 4 {
		t.Fatalf("matched %d rows; want perfect", rm.Nvals())
	}

	// A denser graph: the matching is maximal, hence at least half of
	// the maximum (which is 4 here) — at least 2 pairs.
	a := grb.MustMatrix[float64](4, 4)
	for i := 0; i < 4; i++ {
		_ = a.SetElement(i, i, 1)
		_ = a.SetElement(i, (i+1)%4, 1)
	}
	rm, cm, err = BipartiteMatching(a)
	if err != nil {
		t.Fatal(err)
	}
	if ok, reason := VerifyMatching(a, rm, cm); !ok {
		t.Fatal(reason)
	}
	if rm.Nvals() < 2 {
		t.Fatalf("matched %d rows; maximal matching is ≥ half of maximum", rm.Nvals())
	}
}

func TestBipartiteMatchingRandom(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		e := gen.Bipartite(40, 50, 300, gen.Config{Seed: seed})
		// Biadjacency block: rows 0..39, cols 0..49.
		a := grb.MustMatrix[float64](40, 50)
		for k := range e.Src {
			_ = a.SetElement(e.Src[k], e.Dst[k]-40, 1)
		}
		rm, cm, err := BipartiteMatching(a)
		if err != nil {
			t.Fatal(err)
		}
		if ok, reason := VerifyMatching(a, rm, cm); !ok {
			t.Fatalf("seed %d: %s", seed, reason)
		}
	}
}

func TestLocalClusterFindsPlantedCommunity(t *testing.T) {
	// Two dense communities with a weak bridge; seeding inside one must
	// recover (mostly) that community.
	e := gen.Complete(12, gen.Config{Undirected: true})
	e2 := gen.Complete(12, gen.Config{Undirected: true})
	e.N = 24
	for k := range e2.Src {
		e.Src = append(e.Src, e2.Src[k]+12)
		e.Dst = append(e.Dst, e2.Dst[k]+12)
		e.W = append(e.W, 1)
	}
	e.Src = append(e.Src, 0, 12)
	e.Dst = append(e.Dst, 12, 0)
	e.W = append(e.W, 1, 1)
	g := FromEdgeList(e, Undirected)
	res, err := LocalCluster(g, 3, 0.15, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) == 0 {
		t.Fatal("empty cluster")
	}
	inFirst := 0
	for _, v := range res.Members {
		if v < 12 {
			inFirst++
		}
	}
	if inFirst < len(res.Members)-1 {
		t.Fatalf("cluster leaks: %v", res.Members)
	}
	if res.Conductance > 0.5 {
		t.Fatalf("conductance %v too high", res.Conductance)
	}
}

func TestMeasureAndHistogram(t *testing.T) {
	g := FromEdgeList(gen.Ring(8, gen.Config{Undirected: true}), Undirected)
	s := Measure(g)
	if s.N != 8 || s.NEdges != 16 || s.NSelfLoops != 0 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxDegree != 2 || s.MinDegree != 2 || s.AvgDegree != 2 {
		t.Fatalf("degrees %+v", s)
	}
	h := DegreeHistogram(g)
	if len(h) != 3 || h[2] != 8 {
		t.Fatalf("hist %v", h)
	}
}

func TestGraphProperties(t *testing.T) {
	g := FromEdgeList(gen.Ring(6, gen.Config{Undirected: true}), Undirected)
	if !g.IsSymmetric() {
		t.Fatal("undirected ring must be symmetric")
	}
	d := FromEdgeList(gen.Path(6, gen.Config{}), Directed)
	if d.IsSymmetric() {
		t.Fatal("directed path must not be symmetric")
	}
	// In/out degrees of the directed path.
	od := d.OutDegree()
	if v, _ := od.GetElement(0); v != 1 {
		t.Fatal("out degree")
	}
	id := d.InDegree()
	if _, err := id.GetElement(0); err == nil {
		t.Fatal("vertex 0 has no in-edges")
	}
	if v, _ := id.GetElement(5); v != 1 {
		t.Fatal("in degree")
	}
	// Self loops.
	a := grb.MustMatrix[float64](3, 3)
	_ = a.SetElement(0, 0, 1)
	_ = a.SetElement(1, 2, 1)
	gl, _ := NewGraph(a, Directed)
	if gl.NSelfLoops() != 1 {
		t.Fatalf("self loops=%d", gl.NSelfLoops())
	}
	// AT cache.
	at := d.AT()
	if _, err := at.GetElement(1, 0); err != nil {
		t.Fatal("transpose entry missing")
	}
	if d.AT() != at {
		t.Fatal("AT must be cached")
	}
}

func TestNewGraphValidation(t *testing.T) {
	if _, err := NewGraph(nil, Directed); err == nil {
		t.Fatal("nil adjacency")
	}
	rect := grb.MustMatrix[float64](2, 3)
	if _, err := NewGraph(rect, Directed); err == nil {
		t.Fatal("rectangular adjacency")
	}
}
