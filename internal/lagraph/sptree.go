package lagraph

import "lagraph/internal/grb"

// Shortest-path tree reconstruction: given the distance vector from an
// SSSP run, recover a parent vector such that following parents from any
// reached vertex walks a shortest path back to the source. The
// reconstruction is one pass over the edges through the GraphBLAS
// iterator — no second relaxation loop.

// ShortestPathTree returns parents(v) = u for some edge u→v with
// dist(u) + w(u,v) = dist(v); the source is its own parent. The smallest
// qualifying u is chosen, making the result deterministic.
func ShortestPathTree(g *Graph, src int, dist *grb.Vector[float64]) (*grb.Vector[int64], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	if dist == nil {
		return nil, grb.ErrUninitialized
	}
	n := g.N()
	parents := grb.MustVector[int64](n)
	_ = parents.SetElement(src, int64(src))
	dd, dok := make([]float64, n), make([]bool, n)
	dist.Iterate(func(i int, x float64) bool {
		dd[i], dok[i] = x, true
		return true
	})
	minOp := grb.MinOp[int64]()
	g.A.Iterate(func(u, v int, w float64) bool {
		if v != src && dok[u] && dok[v] && dd[u]+w == dd[v] {
			_ = parents.MergeElement(v, int64(u), minOp)
		}
		return true
	})
	parents.Wait()
	return parents, nil
}

// PathTo walks the parent vector from dst back to the source and returns
// the path source→dst, or ok=false if dst has no parent entry.
func PathTo(parents *grb.Vector[int64], dst int) (path []int, ok bool) {
	v := dst
	for {
		p, err := parents.GetElement(v)
		if err != nil {
			return nil, false
		}
		path = append(path, v)
		if int(p) == v {
			break
		}
		v = int(p)
		if len(path) > parents.Size() {
			return nil, false // cycle guard
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, true
}
