package lagraph

import (
	"math"
	"testing"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

func rmatGraph(t testing.TB, scale, ef int, seed int64, undirected bool) *Graph {
	t.Helper()
	e := gen.RMAT(scale, ef, gen.Config{Seed: seed, Undirected: undirected, NoSelfLoops: true})
	kind := Directed
	if undirected {
		kind = Undirected
	}
	return FromEdgeList(e, kind)
}

// levelsMatch compares a GraphBLAS level vector with the baseline array
// (-1 meaning unreached).
func levelsMatch(t *testing.T, got *grb.Vector[int32], want []int, offset int32) {
	t.Helper()
	for v, wl := range want {
		gl, err := got.GetElement(v)
		if wl < 0 {
			if err == nil {
				t.Fatalf("vertex %d should be unreached, got level %d", v, gl)
			}
			continue
		}
		if err != nil {
			t.Fatalf("vertex %d missing level (want %d)", v, wl)
		}
		if gl != int32(wl)+offset {
			t.Fatalf("vertex %d: level %d want %d", v, gl, int32(wl)+offset)
		}
	}
}

func TestBFSLevelSimpleMatchesBaseline(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := rmatGraph(t, 8, 8, seed, false)
		bg := baseline.FromMatrix(g.A.Dup())
		want, _ := baseline.BFSLevels(bg, 0)
		got, err := BFSLevelSimple(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		levelsMatch(t, got, want, 1) // Fig. 2 BFS is 1-based
	}
}

func TestBFSLevelsAllDirections(t *testing.T) {
	g := rmatGraph(t, 9, 8, 4, false)
	bg := baseline.FromMatrix(g.A.Dup())
	want, _ := baseline.BFSLevels(bg, 3)
	for _, dir := range []grb.Direction{grb.DirAuto, grb.DirPush, grb.DirPull} {
		got, err := BFSLevels(g, 3, WithDirection(dir))
		if err != nil {
			t.Fatal(err)
		}
		levelsMatch(t, got, want, 0)
	}
}

func TestBFSDisconnected(t *testing.T) {
	// Two disjoint rings.
	e := gen.Ring(6, gen.Config{Undirected: true})
	e2 := gen.Ring(6, gen.Config{Undirected: true})
	for k := range e2.Src {
		e.Src = append(e.Src, e2.Src[k]+6)
		e.Dst = append(e.Dst, e2.Dst[k]+6)
		e.W = append(e.W, 1)
	}
	e.N = 12
	g := FromEdgeList(e, Undirected)
	levels, err := BFSLevels(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if levels.Nvals() != 6 {
		t.Fatalf("reached %d vertices, want 6", levels.Nvals())
	}
	for v := 6; v < 12; v++ {
		if _, err := levels.GetElement(v); err == nil {
			t.Fatalf("vertex %d in the other component was reached", v)
		}
	}
}

func TestBFSParentsValid(t *testing.T) {
	g := rmatGraph(t, 9, 8, 5, true)
	bg := baseline.FromMatrix(g.A.Dup())
	wantLevels, _ := baseline.BFSLevels(bg, 1)
	parents, err := BFSParents(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A parent vector is valid iff: source is its own parent, every
	// reached vertex has a parent one level above it, and the reached
	// sets coincide.
	if p, err := parents.GetElement(1); err != nil || p != 1 {
		t.Fatalf("source parent: (%v, %v)", p, err)
	}
	for v := 0; v < g.N(); v++ {
		p, err := parents.GetElement(v)
		if wantLevels[v] < 0 {
			if err == nil {
				t.Fatalf("unreachable vertex %d has parent %d", v, p)
			}
			continue
		}
		if err != nil {
			t.Fatalf("reached vertex %d has no parent", v)
		}
		if v == 1 {
			continue
		}
		if wantLevels[int(p)] != wantLevels[v]-1 {
			t.Fatalf("vertex %d: parent %d at level %d, want level %d",
				v, p, wantLevels[int(p)], wantLevels[v]-1)
		}
		// Parent must be an in-neighbour (edge p→v).
		if _, err := g.A.GetElement(int(p), v); err != nil {
			t.Fatalf("parent edge %d→%d missing", p, v)
		}
	}
}

func TestBFSBothConsistent(t *testing.T) {
	g := rmatGraph(t, 8, 6, 6, true)
	levels, parents, err := BFSBoth(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := BFSLevels(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if levels.Nvals() != l2.Nvals() || levels.Nvals() != parents.Nvals() {
		t.Fatalf("nvals: both=%d levels=%d parents=%d", levels.Nvals(), l2.Nvals(), parents.Nvals())
	}
	li, lx := levels.ExtractTuples()
	for k, v := range li {
		want, _ := l2.GetElement(v)
		if lx[k] != want {
			t.Fatalf("level mismatch at %d", v)
		}
	}
}

func TestBFSStatsDirectionSwitch(t *testing.T) {
	// On a scale-free graph the frontier balloons: DirAuto must start
	// with push and switch to pull at the hump.
	g := rmatGraph(t, 11, 16, 7, true)
	var stats BFSStats
	if _, err := BFSLevels(g, 0, WithStats(&stats), WithPushPullRatio(16)); err != nil {
		t.Fatal(err)
	}
	if stats.Depth < 2 {
		t.Fatalf("depth=%d", stats.Depth)
	}
	if stats.Directions[0] != grb.DirPush {
		t.Fatal("first iteration should push (frontier = 1 vertex)")
	}
	sawPull := false
	for _, d := range stats.Directions {
		if d == grb.DirPull {
			sawPull = true
		}
	}
	if !sawPull {
		t.Fatal("expected at least one pull iteration on a scale-free graph")
	}
}

func TestBFSBadSource(t *testing.T) {
	g := rmatGraph(t, 6, 4, 1, false)
	if _, err := BFSLevels(g, -1); err != ErrBadArgument {
		t.Fatal(err)
	}
	if _, err := BFSLevels(g, g.N()); err != ErrBadArgument {
		t.Fatal(err)
	}
	if _, err := BFSParents(g, 99999); err != ErrBadArgument {
		t.Fatal(err)
	}
}

func TestSSSPBellmanFordMatchesDijkstra(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		e := gen.RMAT(8, 8, gen.Config{Seed: seed, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 10})
		g := FromEdgeList(e, Undirected)
		bg := baseline.FromMatrix(g.A.Dup())
		want := baseline.Dijkstra(bg, 0)
		got, err := SSSPBellmanFord(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		ssspMatch(t, got, want)
	}
}

func ssspMatch(t *testing.T, got *grb.Vector[float64], want []float64) {
	t.Helper()
	for v, wd := range want {
		gd, err := got.GetElement(v)
		if math.IsInf(wd, 1) {
			if err == nil {
				t.Fatalf("vertex %d should be unreachable, got %v", v, gd)
			}
			continue
		}
		if err != nil {
			t.Fatalf("vertex %d missing distance (want %v)", v, wd)
		}
		if math.Abs(gd-wd) > 1e-9 {
			t.Fatalf("vertex %d: dist %v want %v", v, gd, wd)
		}
	}
}

func TestSSSPDeltaSteppingMatchesDijkstra(t *testing.T) {
	for _, delta := range []float64{1, 2.5, 100} {
		e := gen.RMAT(8, 8, gen.Config{Seed: 3, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 10})
		g := FromEdgeList(e, Undirected)
		bg := baseline.FromMatrix(g.A.Dup())
		want := baseline.Dijkstra(bg, 2)
		got, err := SSSP(g, 2, WithDelta(delta))
		if err != nil {
			t.Fatal(err)
		}
		ssspMatch(t, got, want)
	}
}

func TestSSSPDeltaSteppingGrid(t *testing.T) {
	// Long-diameter weighted grid, the delta-stepping sweet spot.
	e := gen.Grid2D(20, 20, gen.Config{Seed: 9, Undirected: true, MinWeight: 1, MaxWeight: 5})
	g := FromEdgeList(e, Undirected)
	bg := baseline.FromMatrix(g.A.Dup())
	want := baseline.Dijkstra(bg, 0)
	got, err := SSSP(g, 0, WithDelta(3))
	if err != nil {
		t.Fatal(err)
	}
	ssspMatch(t, got, want)
}

func TestSSSPBadArgs(t *testing.T) {
	g := rmatGraph(t, 6, 4, 1, true)
	if _, err := SSSPBellmanFord(g, -1); err != ErrBadArgument {
		t.Fatal(err)
	}
	if _, err := SSSP(g, 0, WithDelta(-1)); err != ErrBadArgument {
		t.Fatal(err)
	}
}

func TestAPSPMatchesDijkstraRows(t *testing.T) {
	e := gen.ErdosRenyi(40, 200, gen.Config{Seed: 5, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 9})
	g := FromEdgeList(e, Undirected)
	bg := baseline.FromMatrix(g.A.Dup())
	d, err := APSP(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{0, 7, 20} {
		want := baseline.Dijkstra(bg, src)
		for v := 0; v < g.N(); v++ {
			gd, err := d.GetElement(src, v)
			if math.IsInf(want[v], 1) {
				if err == nil {
					t.Fatalf("(%d,%d) should be unreachable", src, v)
				}
				continue
			}
			if err != nil || math.Abs(gd-want[v]) > 1e-9 {
				t.Fatalf("(%d,%d): %v want %v (err %v)", src, v, gd, want[v], err)
			}
		}
	}
}

func TestAStarOnGrid(t *testing.T) {
	rows, cols := 15, 17
	e := gen.Grid2D(rows, cols, gen.Config{Seed: 11, Undirected: true, MinWeight: 1, MaxWeight: 4})
	g := FromEdgeList(e, Undirected)
	bg := baseline.FromMatrix(g.A.Dup())
	src, dst := 0, rows*cols-1
	want := baseline.Dijkstra(bg, src)

	path, cost, ok, err := AStar(g, src, dst, GridManhattan(cols, dst))
	if err != nil || !ok {
		t.Fatalf("astar: ok=%v err=%v", ok, err)
	}
	if math.Abs(cost-want[dst]) > 1e-9 {
		t.Fatalf("cost %v want %v", cost, want[dst])
	}
	// Path must be a real walk of the right cost.
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatal("path endpoints")
	}
	sum := 0.0
	for k := 0; k+1 < len(path); k++ {
		w, err := g.A.GetElement(path[k], path[k+1])
		if err != nil {
			t.Fatalf("path edge %d→%d missing", path[k], path[k+1])
		}
		sum += w
	}
	if math.Abs(sum-cost) > 1e-9 {
		t.Fatalf("path cost %v reported %v", sum, cost)
	}
	// Zero heuristic (Dijkstra mode) agrees.
	_, cost2, ok, err := AStar(g, src, dst, ZeroHeuristic)
	if err != nil || !ok || math.Abs(cost2-cost) > 1e-9 {
		t.Fatalf("zero-heuristic cost %v want %v", cost2, cost)
	}
}

func TestAStarUnreachable(t *testing.T) {
	e := gen.Path(4, gen.Config{}) // directed path; 3 cannot reach 0
	g := FromEdgeList(e, Directed)
	_, _, ok, err := AStar(g, 3, 0, ZeroHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("3 must not reach 0 in a directed path")
	}
}
