package lagraph

import (
	"math"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// HITS (Kleinberg's hubs and authorities): the §V list is explicitly
// non-exhaustive, and HITS is the other classic ranking that is pure
// linear algebra — alternating a = Aᵀh, h = Aa with normalization, i.e.
// the power method on AᵀA / AAᵀ.

// HITSResult carries the two scores and convergence information.
type HITSResult struct {
	Hubs        *grb.Vector[float64]
	Authorities *grb.Vector[float64]
	Iterations  int
	Converged   bool
}

// HITSWith computes hub and authority scores, stopping when the L1 change
// of both vectors drops below the tolerance. Defaults: tolerance 1e-6,
// at most 50 iterations.
func HITSWith(g *Graph, opts ...Option) (*HITSResult, error) {
	cfg := newOptions(opts)
	tol := cfg.tol(1e-6)
	maxIter := cfg.maxIter(50)
	ob := cfg.observer()
	n := g.N()
	hubs := grb.DenseVector(constants(n, 1/math.Sqrt(float64(n))))
	auth := grb.DenseVector(constants(n, 1/math.Sqrt(float64(n))))
	plusSecond := grb.PlusSecond[float64]()

	for iter := 1; iter <= maxIter; iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		// a' = Aᵀ h (authorities collect from in-links).
		newAuth := grb.MustVector[float64](n)
		if err := grb.MxV(newAuth, (*grb.Vector[bool])(nil), nil, plusSecond, g.A, hubs, grb.DescT0); err != nil {
			return nil, err
		}
		if err := normalizeL2(newAuth, n); err != nil {
			return nil, err
		}
		// h' = A a' (hubs collect from out-links).
		newHubs := grb.MustVector[float64](n)
		if err := grb.MxV(newHubs, (*grb.Vector[bool])(nil), nil, plusSecond, g.A, newAuth, nil); err != nil {
			return nil, err
		}
		if err := normalizeL2(newHubs, n); err != nil {
			return nil, err
		}
		dh, err := l1diff(newHubs, hubs, n)
		if err != nil {
			return nil, err
		}
		da, err := l1diff(newAuth, auth, n)
		if err != nil {
			return nil, err
		}
		hubs, auth = newHubs, newAuth
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "hits", Iter: iter,
				Residual: dh + da,
				DurNanos: ob.Now() - t0,
			})
		}
		if dh+da < tol {
			return &HITSResult{Hubs: hubs, Authorities: auth, Iterations: iter, Converged: true}, nil
		}
	}
	return &HITSResult{Hubs: hubs, Authorities: auth, Iterations: maxIter, Converged: false}, nil
}

// normalizeL2 scales v to unit Euclidean norm (no-op on a zero vector).
func normalizeL2(v *grb.Vector[float64], n int) error {
	sq := grb.MustVector[float64](n)
	if err := grb.ApplyVector[float64, float64, bool](sq, nil, nil,
		func(x float64) float64 { return x * x }, v, nil); err != nil {
		return err
	}
	ss, err := grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), sq)
	if err != nil {
		return err
	}
	if ss == 0 {
		return nil
	}
	inv := 1 / math.Sqrt(ss)
	return grb.ApplyVectorBind2nd[float64, float64, float64, bool](v, nil, nil,
		grb.Times[float64](), v, inv, nil)
}

// l1diff returns ‖u − v‖₁ over the union of patterns.
func l1diff(u, v *grb.Vector[float64], n int) (float64, error) {
	d := grb.MustVector[float64](n)
	if err := grb.EWiseUnionVector[float64, bool](d, nil, nil, grb.Minus[float64](), u, 0, v, 0, nil); err != nil {
		return 0, err
	}
	abs := grb.MustVector[float64](n)
	if err := grb.ApplyVector[float64, float64, bool](abs, nil, nil, math.Abs, d, nil); err != nil {
		return 0, err
	}
	return grb.ReduceVectorToScalar(grb.PlusMonoid[float64](), abs)
}
