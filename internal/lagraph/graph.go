// Package lagraph is the algorithm collection the paper proposes: the
// "library of high-level graph algorithms built on top of the GraphBLAS"
// of §V, together with the support utilities (§VI): cached graph
// properties, degree computations and basic measurements.
//
// Every algorithm here is formulated in GraphBLAS operations (mxm, mxv,
// vxm, eWise*, apply, select, reduce, assign, extract) on the grb
// substrate; classic pointer-chasing counterparts for testing and
// benchmarking live in internal/baseline.
package lagraph

import (
	"errors"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

// Kind distinguishes directed adjacency from undirected (symmetric)
// adjacency.
type Kind int

const (
	// Directed adjacency: A(i,j) is the edge i→j.
	Directed Kind = iota
	// Undirected adjacency: A must be structurally symmetric.
	Undirected
)

// Errors reported by the algorithms.
var (
	// ErrNotUndirected is returned by algorithms that require symmetric
	// adjacency (triangle counting, k-truss, ...).
	ErrNotUndirected = errors.New("lagraph: algorithm requires an undirected graph")
	// ErrBadArgument is returned for out-of-range sources and similar.
	ErrBadArgument = errors.New("lagraph: bad argument")
	// ErrNoConvergence is returned when an iterative method hits its
	// iteration cap.
	ErrNoConvergence = errors.New("lagraph: iteration limit reached without convergence")
)

// Graph bundles a GraphBLAS adjacency matrix with cached derived
// properties, in the style of the LAGraph_Graph object: the cache is
// computed on demand and reused by the algorithms.
type Graph struct {
	// A is the (weighted) adjacency matrix; A(i,j) is the weight of edge
	// i→j.
	A    *grb.Matrix[float64]
	Kind Kind

	at        *grb.Matrix[float64]
	pattern   *grb.Matrix[int64]
	outDeg    *grb.Vector[int64]
	inDeg     *grb.Vector[int64]
	nselfLoop int
	selfOK    bool
}

// InvalidateCache drops the cached derived properties (transpose,
// pattern, degrees). Call it after mutating A directly; the algorithms
// otherwise treat the adjacency as immutable, as LAGraph does.
func (g *Graph) InvalidateCache() {
	g.at = nil
	g.pattern = nil
	g.outDeg = nil
	g.inDeg = nil
	g.selfOK = false
}

// NewGraph wraps an adjacency matrix. The matrix is adopted, not copied.
func NewGraph(a *grb.Matrix[float64], kind Kind) (*Graph, error) {
	if a == nil {
		return nil, grb.ErrUninitialized
	}
	if a.Nrows() != a.Ncols() {
		return nil, grb.ErrDimensionMismatch
	}
	return &Graph{A: a, Kind: kind}, nil
}

// FromEdgeList builds a Graph from a generated edge list.
func FromEdgeList(e *gen.EdgeList, kind Kind) *Graph {
	g, err := NewGraph(e.Matrix(), kind)
	if err != nil {
		panic(err)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.A.Nrows() }

// NEdges returns the number of stored adjacency entries.
func (g *Graph) NEdges() int { return g.A.Nvals() }

// AT returns the cached transpose of the adjacency matrix, computing it on
// first use. For undirected graphs it is A itself.
func (g *Graph) AT() *grb.Matrix[float64] {
	if g.Kind == Undirected {
		return g.A
	}
	if g.at == nil {
		at := grb.MustMatrix[float64](g.A.Ncols(), g.A.Nrows())
		if err := grb.Transpose[float64, bool](at, nil, nil, g.A, nil); err != nil {
			panic(err)
		}
		g.at = at
	}
	return g.at
}

// OutDegree returns the cached out-degree vector (number of stored entries
// per row).
func (g *Graph) OutDegree() *grb.Vector[int64] {
	if g.outDeg == nil {
		deg := grb.MustVector[int64](g.N())
		ones := grb.MustMatrix[int64](g.A.Nrows(), g.A.Ncols())
		if err := grb.ApplyMatrix[float64, int64, bool](ones, nil, nil, grb.One[float64, int64](), g.A, nil); err != nil {
			panic(err)
		}
		if err := grb.ReduceMatrixToVector[int64, bool](deg, nil, nil, grb.PlusMonoid[int64](), ones, nil); err != nil {
			panic(err)
		}
		g.outDeg = deg
	}
	return g.outDeg
}

// InDegree returns the cached in-degree vector.
func (g *Graph) InDegree() *grb.Vector[int64] {
	if g.Kind == Undirected {
		return g.OutDegree()
	}
	if g.inDeg == nil {
		deg := grb.MustVector[int64](g.N())
		ones := grb.MustMatrix[int64](g.A.Nrows(), g.A.Ncols())
		if err := grb.ApplyMatrix[float64, int64, bool](ones, nil, nil, grb.One[float64, int64](), g.A, nil); err != nil {
			panic(err)
		}
		if err := grb.ReduceMatrixToVector[int64, bool](deg, nil, nil, grb.PlusMonoid[int64](), ones, grb.DescT0); err != nil {
			panic(err)
		}
		g.inDeg = deg
	}
	return g.inDeg
}

// NSelfLoops counts diagonal entries (cached).
func (g *Graph) NSelfLoops() int {
	if !g.selfOK {
		d := grb.MustMatrix[float64](g.A.Nrows(), g.A.Ncols())
		if err := grb.SelectMatrix[float64, bool](d, nil, nil, grb.Diag[float64](0), g.A, nil); err != nil {
			panic(err)
		}
		g.nselfLoop = d.Nvals()
		g.selfOK = true
	}
	return g.nselfLoop
}

// IsSymmetric checks structural and numerical symmetry of the adjacency.
func (g *Graph) IsSymmetric() bool {
	at := grb.MustMatrix[float64](g.A.Ncols(), g.A.Nrows())
	if err := grb.Transpose[float64, bool](at, nil, nil, g.A, nil); err != nil {
		panic(err)
	}
	if at.Nvals() != g.A.Nvals() {
		return false
	}
	eq := grb.MustMatrix[bool](g.A.Nrows(), g.A.Ncols())
	if err := grb.EWiseMultMatrix[float64, float64, bool, bool](eq, nil, nil, grb.Eq[float64](), g.A, at, nil); err != nil {
		panic(err)
	}
	if eq.Nvals() != g.A.Nvals() {
		return false // patterns differ
	}
	allTrue, err := grb.ReduceMatrixToScalar(grb.LAndMonoid(), eq)
	if err != nil {
		return false
	}
	return allTrue
}

// requireUndirected returns ErrNotUndirected unless the graph is declared
// undirected.
func (g *Graph) requireUndirected() error {
	if g.Kind != Undirected {
		return ErrNotUndirected
	}
	return nil
}

// checkSource validates a source vertex id.
func (g *Graph) checkSource(src int) error {
	if src < 0 || src >= g.N() {
		return ErrBadArgument
	}
	return nil
}

// Stats summarizes a graph: the "basic measurements" support utility the
// paper lists (§VI).
type Stats struct {
	N          int
	NEdges     int
	NSelfLoops int
	MinDegree  int64
	MaxDegree  int64
	AvgDegree  float64
	Density    float64
}

// Measure computes basic graph measurements.
func Measure(g *Graph) Stats {
	s := Stats{N: g.N(), NEdges: g.NEdges(), NSelfLoops: g.NSelfLoops()}
	deg := g.OutDegree()
	mx, err := grb.ReduceVectorToScalar(grb.MaxMonoid[int64](), deg)
	if err == nil && deg.Nvals() > 0 {
		s.MaxDegree = mx
	}
	if deg.Nvals() == g.N() {
		mn, err := grb.ReduceVectorToScalar(grb.MinMonoid[int64](), deg)
		if err == nil {
			s.MinDegree = mn
		}
	} // vertices with no entries have degree 0
	if s.N > 0 {
		s.AvgDegree = float64(s.NEdges) / float64(s.N)
		s.Density = float64(s.NEdges) / (float64(s.N) * float64(s.N))
	}
	return s
}

// DegreeHistogram returns counts of vertices by out-degree (index =
// degree), the degree-distribution measurement used to sanity-check
// scale-free generators.
func DegreeHistogram(g *Graph) []int {
	deg := g.OutDegree()
	is, xs := deg.ExtractTuples()
	maxd := int64(0)
	for _, d := range xs {
		if d > maxd {
			maxd = d
		}
	}
	hist := make([]int, maxd+1)
	for _, d := range xs {
		hist[d]++
	}
	hist[0] += g.N() - len(is)
	return hist
}

// PatternInt64 returns the adjacency pattern with all weights replaced by
// 1 (int64), the form several §V algorithms start from. The result is
// cached; callers must not mutate it.
func (g *Graph) PatternInt64() *grb.Matrix[int64] {
	if g.pattern == nil {
		p := grb.MustMatrix[int64](g.A.Nrows(), g.A.Ncols())
		if err := grb.ApplyMatrix[float64, int64, bool](p, nil, nil, grb.One[float64, int64](), g.A, nil); err != nil {
			panic(err)
		}
		p.Wait()
		g.pattern = p
	}
	return g.pattern
}
