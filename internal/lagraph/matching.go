package lagraph

import (
	"sort"

	"lagraph/internal/grb"
)

// Maximal cardinality matching on bipartite graphs (§V, [42]) in the
// Azad–Buluç linear-algebraic style: rounds of propose (each unmatched
// row offers to one unmatched column neighbour), resolve (each column
// accepts one proposal) and commit, until no augmenting edge remains.
// The result is maximal (every remaining edge touches a matched vertex),
// not necessarily maximum.

// BipartiteMatching computes a maximal matching of the nrows×ncols
// biadjacency matrix a. It returns rowMate (for each matched row, its
// column) and colMate (the reverse map).
func BipartiteMatching(a *grb.Matrix[float64]) (rowMate, colMate *grb.Vector[int64], err error) {
	if a == nil {
		return nil, nil, grb.ErrUninitialized
	}
	nr, nc := a.Nrows(), a.Ncols()
	rowMate = grb.MustVector[int64](nr)
	colMate = grb.MustVector[int64](nc)

	// anyCol: for an unmatched row, pick any unmatched column neighbour.
	// The frontier carries row ids; min tie-breaks column contention.
	minFirst := grb.Semiring[int64, float64, int64]{Add: grb.MinMonoid[int64](), Mul: grb.First[int64, float64]()}

	for round := 0; round <= nr+nc; round++ {
		// rows still unmatched, loaded with their ids.
		unmatchedRows := grb.MustVector[int64](nr)
		if err := grb.ApplyIndexVector(unmatchedRows, rowMate, nil,
			func(_ int64, i, _ int) int64 { return int64(i) }, idVector(nr), grb.DescC); err != nil {
			return nil, nil, err
		}
		if unmatchedRows.Nvals() == 0 {
			return rowMate, colMate, nil
		}
		// proposals(j) = smallest unmatched row adjacent to column j,
		// masked to unmatched columns.
		proposals := grb.MustVector[int64](nc)
		d := &grb.Descriptor{Comp: true, Replace: true}
		if err := grb.VxM(proposals, colMate, nil, minFirst, unmatchedRows, a, d); err != nil {
			return nil, nil, err
		}
		if proposals.Nvals() == 0 {
			return rowMate, colMate, nil // maximal: no augmenting edge
		}
		// Resolve row contention: a row may win several columns; keep
		// the smallest column per row.
		pj, pr := proposals.ExtractTuples()
		won := map[int64]int{}
		for k := range pj {
			r := pr[k]
			if c, ok := won[r]; !ok || pj[k] < c {
				won[r] = pj[k]
			}
		}
		// Commit in sorted row order: won's keys are distinct, but the
		// mate vectors' pending-tuple buffers must fill in an order
		// independent of map iteration so results serialize identically
		// run to run.
		rows := make([]int64, 0, len(won))
		for r := range won {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
		for _, r := range rows {
			c := won[r]
			_ = rowMate.SetElement(int(r), int64(c))
			_ = colMate.SetElement(c, r)
		}
	}
	return nil, nil, ErrNoConvergence
}

// idVector returns the dense vector v(i) = i.
func idVector(n int) *grb.Vector[int64] {
	xs := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i)
	}
	return grb.DenseVector(xs)
}

// VerifyMatching checks mate consistency and maximality against the
// biadjacency matrix.
func VerifyMatching(a *grb.Matrix[float64], rowMate, colMate *grb.Vector[int64]) (bool, string) {
	ri, rx := rowMate.ExtractTuples()
	seenCol := map[int64]bool{}
	for k := range ri {
		c := rx[k]
		if seenCol[c] {
			return false, "column matched twice"
		}
		seenCol[c] = true
		if _, err := a.GetElement(ri[k], int(c)); err != nil {
			return false, "matched pair is not an edge"
		}
		back, err := colMate.GetElement(int(c))
		if err != nil || back != int64(ri[k]) {
			return false, "mate vectors inconsistent"
		}
	}
	// Maximality: every edge must touch a matched row or column.
	is, js, _ := a.ExtractTuples()
	rowMatched := map[int]bool{}
	for _, r := range ri {
		rowMatched[r] = true
	}
	for k := range is {
		if !rowMatched[is[k]] && !seenCol[int64(js[k])] {
			return false, "augmenting edge remains"
		}
	}
	return true, ""
}
