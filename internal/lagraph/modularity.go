package lagraph

import (
	"sort"

	"lagraph/internal/grb"
)

// Modularity of a clustering — the standard quality score
// Q = (1/2m) Σ_ij [A_ij − k_i·k_j / 2m] δ(c_i, c_j), used to evaluate the
// §V clustering algorithms. Expressed over the GraphBLAS: the positive
// term is a masked reduction of A over within-cluster edges, the
// expectation term a per-cluster degree-sum contraction.

// Modularity scores a cluster labeling of an undirected graph. Edge
// weights count as multiplicities.
func Modularity(g *Graph, labels *grb.Vector[int64]) (float64, error) {
	if err := g.requireUndirected(); err != nil {
		return 0, err
	}
	if labels == nil {
		return 0, grb.ErrUninitialized
	}
	if labels.Size() != g.N() {
		return 0, grb.ErrDimensionMismatch
	}
	twoM, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), g.A)
	if err != nil {
		return 0, err
	}
	if twoM == 0 {
		return 0, nil
	}
	labelOf := make(map[int]int64, labels.Nvals())
	labels.Iterate(func(i int, c int64) bool {
		labelOf[i] = c
		return true
	})

	// Within-cluster edge weight.
	within := 0.0
	g.A.Iterate(func(i, j int, w float64) bool {
		ci, oki := labelOf[i]
		cj, okj := labelOf[j]
		if oki && okj && ci == cj {
			within += w
		}
		return true
	})

	// Per-cluster weighted degree sums.
	deg := grb.MustVector[float64](g.N())
	if err := grb.ReduceMatrixToVector[float64, bool](deg, nil, nil, grb.PlusMonoid[float64](), g.A, nil); err != nil {
		return 0, err
	}
	clusterDeg := map[int64]float64{}
	deg.Iterate(func(i int, d float64) bool {
		if c, ok := labelOf[i]; ok {
			clusterDeg[c] += d
		}
		return true
	})
	// Fold in sorted cluster order: float addition is not associative, so
	// summing in map order would change the last bits of Q from run to run.
	cids := make([]int64, 0, len(clusterDeg))
	for c := range clusterDeg {
		cids = append(cids, c)
	}
	sort.Slice(cids, func(a, b int) bool { return cids[a] < cids[b] })
	expect := 0.0
	for _, c := range cids {
		d := clusterDeg[c]
		expect += d * d
	}
	return within/twoM - expect/(twoM*twoM), nil
}
