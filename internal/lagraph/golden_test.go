// Golden-file suite: algorithm results on a fixed generator graph,
// stored as checksummed store frames under testdata/golden/. Each run
// recomputes every result at SetParallelism(1) and SetParallelism(8),
// asserts the two are byte-identical (the repo's cross-parallelism
// determinism contract), and then compares against the committed golden
// frame — so a kernel change that silently perturbs results fails CI
// with a bitwise diff, and a corrupted testdata file fails its CRC
// before it can masquerade as a reference.
//
// Regenerate after an intentional semantic change:
//
//	go test ./internal/lagraph -run TestGolden -update-golden
//
// This file lives in package lagraph_test (external) because it imports
// internal/store, which itself depends on lagraph via the catalog.
package lagraph_test

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/store"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden frames from current results")

// goldenGraph is the fixed fixture every golden case runs on: scale-8
// power-law, seed 42, undirected, no self loops. Changing any of these
// parameters invalidates every golden file.
func goldenGraph(t testing.TB) *lagraph.Graph {
	t.Helper()
	n := 1 << 8
	e := gen.PowerLaw(n, 8*n, 1.8, gen.Config{Seed: 42, Undirected: true, NoSelfLoops: true})
	g, err := lagraph.NewGraph(e.Matrix(), lagraph.Undirected)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// goldenDelta applies the fixed insert-only mutation every incremental
// golden case uses: bridge edges between far-apart vertices plus a
// duplicate and a self-loop, mirrored because the fixture is undirected.
// Returns the Delta record the warm starts consume.
func goldenDelta(g *lagraph.Graph) (*lagraph.Delta, error) {
	src := []int{3, 100, 3, 7}
	dst := []int{200, 50, 200, 7}
	var is, js []int
	var xs []float64
	for k := range src {
		is, js, xs = append(is, src[k]), append(js, dst[k]), append(xs, 1)
		if src[k] != dst[k] {
			is, js, xs = append(is, dst[k]), append(js, src[k]), append(xs, 1)
		}
	}
	if err := g.A.SetElements(is, js, xs, nil); err != nil {
		return nil, err
	}
	g.InvalidateCache()
	return &lagraph.Delta{AddSrc: src, AddDst: dst}, nil
}

// sameBytes asserts two vectors serialize identically (the bitwise
// equivalence contract of the exact warm starts).
func sameBytes[T any](a, b *grb.Vector[T]) error {
	var ab, bb bytes.Buffer
	if err := grb.SerializeVector(&ab, a); err != nil {
		return err
	}
	if err := grb.SerializeVector(&bb, b); err != nil {
		return err
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		return fmt.Errorf("vectors differ (%d vs %d bytes)", ab.Len(), bb.Len())
	}
	return nil
}

// goldenCases maps a stable case name to a function computing the
// serialized result bytes. Results serialize through grb's gob codec
// (vectors) or fixed-width little-endian (scalars) so "byte-identical"
// is meaningful across runs and parallelism levels.
func goldenCases() map[string]func(g *lagraph.Graph) ([]byte, error) {
	serialize := func(err error, write func(w *bytes.Buffer) error) ([]byte, error) {
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if werr := write(&buf); werr != nil {
			return nil, werr
		}
		return buf.Bytes(), nil
	}
	return map[string]func(g *lagraph.Graph) ([]byte, error){
		"bfs-levels-src0": func(g *lagraph.Graph) ([]byte, error) {
			v, err := lagraph.BFSLevels(g, 0)
			return serialize(err, func(w *bytes.Buffer) error { return grb.SerializeVector(w, v) })
		},
		"bfs-parents-src0": func(g *lagraph.Graph) ([]byte, error) {
			v, err := lagraph.BFSParents(g, 0)
			return serialize(err, func(w *bytes.Buffer) error { return grb.SerializeVector(w, v) })
		},
		"sssp-src0": func(g *lagraph.Graph) ([]byte, error) {
			v, err := lagraph.SSSP(g, 0)
			return serialize(err, func(w *bytes.Buffer) error { return grb.SerializeVector(w, v) })
		},
		"pagerank": func(g *lagraph.Graph) ([]byte, error) {
			r, err := lagraph.PageRankWith(g, lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-9), lagraph.WithMaxIter(200))
			if err != nil {
				return nil, err
			}
			return serialize(nil, func(w *bytes.Buffer) error { return grb.SerializeVector(w, r.Rank) })
		},
		"cc-fastsv": func(g *lagraph.Graph) ([]byte, error) {
			v, err := lagraph.ConnectedComponentsFastSV(g)
			return serialize(err, func(w *bytes.Buffer) error { return grb.SerializeVector(w, v) })
		},
		// Incremental-mode frames: each applies the fixed goldenDelta to
		// the fixture, warm-starts from the pre-delta result, and (for the
		// exact algorithms) asserts agreement with a full recompute before
		// serializing — so the committed frame pins the warm-start path's
		// bytes across kernel changes, at both parallelism levels.
		"cc-incremental": func(g *lagraph.Graph) ([]byte, error) {
			prior, err := lagraph.ConnectedComponentsWith(g)
			if err != nil {
				return nil, err
			}
			delta, err := goldenDelta(g)
			if err != nil {
				return nil, err
			}
			inc, err := lagraph.IncrementalCC(g, prior.Labels, delta)
			if err != nil {
				return nil, err
			}
			full, err := lagraph.ConnectedComponentsWith(g)
			if err != nil {
				return nil, err
			}
			if err := sameBytes(inc.Labels, full.Labels); err != nil {
				return nil, fmt.Errorf("incremental cc vs full: %w", err)
			}
			return serialize(nil, func(w *bytes.Buffer) error { return grb.SerializeVector(w, inc.Labels) })
		},
		"bfs-levels-incremental-src0": func(g *lagraph.Graph) ([]byte, error) {
			prior, err := lagraph.BFSLevels(g, 0)
			if err != nil {
				return nil, err
			}
			delta, err := goldenDelta(g)
			if err != nil {
				return nil, err
			}
			repaired, _, err := lagraph.IncrementalBFSLevels(g, 0, prior, delta)
			if err != nil {
				return nil, err
			}
			full, err := lagraph.BFSLevels(g, 0)
			if err != nil {
				return nil, err
			}
			if err := sameBytes(repaired, full); err != nil {
				return nil, fmt.Errorf("incremental bfs vs full: %w", err)
			}
			return serialize(nil, func(w *bytes.Buffer) error { return grb.SerializeVector(w, repaired) })
		},
		"pagerank-warm": func(g *lagraph.Graph) ([]byte, error) {
			opts := []lagraph.Option{lagraph.WithDamping(0.85), lagraph.WithTolerance(1e-9), lagraph.WithMaxIter(200)}
			prior, err := lagraph.PageRankWith(g, opts...)
			if err != nil {
				return nil, err
			}
			if _, err := goldenDelta(g); err != nil {
				return nil, err
			}
			warm, err := lagraph.PageRankWarm(g, prior.Rank, opts...)
			if err != nil {
				return nil, err
			}
			return serialize(nil, func(w *bytes.Buffer) error { return grb.SerializeVector(w, warm.Rank) })
		},
		"tc-burkhardt": func(g *lagraph.Graph) ([]byte, error) {
			n, err := lagraph.TriangleCount(g, lagraph.TCBurkhardt)
			if err != nil {
				return nil, err
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(n))
			return b[:], nil
		},
	}
}

// computeAt runs one golden case at a given parallelism level on a fresh
// graph (fresh so lazy caches built at another level cannot leak in).
func computeAt(t *testing.T, p int, fn func(g *lagraph.Graph) ([]byte, error)) []byte {
	t.Helper()
	prev := grb.SetParallelism(p)
	defer grb.SetParallelism(prev)
	out, err := fn(goldenGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGolden(t *testing.T) {
	cases := goldenCases()
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)

	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			serial := computeAt(t, 1, cases[name])
			parallel := computeAt(t, 8, cases[name])
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("%s: SetParallelism(1) and SetParallelism(8) results differ (%d vs %d bytes)",
					name, len(serial), len(parallel))
			}

			path := filepath.Join(dir, name+".snap")
			if *updateGolden {
				var frame bytes.Buffer
				meta := store.Meta{Name: name, Kind: "golden", NVals: int64(len(serial))}
				if err := store.WriteFrame(&frame, meta, serial); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, frame.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update-golden): %v", err)
			}
			meta, want, err := store.ReadFrame(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("golden file corrupt: %v", err)
			}
			if meta.Name != name || meta.Kind != "golden" {
				t.Fatalf("golden file metadata %+v does not match case %q", meta, name)
			}
			if !bytes.Equal(serial, want) {
				t.Fatalf("%s: result (%d bytes) differs from golden frame (%d bytes); if the change is intentional, rerun with -update-golden",
					name, len(serial), len(want))
			}
		})
	}
}
