package lagraph

// Binary serialization of whole graphs: a one-byte kind tag followed by
// the grb matrix image. This is the payload format the durable store
// (internal/store) frames with its checksummed envelope; keeping the
// codec here means the Graph invariants (square adjacency, known kind)
// are enforced at decode time by the same package that defines them.

import (
	"fmt"
	"io"

	"lagraph/internal/grb"
)

// graphKindTag is the serialized form of Kind. Values are part of the
// on-disk format: never renumber, only append (and bump the store frame
// version when doing so).
const (
	graphTagDirected   byte = 0
	graphTagUndirected byte = 1
)

// WriteGraph writes the graph's kind and adjacency matrix to w. The
// matrix image is the grb serialization, so the bytes carry pending-free,
// assembled storage (SerializeMatrix waits first).
func WriteGraph(w io.Writer, g *Graph) error {
	if g == nil || g.A == nil {
		return fmt.Errorf("lagraph: write graph: %w", grb.ErrUninitialized)
	}
	tag := graphTagDirected
	if g.Kind == Undirected {
		tag = graphTagUndirected
	}
	if _, err := w.Write([]byte{tag}); err != nil {
		return fmt.Errorf("lagraph: write graph: %w", err)
	}
	return grb.SerializeMatrix(w, g.A)
}

// ReadGraph reconstructs a graph written by WriteGraph. The input is
// untrusted: an unknown kind tag, a corrupt matrix image, or a
// non-square adjacency all fail with an error wrapping grb.ErrCorrupt.
func ReadGraph(r io.Reader) (*Graph, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, fmt.Errorf("lagraph: read graph: missing kind tag: %w", grb.ErrCorrupt)
	}
	var kind Kind
	switch tag[0] {
	case graphTagDirected:
		kind = Directed
	case graphTagUndirected:
		kind = Undirected
	default:
		return nil, fmt.Errorf("lagraph: read graph: unknown kind tag %d: %w", tag[0], grb.ErrCorrupt)
	}
	a, err := grb.DeserializeMatrix[float64](r)
	if err != nil {
		return nil, fmt.Errorf("lagraph: read graph: %w", err)
	}
	g, err := NewGraph(a, kind)
	if err != nil {
		// A non-square adjacency can only come from bytes the serializer
		// never wrote: report it as corruption, not an API error.
		return nil, fmt.Errorf("lagraph: read graph: %v: %w", err, grb.ErrCorrupt)
	}
	return g, nil
}
