package lagraph

import "lagraph/internal/grb"

// Pseudo-diameter estimation by double-sweep BFS (a standard LAGraph
// utility): run a BFS from a start vertex, hop to the farthest vertex
// found, and repeat until the eccentricity estimate stops growing. The
// result is a lower bound on the true diameter, exact on trees.

// PseudoDiameter returns the estimated diameter of the component
// containing start, together with the two endpoint vertices of the
// realizing path.
func PseudoDiameter(g *Graph, start int, maxSweeps int) (diameter int32, from, to int, err error) {
	if err := g.checkSource(start); err != nil {
		return 0, 0, 0, err
	}
	if maxSweeps <= 0 {
		maxSweeps = 8
	}
	from = start
	best := int32(-1)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		levels, err := BFSLevels(g, from)
		if err != nil {
			return 0, 0, 0, err
		}
		ecc, err := grb.ReduceVectorToScalar(grb.MaxMonoid[int32](), levels)
		if err != nil {
			return 0, 0, 0, err
		}
		// Find a vertex at maximum level.
		far := from
		li, lx := levels.ExtractTuples()
		for k := range li {
			if lx[k] == ecc {
				far = li[k]
				break
			}
		}
		if ecc <= best {
			return best, from, to, nil
		}
		best = ecc
		to = far
		if sweep+1 < maxSweeps {
			from, to = far, from
		}
	}
	return best, to, from, nil
}

// Eccentricity returns the BFS eccentricity of a vertex (the maximum
// level of any reachable vertex).
func Eccentricity(g *Graph, v int) (int32, error) {
	levels, err := BFSLevels(g, v)
	if err != nil {
		return 0, err
	}
	return grb.ReduceVectorToScalar(grb.MaxMonoid[int32](), levels)
}
