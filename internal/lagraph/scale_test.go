package lagraph

import (
	"testing"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
)

// TestScaleSweep drives the whole collection at a larger scale than the
// unit tests use, cross-checking against the baselines. Skipped under
// -short.
func TestScaleSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("scale sweep skipped in -short mode")
	}
	g := FromEdgeList(
		gen.RMAT(12, 8, gen.Config{Seed: 99, Undirected: true, NoSelfLoops: true, MinWeight: 1, MaxWeight: 9}),
		Undirected)
	bg := baseline.FromMatrix(g.A.Dup())

	t.Run("bfs", func(t *testing.T) {
		want, _ := baseline.BFSLevels(bg, 0)
		got, err := BFSLevels(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		levelsMatch(t, got, want, 0)
	})
	t.Run("sssp", func(t *testing.T) {
		want := baseline.Dijkstra(bg, 0)
		got, err := SSSP(g, 0, WithDelta(4))
		if err != nil {
			t.Fatal(err)
		}
		ssspMatch(t, got, want)
	})
	t.Run("tc", func(t *testing.T) {
		want := baseline.TriangleCount(bg)
		got, err := TriangleCount(g, TCSandiaDot)
		if err != nil || got != want {
			t.Fatalf("tc=%d want %d (%v)", got, want, err)
		}
	})
	t.Run("cc", func(t *testing.T) {
		want := baseline.ConnectedComponents(bg)
		got, err := ConnectedComponentsFastSV(g)
		if err != nil {
			t.Fatal(err)
		}
		componentsMatch(t, got, want)
	})
	t.Run("kcore", func(t *testing.T) {
		want := baseline.KCoreDecomposition(bg)
		got, err := KCore(g)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			gv, err := got.GetElement(v)
			if err != nil {
				gv = 0
			}
			if int(gv) != want[v] {
				t.Fatalf("core[%d]=%d want %d", v, gv, want[v])
			}
		}
	})
	t.Run("mis+coloring", func(t *testing.T) {
		iset, err := MIS(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		if ok, why := VerifyMIS(g, iset); !ok {
			t.Fatal(why)
		}
		colour, _, err := Coloring(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyColoring(g, colour) {
			t.Fatal("coloring invalid at scale")
		}
	})
	t.Run("pagerank", func(t *testing.T) {
		res, err := PageRankWith(g, WithDamping(0.85), WithTolerance(1e-8), WithMaxIter(100))
		if err != nil || !res.Converged {
			t.Fatalf("pr: %v", err)
		}
		want := baseline.PageRank(bg, 0.85, 100)
		for v := 0; v < g.N(); v++ {
			r, err := res.Rank.GetElement(v)
			if err != nil {
				t.Fatalf("rank %d missing", v)
			}
			if diff := r - want[v]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("rank[%d] off by %v", v, diff)
			}
		}
	})
}
