package lagraph

import (
	"testing"

	"lagraph/internal/gen"
)

func TestEccentricityAndDiameterOnPath(t *testing.T) {
	g := FromEdgeList(gen.Path(10, gen.Config{Undirected: true}), Undirected)
	ecc, err := Eccentricity(g, 0)
	if err != nil || ecc != 9 {
		t.Fatalf("ecc(0)=%d (%v)", ecc, err)
	}
	ecc, err = Eccentricity(g, 5)
	if err != nil || ecc != 5 {
		t.Fatalf("ecc(5)=%d (%v)", ecc, err)
	}
	// Double sweep finds the exact diameter on a path from any start.
	for _, start := range []int{0, 4, 9} {
		d, from, to, err := PseudoDiameter(g, start, 8)
		if err != nil {
			t.Fatal(err)
		}
		if d != 9 {
			t.Fatalf("diameter from %d: %d", start, d)
		}
		if (from != 0 || to != 9) && (from != 9 || to != 0) {
			t.Fatalf("endpoints %d-%d", from, to)
		}
	}
}

func TestPseudoDiameterOnGridAndRing(t *testing.T) {
	// 6x6 grid: diameter 10.
	g := FromEdgeList(gen.Grid2D(6, 6, gen.Config{Undirected: true}), Undirected)
	d, _, _, err := PseudoDiameter(g, 14, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10 {
		t.Fatalf("grid diameter %d want 10", d)
	}
	// Ring of 12: diameter 6.
	r := FromEdgeList(gen.Ring(12, gen.Config{Undirected: true}), Undirected)
	d, _, _, err = PseudoDiameter(r, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d != 6 {
		t.Fatalf("ring diameter %d want 6", d)
	}
}

func TestPseudoDiameterBadArgs(t *testing.T) {
	g := FromEdgeList(gen.Ring(5, gen.Config{Undirected: true}), Undirected)
	if _, _, _, err := PseudoDiameter(g, 99, 4); err != ErrBadArgument {
		t.Fatal(err)
	}
}
