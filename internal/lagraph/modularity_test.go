package lagraph

import (
	"math"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

func twoCliquesGraph() *Graph {
	e := gen.Complete(5, gen.Config{Undirected: true})
	e2 := gen.Complete(5, gen.Config{Undirected: true})
	e.N = 10
	for k := range e2.Src {
		e.Src = append(e.Src, e2.Src[k]+5)
		e.Dst = append(e.Dst, e2.Dst[k]+5)
		e.W = append(e.W, 1)
	}
	return FromEdgeList(e, Undirected)
}

func labelVec(labels []int64) *grb.Vector[int64] {
	return grb.DenseVector(labels)
}

func TestModularityTwoCliques(t *testing.T) {
	g := twoCliquesGraph()
	// Perfect split: Q = 1 - 2·(1/2)² = 0.5 for two equal disconnected
	// communities.
	good := labelVec([]int64{0, 0, 0, 0, 0, 1, 1, 1, 1, 1})
	q, err := Modularity(g, good)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("good split Q=%v want 0.5", q)
	}
	// Everything in one cluster: Q = 1 - 1 = 0.
	all := labelVec(make([]int64, 10))
	q, err = Modularity(g, all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q) > 1e-12 {
		t.Fatalf("single cluster Q=%v want 0", q)
	}
	// A bad split (mixing the cliques) scores lower than the good one.
	bad := labelVec([]int64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1})
	qb, err := Modularity(g, bad)
	if err != nil {
		t.Fatal(err)
	}
	if qb >= 0.5 {
		t.Fatalf("bad split Q=%v should be < 0.5", qb)
	}
}

func TestModularityScoresMCL(t *testing.T) {
	// MCL's clustering of two bridged cliques must score higher than the
	// trivial all-in-one clustering.
	e := gen.Complete(6, gen.Config{Undirected: true})
	e2 := gen.Complete(6, gen.Config{Undirected: true})
	e.N = 12
	for k := range e2.Src {
		e.Src = append(e.Src, e2.Src[k]+6)
		e.Dst = append(e.Dst, e2.Dst[k]+6)
		e.W = append(e.W, 1)
	}
	e.Src = append(e.Src, 0, 6)
	e.Dst = append(e.Dst, 6, 0)
	e.W = append(e.W, 1, 1)
	g := FromEdgeList(e, Undirected)

	labels, err := MarkovClustering(g, 2, 1e-6, 60)
	if err != nil {
		t.Fatal(err)
	}
	qMCL, err := Modularity(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	qTrivial, err := Modularity(g, labelVec(make([]int64, 12)))
	if err != nil {
		t.Fatal(err)
	}
	if qMCL <= qTrivial {
		t.Fatalf("MCL Q=%v should beat trivial Q=%v", qMCL, qTrivial)
	}
	if qMCL < 0.3 {
		t.Fatalf("MCL Q=%v suspiciously low", qMCL)
	}
}

func TestModularityErrors(t *testing.T) {
	g := twoCliquesGraph()
	if _, err := Modularity(g, nil); err == nil {
		t.Fatal("nil labels")
	}
	short := grb.MustVector[int64](3)
	if _, err := Modularity(g, short); err != grb.ErrDimensionMismatch {
		t.Fatal("dims")
	}
	d := FromEdgeList(gen.Path(4, gen.Config{}), Directed)
	if _, err := Modularity(d, labelVec(make([]int64, 4))); err != ErrNotUndirected {
		t.Fatal("directed")
	}
}
