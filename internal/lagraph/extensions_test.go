package lagraph

import (
	"math"
	"math/rand"
	"testing"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

func TestCollaborativeFilteringRecoversLowRank(t *testing.T) {
	// Synthesize ratings from a rank-3 model plus noise, observe 30%,
	// train, and check the RMSE drops well below the initial error and
	// that held-out predictions are close.
	rng := rand.New(rand.NewSource(21))
	nu, ni, rank := 60, 50, 3
	uTrue := make([][]float64, nu)
	vTrue := make([][]float64, ni)
	for i := range uTrue {
		uTrue[i] = make([]float64, rank)
		for f := range uTrue[i] {
			uTrue[i][f] = rng.NormFloat64()
		}
	}
	for j := range vTrue {
		vTrue[j] = make([]float64, rank)
		for f := range vTrue[j] {
			vTrue[j][f] = rng.NormFloat64()
		}
	}
	rating := func(i, j int) float64 {
		s := 0.0
		for f := 0; f < rank; f++ {
			s += uTrue[i][f] * vTrue[j][f]
		}
		return s
	}
	r := grb.MustMatrix[float64](nu, ni)
	type obs struct {
		i, j int
		v    float64
	}
	var held []obs
	for i := 0; i < nu; i++ {
		for j := 0; j < ni; j++ {
			switch {
			case rng.Float64() < 0.3:
				_ = r.SetElement(i, j, rating(i, j))
			case rng.Float64() < 0.02:
				held = append(held, obs{i, j, rating(i, j)})
			}
		}
	}
	model, err := CollaborativeFiltering(r, rank, 0.1, 0.01, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	first, last := model.RMSE[0], model.RMSE[len(model.RMSE)-1]
	if last > first/4 {
		t.Fatalf("training did not converge: rmse %v → %v", first, last)
	}
	if last > 0.2 {
		t.Fatalf("final training rmse too high: %v", last)
	}
	// Held-out error should beat the trivial predictor (mean ~0, rmse ~
	// sqrt(rank) ≈ 1.7).
	sse := 0.0
	for _, o := range held {
		p, err := model.Predict(o.i, o.j)
		if err != nil {
			t.Fatal(err)
		}
		sse += (p - o.v) * (p - o.v)
	}
	rmse := math.Sqrt(sse / float64(len(held)))
	if rmse > 1.0 {
		t.Fatalf("held-out rmse %v", rmse)
	}
}

func TestCollaborativeFilteringBadArgs(t *testing.T) {
	r := grb.MustMatrix[float64](3, 3)
	if _, err := CollaborativeFiltering(r, 0, 0.1, 0, 5, 1); err != ErrBadArgument {
		t.Fatal("rank 0")
	}
	if _, err := CollaborativeFiltering(r, 2, 0.1, 0, 5, 1); err != ErrBadArgument {
		t.Fatal("no observations")
	}
}

func TestCountSubgraphs(t *testing.T) {
	// K4: every vertex is on 3 triangles and C(3,2)=3 wedges.
	k4 := FromEdgeList(gen.Complete(4, gen.Config{Undirected: true}), Undirected)
	sc, err := CountSubgraphs(k4)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TotalTriangles != 4 {
		t.Fatalf("total triangles=%d", sc.TotalTriangles)
	}
	if sc.TotalWedges != 12 {
		t.Fatalf("total wedges=%d", sc.TotalWedges)
	}
	for v := 0; v < 4; v++ {
		tv, _ := sc.Triangles.GetElement(v)
		wv, _ := sc.Wedges.GetElement(v)
		if tv != 3 || wv != 3 {
			t.Fatalf("vertex %d: tri=%d wedges=%d", v, tv, wv)
		}
	}
}

func TestCountSubgraphsMatchesTriangleCount(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := rmatGraph(t, 8, 8, seed, true)
		sc, err := CountSubgraphs(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := TriangleCount(g, TCSandiaLL)
		if err != nil {
			t.Fatal(err)
		}
		if sc.TotalTriangles != want {
			t.Fatalf("subgraph total %d, TC %d", sc.TotalTriangles, want)
		}
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// K4 is perfectly clustered.
	k4 := FromEdgeList(gen.Complete(4, gen.Config{Undirected: true}), Undirected)
	cc, global, err := ClusteringCoefficient(k4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(global-1) > 1e-12 {
		t.Fatalf("global transitivity %v", global)
	}
	for v := 0; v < 4; v++ {
		c, _ := cc.GetElement(v)
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("cc[%d]=%v", v, c)
		}
	}
	// A star has no triangles: transitivity 0.
	star := FromEdgeList(gen.Star(6, gen.Config{Undirected: true}), Undirected)
	_, global, err = ClusteringCoefficient(star)
	if err != nil {
		t.Fatal(err)
	}
	if global != 0 {
		t.Fatalf("star transitivity %v", global)
	}
}

func TestKCoreMatchesBaseline(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		e := gen.ErdosRenyi(150, 900, gen.Config{Seed: seed, Undirected: true, NoSelfLoops: true})
		g := FromEdgeList(e, Undirected)
		want := baseline.KCoreDecomposition(baseline.FromMatrix(g.A.Dup()))
		got, err := KCore(g)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			gv, err := got.GetElement(v)
			if err != nil {
				gv = 0 // isolated vertices carry no entry
			}
			if int(gv) != want[v] {
				t.Fatalf("seed %d: core[%d]=%d want %d", seed, v, gv, want[v])
			}
		}
	}
}

func TestKCoreStructured(t *testing.T) {
	// K5 with a path tail: clique vertices have core 4, the tail 1.
	e := gen.Complete(5, gen.Config{Undirected: true})
	e.N = 8
	add := func(u, v int) {
		e.Src = append(e.Src, u, v)
		e.Dst = append(e.Dst, v, u)
		e.W = append(e.W, 1, 1)
	}
	add(4, 5)
	add(5, 6)
	add(6, 7)
	g := FromEdgeList(e, Undirected)
	core, err := KCore(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if c, _ := core.GetElement(v); c != 4 {
			t.Fatalf("core[%d]=%d want 4", v, c)
		}
	}
	for v := 5; v < 8; v++ {
		if c, _ := core.GetElement(v); c != 1 {
			t.Fatalf("core[%d]=%d want 1", v, c)
		}
	}
	deg, err := Coreness(g)
	if err != nil || deg != 4 {
		t.Fatalf("coreness %d (%v)", deg, err)
	}
}

// Force the parallel kernel paths (the CI host may have one CPU).
func TestAlgorithmsUnderForcedParallelism(t *testing.T) {
	defer grb.SetParallelism(grb.SetParallelism(6))
	g := rmatGraph(t, 8, 8, 31, true)
	bg := baseline.FromMatrix(g.A.Dup())

	levels, err := BFSLevels(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := baseline.BFSLevels(bg, 0)
	levelsMatch(t, levels, want, 0)

	tc, err := TriangleCount(g, TCSandiaLL)
	if err != nil {
		t.Fatal(err)
	}
	if tc != baseline.TriangleCount(bg) {
		t.Fatal("triangle count differs under parallelism")
	}

	ccv, err := ConnectedComponentsFastSV(g)
	if err != nil {
		t.Fatal(err)
	}
	componentsMatch(t, ccv, baseline.ConnectedComponents(bg))
}
