package lagraph

import "lagraph/internal/grb"

// Per-vertex subgraph counting (§V, [41], Chen et al.): counts of small
// motifs — wedges and triangles — per vertex, plus the local clustering
// coefficient derived from them. All counts come from one masked
// matrix-multiply and degree arithmetic.

// SubgraphCounts holds per-vertex motif counts.
type SubgraphCounts struct {
	// Triangles(i): triangles through vertex i.
	Triangles *grb.Vector[int64]
	// Wedges(i): paths of length two centred at i, deg·(deg-1)/2.
	Wedges *grb.Vector[int64]
	// TotalTriangles is the whole-graph triangle count.
	TotalTriangles int64
	// TotalWedges is the whole-graph wedge count.
	TotalWedges int64
}

// CountSubgraphs computes per-vertex wedge and triangle counts on an
// undirected graph.
func CountSubgraphs(g *Graph) (*SubgraphCounts, error) {
	if err := g.requireUndirected(); err != nil {
		return nil, err
	}
	a := g.PatternInt64()
	n := a.Nrows()
	offDiag := grb.MustMatrix[int64](n, n)
	if err := grb.SelectMatrix[int64, bool](offDiag, nil, nil, grb.OffDiag[int64](), a, nil); err != nil {
		return nil, err
	}
	a = offDiag

	// C⟨A⟩ = A·A (plus.pair): C(i,j) = common neighbours of i and j for
	// each edge (i,j). Row sums give 2·triangles(i).
	c := grb.MustMatrix[int64](n, n)
	if err := grb.MxM(c, a, nil, grb.PlusPair[int64, int64, int64](), a, a, nil); err != nil {
		return nil, err
	}
	rowSum := grb.MustVector[int64](n)
	if err := grb.ReduceMatrixToVector[int64, bool](rowSum, nil, nil, grb.PlusMonoid[int64](), c, nil); err != nil {
		return nil, err
	}
	tri := grb.MustVector[int64](n)
	if err := grb.ApplyVector[int64, int64, bool](tri, nil, nil,
		func(x int64) int64 { return x / 2 }, rowSum, nil); err != nil {
		return nil, err
	}
	// Drop explicit zeros (vertices on no triangle).
	if err := grb.SelectVector[int64, bool](tri, nil, nil, grb.ValueNE(int64(0)), tri, grb.DescR); err != nil {
		return nil, err
	}

	// Wedges from degrees.
	deg := grb.MustVector[int64](n)
	ones := grb.MustMatrix[int64](n, n)
	if err := grb.ApplyMatrix[int64, int64, bool](ones, nil, nil, grb.One[int64, int64](), a, nil); err != nil {
		return nil, err
	}
	if err := grb.ReduceMatrixToVector[int64, bool](deg, nil, nil, grb.PlusMonoid[int64](), ones, nil); err != nil {
		return nil, err
	}
	wedges := grb.MustVector[int64](n)
	if err := grb.ApplyVector[int64, int64, bool](wedges, nil, nil,
		func(d int64) int64 { return d * (d - 1) / 2 }, deg, nil); err != nil {
		return nil, err
	}
	if err := grb.SelectVector[int64, bool](wedges, nil, nil, grb.ValueNE(int64(0)), wedges, grb.DescR); err != nil {
		return nil, err
	}

	totTri, err := grb.ReduceVectorToScalar(grb.PlusMonoid[int64](), tri)
	if err != nil {
		return nil, err
	}
	totW, err := grb.ReduceVectorToScalar(grb.PlusMonoid[int64](), wedges)
	if err != nil {
		return nil, err
	}
	return &SubgraphCounts{
		Triangles:      tri,
		Wedges:         wedges,
		TotalTriangles: totTri / 3,
		TotalWedges:    totW,
	}, nil
}

// ClusteringCoefficient returns the per-vertex local clustering
// coefficient triangles(i)/wedges(i) and the global transitivity
// 3·triangles/wedges.
func ClusteringCoefficient(g *Graph) (*grb.Vector[float64], float64, error) {
	sc, err := CountSubgraphs(g)
	if err != nil {
		return nil, 0, err
	}
	n := g.N()
	cc := grb.MustVector[float64](n)
	if err := grb.EWiseMultVector[int64, int64, float64, bool](cc, nil, nil,
		func(t, w int64) float64 {
			if w == 0 {
				return 0
			}
			return float64(t) / float64(w)
		}, sc.Triangles, sc.Wedges, nil); err != nil {
		return nil, 0, err
	}
	global := 0.0
	if sc.TotalWedges > 0 {
		global = 3 * float64(sc.TotalTriangles) / float64(sc.TotalWedges)
	}
	return cc, global, nil
}
