package lagraph

import "lagraph/internal/grb"

// Betweenness centrality (§V, [2]) in the batched Brandes formulation of
// the Combinatorial BLAS / LAGraph: a batch of sources is processed as
// one ns×n frontier matrix, so every BFS wavefront and every dependency
// accumulation is a masked matrix-matrix multiply.

// BetweennessCentrality computes the (unnormalized, directed-pair) BC
// contribution of the given batch of source vertices. Passing every
// vertex as a source yields exact betweenness.
func BetweennessCentrality(g *Graph, sources []int) (*grb.Vector[float64], error) {
	n := g.N()
	ns := len(sources)
	if ns == 0 {
		return grb.MustVector[float64](n), nil
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, ErrBadArgument
		}
	}

	plusFirst := grb.Semiring[float64, float64, float64]{Add: grb.PlusMonoid[float64](), Mul: grb.First[float64, float64]()}

	// paths(s,i): number of shortest paths from sources[s] to i.
	// frontier(s,i): paths discovered at the current depth.
	paths := grb.MustMatrix[float64](ns, n)
	frontier := grb.MustMatrix[float64](ns, n)
	for s, src := range sources {
		_ = paths.SetElement(s, src, 1)
		_ = frontier.SetElement(s, src, 1)
	}

	// levels[d] is the pattern of the depth-d wavefront.
	var levels []*grb.Matrix[float64]
	levels = append(levels, frontier.Dup())

	// Forward sweep.
	for depth := 0; ; depth++ {
		next := grb.MustMatrix[float64](ns, n)
		// next⟨¬paths,replace⟩ = frontier ⊕.⊗ A
		if err := grb.MxM(next, paths, nil, plusFirst, frontier, g.A, grb.DescRC); err != nil {
			return nil, err
		}
		if next.Nvals() == 0 {
			break
		}
		// paths += next
		if err := grb.EWiseAddMatrix[float64, bool](paths, nil, nil, grb.Plus[float64](), paths, next, nil); err != nil {
			return nil, err
		}
		frontier = next
		levels = append(levels, frontier.Dup())
	}

	// Backward sweep: delta(s,i) accumulates the dependency of i on s's
	// shortest-path DAG.
	delta := grb.MustMatrix[float64](ns, n)
	depDiv := func(d, sigma float64) float64 { return (1 + d) / sigma }
	for d := len(levels) - 1; d >= 1; d-- {
		// w⟨levels[d],replace⟩ = (1 + delta) ./ paths
		w := grb.MustMatrix[float64](ns, n)
		deltaDense, err := withZeros(delta, ns, n)
		if err != nil {
			return nil, err
		}
		if err := grb.EWiseMultMatrix(w, levels[d], nil, depDiv, deltaDense, paths, grb.DescR); err != nil {
			return nil, err
		}
		// t⟨levels[d-1],replace⟩ = w ⊕.⊗ Aᵀ
		t := grb.MustMatrix[float64](ns, n)
		dT1R := &grb.Descriptor{TranB: true, Replace: true}
		if err := grb.MxM(t, levels[d-1], nil, plusFirst, w, g.A, dT1R); err != nil {
			return nil, err
		}
		// delta⟨levels[d-1]⟩ += t ⊗ paths
		if err := grb.EWiseMultMatrix(delta, levels[d-1], grb.Plus[float64](), grb.Times[float64](), t, paths, nil); err != nil {
			return nil, err
		}
	}

	// bc(i) = Σ_s delta(s,i), excluding each source's own row entry.
	bc := grb.MustVector[float64](n)
	if err := grb.ReduceMatrixToVector[float64, bool](bc, nil, nil, grb.PlusMonoid[float64](), delta, grb.DescT0); err != nil {
		return nil, err
	}
	for s, src := range sources {
		if v, err := delta.GetElement(s, src); err == nil && v != 0 {
			_ = bc.MergeElement(src, -v, grb.Plus[float64]())
		}
	}
	// Drop explicit zeros for a clean result.
	out := grb.MustVector[float64](n)
	if err := grb.SelectVector[float64, bool](out, nil, nil, grb.ValueNE(0.0), bc, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// withZeros returns a copy of m densified with explicit zeros, so that
// element-wise intersections against it behave like dense arithmetic.
func withZeros(m *grb.Matrix[float64], nr, nc int) (*grb.Matrix[float64], error) {
	dense := grb.MustMatrix[float64](nr, nc)
	is := make([]int, 0, nr*nc)
	js := make([]int, 0, nr*nc)
	xs := make([]float64, nr*nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			is = append(is, i)
			js = append(js, j)
		}
	}
	if err := dense.Build(is, js, xs, nil); err != nil {
		return nil, err
	}
	if err := grb.EWiseAddMatrix[float64, bool](dense, nil, nil, grb.Plus[float64](), dense, m, nil); err != nil {
		return nil, err
	}
	return dense, nil
}
