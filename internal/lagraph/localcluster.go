package lagraph

import (
	"sort"

	"lagraph/internal/grb"
)

// Local graph clustering — the third algorithm of Table II of the paper
// (Ligra 84 lines, GraphBLAST 45, GraphIt not implemented). This is the
// PR-Nibble method of Andersen, Chung and Lang: compute an approximate
// personalized PageRank vector around a seed by push iterations expressed
// as vector operations, then sweep by conductance.

// LocalClusterResult carries the cluster and its quality.
type LocalClusterResult struct {
	// Members lists the cluster's vertices.
	Members []int
	// Conductance is the cut quality of the returned sweep prefix.
	Conductance float64
	// PPR is the approximate personalized PageRank vector.
	PPR *grb.Vector[float64]
}

// LocalCluster finds a low-conductance cluster around seed. alpha is the
// teleport probability (typically 0.15) and eps the approximation
// threshold (smaller = larger clusters; typically 1e-4).
func LocalCluster(g *Graph, seed int, alpha, eps float64) (*LocalClusterResult, error) {
	if err := g.checkSource(seed); err != nil {
		return nil, err
	}
	if alpha <= 0 || alpha >= 1 || eps <= 0 {
		return nil, ErrBadArgument
	}
	n := g.N()
	deg := g.OutDegree()
	degOf := func(i int) float64 {
		d, err := deg.GetElement(i)
		if err != nil || d == 0 {
			return 1
		}
		return float64(d)
	}

	p := grb.MustVector[float64](n) // approximate PPR
	r := grb.MustVector[float64](n) // residual
	_ = r.SetElement(seed, 1)

	for iter := 0; iter < 100*n+1000; iter++ {
		// active: vertices with r(i) >= eps*deg(i).
		active := grb.MustVector[float64](n)
		if err := grb.SelectVector[float64, bool](active, nil, nil,
			func(x float64, i, _ int) bool { return x >= eps*degOf(i) }, r, nil); err != nil {
			return nil, err
		}
		if active.Nvals() == 0 {
			break
		}
		// p += alpha * r_active
		scaledActive := grb.MustVector[float64](n)
		if err := grb.ApplyVector[float64, float64, bool](scaledActive, nil, nil,
			func(x float64) float64 { return alpha * x }, active, nil); err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector[float64, bool](p, nil, nil, grb.Plus[float64](), p, scaledActive, nil); err != nil {
			return nil, err
		}
		// push mass: half of (1-alpha)·r stays, half spreads along edges
		// (the lazy walk of ACL). spread(i) = (1-alpha)*r(i)/2/deg(i).
		spread := grb.MustVector[float64](n)
		if err := grb.ApplyIndexVector(spread, (*grb.Vector[bool])(nil), nil,
			func(x float64, i, _ int) float64 { return (1 - alpha) * x / 2 / degOf(i) }, active, nil); err != nil {
			return nil, err
		}
		// r_active ← (1-alpha)*r/2 ; then r += spreadᵀ·A.
		keep := grb.MustVector[float64](n)
		if err := grb.ApplyVector[float64, float64, bool](keep, nil, nil,
			func(x float64) float64 { return (1 - alpha) * x / 2 }, active, nil); err != nil {
			return nil, err
		}
		// Replace the active entries of r with 'keep'.
		if err := grb.AssignVector(r, active, nil, keep, grb.All, nil); err != nil {
			return nil, err
		}
		// r += spread ⊕.⊗ A: weight-agnostic propagation uses the degree
		// fraction carried in 'spread', so multiply selects the spread
		// value (first).
		plusFirst := grb.Semiring[float64, float64, float64]{Add: grb.PlusMonoid[float64](), Mul: grb.First[float64, float64]()}
		if err := grb.VxM(r, (*grb.Vector[bool])(nil), grb.Plus[float64](), plusFirst, spread, g.A, nil); err != nil {
			return nil, err
		}
	}

	// Sweep cut: order vertices by p(i)/deg(i) and take the prefix of
	// minimum conductance.
	pi, px := p.ExtractTuples()
	type cand struct {
		v     int
		score float64
	}
	cands := make([]cand, len(pi))
	for k := range pi {
		cands[k] = cand{pi[k], px[k] / degOf(pi[k])}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].score > cands[b].score })

	totalVol := float64(g.NEdges())
	inSet := make(map[int]bool, len(cands))
	vol, cut := 0.0, 0.0
	bestCond, bestK := 2.0, 0
	for k, c := range cands {
		d := degOf(c.v)
		vol += d
		// Edges to vertices already in the set reduce the cut; others
		// increase it.
		row := grb.MustVector[float64](n)
		if err := grb.ExtractMatrixCol(row, (*grb.Vector[bool])(nil), nil, g.A, grb.All, c.v, grb.DescT0); err != nil {
			return nil, err
		}
		ri, _ := row.ExtractTuples()
		for _, u := range ri {
			if inSet[u] {
				cut--
			} else {
				cut++
			}
		}
		inSet[c.v] = true
		denom := vol
		if other := totalVol - vol; other < denom {
			denom = other
		}
		if denom > 0 && k+1 < g.N() {
			cond := cut / denom
			if cond < bestCond {
				bestCond, bestK = cond, k+1
			}
		}
	}
	members := make([]int, bestK)
	for k := 0; k < bestK; k++ {
		members[k] = cands[k].v
	}
	sort.Ints(members)
	return &LocalClusterResult{Members: members, Conductance: bestCond, PPR: p}, nil
}
