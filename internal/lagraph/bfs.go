package lagraph

import (
	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// Breadth-first search in the language of linear algebra (§V, and the
// worked example of Fig. 2 of the paper). Three formulations are
// provided:
//
//   - BFSLevelSimple: the level-synchronous loop of Fig. 2, transcribed
//     line by line;
//   - BFSLevels/BFSParents: the production form with explicit direction
//     control and per-iteration statistics;
//   - direction-optimizing traversal (push–pull) following Beamer et al.
//     as realised in GraphBLAST (§II-E), driven by the frontier density.

// BFSStats records per-iteration traversal decisions for the
// direction-optimization experiments (reproduction of §II-E).
type BFSStats struct {
	// FrontierSizes holds nvals(frontier) at the start of each iteration.
	FrontierSizes []int
	// Directions holds the direction used in each iteration.
	Directions []grb.Direction
	// Depth is the number of BFS levels discovered (eccentricity+1 of the
	// source within its component).
	Depth int
}

// BFSLevelSimple is the level BFS of Fig. 2, Go flavour. levels(i)
// receives the 1-based BFS depth of vertex i; unreached vertices hold no
// entry.
//
//	depth ← 0
//	while nvals(frontier) > 0:
//	    depth ← depth+1
//	    levels[frontier] ← depth
//	    frontier⟨¬levels,replace⟩ ← frontierᵀ ⊕.⊗ graph  (LogicalSemiring)
func BFSLevelSimple(g *Graph, src int) (*grb.Vector[int32], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	n := g.N()
	levels := grb.MustVector[int32](n)
	frontier := grb.MustVector[bool](n)
	_ = frontier.SetElement(src, true)
	logical := grb.Semiring[bool, float64, bool]{Add: grb.LOrMonoid(), Mul: grb.First[bool, float64]()}
	depth := int32(0)
	for frontier.Nvals() > 0 {
		depth++
		if err := grb.AssignVectorScalar(levels, frontier, nil, depth, grb.All, nil); err != nil {
			return nil, err
		}
		if err := grb.VxM(frontier, levels, nil, logical, frontier, g.A, grb.DescRSC); err != nil {
			return nil, err
		}
	}
	return levels, nil
}

// BFSLevels computes 0-based BFS levels with direction-optimized
// traversal. Unreached vertices hold no entry.
func BFSLevels(g *Graph, src int, opts ...Option) (*grb.Vector[int32], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	cfg := newOptions(opts)
	ob := cfg.observer()
	n := g.N()
	levels := grb.MustVector[int32](n)
	frontier := grb.MustVector[bool](n)
	_ = frontier.SetElement(src, true)
	logical := grb.Semiring[bool, float64, bool]{Add: grb.LOrMonoid(), Mul: grb.First[bool, float64]()}
	depth := int32(0)
	for {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		nf := frontier.Nvals()
		if nf == 0 {
			break
		}
		dir := resolveDir(&cfg, nf, n)
		if cfg.Stats != nil {
			cfg.Stats.FrontierSizes = append(cfg.Stats.FrontierSizes, nf)
			cfg.Stats.Directions = append(cfg.Stats.Directions, dir)
		}
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		if err := grb.AssignVectorScalar(levels, frontier, nil, depth, grb.All, nil); err != nil {
			return nil, err
		}
		d := &grb.Descriptor{Replace: true, Comp: true, Dir: cfg.Dir, PushPullRatio: cfg.PushPullRatio}
		if err := grb.VxM(frontier, levels, nil, logical, frontier, g.A, d); err != nil {
			return nil, err
		}
		depth++
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "bfs", Iter: int(depth),
				Frontier: nf, Dir: dirString(dir),
				DurNanos: ob.Now() - t0,
			})
		}
	}
	if cfg.Stats != nil {
		cfg.Stats.Depth = int(depth)
	}
	return levels, nil
}

// resolveDir mirrors the DirAuto choice of grb.chooseDirection for
// statistics and trace recording: the library switches to pull once the
// frontier is dense relative to the vertex count.
func resolveDir(cfg *Options, nf, n int) grb.Direction {
	if cfg.Dir != grb.DirAuto {
		return cfg.Dir
	}
	ratio := cfg.PushPullRatio
	if ratio <= 0 {
		ratio = 16
	}
	if nf > n/ratio {
		return grb.DirPull
	}
	return grb.DirPush
}

// BFSParents computes the BFS parent vector: parents(i) is the vertex
// from which i was first reached; the source is its own parent. It uses
// the (any, first) semiring over frontier values that carry vertex ids —
// the early-exit ANY monoid makes every pull dot product stop at the
// first hit (§II-A).
func BFSParents(g *Graph, src int, opts ...Option) (*grb.Vector[int64], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	cfg := newOptions(opts)
	ob := cfg.observer()
	n := g.N()
	parents := grb.MustVector[int64](n)
	_ = parents.SetElement(src, int64(src))
	frontier := grb.MustVector[int64](n)
	_ = frontier.SetElement(src, int64(src))
	// w(j) = any_{i in frontier} frontier(i): carries a parent id.
	anyFirst := grb.Semiring[int64, float64, int64]{Add: grb.AnyMonoid[int64](), Mul: grb.First[int64, float64]()}
	iter := 0
	for {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		nf := frontier.Nvals()
		if nf == 0 {
			break
		}
		iter++
		dir := resolveDir(&cfg, nf, n)
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		// frontier⟨¬parents,replace⟩ = frontier ⊕.⊗ A
		d := &grb.Descriptor{Replace: true, Comp: true, Dir: cfg.Dir, PushPullRatio: cfg.PushPullRatio}
		if err := grb.VxM(frontier, parents, nil, anyFirst, frontier, g.A, d); err != nil {
			return nil, err
		}
		// parents⟨frontier⟩ = frontier (the discovered parent ids).
		if err := grb.AssignVector(parents, frontier, nil, frontier, grb.All, nil); err != nil {
			return nil, err
		}
		// Reload the frontier with its own vertex ids for the next hop.
		if err := grb.ApplyIndexVector[int64, int64, bool](frontier, nil, nil,
			func(_ int64, i, _ int) int64 { return int64(i) }, frontier, nil); err != nil {
			return nil, err
		}
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "bfs-parents", Iter: iter,
				Frontier: nf, Dir: dirString(dir),
				DurNanos: ob.Now() - t0,
			})
		}
	}
	return parents, nil
}

// BFSBoth returns levels and parents in one traversal.
func BFSBoth(g *Graph, src int, opts ...Option) (*grb.Vector[int32], *grb.Vector[int64], error) {
	if err := g.checkSource(src); err != nil {
		return nil, nil, err
	}
	cfg := newOptions(opts)
	ob := cfg.observer()
	n := g.N()
	levels := grb.MustVector[int32](n)
	parents := grb.MustVector[int64](n)
	_ = parents.SetElement(src, int64(src))
	frontier := grb.MustVector[int64](n)
	_ = frontier.SetElement(src, int64(src))
	anyFirst := grb.Semiring[int64, float64, int64]{Add: grb.AnyMonoid[int64](), Mul: grb.First[int64, float64]()}
	depth := int32(0)
	for {
		if err := cfg.canceled(); err != nil {
			return nil, nil, err
		}
		nf := frontier.Nvals()
		if nf == 0 {
			break
		}
		dir := resolveDir(&cfg, nf, n)
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		if err := grb.AssignVectorScalar(levels, frontier, nil, depth, grb.All, nil); err != nil {
			return nil, nil, err
		}
		d := &grb.Descriptor{Replace: true, Comp: true, Dir: cfg.Dir, PushPullRatio: cfg.PushPullRatio}
		if err := grb.VxM(frontier, parents, nil, anyFirst, frontier, g.A, d); err != nil {
			return nil, nil, err
		}
		if err := grb.AssignVector(parents, frontier, nil, frontier, grb.All, nil); err != nil {
			return nil, nil, err
		}
		if err := grb.ApplyIndexVector[int64, int64, bool](frontier, nil, nil,
			func(_ int64, i, _ int) int64 { return int64(i) }, frontier, nil); err != nil {
			return nil, nil, err
		}
		depth++
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "bfs", Iter: int(depth),
				Frontier: nf, Dir: dirString(dir),
				DurNanos: ob.Now() - t0,
			})
		}
	}
	return levels, parents, nil
}
