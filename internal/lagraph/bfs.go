package lagraph

import "lagraph/internal/grb"

// Breadth-first search in the language of linear algebra (§V, and the
// worked example of Fig. 2 of the paper). Three formulations are
// provided:
//
//   - BFSLevelSimple: the level-synchronous loop of Fig. 2, transcribed
//     line by line;
//   - BFSLevels/BFSParents: the production form with explicit direction
//     control and per-iteration statistics;
//   - direction-optimizing traversal (push–pull) following Beamer et al.
//     as realised in GraphBLAST (§II-E), driven by the frontier density.

// BFSStats records per-iteration traversal decisions for the
// direction-optimization experiments (reproduction of §II-E).
type BFSStats struct {
	// FrontierSizes holds nvals(frontier) at the start of each iteration.
	FrontierSizes []int
	// Directions holds the direction used in each iteration.
	Directions []grb.Direction
	// Depth is the number of BFS levels discovered (eccentricity+1 of the
	// source within its component).
	Depth int
}

// BFSOption configures a BFS run.
type BFSOption func(*bfsConfig)

type bfsConfig struct {
	dir   grb.Direction
	ratio int
	stats *BFSStats
}

// WithDirection forces push or pull traversal for every iteration
// (DirAuto, the default, switches adaptively).
func WithDirection(d grb.Direction) BFSOption {
	return func(c *bfsConfig) { c.dir = d }
}

// WithPushPullRatio overrides the frontier-density threshold at which
// DirAuto switches from push to pull.
func WithPushPullRatio(r int) BFSOption {
	return func(c *bfsConfig) { c.ratio = r }
}

// WithStats records per-iteration traversal statistics into s.
func WithStats(s *BFSStats) BFSOption {
	return func(c *bfsConfig) { c.stats = s }
}

// BFSLevelSimple is the level BFS of Fig. 2, Go flavour. levels(i)
// receives the 1-based BFS depth of vertex i; unreached vertices hold no
// entry.
//
//	depth ← 0
//	while nvals(frontier) > 0:
//	    depth ← depth+1
//	    levels[frontier] ← depth
//	    frontier⟨¬levels,replace⟩ ← frontierᵀ ⊕.⊗ graph  (LogicalSemiring)
func BFSLevelSimple(g *Graph, src int) (*grb.Vector[int32], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	n := g.N()
	levels := grb.MustVector[int32](n)
	frontier := grb.MustVector[bool](n)
	_ = frontier.SetElement(src, true)
	logical := grb.Semiring[bool, float64, bool]{Add: grb.LOrMonoid(), Mul: grb.First[bool, float64]()}
	depth := int32(0)
	for frontier.Nvals() > 0 {
		depth++
		if err := grb.AssignVectorScalar(levels, frontier, nil, depth, grb.All, nil); err != nil {
			return nil, err
		}
		if err := grb.VxM(frontier, levels, nil, logical, frontier, g.A, grb.DescRSC); err != nil {
			return nil, err
		}
	}
	return levels, nil
}

// BFSLevels computes 0-based BFS levels with direction-optimized
// traversal. Unreached vertices hold no entry.
func BFSLevels(g *Graph, src int, opts ...BFSOption) (*grb.Vector[int32], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	cfg := bfsConfig{dir: grb.DirAuto, ratio: 0}
	for _, o := range opts {
		o(&cfg)
	}
	n := g.N()
	levels := grb.MustVector[int32](n)
	frontier := grb.MustVector[bool](n)
	_ = frontier.SetElement(src, true)
	logical := grb.Semiring[bool, float64, bool]{Add: grb.LOrMonoid(), Mul: grb.First[bool, float64]()}
	depth := int32(0)
	for {
		nf := frontier.Nvals()
		if nf == 0 {
			break
		}
		if cfg.stats != nil {
			cfg.stats.FrontierSizes = append(cfg.stats.FrontierSizes, nf)
			cfg.stats.Directions = append(cfg.stats.Directions, resolveDir(cfg, nf, n))
		}
		if err := grb.AssignVectorScalar(levels, frontier, nil, depth, grb.All, nil); err != nil {
			return nil, err
		}
		d := &grb.Descriptor{Replace: true, Comp: true, Dir: cfg.dir, PushPullRatio: cfg.ratio}
		if err := grb.VxM(frontier, levels, nil, logical, frontier, g.A, d); err != nil {
			return nil, err
		}
		depth++
	}
	if cfg.stats != nil {
		cfg.stats.Depth = int(depth)
	}
	return levels, nil
}

// resolveDir mirrors the DirAuto choice for statistics recording.
func resolveDir(cfg bfsConfig, nf, n int) grb.Direction {
	if cfg.dir != grb.DirAuto {
		return cfg.dir
	}
	ratio := cfg.ratio
	if ratio <= 0 {
		ratio = 16
	}
	if nf > n/ratio {
		return grb.DirPull
	}
	return grb.DirPush
}

// BFSParents computes the BFS parent vector: parents(i) is the vertex
// from which i was first reached; the source is its own parent. It uses
// the (any, first) semiring over frontier values that carry vertex ids —
// the early-exit ANY monoid makes every pull dot product stop at the
// first hit (§II-A).
func BFSParents(g *Graph, src int, opts ...BFSOption) (*grb.Vector[int64], error) {
	if err := g.checkSource(src); err != nil {
		return nil, err
	}
	cfg := bfsConfig{dir: grb.DirAuto}
	for _, o := range opts {
		o(&cfg)
	}
	n := g.N()
	parents := grb.MustVector[int64](n)
	_ = parents.SetElement(src, int64(src))
	frontier := grb.MustVector[int64](n)
	_ = frontier.SetElement(src, int64(src))
	// w(j) = any_{i in frontier} frontier(i): carries a parent id.
	anyFirst := grb.Semiring[int64, float64, int64]{Add: grb.AnyMonoid[int64](), Mul: grb.First[int64, float64]()}
	for frontier.Nvals() > 0 {
		// frontier⟨¬parents,replace⟩ = frontier ⊕.⊗ A
		d := &grb.Descriptor{Replace: true, Comp: true, Dir: cfg.dir, PushPullRatio: cfg.ratio}
		if err := grb.VxM(frontier, parents, nil, anyFirst, frontier, g.A, d); err != nil {
			return nil, err
		}
		// parents⟨frontier⟩ = frontier (the discovered parent ids).
		if err := grb.AssignVector(parents, frontier, nil, frontier, grb.All, nil); err != nil {
			return nil, err
		}
		// Reload the frontier with its own vertex ids for the next hop.
		if err := grb.ApplyIndexVector[int64, int64, bool](frontier, nil, nil,
			func(_ int64, i, _ int) int64 { return int64(i) }, frontier, nil); err != nil {
			return nil, err
		}
	}
	return parents, nil
}

// BFSBoth returns levels and parents in one traversal.
func BFSBoth(g *Graph, src int, opts ...BFSOption) (*grb.Vector[int32], *grb.Vector[int64], error) {
	if err := g.checkSource(src); err != nil {
		return nil, nil, err
	}
	cfg := bfsConfig{dir: grb.DirAuto}
	for _, o := range opts {
		o(&cfg)
	}
	n := g.N()
	levels := grb.MustVector[int32](n)
	parents := grb.MustVector[int64](n)
	_ = parents.SetElement(src, int64(src))
	frontier := grb.MustVector[int64](n)
	_ = frontier.SetElement(src, int64(src))
	anyFirst := grb.Semiring[int64, float64, int64]{Add: grb.AnyMonoid[int64](), Mul: grb.First[int64, float64]()}
	depth := int32(0)
	for frontier.Nvals() > 0 {
		if err := grb.AssignVectorScalar(levels, frontier, nil, depth, grb.All, nil); err != nil {
			return nil, nil, err
		}
		d := &grb.Descriptor{Replace: true, Comp: true, Dir: cfg.dir, PushPullRatio: cfg.ratio}
		if err := grb.VxM(frontier, parents, nil, anyFirst, frontier, g.A, d); err != nil {
			return nil, nil, err
		}
		if err := grb.AssignVector(parents, frontier, nil, frontier, grb.All, nil); err != nil {
			return nil, nil, err
		}
		if err := grb.ApplyIndexVector[int64, int64, bool](frontier, nil, nil,
			func(_ int64, i, _ int) int64 { return int64(i) }, frontier, nil); err != nil {
			return nil, nil, err
		}
		depth++
	}
	return levels, parents, nil
}
