package lagraph

import (
	"math"
	"testing"

	"lagraph/internal/baseline"
	"lagraph/internal/gen"
)

func TestShortestPathTree(t *testing.T) {
	e := gen.Grid2D(10, 10, gen.Config{Seed: 19, Undirected: true, MinWeight: 1, MaxWeight: 7})
	g := FromEdgeList(e, Undirected)
	dist, err := SSSP(g, 0, WithDelta(4))
	if err != nil {
		t.Fatal(err)
	}
	parents, err := ShortestPathTree(g, 0, dist)
	if err != nil {
		t.Fatal(err)
	}
	if parents.Nvals() != dist.Nvals() {
		t.Fatalf("parents=%d dist=%d", parents.Nvals(), dist.Nvals())
	}
	// Every reached vertex's path must exist and have cost equal to its
	// distance.
	for v := 0; v < g.N(); v++ {
		d, err := dist.GetElement(v)
		if err != nil {
			continue
		}
		path, ok := PathTo(parents, v)
		if !ok {
			t.Fatalf("no path to %d", v)
		}
		if path[0] != 0 || path[len(path)-1] != v {
			t.Fatalf("path endpoints for %d: %v", v, path)
		}
		cost := 0.0
		for k := 0; k+1 < len(path); k++ {
			w, err := g.A.GetElement(path[k], path[k+1])
			if err != nil {
				t.Fatalf("path edge %d→%d missing", path[k], path[k+1])
			}
			cost += w
		}
		if math.Abs(cost-d) > 1e-9 {
			t.Fatalf("path cost %v, distance %v", cost, d)
		}
	}
	// Unreached vertex of a disconnected graph has no path.
	e2 := gen.Ring(4, gen.Config{Undirected: true})
	e2.N = 6
	g2 := FromEdgeList(e2, Undirected)
	d2, err := SSSPBellmanFord(g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ShortestPathTree(g2, 0, d2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := PathTo(p2, 5); ok {
		t.Fatal("vertex 5 is disconnected")
	}
}

func TestBetweennessDirected(t *testing.T) {
	// Batched BC must also agree with the baseline on a directed graph.
	e := gen.ErdosRenyi(50, 350, gen.Config{Seed: 20, NoSelfLoops: true})
	g := FromEdgeList(e, Directed)
	bg := baseline.FromMatrix(g.A.Dup())
	sources := []int{0, 9, 25, 33}
	want := baseline.BetweennessCentralitySources(bg, sources)
	got, err := BetweennessCentrality(g, sources)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		gv, err := got.GetElement(v)
		if err != nil {
			gv = 0
		}
		if math.Abs(gv-want[v]) > 1e-6 {
			t.Fatalf("bc[%d]=%v want %v", v, gv, want[v])
		}
	}
}
