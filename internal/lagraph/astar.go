package lagraph

import (
	"container/heap"
	"math"

	"lagraph/internal/grb"
)

// A* search — one of the algorithms §V lists as "important but so far not
// implemented using a GraphBLAS-like library". This extension implements
// it against the GraphBLAS adjacency object: the open set is a priority
// queue, but every neighbourhood expansion is a masked row extraction
// from the opaque matrix, so the graph never leaves the GraphBLAS.

// Heuristic estimates the remaining distance from a vertex to the goal.
// It must be admissible (never overestimate) for A* to return shortest
// paths.
type Heuristic func(v int) float64

// ZeroHeuristic degrades A* to Dijkstra.
func ZeroHeuristic(int) float64 { return 0 }

// GridManhattan returns an admissible heuristic for a rows×cols grid
// graph with unit-or-larger weights, targeting vertex goal.
func GridManhattan(cols, goal int) Heuristic {
	gr, gc := goal/cols, goal%cols
	return func(v int) float64 {
		r, c := v/cols, v%cols
		return math.Abs(float64(r-gr)) + math.Abs(float64(c-gc))
	}
}

type aItem struct {
	v int
	f float64
}

type aHeap []aItem

func (h aHeap) Len() int            { return len(h) }
func (h aHeap) Less(i, j int) bool  { return h[i].f < h[j].f }
func (h aHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *aHeap) Push(x interface{}) { *h = append(*h, x.(aItem)) }
func (h *aHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// AStar returns a shortest path from src to dst and its cost, or ok=false
// if dst is unreachable. Edge weights must be non-negative.
func AStar(g *Graph, src, dst int, h Heuristic) (path []int, cost float64, ok bool, err error) {
	if err := g.checkSource(src); err != nil {
		return nil, 0, false, err
	}
	if err := g.checkSource(dst); err != nil {
		return nil, 0, false, err
	}
	if h == nil {
		h = ZeroHeuristic
	}
	n := g.N()
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[src] = 0
	open := &aHeap{{src, h(src)}}
	row := grb.MustVector[float64](n)
	for open.Len() > 0 {
		it := heap.Pop(open).(aItem)
		u := it.v
		if it.f > dist[u]+h(u) {
			continue // stale entry
		}
		if u == dst {
			break
		}
		// Neighbourhood expansion through the GraphBLAS: row u of A.
		row.Clear()
		if err := grb.ExtractMatrixCol(row, (*grb.Vector[bool])(nil), nil, g.A, grb.All, u, grb.DescT0); err != nil {
			return nil, 0, false, err
		}
		vi, vw := row.ExtractTuples()
		for k, v := range vi {
			nd := dist[u] + vw[k]
			if nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				heap.Push(open, aItem{v, nd + h(v)})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil, 0, false, nil
	}
	for v := dst; v != -1; v = parent[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	// reverse
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], true, nil
}
