package lagraph

import (
	"math"
	"testing"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

func TestHITSBipartiteCore(t *testing.T) {
	// Hub 0 points at authorities 1..4; vertex 5 points at 1 only.
	el := &gen.EdgeList{N: 6}
	for v := 1; v <= 4; v++ {
		el.Src = append(el.Src, 0)
		el.Dst = append(el.Dst, v)
		el.W = append(el.W, 1)
	}
	el.Src = append(el.Src, 5)
	el.Dst = append(el.Dst, 1)
	el.W = append(el.W, 1)
	g := FromEdgeList(el, Directed)

	res, err := HITSWith(g, WithTolerance(1e-10), WithMaxIter(200))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("should converge")
	}
	h0, _ := res.Hubs.GetElement(0)
	h5, _ := res.Hubs.GetElement(5)
	if h0 <= h5 {
		t.Fatalf("hub(0)=%v must dominate hub(5)=%v", h0, h5)
	}
	a1, _ := res.Authorities.GetElement(1)
	a2, _ := res.Authorities.GetElement(2)
	if a1 <= a2 {
		t.Fatalf("authority(1)=%v must dominate authority(2)=%v", a1, a2)
	}
	// Pure hubs have no authority entry; pure authorities no hub entry.
	if _, err := res.Authorities.GetElement(0); err == nil {
		t.Fatal("vertex 0 has no in-links: no authority score")
	}
}

func TestHITSNormalization(t *testing.T) {
	g := rmatGraph(t, 8, 8, 3, false)
	res, err := HITSWith(g, WithTolerance(1e-9), WithMaxIter(300))
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]*grb.Vector[float64]{"hubs": res.Hubs, "auth": res.Authorities} {
		_, xs := v.ExtractTuples()
		ss := 0.0
		for _, x := range xs {
			if x < 0 {
				t.Fatalf("%s: negative score", name)
			}
			ss += x * x
		}
		if math.Abs(ss-1) > 1e-6 {
			t.Fatalf("%s: ‖v‖₂²=%v, want 1", name, ss)
		}
	}
}

func TestHITSDefaults(t *testing.T) {
	// Zero-value options select the documented defaults (tol 1e-6,
	// 50 iterations) instead of erroring, so an explicit run with those
	// values must match the default run exactly.
	g := rmatGraph(t, 5, 4, 1, false)
	def, err := HITSWith(g)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := HITSWith(g, WithTolerance(1e-6), WithMaxIter(50))
	if err != nil {
		t.Fatal(err)
	}
	if def.Iterations != exp.Iterations || def.Converged != exp.Converged {
		t.Fatalf("defaults drifted: %+v vs %+v", def, exp)
	}
}
