package lagraph

import (
	"math"

	"lagraph/internal/grb"
)

// Clustering algorithms in the spirit-of-GraphBLAS list of §V: Markov
// clustering (HipMCL, [45]) and peer-pressure clustering (Gilbert,
// Reinhardt, Shah, [46]).

// MarkovClustering runs MCL on an undirected graph: alternate expansion
// (matrix squaring over (+,×)), inflation (element-wise power followed by
// column normalization) and pruning, until the matrix reaches a fixed
// point; clusters are the components of the attractor matrix.
func MarkovClustering(g *Graph, inflation float64, prune float64, maxIter int) (*grb.Vector[int64], error) {
	if err := g.requireUndirected(); err != nil {
		return nil, err
	}
	if inflation <= 1 || maxIter <= 0 {
		return nil, ErrBadArgument
	}
	n := g.N()

	// M ← A + I, column-normalized.
	m := g.A.Dup()
	for i := 0; i < n; i++ {
		if err := m.SetElement(i, i, 1); err != nil {
			return nil, err
		}
	}
	if err := normalizeColumns(m); err != nil {
		return nil, err
	}

	plusTimes := grb.PlusTimes[float64]()
	for iter := 0; iter < maxIter; iter++ {
		prev, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), squares(m))
		if err != nil {
			return nil, err
		}
		// Expansion: M ← M².
		m2 := grb.MustMatrix[float64](n, n)
		if err := grb.MxM(m2, (*grb.Matrix[bool])(nil), nil, plusTimes, m, m, nil); err != nil {
			return nil, err
		}
		// Inflation: element-wise power, then column normalization.
		if err := grb.ApplyMatrix[float64, float64, bool](m2, nil, nil,
			func(x float64) float64 { return math.Pow(x, inflation) }, m2, nil); err != nil {
			return nil, err
		}
		// Pruning of tiny entries keeps the iteration sparse.
		if prune > 0 {
			if err := grb.SelectMatrix[float64, bool](m2, nil, nil, grb.ValueGT(prune), m2, grb.DescR); err != nil {
				return nil, err
			}
		}
		if err := normalizeColumns(m2); err != nil {
			return nil, err
		}
		m = m2
		cur, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), squares(m))
		if err != nil {
			return nil, err
		}
		if math.Abs(cur-prev) < 1e-9 {
			break
		}
	}

	// Clusters: attractors are rows with entries; assign each column to
	// the smallest row that attracts it (connected components of the
	// attractor pattern handles overlapping attractors).
	gm, err := NewGraph(symmetrized(m), Undirected)
	if err != nil {
		return nil, err
	}
	return ConnectedComponentsFastSV(gm)
}

// squares returns the element-wise square of m (convergence metric).
func squares(m *grb.Matrix[float64]) *grb.Matrix[float64] {
	s := grb.MustMatrix[float64](m.Nrows(), m.Ncols())
	if err := grb.ApplyMatrix[float64, float64, bool](s, nil, nil,
		func(x float64) float64 { return x * x }, m, nil); err != nil {
		panic(err)
	}
	return s
}

// normalizeColumns scales every column of m to sum 1.
func normalizeColumns(m *grb.Matrix[float64]) error {
	n := m.Ncols()
	colSum := grb.MustVector[float64](n)
	if err := grb.ReduceMatrixToVector[float64, bool](colSum, nil, nil, grb.PlusMonoid[float64](), m, grb.DescT0); err != nil {
		return err
	}
	sums := colSum // captured
	return grb.ApplyIndexMatrix(m, (*grb.Matrix[bool])(nil), nil,
		func(x float64, _, j int) float64 {
			s, err := sums.GetElement(j)
			if err != nil || s == 0 {
				return x
			}
			return x / s
		}, m, nil)
}

// symmetrized returns the pattern union of m and mᵀ as a weighted matrix.
func symmetrized(m *grb.Matrix[float64]) *grb.Matrix[float64] {
	n := m.Nrows()
	s := grb.MustMatrix[float64](n, n)
	if err := grb.EWiseAddMatrix[float64, bool](s, nil, nil, grb.Plus[float64](), m, m, grb.DescT1); err != nil {
		panic(err)
	}
	return s
}

// PeerPressure clusters by iterative voting: each vertex adopts the
// cluster that the plurality of its in-neighbours belong to, with ties
// broken toward the smaller cluster id. Implemented as T = C ⊕.⊗ A over
// (+, second-as-one) followed by a column argmax.
func PeerPressure(g *Graph, maxIter int) (*grb.Vector[int64], error) {
	n := g.N()
	if maxIter <= 0 {
		return nil, ErrBadArgument
	}
	// cluster(i) starts as i.
	cluster := make([]int64, n)
	for i := range cluster {
		cluster[i] = int64(i)
	}

	plusSecond := grb.PlusSecond[float64]()
	for iter := 0; iter < maxIter; iter++ {
		// C: cluster-indicator matrix, C(c,i)=1 if vertex i is in
		// cluster c.
		is := make([]int, n)
		js := make([]int, n)
		xs := make([]float64, n)
		for i := 0; i < n; i++ {
			is[i] = int(cluster[i])
			js[i] = i
			xs[i] = 1
		}
		c := grb.MustMatrix[float64](n, n)
		if err := c.Build(is, js, xs, grb.Plus[float64]()); err != nil {
			return nil, err
		}
		// T(c,j) = Σ_i C(c,i)·A(i,j): votes for cluster c at vertex j.
		t := grb.MustMatrix[float64](n, n)
		if err := grb.MxM(t, (*grb.Matrix[bool])(nil), nil, plusSecond, c, g.A, nil); err != nil {
			return nil, err
		}
		// Column argmax with ties to the smaller cluster id.
		next := make([]int64, n)
		copy(next, cluster)
		best := make([]float64, n)
		ti, tj, tx := t.ExtractTuples()
		for k := range ti {
			j := tj[k]
			switch {
			case tx[k] > best[j]:
				best[j] = tx[k]
				next[j] = int64(ti[k])
			case tx[k] == best[j] && int64(ti[k]) < next[j]:
				next[j] = int64(ti[k])
			}
		}
		same := true
		for i := range next {
			if next[i] != cluster[i] {
				same = false
				break
			}
		}
		cluster = next
		if same {
			break
		}
	}
	return grb.DenseVector(cluster), nil
}
