package lagraph

import (
	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// Connected components (§V, [38]): the FastSV algorithm of Zhang, Azad
// and Buluç (the basis of LACC/LAGraph's CC), plus a simple label
// propagation formulation used as a second, independent GraphBLAS
// implementation.

// CCResult carries the component labels plus convergence information
// (mirroring PageRankResult), so the service layer can report
// iterations-to-convergence for full vs warm-started runs.
type CCResult struct {
	Labels     *grb.Vector[int64]
	Iterations int
}

// ConnectedComponentsFastSV labels every vertex with the smallest vertex
// id in its (weakly) connected component. Directed graphs are treated as
// undirected by also propagating along transposed edges.
func ConnectedComponentsFastSV(g *Graph, opts ...Option) (*grb.Vector[int64], error) {
	res, err := ConnectedComponentsWith(g, opts...)
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// ConnectedComponentsWith is ConnectedComponentsFastSV with convergence
// information attached.
func ConnectedComponentsWith(g *Graph, opts ...Option) (*CCResult, error) {
	cfg := newOptions(opts)
	return fastSVFrom(g, nil, false, &cfg)
}

// fastSVFrom runs the FastSV loop from an initial parent vector. f0 nil
// selects the cold start f(i)=i; a warm start passes prior labels, whose
// validity (every f0(i) names a vertex in i's component) the caller must
// guarantee — see IncrementalCC. The op sequence per iteration is
// identical in both modes, so cold results are bitwise unchanged by this
// refactor and warm results converge to the same canonical min-id fixed
// point.
func fastSVFrom(g *Graph, f0 *grb.Vector[int64], warm bool, cfg *Options) (*CCResult, error) {
	n := g.N()
	// f: parent pointer vector, dense.
	var f *grb.Vector[int64]
	if f0 == nil {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i)
		}
		f = grb.DenseVector(ids)
	} else {
		f = f0.Dup()
	}

	minSecond := grb.Semiring[float64, int64, int64]{Add: grb.MinMonoid[int64](), Mul: grb.Second[float64, int64]()}

	ob := cfg.observer()
	gp := f.Dup() // grandparent
	for iter := 0; iter <= n; iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		// mngp(i) = min over neighbours j of gp(j): stochastic hooking.
		mngp := grb.MustVector[int64](n)
		if err := grb.MxV(mngp, (*grb.Vector[bool])(nil), nil, minSecond, g.A, gp, nil); err != nil {
			return nil, err
		}
		if g.Kind == Directed {
			if err := grb.MxV(mngp, (*grb.Vector[bool])(nil), grb.MinOp[int64](), minSecond, g.A, gp, grb.DescT0); err != nil {
				return nil, err
			}
		}

		// Hooking: f(i) ← min(f(i), mngp(i), gp(i)).
		if err := grb.EWiseAddVector[int64, bool](f, nil, nil, grb.MinOp[int64](), f, mngp, nil); err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector[int64, bool](f, nil, nil, grb.MinOp[int64](), f, gp, nil); err != nil {
			return nil, err
		}

		// Aggressive hooking onto parents-of-parents: f(f(i)) ← min(...).
		// Gather-scatter through the tuple interface (the C formulation
		// uses GrB_extract with f as the index vector).
		fi, fx := f.ExtractTuples()
		idx := make([]int, len(fx))
		for k := range fx {
			idx[k] = int(fx[k])
		}
		_ = fi
		upd := grb.MustVector[int64](n)
		minOp := grb.MinOp[int64]()
		for k, p := range idx {
			// upd(p) ← min(upd(p), f(i)) for each i with f(i)=p.
			_ = upd.MergeElement(p, fx[k], minOp)
		}
		if err := grb.EWiseAddVector[int64, bool](f, nil, nil, grb.MinOp[int64](), f, upd, nil); err != nil {
			return nil, err
		}

		// Shortcutting: f(i) ← f(f(i)); compute the new grandparent.
		newGP := grb.MustVector[int64](n)
		if err := grb.ExtractVector[int64, bool](newGP, nil, nil, f, idx, nil); err != nil {
			return nil, err
		}
		if err := grb.EWiseAddVector[int64, bool](f, nil, nil, grb.MinOp[int64](), f, newGP, nil); err != nil {
			return nil, err
		}

		stable := vectorsEqual(gp, newGP)
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "cc-fastsv", Iter: iter + 1,
				Warm:     warm,
				DurNanos: ob.Now() - t0,
			})
		}
		// Converged when the grandparent vector is stable.
		if stable {
			return &CCResult{Labels: f, Iterations: iter + 1}, nil
		}
		gp = newGP
	}
	return nil, ErrNoConvergence
}

// vectorsEqual compares two vectors by value and pattern.
func vectorsEqual(a, b *grb.Vector[int64]) bool {
	ai, ax := a.ExtractTuples()
	bi, bx := b.ExtractTuples()
	if len(ai) != len(bi) {
		return false
	}
	for k := range ai {
		if ai[k] != bi[k] || ax[k] != bx[k] {
			return false
		}
	}
	return true
}

// ConnectedComponentsLabelProp iterates l ← min(l, min-neighbour(l))
// until a fixed point: the simplest CC formulation, used as an
// independent oracle.
func ConnectedComponentsLabelProp(g *Graph, opts ...Option) (*grb.Vector[int64], error) {
	cfg := newOptions(opts)
	n := g.N()
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	l := grb.DenseVector(ids)
	minSecond := grb.Semiring[float64, int64, int64]{Add: grb.MinMonoid[int64](), Mul: grb.Second[float64, int64]()}
	for iter := 0; iter <= n; iter++ {
		if err := cfg.canceled(); err != nil {
			return nil, err
		}
		prev := l.Dup()
		if err := grb.MxV(l, (*grb.Vector[bool])(nil), grb.MinOp[int64](), minSecond, g.A, l, nil); err != nil {
			return nil, err
		}
		if g.Kind == Directed {
			if err := grb.MxV(l, (*grb.Vector[bool])(nil), grb.MinOp[int64](), minSecond, g.A, l, grb.DescT0); err != nil {
				return nil, err
			}
		}
		if vectorsEqual(prev, l) {
			return l, nil
		}
	}
	return nil, ErrNoConvergence
}

// CountComponents returns the number of distinct labels in a component
// vector.
func CountComponents(labels *grb.Vector[int64]) int {
	_, xs := labels.ExtractTuples()
	seen := map[int64]struct{}{}
	for _, x := range xs {
		seen[x] = struct{}{}
	}
	return len(seen)
}
