package lagraph

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lagraph/internal/grb"
	"lagraph/internal/obs"
)

// Incremental analytics: delta-aware variants of the three hottest
// algorithms, each warm-started from a prior result instead of the cold
// initial state. The correctness contract differs per algorithm and is
// what the metamorphic test battery (FuzzIncrementalEquivalence, the
// golden suite, loadgen's dual-mode pass) asserts:
//
//   - IncrementalCC: FastSV restarted from the prior label vector. Valid
//     only for insert-only deltas (components can merge but never split),
//     where it converges to the canonical min-id labeling — bitwise
//     identical to a full recompute.
//   - IncrementalBFSLevels: frontier repair for edge insertions. Levels
//     only decrease under insertions; seeding a relaxation from the
//     inserted edges reaches the unique BFS-level fixed point — bitwise
//     identical to a full recompute.
//   - PageRankWarm: the power iteration started from the prior rank
//     vector. Valid under ANY delta (the damped iteration is a
//     contraction with a unique fixed point), but float convergence is
//     tolerance-level, not bitwise: both answers are within
//     damping·tol/(1-damping) of the true fixed point in L1.

// ErrStalePrior reports that a prior result cannot seed a warm start:
// nil or mis-sized handle, labels out of range, a non-finite rank, or a
// delta window that is not insert-only. Callers fall back to the full
// algorithm.
var ErrStalePrior = errors.New("lagraph: prior result unusable for warm start")

// Delta summarizes the edge mutations applied to a graph since a prior
// result was computed — the shape catalog.Entry's delta log hands to the
// warm-start decision.
type Delta struct {
	// AddSrc/AddDst are parallel slices holding the endpoints of inserted
	// edges in application order. Undirected graphs record each edge
	// once; consumers mirror it themselves.
	AddSrc, AddDst []int
	// Removals counts edge-removal ops in the window.
	Removals int
	// Unknown marks a window whose mutation stream was not fully tracked
	// (an untracked Update, delta-log overflow, or a replication apply):
	// the prior is unusable for the exact warm starts.
	Unknown bool
}

// InsertOnly reports whether the delta is a fully tracked, insert-only
// window — the precondition for the exact CC and BFS warm starts.
func (d *Delta) InsertOnly() bool {
	return d != nil && !d.Unknown && d.Removals == 0
}

// Inserts returns the number of recorded insertions.
func (d *Delta) Inserts() int {
	if d == nil {
		return 0
	}
	return len(d.AddSrc)
}

// IncrementalCC recomputes connected components after an insert-only
// delta by restarting FastSV from the prior label vector. Inserted edges
// can only merge components, so every prior label still names a vertex
// inside the labeled vertex's (possibly larger) new component — exactly
// the initialization FastSV needs to converge to the canonical min-id
// labeling. The result is bitwise identical to ConnectedComponentsWith
// on the mutated graph; a delta with removals (splits possible) or an
// untracked window returns ErrStalePrior.
func IncrementalCC(g *Graph, prior *grb.Vector[int64], delta *Delta, opts ...Option) (*CCResult, error) {
	cfg := newOptions(opts)
	n := g.N()
	if prior == nil || prior.Size() != n || prior.Nvals() != n {
		return nil, fmt.Errorf("%w: cc prior missing or not dense over %d vertices", ErrStalePrior, n)
	}
	if !delta.InsertOnly() {
		return nil, fmt.Errorf("%w: cc warm start needs a tracked insert-only delta", ErrStalePrior)
	}
	// Labels double as gather-scatter indices inside FastSV: range-check
	// them so a corrupt prior cannot index out of bounds.
	_, xs := prior.ExtractTuples()
	for _, x := range xs {
		if x < 0 || x >= int64(n) {
			return nil, fmt.Errorf("%w: cc prior label %d out of range", ErrStalePrior, x)
		}
	}
	return fastSVFrom(g, prior, true, &cfg)
}

// PageRankWarm computes PageRank starting the power iteration from a
// prior rank vector. The damped iteration contracts toward a unique
// fixed point, so a warm start is valid under any delta — insertions,
// removals, even an untracked window — and needs no Delta argument. The
// answer agrees with a full recompute to tolerance, not bitwise:
// ‖warm - full‖₁ ≤ 2·damping·tol/(1-damping).
func PageRankWarm(g *Graph, prior *grb.Vector[float64], opts ...Option) (*PageRankResult, error) {
	cfg := newOptions(opts)
	n := g.N()
	if prior == nil || prior.Size() != n || prior.Nvals() != n {
		return nil, fmt.Errorf("%w: pagerank prior missing or not dense over %d vertices", ErrStalePrior, n)
	}
	// A non-finite seed would poison every rank through the first MxV.
	_, xs := prior.ExtractTuples()
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("%w: pagerank prior has a non-finite entry", ErrStalePrior)
		}
	}
	return pageRankFrom(g, prior, true, &cfg)
}

// IncrementalBFSLevels repairs a BFS level vector after an insert-only
// delta. Edge insertions can only lower levels (or reach new vertices),
// so the prior levels are a valid upper bound; relaxing outward from the
// inserted edges' endpoints reaches the unique fixed point
// level(v) = min over in-neighbours u of level(u)+1 — bitwise identical
// to BFSLevels on the mutated graph. Returns the repaired levels and the
// number of propagation rounds (0 when no inserted edge improved
// anything). Deltas with removals or untracked windows return
// ErrStalePrior.
func IncrementalBFSLevels(g *Graph, src int, prior *grb.Vector[int32], delta *Delta, opts ...Option) (*grb.Vector[int32], int, error) {
	if err := g.checkSource(src); err != nil {
		return nil, 0, err
	}
	cfg := newOptions(opts)
	ob := cfg.observer()
	n := g.N()
	if prior == nil || prior.Size() != n {
		return nil, 0, fmt.Errorf("%w: bfs prior missing or mis-sized", ErrStalePrior)
	}
	if !delta.InsertOnly() {
		return nil, 0, fmt.Errorf("%w: bfs repair needs a tracked insert-only delta", ErrStalePrior)
	}

	// Dense scatter of the prior levels: lv/has is the working state the
	// relaxation improves in place (the prior vector itself is not
	// mutated).
	lv := make([]int32, n)
	has := make([]bool, n)
	pis, pxs := prior.ExtractTuples()
	for k, i := range pis {
		lv[i] = pxs[k]
		has[i] = true
	}
	if !has[src] || lv[src] != 0 {
		return nil, 0, fmt.Errorf("%w: bfs prior does not root at source %d", ErrStalePrior, src)
	}

	// relax lowers v's level to cand if that improves it, queueing v for
	// the next propagation round (deduplicated via queued).
	next := make([]int, 0, delta.Inserts())
	queued := make([]bool, n)
	relax := func(v int, cand int32) {
		if has[v] && lv[v] <= cand {
			return
		}
		lv[v] = cand
		has[v] = true
		if !queued[v] {
			queued[v] = true
			next = append(next, v)
		}
	}

	// Seed: endpoints improved directly by an inserted edge. The graph
	// already contains the delta's edges (the batch was applied before
	// the query ran), so propagation through A covers everything further
	// out. Undirected batches record each edge once; mirror it here.
	for k := range delta.AddSrc {
		u, v := delta.AddSrc[k], delta.AddDst[k]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, 0, fmt.Errorf("%w: delta endpoint (%d,%d) out of range", ErrStalePrior, u, v)
		}
		if has[u] {
			relax(v, lv[u]+1)
		}
		if g.Kind == Undirected && has[v] {
			relax(u, lv[v]+1)
		}
	}

	minFirst := grb.Semiring[int32, float64, int32]{Add: grb.MinMonoid[int32](), Mul: grb.First[int32, float64]()}
	iters := 0
	for len(next) > 0 {
		if err := cfg.canceled(); err != nil {
			return nil, 0, err
		}
		iters++
		var t0 int64
		if ob != nil {
			t0 = ob.Now()
		}
		// Frontier carries the improved vertices' new levels + 1: the
		// value each proposes to its out-neighbours.
		sort.Ints(next)
		frontierSize := len(next)
		is := make([]int, len(next))
		xs := make([]int32, len(next))
		for k, v := range next {
			is[k] = v
			xs[k] = lv[v] + 1
			queued[v] = false
		}
		next = next[:0]
		fr, err := grb.ImportSparse(n, is, xs, true)
		if err != nil {
			return nil, 0, err
		}
		// cand(j) = min over frontier vertices i with an edge i→j of
		// lv(i)+1, pushed along edges like the full BFS's VxM.
		cand := grb.MustVector[int32](n)
		if err := grb.VxM(cand, (*grb.Vector[bool])(nil), nil, minFirst, fr, g.A, nil); err != nil {
			return nil, 0, err
		}
		cis, cxs := cand.ExtractTuples()
		for k, v := range cis {
			relax(v, cxs[k])
		}
		if ob != nil {
			ob.Iter(obs.IterRecord{
				Algo: "bfs", Iter: iters,
				Frontier: frontierSize, Dir: "push", Warm: true,
				DurNanos: ob.Now() - t0,
			})
		}
	}

	// Rebuild the sparse level vector; indices ascend, so the tuple
	// stream is bitwise identical to a full BFS of the mutated graph.
	nnz := 0
	for i := range has {
		if has[i] {
			nnz++
		}
	}
	ris := make([]int, 0, nnz)
	rxs := make([]int32, 0, nnz)
	for i := 0; i < n; i++ {
		if has[i] {
			ris = append(ris, i)
			rxs = append(rxs, lv[i])
		}
	}
	out, err := grb.ImportSparse(n, ris, rxs, true)
	if err != nil {
		return nil, 0, err
	}
	return out, iters, nil
}

// L1Distance returns ‖a-b‖₁ over the union of stored entries (a missing
// entry counts as zero) — the metric the equivalence battery uses to
// compare warm-started PageRank against a full recompute.
func L1Distance(a, b *grb.Vector[float64]) float64 {
	ais, axs := a.ExtractTuples()
	bis, bxs := b.ExtractTuples()
	sum := 0.0
	i, j := 0, 0
	for i < len(ais) || j < len(bis) {
		switch {
		case j >= len(bis) || (i < len(ais) && ais[i] < bis[j]):
			sum += math.Abs(axs[i])
			i++
		case i >= len(ais) || bis[j] < ais[i]:
			sum += math.Abs(bxs[j])
			j++
		default:
			sum += math.Abs(axs[i] - bxs[j])
			i++
			j++
		}
	}
	return sum
}
