package lagraph

import (
	"math"
	"math/rand"

	"lagraph/internal/grb"
)

// Collaborative filtering by gradient descent (§V, [39]): the GraphMat /
// Satish et al. formulation of matrix completion, R ≈ U·Vᵀ, where the
// error matrix is computed with a *masked* matrix multiply — only the
// observed ratings are evaluated, which is exactly the fused masked-mxm
// kernel the paper highlights (§II-A).

// CFModel is a trained factorization.
type CFModel struct {
	// U is the nusers×rank user-factor matrix (dense).
	U *grb.Matrix[float64]
	// V is the nitems×rank item-factor matrix (dense).
	V *grb.Matrix[float64]
	// RMSE is the training root-mean-square error per epoch.
	RMSE []float64
}

// CollaborativeFiltering factorizes the sparse rating matrix r
// (nusers×nitems) into rank-dimensional factors by full-batch gradient
// descent:
//
//	E⟨pattern(R)⟩ = R − U·Vᵀ        (masked mxm)
//	U += lr·(E·V − reg·U)
//	V += lr·(Eᵀ·U − reg·V)
func CollaborativeFiltering(r *grb.Matrix[float64], rank int, lr, reg float64, epochs int, seed int64) (*CFModel, error) {
	if r == nil {
		return nil, grb.ErrUninitialized
	}
	if rank <= 0 || lr <= 0 || epochs <= 0 {
		return nil, ErrBadArgument
	}
	nu, ni := r.Nrows(), r.Ncols()
	nobs := r.Nvals()
	if nobs == 0 {
		return nil, ErrBadArgument
	}
	rng := rand.New(rand.NewSource(seed))
	u := denseRandom(rng, nu, rank, 0.5)
	v := denseRandom(rng, ni, rank, 0.5)

	plusTimes := grb.PlusTimes[float64]()
	model := &CFModel{U: u, V: v}
	for epoch := 0; epoch < epochs; epoch++ {
		// E⟨R⟩ = U·Vᵀ restricted to observed entries, then E = R − E.
		e := grb.MustMatrix[float64](nu, ni)
		dT1 := &grb.Descriptor{TranB: true, Method: grb.MxMDot}
		if err := grb.MxM(e, r, nil, plusTimes, u, v, dT1); err != nil {
			return nil, err
		}
		if err := grb.EWiseMultMatrix[float64, float64, float64, bool](e, nil, nil,
			grb.Minus[float64](), r, e, nil); err != nil {
			return nil, err
		}
		// RMSE over observed entries.
		sq := grb.MustMatrix[float64](nu, ni)
		if err := grb.ApplyMatrix[float64, float64, bool](sq, nil, nil,
			func(x float64) float64 { return x * x }, e, nil); err != nil {
			return nil, err
		}
		sse, err := grb.ReduceMatrixToScalar(grb.PlusMonoid[float64](), sq)
		if err != nil {
			return nil, err
		}
		model.RMSE = append(model.RMSE, math.Sqrt(sse/float64(nobs)))

		// Gradient steps.
		gu := grb.MustMatrix[float64](nu, rank)
		if err := grb.MxM(gu, (*grb.Matrix[bool])(nil), nil, plusTimes, e, v, nil); err != nil {
			return nil, err
		}
		gv := grb.MustMatrix[float64](ni, rank)
		if err := grb.MxM(gv, (*grb.Matrix[bool])(nil), nil, plusTimes, e, u, grb.DescT0); err != nil {
			return nil, err
		}
		if err := sgdStep(u, gu, lr, reg); err != nil {
			return nil, err
		}
		if err := sgdStep(v, gv, lr, reg); err != nil {
			return nil, err
		}
	}
	return model, nil
}

// sgdStep applies x += lr*(g - reg*x) element-wise (x dense).
func sgdStep(x, g *grb.Matrix[float64], lr, reg float64) error {
	// x ← (1 - lr*reg)·x + lr·g
	shrunk := grb.MustMatrix[float64](x.Nrows(), x.Ncols())
	if err := grb.ApplyMatrix[float64, float64, bool](shrunk, nil, nil,
		func(v float64) float64 { return (1 - lr*reg) * v }, x, nil); err != nil {
		return err
	}
	scaledG := grb.MustMatrix[float64](g.Nrows(), g.Ncols())
	if err := grb.ApplyMatrix[float64, float64, bool](scaledG, nil, nil,
		func(v float64) float64 { return lr * v }, g, nil); err != nil {
		return err
	}
	return grb.EWiseAddMatrix[float64, bool](x, nil, nil, grb.Plus[float64](), shrunk, scaledG, nil)
}

// Predict returns the model's rating estimate for (user, item).
func (m *CFModel) Predict(user, item int) (float64, error) {
	rank := m.U.Ncols()
	sum := 0.0
	for f := 0; f < rank; f++ {
		uf, err := m.U.GetElement(user, f)
		if err != nil {
			return 0, err
		}
		vf, err := m.V.GetElement(item, f)
		if err != nil {
			return 0, err
		}
		sum += uf * vf
	}
	return sum, nil
}

// denseRandom builds a dense nr×nc matrix of small random values.
func denseRandom(rng *rand.Rand, nr, nc int, scale float64) *grb.Matrix[float64] {
	is := make([]int, 0, nr*nc)
	js := make([]int, 0, nr*nc)
	xs := make([]float64, 0, nr*nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			is = append(is, i)
			js = append(js, j)
			xs = append(xs, (rng.Float64()-0.5)*2*scale)
		}
	}
	m := grb.MustMatrix[float64](nr, nc)
	if err := m.Build(is, js, xs, nil); err != nil {
		panic(err)
	}
	return m
}
