package lagraph

import "lagraph/internal/grb"

// Sparse deep neural network inference (§V, [47]): the GraphChallenge
// formulation of Kepner et al. — each layer is a sparse matrix-matrix
// multiply followed by a bias eWise-add and a ReLU apply, optionally
// clamped at a ceiling. Pure Table I operations.

// DNNLayer holds one layer's weights and per-neuron bias.
type DNNLayer struct {
	// W is the nneurons×nneurons sparse weight matrix.
	W *grb.Matrix[float64]
	// Bias is added to every active (row, neuron) pair after the multiply.
	Bias *grb.Vector[float64]
}

// DNNInference propagates the nfeatures×nneurons activation matrix y0
// through the layers: y ← clamp(relu(y·W + bias), ymax). A ymax of 0
// disables clamping.
func DNNInference(y0 *grb.Matrix[float64], layers []DNNLayer, ymax float64) (*grb.Matrix[float64], error) {
	if y0 == nil {
		return nil, grb.ErrUninitialized
	}
	y := y0.Dup()
	plusTimes := grb.PlusTimes[float64]()
	for _, layer := range layers {
		if layer.W == nil {
			return nil, grb.ErrUninitialized
		}
		if y.Ncols() != layer.W.Nrows() {
			return nil, grb.ErrDimensionMismatch
		}
		z := grb.MustMatrix[float64](y.Nrows(), layer.W.Ncols())
		if err := grb.MxM(z, (*grb.Matrix[bool])(nil), nil, plusTimes, y, layer.W, nil); err != nil {
			return nil, err
		}
		// Add the bias to active entries: z(i,j) += bias(j).
		if layer.Bias != nil {
			if layer.Bias.Size() != z.Ncols() {
				return nil, grb.ErrDimensionMismatch
			}
			bias := layer.Bias
			if err := grb.ApplyIndexMatrix(z, (*grb.Matrix[bool])(nil), nil,
				func(x float64, _, j int) float64 {
					b, err := bias.GetElement(j)
					if err != nil {
						return x
					}
					return x + b
				}, z, nil); err != nil {
				return nil, err
			}
		}
		// ReLU: keep strictly positive activations.
		if err := grb.SelectMatrix[float64, bool](z, nil, nil, grb.ValueGT(0.0), z, grb.DescR); err != nil {
			return nil, err
		}
		// Clamp at ymax (the GraphChallenge saturation).
		if ymax > 0 {
			if err := grb.ApplyMatrix[float64, float64, bool](z, nil, nil,
				func(x float64) float64 {
					if x > ymax {
						return ymax
					}
					return x
				}, z, nil); err != nil {
				return nil, err
			}
		}
		y = z
	}
	return y, nil
}

// DNNCategories returns the rows of the final activation matrix that have
// any surviving activation — the "categories" output of the
// GraphChallenge benchmark.
func DNNCategories(y *grb.Matrix[float64]) (*grb.Vector[bool], error) {
	rows := grb.MustVector[float64](y.Nrows())
	if err := grb.ReduceMatrixToVector[float64, bool](rows, nil, nil, grb.PlusMonoid[float64](), y, nil); err != nil {
		return nil, err
	}
	cats := grb.MustVector[bool](y.Nrows())
	if err := grb.ApplyVector[float64, bool, bool](cats, nil, nil,
		func(x float64) bool { return x > 0 }, rows, nil); err != nil {
		return nil, err
	}
	if err := grb.SelectVector[bool, bool](cats, nil, nil, grb.ValueEQ(true), cats, grb.DescR); err != nil {
		return nil, err
	}
	return cats, nil
}
