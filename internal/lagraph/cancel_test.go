package lagraph

import (
	"context"
	"errors"
	"testing"
	"time"

	"lagraph/internal/gen"
	"lagraph/internal/grb"
)

// cancelGraph builds a small undirected graph every algorithm accepts.
func cancelGraph(t *testing.T) *Graph {
	t.Helper()
	e := gen.PowerLaw(256, 2048, 1.8, gen.Config{Seed: 3, Undirected: true, NoSelfLoops: true})
	g, err := NewGraph(e.Matrix(), Undirected)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCancellationAllAlgorithms: with an already-done context every
// Options-accepting iterative algorithm must return an error matching
// both grb.ErrCanceled and the context's cause — before completing (the
// per-iteration check fires on iteration one).
func TestCancellationAllAlgorithms(t *testing.T) {
	g := cancelGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := WithContext(ctx)

	runs := map[string]func() error{
		"BFSLevels":     func() error { _, err := BFSLevels(g, 0, opt); return err },
		"BFSParents":    func() error { _, err := BFSParents(g, 0, opt); return err },
		"SSSP":          func() error { _, err := SSSP(g, 0, opt); return err },
		"SSSPBellman":   func() error { _, err := SSSPBellmanFord(g, 0, opt); return err },
		"PageRankWith":  func() error { _, err := PageRankWith(g, opt); return err },
		"HITSWith":      func() error { _, err := HITSWith(g, opt); return err },
		"CCFastSV":      func() error { _, err := ConnectedComponentsFastSV(g, opt); return err },
		"CCLabelProp":   func() error { _, err := ConnectedComponentsLabelProp(g, opt); return err },
		"MIS":           func() error { _, err := MIS(g, 1, opt); return err },
		"TriangleCount": func() error { _, err := TriangleCount(g, TCSandiaDot, opt); return err },
		"KTruss":        func() error { _, err := KTruss(g, 3, opt); return err },
		"APSP":          func() error { _, err := APSP(g, opt); return err },
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			err := run()
			if !errors.Is(err, grb.ErrCanceled) {
				t.Fatalf("want grb.ErrCanceled, got %v", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("context cause lost: %v", err)
			}
		})
	}
}

// TestDeadlineCause: a deadline-based context must surface
// context.DeadlineExceeded as the cause alongside grb.ErrCanceled.
func TestDeadlineCause(t *testing.T) {
	g := cancelGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	_, err := PageRankWith(g, WithContext(ctx))
	if !errors.Is(err, grb.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled+DeadlineExceeded, got %v", err)
	}
}

// TestLiveContextCompletes: a context that never fires must not perturb
// results — same output as the no-option call.
func TestLiveContextCompletes(t *testing.T) {
	g := cancelGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	with, err := BFSLevels(g, 0, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	without, err := BFSLevels(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	wi, wx := with.ExtractTuples()
	oi, ox := without.ExtractTuples()
	if len(wi) != len(oi) {
		t.Fatalf("nvals differ: %d vs %d", len(wi), len(oi))
	}
	for k := range wi {
		if wi[k] != oi[k] || wx[k] != ox[k] {
			t.Fatalf("tuple %d differs: (%d,%d) vs (%d,%d)", k, wi[k], wx[k], oi[k], ox[k])
		}
	}
}
