package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"lagraph/internal/catalog"
	"lagraph/internal/store"
	"lagraph/internal/wal"
)

// Placement is one graph's ownership row in the topology document.
type Placement struct {
	Name    string   `json:"name"`
	Primary string   `json:"primary"`
	Nodes   []string `json:"nodes"` // primary first, then replicas
}

// topologyDoc is the GET /v1/cluster/topology response: the membership
// document plus this node's identity and the per-graph placement of
// every locally known graph.
type topologyDoc struct {
	Topology
	Self       string      `json:"self"`
	Placements []Placement `json:"placements"`
}

// errorBody mirrors the service layer's error envelope so cluster
// endpoints speak the same dialect as /v1.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// Handler serves the cluster wire protocol. The service layer mounts it
// under /v1/cluster/; the patterns are absolute so tests can also mount
// it as a bare root handler.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/topology", n.handleTopologyGet)
	mux.HandleFunc("POST /v1/cluster/topology", n.handleTopologyPost)
	mux.HandleFunc("GET /v1/cluster/status", n.handleStatus)
	mux.HandleFunc("GET /v1/cluster/wal", n.handleWALStream)
	mux.HandleFunc("GET /v1/cluster/graphs/{name}/snapshot", n.handleSnapshotFetch)
	return mux
}

// clusterError writes the JSON error envelope.
func clusterError(w http.ResponseWriter, status int, code, msg string, retryable bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: errorInfo{Code: code, Message: msg, Retryable: retryable}})
}

// handleTopologyGet returns the node list, ring parameters, epoch, and
// the placement of every graph this node knows about.
func (n *Node) handleTopologyGet(w http.ResponseWriter, r *http.Request) {
	doc := topologyDoc{Topology: n.TopologySnapshot(), Self: n.self, Placements: []Placement{}}
	for _, name := range n.cat.Names() {
		owners := n.Placement(name)
		p := Placement{Name: name, Nodes: make([]string, 0, len(owners))}
		for _, o := range owners {
			p.Nodes = append(p.Nodes, o.ID)
		}
		if len(owners) > 0 {
			p.Primary = owners[0].ID
		}
		doc.Placements = append(doc.Placements, p)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// handleTopologyPost installs a new topology document (an operator-driven
// epoch bump; peers also pick it up by gossip on their next poll).
func (n *Node) handleTopologyPost(w http.ResponseWriter, r *http.Request) {
	var t Topology
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&t); err != nil {
		clusterError(w, http.StatusBadRequest, "bad_request", "topology: "+err.Error(), false)
		return
	}
	if err := n.ApplyTopology(t); err != nil {
		clusterError(w, http.StatusConflict, "stale_epoch", err.Error(), false)
		return
	}
	n.logf("cluster: topology epoch %d applied (%d nodes, %d replicas)", t.Epoch, len(t.Nodes), t.Replicas)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"epoch": t.Epoch, "nodes": len(t.Nodes)})
}

// handleStatus reports this node's replication state: epoch, readiness,
// WAL head, and the role/journal/lag of every local graph.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	doc := n.statusSnapshot()
	if doc.Graphs == nil {
		doc.Graphs = []graphStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// countingWriter tracks whether any stream bytes reached the client —
// once they have, an error can only be signalled by truncating the
// stream (the reader's CRC/chain validation catches it).
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// handleWALStream serves a verified window of this node's WAL in the
// literal on-disk record format: a synthetic segment header carrying the
// chain digest of the predecessor record, then raw framed records.
func (n *Node) handleWALStream(w http.ResponseWriter, r *http.Request) {
	l := n.pers.WAL()
	if l == nil {
		clusterError(w, http.StatusNotImplemented, "no_persistence", "cluster: this node has no WAL attached", false)
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		clusterError(w, http.StatusBadRequest, "bad_request", "cluster: wal stream needs from=<lsn>=1>", false)
		return
	}
	maxRecords := 4096
	if s := r.URL.Query().Get("max"); s != "" {
		m, merr := strconv.Atoi(s)
		if merr != nil || m < 0 {
			clusterError(w, http.StatusBadRequest, "bad_request", "cluster: bad max", false)
			return
		}
		maxRecords = m
	}
	if maxRecords > 65536 {
		maxRecords = 65536
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	cw := &countingWriter{w: w}
	info, err := l.StreamTo(cw, from, maxRecords)
	if err != nil {
		if cw.n == 0 {
			// Nothing sent yet: a clean HTTP error is still possible.
			if errors.Is(err, wal.ErrTruncated) {
				clusterError(w, http.StatusGone, "truncated", err.Error(), false)
				return
			}
			clusterError(w, http.StatusInternalServerError, "internal", err.Error(), true)
			return
		}
		// Mid-stream failure: the response is already committed. The
		// truncated window fails the reader's verification, which retries.
		n.logf("cluster: wal stream from %d aborted after %d bytes: %v", from, cw.n, err)
		return
	}
	n.shippedRecords.Add(int64(info.Records))
}

// handleSnapshotFetch serves one graph as a framed, checksummed snapshot
// — the same bytes a local store snapshot would hold, so the follower
// installs it through the standard decode path.
func (n *Node) handleSnapshotFetch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, err := n.cat.Get(name)
	if err != nil {
		clusterError(w, http.StatusNotFound, "not_found", err.Error(), false)
		return
	}
	// Same fence SnapshotOne applies: a primary graph that has never
	// journaled must not inherit WAL records of an earlier same-name
	// incarnation — and the shipped floor must exclude them too. Replica
	// entries are exempt (their mark is in the source's LSN space).
	if l := n.pers.WAL(); l != nil && e.Role() != catalog.RoleReplica {
		e.FenceJournalSeq(l.NextLSN() - 1)
	}
	var buf bytes.Buffer
	info, err := e.Snapshot(&buf)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, "internal", err.Error(), true)
		return
	}
	kind := "undirected"
	if info.Directed {
		kind = "directed"
	}
	meta := store.Meta{
		Name: name, Kind: kind,
		NRows: int64(info.N), NCols: int64(info.N), NVals: int64(info.NEdges),
		Generation: info.Generation, Journal: info.Journal,
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := store.WriteFrame(w, meta, buf.Bytes()); err != nil {
		// Response already committed; the follower's frame CRC fails.
		n.logf("cluster: snapshot ship %q: %v", name, err)
		return
	}
	n.shippedSnaps.Add(1)
}
