package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/store"
)

// Config wires a Node to the rest of the daemon.
type Config struct {
	// Self is this node's ID; it must appear in Topology.Nodes.
	Self string
	// Topology is the boot membership document (epoch >= 1).
	Topology Topology
	// Catalog and Persister are the local graph registry and durability
	// layer the sync loop applies replication through.
	Catalog   *catalog.Catalog
	Persister *store.Persister
	// Client issues peer HTTP requests (default: 30 s timeout).
	Client *http.Client
	// Poll is the sync-loop interval (default 500 ms).
	Poll time.Duration
	// Logf receives cluster life-cycle messages (default: discard).
	Logf func(format string, args ...any)
}

// graphSync is the per-graph replication cursor, owned by the sync-loop
// goroutine: only map membership is shared (under Node.mu); the fields
// are touched by the single manager goroutine alone.
type graphSync struct {
	name   string
	source string // peer node ID the stream comes from
	// pos is the next LSN to request — in the SOURCE primary's LSN space.
	pos uint64
	// chain is the hash-chain digest after the last completed window;
	// the next window's carry-in must equal it (splice verification).
	chain   [32]byte
	chainOK bool
	// promote marks an adoption catch-up: once pos passes the old owner's
	// head, this node rebases the graph into its own LSN space and takes
	// over as primary.
	promote bool
	// genMismatch counts consecutive caught-up passes whose generation
	// disagreed with the source — two in a row forces a snapshot re-ship
	// (one is tolerated: the source samples journal and generation
	// non-atomically, so a racing batch can skew a single poll).
	genMismatch int
}

// Node is one cluster member: it owns the topology + ring, runs the
// replication sync loop, and serves the cluster wire protocol.
type Node struct {
	self string
	cat  *catalog.Catalog
	pers *store.Persister

	client *http.Client
	poll   time.Duration
	logf   func(format string, args ...any)

	// mu is the ring mutex. Lock order: cluster → catalog → store; code
	// holding mu must never call back into svc handlers (grblint's
	// lock-discipline check enforces this mechanically).
	mu    sync.Mutex
	top   Topology              //grblint:guardedby mu
	ring  *Ring                 //grblint:guardedby mu
	syncs map[string]*graphSync //grblint:guardedby mu
	// tombs records deliberate local drops of primary graphs, so the sync
	// loop does not re-adopt a dropped name from replicas that have not
	// yet observed the drop. Entries expire once no peer lists the name.
	tombs map[string]bool //grblint:guardedby mu

	// epoch mirrors top.Epoch for lock-free reads on the routing path.
	epoch atomic.Uint64
	// ready latches true after the first pass where every peer answered
	// and every replica graph was caught up; /readyz gates on it.
	ready atomic.Bool
	// lagSince is the unix-nano instant replication first fell behind
	// (0 = currently caught up); feeds the lag-seconds metric.
	lagSince atomic.Int64

	cancel context.CancelFunc
	done   chan struct{}

	// Wire + routing counters (metrics).
	shippedRecords atomic.Int64
	shippedSnaps   atomic.Int64
	fetchedRecords atomic.Int64
	fetchedSnaps   atomic.Int64
	redirects      atomic.Int64
	proxied        atomic.Int64
	handoffs       atomic.Int64
	syncErrors     atomic.Int64
}

// New validates the configuration and builds a Node (not yet running;
// call Start).
func New(cfg Config) (*Node, error) {
	if cfg.Catalog == nil || cfg.Persister == nil {
		return nil, fmt.Errorf("cluster: config needs a catalog and a persister")
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if _, ok := cfg.Topology.Node(cfg.Self); !ok {
		return nil, fmt.Errorf("cluster: node id %q not in topology", cfg.Self)
	}
	n := &Node{
		self:   cfg.Self,
		cat:    cfg.Catalog,
		pers:   cfg.Persister,
		client: cfg.Client,
		poll:   cfg.Poll,
		logf:   cfg.Logf,
		top:    cfg.Topology,
		ring:   NewRing(cfg.Topology),
		syncs:  map[string]*graphSync{},
		tombs:  map[string]bool{},
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: 30 * time.Second}
	}
	if n.poll <= 0 {
		n.poll = 500 * time.Millisecond
	}
	if n.logf == nil {
		n.logf = func(string, ...any) {}
	}
	n.epoch.Store(cfg.Topology.Epoch)
	return n, nil
}

// Start launches the sync loop. The goroutine exits when ctx is
// cancelled or Close is called.
func (n *Node) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	n.cancel = cancel
	n.done = make(chan struct{})
	go n.run(ctx)
}

// Close stops the sync loop and waits for it to exit.
func (n *Node) Close() {
	if n.cancel == nil {
		return
	}
	n.cancel()
	<-n.done
}

// run is the sync loop: one reconciliation pass immediately (so a
// single-node cluster is ready without waiting a tick), then one per
// poll interval.
func (n *Node) run(ctx context.Context) {
	defer close(n.done)
	ticker := time.NewTicker(n.poll)
	defer ticker.Stop()
	n.pass(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			n.pass(ctx)
		}
	}
}

// Self returns this node's ID.
func (n *Node) Self() string { return n.self }

// SelfInfo returns this node's topology entry.
func (n *Node) SelfInfo() NodeInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	info, _ := n.top.Node(n.self)
	return info
}

// Epoch returns the current topology epoch (lock-free).
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// Client returns the HTTP client used for peer traffic; the service
// layer's proxy route shares it so per-peer connection pools are reused.
func (n *Node) Client() *http.Client { return n.client }

// Ready reports whether the initial replica catch-up has completed: all
// peers answered one full pass and every graph this node replicates was
// caught up. Latches true; /readyz gates on it in cluster mode.
func (n *Node) Ready() bool { return n.ready.Load() }

// TopologySnapshot returns a copy of the current topology document.
func (n *Node) TopologySnapshot() Topology {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.top
	t.Nodes = append([]NodeInfo(nil), n.top.Nodes...)
	return t
}

// Placement returns the owners of a graph name under the current ring,
// primary first.
func (n *Node) Placement(name string) []NodeInfo {
	n.mu.Lock()
	ring := n.ring
	n.mu.Unlock()
	return ring.Place(name)
}

// RoleOf returns this node's ring role for a graph name plus the
// primary's info. This is the routing hot path: one mutex hand-off for
// the ring pointer, then pure computation.
func (n *Node) RoleOf(name string) (catalog.Role, NodeInfo) {
	owners := n.Placement(name)
	if len(owners) == 0 {
		return catalog.RoleNone, NodeInfo{}
	}
	return roleFor(n.self, owners), owners[0]
}

// roleFor maps a placement list onto this node's role.
func roleFor(self string, owners []NodeInfo) catalog.Role {
	for i, o := range owners {
		if o.ID == self {
			if i == 0 {
				return catalog.RolePrimary
			}
			return catalog.RoleReplica
		}
	}
	return catalog.RoleNone
}

// SyncPending reports whether a replication sync for the named graph is
// in flight (created but not yet caught up / finalized). The service
// layer answers 503 not_ready for such graphs instead of 404.
func (n *Node) SyncPending(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.syncs[name]
	return ok
}

// DropGraph is the cluster-aware drop: tombstone, catalog drop and
// durable removal happen atomically under the ring mutex (lock order
// cluster → catalog → store permits the nested calls). Without the
// atomicity, the sync loop can slip between the catalog drop and the
// tombstone, see replicas still listing the graph, and resurrect the
// drop by re-adopting from a follower. The tombstone expires once no
// peer lists the name anymore (or the name is deliberately re-created).
// dropErr is the catalog's verdict (ErrNotFound when no entry existed),
// removed reports whether a durable copy was cleared, and removeErr any
// store failure — mirroring the single-node drop path's three outcomes.
func (n *Node) DropGraph(name string) (dropErr error, removed bool, removeErr error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tombs[name] = true
	delete(n.syncs, name)
	dropErr = n.cat.Drop(name)
	removed, removeErr = n.pers.Remove(name)
	return dropErr, removed, removeErr
}

// ApplyTopology installs a new topology document. The epoch must move
// strictly forward and the document must still include this node.
func (n *Node) ApplyTopology(t Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, ok := t.Node(n.self); !ok {
		return fmt.Errorf("cluster: topology epoch %d omits this node %q", t.Epoch, n.self)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if t.Epoch <= n.top.Epoch {
		return fmt.Errorf("cluster: stale topology epoch %d (current %d)", t.Epoch, n.top.Epoch)
	}
	n.top = t
	n.ring = NewRing(t)
	n.epoch.Store(t.Epoch)
	return nil
}

// CountRedirect and CountProxied are bumped by the service layer's
// routing middleware; they live here so every cluster counter renders
// from one place.
func (n *Node) CountRedirect() { n.redirects.Add(1) }

// CountProxied counts a query proxied to the graph's owner.
func (n *Node) CountProxied() { n.proxied.Add(1) }

// NodeStats is the metrics snapshot of one cluster member.
type NodeStats struct {
	Self         string `json:"self"`
	Epoch        uint64 `json:"epoch"`
	Nodes        int    `json:"nodes"`
	Ready        bool   `json:"ready"`
	PendingSyncs int    `json:"pending_syncs"`
	// MaxLagLSN is the worst replication-lag LSN across local replica
	// entries (0 = every replica caught up to its source's last observed
	// journal position).
	MaxLagLSN uint64 `json:"max_lag_lsn"`
	// LagSeconds is how long replication has currently been behind
	// (0 when caught up).
	LagSeconds       float64 `json:"lag_seconds"`
	ShippedRecords   int64   `json:"shipped_records"`
	ShippedSnapshots int64   `json:"shipped_snapshots"`
	FetchedRecords   int64   `json:"fetched_records"`
	FetchedSnapshots int64   `json:"fetched_snapshots"`
	Redirects        int64   `json:"redirects"`
	Proxied          int64   `json:"proxied"`
	Handoffs         int64   `json:"handoffs"`
	SyncErrors       int64   `json:"sync_errors"`
}

// Stats snapshots the cluster counters for the metrics endpoint.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	epoch := n.top.Epoch
	nodes := len(n.top.Nodes)
	pending := len(n.syncs)
	n.mu.Unlock()
	var maxLag uint64
	for _, name := range n.cat.Names() {
		e, err := n.cat.Get(name)
		if err != nil {
			continue
		}
		if l := e.ReplicaLag(); l > maxLag {
			maxLag = l
		}
	}
	var lagSec float64
	if since := n.lagSince.Load(); since != 0 {
		lagSec = time.Since(time.Unix(0, since)).Seconds()
	}
	return NodeStats{
		Self:             n.self,
		Epoch:            epoch,
		Nodes:            nodes,
		Ready:            n.ready.Load(),
		PendingSyncs:     pending,
		MaxLagLSN:        maxLag,
		LagSeconds:       lagSec,
		ShippedRecords:   n.shippedRecords.Load(),
		ShippedSnapshots: n.shippedSnaps.Load(),
		FetchedRecords:   n.fetchedRecords.Load(),
		FetchedSnapshots: n.fetchedSnaps.Load(),
		Redirects:        n.redirects.Load(),
		Proxied:          n.proxied.Load(),
		Handoffs:         n.handoffs.Load(),
		SyncErrors:       n.syncErrors.Load(),
	}
}
