// Package cluster turns lagraphd into a static-topology multi-node
// service: a consistent-hash ring places every graph name on a primary
// plus R replicas, primaries ship baseline snapshot frames followed by
// live WAL records to their replicas (reusing internal/wal's record
// framing and chain verification as the wire protocol — see wal.StreamTo
// and wal.StreamReader), and replicas apply the stream through the
// existing catalog/persister path so they serve read-only queries with a
// reported replication-lag LSN.
//
// # Placement
//
// The ring is a pure function of the topology document: every node
// contributes VNodes virtual points (a 64-bit digest of "id#k"), a graph name
// hashes to a point, and ownership is the next 1+R distinct nodes
// clockwise. Two nodes holding the same topology therefore compute
// identical placements with no coordination — the only shared state is
// the topology document itself, which changes only by an explicit epoch
// bump (POST /v1/cluster/topology to every node).
//
// # Replication
//
// Replication is pull-based: each node runs one sync loop that polls the
// status endpoint of every peer, discovers graphs whose ring placement
// makes this node a replica, and catches each one up — baseline snapshot
// frame first (the store's CRC-64 framed format, floor-pinned exactly
// like a local snapshot), then windows of the primary's WAL filtered to
// that graph. Every window is CRC + hash-chain + LSN-density verified
// with the same code boot recovery uses, and consecutive windows must
// splice (the new window's carry-in digest equals the digest of the last
// record already applied). A replica's journal mark lives in its SOURCE
// primary's LSN space; local snapshots persist it, so a restarted
// replica resumes the stream from its snapshot floor — recovery is
// "snapshot + WAL-stream catch-up", the distributed mirror of the local
// "snapshot + WAL replay".
//
// # Lock order
//
// The repo-wide lock order gains an outermost layer: cluster → catalog →
// store. The sync loop may consult the catalog while holding the ring
// mutex is NOT allowed in the other direction — and cluster code must
// never call back into svc handlers while holding the ring mutex (svc
// calls into cluster on every routed request; re-entry would deadlock).
// grblint's lock-discipline check enforces the svc half mechanically.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// NodeInfo identifies one cluster member.
type NodeInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Topology is the static membership document every node is configured
// with (and that an operator re-POSTs, with a higher epoch, to change).
type Topology struct {
	// Epoch versions the document: a node only accepts a topology with a
	// strictly higher epoch, and rebalancing is keyed off the bump.
	Epoch uint64 `json:"epoch"`
	// Replicas is R: each graph gets one primary plus up to R replicas
	// (clamped by cluster size).
	Replicas int `json:"replicas"`
	// VNodes is the virtual-node count per member (0 selects 64). More
	// points smooth the placement distribution.
	VNodes int `json:"vnodes,omitempty"`
	// Nodes are the members. Order does not affect placement.
	Nodes []NodeInfo `json:"nodes"`
}

// Validate checks structural sanity: a usable epoch, at least one node,
// distinct IDs, and URLs present.
func (t Topology) Validate() error {
	if t.Epoch == 0 {
		return fmt.Errorf("cluster: topology epoch must be >= 1")
	}
	if len(t.Nodes) == 0 {
		return fmt.Errorf("cluster: topology has no nodes")
	}
	if t.Replicas < 0 {
		return fmt.Errorf("cluster: negative replica count %d", t.Replicas)
	}
	seen := map[string]bool{}
	for _, n := range t.Nodes {
		if n.ID == "" || n.URL == "" {
			return fmt.Errorf("cluster: node needs both id and url, got %+v", n)
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	return nil
}

// Node returns the member with the given ID.
func (t Topology) Node(id string) (NodeInfo, bool) {
	for _, n := range t.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeInfo{}, false
}

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// Ring is the materialized consistent-hash circle for one topology.
// Immutable once built; placement is a pure read.
type Ring struct {
	nodes    []NodeInfo
	points   []ringPoint
	replicas int
}

// DefaultVNodes is the virtual-node count per member when the topology
// leaves VNodes zero.
const DefaultVNodes = 64

// NewRing materializes the hash circle for a topology. Building is
// deterministic: the same topology document yields the same ring on
// every node, whatever the struct's field or slice ordering history.
func NewRing(t Topology) *Ring {
	vn := t.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	// Sort members by ID first so node indices (the hash tie-break) are
	// topology-order independent.
	nodes := append([]NodeInfo(nil), t.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	r := &Ring{nodes: nodes, replicas: t.Replicas, points: make([]ringPoint, 0, vn*len(nodes))}
	for i, n := range nodes {
		for k := 0; k < vn; k++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n.ID, k)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Place returns the owners of a graph name: the primary first, then up
// to Replicas distinct replica nodes, walking clockwise from the name's
// hash point. With fewer members than 1+R the whole membership owns the
// graph.
func (r *Ring) Place(name string) []NodeInfo {
	if len(r.points) == 0 {
		return nil
	}
	want := r.replicas + 1
	if want > len(r.nodes) {
		want = len(r.nodes)
	}
	h := hash64(name)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]NodeInfo, 0, want)
	taken := map[int]bool{}
	for i := 0; i < len(r.points) && len(owners) < want; i++ {
		pt := r.points[(start+i)%len(r.points)]
		if taken[pt.node] {
			continue
		}
		taken[pt.node] = true
		owners = append(owners, r.nodes[pt.node])
	}
	return owners
}

// Primary returns the write owner of a graph name.
func (r *Ring) Primary(name string) NodeInfo {
	owners := r.Place(name)
	if len(owners) == 0 {
		return NodeInfo{}
	}
	return owners[0]
}

// hash64 maps a string onto the ring circle: the first 8 bytes of its
// SHA-256 digest. A cheap multiplicative hash (FNV) is not good enough
// here — vnode keys are short near-identical strings ("a#0", "a#1", …)
// and poor avalanche behavior clusters a member's points so badly that
// whole nodes can end up owning nothing. Ring builds hash vnodes·nodes
// strings once per topology change and placements hash one name, so the
// stronger digest costs nothing measurable.
func hash64(s string) uint64 {
	d := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(d[:8])
}
