package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/lagraph"
	"lagraph/internal/store"
	"lagraph/internal/wal"
)

// statusDoc is one node's answer to GET /v1/cluster/status: everything a
// peer needs to decide what to replicate from it.
type statusDoc struct {
	Node    string        `json:"node"`
	Epoch   uint64        `json:"epoch"`
	Ready   bool          `json:"ready"`
	WALHead uint64        `json:"wal_head"`
	Graphs  []graphStatus `json:"graphs"`
}

// graphStatus describes one locally held graph in a status document.
type graphStatus struct {
	Name string `json:"name"`
	// Role is the holder's entry role ("primary" | "replica" | "" for a
	// pre-cluster entry the holder has not reconciled yet).
	Role string `json:"role,omitempty"`
	// Generation is the catalog mutation counter — replicas compare it
	// against their own at lag 0 to detect non-journaled divergence
	// (a primary-side replace is not a WAL record).
	Generation uint64 `json:"generation"`
	// Journal is the holder's journal mark for the graph: on a primary,
	// the last LSN applied in its own WAL — the replication target.
	Journal uint64 `json:"journal"`
	Lag     uint64 `json:"lag,omitempty"`
}

// errSpliceBroken reports a stream window whose carry-in did not match
// the chain digest of the records already applied: the source's history
// diverged from ours (new LSN space or corruption) — re-ship the
// snapshot rather than apply an unverifiable suffix.
var errSpliceBroken = errors.New("cluster: stream window does not splice onto applied history")

// desiredSync is one replication obligation discovered by a pass.
type desiredSync struct {
	src     NodeInfo
	gs      graphStatus
	promote bool
}

// pass runs one reconciliation round: poll every peer, reconcile local
// entry roles (promotion, demotion, handoff drops), then catch up every
// graph this node replicates. No locks are held across network or
// catalog calls — mu only guards the topology/ring pointers and sync-map
// membership.
func (n *Node) pass(ctx context.Context) {
	n.mu.Lock()
	top := n.top
	ring := n.ring
	tombs := make(map[string]bool, len(n.tombs))
	for name := range n.tombs {
		tombs[name] = true
	}
	n.mu.Unlock()

	// 1. Poll peers. listed[nodeID][graph] is each reachable peer's view.
	listed := map[string]map[string]graphStatus{}
	allPolled := true
	var newer NodeInfo // a peer advertising a higher topology epoch
	for _, p := range top.Nodes {
		if p.ID == n.self {
			continue
		}
		doc, err := n.fetchStatus(ctx, p)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			n.syncErrors.Add(1)
			allPolled = false
			continue
		}
		m := make(map[string]graphStatus, len(doc.Graphs))
		for _, g := range doc.Graphs {
			m[g.Name] = g
		}
		listed[p.ID] = m
		if doc.Epoch > top.Epoch && newer.ID == "" {
			newer = p
		}
	}

	// 2. Epoch gossip: a peer holds a newer topology — fetch and adopt it,
	// and let the next tick reconcile under the new ring.
	if newer.ID != "" {
		if t, err := n.fetchTopology(ctx, newer); err == nil {
			if aerr := n.ApplyTopology(t); aerr == nil {
				n.logf("cluster: adopted topology epoch %d from peer %s", t.Epoch, newer.ID)
				return
			}
		}
	}

	// 3. Reconcile local entries against the ring: set roles, complete
	// handoffs (drop once the new owner holds the graph), propagate drops.
	for _, name := range n.cat.Names() {
		e, err := n.cat.Get(name)
		if err != nil {
			continue // dropped concurrently
		}
		owners := ring.Place(name)
		if len(owners) == 0 {
			continue
		}
		primary := owners[0]
		switch roleFor(n.self, owners) {
		case catalog.RolePrimary:
			if e.Role() != catalog.RoleReplica {
				e.SetRole(catalog.RolePrimary)
			}
			// A local replica copy of a graph the ring now assigns to us is
			// adopted through a promote sync (step 4) while any old owner
			// still lists it; if every peer answered and none does, the
			// local copy is all there is — adopt it as-is.
			if e.Role() == catalog.RoleReplica && allPolled && !anyLists(listed, name) {
				n.adopt(name, e)
			}
		case catalog.RoleReplica:
			if e.Role() == catalog.RolePrimary {
				// Demoted: our copy's journal mark is in OUR LSN space, which
				// is useless to the stream from the new primary. Serve reads
				// until the new primary has ADOPTED the graph (lists it with
				// role primary — merely holding a replica copy is not enough:
				// it may still need our WAL suffix), then drop and re-sync
				// snapshot-first from it.
				if listsAsPrimary(listed, primary.ID, name) {
					n.dropLocal(name, "handing off to new primary "+primary.ID)
				}
			} else {
				e.SetRole(catalog.RoleReplica)
				// Drop propagation: our primary answered this pass, no longer
				// holds the graph, and no other peer claims primary ownership
				// either (during a handoff the OLD owner still lists it as
				// primary, which must not read as a drop) — the graph was
				// dropped at the source.
				if _, polled := listed[primary.ID]; polled &&
					!lists(listed, primary.ID, name) && !anyListsAsPrimary(listed, name) {
					n.dropLocal(name, "dropped at primary "+primary.ID)
				}
			}
		case catalog.RoleNone:
			// Parting after an epoch bump: keep serving reads until the new
			// primary has adopted the graph, then hand off.
			if listsAsPrimary(listed, primary.ID, name) {
				n.dropLocal(name, "moved to "+primary.ID)
			}
		}
	}

	// 4. Replication obligations: for every graph a reachable peer holds,
	// sync if the ring makes us a replica (source = ring primary) or the
	// new owner (promote catch-up from the old holder).
	desired := map[string]desiredSync{}
	for _, p := range top.Nodes {
		m, polled := listed[p.ID]
		if !polled {
			continue
		}
		for name, gs := range m {
			owners := ring.Place(name)
			if len(owners) == 0 {
				continue
			}
			switch {
			case owners[0].ID == p.ID && roleFor(n.self, owners) == catalog.RoleReplica:
				// p is the graph's ring primary. Only sync once it has
				// adopted (its entry role is primary): before that, its
				// journal mark is still in a previous owner's LSN space.
				if gs.Role == "primary" {
					desired[name] = desiredSync{src: p, gs: gs}
				}
			case owners[0].ID == n.self:
				if tombs[name] {
					break // deliberately dropped here; do not resurrect
				}
				e, gerr := n.cat.Get(name)
				if gerr == nil && e.Role() != catalog.RoleReplica {
					break // already ours
				}
				// Prefer catching up from a holder that was the primary (its
				// WAL has the authoritative suffix); among replica-only
				// holders take the most advanced copy, node ID breaking ties
				// so every pass picks the same source.
				if cur, ok := desired[name]; !ok || betterSource(gs, p, cur.gs, cur.src) {
					desired[name] = desiredSync{src: p, gs: gs, promote: true}
				}
			}
		}
	}

	// 5. Execute the syncs, names sorted for deterministic logs.
	names := make([]string, 0, len(desired))
	for name := range desired {
		names = append(names, name)
	}
	sort.Strings(names)
	allCaught := true
	for _, name := range names {
		if ctx.Err() != nil {
			return
		}
		if !n.syncGraph(ctx, desired[name]) {
			allCaught = false
		}
	}

	// 6. Expire drop tombstones: when the name is live again locally (a
	// deliberate re-create — DropGraph is atomic under mu, so live +
	// tombstoned cannot be a drop still in progress), or once every peer
	// answered and none lists the name — the drop fully propagated. The
	// liveness check runs under mu for the same atomicity.
	for name := range tombs {
		n.mu.Lock()
		_, liveErr := n.cat.Get(name)
		if liveErr == nil || (allPolled && !anyLists(listed, name)) {
			delete(n.tombs, name)
		}
		n.mu.Unlock()
	}

	// 7. Readiness + lag clock. Ready latches after the first fully
	// successful pass; the lag clock runs whenever something is behind.
	if allPolled && allCaught {
		n.lagSince.Store(0)
		if !n.ready.Load() {
			n.ready.Store(true)
			n.logf("cluster: node %s ready (epoch %d)", n.self, top.Epoch)
		}
	} else if n.lagSince.Load() == 0 {
		n.lagSince.Store(time.Now().UnixNano())
	}
}

// lists reports whether a polled peer holds the named graph.
func lists(listed map[string]map[string]graphStatus, node, name string) bool {
	m, ok := listed[node]
	if !ok {
		return false
	}
	_, ok = m[name]
	return ok
}

// listsAsPrimary reports whether a polled peer holds the named graph
// with an adopted primary role.
func listsAsPrimary(listed map[string]map[string]graphStatus, node, name string) bool {
	m, ok := listed[node]
	if !ok {
		return false
	}
	gs, ok := m[name]
	return ok && gs.Role == "primary"
}

// anyLists reports whether any polled peer holds the named graph.
func anyLists(listed map[string]map[string]graphStatus, name string) bool {
	for _, m := range listed {
		if _, ok := m[name]; ok {
			return true
		}
	}
	return false
}

// anyListsAsPrimary reports whether any polled peer claims primary
// ownership of the named graph.
func anyListsAsPrimary(listed map[string]map[string]graphStatus, name string) bool {
	for _, m := range listed {
		if gs, ok := m[name]; ok && gs.Role == "primary" {
			return true
		}
	}
	return false
}

// betterSource ranks promotion catch-up sources: a primary holder beats
// any replica, a more advanced replica beats a lagging one, and node ID
// breaks ties so source selection is deterministic across passes.
func betterSource(gs graphStatus, p NodeInfo, cur graphStatus, curP NodeInfo) bool {
	if (gs.Role == "primary") != (cur.Role == "primary") {
		return gs.Role == "primary"
	}
	if gs.Journal != cur.Journal {
		return gs.Journal > cur.Journal
	}
	return p.ID < curP.ID
}

// syncGraph brings one replicated graph up to its source's journal
// position: baseline snapshot if there is no local copy, then verified
// WAL windows. Returns true when the graph ended the pass caught up
// (and, for a promotion, adopted).
func (n *Node) syncGraph(ctx context.Context, d desiredSync) bool {
	name := d.gs.Name
	n.mu.Lock()
	s, ok := n.syncs[name]
	sourceChanged := ok && s.source != d.src.ID
	if sourceChanged {
		delete(n.syncs, name)
		ok = false
	}
	if !ok {
		s = &graphSync{name: name, source: d.src.ID}
		n.syncs[name] = s
	}
	s.promote = d.promote
	n.mu.Unlock()

	if sourceChanged {
		// The old cursor lived in another primary's LSN space: any local
		// copy must be re-shipped snapshot-first from the new source.
		n.dropLocal(name, "replication source moved to "+d.src.ID)
	}

	e, err := n.cat.Get(name)
	if d.promote && d.gs.Role != "primary" {
		// The only holders left are replicas: there is no authoritative WAL
		// to stream, so adopt the best available copy — ours if it is at
		// least as advanced as the source's, else the source's snapshot.
		if err == nil && e.JournalSeq() >= d.gs.Journal {
			n.adopt(name, e)
			return true
		}
		e, err = n.installSnapshot(ctx, d.src, name)
		if err != nil {
			n.syncErrors.Add(1)
			n.logf("cluster: snapshot %q from %s: %v", name, d.src.ID, err)
			return false
		}
		n.adopt(name, e)
		return true
	}
	if err != nil {
		e, err = n.installSnapshot(ctx, d.src, name)
		if err != nil {
			n.syncErrors.Add(1)
			n.logf("cluster: snapshot %q from %s: %v", name, d.src.ID, err)
			return false
		}
		s.pos, s.chainOK = e.JournalSeq()+1, false
	} else if s.pos == 0 {
		// Resuming a boot-recovered local copy: its journal mark is the
		// replication position the last local snapshot persisted (it lives
		// in the source's LSN space).
		if e.Role() == catalog.RoleNone {
			e.SetRole(catalog.RoleReplica)
		}
		s.pos, s.chainOK = e.JournalSeq()+1, false
	}
	e.SetSourceHead(d.gs.Journal)

	// Stream catch-up toward the journal position sampled this pass.
	for s.pos <= d.gs.Journal {
		if ctx.Err() != nil {
			return false
		}
		err := n.applyWindow(ctx, d.src, e, s)
		if errors.Is(err, wal.ErrTruncated) || errors.Is(err, errSpliceBroken) {
			// The suffix we need is gone (truncated at the source) or does
			// not splice onto what we hold: fall back to a fresh snapshot.
			n.logf("cluster: resync %q from %s: %v", name, d.src.ID, err)
			n.dropLocal(name, "stream fallback")
			return false
		}
		if err != nil {
			n.syncErrors.Add(1)
			n.logf("cluster: stream %q from %s at %d: %v", name, d.src.ID, s.pos, err)
			return false
		}
	}

	// Caught up by LSN. Generations must now agree — a primary-side
	// replace (not journaled) or a source change across a restart leaves
	// them different. One mismatched poll is tolerated (the source samples
	// journal and generation non-atomically); two in a row re-ships.
	if e.Generation() != d.gs.Generation {
		s.genMismatch++
		if s.genMismatch >= 2 {
			n.logf("cluster: %q generation %d != source %d at lag 0, re-shipping snapshot",
				name, e.Generation(), d.gs.Generation)
			n.dropLocal(name, "generation divergence")
		}
		return false
	}
	s.genMismatch = 0

	if d.promote {
		n.adopt(name, e)
		return true
	}
	return true
}

// applyWindow fetches one WAL window from the source and applies the
// records that belong to e's graph. The cursor advances only when the
// whole window verified; a partial apply is absorbed by the journal-mark
// skip on retry.
func (n *Node) applyWindow(ctx context.Context, src NodeInfo, e *catalog.Entry, s *graphSync) error {
	u := fmt.Sprintf("%s/v1/cluster/wal?from=%d&max=4096", src.URL, s.pos)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode == http.StatusGone {
		return wal.ErrTruncated
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: wal window from %s: status %d", src.ID, resp.StatusCode)
	}
	sr, err := wal.NewStreamReader(resp.Body)
	if err != nil {
		return err
	}
	// Splice check: the window's carry-in digest must equal the chain
	// digest after the last record we already verified.
	if s.chainOK && sr.Carry() != s.chain {
		return errSpliceBroken
	}
	name := e.Name()
	for {
		rec, rerr := sr.Next()
		if errors.Is(rerr, io.EOF) {
			break
		}
		if rerr != nil {
			return rerr
		}
		b, derr := store.DecodeEdgeBatch(rec.Payload)
		if derr != nil {
			return fmt.Errorf("cluster: record %d from %s: %w", rec.LSN, src.ID, derr)
		}
		// The stream carries the source's whole log; records for other
		// graphs are chain-verified and skipped. The journal-mark guard
		// also absorbs re-reads after a partially applied window.
		if b.Name != name || rec.LSN <= e.JournalSeq() {
			continue
		}
		aerr := e.Replicate(func(g *lagraph.Graph) (bool, error) {
			if apErr := store.ApplyEdgeBatch(g, b); apErr != nil {
				return false, apErr
			}
			e.SetJournalSeq(rec.LSN)
			// Replicated batches extend the replica's delta log too, so
			// replica reads can answer mode=incremental without falling
			// back (snapshot re-ships go through Replace, which breaks
			// the chain as an untracked mutation — exactly right).
			e.StageDelta(b.DeltaParts())
			return true, nil
		})
		if aerr != nil {
			return fmt.Errorf("cluster: apply record %d to %q: %w", rec.LSN, name, aerr)
		}
		n.fetchedRecords.Add(1)
	}
	s.chain, s.chainOK, s.pos = sr.Chain(), true, sr.NextLSN()
	return nil
}

// installSnapshot fetches the source's snapshot frame for one graph and
// installs it as a local replica entry: catalog registration, journal
// mark in the source's LSN space, persister floor reset, and an
// immediate local snapshot so a restart resumes from this baseline.
func (n *Node) installSnapshot(ctx context.Context, src NodeInfo, name string) (*catalog.Entry, error) {
	u := src.URL + "/v1/cluster/graphs/" + url.PathEscape(name) + "/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot fetch: status %d", resp.StatusCode)
	}
	meta, payload, err := store.ReadFrame(resp.Body)
	if err != nil {
		return nil, err
	}
	if meta.Name != name {
		return nil, fmt.Errorf("cluster: snapshot frame names %q, want %q", meta.Name, name)
	}
	g, err := lagraph.ReadGraph(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	if directed := g.Kind == lagraph.Directed; directed != (meta.Kind == "directed") {
		return nil, fmt.Errorf("cluster: snapshot %q payload kind contradicts metadata %q", name, meta.Kind)
	}
	// Registration happens under the ring mutex so it is atomic against
	// DropGraph: a name tombstoned after this pass sampled the peer
	// listings must not be resurrected by an in-flight install.
	n.mu.Lock()
	if n.tombs[name] {
		n.mu.Unlock()
		return nil, fmt.Errorf("cluster: %q was dropped here, not resurrecting", name)
	}
	// Replace any stale local copy wholesale — its journal mark belongs to
	// a different baseline.
	if _, gerr := n.cat.Get(name); gerr == nil {
		n.dropLocalLocked(name, "replaced by fresh snapshot")
	}
	e, err := n.cat.Add(name, g)
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	e.SeedGeneration(meta.Generation)
	e.SetJournalSeq(meta.Journal)
	e.SetRole(catalog.RoleReplica)
	n.pers.ResetJournalFloor(name, meta.Journal)
	n.mu.Unlock()
	n.fetchedSnaps.Add(1)
	if _, serr := n.pers.SnapshotOne(name); serr != nil {
		n.logf("cluster: local snapshot of replica %q: %v", name, serr)
	}
	n.logf("cluster: installed snapshot of %q from %s (gen %d, journal %d)",
		name, src.ID, meta.Generation, meta.Journal)
	return e, nil
}

// adopt finalizes a handoff: this node becomes the graph's primary. The
// journal mark rebases into the local WAL's LSN space — the adopted copy
// already contains every shipped record, and this node is now the single
// writer — and a snapshot pins the rebased floor durably.
func (n *Node) adopt(name string, e *catalog.Entry) {
	var head uint64
	if l := n.pers.WAL(); l != nil {
		head = l.NextLSN() - 1
	}
	// Finalization is atomic against DropGraph: a name tombstoned while
	// its promote catch-up streamed must stay dropped.
	n.mu.Lock()
	ok := n.adoptLocked(name, e, head)
	n.mu.Unlock()
	if !ok {
		return
	}
	if _, err := n.pers.SnapshotOne(name); err != nil {
		n.logf("cluster: snapshot after adopting %q: %v", name, err)
	}
	n.handoffs.Add(1)
	n.logf("cluster: adopted %q as primary (journal rebased to %d)", name, head)
}

// adoptLocked flips the entry to primary with n.mu held; false when the
// name was tombstoned mid-catch-up (the drop wins).
//
//grblint:locked mu
func (n *Node) adoptLocked(name string, e *catalog.Entry, head uint64) bool {
	if n.tombs[name] {
		return false
	}
	e.SetJournalSeq(head)
	n.pers.ResetJournalFloor(name, head)
	e.SetSourceHead(0)
	e.SetRole(catalog.RolePrimary)
	delete(n.syncs, name)
	return true
}

// dropLocal removes a graph's local copy: catalog entry, durable
// snapshot, journal floors, and sync cursor.
func (n *Node) dropLocal(name, reason string) {
	n.mu.Lock()
	n.dropLocalLocked(name, reason)
	n.mu.Unlock()
}

// dropLocalLocked is dropLocal with n.mu already held (lock order
// cluster → catalog → store allows the nested calls).
//
//grblint:locked mu
func (n *Node) dropLocalLocked(name, reason string) {
	if err := n.cat.Drop(name); err == nil {
		n.logf("cluster: dropped local copy of %q: %s", name, reason)
	}
	if _, err := n.pers.Remove(name); err != nil {
		n.logf("cluster: remove durable copy of %q: %v", name, err)
	}
	delete(n.syncs, name)
}

// fetchStatus polls one peer's status document.
func (n *Node) fetchStatus(ctx context.Context, p NodeInfo) (*statusDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/v1/cluster/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: status from %s: status %d", p.ID, resp.StatusCode)
	}
	var doc statusDoc
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&doc); err != nil {
		return nil, fmt.Errorf("cluster: status from %s: %w", p.ID, err)
	}
	return &doc, nil
}

// fetchTopology pulls a peer's topology document (epoch gossip).
func (n *Node) fetchTopology(ctx context.Context, p NodeInfo) (Topology, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/v1/cluster/topology", nil)
	if err != nil {
		return Topology{}, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return Topology{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return Topology{}, fmt.Errorf("cluster: topology from %s: status %d", p.ID, resp.StatusCode)
	}
	var doc struct {
		Topology
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&doc); err != nil {
		return Topology{}, err
	}
	return doc.Topology, nil
}

// statusSnapshot builds this node's status document (shared by the
// handler and tests).
func (n *Node) statusSnapshot() statusDoc {
	doc := statusDoc{
		Node:  n.self,
		Epoch: n.Epoch(),
		Ready: n.ready.Load(),
	}
	if l := n.pers.WAL(); l != nil {
		doc.WALHead = l.NextLSN() - 1
	}
	for _, name := range n.cat.Names() {
		e, err := n.cat.Get(name)
		if err != nil {
			continue
		}
		doc.Graphs = append(doc.Graphs, graphStatus{
			Name:       name,
			Role:       e.Role().String(),
			Generation: e.Generation(),
			Journal:    e.JournalSeq(),
			Lag:        e.ReplicaLag(),
		})
	}
	return doc
}

// drainClose drains and closes a response body so the HTTP client can
// reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	_ = body.Close()
}
