package cluster

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/leakcheck"
	"lagraph/internal/store"
	"lagraph/internal/wal"
)

// handlerSwap lets a test create the HTTP listener (and learn its URL)
// before the Node that will serve on it exists — and simulate a dead
// node by swapping the handler out.
type handlerSwap struct {
	mu sync.Mutex
	h  http.Handler //grblint:guardedby mu
}

func (s *handlerSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "node down", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testNode is one cluster member a test can boot, kill -9, and reboot
// against the same data directory and URL.
type testNode struct {
	id     string
	dir    string
	swap   *handlerSwap
	srv    *httptest.Server
	top    Topology
	client *http.Client

	alive bool
	cat   *catalog.Catalog
	pers  *store.Persister
	jl    *wal.Log
	n     *Node
}

// boot (re)opens the node's store, WAL, and catalog — exactly what the
// daemon does at startup — and starts its sync loop.
func (tn *testNode) boot(t *testing.T) {
	t.Helper()
	st, err := store.Open(tn.dir)
	if err != nil {
		t.Fatal(err)
	}
	jl, err := wal.Open(filepath.Join(tn.dir, "wal"), wal.Options{NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	pers := store.NewPersister(st, cat)
	pers.AttachWAL(jl)
	if _, err := pers.LoadAll(); err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Self:      tn.id,
		Topology:  tn.top,
		Catalog:   cat,
		Persister: pers,
		Client:    tn.client,
		Poll:      25 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	tn.cat, tn.pers, tn.jl, tn.n = cat, pers, jl, n
	tn.swap.set(n.Handler())
	n.Start(context.Background())
	tn.alive = true
}

// kill simulates an abrupt death: the HTTP surface goes dark and the
// process state is discarded. The WAL close is safe under kill -9
// semantics because every test append ran with NoSync (worst case the
// tail is torn, which the format tolerates).
func (tn *testNode) kill() {
	if !tn.alive {
		return
	}
	tn.alive = false
	tn.swap.set(nil)
	tn.n.Close()
	_ = tn.jl.Close()
}

// newTestCluster builds servers and data directories for the given node
// IDs and boots the subset named in bootIDs with the supplied topology.
func newTestCluster(t *testing.T, ids []string, top func(urls map[string]string) Topology, bootIDs []string) map[string]*testNode {
	t.Helper()
	leakcheck.Check(t)
	client := &http.Client{Timeout: 10 * time.Second}
	t.Cleanup(client.CloseIdleConnections)
	nodes := map[string]*testNode{}
	urls := map[string]string{}
	for _, id := range ids {
		swap := &handlerSwap{}
		srv := httptest.NewServer(swap)
		t.Cleanup(srv.Close)
		nodes[id] = &testNode{id: id, dir: t.TempDir(), swap: swap, srv: srv, client: client}
		urls[id] = srv.URL
	}
	topo := top(urls)
	for _, id := range ids {
		nodes[id].top = topo
	}
	for _, id := range bootIDs {
		nodes[id].boot(t)
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.kill()
		}
	})
	return nodes
}

// flatTopology is the common case: every listed node, R replicas.
func flatTopology(epoch uint64, replicas int, ids []string) func(map[string]string) Topology {
	return func(urls map[string]string) Topology {
		t := Topology{Epoch: epoch, Replicas: replicas, VNodes: 16}
		for _, id := range ids {
			t.Nodes = append(t.Nodes, NodeInfo{ID: id, URL: urls[id]})
		}
		return t
	}
}

// makeGraph builds an empty graph of n vertices.
func makeGraph(t *testing.T, n int, kind lagraph.Kind) *lagraph.Graph {
	t.Helper()
	a, err := grb.NewMatrix[float64](n, n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lagraph.NewGraph(a, kind)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// ingest pushes one edge batch through the primary's write path exactly
// as the service layer does: baseline snapshot before the first
// journaled batch, then journal → apply → advance marks.
func (tn *testNode) ingest(t *testing.T, b store.EdgeBatch) {
	t.Helper()
	if !tn.pers.HasDurable(b.Name) {
		if _, err := tn.pers.SnapshotOne(b.Name); err != nil {
			t.Fatal(err)
		}
	}
	e, err := tn.cat.Get(b.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(func(g *lagraph.Graph) (bool, error) {
		lsn, jerr := tn.pers.JournalEdges(b)
		if jerr != nil {
			return false, jerr
		}
		if aerr := store.ApplyEdgeBatch(g, b); aerr != nil {
			return false, aerr
		}
		e.SetJournalSeq(lsn)
		tn.pers.MarkApplied(b.Name, lsn)
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
}

// graphChecksum serializes the graph and digests the image with FNV-64a:
// two nodes holding the same logical graph must produce identical bytes.
func (tn *testNode) graphChecksum(t *testing.T, name string) uint64 {
	t.Helper()
	e, err := tn.cat.Get(name)
	if err != nil {
		t.Fatalf("%s: %v", tn.id, err)
	}
	var buf bytes.Buffer
	if _, err := e.Snapshot(&buf); err != nil {
		t.Fatalf("%s: snapshot %q: %v", tn.id, name, err)
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// pickName finds a graph name whose ring placement satisfies pred.
func pickName(t *testing.T, ring *Ring, prefix string, pred func(owners []NodeInfo) bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if pred(ring.Place(name)) {
			return name
		}
	}
	t.Fatal("no graph name satisfies the placement predicate")
	return ""
}

// holdsCaughtUp reports whether the node holds name as a caught-up copy
// matching the given generation.
func (tn *testNode) holdsCaughtUp(name string, gen uint64) bool {
	e, err := tn.cat.Get(name)
	if err != nil {
		return false
	}
	return e.ReplicaLag() == 0 && e.Generation() == gen
}

func TestRingPlacementDeterministicAndDistinct(t *testing.T) {
	nodes := []NodeInfo{{ID: "a", URL: "u1"}, {ID: "b", URL: "u2"}, {ID: "c", URL: "u3"}}
	top := Topology{Epoch: 1, Replicas: 1, Nodes: nodes}
	// Same document, shuffled member order: identical placement.
	shuffled := Topology{Epoch: 1, Replicas: 1, Nodes: []NodeInfo{nodes[2], nodes[0], nodes[1]}}
	r1, r2 := NewRing(top), NewRing(shuffled)
	primaries := map[string]int{}
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("graph-%d", i)
		p1, p2 := r1.Place(name), r2.Place(name)
		if len(p1) != 2 || len(p2) != 2 {
			t.Fatalf("placement of %q has %d/%d owners, want 2", name, len(p1), len(p2))
		}
		if p1[0].ID == p1[1].ID {
			t.Fatalf("placement of %q repeats node %s", name, p1[0].ID)
		}
		for k := range p1 {
			if p1[k].ID != p2[k].ID {
				t.Fatalf("placement of %q differs across member orderings: %v vs %v", name, p1, p2)
			}
		}
		primaries[p1[0].ID]++
	}
	// Virtual nodes must spread load: every member owns some share.
	for _, n := range nodes {
		if primaries[n.ID] == 0 {
			t.Fatalf("node %s owns no graphs out of 500 (distribution %v)", n.ID, primaries)
		}
	}
}

func TestTopologyValidateAndEpochRules(t *testing.T) {
	good := Topology{Epoch: 1, Replicas: 1, Nodes: []NodeInfo{{ID: "a", URL: "u"}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Topology{
		{Epoch: 0, Nodes: good.Nodes},
		{Epoch: 1},
		{Epoch: 1, Replicas: -1, Nodes: good.Nodes},
		{Epoch: 1, Nodes: []NodeInfo{{ID: "a", URL: "u"}, {ID: "a", URL: "v"}}},
		{Epoch: 1, Nodes: []NodeInfo{{ID: "", URL: "u"}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("topology %+v validated", bad)
		}
	}
}

// TestClusterReplicatesAndServesReadOnly is the core tentpole test: a
// 3-node cluster, writes at the primary, snapshot+stream replication to
// the replica, read-only enforcement, and checksum identity.
func TestClusterReplicatesAndServesReadOnly(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := newTestCluster(t, ids, flatTopology(1, 1, ids), ids)
	any := nodes[ids[0]]
	ring := NewRing(any.top)
	name := pickName(t, ring, "rep", func(o []NodeInfo) bool { return len(o) == 2 })
	owners := ring.Place(name)
	primary, replica := nodes[owners[0].ID], nodes[owners[1].ID]
	var outsider *testNode
	for _, id := range ids {
		if id != owners[0].ID && id != owners[1].ID {
			outsider = nodes[id]
		}
	}

	if _, err := primary.cat.Add(name, makeGraph(t, 64, lagraph.Directed)); err != nil {
		t.Fatal(err)
	}
	primary.ingest(t, store.EdgeBatch{Name: name, Ops: []store.EdgeOp{{Src: 0, Dst: 1, Weight: 0.5}}})
	pe, err := primary.cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the baseline snapshot to land on the replica, THEN keep
	// writing: the rest of the history must arrive by WAL stream.
	waitFor(t, 15*time.Second, "baseline install", func() bool {
		return replica.holdsCaughtUp(name, pe.Generation())
	})
	for i := 1; i < 20; i++ {
		primary.ingest(t, store.EdgeBatch{Name: name, Ops: []store.EdgeOp{
			{Src: i, Dst: i + 1, Weight: float64(i) + 0.5},
			{Src: i + 1, Dst: (i * 7) % 64, Weight: 1},
		}})
	}
	gen := pe.Generation()

	waitFor(t, 15*time.Second, "replica catch-up", func() bool {
		return replica.holdsCaughtUp(name, gen)
	})
	re, err := replica.cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	if re.Role() != catalog.RoleReplica {
		t.Fatalf("replica entry role = %v", re.Role())
	}
	// Read-only: direct mutation paths must refuse; only Replicate works.
	if err := re.Ingest(func(*lagraph.Graph) (bool, error) { return true, nil }); err == nil {
		t.Fatal("Ingest on a replica entry succeeded")
	}
	if err := re.Update(func(*lagraph.Graph) error { return nil }); err == nil {
		t.Fatal("Update on a replica entry succeeded")
	}
	// Checksum identity: the replicated copy is bitwise the primary's.
	if pc, rc := primary.graphChecksum(t, name), replica.graphChecksum(t, name); pc != rc {
		t.Fatalf("checksum mismatch: primary %016x, replica %016x", pc, rc)
	}
	// Placement is exclusive: the third node must not hold the graph.
	waitFor(t, 5*time.Second, "all nodes ready", func() bool {
		for _, tn := range nodes {
			if !tn.n.Ready() {
				return false
			}
		}
		return true
	})
	if _, err := outsider.cat.Get(name); err == nil {
		t.Fatalf("non-owner %s holds %q", outsider.id, name)
	}
	// Lag metrics converged to zero.
	if st := replica.n.Stats(); st.MaxLagLSN != 0 || st.FetchedRecords == 0 {
		t.Fatalf("replica stats = %+v", st)
	}
	if st := primary.n.Stats(); st.ShippedRecords == 0 || st.ShippedSnapshots == 0 {
		t.Fatalf("primary shipped nothing: %+v", st)
	}
}

// TestReplicaKillRecoverResumesStream kills a replica mid-replication,
// writes more at the primary, reboots the replica from its data dir, and
// requires it to catch up by local snapshot + WAL-stream resume — not by
// re-fetching the baseline snapshot.
func TestReplicaKillRecoverResumesStream(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := newTestCluster(t, ids, flatTopology(1, 1, ids), ids)
	ring := NewRing(nodes[ids[0]].top)
	name := pickName(t, ring, "recover", func(o []NodeInfo) bool { return len(o) == 2 })
	owners := ring.Place(name)
	primary, replica := nodes[owners[0].ID], nodes[owners[1].ID]

	if _, err := primary.cat.Add(name, makeGraph(t, 64, lagraph.Directed)); err != nil {
		t.Fatal(err)
	}
	batch := func(i int) store.EdgeBatch {
		return store.EdgeBatch{Name: name, Ops: []store.EdgeOp{
			{Src: i % 64, Dst: (i*13 + 1) % 64, Weight: float64(i)},
		}}
	}
	for i := 0; i < 10; i++ {
		primary.ingest(t, batch(i))
	}
	pe, err := primary.cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "initial catch-up", func() bool {
		return replica.holdsCaughtUp(name, pe.Generation())
	})

	// Kill the replica, keep writing through the primary.
	replica.kill()
	for i := 10; i < 30; i++ {
		primary.ingest(t, batch(i))
	}

	// Reboot from the same data directory: recovery must resume the
	// stream from the locally snapshotted replication position.
	replica.boot(t)
	waitFor(t, 15*time.Second, "post-restart catch-up", func() bool {
		return replica.holdsCaughtUp(name, pe.Generation())
	})
	if pc, rc := primary.graphChecksum(t, name), replica.graphChecksum(t, name); pc != rc {
		t.Fatalf("post-recovery checksum mismatch: primary %016x, replica %016x", pc, rc)
	}
	st := replica.n.Stats()
	if st.FetchedSnapshots != 0 {
		t.Fatalf("restart re-fetched %d snapshots; want stream resume from the local floor", st.FetchedSnapshots)
	}
	if st.FetchedRecords == 0 {
		t.Fatal("restart streamed no records")
	}
	if st.MaxLagLSN != 0 {
		t.Fatalf("lag did not converge: %+v", st)
	}
}

// TestRebalanceHandoffOnEpochBump moves a graph to a freshly added node
// via a topology epoch bump: snapshot-first re-ship to the new owner,
// reads served by the old owner until the handoff completes, epoch
// gossip from a single POST, and checksum identity afterwards.
func TestRebalanceHandoffOnEpochBump(t *testing.T) {
	ids := []string{"a", "b", "c"}
	// Epoch 1: {a, b} only. c's server exists (its URL is in epoch 2)
	// but the node boots later, already holding epoch 2.
	nodes := newTestCluster(t, ids, flatTopology(1, 1, []string{"a", "b"}), []string{"a", "b"})
	urls := map[string]string{}
	for id, tn := range nodes {
		urls[id] = tn.srv.URL
	}
	epoch2 := flatTopology(2, 1, ids)(urls)
	ring2 := NewRing(epoch2)
	// A graph owned by {a,b} at epoch 1 whose epoch-2 primary is c.
	name := pickName(t, ring2, "move", func(o []NodeInfo) bool { return o[0].ID == "c" })

	a, b, c := nodes["a"], nodes["b"], nodes["c"]
	ring1 := NewRing(a.top)
	old := nodes[ring1.Place(name)[0].ID]
	if _, err := old.cat.Add(name, makeGraph(t, 48, lagraph.Directed)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		old.ingest(t, store.EdgeBatch{Name: name, Ops: []store.EdgeOp{
			{Src: i % 48, Dst: (i*5 + 2) % 48, Weight: float64(i) + 0.25},
		}})
	}
	oe, err := old.cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	gen := oe.Generation()
	oldSum := old.graphChecksum(t, name)
	waitFor(t, 15*time.Second, "epoch-1 replication", func() bool {
		for _, id := range []string{"a", "b"} {
			e, gerr := nodes[id].cat.Get(name)
			if gerr != nil || e.Generation() != gen || e.ReplicaLag() != 0 {
				return false
			}
		}
		return true
	})

	// Boot c on epoch 2 and bump {a,b} with one POST (gossip spreads it).
	c.top = epoch2
	c.boot(t)
	body, _ := tjson(epoch2)
	resp, err := a.client.Post(a.srv.URL+"/v1/cluster/topology", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topology POST: status %d", resp.StatusCode)
	}
	// A stale re-POST must be refused.
	stale, _ := tjson(flatTopology(1, 1, []string{"a", "b"})(urls))
	resp, err = a.client.Post(a.srv.URL+"/v1/cluster/topology", "application/json", bytes.NewReader(stale))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale topology POST: status %d, want 409", resp.StatusCode)
	}

	waitFor(t, 15*time.Second, "epoch gossip", func() bool {
		return a.n.Epoch() == 2 && b.n.Epoch() == 2 && c.n.Epoch() == 2
	})
	// The new owner must adopt the graph as primary and every placement
	// member must converge on the same bytes.
	waitFor(t, 20*time.Second, "handoff to c", func() bool {
		e, gerr := c.cat.Get(name)
		return gerr == nil && e.Role() == catalog.RolePrimary
	})
	if c.n.Stats().Handoffs == 0 {
		t.Fatal("new primary reports no handoffs")
	}
	owners := ring2.Place(name)
	waitFor(t, 20*time.Second, "placement convergence", func() bool {
		for _, tn := range nodes {
			e, gerr := tn.cat.Get(name)
			inPlacement := false
			for _, o := range owners {
				if o.ID == tn.id {
					inPlacement = true
				}
			}
			if inPlacement != (gerr == nil) {
				return false
			}
			if gerr == nil && e.ReplicaLag() != 0 {
				return false
			}
		}
		return true
	})
	if got := c.graphChecksum(t, name); got != oldSum {
		t.Fatalf("moved graph checksum %016x, want %016x", got, oldSum)
	}
	for _, o := range owners[1:] {
		if got := nodes[o.ID].graphChecksum(t, name); got != oldSum {
			t.Fatalf("replica %s checksum %016x, want %016x", o.ID, got, oldSum)
		}
	}
}

// TestDropPropagates drops a graph at its primary and requires replicas
// to discard their copies.
func TestDropPropagates(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := newTestCluster(t, ids, flatTopology(1, 1, ids), ids)
	ring := NewRing(nodes[ids[0]].top)
	name := pickName(t, ring, "drop", func(o []NodeInfo) bool { return len(o) == 2 })
	owners := ring.Place(name)
	primary, replica := nodes[owners[0].ID], nodes[owners[1].ID]

	if _, err := primary.cat.Add(name, makeGraph(t, 16, lagraph.Directed)); err != nil {
		t.Fatal(err)
	}
	primary.ingest(t, store.EdgeBatch{Name: name, Ops: []store.EdgeOp{{Src: 0, Dst: 1, Weight: 1}}})
	pe, err := primary.cat.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "replication", func() bool {
		return replica.holdsCaughtUp(name, pe.Generation())
	})

	// Drop exactly as the service layer does: DropGraph removes the
	// catalog entry and durable copy and plants the tombstone atomically,
	// so the sync loop cannot re-adopt the name from replicas that have
	// not yet observed the drop.
	dropErr, removed, removeErr := primary.n.DropGraph(name)
	if dropErr != nil || !removed || removeErr != nil {
		t.Fatalf("DropGraph: drop=%v removed=%v remove=%v", dropErr, removed, removeErr)
	}
	waitFor(t, 15*time.Second, "drop propagation", func() bool {
		_, gerr := replica.cat.Get(name)
		return gerr != nil
	})
}

// TestSingleNodeClusterIsReadyImmediately: a one-member topology has no
// peers to wait for.
func TestSingleNodeClusterIsReadyImmediately(t *testing.T) {
	ids := []string{"solo"}
	nodes := newTestCluster(t, ids, flatTopology(1, 1, ids), ids)
	waitFor(t, 5*time.Second, "solo readiness", func() bool {
		return nodes["solo"].n.Ready()
	})
	role, primary := nodes["solo"].n.RoleOf("anything")
	if role != catalog.RolePrimary || primary.ID != "solo" {
		t.Fatalf("solo placement = %v on %s", role, primary.ID)
	}
}

// tjson marshals a topology for the POST endpoint.
func tjson(t Topology) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(fmt.Sprintf(`{"epoch":%d,"replicas":%d,"vnodes":%d,"nodes":[`, t.Epoch, t.Replicas, t.VNodes))
	for i, n := range t.Nodes {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(fmt.Sprintf(`{"id":%q,"url":%q}`, n.ID, n.URL))
	}
	buf.WriteString("]}")
	return buf.Bytes(), nil
}
