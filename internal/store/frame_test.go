package store

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
)

// testingAllocBytes reads the cumulative heap allocation counter; deltas
// across a decode bound how much a hostile input made the decoder
// allocate.
func testingAllocBytes() int64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.TotalAlloc)
}

func mustFrame(t testing.TB, meta Meta, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, meta, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	meta := Meta{Name: "g", Kind: "directed", NRows: 10, NCols: 10, NVals: 37, Generation: 4}
	payload := []byte("the payload bytes")
	frame := mustFrame(t, meta, payload)

	got, p, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("meta round-trip: %+v != %+v", got, meta)
	}
	if !bytes.Equal(p, payload) {
		t.Fatalf("payload round-trip: %q != %q", p, payload)
	}

	// Empty payload is legal.
	frame = mustFrame(t, Meta{Name: "empty", Kind: "x"}, nil)
	if _, p, err = ReadFrame(bytes.NewReader(frame)); err != nil || len(p) != 0 {
		t.Fatalf("empty payload: %v, %d bytes", err, len(p))
	}
}

// TestFrameEveryBitFlipDetected is the integrity contract: the checksum
// covers every byte before the trailer and the trailer protects itself by
// disagreeing with the recomputation, so flipping any single bit anywhere
// in the frame must fail with ErrCorrupt.
func TestFrameEveryBitFlipDetected(t *testing.T) {
	frame := mustFrame(t, Meta{Name: "g", Kind: "undirected", NVals: 3, Generation: 9}, []byte("payload-payload"))
	for pos := 0; pos < len(frame); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), frame...)
			mut[pos] ^= 1 << bit
			_, _, err := ReadFrame(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("flip byte %d bit %d: accepted", pos, bit)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: error %v does not wrap ErrCorrupt", pos, bit, err)
			}
		}
	}
}

// TestFrameEveryTruncationDetected cuts the frame at every length.
func TestFrameEveryTruncationDetected(t *testing.T) {
	frame := mustFrame(t, Meta{Name: "g", Kind: "directed"}, []byte("0123456789"))
	for n := 0; n < len(frame); n++ {
		if _, _, err := ReadFrame(bytes.NewReader(frame[:n])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d: %v", n, err)
		}
	}
}

func TestFrameHostileHeaders(t *testing.T) {
	base := mustFrame(t, Meta{Name: "g", Kind: "k"}, []byte("p"))
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future version", func(b []byte) []byte { b[8] = 99; return b }},
		{"meta length over cap", func(b []byte) []byte {
			b[12], b[13], b[14], b[15] = 0xff, 0xff, 0xff, 0x7f
			return b
		}},
		{"payload length into exabytes", func(b []byte) []byte {
			b[16], b[23] = 0xff, 0x7f
			return b
		}},
	}
	for _, tc := range cases {
		mut := tc.mut(append([]byte(nil), base...))
		if _, _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
	// Arbitrary non-frame bytes.
	if _, _, err := ReadFrame(strings.NewReader("not a frame at all, definitely")); !errors.Is(err, ErrCorrupt) {
		t.Error("garbage accepted")
	}
	if _, _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Error("empty input accepted")
	}
}

// TestFrameLyingLengthDoesNotAllocate: a 24-byte header declaring an
// exabyte payload must fail from lack of data, not attempt the
// allocation. The alloc bound is enforced by reading through a reader
// that yields nothing after the header.
func TestFrameLyingLengthDoesNotAllocate(t *testing.T) {
	frame := mustFrame(t, Meta{Name: "g"}, []byte("p"))
	hdr := append([]byte(nil), frame[:frameHeaderLen]...)
	// Declare a payload of 2^60 bytes.
	hdr[16], hdr[17], hdr[18], hdr[19] = 0, 0, 0, 0
	hdr[23] = 0x10
	var before, after int64
	before = testingAllocBytes()
	_, _, err := ReadFrame(io.MultiReader(bytes.NewReader(hdr), bytes.NewReader(frame[frameHeaderLen:])))
	after = testingAllocBytes()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lying length: %v", err)
	}
	if grew := after - before; grew > 16<<20 {
		t.Fatalf("decoder allocated %d bytes for a declared-exabyte payload", grew)
	}
}

func TestEscapeName(t *testing.T) {
	cases := map[string]string{
		"simple":       "simple",
		"with.dots":    "with.dots",
		".hidden":      "_2ehidden",
		"..":           "_2e.",
		"a/b":          "a_2fb",
		"a_2fb":        "a_5f2fb", // escaping the escape char prevents collisions
		"":             "_",
		"UPPER-low_9":  "UPPER-low_5f9",
		"sp ace\x00nl": "sp_20ace_00nl",
	}
	seen := map[string]string{}
	for in, want := range cases {
		got := escapeName(in)
		if got != want {
			t.Errorf("escapeName(%q) = %q, want %q", in, got, want)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("collision: %q and %q both escape to %q", prev, in, got)
		}
		seen[got] = in
	}
}
