package store

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lagraph/internal/catalog"
	"lagraph/internal/gen"
	"lagraph/internal/lagraph"
	"lagraph/internal/leakcheck"
)

// testGraph builds a deterministic undirected power-law graph.
func testGraph(t testing.TB, scale int) *lagraph.Graph {
	t.Helper()
	n := 1 << scale
	e := gen.PowerLaw(n, 8*n, 1.8, gen.Config{Seed: 7, Undirected: true, NoSelfLoops: true})
	g, err := lagraph.NewGraph(e.Matrix(), lagraph.Undirected)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// graphBytes serializes a graph the way Entry.Snapshot does.
func graphBytes(t testing.TB, g *lagraph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := lagraph.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 5)
	payload := graphBytes(t, g)
	meta := Meta{Name: "g", Kind: "undirected", NRows: 32, NCols: 32, NVals: int64(g.NEdges()), Generation: 3}
	if written, err := st.Save(meta, payload); err != nil || !written {
		t.Fatalf("save: written=%v err=%v", written, err)
	}
	gotMeta, gotPayload, err := st.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta != meta {
		t.Fatalf("meta: %+v != %+v", gotMeta, meta)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload differs")
	}
	g2, err := lagraph.ReadGraph(bytes.NewReader(gotPayload))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.NEdges() != g.NEdges() || g2.Kind != g.Kind {
		t.Fatalf("decoded graph differs: %d/%d vs %d/%d", g2.N(), g2.NEdges(), g.N(), g.NEdges())
	}
	if _, _, err := st.Load("missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing load: %v", err)
	}
	if s := st.Stats(); s.Graphs != 1 || s.Snapshots != 1 || s.Loads != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestStoreReopenSeesManifest proves the manifest survives a clean
// process boundary: a second Open on the same directory serves the same
// bytes.
func TestStoreReopenSeesManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := graphBytes(t, testGraph(t, 4))
	if _, err := st.Save(Meta{Name: "alpha", Kind: "undirected", Generation: 1}, payload); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, got, err := st2.Load("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 || !bytes.Equal(got, payload) {
		t.Fatal("reopen lost the snapshot")
	}
}

// TestCrashMidWriteKeepsPreviousGood simulates every interleaving a
// kill -9 can leave behind and proves the previously good copy survives:
//
//  1. crash before the snapshot rename: a stray temp file, manifest
//     untouched;
//  2. crash after the snapshot rename but before the manifest rename: a
//     newer complete snapshot exists, but the manifest still names the
//     old one — readers keep the old consistent copy;
//  3. crash mid-manifest-write: a stray manifest temp file, the real
//     MANIFEST intact.
func TestCrashMidWriteKeepsPreviousGood(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := graphBytes(t, testGraph(t, 4))
	if _, err := st.Save(Meta{Name: "g", Kind: "undirected", Generation: 1}, good); err != nil {
		t.Fatal(err)
	}

	// State 1: torn temp file from a crash mid-write.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-crash1"), []byte("torn half-written frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	// State 2: a complete newer snapshot the manifest never adopted.
	newer := graphBytes(t, testGraph(t, 5))
	var fbuf bytes.Buffer
	if err := WriteFrame(&fbuf, Meta{Name: "g", Kind: "undirected", Generation: 2}, newer); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapFileName("g", 2)), fbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// State 3: torn manifest temp file.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-manifest"), []byte("torn manifest"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, payload, err := st2.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 || !bytes.Equal(payload, good) {
		t.Fatalf("recovery picked the wrong copy: generation %d", meta.Generation)
	}
}

// TestCorruptManifestRescues: a destroyed MANIFEST falls back to the
// directory rescan, which adopts the highest-generation valid snapshot
// per graph and quarantines damaged ones.
func TestCorruptManifestRescues(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gold := graphBytes(t, testGraph(t, 4))
	if _, err := st.Save(Meta{Name: "keep", Kind: "undirected", Generation: 5}, gold); err != nil {
		t.Fatal(err)
	}
	// An older generation of the same graph lingering on disk (crash
	// between manifest write and old-file delete).
	var older bytes.Buffer
	if err := WriteFrame(&older, Meta{Name: "keep", Kind: "undirected", Generation: 2}, graphBytes(t, testGraph(t, 3))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapFileName("keep", 2)), older.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// A damaged snapshot of another graph.
	if err := os.WriteFile(filepath.Join(dir, snapFileName("broken", 1)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Destroy the manifest.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	meta, payload, err := st2.Load("keep")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 5 || !bytes.Equal(payload, gold) {
		t.Fatalf("rescan picked generation %d, want 5", meta.Generation)
	}
	if _, _, err := st2.Load("broken"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("broken snapshot survived rescan: %v", err)
	}
	// The damaged file and manifest are quarantined, not deleted.
	if _, err := os.Stat(filepath.Join(dir, snapFileName("broken", 1)+".corrupt")); err != nil {
		t.Error("damaged snapshot not quarantined")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".corrupt")); err != nil {
		t.Error("damaged manifest not quarantined")
	}
	if st2.Stats().Quarantined < 2 {
		t.Errorf("quarantine counter = %d, want >= 2", st2.Stats().Quarantined)
	}
}

// TestSaveGenerationGuard: a Save carrying an older generation than the
// live manifest entry must not roll the graph back.
func TestSaveGenerationGuard(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	newPayload := graphBytes(t, testGraph(t, 5))
	if _, err := st.Save(Meta{Name: "g", Kind: "undirected", Generation: 7}, newPayload); err != nil {
		t.Fatal(err)
	}
	written, err := st.Save(Meta{Name: "g", Kind: "undirected", Generation: 3}, graphBytes(t, testGraph(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if written {
		t.Fatal("stale save reported written")
	}
	meta, payload, err := st.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 7 || !bytes.Equal(payload, newPayload) {
		t.Fatal("stale save rolled the snapshot back")
	}
}

// TestPersisterLifecycle drives the full dirty-tracking loop: add →
// dirty → flush → clean → mutate → dirty again → flush → recover into a
// fresh catalog.
func TestPersisterLifecycle(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	p := NewPersister(st, cat)

	if _, err := cat.Add("a", testGraph(t, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Add("b", testGraph(t, 4)); err != nil {
		t.Fatal(err)
	}
	if d := p.Dirty(); len(d) != 2 {
		t.Fatalf("dirty after add = %v, want [a b]", d)
	}
	res, err := p.FlushDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshotted) != 2 || res.Clean != 0 {
		t.Fatalf("flush: %+v", res)
	}
	if d := p.Dirty(); len(d) != 0 {
		t.Fatalf("dirty after flush = %v, want none", d)
	}
	res, err = p.FlushDirty()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshotted) != 0 || res.Clean != 2 {
		t.Fatalf("second flush should be a no-op: %+v", res)
	}

	// Mutate one graph: only it goes dirty, and its snapshot carries the
	// bumped generation.
	e, err := cat.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Update(func(g *lagraph.Graph) error {
		if err := g.A.SetElement(0, 1, 1); err != nil {
			return err
		}
		return g.A.SetElement(1, 0, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if d := p.Dirty(); len(d) != 1 || d[0] != "a" {
		t.Fatalf("dirty after update = %v, want [a]", d)
	}
	sr, err := p.SnapshotOne("a")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Generation != 1 || !sr.Written || sr.Bytes == 0 {
		t.Fatalf("snapshot result: %+v", sr)
	}

	// Recover into a fresh catalog: both graphs come back with identical
	// edge counts, marked clean.
	cat2 := catalog.New()
	p2 := NewPersister(st, cat2)
	events, err := p2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("recovery events: %+v", events)
	}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("recovery of %q failed: %v", ev.Name, ev.Err)
		}
	}
	ea, err := cat2.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	eaProps := ea.Properties()
	if eaProps.NEdges != e.Properties().NEdges {
		t.Fatalf("recovered edge count %d != %d", eaProps.NEdges, e.Properties().NEdges)
	}
	if d := p2.Dirty(); len(d) != 0 {
		t.Fatalf("freshly recovered graphs dirty: %v", d)
	}

	// Remove mirrors a catalog drop and reports the durable copy existed.
	if removed, err := p2.Remove("b"); err != nil || !removed {
		t.Fatalf("remove: removed=%v err=%v", removed, err)
	}
	if _, _, err := st.Load("b"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("removed graph still stored: %v", err)
	}
}

// TestLoadAllQuarantinesBadSnapshot: one damaged file must not take down
// recovery of its neighbours — the bad one is quarantined and reported.
func TestLoadAllQuarantinesBadSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	p := NewPersister(st, cat)
	for _, n := range []string{"good", "doomed"} {
		if _, err := cat.Add(n, testGraph(t, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in doomed's snapshot file.
	ent, ok := st.Generation("doomed")
	if !ok {
		t.Fatal("doomed not in manifest")
	}
	path := filepath.Join(dir, snapFileName("doomed", ent))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cat2 := catalog.New()
	p2 := NewPersister(Must(Open(dir)), cat2)
	events, err := p2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	var goodOK, doomedQuarantined bool
	for _, ev := range events {
		switch ev.Name {
		case "good":
			goodOK = ev.Err == nil
		case "doomed":
			doomedQuarantined = ev.Err != nil && errors.Is(ev.Err, ErrCorrupt)
		}
	}
	if !goodOK || !doomedQuarantined {
		t.Fatalf("recovery events: %+v", events)
	}
	if _, err := cat2.Get("good"); err != nil {
		t.Fatal("good graph not recovered")
	}
	if _, err := cat2.Get("doomed"); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatal("doomed graph resurrected from corrupt bytes")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Error("doomed snapshot not quarantined to *.corrupt")
	}
	// The quarantine is durable: a later boot does not retry the bad file.
	p3 := NewPersister(Must(Open(dir)), catalog.New())
	events, err = p3.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "good" {
		t.Fatalf("post-quarantine boot events: %+v", events)
	}
}

// TestRecoverySeedsGenerationsAcrossRestart is the regression test for
// the silent post-restart data-loss bug: in-memory generations restart at
// zero each process life, so a Save guard comparing them against manifest
// generations persisted by the previous life used to drop every
// post-recovery snapshot whose (fresh, small) generation trailed the old
// (large) one — and a crash then rolled the graph back. Recovery now
// seeds catalog generations from the snapshot metadata, and the store's
// guard is scoped to one boot epoch.
func TestRecoverySeedsGenerationsAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	// Life 1: add, mutate three times (generation 3), flush.
	cat1 := catalog.New()
	p1 := NewPersister(Must(Open(dir)), cat1)
	if _, err := cat1.Add("g", testGraph(t, 4)); err != nil {
		t.Fatal(err)
	}
	e1, _ := cat1.Get("g")
	for i := 0; i < 3; i++ {
		if err := e1.Update(func(g *lagraph.Graph) error {
			return g.A.SetElement(0, i+1, float64(i+1))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p1.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if gen, ok := p1.Store().Generation("g"); !ok || gen != 3 {
		t.Fatalf("manifest generation = %d,%v, want 3", gen, ok)
	}

	// Life 2: recover, replace the graph's contents, snapshot.
	cat2 := catalog.New()
	p2 := NewPersister(Must(Open(dir)), cat2)
	if _, err := p2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	e2, err := cat2.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if gen := e2.Generation(); gen != 3 {
		t.Fatalf("recovered generation = %d, want 3 (seeded from snapshot)", gen)
	}
	replacement := testGraph(t, 5)
	wantEdges := replacement.NEdges()
	if _, err := cat2.Replace("g", replacement); err != nil {
		t.Fatal(err)
	}
	if d := p2.Dirty(); len(d) != 1 || d[0] != "g" {
		t.Fatalf("dirty after replace = %v, want [g]", d)
	}
	sr, err := p2.SnapshotOne("g")
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Written {
		t.Fatalf("post-recovery snapshot silently dropped: %+v", sr)
	}

	// Life 3: the replacement — not the pre-restart contents — recovers.
	cat3 := catalog.New()
	p3 := NewPersister(Must(Open(dir)), cat3)
	if _, err := p3.LoadAll(); err != nil {
		t.Fatal(err)
	}
	e3, err := cat3.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if got := e3.Properties().NEdges; got != wantEdges {
		t.Fatalf("recovered %d edges, want the replacement's %d — graph rolled back across restart", got, wantEdges)
	}
}

// TestSaveEpochsCrossRestart pins the store-level contract behind the fix
// above: the generation guard applies only between saves of the same boot
// epoch, so a fresh process whose generations restarted low can still
// overwrite a high-generation entry persisted by a previous life.
func TestSaveEpochsCrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", st.Epoch())
	}
	if _, err := st.Save(Meta{Name: "g", Kind: "undirected", Generation: 57}, graphBytes(t, testGraph(t, 4))); err != nil {
		t.Fatal(err)
	}
	// Same life: the guard still blocks stale generations.
	if written, err := st.Save(Meta{Name: "g", Kind: "undirected", Generation: 3}, graphBytes(t, testGraph(t, 3))); err != nil || written {
		t.Fatalf("same-epoch stale save: written=%v err=%v", written, err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Epoch() != 2 {
		t.Fatalf("second epoch = %d, want 2", st2.Epoch())
	}
	fresh := graphBytes(t, testGraph(t, 5))
	written, err := st2.Save(Meta{Name: "g", Kind: "undirected", Generation: 1}, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !written {
		t.Fatal("cross-epoch save blocked by the previous life's generation")
	}
	meta, payload, err := st2.Load("g")
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 1 || !bytes.Equal(payload, fresh) {
		t.Fatalf("live snapshot is generation %d, want the new life's 1", meta.Generation)
	}
}

// TestDropDuringSnapshotDoesNotResurrect: a Remove landing between a
// snapshot's serialization and its store commit must veto the commit —
// otherwise the dropped graph's snapshot re-enters the manifest and the
// graph resurrects on the next boot.
func TestDropDuringSnapshotDoesNotResurrect(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	st := Must(Open(dir))
	cat := catalog.New()
	p := NewPersister(st, cat)
	if _, err := cat.Add("g", testGraph(t, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	// Dirty the graph so the snapshot below has something to write.
	e, _ := cat.Get("g")
	if err := e.Update(func(g *lagraph.Graph) error {
		return g.A.SetElement(0, 1, 1)
	}); err != nil {
		t.Fatal(err)
	}
	// The drop lands after serialization, before the store commit.
	p.afterSerialize = func(name string) {
		p.afterSerialize = nil
		if err := cat.Drop(name); err != nil {
			t.Errorf("drop: %v", err)
		}
		if _, err := p.Remove(name); err != nil {
			t.Errorf("remove: %v", err)
		}
	}
	sr, err := p.SnapshotOne("g")
	if err != nil {
		t.Fatal(err)
	}
	if sr.Written {
		t.Fatalf("vetoed snapshot reported written: %+v", sr)
	}
	if names := st.Names(); len(names) != 0 {
		t.Fatalf("dropped graph re-entered the manifest: %v", names)
	}
	// No stale dirty-tracking state either: a re-add of the same name is
	// dirty and flushable as if the name were brand new.
	if _, err := cat.Add("g", testGraph(t, 3)); err != nil {
		t.Fatal(err)
	}
	if d := p.Dirty(); len(d) != 1 || d[0] != "g" {
		t.Fatalf("re-added graph not dirty: %v", d)
	}
	sr, err = p.SnapshotOne("g")
	if err != nil || !sr.Written {
		t.Fatalf("re-added graph snapshot: %+v, %v", sr, err)
	}
	events, err := NewPersister(Must(Open(dir)), catalog.New()).LoadAll()
	if err != nil || len(events) != 1 || events[0].Err != nil {
		t.Fatalf("recovery after drop race: %+v, %v", events, err)
	}
}

// TestLoadAllKeepsFileOnNonCorruptError: only corruption quarantines. A
// decode callback failing for any other reason (catalog conflict,
// transient resource trouble) must leave the valid durable copy and its
// manifest entry untouched, so a later boot can still recover it.
func TestLoadAllKeepsFileOnNonCorruptError(t *testing.T) {
	dir := t.TempDir()
	st := Must(Open(dir))
	payload := graphBytes(t, testGraph(t, 4))
	if _, err := st.Save(Meta{Name: "g", Kind: "undirected", Generation: 1}, payload); err != nil {
		t.Fatal(err)
	}
	transient := errors.New("no room in the catalog today")
	events, err := st.LoadAll(func(Meta, []byte) error { return transient })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || !errors.Is(events[0].Err, transient) || events[0].Quarantined {
		t.Fatalf("events: %+v", events)
	}
	if _, err := os.Stat(filepath.Join(dir, snapFileName("g", 1))); err != nil {
		t.Fatal("valid snapshot destroyed over a non-corruption error")
	}
	if _, ok := st.Generation("g"); !ok {
		t.Fatal("manifest entry dropped over a non-corruption error")
	}
	// The next attempt (here: a permissive callback) recovers normally.
	events, err = st.LoadAll(func(Meta, []byte) error { return nil })
	if err != nil || len(events) != 1 || events[0].Err != nil {
		t.Fatalf("retry recovery: %+v, %v", events, err)
	}
}

// TestDirtyUnlocksBeforeCatalogScan is the regression test for the
// Dirty() restructure: the saved-generation map is copied under p.mu and
// the catalog consulted with no persister lock held (the repo-wide lock
// order is catalog→store; grblint's lock-discipline check forbids the
// inverse). It pins classification across the save/update/remove
// transitions and then hammers Dirty/FlushDirty against a concurrent
// catalog writer — under -race, the shape that used to hold p.mu across
// catalog calls.
func TestDirtyUnlocksBeforeCatalogScan(t *testing.T) {
	leakcheck.Check(t)
	st := Must(Open(t.TempDir()))
	cat := catalog.New()
	p := NewPersister(st, cat)

	if _, err := cat.Add("a", testGraph(t, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Add("b", testGraph(t, 4)); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(p.Dirty(), ","); got != "a,b" {
		t.Fatalf("fresh graphs should be dirty: %q", got)
	}
	if _, err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	if got := p.Dirty(); len(got) != 0 {
		t.Fatalf("flushed graphs still dirty: %v", got)
	}
	e := Must(cat.Get("a"))
	if err := e.Update(func(g *lagraph.Graph) error {
		return g.A.SetElement(0, 1, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(p.Dirty(), ","); got != "a" {
		t.Fatalf("after update, dirty = %q, want \"a\"", got)
	}

	// Concurrent add/drop churn while the persister classifies and
	// flushes: correctness here is "no deadlock, no race, no error" — a
	// graph dropped mid-scan is re-classified on the next sweep.
	churn := testGraph(t, 3)
	stop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("tmp%d", i%4)
			if _, err := cat.Add(name, churn); err == nil {
				_ = cat.Drop(name)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		_ = p.Dirty()
		if _, err := p.FlushDirty(); err != nil {
			t.Errorf("flush during churn: %v", err)
			break
		}
	}
	close(stop)
	<-churnDone
}

// Must unwraps an (value, error) pair in test plumbing.
func Must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// TestStoreNameEscaping: hostile graph names stay inside the data
// directory and round-trip through save/load.
func TestStoreNameEscaping(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hostile := []string{"../escape", "a/b/c", ".hidden", "", "name with spaces", "_5f"}
	payload := graphBytes(t, testGraph(t, 3))
	for i, name := range hostile {
		if _, err := st.Save(Meta{Name: name, Kind: "undirected", Generation: uint64(i)}, payload); err != nil {
			t.Fatalf("save %q: %v", name, err)
		}
	}
	for _, name := range hostile {
		if _, _, err := st.Load(name); err != nil {
			t.Fatalf("load %q: %v", name, err)
		}
	}
	// Nothing escaped the directory.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.Contains(ent.Name(), "..") || strings.Contains(ent.Name(), "/") {
			t.Fatalf("unsafe file name %q", ent.Name())
		}
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape")); err == nil {
		t.Fatal("path traversal escaped the data directory")
	}
}
