package store

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"lagraph/internal/catalog"
	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
	"lagraph/internal/wal"
)

func TestEdgeBatchCodecRoundTrip(t *testing.T) {
	for _, b := range []EdgeBatch{
		{Name: "g", Dup: "", Ops: []EdgeOp{{Src: 0, Dst: 1, Weight: 2.5}}},
		{Name: "weird name / with bytes", Dup: "sum", Ops: []EdgeOp{
			{Src: 10, Dst: 20, Weight: -1},
			{Remove: true, Src: 3, Dst: 4},
			{Src: 0, Dst: 0, Weight: math.Inf(1)},
		}},
		{Name: "m", Dup: "min", Ops: []EdgeOp{{Src: 1 << 20, Dst: 1, Weight: 0}}},
		{Name: "x", Dup: "max", Ops: []EdgeOp{{Remove: true, Src: 0, Dst: 0}}},
	} {
		enc, err := b.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", b, err)
		}
		got, err := DecodeEdgeBatch(enc)
		if err != nil {
			t.Fatalf("decode %+v: %v", b, err)
		}
		want := b
		if want.Dup == "" {
			want.Dup = "last" // canonical name on the wire
		}
		if got.Name != want.Name || got.Dup != want.Dup || len(got.Ops) != len(want.Ops) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		for k := range got.Ops {
			if got.Ops[k] != want.Ops[k] {
				t.Fatalf("op %d: got %+v want %+v", k, got.Ops[k], want.Ops[k])
			}
		}
	}
}

func TestEdgeBatchEncodeRejectsBadInput(t *testing.T) {
	if _, err := (EdgeBatch{Name: "", Ops: []EdgeOp{{}}}).Encode(); !errors.Is(err, lagraph.ErrBadArgument) {
		t.Fatalf("empty name: %v", err)
	}
	if _, err := (EdgeBatch{Name: "g"}).Encode(); !errors.Is(err, lagraph.ErrBadArgument) {
		t.Fatalf("empty ops: %v", err)
	}
	if _, err := (EdgeBatch{Name: "g", Dup: "median", Ops: []EdgeOp{{}}}).Encode(); !errors.Is(err, lagraph.ErrBadArgument) {
		t.Fatalf("bad dup: %v", err)
	}
	if _, err := (EdgeBatch{Name: "g", Ops: []EdgeOp{{Src: -1}}}).Encode(); !errors.Is(err, lagraph.ErrBadArgument) {
		t.Fatalf("negative vertex: %v", err)
	}
}

func TestDecodeEdgeBatchRejectsDamage(t *testing.T) {
	good, err := EdgeBatch{Name: "g", Dup: "sum", Ops: []EdgeOp{
		{Src: 1, Dst: 2, Weight: 3}, {Remove: true, Src: 2, Dst: 1},
	}}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"bad version":    append([]byte{99}, good[1:]...),
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xFF),
	}
	for name, data := range cases {
		if _, err := DecodeEdgeBatch(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: want ErrCorrupt, got %v", name, err)
		}
	}
}

// applyTestGraph builds a small directed graph behind a catalog entry.
func applyTestGraph(t *testing.T, n int, kind lagraph.Kind) (*catalog.Catalog, *catalog.Entry) {
	t.Helper()
	a, err := grb.NewMatrix[float64](n, n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lagraph.NewGraph(a, kind)
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	e, err := cat.Add("g", g)
	if err != nil {
		t.Fatal(err)
	}
	return cat, e
}

func TestApplyEdgeBatchDirected(t *testing.T) {
	_, e := applyTestGraph(t, 8, lagraph.Directed)
	err := e.Ingest(func(g *lagraph.Graph) (bool, error) {
		return true, ApplyEdgeBatch(g, EdgeBatch{Name: "g", Ops: []EdgeOp{
			{Src: 0, Dst: 1, Weight: 5},
			{Src: 1, Dst: 2, Weight: 1},
			{Remove: true, Src: 1, Dst: 2},
			{Src: 3, Dst: 4, Weight: 2},
		}})
	})
	if err != nil {
		t.Fatal(err)
	}
	p := e.Properties()
	if p.NEdges != 2 {
		t.Fatalf("NEdges = %d, want 2", p.NEdges)
	}
}

func TestApplyEdgeBatchMirrorsUndirected(t *testing.T) {
	_, e := applyTestGraph(t, 8, lagraph.Undirected)
	err := e.Ingest(func(g *lagraph.Graph) (bool, error) {
		return true, ApplyEdgeBatch(g, EdgeBatch{Name: "g", Ops: []EdgeOp{
			{Src: 0, Dst: 1, Weight: 5},
			{Src: 2, Dst: 2, Weight: 1}, // self-loop: no mirror
		}})
	})
	if err != nil {
		t.Fatal(err)
	}
	var vals [3]float64
	verr := e.View(func(g *lagraph.Graph) error {
		v01, _ := g.A.GetElement(0, 1)
		v10, _ := g.A.GetElement(1, 0)
		v22, _ := g.A.GetElement(2, 2)
		vals = [3]float64{v01, v10, v22}
		return nil
	})
	if verr != nil {
		t.Fatal(verr)
	}
	if vals != [3]float64{5, 5, 1} {
		t.Fatalf("mirrored values = %v, want [5 5 1]", vals)
	}
	if p := e.Properties(); !p.Symmetric {
		t.Fatalf("undirected ingest broke symmetry: %+v", p)
	}
}

func TestApplyEdgeBatchValidatesWholeBatchFirst(t *testing.T) {
	_, e := applyTestGraph(t, 4, lagraph.Directed)
	err := e.Ingest(func(g *lagraph.Graph) (bool, error) {
		aerr := ApplyEdgeBatch(g, EdgeBatch{Name: "g", Ops: []EdgeOp{
			{Src: 0, Dst: 1, Weight: 1},
			{Src: 9, Dst: 0, Weight: 1}, // out of range
		}})
		return false, aerr
	})
	if !errors.Is(err, lagraph.ErrBadArgument) {
		t.Fatalf("want ErrBadArgument, got %v", err)
	}
	if p := e.Properties(); p.NEdges != 0 {
		t.Fatalf("rejected batch landed edges: %+v", p)
	}
}

// ingestBatch journals and applies one batch the way the service does:
// journal first (write-ahead), then apply, then advance the marks.
func ingestBatch(t *testing.T, p *Persister, e *catalog.Entry, b EdgeBatch) uint64 {
	t.Helper()
	var lsn uint64
	err := e.Ingest(func(g *lagraph.Graph) (bool, error) {
		var jerr error
		lsn, jerr = p.JournalEdges(b)
		if jerr != nil {
			return false, jerr
		}
		if aerr := ApplyEdgeBatch(g, b); aerr != nil {
			return false, aerr
		}
		if lsn > 0 {
			e.SetJournalSeq(lsn)
			p.MarkApplied(b.Name, lsn)
		}
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lsn
}

func TestSnapshotPlusWALReplayEqualsPreCrashGraph(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jl, err := wal.Open(dir+"/wal", wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	p := NewPersister(st, cat)
	p.AttachWAL(jl)

	g := testGraph(t, 5)
	e, err := cat.Add("g", g)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline snapshot, then journaled mutations on top of it.
	if _, err := p.SnapshotOne("g"); err != nil {
		t.Fatal(err)
	}
	ingestBatch(t, p, e, EdgeBatch{Name: "g", Ops: []EdgeOp{
		{Src: 0, Dst: 30, Weight: 9}, {Src: 1, Dst: 31, Weight: 8},
	}})
	// A mid-stream snapshot: later records must replay on top of it.
	if _, err := p.SnapshotOne("g"); err != nil {
		t.Fatal(err)
	}
	ingestBatch(t, p, e, EdgeBatch{Name: "g", Dup: "sum", Ops: []EdgeOp{
		{Src: 0, Dst: 30, Weight: 1}, // accumulates onto the snapshotted 9
	}})
	ingestBatch(t, p, e, EdgeBatch{Name: "g", Ops: []EdgeOp{
		{Remove: true, Src: 1, Dst: 31},
	}})
	want := graphBytes(t, mustSnapshotGraph(t, e))

	// Crash: no flush of the post-snapshot batches. Reopen everything.
	jl.Close()
	cat2 := catalog.New()
	p2 := NewPersister(Must(Open(dir)), cat2)
	jl2, err := wal.Open(dir+"/wal", wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	p2.AttachWAL(jl2)
	if _, err := p2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	rs := p2.ReplayStats()
	if rs.Applied != 2 || rs.SkippedFloor != 1 {
		t.Fatalf("replay stats = %+v, want 2 applied + 1 below floor", rs)
	}
	e2, err := cat2.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	got := graphBytes(t, mustSnapshotGraph(t, e2))
	if !bytes.Equal(got, want) {
		t.Fatal("snapshot + WAL replay is not bitwise identical to the pre-crash graph")
	}
	if e2.JournalSeq() != 3 {
		t.Fatalf("recovered journal seq = %d, want 3", e2.JournalSeq())
	}
	jl2.Close()
}

// mustSnapshotGraph extracts the entry's graph via View for comparison.
func mustSnapshotGraph(t *testing.T, e *catalog.Entry) *lagraph.Graph {
	t.Helper()
	var out *lagraph.Graph
	if err := e.View(func(g *lagraph.Graph) error { out = g; return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWALRecordsForDroppedGraphSkipOnReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jl, err := wal.Open(dir+"/wal", wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	p := NewPersister(st, cat)
	p.AttachWAL(jl)
	e, err := cat.Add("doomed", testGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SnapshotOne("doomed"); err != nil {
		t.Fatal(err)
	}
	ingestBatch(t, p, e, EdgeBatch{Name: "doomed", Ops: []EdgeOp{{Src: 0, Dst: 1, Weight: 1}}})
	if err := cat.Drop("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	cat2 := catalog.New()
	p2 := NewPersister(Must(Open(dir)), cat2)
	jl2, err := wal.Open(dir+"/wal", wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	p2.AttachWAL(jl2)
	if _, err := p2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	rs := p2.ReplayStats()
	if rs.Applied != 0 || rs.SkippedUnknown != 1 {
		t.Fatalf("replay stats = %+v, want the dropped graph's record skipped", rs)
	}
	if names := cat2.Names(); len(names) != 0 {
		t.Fatalf("dropped graph resurrected: %v", names)
	}
}

// TestRecreatedNameFencedFromOldWALRecords: dropping a graph deletes its
// floors but leaves its records in the WAL. A graph re-created under the
// same name must not have the old incarnation's records replayed onto it
// after a crash — its baseline snapshot pins a floor fenced at the log
// head, past everything the previous incarnation journaled.
func TestRecreatedNameFencedFromOldWALRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jl, err := wal.Open(dir+"/wal", wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	p := NewPersister(st, cat)
	p.AttachWAL(jl)

	// First incarnation: baseline snapshot, two journaled batches, drop.
	e1, err := cat.Add("g", testGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SnapshotOne("g"); err != nil {
		t.Fatal(err)
	}
	ingestBatch(t, p, e1, EdgeBatch{Name: "g", Ops: []EdgeOp{{Src: 0, Dst: 15, Weight: 7}}})
	ingestBatch(t, p, e1, EdgeBatch{Name: "g", Ops: []EdgeOp{{Src: 1, Dst: 14, Weight: 3}}})
	if err := cat.Drop("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Remove("g"); err != nil {
		t.Fatal(err)
	}

	// Second incarnation, same name and dims: the old records would apply
	// cleanly here — exactly the silent-corruption shape the fence stops.
	e2, err := cat.Add("g", testGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SnapshotOne("g"); err != nil {
		t.Fatal(err)
	}
	ingestBatch(t, p, e2, EdgeBatch{Name: "g", Ops: []EdgeOp{{Src: 2, Dst: 13, Weight: 9}}})
	want := graphBytes(t, mustSnapshotGraph(t, e2))

	// Crash: the third batch lives only in the WAL. Reboot everything.
	jl.Close()
	cat2 := catalog.New()
	p2 := NewPersister(Must(Open(dir)), cat2)
	jl2, err := wal.Open(dir+"/wal", wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	p2.AttachWAL(jl2)
	if _, err := p2.LoadAll(); err != nil {
		t.Fatal(err)
	}
	rs := p2.ReplayStats()
	if rs.Applied != 1 || rs.SkippedFloor != 2 {
		t.Fatalf("replay stats = %+v, want the old incarnation's 2 records below the floor and 1 applied", rs)
	}
	e3, err := cat2.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if got := graphBytes(t, mustSnapshotGraph(t, e3)); !bytes.Equal(got, want) {
		t.Fatal("old incarnation's WAL records leaked into the re-created graph")
	}
	if e3.JournalSeq() != 3 {
		t.Fatalf("recovered journal seq = %d, want 3", e3.JournalSeq())
	}
}

func TestSnapshotSweepTruncatesDeadWALSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny segments so a handful of batches spans several files.
	jl, err := wal.Open(dir+"/wal", wal.Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	cat := catalog.New()
	p := NewPersister(st, cat)
	p.AttachWAL(jl)
	e, err := cat.Add("g", testGraph(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SnapshotOne("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		ingestBatch(t, p, e, EdgeBatch{Name: "g", Ops: []EdgeOp{{Src: i % 16, Dst: (i + 1) % 16, Weight: 1}}})
	}
	before := jl.Stats().Segments
	if before < 3 {
		t.Fatalf("want several segments before truncation, got %d", before)
	}
	// Flush everything durable; the sweep truncates dead segments.
	if _, err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	after := jl.Stats()
	if after.Segments >= before {
		t.Fatalf("segments %d -> %d: snapshot sweep did not truncate", before, after.Segments)
	}
	if after.Truncated == 0 {
		t.Fatal("truncation counter did not advance")
	}
	// Replay across the truncation boundary still verifies cleanly.
	if err := jl.Replay(1, func(wal.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
}
