// Package store is lagraphd's durable graph store: checksummed snapshot
// frames on disk under a data directory, an atomic-rename write protocol,
// and a manifest naming the live snapshot per graph, so that a crash at
// any instant — including kill -9 halfway through a write — can never
// corrupt the previously good copy.
//
// # Frame format (version 1)
//
//	offset  size  field
//	0       8     magic "LGSNAP01"
//	8       4     frame version, uint32 LE (= 1)
//	12      4     metadata length M, uint32 LE (capped at 1 MiB)
//	16      8     payload length P, uint64 LE
//	24      M     metadata, JSON-encoded Meta
//	24+M    P     payload (opaque bytes; for graphs, the lagraph image)
//	24+M+P  8     CRC-64/ECMA over all preceding bytes, uint64 LE
//
// The checksum covers everything, header included, so any single flipped
// bit anywhere in the file is detected. Decoding is alloc-bounded: buffer
// growth is driven by bytes actually read, never by declared lengths, so
// a hostile 24-byte header announcing an exabyte payload cannot make the
// reader allocate one.
//
// # Write protocol
//
// A snapshot is written to a temporary file in the same directory, fsynced,
// closed, and atomically renamed into place; only then is the manifest —
// itself a checksummed frame, written with the same temp-fsync-rename
// dance — updated to name the new file. Readers trust the manifest, so the
// ordering gives crash safety by construction: a crash before the manifest
// rename leaves the manifest pointing at the old complete snapshot, and a
// crash after it leaves a complete new snapshot (plus, at worst, an
// orphaned old file that the next Save sweeps).
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc64"
	"io"

	"lagraph/internal/grb"
)

// ErrCorrupt reports bytes that failed integrity validation. It aliases
// grb.ErrCorrupt so callers hold a single sentinel for "bad bytes" across
// the frame layer and the matrix decoder beneath it.
var ErrCorrupt = grb.ErrCorrupt

const (
	// frameVersion is the on-disk format version. Any change to the frame
	// layout or to the payload encodings it carries bumps this and adds a
	// decode-rejection test (CONTRIBUTING.md rule 9).
	frameVersion = 1

	frameHeaderLen = 24
	frameMagic     = "LGSNAP01"

	// maxMetaLen caps the JSON metadata block; real Meta documents are
	// under 200 bytes, so a megabyte is generous and still alloc-safe.
	maxMetaLen = 1 << 20
)

// crcTable is the CRC-64/ECMA polynomial table shared by reads and writes.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta is the frame's self-describing metadata: what the payload is, its
// shape, and which catalog generation it captured. Fields the payload
// kind does not use stay zero.
type Meta struct {
	// Name is the registered graph name (or an artifact label for
	// non-graph payloads such as the manifest or golden test vectors).
	Name string `json:"name"`
	// Kind discriminates the payload: "directed" | "undirected" for graph
	// images, "manifest" for the store manifest, free-form for others.
	Kind string `json:"kind"`
	// NRows, NCols, NVals describe the serialized object's shape; for
	// graphs, dimensions and stored-edge count of the adjacency.
	NRows int64 `json:"nrows,omitempty"`
	NCols int64 `json:"ncols,omitempty"`
	NVals int64 `json:"nvals,omitempty"`
	// Generation is the catalog mutation counter the snapshot pinned.
	Generation uint64 `json:"generation"`
	// Journal is the WAL high-water mark the snapshot captured: every
	// journaled edge batch with LSN <= Journal is already contained in
	// the payload, so boot recovery replays only the WAL suffix beyond
	// it. Zero for graphs never mutated through the streaming write path
	// (and for snapshots written before the WAL existed — both replay
	// from the beginning, which is correct because replay skips records
	// at or below the floor and an absent floor means nothing to skip).
	Journal uint64 `json:"journal,omitempty"`
}

// corruptf wraps ErrCorrupt with a diagnostic detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("store: %s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// WriteFrame writes one framed, checksummed payload to w.
func WriteFrame(w io.Writer, meta Meta, payload []byte) error {
	mj, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: write frame: marshal meta: %w", err)
	}
	if len(mj) > maxMetaLen {
		return fmt.Errorf("store: write frame: metadata %d bytes exceeds cap %d", len(mj), maxMetaLen)
	}
	var hdr [frameHeaderLen]byte
	copy(hdr[0:8], frameMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], frameVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(mj)))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(payload)))

	crc := crc64.New(crcTable)
	mw := io.MultiWriter(w, crc)
	for _, part := range [][]byte{hdr[:], mj, payload} {
		if _, err := mw.Write(part); err != nil {
			return fmt.Errorf("store: write frame: %w", err)
		}
	}
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc.Sum64())
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("store: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads and validates one frame from r. Every failure mode —
// truncation, bad magic, unknown version, oversized metadata, checksum
// mismatch, trailing garbage beyond the declared lengths — returns an
// error wrapping ErrCorrupt and never panics; allocation is bounded by
// the bytes r actually yields.
func ReadFrame(r io.Reader) (Meta, []byte, error) {
	crc := crc64.New(crcTable)
	tee := io.TeeReader(r, crc)

	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(tee, hdr[:]); err != nil {
		return Meta{}, nil, corruptf("short header: %v", err)
	}
	if string(hdr[0:8]) != frameMagic {
		return Meta{}, nil, corruptf("bad magic %q", hdr[0:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != frameVersion {
		return Meta{}, nil, corruptf("unsupported frame version %d", v)
	}
	metaLen := binary.LittleEndian.Uint32(hdr[12:16])
	if metaLen > maxMetaLen {
		return Meta{}, nil, corruptf("metadata length %d exceeds cap %d", metaLen, maxMetaLen)
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[16:24])

	mj, err := readCapped(tee, int64(metaLen))
	if err != nil {
		return Meta{}, nil, corruptf("short metadata: %v", err)
	}
	payload, err := readCapped(tee, int64(payloadLen))
	if err != nil {
		return Meta{}, nil, corruptf("short payload: %v", err)
	}
	want := crc.Sum64() // trailer itself is not checksummed
	var trailer [8]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return Meta{}, nil, corruptf("short checksum trailer: %v", err)
	}
	if got := binary.LittleEndian.Uint64(trailer[:]); got != want {
		return Meta{}, nil, corruptf("checksum mismatch: stored %016x, computed %016x", got, want)
	}
	var meta Meta
	if err := json.Unmarshal(mj, &meta); err != nil {
		return Meta{}, nil, corruptf("metadata not valid JSON: %v", err)
	}
	if meta.NRows < 0 || meta.NCols < 0 || meta.NVals < 0 {
		return Meta{}, nil, corruptf("negative shape in metadata: %d×%d/%d", meta.NRows, meta.NCols, meta.NVals)
	}
	return meta, payload, nil
}

// readCapped reads exactly n bytes, growing the buffer only as data
// arrives (1 MiB steps), so a lying length field cannot force a giant
// upfront allocation.
func readCapped(r io.Reader, n int64) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative length %d", n)
	}
	const step = 1 << 20
	var buf bytes.Buffer
	if n < step {
		buf.Grow(int(n))
	} else {
		buf.Grow(step)
	}
	if _, err := io.CopyN(&buf, r, n); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// frameChecksum digests an encoded frame region; used by tests and
// debugging tools, and kept here so the polynomial choice has one home.
func frameChecksum(b []byte) uint64 {
	h := crc64.New(crcTable)
	h.Write(b)
	return h.Sum64()
}

// ensure hash.Hash64 stays the interface crc64 gives us; a compile-time
// guard against accidentally switching to a 32-bit digest.
var _ hash.Hash64 = crc64.New(crcTable)
