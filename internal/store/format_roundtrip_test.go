package store

// The store's LGSNAP frames are format-transparent: a graph whose
// adjacency is held in any storage format (standard CSR, hypersparse,
// bitmap) snapshots to the same checksummed envelope structure, survives
// a save/load cycle byte-for-byte, and restores with both its entries and
// its format preference intact (re-serializing the restored graph is a
// fixed point).

import (
	"bytes"
	"fmt"
	"testing"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

func TestStoreRoundTripAllFormats(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := testGraph(t, 5)
	for _, fc := range []struct {
		name string
		f    grb.Format
	}{
		{"csr", grb.FormatCSR},
		{"hyper", grb.FormatHyper},
		{"bitmap", grb.FormatBitmap},
	} {
		t.Run(fc.name, func(t *testing.T) {
			a := base.A.Dup()
			a.SetFormat(fc.f)
			g, err := lagraph.NewGraph(a, lagraph.Undirected)
			if err != nil {
				t.Fatal(err)
			}
			payload := graphBytes(t, g)
			name := fmt.Sprintf("g-%s", fc.name)
			meta := Meta{Name: name, Kind: "undirected", NRows: int64(g.N()), NCols: int64(g.N()), NVals: int64(g.NEdges()), Generation: 1}
			if written, err := st.Save(meta, payload); err != nil || !written {
				t.Fatalf("save: written=%v err=%v", written, err)
			}
			_, gotPayload, err := st.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotPayload, payload) {
				t.Fatal("stored payload differs from serialized graph")
			}
			g2, err := lagraph.ReadGraph(bytes.NewReader(gotPayload))
			if err != nil {
				t.Fatal(err)
			}
			if g2.N() != g.N() || g2.NEdges() != g.NEdges() || g2.Kind != g.Kind {
				t.Fatalf("restored graph differs: %d/%d vs %d/%d", g2.N(), g2.NEdges(), g.N(), g.NEdges())
			}
			i1, j1, x1 := g.A.ExtractTuples()
			i2, j2, x2 := g2.A.ExtractTuples()
			if len(i1) != len(i2) {
				t.Fatalf("entry count changed: %d vs %d", len(i2), len(i1))
			}
			for k := range i1 {
				if i1[k] != i2[k] || j1[k] != j2[k] || x1[k] != x2[k] {
					t.Fatalf("entry %d changed across the store round trip", k)
				}
			}
			// Format preference survives: re-serializing the restored
			// graph reproduces the stored bytes exactly.
			if re := graphBytes(t, g2); !bytes.Equal(re, payload) {
				t.Fatal("restored graph does not re-serialize to the stored bytes")
			}
		})
	}
}
