package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/lagraph"
	"lagraph/internal/wal"
)

// Persister ties a catalog to a store: it knows which generation of each
// graph is durably on disk, snapshots dirty entries (generation-counter
// diff), and replays the store into the catalog on boot. Snapshots run
// under the entry's shared read lock (catalog.Entry.Snapshot), so
// concurrent queries keep executing while a graph serializes.
type Persister struct {
	st  *Store
	cat *catalog.Catalog
	// jl, when attached, is the edge-mutation journal: the streaming write
	// path appends each accepted batch here before applying it, and boot
	// recovery replays the suffix past each graph's snapshot floor.
	// Immutable after AttachWAL (which runs before the service starts).
	jl *wal.Log

	mu    sync.Mutex
	saved map[string]uint64 //grblint:guardedby mu // name → generation last durably written
	// removed counts Remove calls per name: a tombstone epoch. SnapshotOne
	// pins the count before serializing and vetoes its store commit when a
	// Remove interleaved, so a slow snapshot can never resurrect a graph
	// dropped while it serialized.
	removed map[string]uint64 //grblint:guardedby mu
	// journal is each graph's durable WAL floor: the highest LSN already
	// contained in its live snapshot. Records at or below the floor are
	// dead for that graph; the floor across all graphs drives segment
	// truncation.
	journal map[string]uint64 //grblint:guardedby mu
	// applied is each graph's in-memory WAL high-water mark (last LSN
	// applied to the catalog entry). applied > journal means the graph
	// has journaled mutations not yet captured by a snapshot.
	applied map[string]uint64 //grblint:guardedby mu
	// replayStats records what the boot-time WAL replay did.
	replayStats ReplayStats //grblint:guardedby mu

	// afterSerialize, when non-nil, runs between serialization and the
	// store save. Test seam for the drop-vs-snapshot race.
	afterSerialize func(name string)
}

// NewPersister wires a store to a catalog.
func NewPersister(st *Store, cat *catalog.Catalog) *Persister {
	return &Persister{
		st: st, cat: cat,
		saved: map[string]uint64{}, removed: map[string]uint64{},
		journal: map[string]uint64{}, applied: map[string]uint64{},
	}
}

// Store exposes the underlying store (metrics, tests).
func (p *Persister) Store() *Store { return p.st }

// AttachWAL connects the edge-mutation journal. Call before LoadAll (so
// recovery replays it) and before the service starts accepting writes.
func (p *Persister) AttachWAL(l *wal.Log) { p.jl = l }

// WAL returns the attached journal (nil on a snapshot-only persister).
func (p *Persister) WAL() *wal.Log { return p.jl }

// SnapResult reports one completed snapshot.
type SnapResult struct {
	Name       string  `json:"name"`
	Generation uint64  `json:"generation"`
	Bytes      int64   `json:"bytes"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// Written is false when a concurrent snapshot of a newer generation
	// made this one redundant.
	Written bool `json:"written"`
}

// LoadAll replays every stored snapshot into the catalog. Corrupt
// snapshots are quarantined by the store and reported in the events; a
// non-corruption failure (e.g. a catalog conflict) keeps the durable copy
// and is reported without destroying state. Neither aborts the boot.
// Recovered entries have their catalog generation seeded from the
// snapshot's persisted generation — generations continue the durable
// sequence across restarts instead of restarting at zero — and are marked
// clean, so a restart does not immediately re-snapshot everything.
func (p *Persister) LoadAll() ([]RecoveryEvent, error) {
	events, err := p.st.LoadAll(func(meta Meta, payload []byte) error {
		g, gerr := lagraph.ReadGraph(bytes.NewReader(payload))
		if gerr != nil {
			return gerr
		}
		if got := kindString(g.Kind == lagraph.Directed); got != meta.Kind {
			return corruptf("snapshot %q: payload kind %q contradicts metadata %q", meta.Name, got, meta.Kind)
		}
		e, aerr := p.cat.Add(meta.Name, g)
		if aerr != nil {
			return fmt.Errorf("store: recover %q: %w", meta.Name, aerr)
		}
		e.SeedGeneration(meta.Generation)
		e.SetJournalSeq(meta.Journal)
		p.mu.Lock()
		p.saved[meta.Name] = meta.Generation
		p.journal[meta.Name] = meta.Journal
		p.applied[meta.Name] = meta.Journal
		p.mu.Unlock()
		return nil
	})
	if err != nil {
		return events, err
	}
	if rerr := p.replayWAL(); rerr != nil {
		return events, rerr
	}
	return events, nil
}

// ReplayStats reports what the WAL replay phase of LoadAll did.
type ReplayStats struct {
	// Applied counts journal records replayed onto catalog entries.
	Applied int `json:"applied"`
	// SkippedFloor counts records already contained in a snapshot
	// (LSN at or below the graph's durable floor).
	SkippedFloor int `json:"skipped_floor"`
	// SkippedUnknown counts records naming graphs with no recovered
	// snapshot (dropped before the crash, or quarantined): their
	// mutations have nothing to land on and are reported, not replayed.
	SkippedUnknown int `json:"skipped_unknown"`
	// TornBytes and TornFile surface the WAL's own tail-truncation
	// report (a crash mid-append: tolerated and logged).
	TornBytes int64  `json:"torn_bytes"`
	TornFile  string `json:"torn_file,omitempty"`
}

// ReplayStats returns what the boot-time WAL replay did (zero value when
// no WAL is attached or LoadAll has not run).
func (p *Persister) ReplayStats() ReplayStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.replayStats
}

// replayWAL applies every journal record past its graph's snapshot floor.
// The graph named by a record may have no snapshot (created, mutated and
// never flushed before the crash — the service prevents this by forcing a
// baseline snapshot before the first journaled batch, so in practice this
// means "dropped later" or "snapshot quarantined"): such records are
// counted and skipped, never a boot failure.
func (p *Persister) replayWAL() error {
	if p.jl == nil {
		return nil
	}
	var rs ReplayStats
	rec := p.jl.Recovery()
	rs.TornBytes = rec.TornBytes
	rs.TornFile = rec.TornFile
	err := p.jl.Replay(1, func(r wal.Record) error {
		b, derr := DecodeEdgeBatch(r.Payload)
		if derr != nil {
			// The record passed CRC + chain validation, so a payload that
			// fails structural decode was written damaged — fail loudly
			// rather than silently diverging from the pre-crash state.
			return fmt.Errorf("store: wal replay: record %d: %w", r.LSN, derr)
		}
		p.mu.Lock()
		floor := p.journal[b.Name]
		p.mu.Unlock()
		e, gerr := p.cat.Get(b.Name)
		if gerr != nil {
			rs.SkippedUnknown++
			return nil
		}
		if r.LSN <= floor {
			rs.SkippedFloor++
			return nil
		}
		ierr := e.Ingest(func(g *lagraph.Graph) (bool, error) {
			if aerr := ApplyEdgeBatch(g, b); aerr != nil {
				return false, aerr
			}
			e.SetJournalSeq(r.LSN)
			return true, nil
		})
		if ierr != nil {
			return fmt.Errorf("store: wal replay: record %d on %q: %w", r.LSN, b.Name, ierr)
		}
		p.mu.Lock()
		p.applied[b.Name] = r.LSN
		p.mu.Unlock()
		rs.Applied++
		return nil
	})
	p.mu.Lock()
	p.replayStats = rs
	p.mu.Unlock()
	return err
}

// JournalEdges appends an encoded edge batch to the WAL and returns its
// LSN; the append is fsynced before return (the durability point of the
// streaming write path). With no WAL attached it returns LSN 0 — the
// mutation is memory-only until the next snapshot, the same durability a
// volatile daemon had before the journal existed. Call while holding the
// target entry's exclusive lock (inside catalog.Entry.Ingest), BEFORE
// applying the batch: write-ahead means a crash can leave a journaled
// batch unapplied (replay fixes that) but never an applied batch
// unjournaled (nothing could fix that).
func (p *Persister) JournalEdges(b EdgeBatch) (uint64, error) {
	if p.jl == nil {
		return 0, nil
	}
	payload, err := b.Encode()
	if err != nil {
		return 0, err
	}
	lsn, err := p.jl.Append(payload)
	if err != nil {
		return 0, fmt.Errorf("store: journal edges for %q: %w", b.Name, err)
	}
	return lsn, nil
}

// MarkApplied records that every journal record up to lsn is applied to
// the named graph in memory. Call after a successful apply, still under
// the entry's exclusive lock (the catalog→store lock order permits
// taking p.mu there; the reverse would not).
func (p *Persister) MarkApplied(name string, lsn uint64) {
	if lsn == 0 {
		return
	}
	p.mu.Lock()
	if lsn > p.applied[name] {
		p.applied[name] = lsn
	}
	p.mu.Unlock()
}

// ResetJournalFloor overwrites the named graph's journal bookkeeping with
// lsn, unconditionally. The cluster layer calls it when a graph changes
// LSN space: installing a shipped snapshot on a replica (the floor moves
// into the source primary's space) or adopting a moved graph as the new
// primary (the floor rebases onto the local log head, because this node
// is now the single writer and all shipped history is baked into the
// adopted snapshot). The unconditional overwrite is the point — the old
// value belongs to a different log and comparing against it would be
// meaningless.
func (p *Persister) ResetJournalFloor(name string, lsn uint64) {
	p.mu.Lock()
	p.journal[name] = lsn
	p.applied[name] = lsn
	p.mu.Unlock()
}

// HasDurable reports whether the named graph has a durable snapshot. The
// edges handler consults it to force a baseline snapshot before the
// FIRST journaled batch of a freshly loaded graph — without one, the
// WAL would hold mutations for a graph recovery cannot reconstruct.
func (p *Persister) HasDurable(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.saved[name]
	return ok
}

// TruncateWAL removes journal segments made dead by snapshots: a record
// is dead once every graph's durable floor is at or past it. Called
// after snapshot sweeps; returns the number of segments removed.
func (p *Persister) TruncateWAL() (int, error) {
	if p.jl == nil {
		return 0, nil
	}
	floor := p.jl.NextLSN()
	p.mu.Lock()
	for name, applied := range p.applied {
		if jf := p.journal[name]; applied > jf && jf+1 < floor {
			floor = jf + 1
		}
	}
	p.mu.Unlock()
	return p.jl.TruncateBefore(floor)
}

// Dirty returns the names whose in-memory generation differs from the
// last durably saved one (including graphs never saved at all), sorted.
// The saved map is copied under p.mu and the catalog consulted with no
// lock held: the repo-wide lock order is catalog→store, and holding a
// store-side mutex across a catalog call is the deadlock shape grblint's
// lock-discipline check forbids. The copy is a consistent-enough basis —
// a graph saved or removed mid-scan is re-classified on the next sweep.
func (p *Persister) Dirty() []string {
	p.mu.Lock()
	saved := make(map[string]uint64, len(p.saved))
	for name, gen := range p.saved {
		saved[name] = gen
	}
	p.mu.Unlock()
	var dirty []string
	for _, name := range p.cat.Names() {
		e, err := p.cat.Get(name)
		if err != nil {
			continue // dropped concurrently
		}
		if gen, ok := saved[name]; !ok || gen != e.Generation() {
			dirty = append(dirty, name)
		}
	}
	sort.Strings(dirty)
	return dirty
}

// SnapshotOne serializes the named graph at a pinned generation and saves
// it durably. Queries sharing the entry's read lock keep running. The
// save commit is vetoed if the graph is Removed while the snapshot
// serializes, so a drop racing a flush can never resurrect the graph.
func (p *Persister) SnapshotOne(name string) (SnapResult, error) {
	e, err := p.cat.Get(name)
	if err != nil {
		return SnapResult{}, err
	}
	p.mu.Lock()
	rem := p.removed[name]
	p.mu.Unlock()
	// A graph that has never journaled a batch must not inherit WAL
	// records of an earlier same-name incarnation: dropping a graph
	// deletes its floors but leaves its records in the log, so a
	// re-created graph snapshotted with Journal 0 would have the old
	// records replayed onto it after a crash. Fencing the entry at the
	// current log head before the pin makes this snapshot's floor exclude
	// every pre-existing record — none of which can belong to an
	// incarnation that has journaled nothing yet. Replica entries are
	// exempt: their journal mark lives in the SOURCE primary's LSN space
	// (it is the replication position), and fencing it against the local
	// log head would splice two unrelated LSN spaces together.
	if p.jl != nil && e.Role() != catalog.RoleReplica {
		e.FenceJournalSeq(p.jl.NextLSN() - 1)
	}
	t0 := time.Now()
	var buf bytes.Buffer
	info, err := e.Snapshot(&buf)
	if err != nil {
		p.st.snapshotErrors.Add(1)
		return SnapResult{}, fmt.Errorf("store: snapshot %q: %w", name, err)
	}
	if p.afterSerialize != nil {
		p.afterSerialize(name)
	}
	kind := kindString(info.Directed)
	written, err := p.st.SaveIf(Meta{
		Name: name, Kind: kind,
		NRows: int64(info.N), NCols: int64(info.N), NVals: int64(info.NEdges),
		Generation: info.Generation, Journal: info.Journal,
	}, buf.Bytes(), func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.removed[name] == rem
	})
	if err != nil {
		return SnapResult{}, err
	}
	elapsed := time.Since(t0)
	p.st.snapshotNanos.Add(int64(elapsed))
	p.mu.Lock()
	// Only mark the graph clean if no Remove interleaved: a vetoed save
	// must not leave a stale saved-generation behind for a future re-add
	// of the same name.
	if p.removed[name] == rem {
		if gen, ok := p.saved[name]; !ok || info.Generation > gen || written {
			p.saved[name] = info.Generation
		}
		// The snapshot contains every journaled batch up to info.Journal:
		// advance the durable floor so truncation can retire segments.
		if info.Journal > p.journal[name] {
			p.journal[name] = info.Journal
		}
	}
	p.mu.Unlock()
	return SnapResult{
		Name: name, Generation: info.Generation, Bytes: int64(buf.Len()),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond), Written: written,
	}, nil
}

// FlushResult reports one FlushDirty pass.
type FlushResult struct {
	Snapshotted []SnapResult `json:"snapshotted"`
	Clean       int          `json:"clean"` // entries already durable
}

// FlushDirty snapshots every dirty graph. Per-graph failures are joined
// into the returned error but do not stop the sweep; a graph dropped
// between the dirty scan and its snapshot is skipped silently.
func (p *Persister) FlushDirty() (FlushResult, error) {
	dirty := p.Dirty()
	res := FlushResult{Clean: len(p.cat.Names()) - len(dirty)}
	var errs []error
	for _, name := range dirty {
		sr, err := p.SnapshotOne(name)
		if err != nil {
			if errors.Is(err, catalog.ErrNotFound) {
				continue
			}
			errs = append(errs, err)
			continue
		}
		res.Snapshotted = append(res.Snapshotted, sr)
	}
	// The sweep advanced durable floors; retire journal segments every
	// graph is now snapshotted past. Best-effort: a truncation failure
	// only costs disk, not correctness.
	if _, terr := p.TruncateWAL(); terr != nil {
		errs = append(errs, terr)
	}
	return res, errors.Join(errs...)
}

// Remove forgets a graph's durable copy (mirrors a catalog Drop). The
// tombstone bump happens before the store removal, so an in-flight
// SnapshotOne that serialized the graph before the drop is vetoed at
// commit time no matter how the two interleave. Reports whether a
// durable copy existed.
func (p *Persister) Remove(name string) (removed bool, err error) {
	p.mu.Lock()
	p.removed[name]++
	delete(p.saved, name)
	// Forget the graph's journal position too: a dropped graph must not
	// pin the truncation floor (its WAL records replay as
	// skipped-unknown, which is exactly right for a drop).
	delete(p.journal, name)
	delete(p.applied, name)
	p.mu.Unlock()
	return p.st.Remove(name)
}

// kindString maps the graph kind onto the frame metadata vocabulary.
func kindString(directed bool) string {
	if directed {
		return "directed"
	}
	return "undirected"
}
