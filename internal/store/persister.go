package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lagraph/internal/catalog"
	"lagraph/internal/lagraph"
)

// Persister ties a catalog to a store: it knows which generation of each
// graph is durably on disk, snapshots dirty entries (generation-counter
// diff), and replays the store into the catalog on boot. Snapshots run
// under the entry's shared read lock (catalog.Entry.Snapshot), so
// concurrent queries keep executing while a graph serializes.
type Persister struct {
	st  *Store
	cat *catalog.Catalog

	mu    sync.Mutex
	saved map[string]uint64 //grblint:guardedby mu // name → generation last durably written
	// removed counts Remove calls per name: a tombstone epoch. SnapshotOne
	// pins the count before serializing and vetoes its store commit when a
	// Remove interleaved, so a slow snapshot can never resurrect a graph
	// dropped while it serialized.
	removed map[string]uint64 //grblint:guardedby mu

	// afterSerialize, when non-nil, runs between serialization and the
	// store save. Test seam for the drop-vs-snapshot race.
	afterSerialize func(name string)
}

// NewPersister wires a store to a catalog.
func NewPersister(st *Store, cat *catalog.Catalog) *Persister {
	return &Persister{st: st, cat: cat, saved: map[string]uint64{}, removed: map[string]uint64{}}
}

// Store exposes the underlying store (metrics, tests).
func (p *Persister) Store() *Store { return p.st }

// SnapResult reports one completed snapshot.
type SnapResult struct {
	Name       string  `json:"name"`
	Generation uint64  `json:"generation"`
	Bytes      int64   `json:"bytes"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	// Written is false when a concurrent snapshot of a newer generation
	// made this one redundant.
	Written bool `json:"written"`
}

// LoadAll replays every stored snapshot into the catalog. Corrupt
// snapshots are quarantined by the store and reported in the events; a
// non-corruption failure (e.g. a catalog conflict) keeps the durable copy
// and is reported without destroying state. Neither aborts the boot.
// Recovered entries have their catalog generation seeded from the
// snapshot's persisted generation — generations continue the durable
// sequence across restarts instead of restarting at zero — and are marked
// clean, so a restart does not immediately re-snapshot everything.
func (p *Persister) LoadAll() ([]RecoveryEvent, error) {
	events, err := p.st.LoadAll(func(meta Meta, payload []byte) error {
		g, gerr := lagraph.ReadGraph(bytes.NewReader(payload))
		if gerr != nil {
			return gerr
		}
		if got := kindString(g.Kind == lagraph.Directed); got != meta.Kind {
			return corruptf("snapshot %q: payload kind %q contradicts metadata %q", meta.Name, got, meta.Kind)
		}
		e, aerr := p.cat.Add(meta.Name, g)
		if aerr != nil {
			return fmt.Errorf("store: recover %q: %w", meta.Name, aerr)
		}
		e.SeedGeneration(meta.Generation)
		p.mu.Lock()
		p.saved[meta.Name] = meta.Generation
		p.mu.Unlock()
		return nil
	})
	return events, err
}

// Dirty returns the names whose in-memory generation differs from the
// last durably saved one (including graphs never saved at all), sorted.
// The saved map is copied under p.mu and the catalog consulted with no
// lock held: the repo-wide lock order is catalog→store, and holding a
// store-side mutex across a catalog call is the deadlock shape grblint's
// lock-discipline check forbids. The copy is a consistent-enough basis —
// a graph saved or removed mid-scan is re-classified on the next sweep.
func (p *Persister) Dirty() []string {
	p.mu.Lock()
	saved := make(map[string]uint64, len(p.saved))
	for name, gen := range p.saved {
		saved[name] = gen
	}
	p.mu.Unlock()
	var dirty []string
	for _, name := range p.cat.Names() {
		e, err := p.cat.Get(name)
		if err != nil {
			continue // dropped concurrently
		}
		if gen, ok := saved[name]; !ok || gen != e.Generation() {
			dirty = append(dirty, name)
		}
	}
	sort.Strings(dirty)
	return dirty
}

// SnapshotOne serializes the named graph at a pinned generation and saves
// it durably. Queries sharing the entry's read lock keep running. The
// save commit is vetoed if the graph is Removed while the snapshot
// serializes, so a drop racing a flush can never resurrect the graph.
func (p *Persister) SnapshotOne(name string) (SnapResult, error) {
	e, err := p.cat.Get(name)
	if err != nil {
		return SnapResult{}, err
	}
	p.mu.Lock()
	rem := p.removed[name]
	p.mu.Unlock()
	t0 := time.Now()
	var buf bytes.Buffer
	info, err := e.Snapshot(&buf)
	if err != nil {
		p.st.snapshotErrors.Add(1)
		return SnapResult{}, fmt.Errorf("store: snapshot %q: %w", name, err)
	}
	if p.afterSerialize != nil {
		p.afterSerialize(name)
	}
	kind := kindString(info.Directed)
	written, err := p.st.SaveIf(Meta{
		Name: name, Kind: kind,
		NRows: int64(info.N), NCols: int64(info.N), NVals: int64(info.NEdges),
		Generation: info.Generation,
	}, buf.Bytes(), func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.removed[name] == rem
	})
	if err != nil {
		return SnapResult{}, err
	}
	elapsed := time.Since(t0)
	p.st.snapshotNanos.Add(int64(elapsed))
	p.mu.Lock()
	// Only mark the graph clean if no Remove interleaved: a vetoed save
	// must not leave a stale saved-generation behind for a future re-add
	// of the same name.
	if p.removed[name] == rem {
		if gen, ok := p.saved[name]; !ok || info.Generation > gen || written {
			p.saved[name] = info.Generation
		}
	}
	p.mu.Unlock()
	return SnapResult{
		Name: name, Generation: info.Generation, Bytes: int64(buf.Len()),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond), Written: written,
	}, nil
}

// FlushResult reports one FlushDirty pass.
type FlushResult struct {
	Snapshotted []SnapResult `json:"snapshotted"`
	Clean       int          `json:"clean"` // entries already durable
}

// FlushDirty snapshots every dirty graph. Per-graph failures are joined
// into the returned error but do not stop the sweep; a graph dropped
// between the dirty scan and its snapshot is skipped silently.
func (p *Persister) FlushDirty() (FlushResult, error) {
	dirty := p.Dirty()
	res := FlushResult{Clean: len(p.cat.Names()) - len(dirty)}
	var errs []error
	for _, name := range dirty {
		sr, err := p.SnapshotOne(name)
		if err != nil {
			if errors.Is(err, catalog.ErrNotFound) {
				continue
			}
			errs = append(errs, err)
			continue
		}
		res.Snapshotted = append(res.Snapshotted, sr)
	}
	return res, errors.Join(errs...)
}

// Remove forgets a graph's durable copy (mirrors a catalog Drop). The
// tombstone bump happens before the store removal, so an in-flight
// SnapshotOne that serialized the graph before the drop is vetoed at
// commit time no matter how the two interleave. Reports whether a
// durable copy existed.
func (p *Persister) Remove(name string) (removed bool, err error) {
	p.mu.Lock()
	p.removed[name]++
	delete(p.saved, name)
	p.mu.Unlock()
	return p.st.Remove(name)
}

// kindString maps the graph kind onto the frame metadata vocabulary.
func kindString(directed bool) string {
	if directed {
		return "directed"
	}
	return "undirected"
}
