package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"lagraph/internal/grb"
	"lagraph/internal/lagraph"
)

// This file is the WAL payload vocabulary of the streaming write path:
// the EdgeBatch wire codec (what a journal record carries) and the single
// shared applicator that turns a batch into graph mutations. The HTTP
// handler and boot-time WAL replay both go through ApplyEdgeBatch, which
// is what makes "snapshot + replay" bitwise identical to the pre-crash
// graph — there is exactly one interpretation of a batch, not a live one
// and a recovery one that could drift apart.
//
// # Batch wire format (version 1)
//
//	byte     1      format version (= 1)
//	uvarint  name length, then that many bytes (graph name)
//	byte     dup code: 0 last-wins, 1 sum, 2 min, 3 max
//	uvarint  op count
//	per op:
//	  byte     flags (bit 0: remove)
//	  uvarint  src, uvarint dst
//	  8 bytes  weight, float64 LE bits (add ops only)
//
// The WAL record framing (CRC-64, hash chain) covers integrity; this
// codec only validates structure, and every structural failure wraps
// ErrCorrupt.

const (
	batchVersion = 1
	// maxBatchName caps the graph-name field of a decoded batch.
	maxBatchName = 4096
	// MaxBatchOps caps the ops in one batch — enforced at admission by
	// the service and at decode here, so a damaged count field cannot
	// drive allocation.
	MaxBatchOps = 1 << 20
)

// EdgeOp is one edge mutation: an upsert (with weight) or a removal.
type EdgeOp struct {
	Remove bool
	Src    int
	Dst    int
	Weight float64
}

// EdgeBatch is the unit of streaming ingestion: a named graph, a
// duplicate-combination policy, and an ordered list of edge mutations.
// Dup is one of "" / "last" (last value wins), "sum", "min", "max".
type EdgeBatch struct {
	Name string
	Dup  string
	Ops  []EdgeOp
}

// dupCode maps the Dup policy onto its wire byte.
func dupCode(dup string) (byte, error) {
	switch dup {
	case "", "last":
		return 0, nil
	case "sum":
		return 1, nil
	case "min":
		return 2, nil
	case "max":
		return 3, nil
	}
	return 0, fmt.Errorf("%w: unknown dup policy %q", lagraph.ErrBadArgument, dup)
}

// dupName is the inverse of dupCode.
var dupName = [4]string{"last", "sum", "min", "max"}

// DupOp resolves a Dup policy to the grb combiner SetElements expects
// (nil = last-wins).
func (b EdgeBatch) DupOp() (grb.BinaryOp[float64, float64, float64], error) {
	switch b.Dup {
	case "", "last":
		return nil, nil
	case "sum":
		return func(x, y float64) float64 { return x + y }, nil
	case "min":
		return func(x, y float64) float64 { return math.Min(x, y) }, nil
	case "max":
		return func(x, y float64) float64 { return math.Max(x, y) }, nil
	}
	return nil, fmt.Errorf("%w: unknown dup policy %q", lagraph.ErrBadArgument, b.Dup)
}

// DeltaParts splits the batch into the shape catalog.Entry.StageDelta
// records for incremental analytics: inserted-edge endpoints (parallel
// slices, application order, unmirrored — consumers mirror undirected
// edges themselves) and the removal count. Weight-only updates of
// existing edges land in the insert slices too, which is sound: the
// warm-started algorithms (CC, BFS, PageRank) are structural and a
// reported insertion that changed nothing only costs a no-op relaxation.
func (b EdgeBatch) DeltaParts() (addSrc, addDst []int, removals int) {
	adds := 0
	for _, op := range b.Ops {
		if !op.Remove {
			adds++
		}
	}
	addSrc = make([]int, 0, adds)
	addDst = make([]int, 0, adds)
	for _, op := range b.Ops {
		if op.Remove {
			removals++
			continue
		}
		addSrc = append(addSrc, op.Src)
		addDst = append(addDst, op.Dst)
	}
	return addSrc, addDst, removals
}

// Encode serializes the batch for journaling.
func (b EdgeBatch) Encode() ([]byte, error) {
	if len(b.Name) == 0 || len(b.Name) > maxBatchName {
		return nil, fmt.Errorf("%w: batch name length %d", lagraph.ErrBadArgument, len(b.Name))
	}
	if len(b.Ops) == 0 || len(b.Ops) > MaxBatchOps {
		return nil, fmt.Errorf("%w: batch of %d ops (cap %d)", lagraph.ErrBadArgument, len(b.Ops), MaxBatchOps)
	}
	code, err := dupCode(b.Dup)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 2+len(b.Name)+binary.MaxVarintLen64+len(b.Ops)*(2+2*binary.MaxVarintLen64+8))
	buf = append(buf, batchVersion)
	buf = binary.AppendUvarint(buf, uint64(len(b.Name)))
	buf = append(buf, b.Name...)
	buf = append(buf, code)
	buf = binary.AppendUvarint(buf, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		var flags byte
		if op.Remove {
			flags |= 1
		}
		if op.Src < 0 || op.Dst < 0 {
			return nil, fmt.Errorf("%w: negative vertex id (%d,%d)", lagraph.ErrBadArgument, op.Src, op.Dst)
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(op.Src))
		buf = binary.AppendUvarint(buf, uint64(op.Dst))
		if !op.Remove {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(op.Weight))
		}
	}
	return buf, nil
}

// DecodeEdgeBatch parses a journaled batch. Structural failures wrap
// ErrCorrupt; allocation is bounded by MaxBatchOps, compared before any
// size derived from the input is used.
func DecodeEdgeBatch(data []byte) (EdgeBatch, error) {
	var b EdgeBatch
	if len(data) == 0 || data[0] != batchVersion {
		return b, corruptf("edge batch: bad version byte")
	}
	data = data[1:]
	nameLen, n := binary.Uvarint(data)
	if n <= 0 || nameLen == 0 || nameLen > maxBatchName || uint64(len(data)-n) < nameLen {
		return b, corruptf("edge batch: bad name length")
	}
	data = data[n:]
	b.Name = string(data[:nameLen])
	data = data[nameLen:]
	if len(data) < 1 || data[0] > 3 {
		return b, corruptf("edge batch: bad dup code")
	}
	b.Dup = dupName[data[0]]
	data = data[1:]
	count, n := binary.Uvarint(data)
	if n <= 0 || count == 0 || count > MaxBatchOps {
		return b, corruptf("edge batch: op count %d outside (0, %d]", count, MaxBatchOps)
	}
	data = data[n:]
	b.Ops = make([]EdgeOp, 0, count)
	for k := uint64(0); k < count; k++ {
		if len(data) < 1 {
			return b, corruptf("edge batch: truncated at op %d", k)
		}
		flags := data[0]
		if flags > 1 {
			return b, corruptf("edge batch: unknown flags %#x at op %d", flags, k)
		}
		data = data[1:]
		src, n := binary.Uvarint(data)
		if n <= 0 || src > math.MaxInt32 {
			return b, corruptf("edge batch: bad src at op %d", k)
		}
		data = data[n:]
		dst, n := binary.Uvarint(data)
		if n <= 0 || dst > math.MaxInt32 {
			return b, corruptf("edge batch: bad dst at op %d", k)
		}
		data = data[n:]
		op := EdgeOp{Remove: flags&1 != 0, Src: int(src), Dst: int(dst)}
		if !op.Remove {
			if len(data) < 8 {
				return b, corruptf("edge batch: truncated weight at op %d", k)
			}
			op.Weight = math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
			data = data[8:]
		}
		b.Ops = append(b.Ops, op)
	}
	if len(data) != 0 {
		return b, corruptf("edge batch: %d trailing bytes", len(data))
	}
	return b, nil
}

// ValidateEdgeBatch range-checks every op against the graph without
// applying anything. The write path runs it BEFORE journaling: a batch
// must be proven applicable before the WAL promises it durability,
// because a journaled batch that fails to apply could never be replayed
// consistently.
func ValidateEdgeBatch(g *lagraph.Graph, b EdgeBatch) error {
	if len(b.Ops) == 0 || len(b.Ops) > MaxBatchOps {
		return fmt.Errorf("%w: batch of %d ops (cap %d)", lagraph.ErrBadArgument, len(b.Ops), MaxBatchOps)
	}
	if _, err := b.DupOp(); err != nil {
		return err
	}
	n := g.N()
	for k, op := range b.Ops {
		if op.Src < 0 || op.Src >= n || op.Dst < 0 || op.Dst >= n {
			return fmt.Errorf("%w: op %d: vertex (%d,%d) outside graph of %d nodes",
				lagraph.ErrBadArgument, k, op.Src, op.Dst, n)
		}
		if math.IsNaN(op.Weight) {
			return fmt.Errorf("%w: op %d: NaN weight", lagraph.ErrBadArgument, k)
		}
	}
	return nil
}

// ApplyEdgeBatch lands a batch on a graph: adds become pending tuples
// (one SetElements call per contiguous run), removes go through
// RemoveElement, and undirected graphs mirror every op so the adjacency
// stays symmetric. Validation is all-or-nothing — every vertex id is
// range-checked against the graph before anything is applied, so a
// rejected batch leaves the graph untouched.
//
// Adds-only batches stay O(batch): nothing is assembled. A remove forces
// assembly of the adds buffered before it (grb's remove path operates on
// stored entries), so remove-heavy batches pay the materialization cost;
// the cost model is documented on the handler.
//
// Callers hold the entry's exclusive lock (catalog.Entry.Ingest); replay
// calls it on an unpublished graph. Both orderings keep the single-writer
// invariant.
func ApplyEdgeBatch(g *lagraph.Graph, b EdgeBatch) error {
	if err := ValidateEdgeBatch(g, b); err != nil {
		return err
	}
	dup, err := b.DupOp()
	if err != nil {
		return err
	}
	mirror := g.Kind == lagraph.Undirected
	var is, js []int
	var xs []float64
	flushAdds := func() error {
		if len(is) == 0 {
			return nil
		}
		if err := g.A.SetElements(is, js, xs, dup); err != nil {
			return err
		}
		is, js, xs = is[:0], js[:0], xs[:0]
		return nil
	}
	for _, op := range b.Ops {
		if op.Remove {
			if err := flushAdds(); err != nil {
				return err
			}
			if err := g.A.RemoveElement(op.Src, op.Dst); err != nil {
				return err
			}
			if mirror && op.Src != op.Dst {
				if err := g.A.RemoveElement(op.Dst, op.Src); err != nil {
					return err
				}
			}
			continue
		}
		is = append(is, op.Src)
		js = append(js, op.Dst)
		xs = append(xs, op.Weight)
		if mirror && op.Src != op.Dst {
			is = append(is, op.Dst)
			js = append(js, op.Src)
			xs = append(xs, op.Weight)
		}
	}
	return flushAdds()
}
