package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// manifestName is the file naming the live snapshot per graph. It is
// written last on every Save, so it is the single source of truth for
// which snapshot files are current.
const manifestName = "MANIFEST"

// manifestEntry records one graph's live snapshot. Epoch is the store's
// boot epoch at the time of the write: catalog generations restart at
// zero in every process life, so generations are only comparable between
// entries of the same epoch. Entries adopted by a rescan carry epoch 0
// ("unknown"), which matches no live epoch.
type manifestEntry struct {
	File       string `json:"file"`
	Generation uint64 `json:"generation"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// manifestDoc is the manifest payload. Epoch records the boot epoch of
// the last writer; each Open resumes from it + 1.
type manifestDoc struct {
	Epoch  uint64                   `json:"epoch,omitempty"`
	Graphs map[string]manifestEntry `json:"graphs"`
}

// Stats aggregates store activity counters, rendered by /metrics.
type Stats struct {
	Graphs         int   `json:"graphs"`          // entries in the manifest
	Snapshots      int64 `json:"snapshots"`       // successful Save calls
	SnapshotBytes  int64 `json:"snapshot_bytes"`  // frame bytes durably written
	SnapshotErrors int64 `json:"snapshot_errors"` // failed Save attempts
	SnapshotNanos  int64 `json:"snapshot_nanos"`  // cumulative snapshot wall time
	Loads          int64 `json:"loads"`           // snapshots read back successfully
	Quarantined    int64 `json:"quarantined"`     // files renamed to *.corrupt
}

// Store manages the snapshot files and manifest under one data directory.
// All methods are safe for concurrent use.
type Store struct {
	dir string

	// epoch is this Open's boot epoch: one more than the epoch persisted
	// by the previous life's manifest. Immutable after Open.
	epoch uint64

	mu       sync.Mutex               // guards manifest (map + file) and file shuffling
	manifest map[string]manifestEntry //grblint:guardedby mu
	manSeq   uint64                   //grblint:guardedby mu // manifest write sequence, stored as its Generation

	snapshots      atomic.Int64
	snapshotBytes  atomic.Int64
	snapshotErrors atomic.Int64
	snapshotNanos  atomic.Int64
	loads          atomic.Int64
	quarantined    atomic.Int64
}

// Open creates (if needed) the data directory and reads its manifest. A
// missing manifest is normal on first boot; an unreadable or corrupt one
// is quarantined and the directory is rescanned, adopting the
// highest-generation valid snapshot per graph, so a damaged manifest
// never strands good snapshot files.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{dir: dir, manifest: map[string]manifestEntry{}}
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		s.epoch = 1
		if err := s.rescan(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	default:
		meta, payload, ferr := ReadFrame(bytes.NewReader(data))
		var doc manifestDoc
		if ferr == nil && meta.Kind == "manifest" {
			ferr = json.Unmarshal(payload, &doc)
		} else if ferr == nil {
			ferr = corruptf("manifest frame has kind %q", meta.Kind)
		}
		if ferr != nil {
			// The previous life's epoch is unreadable; epoch 1 is safe
			// because rescan normalizes every adopted entry to epoch 0.
			s.epoch = 1
			s.quarantine(path)
			if err := s.rescan(); err != nil {
				return nil, err
			}
			break
		}
		s.manSeq = meta.Generation
		s.epoch = doc.Epoch + 1
		if doc.Graphs != nil {
			s.manifest = doc.Graphs
		}
	}
	return s, nil
}

// Epoch returns this Open's boot epoch. Generation guards apply only
// between saves of the same epoch.
func (s *Store) Epoch() uint64 { return s.epoch }

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// rescan rebuilds the manifest from the snapshot files themselves: every
// *.snap frame that validates contributes its (name, generation), the
// highest generation per name wins, and anything unreadable is
// quarantined. Called when the manifest is missing or corrupt.
func (s *Store) rescan() error {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.snap"))
	if err != nil {
		return fmt.Errorf("store: rescan %s: %w", s.dir, err)
	}
	sort.Strings(paths)
	found := map[string]manifestEntry{}
	for _, p := range paths {
		meta, _, err := readFrameFile(p)
		if err != nil {
			s.quarantine(p)
			continue
		}
		if cur, ok := found[meta.Name]; !ok || meta.Generation > cur.Generation {
			found[meta.Name] = manifestEntry{File: filepath.Base(p), Generation: meta.Generation}
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.manifest = found
	return s.writeManifestLocked()
}

// Save durably writes one snapshot frame and repoints the manifest at it.
// The generation guard makes concurrent saves of the same graph safe:
// a Save carrying an older generation than the manifest's live entry of
// the same boot epoch is dropped rather than allowed to roll the graph
// back. Entries persisted by a previous process life carry an older
// epoch and never block a save: catalog generations restart at zero on
// every boot, so cross-epoch generations are not comparable.
func (s *Store) Save(meta Meta, payload []byte) (written bool, err error) {
	return s.SaveIf(meta, payload, nil)
}

// SaveIf is Save with a commit veto: when ok is non-nil it is consulted
// under the store mutex immediately before the manifest is repointed, and
// a false return discards the write without touching the manifest. The
// Persister uses it to keep a slow snapshot from resurrecting a graph
// that was dropped while the snapshot serialized.
func (s *Store) SaveIf(meta Meta, payload []byte, ok func() bool) (written bool, err error) {
	defer func() {
		if err != nil {
			s.snapshotErrors.Add(1)
		}
	}()
	final := snapFileName(meta.Name, meta.Generation)
	// Idempotence: a generation already durable (or superseded) in this
	// epoch needs no write — snapshot bytes at a given generation are
	// deterministic, so the live file is already exactly this payload or
	// newer.
	s.mu.Lock()
	if old, had := s.manifest[meta.Name]; had && old.Epoch == s.epoch && old.Generation >= meta.Generation {
		s.mu.Unlock()
		return false, nil
	}
	s.mu.Unlock()
	if err := s.writeFileAtomic(final, meta, payload); err != nil {
		return false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	old, had := s.manifest[meta.Name]
	// removeFinal discards the just-written file unless the manifest's
	// live entry already names it (a re-save of the same generation
	// renamed identical bytes over the live file).
	removeFinal := func() {
		if !had || old.File != final {
			_ = os.Remove(filepath.Join(s.dir, final))
		}
	}
	if ok != nil && !ok() {
		removeFinal()
		return false, nil
	}
	if had && old.Epoch == s.epoch && old.Generation >= meta.Generation {
		// A snapshot at this generation or newer landed while this one was
		// serializing: keep it.
		removeFinal()
		return false, nil
	}
	s.manifest[meta.Name] = manifestEntry{File: final, Generation: meta.Generation, Epoch: s.epoch}
	if err := s.writeManifestLocked(); err != nil {
		// The manifest still names the old snapshot; the new file is
		// orphaned but harmless (a future rescan would adopt it).
		s.manifest[meta.Name] = old
		if !had {
			delete(s.manifest, meta.Name)
		}
		return false, err
	}
	if had && old.File != final {
		_ = os.Remove(filepath.Join(s.dir, old.File))
	}
	s.snapshots.Add(1)
	s.snapshotBytes.Add(int64(len(payload)))
	return true, nil
}

// Load reads and validates the live snapshot for name. A missing name
// returns fs.ErrNotExist; a damaged file returns an error wrapping
// ErrCorrupt (the caller decides whether to quarantine — LoadAll does).
func (s *Store) Load(name string) (Meta, []byte, error) {
	s.mu.Lock()
	ent, ok := s.manifest[name]
	s.mu.Unlock()
	if !ok {
		return Meta{}, nil, fmt.Errorf("store: load %q: %w", name, fs.ErrNotExist)
	}
	meta, payload, err := readFrameFile(filepath.Join(s.dir, ent.File))
	if err != nil {
		return Meta{}, nil, err
	}
	if meta.Name != name {
		return Meta{}, nil, corruptf("snapshot %s claims name %q, manifest says %q", ent.File, meta.Name, name)
	}
	s.loads.Add(1)
	return meta, payload, nil
}

// RecoveryEvent describes one graph's fate during LoadAll.
type RecoveryEvent struct {
	Name string
	File string
	Meta Meta
	// Err is nil for a recovered graph; otherwise the validation or
	// decode failure.
	Err error
	// Quarantined reports that the failure was corruption and the file
	// was renamed to *.corrupt and dropped from the manifest. A failure
	// with Quarantined false (a resource or catalog error on valid bytes)
	// leaves the snapshot and its manifest entry intact for a later boot.
	Quarantined bool
}

// LoadAll replays every manifest-listed snapshot through decode. A frame
// that fails integrity validation — or whose decode callback reports
// corruption (an error wrapping ErrCorrupt) — is quarantined to
// <file>.corrupt and dropped from the manifest; any other failure keeps
// the durable copy untouched, since valid bytes must never be destroyed
// over a transient error. Recovery of the remaining graphs continues
// either way. The returned events report each graph's fate; the error is
// only non-nil for store-level failures (an unwritable manifest), never
// for per-file corruption.
func (s *Store) LoadAll(decode func(meta Meta, payload []byte) error) ([]RecoveryEvent, error) {
	s.mu.Lock()
	names := make([]string, 0, len(s.manifest))
	for n := range s.manifest {
		names = append(names, n)
	}
	sort.Strings(names)
	entries := make(map[string]manifestEntry, len(names))
	for _, n := range names {
		entries[n] = s.manifest[n]
	}
	s.mu.Unlock()

	var events []RecoveryEvent
	dirty := false
	for _, name := range names {
		ent := entries[name]
		path := filepath.Join(s.dir, ent.File)
		meta, payload, err := readFrameFile(path)
		if err == nil && meta.Name != name {
			err = corruptf("snapshot %s claims name %q, manifest says %q", ent.File, meta.Name, name)
		}
		if err == nil {
			err = decode(meta, payload)
		}
		ev := RecoveryEvent{Name: name, File: ent.File, Meta: meta, Err: err}
		switch {
		case err == nil:
			s.loads.Add(1)
		case errors.Is(err, ErrCorrupt):
			ev.Quarantined = true
			s.quarantine(path)
			s.mu.Lock()
			delete(s.manifest, name)
			s.mu.Unlock()
			dirty = true
		}
		events = append(events, ev)
	}
	if dirty {
		s.mu.Lock()
		err := s.writeManifestLocked()
		s.mu.Unlock()
		if err != nil {
			return events, err
		}
	}
	return events, nil
}

// Remove drops name's snapshot: manifest first (so a crash between the
// two steps leaves an orphaned file, not a dangling manifest entry), then
// the file. It reports whether a manifest entry existed, so callers can
// distinguish "cleaned up" from "nothing to clean".
func (s *Store) Remove(name string) (removed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.manifest[name]
	if !ok {
		return false, nil
	}
	delete(s.manifest, name)
	if err := s.writeManifestLocked(); err != nil {
		s.manifest[name] = ent
		return false, err
	}
	_ = os.Remove(filepath.Join(s.dir, ent.File))
	return true, nil
}

// Names returns the manifest's graph names, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.manifest))
	for n := range s.manifest {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Generation returns the manifest's recorded generation for name.
func (s *Store) Generation(name string) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.manifest[name]
	return ent.Generation, ok
}

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.manifest)
	s.mu.Unlock()
	return Stats{
		Graphs:         n,
		Snapshots:      s.snapshots.Load(),
		SnapshotBytes:  s.snapshotBytes.Load(),
		SnapshotErrors: s.snapshotErrors.Load(),
		SnapshotNanos:  s.snapshotNanos.Load(),
		Loads:          s.loads.Load(),
		Quarantined:    s.quarantined.Load(),
	}
}

// quarantine renames a damaged file to <file>.corrupt, preserving the
// bytes for forensics while taking them out of the recovery path.
func (s *Store) quarantine(path string) {
	if err := os.Rename(path, path+".corrupt"); err == nil {
		s.quarantined.Add(1)
	}
}

// writeManifestLocked rewrites the manifest frame via temp-fsync-rename.
// Callers hold s.mu.
//
//grblint:locked mu
func (s *Store) writeManifestLocked() error {
	s.manSeq++
	payload, err := json.Marshal(manifestDoc{Epoch: s.epoch, Graphs: s.manifest})
	if err != nil {
		return fmt.Errorf("store: manifest: %w", err)
	}
	return s.writeFileAtomic(manifestName, Meta{
		Name: manifestName, Kind: "manifest", Generation: s.manSeq,
	}, payload)
}

// writeFileAtomic writes a frame to a same-directory temp file, fsyncs,
// and renames it over final — the atom that makes mid-write crashes
// invisible to readers.
func (s *Store) writeFileAtomic(final string, meta Meta, payload []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", final, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", final, err)
	}
	if err := WriteFrame(tmp, meta, payload); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", final, err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, final)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: write %s: %w", final, err)
	}
	s.syncDir()
	return nil
}

// syncDir fsyncs the data directory so renames are durable; best-effort
// (some filesystems reject directory fsync).
func (s *Store) syncDir() {
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// readFrameFile reads and validates one frame file in full.
func readFrameFile(path string) (Meta, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	meta, payload, err := ReadFrame(f)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
	}
	// Trailing garbage after the trailer means the file is not the frame
	// the writer produced.
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return Meta{}, nil, corruptf("%s: trailing bytes after frame", filepath.Base(path))
	}
	return meta, payload, nil
}

// snapFileName builds the on-disk name for a snapshot: an escaped graph
// name plus the generation. The name in the frame metadata is
// authoritative; the file name only needs to be unique and filesystem-safe.
func snapFileName(name string, gen uint64) string {
	return fmt.Sprintf("%s-%d.snap", escapeName(name), gen)
}

// escapeName hex-escapes every byte outside [A-Za-z0-9.-], including the
// escape character itself, so distinct graph names can never collide on
// disk and no name can traverse directories.
func escapeName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-':
			b.WriteByte(c)
		case c == '.' && i > 0:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
