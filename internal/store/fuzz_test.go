package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"lagraph/internal/grb"
)

// FuzzFrameDecode feeds arbitrary bytes to the frame reader. The
// contract under hostile input: never panic, never allocate anywhere
// near a declared-but-absent length, and classify every rejection as
// ErrCorrupt.
func FuzzFrameDecode(f *testing.F) {
	valid := func(meta Meta, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, meta, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(Meta{Name: "g", Kind: "directed", NRows: 4, NCols: 4, NVals: 7, Generation: 2}, []byte("payload")))
	f.Add(valid(Meta{Name: "", Kind: "manifest"}, nil))
	f.Add([]byte(frameMagic))
	f.Add([]byte("totally not a frame"))
	f.Add([]byte{})
	// Header declaring a huge payload with nothing behind it.
	hostile := make([]byte, frameHeaderLen)
	copy(hostile, frameMagic)
	binary.LittleEndian.PutUint32(hostile[8:], frameVersion)
	binary.LittleEndian.PutUint32(hostile[12:], 16)
	binary.LittleEndian.PutUint64(hostile[16:], 1<<60)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		before := testingAllocBytes()
		meta, payload, err := ReadFrame(bytes.NewReader(data))
		after := testingAllocBytes()
		if grew := after - before; grew > 64<<20 {
			t.Fatalf("decoding %d input bytes allocated %d bytes", len(data), grew)
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not classified as ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted frames must survive a write/read cycle unchanged
		// (decode-encode-decode idempotence).
		var re bytes.Buffer
		if werr := WriteFrame(&re, meta, payload); werr != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", werr)
		}
		meta2, payload2, rerr := ReadFrame(bytes.NewReader(re.Bytes()))
		if rerr != nil {
			t.Fatalf("re-encoded frame rejected: %v", rerr)
		}
		if meta2 != meta || !bytes.Equal(payload2, payload) {
			t.Fatal("re-encode changed the frame contents")
		}
	})
}

// FuzzSnapshotRoundTrip builds a real matrix from fuzzer-chosen
// dimensions and entries, snapshots it through the full frame + grb
// serialization path, and checks the bitwise round-trip; then it
// verifies a mutated copy of the frame never comes back as a valid
// graph silently.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(4), int64(1), uint64(0xdead), uint16(3))
	f.Add(uint8(1), uint8(1), int64(-9), uint64(1), uint16(100))
	f.Add(uint8(16), uint8(9), int64(1<<40), uint64(42), uint16(0))
	f.Fuzz(func(t *testing.T, nr, nc uint8, val int64, seed uint64, flip uint16) {
		nrows, ncols := int(nr)+1, int(nc)+1
		a, err := grb.NewMatrix[int64](nrows, ncols)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic pseudo-random fill from the fuzzed seed.
		s := seed | 1
		for k := 0; k < 2*nrows; k++ {
			s = s*6364136223846793005 + 1442695040888963407
			i := int(s>>33) % nrows
			j := int(s>>13) % ncols
			if i < 0 {
				i = -i
			}
			if j < 0 {
				j = -j
			}
			if err := a.SetElement(i, j, val+int64(k)); err != nil {
				t.Fatal(err)
			}
		}
		var payload bytes.Buffer
		if err := grb.SerializeMatrix(&payload, a); err != nil {
			t.Fatal(err)
		}
		meta := Meta{Name: "fz", Kind: "matrix", NRows: int64(nrows), NCols: int64(ncols), NVals: int64(a.Nvals()), Generation: seed}
		var frame bytes.Buffer
		if err := WriteFrame(&frame, meta, payload.Bytes()); err != nil {
			t.Fatal(err)
		}

		// Round trip: bitwise-equal payload, equal metadata.
		gotMeta, gotPayload, err := ReadFrame(bytes.NewReader(frame.Bytes()))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if gotMeta != meta || !bytes.Equal(gotPayload, payload.Bytes()) {
			t.Fatal("round trip not bitwise identical")
		}
		b, err := grb.DeserializeMatrix[int64](bytes.NewReader(gotPayload))
		if err != nil {
			t.Fatalf("payload decode: %v", err)
		}
		if b.Nrows() != nrows || b.Ncols() != ncols || b.Nvals() != a.Nvals() {
			t.Fatal("decoded matrix shape differs")
		}

		// Bit-flip at a fuzzer-chosen position: must be detected.
		mut := append([]byte(nil), frame.Bytes()...)
		pos := int(flip) % len(mut)
		mut[pos] ^= 1 << (flip % 8)
		if _, _, err := ReadFrame(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d undetected: %v", pos, err)
		}
		// Truncation at a fuzzer-chosen length: must be detected.
		cut := int(flip) % len(mut)
		if _, _, err := ReadFrame(bytes.NewReader(frame.Bytes()[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d undetected: %v", cut, err)
		}
	})
}
